// Agingsta is the reliability scenario: how much timing margin does a
// design really need after ten years in the field? It characterizes a
// library, profiles a workload, and compares the traditional worst-case
// guardband against the workload-aware and ML-predicted guardbands.
package main

import (
	"fmt"
	"log"

	"repro/internal/aging"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/liberty"
	"repro/internal/spice"
)

func main() {
	fmt.Println("characterizing 300 K library (coarse grid)...")
	lib, err := liberty.Characterize("demo300", liberty.AllCells(),
		spice.Default(300), liberty.CoarseGrid())
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.DefaultAgingSTAConfig()
	for _, n := range []*circuit.Netlist{
		circuit.RippleAdder(16),
		circuit.ArrayMultiplier(8),
		circuit.ALUSlice(8),
	} {
		rep, err := core.AgingAwareSTA(n, lib, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s (mean duty %.2f, mean activity %.3f over the profiled workload)\n",
			n.Stats(), rep.MeanDuty, rep.MeanActivity)
		fmt.Printf("  fresh:            %7.1f ps\n", rep.FreshDelay*1e12)
		fmt.Printf("  worst-case aged:  %7.1f ps  (+%.1f%%)\n",
			rep.WorstCase*1e12, 100*(rep.WorstCase/rep.FreshDelay-1))
		fmt.Printf("  workload-aware:   %7.1f ps  (recovers %.0f%% of the margin)\n",
			rep.WorkloadAware*1e12, rep.SavingsFrac*100)
		fmt.Printf("  ML-predicted:     %7.1f ps  (estimator MAPE %.2f%%)\n",
			rep.MLPredicted*1e12, rep.MLMAPE*100)
	}

	// The underlying degradation physics over mission time.
	fmt.Println("\nΔVth over a 10-year mission (duty 0.5, 350 K, 1 GHz):")
	curve := core.DegradationCurve(aging.Default(),
		aging.Stress{TempK: 350, Duty: 0.5, Activity: 0.25, ClockHz: 1e9},
		[]float64{0.5, 1, 2, 5, 10})
	for _, pt := range curve {
		fmt.Printf("  %5.1f years: %5.1f mV → x%.4f delay\n", pt.Years, pt.DVth*1e3, pt.Factor)
	}
}
