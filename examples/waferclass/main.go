// Waferclass is the wafer-map defect-classification scenario from the
// survey's brain-inspired-computing thread: compare the lightweight HDC
// classifier against classical ML baselines on the nine canonical WM-811K
// defect classes, then inspect where HDC wins and loses.
package main

import (
	"fmt"
	"log"

	"math/rand"

	"repro/internal/core"
	"repro/internal/ml"
	"repro/internal/wafer"
)

func main() {
	cfg := wafer.DefaultConfig()
	train := wafer.GenerateDataset(40, cfg, 1)
	test := wafer.GenerateDataset(20, cfg, 2)
	fmt.Printf("%d training maps, %d test maps, %d classes\n",
		len(train.Maps), len(test.Maps), wafer.NumClasses)

	results, err := core.EvaluateWaferClassifiers(train, test, 4096, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-10s %9s %9s %12s %12s\n", "model", "accuracy", "macro-F1", "train", "infer/map")
	for _, r := range results {
		fmt.Printf("%-10s %8.1f%% %9.3f %12v %12v\n",
			r.Name, r.Accuracy*100, r.MacroF1, r.TrainTime.Round(1e6), r.InferPer.Round(1e3))
	}

	// Per-class recall of the HDC model: which defect patterns are easy?
	hdcResult := results[0]
	fmt.Println("\nHDC per-class recall:")
	for c := 0; c < int(wafer.NumClasses); c++ {
		row := hdcResult.Confusion[c]
		total, hit := 0, row[c]
		for _, v := range row {
			total += v
		}
		if total == 0 {
			continue
		}
		fmt.Printf("  %-10s %5.1f%%\n", wafer.Class(c), 100*float64(hit)/float64(total))
	}

	// Mixed-type maps (two superposed patterns): a pure-class model should
	// at least answer with one of the constituents.
	rng := rand.New(rand.NewSource(3))
	fmt.Println("\nmixed-type maps through the forest classifier:")
	forest := ml.NewForestClassifier(40, 12, 1)
	if err := forest.Fit(train.FeatureMatrix(), train.Labels); err != nil {
		log.Fatal(err)
	}
	for _, pair := range [][2]wafer.Class{
		{wafer.Center, wafer.Scratch},
		{wafer.EdgeRing, wafer.Loc},
	} {
		m := wafer.GenerateMixed(pair[0], pair[1], cfg, rng)
		pred := wafer.Class(forest.Predict(wafer.Features(m)))
		fmt.Printf("  %v + %v → classified %v\n", pair[0], pair[1], pred)
	}

	// The dimension/accuracy tradeoff that makes HDC attractive for
	// on-tester deployment: sweep the hypervector size.
	fmt.Println("\nHDC dimension sweep:")
	for _, dim := range []int{256, 1024, 4096} {
		h := core.NewHDCWaferClassifier(dim, cfg.Size, 20, 1)
		if err := h.Fit(train); err != nil {
			log.Fatal(err)
		}
		pred := make([]int, len(test.Maps))
		for i, m := range test.Maps {
			pred[i] = h.Predict(m)
		}
		fmt.Printf("  dim %5d: accuracy %.1f%% (memory %d bytes/class)\n",
			dim, ml.Accuracy(test.Labels, pred)*100, dim/8)
	}
}
