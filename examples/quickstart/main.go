// Quickstart tours the toolkit end to end on a small design: build a
// circuit, generate tests, characterize a library, time the design, age
// it, and classify some wafer maps — one taste of every subsystem.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/aging"
	"repro/internal/atpg"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/liberty"
	"repro/internal/spice"
	"repro/internal/sta"
	"repro/internal/wafer"
)

func main() {
	// 1. A circuit: an 8-bit ripple-carry adder (or parse your own .bench
	//    file with circuit.ParseBench).
	n := circuit.RippleAdder(8)
	fmt.Println("circuit:", n.Stats())

	// 2. Test generation: random phase + PODEM + compaction.
	res, err := atpg.Run(n, atpg.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ATPG: %.1f%% stuck-at coverage with %d patterns\n",
		res.Coverage*100, res.Patterns.N)

	// 3. A standard-cell library, characterized from the transistor level
	//    at 300 K (coarse grid keeps the demo fast).
	lib, err := liberty.Characterize("demo300", liberty.AllCells(),
		spice.Default(300), liberty.CoarseGrid())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("library:", lib.Summary())

	// 4. Static timing analysis.
	an, err := sta.New(n, lib)
	if err != nil {
		log.Fatal(err)
	}
	tm, err := an.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("timing: critical path %.1f ps → fmax %.0f MHz\n",
		tm.WCDelay*1e12, tm.Fmax()/1e6)

	// 5. Aging: how much slower after ten years of a realistic workload?
	model := aging.Default()
	stress := aging.Stress{Years: 10, TempK: 350, Duty: 0.4, Activity: 0.15, ClockHz: tm.Fmax()}
	fmt.Printf("aging: 10-year ΔVth %.1f mV → delay factor %.3f (worst case %.3f)\n",
		model.DeltaVth(stress)*1e3, model.Degradation(stress),
		model.Degradation(aging.WorstCase(10, 350, tm.Fmax())))

	// 6. Wafer-map classification with hyperdimensional computing.
	cfg := wafer.DefaultConfig()
	cfg.Size = 32
	train := wafer.GenerateDataset(15, cfg, 1)
	test := wafer.GenerateDataset(5, cfg, 2)
	h := core.NewHDCWaferClassifier(2048, cfg.Size, 20, 1)
	if err := h.Fit(train); err != nil {
		log.Fatal(err)
	}
	correct := 0
	for i, m := range test.Maps {
		if h.Predict(m) == test.Labels[i] {
			correct++
		}
	}
	fmt.Printf("wafer HDC: %.0f%% accuracy on %d held-out maps\n",
		100*float64(correct)/float64(len(test.Maps)), len(test.Maps))

	// Bonus: one wafer map, up close.
	m := wafer.Generate(wafer.Donut, cfg, rand.New(rand.NewSource(7)))
	fmt.Printf("a %v map has a fail fraction of %.1f%%\n", m.Label, m.FailFraction()*100)
}
