// Adaptivetest is the production-test scenario: screen a lot of devices
// with parametric outlier detection, calibrated to a yield-loss budget.
// It compares univariate PAT against the multivariate ML screens and shows
// the escape/overkill tradeoff that adaptive test tunes.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/outlier"
)

func main() {
	cfg := outlier.DefaultLotConfig()
	cfg.Devices = 5000
	lot := outlier.Synthesize(cfg, 1)

	// The reference population: devices that passed all spec tests. Here
	// we cheat with the ground truth to build a clean reference, like a
	// golden-lot calibration would.
	var ref [][]float64
	nDefects := 0
	for i, d := range lot.Defective {
		if d {
			nDefects++
		} else {
			ref = append(ref, lot.X[i])
		}
	}
	fmt.Printf("lot: %d devices, %d tests each, %d latent defects (%.2f%%)\n",
		cfg.Devices, cfg.Tests, nDefects, 100*float64(nDefects)/float64(cfg.Devices))

	for _, s := range []struct {
		name   string
		scorer outlier.Scorer
	}{
		{"zscore-PAT", &outlier.ZScorePAT{}},
		{"mahalanobis", &outlier.Mahalanobis{}},
		{"kNN-10", &outlier.KNNOutlier{K: 10}},
		{"PCA-residual", &outlier.PCAResidual{}},
	} {
		// Calibrate the operating point to a 1% overkill budget.
		flow, err := core.NewAdaptiveFlow(s.scorer, ref, 0.01)
		if err != nil {
			log.Fatal(err)
		}
		res := flow.Screen(lot)
		caught := nDefects - res.Escapes
		auc := outlier.AUC(outlier.ScoreAll(s.scorer, lot.X), lot.Defective)
		fmt.Printf("\n%s (threshold %.2f, AUC %.3f):\n", s.name, flow.Threshold, auc)
		fmt.Printf("  rejected %d of %d devices\n", res.Rejected, res.Devices)
		fmt.Printf("  caught   %d of %d defects (%.0f%%), %d escapes\n",
			caught, nDefects, 100*float64(caught)/float64(nDefects), res.Escapes)
		fmt.Printf("  overkill %d healthy devices (%.2f%% yield loss)\n",
			res.Overkill, 100*float64(res.Overkill)/float64(len(ref)))
	}

	// The full tradeoff curve for the best screen.
	m := &outlier.Mahalanobis{}
	if err := m.Fit(ref); err != nil {
		log.Fatal(err)
	}
	scores := outlier.ScoreAll(m, lot.X)
	fmt.Println("\nmahalanobis escape-vs-overkill curve:")
	for _, p := range outlier.Sweep(scores, lot.Defective, 9) {
		fmt.Printf("  threshold %6.2f: escapes %5.1f%%  overkill %5.1f%%\n",
			p.Threshold, p.EscapeRate*100, p.OverkillRate*100)
	}
}
