// Characterize is the ML-for-EDA scenario from the survey's cell-library
// thread: characterize standard cells from the transistor level, cache the
// corner as an industry-style Liberty file, then train ML surrogates that
// replace the expensive transient simulations — and quantify the
// error/speedup tradeoff.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/liberty"
	"repro/internal/spice"
)

func main() {
	// 1. Classic flow: full characterization of a corner, cached to .lib.
	cells := liberty.AllCells()
	fmt.Printf("characterizing %d cells at 300 K (coarse grid)...\n", len(cells))
	lib, err := liberty.Characterize("tt300", cells, spice.Default(300), liberty.CoarseGrid())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(lib.Summary())

	f, err := os.CreateTemp("", "tt300-*.lib")
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(f.Name())
	if err := lib.WriteLib(f); err != nil {
		log.Fatal(err)
	}
	info, _ := f.Stat()
	f.Close()
	fmt.Printf("cached corner to %s (%d KiB)\n\n", f.Name(), info.Size()/1024)

	// 2. The intelligent flow: sample ground truth once, train surrogates,
	//    and predict any (cell, slew, load, aging) query point instantly.
	fmt.Println("building arc corpus across an aging ΔVth sweep...")
	data, err := core.BuildArcData(liberty.BaseCells(), spice.Default(300),
		[]float64{0, 0.03, 0.06, 0.09}, liberty.CoarseGrid())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d points, %v of transient simulation\n\n", data.Runs, data.SpiceTime.Round(1e6))

	fmt.Printf("%-12s %8s %10s %12s %10s\n", "model", "MAPE", "R²", "predict/pt", "speedup")
	var best *core.Surrogate
	bestMAPE := 1.0
	for _, mz := range core.ModelZoo(1) {
		sur, rep, err := core.TrainSurrogate(mz.Name, mz.New(), data, 0.7, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %7.2f%% %10.4f %12v %9.0fx\n",
			rep.Name, rep.MAPE*100, rep.R2, rep.PredictPer.Round(10), rep.Speedup)
		if rep.MAPE < bestMAPE {
			best, bestMAPE = sur, rep.MAPE
		}
	}

	// 3. Use the best surrogate like a characterizer: query an aged corner
	//    point that was never simulated.
	sample := data.Samples[len(data.Samples)/2]
	fmt.Printf("\nbest surrogate (%s) on a held corpus point (%s pin %d):\n",
		best.Name, sample.Cell, sample.Pin)
	fmt.Printf("  SPICE %.2f ps vs surrogate %.2f ps\n",
		sample.Delay*1e12, best.Predict(sample.Features)*1e12)
}
