// Diagnosis is the failure-analysis scenario: a device fails on the
// tester — which physical defect explains the failure log? The example
// generates a test set, injects a fault, records the failing outputs
// (with tester noise), and ranks candidate defects with both the classical
// dictionary match and the learned ranker.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/atpg"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/diagnosis"
)

func main() {
	n := circuit.ArrayMultiplier(4)
	fmt.Println("device under diagnosis:", n.Stats())

	// Production test set from ATPG.
	gen, err := atpg.Run(n, atpg.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test set: %d patterns, %.1f%% coverage\n", gen.Patterns.N, gen.Coverage*100)

	d, err := diagnosis.New(n, gen.Patterns)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dictionary: %d candidate faults\n", len(d.Faults))

	// Train the learned ranker on one third of the fault population.
	var trainSample []int
	for i := range d.Faults {
		if i%3 == 0 && d.Dict[i].FailBits() > 0 {
			trainSample = append(trainSample, i)
		}
	}
	scorer, err := core.TrainDiagnosisScorer(d, gen.Patterns, trainSample, 0.15, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Inject one specific defect and diagnose it under 20% tester noise.
	rng := rand.New(rand.NewSource(9))
	trueIdx := 0
	for i := 1; i < len(d.Faults); i++ {
		if i%3 != 0 && d.Dict[i].FailBits() > 5 {
			trueIdx = i
			break
		}
	}
	fmt.Printf("\ninjected defect: %s\n", d.Faults[trueIdx].Name(n))
	obs, err := diagnosis.Observe(n, gen.Patterns, d.Faults[trueIdx], 0.2, rng.Float64)
	if err != nil {
		log.Fatal(err)
	}

	for _, mode := range []struct {
		name   string
		scorer diagnosis.Scorer
	}{
		{"classical (Jaccard)", nil},
		{"learned ranker", scorer},
	} {
		cands := d.Diagnose(obs, mode.scorer)
		fmt.Printf("\n%s — top 5 candidates:\n", mode.name)
		for r := 0; r < 5 && r < len(cands); r++ {
			mark := " "
			if cands[r].Index == trueIdx {
				mark = "← injected"
			}
			fmt.Printf("  %d. %-20s score %.4f %s\n",
				r+1, cands[r].Fault.Name(n), cands[r].Score, mark)
		}
		fmt.Printf("  true fault rank: %d\n", d.HitRank(cands, trueIdx))
	}

	// Population-level accuracy at two noise levels.
	var cases []int
	for i := range d.Faults {
		if i%3 == 1 && d.Dict[i].FailBits() > 0 && len(cases) < 50 {
			cases = append(cases, i)
		}
	}
	for _, noise := range []float64{0, 0.2} {
		r1 := rand.New(rand.NewSource(33))
		base, err := d.Evaluate(gen.Patterns, cases, noise, r1.Float64, nil)
		if err != nil {
			log.Fatal(err)
		}
		r2 := rand.New(rand.NewSource(33))
		learned, err := d.Evaluate(gen.Patterns, cases, noise, r2.Float64, scorer)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nnoise %.0f%%: top-1 %.0f%% → %.0f%%, top-5 %.0f%% → %.0f%% (classical → learned)\n",
			noise*100, base.Top1Rate()*100, learned.Top1Rate()*100,
			base.Top5Rate()*100, learned.Top5Rate()*100)
	}
}
