package cluster

import (
	"errors"
	"net"
	"sync"
)

// Loopback is an in-process transport: a net.Listener whose connections are
// net.Pipe pairs handed out by Dial. It runs the complete wire protocol —
// framing, hashing, deadlines, reconnects — without sockets, which is what
// makes the cluster unit-testable (and usable single-machine via the
// coordinator's in-process worker mode).
type Loopback struct {
	conns chan net.Conn

	mu     sync.Mutex
	closed chan struct{}
}

// ErrLoopbackClosed is returned by Accept and Dial after Close.
var ErrLoopbackClosed = errors.New("cluster: loopback transport closed")

// NewLoopback returns an open in-process transport.
func NewLoopback() *Loopback {
	return &Loopback{
		conns:  make(chan net.Conn),
		closed: make(chan struct{}),
	}
}

// Dial opens a new in-process connection to the listener side.
func (l *Loopback) Dial() (net.Conn, error) {
	server, client := net.Pipe()
	select {
	case l.conns <- server:
		return client, nil
	case <-l.closed:
		server.Close()
		client.Close()
		return nil, ErrLoopbackClosed
	}
}

// Accept implements net.Listener.
func (l *Loopback) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.closed:
		return nil, ErrLoopbackClosed
	}
}

// Close implements net.Listener. It is idempotent.
func (l *Loopback) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	select {
	case <-l.closed:
	default:
		close(l.closed)
	}
	return nil
}

// Addr implements net.Listener.
func (l *Loopback) Addr() net.Addr { return loopbackAddr{} }

type loopbackAddr struct{}

func (loopbackAddr) Network() string { return "loopback" }
func (loopbackAddr) String() string  { return "in-process" }
