package cluster

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/logic"
)

// JobKind selects which engine a job runs on its shards.
type JobKind uint8

// Job kinds.
const (
	KindDetect     JobKind = 1 // fault detection with per-shard dropping (fault.Simulator.RunInto)
	KindDictionary JobKind = 2 // full-response dictionary columns (fault.Simulator.DictionaryRange)
)

func (k JobKind) String() string {
	switch k {
	case KindDetect:
		return "detect"
	case KindDictionary:
		return "dictionary"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// helloMsg is the worker's join handshake.
type helloMsg struct {
	Proto uint16
	ID    string
}

// setupMsg carries the whole job definition: the canonical netlist bytes
// (plus their content hash, which pins every later shard of the job to one
// exact circuit), the pattern set and the explicit fault list. Workers are
// stateless between jobs: everything a shard needs arrives in one frame.
type setupMsg struct {
	JobID    uint64
	Kind     JobKind
	Words    uint8
	NetBytes []byte
	NetHash  [32]byte
	Inputs   int
	NPat     int
	PatBits  [][]logic.Word // [input][word], exactly as logic.PatternSet stores them
	Faults   []fault.Fault
}

// shardMsg is one work unit. For KindDetect, [Lo,Hi) is a fault-index
// range; for KindDictionary it is a pattern-word column range (W-block
// aligned by the coordinator's partitioner).
type shardMsg struct {
	JobID  uint64
	Shard  uint32
	Lo, Hi uint32
}

// resultMsg is a shard's partial result. For KindDetect, DetBy holds the
// per-fault first-detection indices of the shard's fault range. For
// KindDictionary, Rows holds each fault's sparse signature entries over the
// shard's column range.
type resultMsg struct {
	JobID  uint64
	Shard  uint32
	Kind   JobKind
	Lo, Hi uint32
	DetBy  []int32    // KindDetect: len Hi-Lo, -1 = undetected
	Rows   []sigEntry // KindDictionary: sparse nonzero (fault, po) rows
}

// sigEntry is one nonzero signature row fragment: the Hi-Lo column words of
// (fault Fi, output Po).
type sigEntry struct {
	Fi    uint32
	Po    uint32
	Words []logic.Word
}

// errorMsg reports a typed worker-side failure for a shard (or the whole
// setup when Shard is math.MaxUint32).
type errorMsg struct {
	JobID uint64
	Shard uint32
	Msg   string
}

const errorShardSetup = math.MaxUint32

// doneMsg tells the worker the job completed; it returns to awaiting the
// next setup on the same connection.
type doneMsg struct {
	JobID uint64
}

// ---------------------------------------------------------------------------
// Encoding. Explicit field-by-field big-endian serialization over a byte
// buffer; the decoder is a sticky-error cursor, so decode paths read
// linearly and classify every malformation as ErrMalformed.

type encoder struct {
	buf bytes.Buffer
}

func (e *encoder) u8(v uint8) { e.buf.WriteByte(v) }
func (e *encoder) u16(v uint16) {
	var b [2]byte
	binary.BigEndian.PutUint16(b[:], v)
	e.buf.Write(b[:])
}
func (e *encoder) u32(v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	e.buf.Write(b[:])
}
func (e *encoder) u64(v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	e.buf.Write(b[:])
}
func (e *encoder) i32(v int32) { e.u32(uint32(v)) }

func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.buf.WriteString(s)
}

func (e *encoder) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.buf.Write(b)
}

type decoder struct {
	data []byte
	off  int
	err  error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrMalformed, fmt.Sprintf(format, args...))
	}
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return make([]byte, n)
	}
	if n < 0 || d.off+n > len(d.data) {
		d.fail("need %d bytes at offset %d of %d", n, d.off, len(d.data))
		return make([]byte, max(n, 0))
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u8() uint8   { return d.take(1)[0] }
func (d *decoder) u16() uint16 { return binary.BigEndian.Uint16(d.take(2)) }
func (d *decoder) u32() uint32 { return binary.BigEndian.Uint32(d.take(4)) }
func (d *decoder) u64() uint64 { return binary.BigEndian.Uint64(d.take(8)) }
func (d *decoder) i32() int32  { return int32(d.u32()) }

func (d *decoder) str() string   { return string(d.take(int(d.u32()))) }
func (d *decoder) bytes() []byte { return d.take(int(d.u32())) }

// finish returns the sticky error, or ErrMalformed if trailing bytes remain
// — a frame must decode exactly.
func (d *decoder) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.data) {
		return fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(d.data)-d.off)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Message encode/decode.

func (m *helloMsg) encode() []byte {
	var e encoder
	e.u16(m.Proto)
	e.str(m.ID)
	return e.buf.Bytes()
}

func decodeHello(payload []byte) (*helloMsg, error) {
	d := &decoder{data: payload}
	m := &helloMsg{Proto: d.u16(), ID: d.str()}
	return m, d.finish()
}

func (m *setupMsg) encode() []byte {
	var e encoder
	e.u64(m.JobID)
	e.u8(uint8(m.Kind))
	e.u8(m.Words)
	e.bytes(m.NetBytes)
	e.buf.Write(m.NetHash[:])
	e.u32(uint32(m.Inputs))
	e.u32(uint32(m.NPat))
	for _, row := range m.PatBits {
		for _, w := range row {
			e.u64(w)
		}
	}
	e.u32(uint32(len(m.Faults)))
	for _, f := range m.Faults {
		e.u32(uint32(f.Gate))
		e.i32(int32(f.Pin))
		e.u8(f.SA)
	}
	return e.buf.Bytes()
}

func decodeSetup(payload []byte) (*setupMsg, error) {
	d := &decoder{data: payload}
	m := &setupMsg{
		JobID: d.u64(),
		Kind:  JobKind(d.u8()),
		Words: d.u8(),
	}
	m.NetBytes = d.bytes()
	copy(m.NetHash[:], d.take(sha256.Size))
	m.Inputs = int(d.u32())
	m.NPat = int(d.u32())
	if d.err != nil {
		return nil, d.err
	}
	if m.Kind != KindDetect && m.Kind != KindDictionary {
		return nil, fmt.Errorf("%w: unknown job kind %d", ErrMalformed, m.Kind)
	}
	words := (m.NPat + logic.WordBits - 1) / logic.WordBits
	if m.Inputs < 0 || m.NPat < 0 || m.Inputs*words*8 > len(payload) {
		return nil, fmt.Errorf("%w: implausible pattern dimensions %d×%d", ErrMalformed, m.Inputs, m.NPat)
	}
	m.PatBits = make([][]logic.Word, m.Inputs)
	backing := make([]logic.Word, m.Inputs*words)
	for i := range m.PatBits {
		m.PatBits[i], backing = backing[:words:words], backing[words:]
		for w := 0; w < words; w++ {
			m.PatBits[i][w] = d.u64()
		}
	}
	nf := int(d.u32())
	if d.err != nil {
		return nil, d.err
	}
	if nf < 0 || nf*9 > len(payload) {
		return nil, fmt.Errorf("%w: implausible fault count %d", ErrMalformed, nf)
	}
	m.Faults = make([]fault.Fault, nf)
	for i := range m.Faults {
		m.Faults[i] = fault.Fault{Gate: int(d.u32()), Pin: int(d.i32()), SA: d.u8()}
	}
	return m, d.finish()
}

func (m *shardMsg) encode() []byte {
	var e encoder
	e.u64(m.JobID)
	e.u32(m.Shard)
	e.u32(m.Lo)
	e.u32(m.Hi)
	return e.buf.Bytes()
}

func decodeShard(payload []byte) (*shardMsg, error) {
	d := &decoder{data: payload}
	m := &shardMsg{JobID: d.u64(), Shard: d.u32(), Lo: d.u32(), Hi: d.u32()}
	return m, d.finish()
}

func (m *resultMsg) encode() []byte {
	var e encoder
	e.u64(m.JobID)
	e.u32(m.Shard)
	e.u8(uint8(m.Kind))
	e.u32(m.Lo)
	e.u32(m.Hi)
	switch m.Kind {
	case KindDetect:
		e.u32(uint32(len(m.DetBy)))
		for _, v := range m.DetBy {
			e.i32(v)
		}
	case KindDictionary:
		e.u32(uint32(len(m.Rows)))
		for _, r := range m.Rows {
			e.u32(r.Fi)
			e.u32(r.Po)
			for _, w := range r.Words {
				e.u64(w)
			}
		}
	}
	return e.buf.Bytes()
}

func decodeResult(payload []byte) (*resultMsg, error) {
	d := &decoder{data: payload}
	m := &resultMsg{
		JobID: d.u64(),
		Shard: d.u32(),
		Kind:  JobKind(d.u8()),
		Lo:    d.u32(),
		Hi:    d.u32(),
	}
	if d.err != nil {
		return nil, d.err
	}
	span := int(m.Hi) - int(m.Lo)
	if span < 0 {
		return nil, fmt.Errorf("%w: result range [%d,%d)", ErrMalformed, m.Lo, m.Hi)
	}
	switch m.Kind {
	case KindDetect:
		n := int(d.u32())
		if d.err != nil {
			return nil, d.err
		}
		if n != span || n*4 > len(payload) {
			return nil, fmt.Errorf("%w: detect result count %d for range [%d,%d)", ErrMalformed, n, m.Lo, m.Hi)
		}
		m.DetBy = make([]int32, n)
		for i := range m.DetBy {
			m.DetBy[i] = d.i32()
		}
	case KindDictionary:
		n := int(d.u32())
		if d.err != nil {
			return nil, d.err
		}
		if n < 0 || span == 0 || n*(8+span*8) > len(payload) {
			return nil, fmt.Errorf("%w: dictionary result rows %d for range [%d,%d)", ErrMalformed, n, m.Lo, m.Hi)
		}
		m.Rows = make([]sigEntry, n)
		backing := make([]logic.Word, n*span)
		for i := range m.Rows {
			m.Rows[i].Fi = d.u32()
			m.Rows[i].Po = d.u32()
			m.Rows[i].Words, backing = backing[:span:span], backing[span:]
			for w := 0; w < span; w++ {
				m.Rows[i].Words[w] = d.u64()
			}
		}
	default:
		return nil, fmt.Errorf("%w: unknown result kind %d", ErrMalformed, m.Kind)
	}
	return m, d.finish()
}

func (m *errorMsg) encode() []byte {
	var e encoder
	e.u64(m.JobID)
	e.u32(m.Shard)
	e.str(m.Msg)
	return e.buf.Bytes()
}

func decodeError(payload []byte) (*errorMsg, error) {
	d := &decoder{data: payload}
	m := &errorMsg{JobID: d.u64(), Shard: d.u32(), Msg: d.str()}
	return m, d.finish()
}

func (m *doneMsg) encode() []byte {
	var e encoder
	e.u64(m.JobID)
	return e.buf.Bytes()
}

func decodeDone(payload []byte) (*doneMsg, error) {
	d := &decoder{data: payload}
	m := &doneMsg{JobID: d.u64()}
	return m, d.finish()
}

// encodeSetup builds the setup payload for a job over the given netlist,
// patterns and faults. The netlist travels in its canonical binary encoding
// (circuit.MarshalBinary), whose round trip preserves gate IDs and PI/PO
// order exactly — the property that lets coordinator and workers index one
// another's fault lists and signature rows without any mapping.
func encodeSetup(jobID uint64, kind JobKind, words int, n *circuit.Netlist, p *logic.PatternSet, faults []fault.Fault) ([]byte, [32]byte, error) {
	netBytes, err := n.MarshalBinary()
	if err != nil {
		return nil, [32]byte{}, err
	}
	netHash := sha256.Sum256(netBytes)
	m := &setupMsg{
		JobID:    jobID,
		Kind:     kind,
		Words:    uint8(words),
		NetBytes: netBytes,
		NetHash:  netHash,
		Inputs:   p.Inputs,
		NPat:     p.N,
		PatBits:  p.Bits,
		Faults:   faults,
	}
	return m.encode(), netHash, nil
}

// hashJobInputs digests the job inputs the circuit hash does not cover —
// the pattern bits and the explicit fault list — so a journal header can
// pin a job to its exact inputs, not just its circuit.
func hashJobInputs(p *logic.PatternSet, faults []fault.Fault) [32]byte {
	h := sha256.New()
	var b [8]byte
	put32 := func(v uint32) {
		binary.BigEndian.PutUint32(b[:4], v)
		h.Write(b[:4])
	}
	put32(uint32(p.Inputs))
	put32(uint32(p.N))
	for _, row := range p.Bits {
		for _, w := range row {
			binary.BigEndian.PutUint64(b[:], uint64(w))
			h.Write(b[:])
		}
	}
	put32(uint32(len(faults)))
	for _, f := range faults {
		put32(uint32(f.Gate))
		put32(uint32(int32(f.Pin)))
		h.Write([]byte{f.SA})
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}
