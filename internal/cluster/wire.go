// Package cluster distributes PPSFP fault simulation and fault-dictionary
// construction across worker nodes. A coordinator compiles the circuit
// once, partitions the job into shards — contiguous fault ranges for
// detection runs, disjoint pattern-word column ranges for dictionary
// builds — and dispatches them to workers over a length-prefixed binary
// wire protocol with a content hash per frame. Workers run the existing
// single-process engines (fault.Simulator) on their shard and stream
// partial results back; the coordinator merge writes disjoint output
// regions, so the assembled result is bit-identical to the serial engine
// for any worker count, shard size, dispatch order or failure schedule.
//
// Robustness is part of the protocol: per-shard deadlines re-dispatch
// stragglers (the first result wins and duplicates are discarded
// idempotently), workers join and leave freely with reconnect backoff, and
// every wire-level failure surfaces as a typed error followed by
// re-dispatch — never a hang and never a corrupt merge. The Loopback
// transport runs the full protocol over in-process pipes, so everything is
// unit-testable without sockets.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame format, transhift-style explicit framing with easyfl-style content
// hashing: a fixed header carries a magic, the protocol version, the frame
// type, the big-endian payload length and the sha256 of the payload. The
// hash makes payload corruption (truncation, bit rot, desynced streams)
// a typed error at the frame boundary instead of a garbage decode
// downstream.
//
//	offset  size  field
//	0       4     magic "ITRC"
//	4       1     protocol version
//	5       1     frame type
//	6       4     payload length (big-endian)
//	10      32    sha256(payload)
//	42      n     payload
const (
	wireMagic   = "ITRC"
	WireVersion = 1
	headerSize  = 4 + 1 + 1 + 4 + sha256.Size

	// DefaultMaxFrame bounds a single frame's payload: large enough for a
	// million-gate setup frame or a dense dictionary shard, small enough
	// that a corrupt length field cannot trigger a runaway allocation.
	DefaultMaxFrame = 1 << 28
)

// FrameType discriminates the protocol's message kinds.
type FrameType uint8

// Protocol frame types. The coordinator sends Setup, Shard and Done; the
// worker sends Hello, Result and Error.
const (
	FrameHello  FrameType = 1 // worker → coordinator: join handshake
	FrameSetup  FrameType = 2 // coordinator → worker: job definition (circuit, patterns, faults)
	FrameShard  FrameType = 3 // coordinator → worker: one work unit
	FrameResult FrameType = 4 // worker → coordinator: one shard's partial result
	FrameDone   FrameType = 5 // coordinator → worker: job complete, await next Setup
	FrameError  FrameType = 6 // worker → coordinator: typed shard/setup failure
)

func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "hello"
	case FrameSetup:
		return "setup"
	case FrameShard:
		return "shard"
	case FrameResult:
		return "result"
	case FrameDone:
		return "done"
	case FrameError:
		return "error"
	}
	return fmt.Sprintf("frame(%d)", uint8(t))
}

// Typed wire errors. Everything a peer can get wrong on the wire maps to
// exactly one of these (possibly wrapped with context), so failure-path
// tests can pin the classification with errors.Is.
var (
	ErrBadMagic     = errors.New("cluster: bad frame magic")
	ErrVersion      = errors.New("cluster: wire protocol version mismatch")
	ErrFrameTooBig  = errors.New("cluster: frame exceeds size limit")
	ErrPayloadHash  = errors.New("cluster: frame payload hash mismatch")
	ErrTruncated    = errors.New("cluster: truncated frame")
	ErrMalformed    = errors.New("cluster: malformed message payload")
	ErrJobMismatch  = errors.New("cluster: message for a different job")
	ErrProtocol     = errors.New("cluster: unexpected frame type")
	ErrClosed       = errors.New("cluster: coordinator closed")
	ErrWorkerFailed = errors.New("cluster: worker reported shard failure")
)

// WriteFrame writes one framed message: header (magic, version, type,
// length, payload hash) followed by the payload.
func WriteFrame(w io.Writer, t FrameType, payload []byte) error {
	hdr := make([]byte, headerSize, headerSize+len(payload))
	copy(hdr, wireMagic)
	hdr[4] = WireVersion
	hdr[5] = byte(t)
	binary.BigEndian.PutUint32(hdr[6:10], uint32(len(payload)))
	sum := sha256.Sum256(payload)
	copy(hdr[10:], sum[:])
	// One Write call for header+payload: a frame is either fully queued to
	// the transport or fails as a unit, which keeps the failure model
	// simple (a short write is a broken connection, not a desynced stream).
	_, err := w.Write(append(hdr, payload...))
	return err
}

// ReadFrame reads and verifies one framed message. maxFrame bounds the
// payload length accepted (0 selects DefaultMaxFrame). Errors are typed:
// ErrBadMagic, ErrVersion, ErrFrameTooBig, ErrPayloadHash, or ErrTruncated
// for short reads; io.EOF is returned untouched only for a clean EOF at a
// frame boundary, so callers can distinguish orderly close from mid-frame
// loss.
func ReadFrame(r io.Reader, maxFrame uint32) (FrameType, []byte, error) {
	if maxFrame == 0 {
		maxFrame = DefaultMaxFrame
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: header: %v", ErrTruncated, err)
	}
	if string(hdr[:4]) != wireMagic {
		return 0, nil, ErrBadMagic
	}
	if hdr[4] != WireVersion {
		return 0, nil, fmt.Errorf("%w: got %d, want %d", ErrVersion, hdr[4], WireVersion)
	}
	t := FrameType(hdr[5])
	n := binary.BigEndian.Uint32(hdr[6:10])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("%w: %d bytes > limit %d", ErrFrameTooBig, n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("%w: payload: %v", ErrTruncated, err)
	}
	if sum := sha256.Sum256(payload); sum != [sha256.Size]byte(hdr[10:42]) {
		return 0, nil, ErrPayloadHash
	}
	return t, payload, nil
}
