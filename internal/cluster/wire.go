// Package cluster distributes PPSFP fault simulation and fault-dictionary
// construction across worker nodes. A coordinator compiles the circuit
// once, partitions the job into shards — contiguous fault ranges for
// detection runs, disjoint pattern-word column ranges for dictionary
// builds — and dispatches them to workers over a length-prefixed binary
// wire protocol with a content hash per frame. Workers run the existing
// single-process engines (fault.Simulator) on their shard and stream
// partial results back; the coordinator merge writes disjoint output
// regions, so the assembled result is bit-identical to the serial engine
// for any worker count, shard size, dispatch order or failure schedule.
//
// Robustness is part of the protocol: per-shard deadlines re-dispatch
// stragglers (the first result wins and duplicates are discarded
// idempotently), workers join and leave freely with reconnect backoff, and
// every wire-level failure surfaces as a typed error followed by
// re-dispatch — never a hang and never a corrupt merge. The Loopback
// transport runs the full protocol over in-process pipes, so everything is
// unit-testable without sockets.
package cluster

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/wire"
)

// The frame layout (magic, version, type, big-endian length, sha256 of the
// payload) lives in internal/wire since the artifact-replication protocol
// adopted it; this file keeps the cluster protocol's identity — its magic,
// version, frame-type vocabulary — and re-exports the typed errors so
// existing callers and tests are untouched.
const (
	wireMagic   = "ITRC"
	WireVersion = 1
	headerSize  = wire.HeaderSize

	// DefaultMaxFrame bounds a single frame's payload: large enough for a
	// million-gate setup frame or a dense dictionary shard, small enough
	// that a corrupt length field cannot trigger a runaway allocation.
	DefaultMaxFrame = wire.DefaultMaxFrame
)

// proto is the cluster job-dispatch protocol instance.
var proto = wire.Proto{Magic: wireMagic, Version: WireVersion}

// FrameType discriminates the protocol's message kinds.
type FrameType uint8

// Protocol frame types. The coordinator sends Setup, Shard and Done; the
// worker sends Hello, Result and Error.
const (
	FrameHello  FrameType = 1 // worker → coordinator: join handshake
	FrameSetup  FrameType = 2 // coordinator → worker: job definition (circuit, patterns, faults)
	FrameShard  FrameType = 3 // coordinator → worker: one work unit
	FrameResult FrameType = 4 // worker → coordinator: one shard's partial result
	FrameDone   FrameType = 5 // coordinator → worker: job complete, await next Setup
	FrameError  FrameType = 6 // worker → coordinator: typed shard/setup failure
)

func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "hello"
	case FrameSetup:
		return "setup"
	case FrameShard:
		return "shard"
	case FrameResult:
		return "result"
	case FrameDone:
		return "done"
	case FrameError:
		return "error"
	}
	return fmt.Sprintf("frame(%d)", uint8(t))
}

// Typed wire errors. Everything a peer can get wrong on the wire maps to
// exactly one of these (possibly wrapped with context), so failure-path
// tests can pin the classification with errors.Is. The frame-level errors
// are the shared internal/wire identities.
var (
	ErrBadMagic     = wire.ErrBadMagic
	ErrVersion      = wire.ErrVersion
	ErrFrameTooBig  = wire.ErrFrameTooBig
	ErrPayloadHash  = wire.ErrPayloadHash
	ErrTruncated    = wire.ErrTruncated
	ErrMalformed    = errors.New("cluster: malformed message payload")
	ErrJobMismatch  = errors.New("cluster: message for a different job")
	ErrProtocol     = errors.New("cluster: unexpected frame type")
	ErrClosed       = errors.New("cluster: coordinator closed")
	ErrWorkerFailed = errors.New("cluster: worker reported shard failure")
)

// WriteFrame writes one framed message: header (magic, version, type,
// length, payload hash) followed by the payload.
func WriteFrame(w io.Writer, t FrameType, payload []byte) error {
	return proto.WriteFrame(w, uint8(t), payload)
}

// ReadFrame reads and verifies one framed message. maxFrame bounds the
// payload length accepted (0 selects DefaultMaxFrame). Errors are typed:
// ErrBadMagic, ErrVersion, ErrFrameTooBig, ErrPayloadHash, or ErrTruncated
// for short reads; io.EOF is returned untouched only for a clean EOF at a
// frame boundary, so callers can distinguish orderly close from mid-frame
// loss.
func ReadFrame(r io.Reader, maxFrame uint32) (FrameType, []byte, error) {
	t, payload, err := proto.ReadFrame(r, maxFrame)
	return FrameType(t), payload, err
}
