package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/logic"
)

// ---------------------------------------------------------------------------
// Journal unit tests: framing round trip, torn tails, corruption typing.

// buildJournal runs a detect job to completion with a journal attached and
// returns the durable journal bytes — a real journal, produced by the real
// write path.
func buildJournal(t *testing.T, cfg Config, n *circuit.Netlist, p *logic.PatternSet, faults []fault.Fault, words int) []byte {
	t.Helper()
	vf := &chaos.VolatileFile{}
	c, lb := startCoordinator(t, cfg)
	startWorker(t, lb, "w")
	if _, err := c.DetectOpt(testCtx(t), n, p, faults, words, JobOptions{Journal: NewJournal(vf)}); err != nil {
		t.Fatal(err)
	}
	return vf.Durable()
}

func TestJournalRoundTrip(t *testing.T) {
	n := circuit.RippleAdder(2)
	faults := fault.Universe(n)
	p := testPatterns(n, 70, 7)
	data := buildJournal(t, Config{ShardFaults: 8}, n, p, faults, 1)

	rep, err := ReadJournal(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Torn {
		t.Error("clean journal reported torn")
	}
	wantShards := (len(faults) + 7) / 8
	if rep.Shards() != wantShards {
		t.Errorf("Shards() = %d, want %d", rep.Shards(), wantShards)
	}
	if rep.Valid != int64(len(data)) {
		t.Errorf("Valid = %d, want %d", rep.Valid, len(data))
	}
	h := rep.Header
	if h.Kind != KindDetect || int(h.NFaults) != len(faults) || int(h.NShards) != wantShards || int(h.ShardUnit) != 8 {
		t.Errorf("header: %+v", h)
	}
}

// TestJournalTornTailEveryPrefix replays every byte-length prefix of a real
// journal: prefixes inside the header are corrupt (typed, no resume base),
// longer ones recover an intact record prefix — possibly torn, never a
// panic, and Valid always points at a clean frame boundary.
func TestJournalTornTailEveryPrefix(t *testing.T) {
	n := circuit.RippleAdder(2)
	faults := fault.Universe(n)
	p := testPatterns(n, 70, 9)
	data := buildJournal(t, Config{ShardFaults: 16}, n, p, faults, 1)

	readable := 0
	for cut := 0; cut <= len(data); cut++ {
		rep, err := ReadJournal(bytes.NewReader(data[:cut]))
		if err != nil {
			// Prefix ends inside the header frame: no resume base exists
			// and that is a typed refusal.
			if !errors.Is(err, ErrJournalCorrupt) {
				t.Fatalf("cut %d: untyped error %v", cut, err)
			}
			continue
		}
		readable++
		if rep.Valid > int64(cut) {
			t.Fatalf("cut %d: Valid %d beyond data", cut, rep.Valid)
		}
		if !rep.Torn && rep.Valid != int64(cut) {
			t.Fatalf("cut %d: not torn but Valid %d != cut", cut, rep.Valid)
		}
		// The valid prefix must itself replay cleanly — the truncate-
		// then-append resume contract.
		again, err := ReadJournal(bytes.NewReader(data[:rep.Valid]))
		if err != nil || again.Torn || again.Shards() != rep.Shards() {
			t.Fatalf("cut %d: valid prefix replay: %v torn=%v shards %d != %d",
				cut, err, again.Torn, again.Shards(), rep.Shards())
		}
	}
	if readable == 0 {
		t.Fatal("no prefix was readable — header never parsed")
	}
}

func TestJournalCorruptRecordTyped(t *testing.T) {
	// Records whose framing is intact but whose content is impossible must
	// be ErrJournalCorrupt, not a torn tail and never a merge.
	h := &JournalHeader{Kind: KindDetect, Words: 1, NFaults: 32, NPOs: 4, Inputs: 4, NPat: 64, ShardUnit: 8, NShards: 4}
	mk := func(res *resultMsg) []byte {
		vf := &chaos.VolatileFile{}
		jl := NewJournal(vf)
		if err := jl.WriteHeader(h); err != nil {
			t.Fatal(err)
		}
		if err := jl.Append(res); err != nil {
			t.Fatal(err)
		}
		if err := jl.Sync(); err != nil {
			t.Fatal(err)
		}
		return vf.Durable()
	}
	cases := map[string]*resultMsg{
		"shard out of range": {Shard: 99, Kind: KindDetect, Lo: 0, Hi: 8, DetBy: make([]int32, 8)},
		"range mismatch":     {Shard: 0, Kind: KindDetect, Lo: 0, Hi: 6, DetBy: make([]int32, 6)},
		"kind mismatch":      {Shard: 0, Kind: KindDictionary, Lo: 0, Hi: 8, Rows: nil},
		"bad detect index":   {Shard: 0, Kind: KindDetect, Lo: 0, Hi: 8, DetBy: []int32{-5, 0, 0, 0, 0, 0, 0, 0}},
	}
	for name, res := range cases {
		if _, err := ReadJournal(bytes.NewReader(mk(res))); !errors.Is(err, ErrJournalCorrupt) {
			t.Errorf("%s: err = %v, want ErrJournalCorrupt", name, err)
		}
	}
	// Garbage and empty streams are corrupt too, never panics.
	for _, data := range [][]byte{nil, []byte("not a journal"), bytes.Repeat([]byte{0xff}, 200)} {
		if _, err := ReadJournal(bytes.NewReader(data)); !errors.Is(err, ErrJournalCorrupt) {
			t.Errorf("garbage %d bytes: err = %v, want ErrJournalCorrupt", len(data), err)
		}
	}
}

func TestResumeMismatchTyped(t *testing.T) {
	n := circuit.Random(6, 50, 3)
	faults := fault.Universe(n)
	p := testPatterns(n, 70, 17)
	data := buildJournal(t, Config{ShardFaults: 16}, n, p, faults, 1)
	rep, err := ReadJournal(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}

	resume := func(t *testing.T, cfg Config, n *circuit.Netlist, p *logic.PatternSet, faults []fault.Fault) error {
		c, _ := startCoordinator(t, cfg)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_, err := c.DetectOpt(ctx, n, p, faults, 1, JobOptions{Resume: rep})
		return err
	}

	t.Run("different circuit", func(t *testing.T) {
		other := circuit.Random(6, 50, 4)
		if err := resume(t, Config{ShardFaults: 16}, other, testPatterns(other, 70, 17), fault.Universe(other)); !errors.Is(err, ErrJournalMismatch) {
			t.Fatalf("err = %v, want ErrJournalMismatch", err)
		}
	})
	t.Run("different patterns", func(t *testing.T) {
		if err := resume(t, Config{ShardFaults: 16}, n, testPatterns(n, 70, 18), faults); !errors.Is(err, ErrJournalMismatch) {
			t.Fatalf("err = %v, want ErrJournalMismatch", err)
		}
	})
	t.Run("different shard geometry", func(t *testing.T) {
		if err := resume(t, Config{ShardFaults: 32}, n, p, faults); !errors.Is(err, ErrJournalMismatch) {
			t.Fatalf("err = %v, want ErrJournalMismatch", err)
		}
	})
	t.Run("matching job resumes with zero workers", func(t *testing.T) {
		// The journal holds every shard: resume completes without any
		// worker ever connecting, bit-identical to the serial engine.
		c, _ := startCoordinator(t, Config{ShardFaults: 16})
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		got, err := c.DetectOpt(ctx, n, p, faults, 1, JobOptions{Resume: rep})
		if err != nil {
			t.Fatal(err)
		}
		compareDetect(t, got, serialDetect(t, n, p, faults))
	})
}

// TestJournalIOFailureFailsJob pins that a dying journal device fails the
// job with a typed error instead of silently continuing unprotected.
func TestJournalIOFailureFailsJob(t *testing.T) {
	n := circuit.RippleAdder(2)
	faults := fault.Universe(n)
	p := testPatterns(n, 70, 23)
	vf := &chaos.VolatileFile{}
	jl := NewJournal(vf)
	c, lb := startCoordinator(t, Config{ShardFaults: 8})
	startWorker(t, lb, "w")
	vf.Crash() // device dead before the job starts: header write must fail
	_, err := c.DetectOpt(testCtx(t), n, p, faults, 1, JobOptions{Journal: jl})
	if !errors.Is(err, chaos.ErrDeviceCrashed) {
		t.Fatalf("err = %v, want device-crash journal failure", err)
	}
}

// ---------------------------------------------------------------------------
// The acceptance grid: for detect and dictionary jobs across
// {crash point × workers × shard size × words}, a chaos-killed run's journal
// resumes to output bit-identical to the serial engine.

func TestClusterResumeBitIdentical(t *testing.T) {
	type jobFn func(t *testing.T, c *Coordinator, ctx context.Context, words int, opt JobOptions) (any, error)

	detNet := circuit.Random(8, 100, 3)
	detFaults := fault.Universe(detNet)
	detPat := testPatterns(detNet, 128, 11)
	detWant := serialDetect(t, detNet, detPat, detFaults)

	dictNet := circuit.Random(7, 60, 5)
	dictFaults := fault.Universe(dictNet)
	dictPat := testPatterns(dictNet, 1024, 13) // 16 words: several shards at every width
	dictSim, err := fault.NewSimulator(dictNet)
	if err != nil {
		t.Fatal(err)
	}
	dictWant := dictSim.Dictionary(dictPat, dictFaults)

	kinds := []struct {
		name   string
		shards []int // ShardFaults (detect) / ShardWords (dictionary)
		cfg    func(shard int) Config
		run    jobFn
		check  func(t *testing.T, got any)
	}{
		{
			name:   "detect",
			shards: []int{32, 128},
			cfg:    func(s int) Config { return Config{ShardFaults: s} },
			run: func(t *testing.T, c *Coordinator, ctx context.Context, words int, opt JobOptions) (any, error) {
				return c.DetectOpt(ctx, detNet, detPat, detFaults, words, opt)
			},
			check: func(t *testing.T, got any) { compareDetect(t, got.(*fault.Result), detWant) },
		},
		{
			name:   "dictionary",
			shards: []int{2, 8},
			cfg:    func(s int) Config { return Config{ShardWords: s} },
			run: func(t *testing.T, c *Coordinator, ctx context.Context, words int, opt JobOptions) (any, error) {
				return c.DictionaryOpt(ctx, dictNet, dictPat, dictFaults, words, opt)
			},
			check: func(t *testing.T, got any) { compareSigs(t, got.([]*fault.Signature), dictWant) },
		},
	}

	for _, k := range kinds {
		for _, point := range chaos.CrashPoints {
			for _, workers := range []int{1, 2, 4} {
				for _, shard := range k.shards {
					for _, words := range []int{1, 4, 8} {
						name := fmt.Sprintf("%s/%s/w%d/s%d/W%d", k.name, point, workers, shard, words)
						t.Run(name, func(t *testing.T) {
							t.Parallel()
							vf := &chaos.VolatileFile{}
							plan := &chaos.CrashPlan{Point: point, After: 2}

							cfg1 := k.cfg(shard)
							cfg1.CrashHook = plan.Hook()
							c1, lb1 := startCoordinator(t, cfg1)
							for i := 0; i < workers; i++ {
								startWorker(t, lb1, fmt.Sprintf("w%d", i))
							}
							got, err := k.run(t, c1, testCtx(t), words, JobOptions{Journal: NewJournal(vf)})
							if !plan.Fired() {
								// Too few shards for the plan to trigger: the
								// run completed; the combo degrades to plain
								// journaled bit-identity.
								if err != nil {
									t.Fatal(err)
								}
								k.check(t, got)
								return
							}
							if !errors.Is(err, ErrCrashed) {
								t.Fatalf("crashed run err = %v, want ErrCrashed", err)
							}

							// "Reboot": recover the durable bytes, replay,
							// truncate any torn tail, resume on a fresh
							// coordinator appending to the same journal.
							data := vf.Crash()
							rep, err := ReadJournal(bytes.NewReader(data))
							if err != nil {
								t.Fatalf("replay: %v", err)
							}
							vf.Truncate(int(rep.Valid))
							vf.Reopen()
							c2, lb2 := startCoordinator(t, k.cfg(shard))
							for i := 0; i < workers; i++ {
								startWorker(t, lb2, fmt.Sprintf("r%d", i))
							}
							got, err = k.run(t, c2, testCtx(t), words, JobOptions{Journal: NewJournal(vf), Resume: rep})
							if err != nil {
								t.Fatalf("resume: %v", err)
							}
							k.check(t, got)

							// The resumed journal must itself replay to a
							// complete, clean record set — crash-safety is
							// transitive across any number of crashes.
							final, err := ReadJournal(bytes.NewReader(vf.Durable()))
							if err != nil || final.Torn {
								t.Fatalf("final journal: %v torn=%v", err, final.Torn)
							}
							if final.Shards() < int(final.Header.NShards) {
								t.Fatalf("final journal has %d records for %d shards", final.Shards(), final.Header.NShards)
							}
						})
					}
				}
			}
		}
	}
}

// ---------------------------------------------------------------------------
// FuzzJournal: arbitrary bytes must replay to recover-or-typed-error —
// never a panic, never a record that validateResult would reject.

func FuzzJournal(f *testing.F) {
	n := circuit.RippleAdder(2)
	faults := fault.Universe(n)
	p := logic.NewPatternSet(len(n.PIs), 70)
	seed := uint64(0x1234)
	p.RandFill(func() uint64 { seed = seed*6364136223846793005 + 1; return seed })

	// Seed corpus: a real journal, truncations, a bit flip, garbage.
	vf := &chaos.VolatileFile{}
	jl := NewJournal(vf)
	h := &JournalHeader{Kind: KindDetect, Words: 1, NFaults: uint32(len(faults)), NPOs: uint32(len(n.POs)),
		Inputs: uint32(p.Inputs), NPat: uint32(p.N), ShardUnit: 8, NShards: uint32((len(faults) + 7) / 8)}
	if err := jl.WriteHeader(h); err != nil {
		f.Fatal(err)
	}
	for i := 0; i < int(h.NShards); i++ {
		spec := h.spec(i)
		res := &resultMsg{JobID: 1, Shard: uint32(i), Kind: KindDetect, Lo: spec.lo, Hi: spec.hi, DetBy: make([]int32, spec.hi-spec.lo)}
		for j := range res.DetBy {
			res.DetBy[j] = int32(j%3) - 1
		}
		if err := jl.Append(res); err != nil {
			f.Fatal(err)
		}
	}
	if err := jl.Sync(); err != nil {
		f.Fatal(err)
	}
	valid := vf.Durable()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-3])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x10
	f.Add(flipped)
	f.Add([]byte("ITRC garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := ReadJournal(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrJournalCorrupt) {
				t.Fatalf("untyped journal error: %v", err)
			}
			return
		}
		if rep.Valid > int64(len(data)) {
			t.Fatalf("Valid %d > input %d", rep.Valid, len(data))
		}
		// Every recovered record must survive the same validation the live
		// deliver path applies — a record that would corrupt a merge must
		// never be returned.
		for _, res := range rep.results {
			idx := int(res.Shard)
			if idx >= int(rep.Header.NShards) {
				t.Fatalf("record for shard %d of %d escaped validation", idx, rep.Header.NShards)
			}
			if verr := validateResult(rep.Header.Kind, rep.Header.spec(idx), res, int(rep.Header.NFaults), int(rep.Header.NPOs)); verr != nil {
				t.Fatalf("invalid record escaped replay: %v", verr)
			}
		}
		// The valid prefix must replay cleanly and identically.
		again, err := ReadJournal(bytes.NewReader(data[:rep.Valid]))
		if err != nil || again.Torn || again.Shards() != rep.Shards() {
			t.Fatalf("valid-prefix replay: err=%v torn=%v shards %d != %d", err, again != nil && again.Torn, again.Shards(), rep.Shards())
		}
	})
}
