package cluster

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/logic"
)

// TestFrameRoundTrip pins the framing: every frame type and a spread of
// payload sizes survive a write/read cycle, consecutive frames stay
// delimited, and a clean close at a frame boundary reads as bare io.EOF.
func TestFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	types := []FrameType{FrameHello, FrameSetup, FrameShard, FrameResult, FrameDone, FrameError}
	sizes := []int{0, 1, 41, 42, 4096}
	var buf bytes.Buffer
	var want [][]byte
	for i, sz := range sizes {
		p := make([]byte, sz)
		rng.Read(p)
		want = append(want, p)
		if err := WriteFrame(&buf, types[i%len(types)], p); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	for i := range sizes {
		ft, p, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if ft != types[i%len(types)] {
			t.Errorf("frame %d: type %v, want %v", i, ft, types[i%len(types)])
		}
		if !bytes.Equal(p, want[i]) {
			t.Errorf("frame %d: payload mismatch", i)
		}
	}
	if _, _, err := ReadFrame(&buf, 0); err != io.EOF {
		t.Errorf("at boundary: err = %v, want io.EOF", err)
	}
}

// TestFrameCorruptionTyped pins the typed-error classification of every way
// a frame can arrive damaged: bad magic, wrong version, oversize length,
// flipped payload or hash bits, and truncation at any byte offset.
func TestFrameCorruptionTyped(t *testing.T) {
	payload := []byte("0123456789abcdef0123456789abcdef")
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameResult, payload); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()

	mutate := func(f func(b []byte)) []byte {
		b := append([]byte(nil), frame...)
		f(b)
		return b
	}
	cases := []struct {
		name string
		data []byte
		max  uint32
		want error
	}{
		{"bad magic", mutate(func(b []byte) { b[0] ^= 0xff }), 0, ErrBadMagic},
		{"bad version", mutate(func(b []byte) { b[4] ^= 0x01 }), 0, ErrVersion},
		{"oversize length", mutate(func(b []byte) { binary.BigEndian.PutUint32(b[6:10], 4096) }), 1024, ErrFrameTooBig},
		{"payload bit flip", mutate(func(b []byte) { b[headerSize] ^= 0x01 }), 0, ErrPayloadHash},
		{"hash bit flip", mutate(func(b []byte) { b[10] ^= 0x01 }), 0, ErrPayloadHash},
		{"length shrunk", mutate(func(b []byte) { binary.BigEndian.PutUint32(b[6:10], 8) }), 0, ErrPayloadHash},
	}
	for _, tc := range cases {
		if _, _, err := ReadFrame(bytes.NewReader(tc.data), tc.max); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	for cut := 0; cut < len(frame); cut += 7 {
		_, _, err := ReadFrame(bytes.NewReader(frame[:cut]), 0)
		if cut == 0 {
			if err != io.EOF {
				t.Errorf("cut at 0: err = %v, want io.EOF", err)
			}
			continue
		}
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("cut at %d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

// TestMessageRoundTrips pins every message codec, including the setup frame
// built from a real netlist/pattern/fault triple.
func TestMessageRoundTrips(t *testing.T) {
	h := &helloMsg{Proto: WireVersion, ID: "worker-7"}
	if got, err := decodeHello(h.encode()); err != nil || *got != *h {
		t.Errorf("hello: got %+v err %v", got, err)
	}
	s := &shardMsg{JobID: 9, Shard: 3, Lo: 64, Hi: 128}
	if got, err := decodeShard(s.encode()); err != nil || *got != *s {
		t.Errorf("shard: got %+v err %v", got, err)
	}
	e := &errorMsg{JobID: 9, Shard: errorShardSetup, Msg: "refused"}
	if got, err := decodeError(e.encode()); err != nil || *got != *e {
		t.Errorf("error: got %+v err %v", got, err)
	}
	dn := &doneMsg{JobID: 5}
	if got, err := decodeDone(dn.encode()); err != nil || *got != *dn {
		t.Errorf("done: got %+v err %v", got, err)
	}

	det := &resultMsg{JobID: 1, Shard: 0, Kind: KindDetect, Lo: 10, Hi: 13, DetBy: []int32{-1, 7, 0}}
	got, err := decodeResult(det.encode())
	if err != nil {
		t.Fatalf("detect result: %v", err)
	}
	if got.JobID != det.JobID || got.Kind != det.Kind || len(got.DetBy) != 3 || got.DetBy[0] != -1 || got.DetBy[1] != 7 {
		t.Errorf("detect result: got %+v", got)
	}

	dict := &resultMsg{JobID: 2, Shard: 1, Kind: KindDictionary, Lo: 8, Hi: 10, Rows: []sigEntry{
		{Fi: 4, Po: 0, Words: []logic.Word{0xdead, 0xbeef}},
		{Fi: 9, Po: 2, Words: []logic.Word{1, 0}},
	}}
	got, err = decodeResult(dict.encode())
	if err != nil {
		t.Fatalf("dictionary result: %v", err)
	}
	if len(got.Rows) != 2 || got.Rows[0].Fi != 4 || got.Rows[0].Words[1] != 0xbeef || got.Rows[1].Po != 2 {
		t.Errorf("dictionary result: got %+v", got)
	}

	n := circuit.RippleAdder(2)
	p := logic.NewPatternSet(len(n.PIs), 70)
	rng := rand.New(rand.NewSource(2))
	p.RandFill(rng.Uint64)
	faults := fault.Universe(n)
	payload, _, err := encodeSetup(11, KindDictionary, 4, n, p, faults)
	if err != nil {
		t.Fatal(err)
	}
	m, err := decodeSetup(payload)
	if err != nil {
		t.Fatal(err)
	}
	if m.JobID != 11 || m.Kind != KindDictionary || m.Words != 4 || m.Inputs != p.Inputs || m.NPat != p.N {
		t.Errorf("setup header: %+v", m)
	}
	nb, err := n.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m.NetBytes, nb) {
		t.Error("setup: netlist bytes mismatch")
	}
	if len(m.Faults) != len(faults) || m.Faults[3] != faults[3] {
		t.Error("setup: fault list mismatch")
	}
	for i := range p.Bits {
		for w := range p.Bits[i] {
			if m.PatBits[i][w] != p.Bits[i][w] {
				t.Fatalf("setup: pattern bits differ at input %d word %d", i, w)
			}
		}
	}
}

// TestMessageTrailingBytes pins exact-consumption decoding: any trailing
// garbage after a well-formed message is ErrMalformed, not silently ignored.
func TestMessageTrailingBytes(t *testing.T) {
	s := &shardMsg{JobID: 1, Shard: 2, Lo: 0, Hi: 8}
	if _, err := decodeShard(append(s.encode(), 0x00)); !errors.Is(err, ErrMalformed) {
		t.Errorf("shard trailing byte: err = %v, want ErrMalformed", err)
	}
	if _, err := decodeHello(nil); !errors.Is(err, ErrMalformed) {
		t.Errorf("empty hello: err = %v, want ErrMalformed", err)
	}
	det := &resultMsg{JobID: 1, Kind: KindDetect, Lo: 0, Hi: 2, DetBy: []int32{1, 2}}
	if _, err := decodeResult(det.encode()[:10]); !errors.Is(err, ErrMalformed) {
		t.Errorf("truncated result: err = %v, want ErrMalformed", err)
	}
}

// TestLoopbackTransport pins the in-process listener: dialed pairs carry
// frames both ways, and Close turns both Accept and Dial into typed errors.
func TestLoopbackTransport(t *testing.T) {
	lb := NewLoopback()
	done := make(chan error, 1)
	go func() {
		conn, err := lb.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		ft, p, err := ReadFrame(conn, 0)
		if err != nil || ft != FrameHello {
			done <- err
			return
		}
		done <- WriteFrame(conn, FrameDone, p)
	}()
	conn, err := lb.Dial()
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(conn, FrameHello, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	ft, p, err := ReadFrame(conn, 0)
	if err != nil || ft != FrameDone || string(p) != "ping" {
		t.Fatalf("echo: ft=%v p=%q err=%v", ft, p, err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	conn.Close()
	lb.Close()
	lb.Close() // idempotent
	if _, err := lb.Accept(); !errors.Is(err, ErrLoopbackClosed) {
		t.Errorf("Accept after close: %v", err)
	}
	if _, err := lb.Dial(); !errors.Is(err, ErrLoopbackClosed) {
		t.Errorf("Dial after close: %v", err)
	}
}
