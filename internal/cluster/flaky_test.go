package cluster

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/circuit"
	"repro/internal/fault"
)

// ---------------------------------------------------------------------------
// Flaky-wire tests, built on the internal/chaos injectors: per-connection
// write schedules (drop / corrupt / truncate) applied by chaos.Dialer on
// the worker side and chaos.WrapListener on the coordinator side. Because
// our frames are written with a single Write call, write index == frame
// index, which makes the schedules deterministic at the protocol level.

// logRecorder captures coordinator log lines so tests can pin the typed
// error classification that reached the failure handler.
type logRecorder struct {
	mu    sync.Mutex
	lines []string
}

func (r *logRecorder) logf(format string, args ...any) {
	r.mu.Lock()
	r.lines = append(r.lines, fmt.Sprintf(format, args...))
	r.mu.Unlock()
}

func (r *logRecorder) contains(sub string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, l := range r.lines {
		if strings.Contains(l, sub) {
			return true
		}
	}
	return false
}

// flakyJob is the shared fixture: a small single-shard detect job plus its
// serial oracle.
func flakyJob(t *testing.T) (*circuit.Netlist, []fault.Fault, *fault.Result, func(*Coordinator) *fault.Result) {
	t.Helper()
	n := circuit.Random(6, 60, 7)
	faults := fault.Universe(n)
	p := testPatterns(n, 130, 71)
	want := serialDetect(t, n, p, faults)
	run := func(c *Coordinator) *fault.Result {
		got, err := c.Detect(testCtx(t), n, p, faults, 2)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	return n, faults, want, run
}

// Every flaky test pins the same contract: the failure ends in re-dispatch
// (WorkersLost counts the dropped session) or a typed error in the log —
// never a hang (testCtx bounds the run) and never a corrupt merge
// (compareDetect against the serial oracle).

// TestFlakyDroppedResultRecovers: the worker's first result frame vanishes
// silently. The coordinator's session timeout reclaims the shard, the
// worker reconnects clean, and the job still matches the oracle.
func TestFlakyDroppedResultRecovers(t *testing.T) {
	_, faults, want, run := flakyJob(t)
	rec := &logRecorder{}
	c, lb := startCoordinator(t, Config{
		ShardFaults:    len(faults),
		Deadline:       100 * time.Millisecond,
		SessionTimeout: 300 * time.Millisecond,
		Logf:           rec.logf,
	})
	// Connection 1: hello passes, the result frame is swallowed.
	d := chaos.NewDialer(lb.Dial, chaos.Plan(chaos.Pass, chaos.Drop))
	startWorkerDial(t, d.Dial, "droppy")
	compareDetect(t, run(c), want)
	if st := c.Stats(); st.WorkersLost < 1 {
		t.Errorf("WorkersLost = %d, want >= 1 (timed-out session)", st.WorkersLost)
	}
}

// TestFlakyCorruptedResultRecovers: a flipped payload bit must surface as
// ErrPayloadHash at the coordinator (never a garbage merge), drop the
// session, and re-dispatch.
func TestFlakyCorruptedResultRecovers(t *testing.T) {
	_, faults, want, run := flakyJob(t)
	rec := &logRecorder{}
	c, lb := startCoordinator(t, Config{
		ShardFaults: len(faults),
		Deadline:    200 * time.Millisecond,
		Logf:        rec.logf,
	})
	d := chaos.NewDialer(lb.Dial, chaos.Plan(chaos.Pass, chaos.Corrupt))
	startWorkerDial(t, d.Dial, "bitrot")
	compareDetect(t, run(c), want)
	if !rec.contains("payload hash") {
		t.Errorf("log does not pin ErrPayloadHash; lines: %v", rec.lines)
	}
	if st := c.Stats(); st.WorkersLost < 1 {
		t.Errorf("WorkersLost = %d, want >= 1", st.WorkersLost)
	}
}

// TestFlakyTruncatedResultRecovers: a mid-frame connection loss must
// surface as ErrTruncated and re-dispatch.
func TestFlakyTruncatedResultRecovers(t *testing.T) {
	_, faults, want, run := flakyJob(t)
	rec := &logRecorder{}
	c, lb := startCoordinator(t, Config{
		ShardFaults: len(faults),
		Deadline:    200 * time.Millisecond,
		Logf:        rec.logf,
	})
	d := chaos.NewDialer(lb.Dial, chaos.Plan(chaos.Pass, chaos.Truncate))
	startWorkerDial(t, d.Dial, "chopper")
	compareDetect(t, run(c), want)
	if !rec.contains("truncated") {
		t.Errorf("log does not pin ErrTruncated; lines: %v", rec.lines)
	}
	if st := c.Stats(); st.WorkersLost < 1 {
		t.Errorf("WorkersLost = %d, want >= 1", st.WorkersLost)
	}
}

// TestFlakyCoordinatorWritesRecover: sabotage in the other direction — the
// coordinator's shard frame is corrupted in flight. The worker rejects it
// at the frame layer, the session drops, and reconnect + re-dispatch still
// converge on the oracle.
func TestFlakyCoordinatorWritesRecover(t *testing.T) {
	_, faults, want, run := flakyJob(t)
	lb := NewLoopback()
	// Accepted connection 1: setup passes, the first shard frame is
	// corrupted. Later connections are clean.
	fl := chaos.WrapListener(lb, chaos.Plan(chaos.Pass, chaos.Corrupt))
	c := startCoordinatorOn(t, Config{
		ShardFaults: len(faults),
		Deadline:    200 * time.Millisecond,
	}, fl)
	startWorker(t, lb, "w")
	compareDetect(t, run(c), want)
	if st := c.Stats(); st.WorkersLost < 1 {
		t.Errorf("WorkersLost = %d, want >= 1", st.WorkersLost)
	}
}

// TestFlakyRandomScheduleConverges hammers a multi-shard job through two
// workers whose first connections fail randomly (seeded) in both
// directions, then come back clean. Whatever the schedule breaks, the
// result must still be bit-identical — the global contract that every
// failure path ends in re-dispatch, not corruption.
func TestFlakyRandomScheduleConverges(t *testing.T) {
	n := circuit.Random(8, 120, 23)
	faults := fault.Universe(n)
	p := testPatterns(n, 260, 81)
	want := serialDetect(t, n, p, faults)

	w := chaos.Weights{Pass: 2, Drop: 1, Corrupt: 1}
	lb := NewLoopback()
	fl := chaos.WrapListener(lb,
		chaos.RandomSchedule(chaos.Split(99, 0), 4, w),
		chaos.RandomSchedule(chaos.Split(99, 1), 4, w))
	c := startCoordinatorOn(t, Config{
		ShardFaults:    16,
		Deadline:       100 * time.Millisecond,
		SessionTimeout: 300 * time.Millisecond,
	}, fl)
	for i := 0; i < 2; i++ {
		d := chaos.NewSeededDialer(lb.Dial, chaos.Split(99, uint64(2+i)), 2, 5, w)
		startWorkerDial(t, d.Dial, fmt.Sprintf("flaky-%d", i))
	}
	got, err := c.Detect(testCtx(t), n, p, faults, 4)
	if err != nil {
		t.Fatal(err)
	}
	compareDetect(t, got, want)
	t.Logf("converged with stats %+v", c.Stats())
}

// ---------------------------------------------------------------------------
// Reconnect jitter.

// TestWorkerBackoffJitterDeterministic pins the jittered reconnect
// schedule: a fixed seed yields a fixed delay sequence, every delay stays
// inside (backoff/2, backoff], and two workers with different IDs draw
// different sequences — the anti-thundering-herd property.
func TestWorkerBackoffJitterDeterministic(t *testing.T) {
	draw := func(seed uint64) []time.Duration {
		rng := chaos.NewRand(seed)
		var out []time.Duration
		backoff := 50 * time.Millisecond
		for i := 0; i < 8; i++ {
			out = append(out, jitterBackoff(rng, backoff))
			backoff = min(backoff*2, 2*time.Second)
		}
		return out
	}
	a := (&Worker{ID: "w1"}).seed()
	b := (&Worker{ID: "w2"}).seed()
	if a == b {
		t.Fatal("distinct IDs derived the same jitter seed")
	}
	if (&Worker{ID: "w1", Seed: 7}).seed() != 7 {
		t.Fatal("explicit seed not honored")
	}

	s1, s2 := draw(a), draw(a)
	backoff := 50 * time.Millisecond
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("attempt %d: schedule not deterministic (%v vs %v)", i, s1[i], s2[i])
		}
		if s1[i] <= backoff/2 || s1[i] > backoff {
			t.Fatalf("attempt %d: delay %v outside (%v, %v]", i, s1[i], backoff/2, backoff)
		}
		backoff = min(backoff*2, 2*time.Second)
	}
	sb := draw(b)
	same := 0
	for i := range s1 {
		if s1[i] == sb[i] {
			same++
		}
	}
	if same == len(s1) {
		t.Fatal("two workers share an identical jitter schedule: thundering herd")
	}

	// Degenerate inputs never panic and never exceed the envelope.
	rng := chaos.NewRand(1)
	for _, d := range []time.Duration{0, 1, 2, time.Nanosecond} {
		if got := jitterBackoff(rng, d); got > d || got < 0 {
			t.Fatalf("jitter(%v) = %v", d, got)
		}
	}
}
