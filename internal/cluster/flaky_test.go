package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/fault"
)

// ---------------------------------------------------------------------------
// flakyConn: a net.Conn wrapper that sabotages writes on a per-connection
// schedule — drop (swallow silently), corrupt (flip a payload bit), or
// truncate (half the frame, then kill the connection). Because our frames
// are written with a single Write call, write index == frame index, which
// makes the schedules deterministic.

type writeOp int

const (
	opPass writeOp = iota
	opDrop
	opCorrupt
	opTruncate
)

type flakyConn struct {
	net.Conn
	mu   sync.Mutex
	plan []writeOp
	idx  int
}

func (f *flakyConn) Write(b []byte) (int, error) {
	f.mu.Lock()
	op := opPass
	if f.idx < len(f.plan) {
		op = f.plan[f.idx]
	}
	f.idx++
	f.mu.Unlock()
	switch op {
	case opDrop:
		return len(b), nil // pretend success; the peer waits on nothing
	case opCorrupt:
		c := append([]byte(nil), b...)
		c[len(c)-1] ^= 0x40 // last byte sits in the payload for every frame
		return f.Conn.Write(c)
	case opTruncate:
		f.Conn.Write(b[:len(b)/2])
		f.Conn.Close()
		return len(b) / 2, errors.New("flaky: truncated write")
	}
	return f.Conn.Write(b)
}

// flakyDialer applies plans[i] to the i-th dialed connection; connections
// past the schedule are clean, so every test converges.
type flakyDialer struct {
	lb    *Loopback
	mu    sync.Mutex
	n     int
	plans [][]writeOp
}

func (d *flakyDialer) Dial() (net.Conn, error) {
	c, err := d.lb.Dial()
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	i := d.n
	d.n++
	d.mu.Unlock()
	if i < len(d.plans) {
		return &flakyConn{Conn: c, plan: d.plans[i]}, nil
	}
	return c, nil
}

// flakyListener is the server-side twin: it sabotages the coordinator's
// writes on the i-th accepted connection.
type flakyListener struct {
	net.Listener
	mu    sync.Mutex
	n     int
	plans [][]writeOp
}

func (l *flakyListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	i := l.n
	l.n++
	l.mu.Unlock()
	if i < len(l.plans) {
		return &flakyConn{Conn: c, plan: l.plans[i]}, nil
	}
	return c, nil
}

// logRecorder captures coordinator log lines so tests can pin the typed
// error classification that reached the failure handler.
type logRecorder struct {
	mu    sync.Mutex
	lines []string
}

func (r *logRecorder) logf(format string, args ...any) {
	r.mu.Lock()
	r.lines = append(r.lines, fmt.Sprintf(format, args...))
	r.mu.Unlock()
}

func (r *logRecorder) contains(sub string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, l := range r.lines {
		if strings.Contains(l, sub) {
			return true
		}
	}
	return false
}

// flakyJob is the shared fixture: a small single-shard detect job plus its
// serial oracle.
func flakyJob(t *testing.T) (*circuit.Netlist, []fault.Fault, *fault.Result, func(*Coordinator) *fault.Result) {
	t.Helper()
	n := circuit.Random(6, 60, 7)
	faults := fault.Universe(n)
	p := testPatterns(n, 130, 71)
	want := serialDetect(t, n, p, faults)
	run := func(c *Coordinator) *fault.Result {
		got, err := c.Detect(testCtx(t), n, p, faults, 2)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	return n, faults, want, run
}

// Every flaky test pins the same contract: the failure ends in re-dispatch
// (WorkersLost counts the dropped session) or a typed error in the log —
// never a hang (testCtx bounds the run) and never a corrupt merge
// (compareDetect against the serial oracle).

// TestFlakyDroppedResultRecovers: the worker's first result frame vanishes
// silently. The coordinator's session timeout reclaims the shard, the
// worker reconnects clean, and the job still matches the oracle.
func TestFlakyDroppedResultRecovers(t *testing.T) {
	_, faults, want, run := flakyJob(t)
	rec := &logRecorder{}
	c, lb := startCoordinator(t, Config{
		ShardFaults:    len(faults),
		Deadline:       100 * time.Millisecond,
		SessionTimeout: 300 * time.Millisecond,
		Logf:           rec.logf,
	})
	// Connection 1: hello passes, the result frame is swallowed.
	d := &flakyDialer{lb: lb, plans: [][]writeOp{{opPass, opDrop}}}
	startWorkerDial(t, d.Dial, "droppy")
	compareDetect(t, run(c), want)
	if st := c.Stats(); st.WorkersLost < 1 {
		t.Errorf("WorkersLost = %d, want >= 1 (timed-out session)", st.WorkersLost)
	}
}

// TestFlakyCorruptedResultRecovers: a flipped payload bit must surface as
// ErrPayloadHash at the coordinator (never a garbage merge), drop the
// session, and re-dispatch.
func TestFlakyCorruptedResultRecovers(t *testing.T) {
	_, faults, want, run := flakyJob(t)
	rec := &logRecorder{}
	c, lb := startCoordinator(t, Config{
		ShardFaults: len(faults),
		Deadline:    200 * time.Millisecond,
		Logf:        rec.logf,
	})
	d := &flakyDialer{lb: lb, plans: [][]writeOp{{opPass, opCorrupt}}}
	startWorkerDial(t, d.Dial, "bitrot")
	compareDetect(t, run(c), want)
	if !rec.contains("payload hash") {
		t.Errorf("log does not pin ErrPayloadHash; lines: %v", rec.lines)
	}
	if st := c.Stats(); st.WorkersLost < 1 {
		t.Errorf("WorkersLost = %d, want >= 1", st.WorkersLost)
	}
}

// TestFlakyTruncatedResultRecovers: a mid-frame connection loss must
// surface as ErrTruncated and re-dispatch.
func TestFlakyTruncatedResultRecovers(t *testing.T) {
	_, faults, want, run := flakyJob(t)
	rec := &logRecorder{}
	c, lb := startCoordinator(t, Config{
		ShardFaults: len(faults),
		Deadline:    200 * time.Millisecond,
		Logf:        rec.logf,
	})
	d := &flakyDialer{lb: lb, plans: [][]writeOp{{opPass, opTruncate}}}
	startWorkerDial(t, d.Dial, "chopper")
	compareDetect(t, run(c), want)
	if !rec.contains("truncated") {
		t.Errorf("log does not pin ErrTruncated; lines: %v", rec.lines)
	}
	if st := c.Stats(); st.WorkersLost < 1 {
		t.Errorf("WorkersLost = %d, want >= 1", st.WorkersLost)
	}
}

// TestFlakyCoordinatorWritesRecover: sabotage in the other direction — the
// coordinator's shard frame is corrupted in flight. The worker rejects it
// at the frame layer, the session drops, and reconnect + re-dispatch still
// converge on the oracle.
func TestFlakyCoordinatorWritesRecover(t *testing.T) {
	_, faults, want, run := flakyJob(t)
	lb := NewLoopback()
	// Accepted connection 1: setup passes, the first shard frame is
	// corrupted. Later connections are clean.
	fl := &flakyListener{Listener: lb, plans: [][]writeOp{{opPass, opCorrupt}}}
	c := startCoordinatorOn(t, Config{
		ShardFaults: len(faults),
		Deadline:    200 * time.Millisecond,
	}, fl)
	startWorker(t, lb, "w")
	compareDetect(t, run(c), want)
	if st := c.Stats(); st.WorkersLost < 1 {
		t.Errorf("WorkersLost = %d, want >= 1", st.WorkersLost)
	}
}

// TestFlakyRandomScheduleConverges hammers a multi-shard job through two
// workers whose first connections fail randomly (seeded) in both
// directions, then come back clean. Whatever the schedule breaks, the
// result must still be bit-identical — the global contract that every
// failure path ends in re-dispatch, not corruption.
func TestFlakyRandomScheduleConverges(t *testing.T) {
	n := circuit.Random(8, 120, 23)
	faults := fault.Universe(n)
	p := testPatterns(n, 260, 81)
	want := serialDetect(t, n, p, faults)

	rng := rand.New(rand.NewSource(99))
	randPlan := func(k int) []writeOp {
		plan := make([]writeOp, k)
		for i := range plan {
			plan[i] = []writeOp{opPass, opPass, opDrop, opCorrupt}[rng.Intn(4)]
		}
		return plan
	}
	lb := NewLoopback()
	fl := &flakyListener{Listener: lb, plans: [][]writeOp{randPlan(4), randPlan(4)}}
	c := startCoordinatorOn(t, Config{
		ShardFaults:    16,
		Deadline:       100 * time.Millisecond,
		SessionTimeout: 300 * time.Millisecond,
	}, fl)
	for i := 0; i < 2; i++ {
		d := &flakyDialer{lb: lb, plans: [][]writeOp{randPlan(5), randPlan(3)}}
		startWorkerDial(t, d.Dial, fmt.Sprintf("flaky-%d", i))
	}
	got, err := c.Detect(testCtx(t), n, p, faults, 4)
	if err != nil {
		t.Fatal(err)
	}
	compareDetect(t, got, want)
	t.Logf("converged with stats %+v", c.Stats())
}
