package cluster

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/logic"
)

// Config tunes a Coordinator. The zero value selects sane defaults.
type Config struct {
	// ShardFaults is the detect-job shard size in faults (default 256).
	ShardFaults int
	// ShardWords is the dictionary-job shard size in pattern words; it is
	// rounded up to a whole number of W-blocks so shards stay column-
	// disjoint (default one W-block).
	ShardWords int
	// Deadline is the per-shard straggler deadline: a dispatched shard not
	// answered within it is re-dispatched to the next free worker. The
	// original dispatch stays outstanding — the first result wins and
	// duplicates are discarded. Default 10s.
	Deadline time.Duration
	// SessionTimeout caps how long a session waits on one worker frame
	// before declaring the worker dead and dropping the connection
	// (default 4×Deadline). Slow workers lose their connection but their
	// shard has long since been re-dispatched; on reconnect they rejoin.
	SessionTimeout time.Duration
	// MaxFrame bounds accepted frame payloads (default DefaultMaxFrame).
	MaxFrame uint32
	// MaxShardFailures is how many times one shard may come back as a
	// worker error before the job is failed as a whole — the guard that
	// turns a deterministically failing shard into a typed job error
	// instead of an infinite re-dispatch loop. Default 3.
	MaxShardFailures int
	// CrashHook, when non-nil, is consulted at each named crash point of
	// the checkpoint protocol (internal/chaos.CrashPoints). Returning true
	// simulates the coordinator process dying right there: the journal
	// freezes with exactly the bytes a dead process would leave and the
	// active job fails with ErrCrashed. A CLI hook may os.Exit instead for
	// a real process death. nil (production) never crashes.
	CrashHook func(point string) bool
	// Logf receives progress lines (nil discards them).
	Logf func(format string, args ...any)
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.ShardFaults <= 0 {
		out.ShardFaults = 256
	}
	if out.Deadline <= 0 {
		out.Deadline = 10 * time.Second
	}
	if out.SessionTimeout <= 0 {
		out.SessionTimeout = 4 * out.Deadline
	}
	if out.MaxFrame == 0 {
		out.MaxFrame = DefaultMaxFrame
	}
	if out.MaxShardFailures <= 0 {
		out.MaxShardFailures = 3
	}
	if out.Logf == nil {
		out.Logf = func(string, ...any) {}
	}
	return out
}

// Stats counts coordinator events since construction; useful for
// observability and for tests pinning the failure paths (a re-dispatch or a
// discarded duplicate is invisible in the bit-identical result — only the
// counters prove the path ran).
type Stats struct {
	WorkersJoined    int64
	WorkersLost      int64
	ShardsDispatched int64
	Redispatches     int64 // straggler deadline re-dispatches
	Duplicates       int64 // results for already-completed shards, discarded
	ShardFailures    int64 // worker-reported shard errors (re-dispatched)
}

// Coordinator partitions fault-simulation jobs into shards and drives them
// to completion over any number of workers. One job runs at a time;
// concurrent Detect/Dictionary calls serialize. Workers may join and leave
// at any point during a job.
type Coordinator struct {
	cfg Config

	jobMu sync.Mutex // serializes jobs

	mu        sync.Mutex
	cond      *sync.Cond // guards+signals everything below
	job       *job       // active job, nil between jobs
	jobSeq    uint64
	closed    bool
	listeners []net.Listener
	stats     Stats
}

// shardSpec is one work unit's range: faults for detect jobs, pattern-word
// columns for dictionary jobs.
type shardSpec struct {
	lo, hi uint32
}

// JobOptions extends a job run with checkpoint/resume state.
type JobOptions struct {
	// Journal, when non-nil, receives the job header plus one synced
	// record per verified shard result, making the job resumable after a
	// coordinator crash. A journal I/O failure fails the job (a silently
	// unprotected run would betray the crash-safety contract).
	Journal *Journal
	// Resume, when non-nil, is a prior run's replay (ReadJournal): its
	// header must match this job exactly (ErrJournalMismatch otherwise),
	// its shards pre-merge and only the remainder dispatches. Combined
	// with Journal, new results append to the same journal.
	Resume *Replay
}

type job struct {
	id    uint64
	kind  JobKind
	words int
	setup []byte // encoded setup payload, shared by every session

	journal *Journal
	netHash [32]byte // circuit content hash (== setup NetHash)
	inHash  [32]byte // pattern + fault-list digest
	inputs  int
	npat    int
	unit    int // shard size: faults (detect) or pattern words (dictionary)

	specs    []shardSpec
	pending  []int // shard indices awaiting (re-)dispatch
	queued   []bool
	inflight map[int]time.Time // shard → last dispatch time
	failures []int             // worker-error count per shard
	done     []bool
	nDone    int

	err      error
	finished chan struct{}

	// Merge targets. Shards write disjoint regions under c.mu; a shard's
	// region is written exactly once (the done flag gates duplicates), so
	// the merge is order-independent by construction.
	detBy    []int // detect: absolute first-detection index per fault, -1 undetected
	detected int
	sigs     []*fault.Signature // dictionary
	nFaults  int
	nPOs     int
	pwords   int
}

// New returns a Coordinator with the given configuration.
func New(cfg Config) *Coordinator {
	c := &Coordinator{cfg: cfg.withDefaults()}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Serve accepts worker connections from l until the listener or the
// coordinator is closed. Call it in a goroutine; multiple listeners (e.g. a
// TCP socket plus a Loopback) may be served concurrently.
func (c *Coordinator) Serve(l net.Listener) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.listeners = append(c.listeners, l)
	c.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if closed {
				return ErrClosed
			}
			return err
		}
		go c.handle(conn)
	}
}

// Close shuts the coordinator down: listeners close, the active job (if
// any) fails with ErrClosed, and blocked sessions unwind.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	c.closed = true
	ls := c.listeners
	c.listeners = nil
	if c.job != nil {
		c.failJobLocked(c.job, ErrClosed)
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	for _, l := range ls {
		l.Close()
	}
	return nil
}

// Stats returns a snapshot of the event counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Detect distributes a fault-detection run (the fault.RunConcurrentWords
// workload) over the connected workers: the fault list splits into
// contiguous shards, each simulated remotely with per-shard dropping.
// The result is bit-identical to fault.RunSerial on the same inputs for
// any worker count, shard size and failure schedule, because a fault's
// first-detection index depends only on (circuit, patterns, fault) and
// shard merges write disjoint DetectedBy ranges.
func (c *Coordinator) Detect(ctx context.Context, n *circuit.Netlist, p *logic.PatternSet, faults []fault.Fault, words int) (*fault.Result, error) {
	return c.DetectOpt(ctx, n, p, faults, words, JobOptions{})
}

// DetectOpt is Detect with checkpoint/resume options.
func (c *Coordinator) DetectOpt(ctx context.Context, n *circuit.Netlist, p *logic.PatternSet, faults []fault.Fault, words int, opt JobOptions) (*fault.Result, error) {
	if err := validateJob(n, p, faults); err != nil {
		return nil, err
	}
	w := fault.NormalizeWords(words)
	j, err := c.newJob(KindDetect, w, n, p, faults)
	if err != nil {
		return nil, err
	}
	j.unit = c.cfg.ShardFaults
	for lo := 0; lo < len(faults); lo += j.unit {
		hi := min(lo+j.unit, len(faults))
		j.specs = append(j.specs, shardSpec{lo: uint32(lo), hi: uint32(hi)})
	}
	j.detBy = make([]int, len(faults))
	for i := range j.detBy {
		j.detBy[i] = -1
	}
	if err := c.run(ctx, j, opt); err != nil {
		return nil, err
	}
	res := &fault.Result{Total: len(faults), Detected: j.detected, DetectedBy: j.detBy}
	if res.Total > 0 {
		res.Coverage = float64(res.Detected) / float64(res.Total)
	}
	return res, nil
}

// Dictionary distributes a full-response dictionary build (the
// fault.DictionaryConcurrentWords workload): pattern-word column ranges
// shard across workers, each filling the signature columns of its range
// for every fault. Distinct shards write disjoint signature storage — the
// same disjoint-column scheme that makes the in-process concurrent build
// bit-identical — so the merged dictionary equals Simulator.Dictionary
// word for word regardless of worker count, shard size or dispatch order.
func (c *Coordinator) Dictionary(ctx context.Context, n *circuit.Netlist, p *logic.PatternSet, faults []fault.Fault, words int) ([]*fault.Signature, error) {
	return c.DictionaryOpt(ctx, n, p, faults, words, JobOptions{})
}

// DictionaryOpt is Dictionary with checkpoint/resume options.
func (c *Coordinator) DictionaryOpt(ctx context.Context, n *circuit.Netlist, p *logic.PatternSet, faults []fault.Fault, words int, opt JobOptions) ([]*fault.Signature, error) {
	if err := validateJob(n, p, faults); err != nil {
		return nil, err
	}
	w := fault.NormalizeWords(words)
	j, err := c.newJob(KindDictionary, w, n, p, faults)
	if err != nil {
		return nil, err
	}
	unit := c.cfg.ShardWords
	if unit <= 0 {
		unit = w
	}
	if rem := unit % w; rem != 0 {
		unit += w - rem // keep shards W-block aligned, hence column-disjoint
	}
	j.unit = unit
	pwords := p.Words()
	for lo := 0; lo < pwords; lo += unit {
		hi := min(lo+unit, pwords)
		j.specs = append(j.specs, shardSpec{lo: uint32(lo), hi: uint32(hi)})
	}
	j.sigs = fault.NewSignatures(len(faults), len(n.POs), pwords)
	if err := c.run(ctx, j, opt); err != nil {
		return nil, err
	}
	return j.sigs, nil
}

func validateJob(n *circuit.Netlist, p *logic.PatternSet, faults []fault.Fault) error {
	if p.Inputs != len(n.PIs) {
		return fmt.Errorf("cluster: pattern width %d != PIs %d", p.Inputs, len(n.PIs))
	}
	for i, f := range faults {
		if f.Gate < 0 || f.Gate >= len(n.Gates) {
			return fmt.Errorf("cluster: fault %d gate %d out of range", i, f.Gate)
		}
		if f.Pin >= len(n.Gates[f.Gate].Fanin) {
			return fmt.Errorf("cluster: fault %d pin %d out of range for gate %d", i, f.Pin, f.Gate)
		}
	}
	return nil
}

func (c *Coordinator) newJob(kind JobKind, words int, n *circuit.Netlist, p *logic.PatternSet, faults []fault.Fault) (*job, error) {
	c.mu.Lock()
	c.jobSeq++
	id := c.jobSeq
	c.mu.Unlock()
	setup, netHash, err := encodeSetup(id, kind, words, n, p, faults)
	if err != nil {
		return nil, err
	}
	return &job{
		id:       id,
		kind:     kind,
		words:    words,
		setup:    setup,
		netHash:  netHash,
		inHash:   hashJobInputs(p, faults),
		inputs:   p.Inputs,
		npat:     p.N,
		inflight: make(map[int]time.Time),
		finished: make(chan struct{}),
		nFaults:  len(faults),
		nPOs:     len(n.POs),
		pwords:   p.Words(),
	}, nil
}

// header describes the job for the write-ahead journal.
func (j *job) header() *JournalHeader {
	return &JournalHeader{
		Kind:        j.kind,
		Words:       uint8(j.words),
		NFaults:     uint32(j.nFaults),
		NPOs:        uint32(j.nPOs),
		Inputs:      uint32(j.inputs),
		NPat:        uint32(j.npat),
		ShardUnit:   uint32(j.unit),
		NShards:     uint32(len(j.specs)),
		CircuitHash: j.netHash,
		InputsHash:  j.inHash,
	}
}

// merge writes one validated shard result into the job's output region.
// Regions of distinct shards are disjoint by construction. Live jobs
// merge under c.mu; resume pre-merges before the job is installed, when
// no session can see it.
func (j *job) merge(idx int, res *resultMsg) {
	spec := j.specs[idx]
	switch j.kind {
	case KindDetect:
		for i, v := range res.DetBy {
			j.detBy[int(spec.lo)+i] = int(v)
			if v >= 0 {
				j.detected++
			}
		}
	case KindDictionary:
		for _, row := range res.Rows {
			copy(j.sigs[row.Fi].Bits[row.Po][spec.lo:spec.hi], row.Words)
		}
	}
}

// run installs the job, lets sessions drain it, and waits for completion,
// cancellation or coordinator close. Resume state pre-merges journaled
// shards before any session can see the job; a fresh journal gets the job
// header before any shard dispatches.
func (c *Coordinator) run(ctx context.Context, j *job, opt JobOptions) error {
	c.jobMu.Lock()
	defer c.jobMu.Unlock()

	j.journal = opt.Journal
	j.pending = make([]int, 0, len(j.specs))
	j.queued = make([]bool, len(j.specs))
	j.failures = make([]int, len(j.specs))
	j.done = make([]bool, len(j.specs))

	if opt.Resume != nil {
		if err := opt.Resume.Header.matches(j.header()); err != nil {
			return err
		}
		for _, res := range opt.Resume.results {
			idx := int(res.Shard) // < NShards == len(j.specs), pinned by ReadJournal + matches
			if j.done[idx] {
				continue // duplicate record: identical bytes, first wins
			}
			// ReadJournal validated every record against the header
			// geometry; re-check against the actual job anyway so a
			// hand-built Replay cannot corrupt the merge.
			if err := validateResult(j.kind, j.specs[idx], res, j.nFaults, j.nPOs); err != nil {
				return fmt.Errorf("%w: shard %d record: %v", ErrJournalCorrupt, idx, err)
			}
			j.merge(idx, res)
			j.done[idx] = true
			j.nDone++
		}
		c.cfg.Logf("cluster: job %d (%s): resumed %d/%d shards from journal", j.id, j.kind, j.nDone, len(j.specs))
	} else if j.journal != nil {
		if err := j.journal.WriteHeader(j.header()); err != nil {
			return fmt.Errorf("journal header: %w", err)
		}
	}
	for i := range j.specs {
		if !j.done[i] {
			j.pending = append(j.pending, i)
			j.queued[i] = true
		}
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if j.nDone == len(j.specs) {
		c.mu.Unlock()
		return nil // empty job, or the journal already held every shard
	}
	c.job = j
	c.cond.Broadcast()
	c.mu.Unlock()
	c.cfg.Logf("cluster: job %d (%s): %d shards", j.id, j.kind, len(j.specs))

	stopMonitor := make(chan struct{})
	go c.monitor(j, stopMonitor)

	select {
	case <-j.finished:
	case <-ctx.Done():
		c.mu.Lock()
		c.failJobLocked(j, ctx.Err())
		c.mu.Unlock()
	}
	close(stopMonitor)

	c.mu.Lock()
	c.job = nil
	err := j.err
	c.cond.Broadcast()
	c.mu.Unlock()
	return err
}

// monitor re-dispatches stragglers: any inflight shard older than the
// deadline goes back on the pending queue (its original dispatch stays
// outstanding — first result wins).
func (c *Coordinator) monitor(j *job, stop chan struct{}) {
	tick := max(c.cfg.Deadline/4, 5*time.Millisecond)
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-j.finished:
			return
		case now := <-t.C:
			c.mu.Lock()
			for idx, since := range j.inflight {
				if !j.done[idx] && !j.queued[idx] && now.Sub(since) > c.cfg.Deadline {
					j.pending = append(j.pending, idx)
					j.queued[idx] = true
					j.inflight[idx] = now // don't re-add every tick
					c.stats.Redispatches++
					c.cfg.Logf("cluster: job %d: shard %d overdue, re-dispatching", j.id, idx)
				}
			}
			c.cond.Broadcast()
			c.mu.Unlock()
		}
	}
}

func (c *Coordinator) failJobLocked(j *job, err error) {
	if j.err == nil {
		j.err = err
	}
	select {
	case <-j.finished:
	default:
		close(j.finished)
	}
	c.cond.Broadcast()
}

// takeShard blocks until a shard is available for dispatch, the job ends,
// or the coordinator closes. ok=false means the session should send Done
// and go back to waiting for the next job.
func (c *Coordinator) takeShard(j *job) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.closed || j.err != nil || j.nDone == len(j.specs) {
			return 0, false
		}
		for len(j.pending) > 0 {
			idx := j.pending[0]
			j.pending = j.pending[1:]
			j.queued[idx] = false
			if j.done[idx] {
				continue
			}
			j.inflight[idx] = time.Now()
			c.stats.ShardsDispatched++
			return idx, true
		}
		c.cond.Wait()
	}
}

// requeue puts a dispatched shard back on the queue after a session-level
// failure (connection loss, timeout, protocol error). Idempotent: done or
// already-queued shards are left alone.
func (c *Coordinator) requeue(j *job, idx int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !j.done[idx] && !j.queued[idx] {
		j.pending = append(j.pending, idx)
		j.queued[idx] = true
		j.inflight[idx] = time.Now()
		c.cond.Broadcast()
	}
}

// shardFailed counts a worker-reported failure against the shard and either
// requeues it or — past MaxShardFailures — fails the whole job, so a
// deterministically poisoned shard cannot re-dispatch forever.
func (c *Coordinator) shardFailed(j *job, idx int, werr error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.ShardFailures++
	j.failures[idx]++
	if j.failures[idx] >= c.cfg.MaxShardFailures {
		c.failJobLocked(j, fmt.Errorf("shard %d failed %d times: %w", idx, j.failures[idx], werr))
		return
	}
	if !j.done[idx] && !j.queued[idx] {
		j.pending = append(j.pending, idx)
		j.queued[idx] = true
		j.inflight[idx] = time.Now()
		c.cond.Broadcast()
	}
}

// validateResult checks one shard result against its spec: range and
// kind must match, indices must be in bounds. Shared by the live deliver
// path and journal replay, so a journaled record can never merge anything
// a live result could not.
func validateResult(kind JobKind, spec shardSpec, res *resultMsg, nFaults, nPOs int) error {
	if res.Kind != kind || res.Lo != spec.lo || res.Hi != spec.hi {
		return fmt.Errorf("%w: result range [%d,%d) kind %v, want [%d,%d) kind %v",
			ErrMalformed, res.Lo, res.Hi, res.Kind, spec.lo, spec.hi, kind)
	}
	switch kind {
	case KindDetect:
		for _, v := range res.DetBy {
			if v < -1 {
				return fmt.Errorf("%w: detect index %d", ErrMalformed, v)
			}
		}
	case KindDictionary:
		span := int(spec.hi - spec.lo)
		for _, row := range res.Rows {
			if int(row.Fi) >= nFaults || int(row.Po) >= nPOs || len(row.Words) != span {
				return fmt.Errorf("%w: signature row (fault %d, po %d, %d words)", ErrMalformed, row.Fi, row.Po, len(row.Words))
			}
		}
	}
	return nil
}

// hitCrash consults the chaos crash hook at a named crash point. A firing
// hook means the coordinator "dies" here: the journal freezes exactly as
// a killed process would leave it, and the job fails with ErrCrashed.
// Ordering matters — the journal dies first, so nothing can append after
// the moment of death.
func (c *Coordinator) hitCrash(j *job, point string) bool {
	if c.cfg.CrashHook == nil || !c.cfg.CrashHook(point) {
		return false
	}
	if j.journal != nil {
		j.journal.kill()
	}
	c.mu.Lock()
	c.failJobLocked(j, ErrCrashed)
	c.mu.Unlock()
	c.cfg.Logf("cluster: chaos crash at %q", point)
	return true
}

// deliver validates, journals and merges one shard result. The first
// result for a shard wins; later ones (stragglers that were re-dispatched)
// are counted and discarded — re-execution is deterministic, so discarding
// loses nothing. Returns an error only for results that prove the worker
// is confused (range mismatch, out-of-bounds indices); the caller drops
// that worker and the shard is re-dispatched.
//
// The order is claim → journal append → sync → merge: the shard is
// claimed under the lock (gating duplicates exactly once), the record
// becomes durable outside the lock (fsync must not serialize sessions),
// and only then does the region merge — so every merged shard is in the
// journal, and a crash at any boundary between these steps loses nothing
// a resume cannot recompute.
func (c *Coordinator) deliver(j *job, idx int, res *resultMsg) error {
	if err := validateResult(j.kind, j.specs[idx], res, j.nFaults, j.nPOs); err != nil {
		return err
	}
	c.mu.Lock()
	if j.done[idx] || j.err != nil {
		c.stats.Duplicates++
		c.mu.Unlock()
		return nil
	}
	j.done[idx] = true
	delete(j.inflight, idx)
	c.mu.Unlock()

	if j.journal != nil {
		if err := j.journal.Append(res); err != nil {
			c.mu.Lock()
			c.failJobLocked(j, fmt.Errorf("journal append: %w", err))
			c.mu.Unlock()
			return nil
		}
		if c.hitCrash(j, chaos.CrashAfterResultBeforeSync) {
			return nil
		}
		if err := j.journal.Sync(); err != nil {
			c.mu.Lock()
			c.failJobLocked(j, fmt.Errorf("journal sync: %w", err))
			c.mu.Unlock()
			return nil
		}
		if c.hitCrash(j, chaos.CrashAfterJournalSync) {
			return nil
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if j.err != nil {
		return nil // crashed or failed between claim and merge; result discarded
	}
	j.merge(idx, res)
	j.nDone++
	if j.nDone == len(j.specs) {
		select {
		case <-j.finished:
		default:
			close(j.finished)
		}
	}
	c.cond.Broadcast()
	return nil
}

// nextJob blocks until a job newer than lastID is active (a session that
// finished job N must not re-join it) or the coordinator closes.
func (c *Coordinator) nextJob(lastID uint64) *job {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.closed {
			return nil
		}
		if j := c.job; j != nil && j.id > lastID && j.err == nil && j.nDone < len(j.specs) {
			return j
		}
		c.cond.Wait()
	}
}

// handle runs one worker connection: handshake, then serve jobs until the
// connection drops or the coordinator closes.
func (c *Coordinator) handle(conn net.Conn) {
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(c.cfg.SessionTimeout))
	ft, payload, err := ReadFrame(conn, c.cfg.MaxFrame)
	if err != nil || ft != FrameHello {
		c.cfg.Logf("cluster: rejected connection: frame %v err %v", ft, err)
		return
	}
	hello, err := decodeHello(payload)
	if err != nil || hello.Proto != WireVersion {
		c.cfg.Logf("cluster: rejected handshake: %v", err)
		return
	}
	c.mu.Lock()
	c.stats.WorkersJoined++
	c.mu.Unlock()
	c.cfg.Logf("cluster: worker %q joined", hello.ID)

	lastID := uint64(0)
	for {
		j := c.nextJob(lastID)
		if j == nil {
			return
		}
		lastID = j.id
		if err := c.serveJob(j, conn, hello.ID); err != nil {
			c.mu.Lock()
			c.stats.WorkersLost++
			c.mu.Unlock()
			c.cfg.Logf("cluster: worker %q dropped: %v", hello.ID, err)
			return
		}
	}
}

// serveJob drives one worker through one job: setup, then a
// dispatch/collect loop until the job completes or the worker fails. Any
// error re-queues the outstanding shard before returning, so a lost or
// misbehaving worker never strands work.
func (c *Coordinator) serveJob(j *job, conn net.Conn, workerID string) error {
	conn.SetWriteDeadline(time.Now().Add(c.cfg.SessionTimeout))
	if err := WriteFrame(conn, FrameSetup, j.setup); err != nil {
		return fmt.Errorf("setup write: %w", err)
	}
	for {
		idx, ok := c.takeShard(j)
		if !ok {
			// Best-effort: a broken conn here is fine, the job is over.
			conn.SetWriteDeadline(time.Now().Add(time.Second))
			WriteFrame(conn, FrameDone, (&doneMsg{JobID: j.id}).encode())
			conn.SetWriteDeadline(time.Time{})
			return nil
		}
		spec := j.specs[idx]
		sm := &shardMsg{JobID: j.id, Shard: uint32(idx), Lo: spec.lo, Hi: spec.hi}
		conn.SetWriteDeadline(time.Now().Add(c.cfg.SessionTimeout))
		if err := WriteFrame(conn, FrameShard, sm.encode()); err != nil {
			c.requeue(j, idx)
			return fmt.Errorf("shard %d write: %w", idx, err)
		}
		if c.hitCrash(j, chaos.CrashAfterDispatch) {
			return ErrCrashed // dispatched, nothing journaled: resume re-dispatches
		}
		conn.SetReadDeadline(time.Now().Add(c.cfg.SessionTimeout))
		ft, payload, err := ReadFrame(conn, c.cfg.MaxFrame)
		if err != nil {
			c.requeue(j, idx)
			return fmt.Errorf("shard %d result: %w", idx, err)
		}
		switch ft {
		case FrameResult:
			res, derr := decodeResult(payload)
			if derr != nil {
				c.requeue(j, idx)
				return fmt.Errorf("shard %d: %w", idx, derr)
			}
			if res.JobID != j.id || res.Shard != uint32(idx) {
				c.requeue(j, idx)
				return fmt.Errorf("shard %d: %w: got job %d shard %d", idx, ErrJobMismatch, res.JobID, res.Shard)
			}
			if derr := c.deliver(j, idx, res); derr != nil {
				c.requeue(j, idx)
				return fmt.Errorf("shard %d: %w", idx, derr)
			}
		case FrameError:
			em, derr := decodeError(payload)
			if derr != nil {
				c.requeue(j, idx)
				return derr
			}
			werr := fmt.Errorf("%w: worker %q: %s", ErrWorkerFailed, workerID, em.Msg)
			if em.Shard == errorShardSetup {
				// The worker rejected the job definition itself — that is
				// deterministic, so retrying elsewhere cannot help.
				c.mu.Lock()
				c.failJobLocked(j, werr)
				c.mu.Unlock()
				return werr
			}
			c.shardFailed(j, idx, werr)
			return werr
		default:
			c.requeue(j, idx)
			return fmt.Errorf("shard %d: %w: %v", idx, ErrProtocol, ft)
		}
	}
}
