package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/chaos"
	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/logic"
)

// Worker is a cluster compute node: it dials the coordinator, receives job
// setups and shard assignments, runs the local single-process engines on
// each shard and streams results back. Run keeps reconnecting with
// exponential backoff until its context is cancelled, so a worker survives
// coordinator restarts and transient network loss.
type Worker struct {
	// ID names the worker in coordinator logs.
	ID string
	// Dial opens a connection to the coordinator (TCP, Loopback.Dial, ...).
	Dial func() (net.Conn, error)
	// MaxFrame bounds accepted frame payloads (default DefaultMaxFrame).
	MaxFrame uint32
	// MinBackoff/MaxBackoff bound the reconnect delay (defaults 50ms / 2s).
	MinBackoff time.Duration
	MaxBackoff time.Duration
	// Seed drives the reconnect jitter stream. Zero derives a seed from ID,
	// so a fleet of workers that lost the same coordinator at the same
	// instant still spreads its reconnect attempts instead of stampeding
	// the restarted process in lockstep.
	Seed uint64
	// Logf receives progress lines (nil discards them).
	Logf func(format string, args ...any)
}

// seed returns the jitter seed: Seed if set, else a digest of ID. Distinct
// IDs give decorrelated jitter streams by construction.
func (w *Worker) seed() uint64 {
	if w.Seed != 0 {
		return w.Seed
	}
	s := sha256.Sum256([]byte(w.ID))
	return binary.BigEndian.Uint64(s[:8])
}

// jitterBackoff draws the actual reconnect delay for one attempt:
// uniformly in (backoff/2, backoff], so the exponential envelope is kept
// (delays never exceed backoff, never collapse below half of it) while
// synchronized workers decorrelate within one attempt.
func jitterBackoff(rng *chaos.Rand, backoff time.Duration) time.Duration {
	if backoff <= 1 {
		return backoff
	}
	half := backoff / 2
	return backoff - time.Duration(rng.Uint64()%uint64(half))
}

// Run connects, serves, and reconnects until ctx is cancelled (its error is
// then returned). Connection failures back off exponentially; a session
// that reached the coordinator resets the backoff.
func (w *Worker) Run(ctx context.Context) error {
	minB := w.MinBackoff
	if minB <= 0 {
		minB = 50 * time.Millisecond
	}
	maxB := w.MaxBackoff
	if maxB < minB {
		maxB = 2 * time.Second
	}
	logf := w.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rng := chaos.NewRand(w.seed())
	backoff := minB
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		conn, err := w.Dial()
		if err != nil {
			logf("worker %s: dial: %v (retry in %v)", w.ID, err, backoff)
		} else {
			err = w.session(ctx, conn)
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if err != nil && err != io.EOF {
				logf("worker %s: session ended: %v", w.ID, err)
			}
			backoff = minB // the coordinator was reachable; restart fast
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(jitterBackoff(rng, backoff)):
		}
		backoff = min(backoff*2, maxB)
	}
}

// session runs one connection: hello handshake, then a setup/shard loop.
// Semantic failures (bad job definition, bad shard range, engine panic) are
// reported to the coordinator as FrameError and the session continues;
// wire-level failures end the session so Run can reconnect.
func (w *Worker) session(ctx context.Context, conn net.Conn) error {
	defer conn.Close()
	// Watchdog: cancelling ctx closes the connection, which unblocks any
	// pending ReadFrame — the only way to interrupt a blocking read.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-watchDone:
		}
	}()

	hello := &helloMsg{Proto: WireVersion, ID: w.ID}
	if err := WriteFrame(conn, FrameHello, hello.encode()); err != nil {
		return err
	}
	var j *workerJob
	var setupErr error     // deterministic setup rejection, reported on the
	var setupErrJob uint64 // next shard request to keep strict alternation
	for {
		ft, payload, err := ReadFrame(conn, w.MaxFrame)
		if err != nil {
			if err == io.EOF {
				return nil // orderly close at a frame boundary
			}
			return err
		}
		switch ft {
		case FrameSetup:
			var werr error
			j, werr = newWorkerJob(payload)
			setupErr = nil
			if werr != nil {
				// A rejected setup is deterministic: the coordinator must
				// fail the job instead of re-dispatching forever. The reply
				// waits for the next shard request — the coordinator is
				// reading then, so the exchange stays strictly alternating
				// (an unsolicited write can deadlock an unbuffered pipe).
				j, setupErr = nil, werr
				if m, err := decodeSetup(payload); err == nil {
					setupErrJob = m.JobID
				} else {
					setupErrJob = 0
				}
			}
		case FrameShard:
			sm, derr := decodeShard(payload)
			if derr != nil {
				return derr
			}
			if j == nil && setupErr != nil && sm.JobID == setupErrJob {
				em := &errorMsg{JobID: sm.JobID, Shard: errorShardSetup, Msg: setupErr.Error()}
				if err := WriteFrame(conn, FrameError, em.encode()); err != nil {
					return err
				}
				continue
			}
			if j == nil || sm.JobID != j.id {
				em := &errorMsg{JobID: sm.JobID, Shard: sm.Shard, Msg: ErrJobMismatch.Error()}
				if err := WriteFrame(conn, FrameError, em.encode()); err != nil {
					return err
				}
				continue
			}
			res, werr := j.exec(sm)
			if werr != nil {
				em := &errorMsg{JobID: sm.JobID, Shard: sm.Shard, Msg: werr.Error()}
				if err := WriteFrame(conn, FrameError, em.encode()); err != nil {
					return err
				}
				continue
			}
			if err := WriteFrame(conn, FrameResult, res.encode()); err != nil {
				return err
			}
		case FrameDone:
			j = nil // job over; await the next setup on this connection
		default:
			return fmt.Errorf("%w: %v from coordinator", ErrProtocol, ft)
		}
	}
}

// workerJob is one job's local state: the reconstructed circuit, pattern
// set and fault list, a simulator, and lazily the full-width signature
// matrix for dictionary jobs (its columns outside the assigned shards stay
// untouched; only assigned column ranges are read back out).
type workerJob struct {
	id     uint64
	kind   JobKind
	sim    *fault.Simulator
	p      *logic.PatternSet
	faults []fault.Fault
	detBy  []int              // detect scratch, reused across shards
	sigs   []*fault.Signature // dictionary target, allocated on first shard
}

// newWorkerJob validates a setup payload and builds the local job state.
// The netlist arrives in its canonical binary encoding, whose round trip
// preserves gate IDs and PI/PO order exactly, so fault indices and
// signature rows mean the same thing on both ends; the embedded content
// hash is re-verified as the job's circuit identity.
func newWorkerJob(payload []byte) (*workerJob, error) {
	m, err := decodeSetup(payload)
	if err != nil {
		return nil, err
	}
	if sum := sha256.Sum256(m.NetBytes); !bytes.Equal(sum[:], m.NetHash[:]) {
		return nil, fmt.Errorf("%w: netlist content hash mismatch", ErrMalformed)
	}
	n, err := circuit.UnmarshalNetlist(m.NetBytes)
	if err != nil {
		return nil, err
	}
	words := int(m.Words)
	if fault.NormalizeWords(words) != words {
		return nil, fmt.Errorf("%w: invalid lane width %d", ErrMalformed, words)
	}
	if m.Inputs != len(n.PIs) {
		return nil, fmt.Errorf("%w: pattern width %d != PIs %d", ErrMalformed, m.Inputs, len(n.PIs))
	}
	p := &logic.PatternSet{Inputs: m.Inputs, N: m.NPat, Bits: m.PatBits}
	if err := validateJob(n, p, m.Faults); err != nil {
		return nil, err
	}
	sim, err := fault.NewSimulatorWords(n, words)
	if err != nil {
		return nil, err
	}
	return &workerJob{
		id:     m.JobID,
		kind:   m.Kind,
		sim:    sim,
		p:      p,
		faults: m.Faults,
	}, nil
}

// exec runs one shard through the local engine. Engine panics (which the
// range validation should make unreachable) are converted to errors so a
// poisoned shard reports FrameError instead of killing the worker.
func (j *workerJob) exec(sm *shardMsg) (res *resultMsg, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("worker engine panic: %v", r)
		}
	}()
	lo, hi := int(sm.Lo), int(sm.Hi)
	res = &resultMsg{JobID: j.id, Shard: sm.Shard, Kind: j.kind, Lo: sm.Lo, Hi: sm.Hi}
	switch j.kind {
	case KindDetect:
		if lo < 0 || hi < lo || hi > len(j.faults) {
			return nil, fmt.Errorf("%w: fault range [%d,%d) of %d", ErrMalformed, lo, hi, len(j.faults))
		}
		shard := j.faults[lo:hi]
		if cap(j.detBy) < len(shard) {
			j.detBy = make([]int, len(shard))
		}
		detBy := j.detBy[:len(shard)]
		// A fault's first-detection index depends only on (circuit,
		// patterns, fault) — per-shard dropping skips work strictly after
		// that index — so shard results equal the serial run's entries.
		j.sim.RunInto(j.p, shard, detBy, nil)
		res.DetBy = make([]int32, len(shard))
		for i, v := range detBy {
			res.DetBy[i] = int32(v)
		}
	case KindDictionary:
		words := j.p.Words()
		W := j.sim.Words()
		if lo < 0 || hi < lo || hi > words || lo%W != 0 || (hi != words && (hi-lo)%W != 0) {
			return nil, fmt.Errorf("%w: word range [%d,%d) not %d-block aligned in %d", ErrMalformed, lo, hi, W, words)
		}
		if j.sigs == nil {
			j.sigs = fault.NewSignatures(len(j.faults), len(j.sim.Net.POs), words)
		}
		j.sim.DictionaryRange(j.p, j.faults, lo, hi, j.sigs)
		// Ship only nonzero rows: dictionaries are sparse (most faults fail
		// at few POs), and zero rows are exactly the merge target's initial
		// state.
		span := hi - lo
		for fi, sig := range j.sigs {
			for po, bits := range sig.Bits {
				seg := bits[lo:hi]
				nz := false
				for _, w := range seg {
					if w != 0 {
						nz = true
						break
					}
				}
				if nz {
					row := sigEntry{Fi: uint32(fi), Po: uint32(po), Words: make([]logic.Word, span)}
					copy(row.Words, seg)
					res.Rows = append(res.Rows, row)
				}
			}
		}
	default:
		return nil, fmt.Errorf("%w: job kind %v", ErrMalformed, j.kind)
	}
	return res, nil
}
