package cluster

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/logic"
)

// ---------------------------------------------------------------------------
// Harness: a coordinator on a Loopback transport plus workers driven by
// cancellable contexts, all torn down by t.Cleanup.

func startCoordinatorOn(t *testing.T, cfg Config, l net.Listener) *Coordinator {
	t.Helper()
	c := New(cfg)
	go c.Serve(l)
	t.Cleanup(func() { c.Close() })
	return c
}

func startCoordinator(t *testing.T, cfg Config) (*Coordinator, *Loopback) {
	t.Helper()
	lb := NewLoopback()
	return startCoordinatorOn(t, cfg, lb), lb
}

func startWorkerDial(t *testing.T, dial func() (net.Conn, error), id string) context.CancelFunc {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	w := &Worker{ID: id, Dial: dial, MinBackoff: 10 * time.Millisecond}
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return cancel
}

func startWorker(t *testing.T, lb *Loopback, id string) context.CancelFunc {
	return startWorkerDial(t, lb.Dial, id)
}

func testPatterns(n *circuit.Netlist, npat int, seed int64) *logic.PatternSet {
	rng := rand.New(rand.NewSource(seed))
	p := logic.NewPatternSet(len(n.PIs), npat)
	p.RandFill(rng.Uint64)
	return p
}

func serialDetect(t *testing.T, n *circuit.Netlist, p *logic.PatternSet, faults []fault.Fault) *fault.Result {
	t.Helper()
	sim, err := fault.NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	return sim.RunSerial(p, faults)
}

func compareDetect(t *testing.T, got, want *fault.Result) {
	t.Helper()
	if got.Total != want.Total || got.Detected != want.Detected || got.Coverage != want.Coverage {
		t.Fatalf("summary: got %d/%d cov %g, want %d/%d cov %g",
			got.Detected, got.Total, got.Coverage, want.Detected, want.Total, want.Coverage)
	}
	for i := range want.DetectedBy {
		if got.DetectedBy[i] != want.DetectedBy[i] {
			t.Fatalf("fault %d: DetectedBy = %d, want %d", i, got.DetectedBy[i], want.DetectedBy[i])
		}
	}
}

func compareSigs(t *testing.T, got, want []*fault.Signature) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("signature count %d, want %d", len(got), len(want))
	}
	for fi := range want {
		for po := range want[fi].Bits {
			for w := range want[fi].Bits[po] {
				if got[fi].Bits[po][w] != want[fi].Bits[po][w] {
					t.Fatalf("signature (fault %d, po %d, word %d): %#x, want %#x",
						fi, po, w, got[fi].Bits[po][w], want[fi].Bits[po][w])
				}
			}
		}
	}
}

func testCtx(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// ---------------------------------------------------------------------------
// Bit-identity grids: the acceptance oracle. Coordinator results must equal
// the serial engine exactly for any worker count and shard size.

func TestClusterDetectBitIdentical(t *testing.T) {
	nets := []struct {
		name string
		n    *circuit.Netlist
	}{
		{"rand", circuit.Random(8, 120, 3)},
		{"adder", circuit.RippleAdder(4)},
	}
	combos := []struct {
		workers, shardFaults, words int
	}{
		{1, 1, 1},
		{1, 64, 8},
		{2, 7, 2},
		{2, 1 << 20, 8}, // single shard
		{4, 1, 4},
		{4, 16, 1},
	}
	for _, tc := range nets {
		faults := fault.Universe(tc.n)
		p := testPatterns(tc.n, 200, 11)
		want := serialDetect(t, tc.n, p, faults)
		for _, cb := range combos {
			t.Run(tc.name, func(t *testing.T) {
				c, lb := startCoordinator(t, Config{ShardFaults: cb.shardFaults})
				for i := 0; i < cb.workers; i++ {
					startWorker(t, lb, "w")
				}
				got, err := c.Detect(testCtx(t), tc.n, p, faults, cb.words)
				if err != nil {
					t.Fatalf("workers=%d shard=%d words=%d: %v", cb.workers, cb.shardFaults, cb.words, err)
				}
				compareDetect(t, got, want)
			})
		}
	}
}

func TestClusterDictionaryBitIdentical(t *testing.T) {
	nets := []struct {
		name string
		n    *circuit.Netlist
	}{
		{"rand", circuit.Random(8, 80, 5)},
		{"parity", circuit.GatedParity(3, 3, 2)},
	}
	combos := []struct {
		workers, shardWords, words int
	}{
		{1, 1, 1},
		{2, 2, 1},
		{2, 1, 2}, // rounds up to one W-block
		{4, 2, 4},
		{2, 1 << 20, 8}, // single shard
		{4, 3, 2},       // rounds up to 4 words
	}
	for _, tc := range nets {
		faults := fault.Universe(tc.n)
		p := testPatterns(tc.n, 500, 13) // 8 words: multiple shards at small widths
		sim, err := fault.NewSimulator(tc.n)
		if err != nil {
			t.Fatal(err)
		}
		want := sim.Dictionary(p, faults)
		for _, cb := range combos {
			t.Run(tc.name, func(t *testing.T) {
				c, lb := startCoordinator(t, Config{ShardWords: cb.shardWords})
				for i := 0; i < cb.workers; i++ {
					startWorker(t, lb, "w")
				}
				got, err := c.Dictionary(testCtx(t), tc.n, p, faults, cb.words)
				if err != nil {
					t.Fatalf("workers=%d shard=%d words=%d: %v", cb.workers, cb.shardWords, cb.words, err)
				}
				compareSigs(t, got, want)
			})
		}
	}
}

// TestClusterSequentialJobs pins connection reuse across jobs: the same
// worker pool serves detect, dictionary, then detect again, each against its
// own serial oracle.
func TestClusterSequentialJobs(t *testing.T) {
	n := circuit.Random(7, 90, 17)
	faults := fault.Universe(n)
	c, lb := startCoordinator(t, Config{ShardFaults: 32, ShardWords: 2})
	startWorker(t, lb, "a")
	startWorker(t, lb, "b")

	p1 := testPatterns(n, 130, 1)
	got1, err := c.Detect(testCtx(t), n, p1, faults, 2)
	if err != nil {
		t.Fatal(err)
	}
	compareDetect(t, got1, serialDetect(t, n, p1, faults))

	p2 := testPatterns(n, 200, 2)
	sim, err := fault.NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	gotD, err := c.Dictionary(testCtx(t), n, p2, faults, 1)
	if err != nil {
		t.Fatal(err)
	}
	compareSigs(t, gotD, sim.Dictionary(p2, faults))

	p3 := testPatterns(n, 70, 3)
	got3, err := c.Detect(testCtx(t), n, p3, faults, 8)
	if err != nil {
		t.Fatal(err)
	}
	compareDetect(t, got3, serialDetect(t, n, p3, faults))

	if st := c.Stats(); st.WorkersJoined < 2 {
		t.Errorf("WorkersJoined = %d, want >= 2", st.WorkersJoined)
	}
}

// shardSignalConn closes its channel the first time a FrameShard header
// passes through Read — the hook the kill test uses to cancel a worker that
// is provably mid-shard.
type shardSignalConn struct {
	net.Conn
	once sync.Once
	ch   chan struct{}
}

func (c *shardSignalConn) Read(b []byte) (int, error) {
	n, err := c.Conn.Read(b)
	if n >= 6 && string(b[:4]) == wireMagic && FrameType(b[5]) == FrameShard {
		c.once.Do(func() { close(c.ch) })
	}
	return n, err
}

// TestClusterWorkerKilledMidJob kills a worker right after it accepts its
// first shard. The survivor absorbs the re-dispatched work and the merged
// result stays bit-identical to the serial oracle.
func TestClusterWorkerKilledMidJob(t *testing.T) {
	n := circuit.Random(8, 150, 9)
	faults := fault.Universe(n)
	p := testPatterns(n, 300, 21)
	want := serialDetect(t, n, p, faults)

	c, lb := startCoordinator(t, Config{ShardFaults: 4, Deadline: 500 * time.Millisecond})
	gotShard := make(chan struct{})
	victimDial := func() (net.Conn, error) {
		conn, err := lb.Dial()
		if err != nil {
			return nil, err
		}
		return &shardSignalConn{Conn: conn, ch: gotShard}, nil
	}
	cancelVictim := startWorkerDial(t, victimDial, "victim")
	startWorker(t, lb, "survivor")
	go func() {
		<-gotShard
		cancelVictim()
	}()

	got, err := c.Detect(testCtx(t), n, p, faults, 4)
	if err != nil {
		t.Fatal(err)
	}
	compareDetect(t, got, want)
	st := c.Stats()
	if st.WorkersJoined < 2 {
		t.Errorf("WorkersJoined = %d, want >= 2", st.WorkersJoined)
	}
	t.Logf("stats after kill: %+v", st)
}

// rawConn speaks the wire protocol by hand from the test's main goroutine —
// the controllable "worker" the straggler and setup-rejection tests need.
type rawConn struct {
	t *testing.T
	c net.Conn
}

func dialRaw(t *testing.T, lb *Loopback, id string) *rawConn {
	t.Helper()
	conn, err := lb.Dial()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	r := &rawConn{t: t, c: conn}
	r.write(FrameHello, (&helloMsg{Proto: WireVersion, ID: id}).encode())
	return r
}

func (r *rawConn) write(ft FrameType, payload []byte) {
	r.t.Helper()
	r.c.SetWriteDeadline(time.Now().Add(10 * time.Second))
	if err := WriteFrame(r.c, ft, payload); err != nil {
		r.t.Fatalf("raw write %v: %v", ft, err)
	}
}

func (r *rawConn) read() (FrameType, []byte) {
	r.t.Helper()
	r.c.SetReadDeadline(time.Now().Add(10 * time.Second))
	ft, payload, err := ReadFrame(r.c, 0)
	if err != nil {
		r.t.Fatalf("raw read: %v", err)
	}
	return ft, payload
}

// TestClusterStragglerRedispatchAndDuplicateDiscard drives the first-result-
// wins path end to end: a hand-rolled worker takes the job's only shard and
// stalls; the deadline re-dispatches it to a real worker, whose result
// completes the job; then the straggler's late (identical) result arrives
// and is discarded as a duplicate, leaving the merge untouched.
func TestClusterStragglerRedispatchAndDuplicateDiscard(t *testing.T) {
	n := circuit.RippleAdder(2)
	faults := fault.Universe(n)
	p := testPatterns(n, 70, 31)
	want := serialDetect(t, n, p, faults)

	c, lb := startCoordinator(t, Config{
		ShardFaults:    len(faults), // one shard
		Deadline:       50 * time.Millisecond,
		SessionTimeout: 20 * time.Second, // straggler session must outlive the test
	})
	stall := dialRaw(t, lb, "straggler")

	type detectOut struct {
		res *fault.Result
		err error
	}
	out := make(chan detectOut, 1)
	go func() {
		res, err := c.Detect(testCtx(t), n, p, faults, 1)
		out <- detectOut{res, err}
	}()

	if ft, _ := stall.read(); ft != FrameSetup {
		t.Fatalf("straggler got %v, want setup", ft)
	}
	ft, payload := stall.read()
	if ft != FrameShard {
		t.Fatalf("straggler got %v, want shard", ft)
	}
	sm, err := decodeShard(payload)
	if err != nil {
		t.Fatal(err)
	}

	// The straggler now holds the only shard. The deadline must re-dispatch
	// it to this freshly joined worker for the job to complete at all.
	startWorker(t, lb, "rescuer")
	got := <-out
	if got.err != nil {
		t.Fatal(got.err)
	}
	compareDetect(t, got.res, want)

	// Late delivery of the straggler's (bit-identical) result: recompute it
	// locally and send. The coordinator must discard it as a duplicate and
	// answer Done rather than corrupting or re-counting the merge.
	sim, err := fault.NewSimulatorWords(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	shard := faults[sm.Lo:sm.Hi]
	detBy := make([]int, len(shard))
	sim.RunInto(p, shard, detBy, nil)
	res := &resultMsg{JobID: sm.JobID, Shard: sm.Shard, Kind: KindDetect, Lo: sm.Lo, Hi: sm.Hi, DetBy: make([]int32, len(shard))}
	for i, v := range detBy {
		res.DetBy[i] = int32(v)
	}
	stall.write(FrameResult, res.encode())
	if ft, _ := stall.read(); ft != FrameDone {
		t.Fatalf("straggler got %v after late result, want done", ft)
	}

	st := c.Stats()
	if st.Redispatches < 1 {
		t.Errorf("Redispatches = %d, want >= 1", st.Redispatches)
	}
	if st.Duplicates < 1 {
		t.Errorf("Duplicates = %d, want >= 1", st.Duplicates)
	}
}

// TestClusterSetupRejectionFailsJob pins the fail-fast path for
// deterministic job rejection: a worker that refuses the setup frame fails
// the whole job with a typed error instead of triggering endless
// re-dispatch.
func TestClusterSetupRejectionFailsJob(t *testing.T) {
	n := circuit.RippleAdder(2)
	faults := fault.Universe(n)
	p := testPatterns(n, 70, 41)

	c, lb := startCoordinator(t, Config{})
	raw := dialRaw(t, lb, "refusenik")

	out := make(chan error, 1)
	go func() {
		_, err := c.Detect(testCtx(t), n, p, faults, 1)
		out <- err
	}()
	ft, payload := raw.read()
	if ft != FrameSetup {
		t.Fatalf("got %v, want setup", ft)
	}
	m, err := decodeSetup(payload)
	if err != nil {
		t.Fatal(err)
	}
	// Consume the shard request first: the protocol alternates strictly, so
	// the rejection rides the response slot (see worker.session).
	if ft, _ := raw.read(); ft != FrameShard {
		t.Fatalf("got %v, want shard", ft)
	}
	raw.write(FrameError, (&errorMsg{JobID: m.JobID, Shard: errorShardSetup, Msg: "synthetic rejection"}).encode())
	if err := <-out; !errors.Is(err, ErrWorkerFailed) {
		t.Fatalf("Detect err = %v, want ErrWorkerFailed", err)
	}
}

// TestClusterNoWorkersHonorsContext pins that a job with no workers blocks
// until its context expires — a clean typed return, not a hang.
func TestClusterNoWorkersHonorsContext(t *testing.T) {
	n := circuit.RippleAdder(2)
	faults := fault.Universe(n)
	p := testPatterns(n, 70, 51)
	c, _ := startCoordinator(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := c.Detect(ctx, n, p, faults, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// TestClusterEmptyJobShortCircuits pins the degenerate inputs: zero faults
// (detect) and zero patterns (dictionary) complete instantly with no
// workers at all.
func TestClusterEmptyJobShortCircuits(t *testing.T) {
	n := circuit.RippleAdder(2)
	c, _ := startCoordinator(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	res, err := c.Detect(ctx, n, testPatterns(n, 70, 61), nil, 1)
	if err != nil || res.Total != 0 || res.Detected != 0 {
		t.Fatalf("empty detect: %+v, %v", res, err)
	}
	sigs, err := c.Dictionary(ctx, n, logic.NewPatternSet(len(n.PIs), 0), fault.Universe(n), 1)
	if err != nil || len(sigs) != len(fault.Universe(n)) {
		t.Fatalf("empty dictionary: %d sigs, %v", len(sigs), err)
	}
}

// TestClusterRejectsMismatchedJob pins coordinator-side validation: pattern
// width and fault indices are checked before anything hits the wire.
func TestClusterRejectsMismatchedJob(t *testing.T) {
	n := circuit.RippleAdder(2)
	c, _ := startCoordinator(t, Config{})
	ctx := testCtx(t)
	if _, err := c.Detect(ctx, n, logic.NewPatternSet(len(n.PIs)+1, 8), fault.Universe(n), 1); err == nil {
		t.Error("mismatched pattern width accepted")
	}
	bad := []fault.Fault{{Gate: len(n.Gates) + 5, Pin: -1, SA: 0}}
	if _, err := c.Detect(ctx, n, testPatterns(n, 8, 1), bad, 1); err == nil {
		t.Error("out-of-range fault accepted")
	}
}
