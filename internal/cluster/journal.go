package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/logic"
)

// Journal frame types, outside the live-protocol range (1–6) so a journal
// file can never be mistaken for a wire capture. Journal frames reuse the
// wire layer's framing — magic, version, length, sha256(payload) — which
// is what makes torn tails and bit rot typed detections instead of
// garbage decodes.
const (
	frameJournalHeader FrameType = 16 // job header: kind, geometry, input hashes
	frameJournalShard  FrameType = 17 // one verified shard result (resultMsg encoding)
)

// Typed journal errors.
var (
	// ErrJournalCorrupt marks a journal whose intact-looking contents are
	// semantically invalid (undecodable header, record for an impossible
	// shard, out-of-range indices). Unlike a torn tail, corruption is not
	// silently discarded: resuming from it is refused.
	ErrJournalCorrupt = errors.New("cluster: corrupt journal")
	// ErrJournalMismatch marks a journal whose header does not describe the
	// job being resumed (different circuit, patterns, faults, words or
	// shard geometry).
	ErrJournalMismatch = errors.New("cluster: journal does not match job")
	// ErrCrashed is the job error after a chaos crash hook fires: the
	// coordinator behaves exactly as if the process died at that point.
	ErrCrashed = errors.New("cluster: coordinator crashed at chaos point")
)

// SyncWriter is the durability contract a journal destination must offer:
// buffered writes plus an explicit barrier that makes everything written
// so far survive a crash. *os.File satisfies it; chaos.VolatileFile
// models it for deterministic in-process crash tests.
type SyncWriter interface {
	io.Writer
	Sync() error
}

// JournalHeader pins a journal to one exact job: the circuit content
// hash, a digest of the patterns and fault list, the engine parameters
// and the shard geometry. Resume refuses (ErrJournalMismatch) unless
// every field matches the job being resumed — shard indices in the
// records are only meaningful under the exact same partitioning.
type JournalHeader struct {
	Kind      JobKind
	Words     uint8
	NFaults   uint32
	NPOs      uint32
	Inputs    uint32
	NPat      uint32
	ShardUnit uint32 // faults per shard (detect) or pattern words per shard (dictionary)
	NShards   uint32
	CircuitHash [32]byte // sha256 of the canonical netlist encoding (== setup NetHash)
	InputsHash  [32]byte // sha256 over the pattern bits and fault list
}

func (h *JournalHeader) encode() []byte {
	var e encoder
	e.u8(uint8(h.Kind))
	e.u8(h.Words)
	e.u32(h.NFaults)
	e.u32(h.NPOs)
	e.u32(h.Inputs)
	e.u32(h.NPat)
	e.u32(h.ShardUnit)
	e.u32(h.NShards)
	e.buf.Write(h.CircuitHash[:])
	e.buf.Write(h.InputsHash[:])
	return e.buf.Bytes()
}

func decodeJournalHeader(payload []byte) (*JournalHeader, error) {
	d := &decoder{data: payload}
	h := &JournalHeader{
		Kind:      JobKind(d.u8()),
		Words:     d.u8(),
		NFaults:   d.u32(),
		NPOs:      d.u32(),
		Inputs:    d.u32(),
		NPat:      d.u32(),
		ShardUnit: d.u32(),
		NShards:   d.u32(),
	}
	copy(h.CircuitHash[:], d.take(32))
	copy(h.InputsHash[:], d.take(32))
	if err := d.finish(); err != nil {
		return nil, err
	}
	if h.Kind != KindDetect && h.Kind != KindDictionary {
		return nil, fmt.Errorf("%w: unknown job kind %d", ErrMalformed, h.Kind)
	}
	if h.ShardUnit == 0 {
		return nil, fmt.Errorf("%w: zero shard unit", ErrMalformed)
	}
	// The shard count must be the one the geometry implies — the record
	// validator derives each shard's range from (unit, total), so an
	// inconsistent count would let records address ranges that never
	// existed.
	if want := (h.total() + int(h.ShardUnit) - 1) / int(h.ShardUnit); want != int(h.NShards) {
		return nil, fmt.Errorf("%w: %d shards but geometry implies %d", ErrMalformed, h.NShards, want)
	}
	return h, nil
}

// total is the number of units being sharded: faults for detect jobs,
// pattern words for dictionary jobs.
func (h *JournalHeader) total() int {
	switch h.Kind {
	case KindDictionary:
		return (int(h.NPat) + logic.WordBits - 1) / logic.WordBits
	default:
		return int(h.NFaults)
	}
}

// spec reconstructs shard i's range from the header geometry — the same
// arithmetic the coordinator's partitioners use, which is what lets a
// replay validate records without the original job object.
func (h *JournalHeader) spec(i int) shardSpec {
	lo := i * int(h.ShardUnit)
	hi := min(lo+int(h.ShardUnit), h.total())
	return shardSpec{lo: uint32(lo), hi: uint32(hi)}
}

// matches checks a journal header against the header of the job being
// resumed, returning a typed ErrJournalMismatch naming the first
// divergent field.
func (h *JournalHeader) matches(cur *JournalHeader) error {
	switch {
	case h.CircuitHash != cur.CircuitHash:
		return fmt.Errorf("%w: circuit hash %x.. != %x..", ErrJournalMismatch, h.CircuitHash[:4], cur.CircuitHash[:4])
	case h.InputsHash != cur.InputsHash:
		return fmt.Errorf("%w: pattern/fault hash %x.. != %x..", ErrJournalMismatch, h.InputsHash[:4], cur.InputsHash[:4])
	case h.Kind != cur.Kind:
		return fmt.Errorf("%w: job kind %v != %v", ErrJournalMismatch, h.Kind, cur.Kind)
	case h.Words != cur.Words:
		return fmt.Errorf("%w: words %d != %d", ErrJournalMismatch, h.Words, cur.Words)
	case h.NFaults != cur.NFaults || h.NPOs != cur.NPOs || h.Inputs != cur.Inputs || h.NPat != cur.NPat:
		return fmt.Errorf("%w: dimensions (faults %d, POs %d, inputs %d, patterns %d) != (%d, %d, %d, %d)",
			ErrJournalMismatch, h.NFaults, h.NPOs, h.Inputs, h.NPat, cur.NFaults, cur.NPOs, cur.Inputs, cur.NPat)
	case h.ShardUnit != cur.ShardUnit || h.NShards != cur.NShards:
		return fmt.Errorf("%w: shard geometry (unit %d, %d shards) != (unit %d, %d shards)",
			ErrJournalMismatch, h.ShardUnit, h.NShards, cur.ShardUnit, cur.NShards)
	}
	return nil
}

// Journal is the coordinator's append-only write-ahead log: one header
// frame, then one record frame per verified shard result. Appends buffer;
// Sync is the durability barrier — the coordinator appends a result, then
// syncs, then merges, so every merged shard is durable first. Safe for
// concurrent use by the coordinator's sessions.
type Journal struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	dst SyncWriter
	err error // sticky: first I/O error, or ErrCrashed after kill
}

// NewJournal wraps a destination. No header is written until WriteHeader
// — a resumed journal already has one and just keeps appending.
func NewJournal(dst SyncWriter) *Journal {
	return &Journal{bw: bufio.NewWriter(dst), dst: dst}
}

// WriteHeader appends the job header and syncs it, so even a journal of a
// job that crashed before any shard completed identifies its job.
func (l *Journal) WriteHeader(h *JournalHeader) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if err := WriteFrame(l.bw, frameJournalHeader, h.encode()); err != nil {
		l.err = err
		return err
	}
	return l.syncLocked()
}

// Append buffers one shard-result record. It is NOT durable until Sync.
func (l *Journal) Append(res *resultMsg) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if err := WriteFrame(l.bw, frameJournalShard, res.encode()); err != nil {
		l.err = err
	}
	return l.err
}

// Sync flushes buffered records and commits them to durable storage.
func (l *Journal) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	return l.syncLocked()
}

func (l *Journal) syncLocked() error {
	if err := l.bw.Flush(); err != nil {
		l.err = err
		return err
	}
	if err := l.dst.Sync(); err != nil {
		l.err = err
		return err
	}
	return nil
}

// kill freezes the journal at a chaos crash: every later Append/Sync
// returns ErrCrashed, leaving the destination holding exactly the bytes a
// dead process would have left behind (synced frames plus whatever the
// buffer had flushed — possibly a torn tail).
func (l *Journal) kill() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err == nil {
		l.err = ErrCrashed
	}
}

// Replay is a journal's recovered contents: the validated header, every
// intact shard record, and how much of the byte stream they span.
type Replay struct {
	Header *JournalHeader
	// Torn reports that the byte stream ended in a damaged frame (partial
	// write at the crash, or rot past the valid prefix). The damaged
	// suffix is discarded — its shards simply recompute on resume.
	Torn bool
	// Valid is the byte length of the intact prefix. A resuming process
	// truncates the file here before appending, so a torn tail cannot
	// desync later records.
	Valid int64

	results []*resultMsg
}

// Shards reports how many intact shard records the replay recovered.
func (r *Replay) Shards() int { return len(r.results) }

type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	k, err := cr.r.Read(p)
	cr.n += int64(k)
	return k, err
}

// ReadJournal replays a journal byte stream. The distinction between its
// two failure modes is deliberate:
//
//   - Frame-level damage after a valid prefix (truncated frame, payload
//     hash mismatch) is a torn tail — the expected residue of a crash
//     mid-append. The suffix is discarded, Replay.Torn is set, and no
//     error is returned: resume recomputes the lost shards.
//   - Records whose framing is intact but whose content is invalid (bad
//     header, impossible shard index, out-of-range rows) mean the file is
//     not a truthful journal of any job; that is ErrJournalCorrupt and
//     resume from it is refused rather than risking a wrong merge.
//
// It never panics on arbitrary input (FuzzJournal pins this).
func ReadJournal(r io.Reader) (*Replay, error) {
	cr := &countingReader{r: r}
	ft, payload, err := ReadFrame(cr, DefaultMaxFrame)
	if err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrJournalCorrupt, err)
	}
	if ft != frameJournalHeader {
		return nil, fmt.Errorf("%w: first frame is %v, want journal header", ErrJournalCorrupt, ft)
	}
	h, err := decodeJournalHeader(payload)
	if err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrJournalCorrupt, err)
	}
	rep := &Replay{Header: h, Valid: cr.n}
	for {
		ft, payload, err := ReadFrame(cr, DefaultMaxFrame)
		if err == io.EOF {
			return rep, nil // clean end at a frame boundary
		}
		if err != nil {
			rep.Torn = true
			return rep, nil
		}
		if ft != frameJournalShard {
			return nil, fmt.Errorf("%w: unexpected frame %v in record stream", ErrJournalCorrupt, ft)
		}
		res, derr := decodeResult(payload)
		if derr != nil {
			return nil, fmt.Errorf("%w: shard record: %v", ErrJournalCorrupt, derr)
		}
		idx := int(res.Shard)
		if idx >= int(h.NShards) {
			return nil, fmt.Errorf("%w: record for shard %d of %d", ErrJournalCorrupt, idx, h.NShards)
		}
		if verr := validateResult(h.Kind, h.spec(idx), res, int(h.NFaults), int(h.NPOs)); verr != nil {
			return nil, fmt.Errorf("%w: shard %d record: %v", ErrJournalCorrupt, idx, verr)
		}
		rep.results = append(rep.results, res)
		rep.Valid = cr.n
	}
}
