package sim

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/logic"
)

// MaxLanes is the largest number of 64-bit pattern words a multi-word
// simulator packs per gate. One lane is one logic.Word (64 patterns), so a
// full-width pass carries MaxLanes*logic.WordBits = 512 patterns.
const MaxLanes = 8

// maxFanin bounds the stack scratch of the lane evaluators; it matches the
// fanin bound of the single-word simulator's faninBuf.
const maxFanin = 8

// EvalLanes computes one gate's output lanes from its fanin lanes. in holds
// n fanin operands of act lanes each, flattened as in[pin*act+lane]; out
// receives act lanes. Like Eval, gate types are validated at circuit.Compile
// time; an out-of-range type evaluates to all-zero lanes.
func EvalLanes(t circuit.GateType, in []logic.Word, n, act int, out []logic.Word) {
	switch t {
	case circuit.Buf, circuit.DFF:
		for l := 0; l < act; l++ {
			out[l] = in[l]
		}
	case circuit.Not:
		for l := 0; l < act; l++ {
			out[l] = ^in[l]
		}
	case circuit.And, circuit.Nand:
		for l := 0; l < act; l++ {
			out[l] = in[l]
		}
		for p := 1; p < n; p++ {
			b := p * act
			for l := 0; l < act; l++ {
				out[l] &= in[b+l]
			}
		}
		if t == circuit.Nand {
			for l := 0; l < act; l++ {
				out[l] = ^out[l]
			}
		}
	case circuit.Or, circuit.Nor:
		for l := 0; l < act; l++ {
			out[l] = in[l]
		}
		for p := 1; p < n; p++ {
			b := p * act
			for l := 0; l < act; l++ {
				out[l] |= in[b+l]
			}
		}
		if t == circuit.Nor {
			for l := 0; l < act; l++ {
				out[l] = ^out[l]
			}
		}
	case circuit.Xor, circuit.Xnor:
		for l := 0; l < act; l++ {
			out[l] = in[l]
		}
		for p := 1; p < n; p++ {
			b := p * act
			for l := 0; l < act; l++ {
				out[l] ^= in[b+l]
			}
		}
		if t == circuit.Xnor {
			for l := 0; l < act; l++ {
				out[l] = ^out[l]
			}
		}
	default:
		for l := 0; l < act; l++ {
			out[l] = 0
		}
	}
}

// Wide is the multi-word counterpart of Simulator: it evaluates W pattern
// words (up to MaxLanes, i.e. W*64 patterns) per gate in a single levelized
// pass, so the per-gate dispatch and fanin gathering amortize over all
// lanes. Values are stored strided — all lanes of a gate are contiguous at
// values[g*W : g*W+W] — which is the layout the multi-word fault engine
// reads in its hot loop. Like Simulator, a Wide owns only its value buffer;
// the compiled IR is shared and read-only.
type Wide struct {
	Net *circuit.Netlist
	// C is the shared compiled IR; read-only.
	C *circuit.Compiled
	// W is the lane stride; fixed at construction.
	W      int
	values []logic.Word // strided lanes: values[g*W+l]
}

// NewWideCompiled builds a W-lane simulator over an already-compiled IR.
// 1 <= w <= MaxLanes.
func NewWideCompiled(c *circuit.Compiled, w int) *Wide {
	if w < 1 || w > MaxLanes {
		panic(fmt.Sprintf("sim: lane count %d out of range [1,%d]", w, MaxLanes))
	}
	return &Wide{
		Net:    c.Net,
		C:      c,
		W:      w,
		values: make([]logic.Word, c.NumGates()*w),
	}
}

// Block simulates act pattern words (act <= W) in one pass. piWords is
// strided like the value buffer: lane l of Net.PIs[i] at piWords[i*W+l].
// Lanes at index >= act are neither read nor written — their stored values
// are stale and callers must not read them. The returned slice aliases
// internal storage valid until the next call.
func (s *Wide) Block(piWords []logic.Word, act int) []logic.Word {
	c := s.C
	W := s.W
	if len(piWords) != c.NumPIs()*W {
		panic(fmt.Sprintf("sim: got %d PI lane words, want %d", len(piWords), c.NumPIs()*W))
	}
	if act < 1 || act > W {
		panic(fmt.Sprintf("sim: active lanes %d out of range [1,%d]", act, W))
	}
	var faninBuf [maxFanin * MaxLanes]logic.Word
	vals := s.values
	for _, id32 := range c.Order {
		id := int(id32)
		t := c.Types[id]
		base := id * W
		if t == circuit.Input || t == circuit.DFF {
			// Full-scan: DFF outputs are pseudo-PIs.
			pb := int(c.PIPos[id]) * W
			for l := 0; l < act; l++ {
				vals[base+l] = piWords[pb+l]
			}
			continue
		}
		fanin := c.Fanin(id)
		in := faninBuf[:len(fanin)*act]
		for pin, f := range fanin {
			fb := int(f) * W
			ib := pin * act
			for l := 0; l < act; l++ {
				in[ib+l] = vals[fb+l]
			}
		}
		EvalLanes(t, in, len(fanin), act, vals[base:base+act])
	}
	return vals
}

// BlockRange simulates only lanes [lo, hi) of the pattern block, leaving
// every other lane's stored values untouched. It exists for append-only
// staging: when a caller has already simulated the first lo lanes and new
// patterns only extended the block, re-simulating the tail lanes refreshes
// the buffer at a fraction of a full Block pass.
func (s *Wide) BlockRange(piWords []logic.Word, lo, hi int) []logic.Word {
	c := s.C
	W := s.W
	if len(piWords) != c.NumPIs()*W {
		panic(fmt.Sprintf("sim: got %d PI lane words, want %d", len(piWords), c.NumPIs()*W))
	}
	if lo < 0 || lo >= hi || hi > W {
		panic(fmt.Sprintf("sim: lane range [%d,%d) out of range [0,%d)", lo, hi, W))
	}
	n := hi - lo
	var faninBuf [maxFanin * MaxLanes]logic.Word
	vals := s.values
	for _, id32 := range c.Order {
		id := int(id32)
		t := c.Types[id]
		base := id*W + lo
		if t == circuit.Input || t == circuit.DFF {
			pb := int(c.PIPos[id])*W + lo
			for l := 0; l < n; l++ {
				vals[base+l] = piWords[pb+l]
			}
			continue
		}
		fanin := c.Fanin(id)
		in := faninBuf[:len(fanin)*n]
		for pin, f := range fanin {
			fb := int(f)*W + lo
			ib := pin * n
			for l := 0; l < n; l++ {
				in[ib+l] = vals[fb+l]
			}
		}
		EvalLanes(t, in, len(fanin), n, vals[base:base+n])
	}
	return vals
}

// Values returns the strided lane buffer from the most recent Block call.
// The slice aliases internal storage; callers must not mutate it, and lanes
// beyond the last Block's active count are stale.
func (s *Wide) Values() []logic.Word { return s.values }
