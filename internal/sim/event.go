package sim

import (
	"fmt"

	"repro/internal/circuit"
)

// EventSim is a single-pattern event-driven simulator. It keeps the current
// value of every gate and propagates only the cone affected by changed
// inputs, making incremental input flips cheap. It serves as the serial
// baseline against which parallel-pattern simulation speedup is measured
// (experiment T7) and as the engine for toggle-activity profiling.
type EventSim struct {
	Net *circuit.Netlist
	// C is the shared compiled IR; read-only.
	C       *circuit.Compiled
	vals    []bool
	dirty   []bool
	queue   []int
	Toggles []int64 // per-gate toggle counters (for activity profiling)
	Events  int64   // total gate evaluations performed
}

// NewEvent builds an event-driven simulator with all gates initialized by a
// full evaluation of the all-zero input. The compiled IR is cached on the
// netlist and shared with every other engine bound to it.
func NewEvent(n *circuit.Netlist) (*EventSim, error) {
	c, err := n.Compiled()
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	return NewEventCompiled(c), nil
}

// NewEventCompiled builds an event-driven simulator over an already-compiled
// IR, allocating only per-instance state.
func NewEventCompiled(c *circuit.Compiled) *EventSim {
	e := &EventSim{
		Net:     c.Net,
		C:       c,
		vals:    make([]bool, c.NumGates()),
		dirty:   make([]bool, c.NumGates()),
		Toggles: make([]int64, c.NumGates()),
	}
	e.fullEval()
	return e
}

// evalBool evaluates one gate over plain booleans. Gate types are validated
// at circuit.Compile time; an out-of-range type (only constructible by
// bypassing Compile) evaluates to false.
func evalBool(t circuit.GateType, in []bool) bool {
	switch t {
	case circuit.Buf, circuit.DFF:
		return in[0]
	case circuit.Not:
		return !in[0]
	case circuit.And, circuit.Nand:
		v := true
		for _, b := range in {
			v = v && b
		}
		if t == circuit.Nand {
			v = !v
		}
		return v
	case circuit.Or, circuit.Nor:
		v := false
		for _, b := range in {
			v = v || b
		}
		if t == circuit.Nor {
			v = !v
		}
		return v
	case circuit.Xor, circuit.Xnor:
		v := false
		for _, b := range in {
			v = v != b
		}
		if t == circuit.Xnor {
			v = !v
		}
		return v
	}
	return false
}

func (e *EventSim) fullEval() {
	c := e.C
	var in []bool
	for _, id32 := range c.Order {
		id := int(id32)
		t := c.Types[id]
		if t == circuit.Input || t == circuit.DFF {
			continue
		}
		in = in[:0]
		for _, f := range c.Fanin(id) {
			in = append(in, e.vals[f])
		}
		e.vals[id] = evalBool(t, in)
		e.Events++
	}
}

// SetInputs applies a full input pattern, propagating only changes. The
// propagation is levelized: events are processed in topological order so
// every gate is evaluated at most once per call.
func (e *EventSim) SetInputs(bits []bool) {
	if len(bits) != len(e.Net.PIs) {
		panic(fmt.Sprintf("sim: pattern width %d != PIs %d", len(bits), len(e.Net.PIs)))
	}
	e.queue = e.queue[:0]
	for i, id := range e.Net.PIs {
		if e.vals[id] != bits[i] {
			e.vals[id] = bits[i]
			e.Toggles[id]++
			e.schedule(id)
		}
	}
	e.propagate()
}

// FlipInput toggles one primary input (by PI index) and propagates.
func (e *EventSim) FlipInput(i int) {
	id := e.Net.PIs[i]
	e.vals[id] = !e.vals[id]
	e.Toggles[id]++
	e.queue = e.queue[:0]
	e.schedule(id)
	e.propagate()
}

func (e *EventSim) schedule(id int) {
	for _, fo := range e.C.Fanout(id) {
		if !e.dirty[fo] {
			e.dirty[fo] = true
			e.queue = append(e.queue, int(fo))
		}
	}
}

func (e *EventSim) propagate() {
	// Process in level order; the queue may grow while iterating, so use a
	// simple insertion-by-level via repeated min extraction over a bucket
	// structure: with modest depths, sorting the frontier per wave is fine.
	c := e.C
	for len(e.queue) > 0 {
		// Find the minimum level in the queue and process all gates at it.
		minLvl := int32(^uint32(0) >> 1)
		for _, id := range e.queue {
			if l := c.Level[id]; l < minLvl {
				minLvl = l
			}
		}
		next := e.queue[:0:cap(e.queue)]
		var wave []int
		for _, id := range e.queue {
			if c.Level[id] == minLvl {
				wave = append(wave, id)
			} else {
				next = append(next, id)
			}
		}
		e.queue = next
		var in []bool
		for _, id := range wave {
			e.dirty[id] = false
			t := c.Types[id]
			if t == circuit.Input || t == circuit.DFF {
				// Full scan: flip-flop outputs are pseudo-PIs; their value
				// is set only by SetInputs, never by fanin propagation.
				continue
			}
			in = in[:0]
			for _, f := range c.Fanin(id) {
				in = append(in, e.vals[f])
			}
			nv := evalBool(t, in)
			e.Events++
			if nv != e.vals[id] {
				e.vals[id] = nv
				e.Toggles[id]++
				e.schedule(id)
			}
		}
	}
}

// Value returns the current value of gate id.
func (e *EventSim) Value(id int) bool { return e.vals[id] }

// Outputs returns the current PO values.
func (e *EventSim) Outputs() []bool {
	out := make([]bool, len(e.Net.POs))
	for i, po := range e.Net.POs {
		out[i] = e.vals[po]
	}
	return out
}

// ActivityProfile runs the pattern sequence and returns the per-gate toggle
// probability (toggles per applied pattern), the workload statistic consumed
// by the aging models (duty/activity factors).
func (e *EventSim) ActivityProfile(patterns [][]bool) []float64 {
	for i := range e.Toggles {
		e.Toggles[i] = 0
	}
	for _, p := range patterns {
		e.SetInputs(p)
	}
	prof := make([]float64, len(e.Toggles))
	if len(patterns) == 0 {
		return prof
	}
	for i, t := range e.Toggles {
		prof[i] = float64(t) / float64(len(patterns))
	}
	return prof
}
