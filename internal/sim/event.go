package sim

import (
	"fmt"

	"repro/internal/circuit"
)

// EventSim is a single-pattern event-driven simulator. It keeps the current
// value of every gate and propagates only the cone affected by changed
// inputs, making incremental input flips cheap. It serves as the serial
// baseline against which parallel-pattern simulation speedup is measured
// (experiment T7) and as the engine for toggle-activity profiling.
type EventSim struct {
	Net     *circuit.Netlist
	vals    []bool
	dirty   []bool
	queue   []int
	piPos   map[int]int
	Toggles []int64 // per-gate toggle counters (for activity profiling)
	Events  int64   // total gate evaluations performed
}

// NewEvent builds an event-driven simulator with all gates initialized by a
// full evaluation of the all-zero input.
func NewEvent(n *circuit.Netlist) (*EventSim, error) {
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	e := &EventSim{
		Net:     n,
		vals:    make([]bool, len(n.Gates)),
		dirty:   make([]bool, len(n.Gates)),
		piPos:   n.InputIndex(),
		Toggles: make([]int64, len(n.Gates)),
	}
	e.fullEval()
	return e, nil
}

func evalBool(t circuit.GateType, in []bool) bool {
	switch t {
	case circuit.Buf, circuit.DFF:
		return in[0]
	case circuit.Not:
		return !in[0]
	case circuit.And, circuit.Nand:
		v := true
		for _, b := range in {
			v = v && b
		}
		if t == circuit.Nand {
			v = !v
		}
		return v
	case circuit.Or, circuit.Nor:
		v := false
		for _, b := range in {
			v = v || b
		}
		if t == circuit.Nor {
			v = !v
		}
		return v
	case circuit.Xor, circuit.Xnor:
		v := false
		for _, b := range in {
			v = v != b
		}
		if t == circuit.Xnor {
			v = !v
		}
		return v
	}
	panic(fmt.Sprintf("sim: cannot evaluate gate type %v", t))
}

func (e *EventSim) fullEval() {
	var in []bool
	for _, id := range e.Net.TopoOrder() {
		g := e.Net.Gates[id]
		if g.Type == circuit.Input || g.Type == circuit.DFF {
			continue
		}
		in = in[:0]
		for _, f := range g.Fanin {
			in = append(in, e.vals[f])
		}
		e.vals[id] = evalBool(g.Type, in)
		e.Events++
	}
}

// SetInputs applies a full input pattern, propagating only changes. The
// propagation is levelized: events are processed in topological order so
// every gate is evaluated at most once per call.
func (e *EventSim) SetInputs(bits []bool) {
	if len(bits) != len(e.Net.PIs) {
		panic(fmt.Sprintf("sim: pattern width %d != PIs %d", len(bits), len(e.Net.PIs)))
	}
	e.queue = e.queue[:0]
	for i, id := range e.Net.PIs {
		if e.vals[id] != bits[i] {
			e.vals[id] = bits[i]
			e.Toggles[id]++
			e.schedule(id)
		}
	}
	e.propagate()
}

// FlipInput toggles one primary input (by PI index) and propagates.
func (e *EventSim) FlipInput(i int) {
	id := e.Net.PIs[i]
	e.vals[id] = !e.vals[id]
	e.Toggles[id]++
	e.queue = e.queue[:0]
	e.schedule(id)
	e.propagate()
}

func (e *EventSim) schedule(id int) {
	for _, fo := range e.Net.Gates[id].Fanout {
		if !e.dirty[fo] {
			e.dirty[fo] = true
			e.queue = append(e.queue, fo)
		}
	}
}

func (e *EventSim) propagate() {
	// Process in level order; the queue may grow while iterating, so use a
	// simple insertion-by-level via repeated min extraction over a bucket
	// structure: with modest depths, sorting the frontier per wave is fine.
	for len(e.queue) > 0 {
		// Find the minimum level in the queue and process all gates at it.
		minLvl := int(^uint(0) >> 1)
		for _, id := range e.queue {
			if l := e.Net.Gates[id].Level; l < minLvl {
				minLvl = l
			}
		}
		next := e.queue[:0:cap(e.queue)]
		var wave []int
		for _, id := range e.queue {
			if e.Net.Gates[id].Level == minLvl {
				wave = append(wave, id)
			} else {
				next = append(next, id)
			}
		}
		e.queue = next
		var in []bool
		for _, id := range wave {
			e.dirty[id] = false
			g := e.Net.Gates[id]
			if g.Type == circuit.Input || g.Type == circuit.DFF {
				// Full scan: flip-flop outputs are pseudo-PIs; their value
				// is set only by SetInputs, never by fanin propagation.
				continue
			}
			in = in[:0]
			for _, f := range g.Fanin {
				in = append(in, e.vals[f])
			}
			nv := evalBool(g.Type, in)
			e.Events++
			if nv != e.vals[id] {
				e.vals[id] = nv
				e.Toggles[id]++
				e.schedule(id)
			}
		}
	}
}

// Value returns the current value of gate id.
func (e *EventSim) Value(id int) bool { return e.vals[id] }

// Outputs returns the current PO values.
func (e *EventSim) Outputs() []bool {
	out := make([]bool, len(e.Net.POs))
	for i, po := range e.Net.POs {
		out[i] = e.vals[po]
	}
	return out
}

// ActivityProfile runs the pattern sequence and returns the per-gate toggle
// probability (toggles per applied pattern), the workload statistic consumed
// by the aging models (duty/activity factors).
func (e *EventSim) ActivityProfile(patterns [][]bool) []float64 {
	for i := range e.Toggles {
		e.Toggles[i] = 0
	}
	for _, p := range patterns {
		e.SetInputs(p)
	}
	prof := make([]float64, len(e.Toggles))
	if len(patterns) == 0 {
		return prof
	}
	for i, t := range e.Toggles {
		prof[i] = float64(t) / float64(len(patterns))
	}
	return prof
}
