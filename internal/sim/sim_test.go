package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/logic"
)

func TestEvalWords(t *testing.T) {
	a, b := logic.Word(0b1100), logic.Word(0b1010)
	cases := []struct {
		t    circuit.GateType
		in   []logic.Word
		want logic.Word
	}{
		{circuit.Buf, []logic.Word{a}, a},
		{circuit.Not, []logic.Word{a}, ^a},
		{circuit.And, []logic.Word{a, b}, a & b},
		{circuit.Nand, []logic.Word{a, b}, ^(a & b)},
		{circuit.Or, []logic.Word{a, b}, a | b},
		{circuit.Nor, []logic.Word{a, b}, ^(a | b)},
		{circuit.Xor, []logic.Word{a, b}, a ^ b},
		{circuit.Xnor, []logic.Word{a, b}, ^(a ^ b)},
		{circuit.And, []logic.Word{a, b, 0b1000}, a & b & 0b1000},
	}
	for _, c := range cases {
		if got := Eval(c.t, c.in); got != c.want {
			t.Errorf("Eval(%v) = %x, want %x", c.t, got, c.want)
		}
	}
}

// TestC17Truth verifies the simulator against c17's known function:
// G22 = NAND(G10,G16), etc., computed independently.
func TestC17Truth(t *testing.T) {
	n := circuit.MustC17()
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	ref := func(in []bool) (bool, bool) {
		g1, g2, g3, g6, g7 := in[0], in[1], in[2], in[3], in[4]
		nand := func(a, b bool) bool { return !(a && b) }
		g10 := nand(g1, g3)
		g11 := nand(g3, g6)
		g16 := nand(g2, g11)
		g19 := nand(g11, g7)
		return nand(g10, g16), nand(g16, g19)
	}
	p := logic.Exhaustive(5)
	r := s.Run(p)
	for pat := 0; pat < p.N; pat++ {
		w22, w23 := ref(p.Pattern(pat))
		if r.Get(pat, 0) != w22 || r.Get(pat, 1) != w23 {
			t.Fatalf("pattern %05b: got (%v,%v), want (%v,%v)",
				pat, r.Get(pat, 0), r.Get(pat, 1), w22, w23)
		}
	}
}

// TestAdderArithmetic checks the ripple adder against integer addition over
// random operands, exercising multi-word pattern sets.
func TestAdderArithmetic(t *testing.T) {
	const w = 8
	n := circuit.RippleAdder(w)
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	p := logic.NewPatternSet(len(n.PIs), 200)
	type opnd struct{ a, b, cin int }
	ops := make([]opnd, 200)
	// PI order is a0,b0,a1,b1,...,cin as generated.
	idx := n.InputIndex()
	pin := func(name string) int {
		g, ok := n.GateByName(name)
		if !ok {
			t.Fatalf("missing input %s", name)
		}
		return idx[g.ID]
	}
	for k := range ops {
		ops[k] = opnd{rng.Intn(1 << w), rng.Intn(1 << w), rng.Intn(2)}
		for i := 0; i < w; i++ {
			p.Set(k, pin("a"+itoa(i)), ops[k].a>>uint(i)&1 == 1)
			p.Set(k, pin("b"+itoa(i)), ops[k].b>>uint(i)&1 == 1)
		}
		p.Set(k, pin("cin"), ops[k].cin == 1)
	}
	r := s.Run(p)
	poIdx := map[string]int{}
	for i, po := range n.POs {
		poIdx[n.Gates[po].Name] = i
	}
	for k, op := range ops {
		want := op.a + op.b + op.cin
		got := 0
		for i := 0; i < w; i++ {
			if r.Get(k, poIdx["s"+itoa(i)]) {
				got |= 1 << uint(i)
			}
		}
		if r.Get(k, poIdx["cout"]) {
			got |= 1 << w
		}
		if got != want {
			t.Fatalf("pattern %d: %d+%d+%d = %d, simulator says %d", k, op.a, op.b, op.cin, want, got)
		}
	}
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return itoa(i/10) + itoa(i%10)
}

// TestMultiplierArithmetic validates the array multiplier on exhaustive 4x4.
func TestMultiplierArithmetic(t *testing.T) {
	const w = 4
	n := circuit.ArrayMultiplier(w)
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	idx := n.InputIndex()
	pin := func(name string) int {
		g, _ := n.GateByName(name)
		return idx[g.ID]
	}
	poIdx := map[string]int{}
	for i, po := range n.POs {
		poIdx[n.Gates[po].Name] = i
	}
	for a := 0; a < 1<<w; a++ {
		for b := 0; b < 1<<w; b++ {
			bits := make([]bool, len(n.PIs))
			for i := 0; i < w; i++ {
				bits[pin("a"+itoa(i))] = a>>uint(i)&1 == 1
				bits[pin("b"+itoa(i))] = b>>uint(i)&1 == 1
			}
			out := s.RunPattern(bits)
			got := 0
			for i := 0; i < 2*w; i++ {
				if out[poIdx["m"+itoa(i)]] {
					got |= 1 << uint(i)
				}
			}
			if got != a*b {
				t.Fatalf("%d*%d = %d, simulator says %d", a, b, a*b, got)
			}
		}
	}
}

// TestEventMatchesParallel cross-checks the event-driven simulator against
// the parallel simulator on random circuits and random stimulus.
func TestEventMatchesParallel(t *testing.T) {
	for _, c := range []*circuit.Netlist{
		circuit.MustC17(),
		circuit.ALUSlice(4),
		circuit.Random(12, 150, 5),
		circuit.Random(8, 60, 9),
	} {
		ps, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		es, err := NewEvent(c)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(11))
		p := logic.NewPatternSet(len(c.PIs), 256)
		p.RandFill(rng.Uint64)
		r := ps.Run(p)
		for k := 0; k < p.N; k++ {
			es.SetInputs(p.Pattern(k))
			got := es.Outputs()
			for o := range c.POs {
				if got[o] != r.Get(k, o) {
					t.Fatalf("%s pattern %d output %d: event %v, parallel %v",
						c.Name, k, o, got[o], r.Get(k, o))
				}
			}
		}
	}
}

func TestFlipInput(t *testing.T) {
	c := circuit.MustC17()
	es, err := NewEvent(c)
	if err != nil {
		t.Fatal(err)
	}
	ps, _ := New(c)
	bits := make([]bool, 5)
	es.SetInputs(bits)
	for i := 0; i < 5; i++ {
		es.FlipInput(i)
		bits[i] = !bits[i]
		want := ps.RunPattern(bits)
		got := es.Outputs()
		for o := range want {
			if got[o] != want[o] {
				t.Fatalf("after flip %d output %d mismatch", i, o)
			}
		}
	}
}

func TestActivityProfile(t *testing.T) {
	c := circuit.MustC17()
	es, err := NewEvent(c)
	if err != nil {
		t.Fatal(err)
	}
	// Alternate all-zeros / all-ones: every PI toggles each pattern after
	// the first (activity near 1).
	var pats [][]bool
	for i := 0; i < 20; i++ {
		row := make([]bool, 5)
		for j := range row {
			row[j] = i%2 == 1
		}
		pats = append(pats, row)
	}
	prof := es.ActivityProfile(pats)
	pi0 := c.PIs[0]
	if prof[pi0] < 0.9 {
		t.Errorf("PI toggle rate = %f, want ~1", prof[pi0])
	}
	for _, v := range prof {
		if v < 0 || v > 1.01 {
			t.Errorf("activity out of range: %f", v)
		}
	}
}

// Property: simulating the same pattern twice yields identical outputs, and
// the event simulator is insensitive to the order patterns were applied
// previously (state is fully determined by the last pattern).
func TestEventStateless(t *testing.T) {
	c := circuit.Random(10, 100, 13)
	es, err := NewEvent(c)
	if err != nil {
		t.Fatal(err)
	}
	ps, _ := New(c)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Apply a random walk of patterns, then a final probe pattern.
		for i := 0; i < 10; i++ {
			row := make([]bool, len(c.PIs))
			for j := range row {
				row[j] = rng.Intn(2) == 1
			}
			es.SetInputs(row)
		}
		probe := make([]bool, len(c.PIs))
		for j := range probe {
			probe[j] = rng.Intn(2) == 1
		}
		es.SetInputs(probe)
		want := ps.RunPattern(probe)
		got := es.Outputs()
		for o := range want {
			if got[o] != want[o] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRunPanicsOnWidthMismatch(t *testing.T) {
	c := circuit.MustC17()
	s, _ := New(c)
	defer func() {
		if recover() == nil {
			t.Error("width mismatch must panic")
		}
	}()
	s.Run(logic.NewPatternSet(3, 10))
}

func BenchmarkParallelSim(b *testing.B) {
	c := circuit.Random(32, 1200, 2)
	s, err := New(c)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	p := logic.NewPatternSet(len(c.PIs), 1024)
	p.RandFill(rng.Uint64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(p)
	}
	b.ReportMetric(float64(1024), "patterns/op")
}

func BenchmarkEventSim(b *testing.B) {
	c := circuit.Random(32, 1200, 2)
	es, err := NewEvent(c)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	pats := make([][]bool, 64)
	for i := range pats {
		pats[i] = make([]bool, len(c.PIs))
		for j := range pats[i] {
			pats[i][j] = rng.Intn(2) == 1
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		es.SetInputs(pats[i%len(pats)])
	}
}
