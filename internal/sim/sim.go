// Package sim provides gate-level logic simulation over circuit netlists:
// a compiled, levelized 64-way parallel-pattern simulator (the workhorse of
// fault simulation) and a single-pattern event-driven simulator used for
// baselines and incremental evaluation. Both consume the shared immutable
// circuit.Compiled IR, so many simulator instances (one per worker
// goroutine, one per request) share a single compiled graph.
package sim

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/logic"
)

// Simulator is a compiled parallel-pattern simulator bound to one netlist.
// It reads the shared immutable IR and reuses its value buffer across
// calls, so simulating many pattern blocks performs no allocation.
type Simulator struct {
	Net *circuit.Netlist
	// C is the shared compiled IR; read-only.
	C      *circuit.Compiled
	values []logic.Word // one word (64 patterns) per gate
}

// New compiles a simulator for the netlist. The netlist must compile (it is
// validated, and unknown gate types are rejected up front). The compiled IR
// is cached on the netlist, so repeated New calls share one graph.
func New(n *circuit.Netlist) (*Simulator, error) {
	c, err := n.Compiled()
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	return NewCompiled(c), nil
}

// NewCompiled builds a simulator over an already-compiled IR. The IR is
// shared, never copied; only the per-instance value buffer is allocated, so
// per-worker simulators are cheap.
func NewCompiled(c *circuit.Compiled) *Simulator {
	return &Simulator{
		Net:    c.Net,
		C:      c,
		values: make([]logic.Word, c.NumGates()),
	}
}

// Eval computes one gate's output word from its fanin words. Gate types are
// validated at circuit.Compile time, so every type reaching a simulator is
// known; an out-of-range type (only constructible by bypassing Compile)
// evaluates to the all-zero word.
func Eval(t circuit.GateType, in []logic.Word) logic.Word {
	switch t {
	case circuit.Buf, circuit.DFF:
		return in[0]
	case circuit.Not:
		return ^in[0]
	case circuit.And, circuit.Nand:
		v := in[0]
		for _, w := range in[1:] {
			v &= w
		}
		if t == circuit.Nand {
			v = ^v
		}
		return v
	case circuit.Or, circuit.Nor:
		v := in[0]
		for _, w := range in[1:] {
			v |= w
		}
		if t == circuit.Nor {
			v = ^v
		}
		return v
	case circuit.Xor, circuit.Xnor:
		v := in[0]
		for _, w := range in[1:] {
			v ^= w
		}
		if t == circuit.Xnor {
			v = ^v
		}
		return v
	}
	return 0
}

// Block simulates one 64-pattern block. piWords[i] holds the word for
// Net.PIs[i]. After the call, Values reports every gate's word. The
// returned slice aliases internal storage valid until the next call.
func (s *Simulator) Block(piWords []logic.Word) []logic.Word {
	c := s.C
	if len(piWords) != c.NumPIs() {
		panic(fmt.Sprintf("sim: got %d PI words, want %d", len(piWords), c.NumPIs()))
	}
	var faninBuf [8]logic.Word
	for _, id32 := range c.Order {
		id := int(id32)
		t := c.Types[id]
		if t == circuit.Input || t == circuit.DFF {
			// Full-scan: DFF outputs are pseudo-PIs.
			s.values[id] = piWords[c.PIPos[id]]
			continue
		}
		in := faninBuf[:0]
		for _, f := range c.Fanin(id) {
			in = append(in, s.values[f])
		}
		s.values[id] = Eval(t, in)
	}
	return s.values
}

// Value returns gate id's word from the most recent Block call.
func (s *Simulator) Value(id int) logic.Word { return s.values[id] }

// Values returns every gate's word from the most recent Block call. The
// slice aliases internal storage valid until the next Block call; callers
// must not mutate it. Indexing it directly avoids a call per fanin in the
// fault-simulation inner loop.
func (s *Simulator) Values() []logic.Word { return s.values }

// Outputs copies the PO words from the most recent Block call into dst
// (allocated when nil) and returns it.
func (s *Simulator) Outputs(dst []logic.Word) []logic.Word {
	if dst == nil {
		dst = make([]logic.Word, len(s.Net.POs))
	}
	for i, po := range s.Net.POs {
		dst[i] = s.values[po]
	}
	return dst
}

// Response holds PO values for a full pattern set, bit-sliced like
// logic.PatternSet: Bits[po][word].
type Response struct {
	Outputs int
	N       int
	Bits    [][]logic.Word
}

// Get returns output o of pattern n.
func (r *Response) Get(n, o int) bool {
	w, b := n/logic.WordBits, uint(n%logic.WordBits)
	return r.Bits[o][w]>>b&1 == 1
}

// Run simulates the whole pattern set and returns the PO response.
func (s *Simulator) Run(p *logic.PatternSet) *Response {
	if p.Inputs != len(s.Net.PIs) {
		panic(fmt.Sprintf("sim: pattern set width %d != PIs %d", p.Inputs, len(s.Net.PIs)))
	}
	words := p.Words()
	r := &Response{Outputs: len(s.Net.POs), N: p.N}
	r.Bits = make([][]logic.Word, len(s.Net.POs))
	backing := make([]logic.Word, len(s.Net.POs)*words)
	for i := range r.Bits {
		r.Bits[i], backing = backing[:words:words], backing[words:]
	}
	pi := make([]logic.Word, len(s.Net.PIs))
	for w := 0; w < words; w++ {
		for i := range pi {
			pi[i] = p.Bits[i][w]
		}
		s.Block(pi)
		mask := p.TailMask(w)
		for o, po := range s.Net.POs {
			r.Bits[o][w] = s.values[po] & mask
		}
	}
	return r
}

// RunPattern simulates a single pattern given as bools and returns the PO
// values. Convenience wrapper for tests and examples.
func (s *Simulator) RunPattern(bits []bool) []bool {
	pi := make([]logic.Word, len(s.Net.PIs))
	for i, v := range bits {
		if v {
			pi[i] = 1
		}
	}
	s.Block(pi)
	out := make([]bool, len(s.Net.POs))
	for i, po := range s.Net.POs {
		out[i] = s.values[po]&1 == 1
	}
	return out
}
