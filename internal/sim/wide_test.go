package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/logic"
)

// Property: every lane of a Wide block equals a single-word Simulator run of
// that lane's pattern word, for every width and active-lane count — the
// strided layout cannot swap, shift or corrupt lanes. Also pins the
// staleness contract: lanes at index >= act keep their previous contents
// untouched.
func TestWideMatchesSingleWord(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := circuit.Random(4+rng.Intn(8), 30+rng.Intn(120), seed)
		c, err := circuit.Compile(n)
		if err != nil {
			return false
		}
		ref := NewCompiled(c)
		for _, w := range []int{1, 2, 4, MaxLanes} {
			ws := NewWideCompiled(c, w)
			pi := make([]logic.Word, len(n.PIs)*w)
			for i := range pi {
				pi[i] = logic.Word(rng.Uint64())
			}
			for act := 1; act <= w; act++ {
				// Poison the stale lanes so the contract is observable.
				vals := ws.Values()
				for g := 0; g < c.NumGates(); g++ {
					for l := act; l < w; l++ {
						vals[g*w+l] = 0xdeadbeefdeadbeef
					}
				}
				got := ws.Block(pi, act)
				single := make([]logic.Word, len(n.PIs))
				for l := 0; l < act; l++ {
					for i := range n.PIs {
						single[i] = pi[i*w+l]
					}
					want := ref.Block(single)
					for g := 0; g < c.NumGates(); g++ {
						if got[g*w+l] != want[g] {
							return false
						}
					}
				}
				for g := 0; g < c.NumGates(); g++ {
					for l := act; l < w; l++ {
						if got[g*w+l] != 0xdeadbeefdeadbeef {
							return false // stale lane was written
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Property: EvalLanes agrees with Eval lane by lane for every gate type and
// fanin count the compiler admits.
func TestEvalLanesMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	types := []circuit.GateType{
		circuit.Buf, circuit.Not, circuit.And, circuit.Nand,
		circuit.Or, circuit.Nor, circuit.Xor, circuit.Xnor,
	}
	for _, gt := range types {
		maxN := 4
		if gt == circuit.Buf || gt == circuit.Not {
			maxN = 1
		} else if gt == circuit.Xor || gt == circuit.Xnor {
			maxN = 2
		}
		for n := 1; n <= maxN; n++ {
			if (gt == circuit.Xor || gt == circuit.Xnor) && n < 2 {
				continue
			}
			for act := 1; act <= MaxLanes; act++ {
				in := make([]logic.Word, n*act)
				for i := range in {
					in[i] = logic.Word(rng.Uint64())
				}
				out := make([]logic.Word, act)
				EvalLanes(gt, in, n, act, out)
				lane := make([]logic.Word, n)
				for l := 0; l < act; l++ {
					for p := 0; p < n; p++ {
						lane[p] = in[p*act+l]
					}
					if want := Eval(gt, lane); out[l] != want {
						t.Fatalf("%v n=%d act=%d lane %d: %x != %x", gt, n, act, l, out[l], want)
					}
				}
			}
		}
	}
}
