package sim

import (
	"testing"

	"repro/internal/circuit"
)

// scanCircuit builds a tiny sequential netlist: q = DFF(d), y = AND(q, b),
// d = OR(a, q). Under full scan, q is a pseudo-PI and d a pseudo-PO.
func scanCircuit(t *testing.T) *circuit.Netlist {
	t.Helper()
	src := `
INPUT(a)
INPUT(b)
OUTPUT(y)
OUTPUT(d)
q = DFF(d)
d = OR(a, q)
y = AND(q, b)
`
	n, err := circuit.ParseBenchString(src, "scan")
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestDFFIsPseudoPI(t *testing.T) {
	n := scanCircuit(t)
	// PIs must be a, b, q (the DFF output).
	if len(n.PIs) != 3 {
		t.Fatalf("PIs = %d, want 3 (a, b and scan cell q)", len(n.PIs))
	}
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	idx := n.InputIndex()
	pin := func(name string) int {
		g, ok := n.GateByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		return idx[g.ID]
	}
	poIdx := map[string]int{}
	for i, po := range n.POs {
		poIdx[n.Gates[po].Name] = i
	}
	// Scan in q=1, a=0, b=1: y = q&b = 1, d = a|q = 1.
	bits := make([]bool, 3)
	bits[pin("q")] = true
	bits[pin("b")] = true
	out := s.RunPattern(bits)
	if !out[poIdx["y"]] || !out[poIdx["d"]] {
		t.Errorf("scan state not honored: y=%v d=%v", out[poIdx["y"]], out[poIdx["d"]])
	}
	// q=0: y must fall regardless of b, d follows a.
	bits[pin("q")] = false
	out = s.RunPattern(bits)
	if out[poIdx["y"]] || out[poIdx["d"]] {
		t.Errorf("cleared scan cell leaked: y=%v d=%v", out[poIdx["y"]], out[poIdx["d"]])
	}
}

// TestEventSimScanConsistency guards the full-scan invariant in the
// event-driven simulator: propagating a change into a DFF's D input must
// NOT overwrite the scan cell's output value mid-cycle.
func TestEventSimScanConsistency(t *testing.T) {
	n := scanCircuit(t)
	es, err := NewEvent(n)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	idx := n.InputIndex()
	pin := func(name string) int {
		g, _ := n.GateByName(name)
		return idx[g.ID]
	}
	// Set q=1 then toggle a (which drives d = OR(a,q), the DFF's fanin).
	// The event simulator must keep q at its scanned value.
	bits := make([]bool, 3)
	bits[pin("q")] = true
	es.SetInputs(bits)
	for _, a := range []bool{true, false, true} {
		bits[pin("a")] = a
		es.SetInputs(bits)
		want := ps.RunPattern(bits)
		got := es.Outputs()
		for o := range want {
			if got[o] != want[o] {
				t.Fatalf("event/parallel disagree on scan circuit (a=%v, output %d)", a, o)
			}
		}
		q, _ := n.GateByName("q")
		if !es.Value(q.ID) {
			t.Fatal("DFF output overwritten by fanin propagation")
		}
	}
}
