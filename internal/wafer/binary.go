package wafer

import (
	"fmt"

	"repro/internal/wire"
)

// Canonical binary form of an EncoderConfig (itr-model/v2 section):
//
//	u32 dim
//	u32 size
//	i64 seed
//
// Like the JSON form, this is the complete rebuild recipe — the encoder is
// deterministic in (Dim, Size, Seed), so artifacts stay kilobytes instead
// of carrying megabytes of basis vectors.

// AppendBinary appends the canonical binary encoding to b.
func (c EncoderConfig) AppendBinary(b []byte) ([]byte, error) {
	if c.Dim < 0 || c.Size < 0 {
		return nil, fmt.Errorf("wafer: cannot serialize encoder config %+v", c)
	}
	b = wire.AppendU32(b, uint32(c.Dim))
	b = wire.AppendU32(b, uint32(c.Size))
	b = wire.AppendI64(b, c.Seed)
	return b, nil
}

// UnmarshalBinary restores a config saved by AppendBinary. Parameter
// validation happens in NewEncoderFromConfig, which every loader calls to
// rebuild the encoder.
func (c *EncoderConfig) UnmarshalBinary(data []byte) error {
	d := wire.NewDec(data)
	c.Dim = int(d.U32())
	c.Size = int(d.U32())
	c.Seed = d.I64()
	if err := d.Close(); err != nil {
		return fmt.Errorf("wafer: decode encoder config: %w", err)
	}
	return nil
}
