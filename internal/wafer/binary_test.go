package wafer

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestEncoderConfigBinaryRoundTrip pins the v2 rebuild recipe: the config
// round-trips bit-identically and the rebuilt encoder produces the exact
// hypervector of the original for the same map.
func TestEncoderConfigBinaryRoundTrip(t *testing.T) {
	enc := NewEncoder(1024, 16, 77)
	cfg := enc.Config()
	data, err := cfg.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	var loaded EncoderConfig
	if err := loaded.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if loaded != cfg {
		t.Fatalf("round trip %+v, want %+v", loaded, cfg)
	}
	again, err := loaded.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("re-encode differs")
	}
	rebuilt, err := NewEncoderFromConfig(loaded)
	if err != nil {
		t.Fatal(err)
	}
	cfgGen := DefaultConfig()
	cfgGen.Size = 16
	m := Generate(Scratch, cfgGen, rand.New(rand.NewSource(3)))
	a, b := enc.Encode(m), rebuilt.Encode(m)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rebuilt encoder differs at word %d", i)
		}
	}
}

func TestEncoderConfigBinaryValidation(t *testing.T) {
	data, err := EncoderConfig{Dim: 512, Size: 8, Seed: -1}.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut++ {
		if err := new(EncoderConfig).UnmarshalBinary(data[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if err := new(EncoderConfig).UnmarshalBinary(append(data, 0)); err == nil {
		t.Error("trailing byte accepted")
	}
}
