// Package wafer synthesizes wafer-map defect patterns matching the
// canonical classes of the WM-811K industrial dataset (Center, Donut,
// Edge-Loc, Edge-Ring, Loc, Scratch, Random, Near-Full, None) and converts
// maps into classical feature vectors and hyperdimensional encodings. It is
// the data substrate of the wafer-classification experiments (T3/F1/F5):
// the industrial dataset itself is proprietary-adjacent, so a parametric
// generator with the same label space and spatial statistics stands in.
package wafer

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/hdc"
)

// Class labels the defect pattern family.
type Class int

// Defect pattern classes (the WM-811K label space).
const (
	None Class = iota
	Center
	Donut
	EdgeLoc
	EdgeRing
	Loc
	Scratch
	Random
	NearFull
	NumClasses
)

var classNames = [...]string{
	"None", "Center", "Donut", "Edge-Loc", "Edge-Ring",
	"Loc", "Scratch", "Random", "Near-Full",
}

// String returns the canonical class name.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Die states on the map.
const (
	OffDie uint8 = iota
	Pass
	Fail
)

// Map is a square wafer map; dies outside the circular wafer are OffDie.
type Map struct {
	Size  int
	Cells []uint8
	Label Class
	// IsMixed marks maps carrying a second superposed pattern (MixedWith).
	IsMixed   bool
	MixedWith Class
}

// At returns the state of die (row, col).
func (m *Map) At(r, c int) uint8 { return m.Cells[r*m.Size+c] }

func (m *Map) set(r, c int, v uint8) { m.Cells[r*m.Size+c] = v }

// FailFraction returns failing dies / on-wafer dies.
func (m *Map) FailFraction() float64 {
	fail, on := 0, 0
	for _, v := range m.Cells {
		if v != OffDie {
			on++
			if v == Fail {
				fail++
			}
		}
	}
	if on == 0 {
		return 0
	}
	return float64(fail) / float64(on)
}

// Config controls map synthesis.
type Config struct {
	Size     int     // grid edge (default 64)
	Noise    float64 // background random-fail probability (default 0.01)
	PatternP float64 // probability a pattern die actually fails (default 0.85)
}

// DefaultConfig returns the standard generation parameters.
func DefaultConfig() Config { return Config{Size: 64, Noise: 0.01, PatternP: 0.85} }

// Generate synthesizes one wafer map of the given class.
func Generate(class Class, cfg Config, rng *rand.Rand) *Map {
	if cfg.Size == 0 {
		cfg = DefaultConfig()
	}
	n := cfg.Size
	m := &Map{Size: n, Cells: make([]uint8, n*n), Label: class}
	cx := float64(n-1) / 2
	radius := float64(n)/2 - 0.5

	// Wafer disc with background noise.
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			dx, dy := float64(c)-cx, float64(r)-cx
			if math.Hypot(dx, dy) > radius {
				continue // off-die
			}
			if rng.Float64() < cfg.Noise {
				m.set(r, c, Fail)
			} else {
				m.set(r, c, Pass)
			}
		}
	}

	inPattern := patternPredicate(class, radius, rng)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if m.At(r, c) == OffDie {
				continue
			}
			dx, dy := float64(c)-cx, float64(r)-cx
			if inPattern(dx, dy) && rng.Float64() < cfg.PatternP {
				m.set(r, c, Fail)
			}
		}
	}
	return m
}

// patternPredicate returns a membership test over die coordinates relative
// to the wafer center.
func patternPredicate(class Class, radius float64, rng *rand.Rand) func(dx, dy float64) bool {
	switch class {
	case None:
		return func(dx, dy float64) bool { return false }
	case Center:
		rr := radius * (0.25 + rng.Float64()*0.15)
		return func(dx, dy float64) bool { return math.Hypot(dx, dy) < rr }
	case Donut:
		inner := radius * (0.30 + rng.Float64()*0.10)
		outer := inner + radius*(0.20+rng.Float64()*0.10)
		return func(dx, dy float64) bool {
			d := math.Hypot(dx, dy)
			return d >= inner && d <= outer
		}
	case EdgeLoc:
		band := radius * 0.82
		center := rng.Float64() * 2 * math.Pi
		width := math.Pi/6 + rng.Float64()*math.Pi/6 // 30..60 degrees
		return func(dx, dy float64) bool {
			if math.Hypot(dx, dy) < band {
				return false
			}
			ang := math.Atan2(dy, dx)
			diff := math.Abs(angleDiff(ang, center))
			return diff < width
		}
	case EdgeRing:
		band := radius * (0.85 + rng.Float64()*0.05)
		return func(dx, dy float64) bool { return math.Hypot(dx, dy) >= band }
	case Loc:
		// Blob at a random interior position.
		ang := rng.Float64() * 2 * math.Pi
		dist := radius * (0.2 + rng.Float64()*0.4)
		bx, by := dist*math.Cos(ang), dist*math.Sin(ang)
		rr := radius * (0.12 + rng.Float64()*0.10)
		return func(dx, dy float64) bool { return math.Hypot(dx-bx, dy-by) < rr }
	case Scratch:
		// Line through a random chord: |distance to line| < thickness.
		theta := rng.Float64() * math.Pi
		offset := (rng.Float64()*1.2 - 0.6) * radius
		nx, ny := math.Cos(theta), math.Sin(theta)
		thick := 0.8 + rng.Float64()*0.8
		return func(dx, dy float64) bool {
			return math.Abs(dx*nx+dy*ny-offset) < thick
		}
	case Random:
		p := 0.20 + rng.Float64()*0.10
		return func(dx, dy float64) bool { return rng.Float64() < p }
	case NearFull:
		return func(dx, dy float64) bool { return rng.Float64() < 0.95 }
	}
	panic(fmt.Sprintf("wafer: unknown class %d", class))
}

func angleDiff(a, b float64) float64 {
	d := math.Mod(a-b+3*math.Pi, 2*math.Pi) - math.Pi
	return d
}

// GenerateMixed superposes two defect patterns on one wafer — the
// mixed-type maps of the modern WM-811K follow-up work. The returned map
// carries classA as its label; MixedWith records the second pattern.
func GenerateMixed(classA, classB Class, cfg Config, rng *rand.Rand) *Map {
	if cfg.Size == 0 {
		cfg = DefaultConfig()
	}
	m := Generate(classA, cfg, rng)
	radius := float64(cfg.Size)/2 - 0.5
	inB := patternPredicate(classB, radius, rng)
	cx := float64(cfg.Size-1) / 2
	for r := 0; r < cfg.Size; r++ {
		for c := 0; c < cfg.Size; c++ {
			if m.At(r, c) == OffDie {
				continue
			}
			dx, dy := float64(c)-cx, float64(r)-cx
			if inB(dx, dy) && rng.Float64() < cfg.PatternP {
				m.set(r, c, Fail)
			}
		}
	}
	m.MixedWith = classB
	m.IsMixed = true
	return m
}

// Dataset is a labeled collection of wafer maps.
type Dataset struct {
	Maps   []*Map
	Labels []int
}

// GenerateDataset creates nPerClass maps for every class, deterministically
// from the seed, interleaved so positional splits stay stratified.
func GenerateDataset(nPerClass int, cfg Config, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{}
	for i := 0; i < nPerClass; i++ {
		for c := Class(0); c < NumClasses; c++ {
			d.Maps = append(d.Maps, Generate(c, cfg, rng))
			d.Labels = append(d.Labels, int(c))
		}
	}
	return d
}

// NumFeatures is the classical feature-vector length produced by Features.
const NumFeatures = 16 + 6 + 8 + 2

// Features converts a map into the classical feature vector used by the
// baseline ML classifiers: a 4×4 zonal fail-density grid, 6 radial-ring
// densities, 8 angular-sector densities, the total fail fraction and a
// fail-cluster elongation measure.
func Features(m *Map) []float64 {
	n := m.Size
	cx := float64(n-1) / 2
	radius := float64(n)/2 - 0.5
	f := make([]float64, NumFeatures)
	zoneFail := make([]float64, 16)
	zoneTot := make([]float64, 16)
	ringFail := make([]float64, 6)
	ringTot := make([]float64, 6)
	secFail := make([]float64, 8)
	secTot := make([]float64, 8)
	var sumX, sumY, sumXX, sumYY, sumXY, fails, tot float64
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			v := m.At(r, c)
			if v == OffDie {
				continue
			}
			tot++
			dx, dy := float64(c)-cx, float64(r)-cx
			zi := (r*4/n)*4 + (c * 4 / n)
			ri := int(math.Hypot(dx, dy) / radius * 6)
			if ri > 5 {
				ri = 5
			}
			si := int((math.Atan2(dy, dx) + math.Pi) / (2 * math.Pi) * 8)
			if si > 7 {
				si = 7
			}
			zoneTot[zi]++
			ringTot[ri]++
			secTot[si]++
			if v == Fail {
				fails++
				zoneFail[zi]++
				ringFail[ri]++
				secFail[si]++
				sumX += dx
				sumY += dy
				sumXX += dx * dx
				sumYY += dy * dy
				sumXY += dx * dy
			}
		}
	}
	k := 0
	for i := 0; i < 16; i++ {
		if zoneTot[i] > 0 {
			f[k] = zoneFail[i] / zoneTot[i]
		}
		k++
	}
	for i := 0; i < 6; i++ {
		if ringTot[i] > 0 {
			f[k] = ringFail[i] / ringTot[i]
		}
		k++
	}
	for i := 0; i < 8; i++ {
		if secTot[i] > 0 {
			f[k] = secFail[i] / secTot[i]
		}
		k++
	}
	if tot > 0 {
		f[k] = fails / tot
	}
	k++
	// Elongation: ratio of principal second moments of the fail cloud
	// (high for scratches, ~1 for blobs/rings).
	if fails > 2 {
		mx, my := sumX/fails, sumY/fails
		cxx := sumXX/fails - mx*mx
		cyy := sumYY/fails - my*my
		cxy := sumXY/fails - mx*my
		tr, det := cxx+cyy, cxx*cyy-cxy*cxy
		disc := math.Sqrt(math.Max(tr*tr/4-det, 0))
		l1, l2 := tr/2+disc, tr/2-disc
		if l2 > 1e-9 {
			f[k] = math.Min(l1/l2, 100) / 100
		} else {
			f[k] = 1
		}
	}
	return f
}

// FeatureMatrix applies Features to every map.
func (d *Dataset) FeatureMatrix() [][]float64 {
	X := make([][]float64, len(d.Maps))
	for i, m := range d.Maps {
		X[i] = Features(m)
	}
	return X
}

// Encoder turns wafer maps into hypervectors with the holistic-record
// scheme: every on-wafer die contributes bind(rowLevel, colLevel, state),
// where state is a random marker for Pass or Fail; the map encoding is the
// majority bundle. Encoding pass dies as well retains fail-density
// information (distinguishing e.g. Random from Near-Full) and keeps
// defect-free maps meaningful.
type Encoder struct {
	Dim      int
	size     int
	seed     int64
	rows     *hdc.Levels
	cols     *hdc.Levels
	failMark hdc.HV
	passMark hdc.HV
	passVecs []hdc.HV // per (r,c): bind(rowLevel, colLevel, passMark)
	failVecs []hdc.HV // per (r,c): bind(rowLevel, colLevel, failMark)
	// Delta-encoding cache: the bundle of all-pass votes over one on-die
	// mask. Regenerated whenever a map with a different mask arrives; all
	// maps of one grid size share the wafer disc, so this hits every time.
	// Guarded by mu so concurrent Encode calls (the serving hot path) stay
	// safe; a cached bundle is never mutated after publication — refreshes
	// install a freshly built replacement.
	mu       sync.RWMutex
	baseMask []bool
	base     *hdc.Bundler
}

// failWeight is the vote weight of a failing die relative to a passing
// die: fails carry the pattern signal and must not be drowned out by the
// pass background (tuned on held-out data).
const failWeight = 8

// NewEncoder builds an encoder for size×size maps. Position vectors for
// every die are precomputed so per-map encoding only touches failing dies.
func NewEncoder(dim, size int, seed int64) *Encoder {
	marks := hdc.NewItemMemory(dim, seed+2)
	e := &Encoder{
		Dim:      dim,
		size:     size,
		seed:     seed,
		rows:     hdc.NewLevels(dim, size, 0, float64(size), seed),
		cols:     hdc.NewLevels(dim, size, 0, float64(size), seed+1),
		failMark: marks.Get(0),
		passMark: marks.Get(1),
	}
	e.passVecs = make([]hdc.HV, size*size)
	e.failVecs = make([]hdc.HV, size*size)
	for r := 0; r < size; r++ {
		for c := 0; c < size; c++ {
			pos := e.rows.VecAt(r).Xor(e.cols.VecAt(c))
			e.passVecs[r*size+c] = pos.Xor(e.passMark)
			e.failVecs[r*size+c] = pos.Xor(e.failMark)
		}
	}
	return e
}

// Encode returns the map's hypervector. The map must match the encoder's
// grid size. Encode is safe for concurrent use: the shared base-bundle
// cache is lock-protected and every call works on its own clone.
func (e *Encoder) Encode(m *Map) hdc.HV {
	if m.Size != e.size {
		panic(fmt.Sprintf("wafer: encoder built for size %d, map has %d", e.size, m.Size))
	}
	base := e.baseFor(m)
	if base.N() == 0 {
		return hdc.NewHV(e.Dim) // fully off-die map: zero vector
	}
	// Delta from the all-pass base: swap each failing die's pass vote for
	// a weighted fail vote.
	b := base.Clone()
	for i, v := range m.Cells {
		if v == Fail {
			b.AddWeighted(e.passVecs[i], -1)
			b.AddWeighted(e.failVecs[i], failWeight)
		}
	}
	return b.Binarize()
}

// baseFor returns the all-pass base bundle for the map's on-die mask,
// refreshing the cache when the mask changes. The returned bundle is
// immutable once published, so callers may clone it outside the lock.
func (e *Encoder) baseFor(m *Map) *hdc.Bundler {
	e.mu.RLock()
	if e.maskMatches(m) {
		b := e.base
		e.mu.RUnlock()
		return b
	}
	e.mu.RUnlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.maskMatches(m) { // refreshed by a concurrent caller
		return e.base
	}
	mask := make([]bool, len(m.Cells))
	base := hdc.NewBundler(e.Dim)
	for i, v := range m.Cells {
		if v != OffDie {
			mask[i] = true
			base.Add(e.passVecs[i])
		}
	}
	e.baseMask, e.base = mask, base
	return base
}

func (e *Encoder) maskMatches(m *Map) bool {
	if e.baseMask == nil || len(e.baseMask) != len(m.Cells) {
		return false
	}
	for i, v := range m.Cells {
		if e.baseMask[i] != (v != OffDie) {
			return false
		}
	}
	return true
}

// EncodeAll encodes every map in the dataset.
func (e *Encoder) EncodeAll(d *Dataset) []hdc.HV {
	out := make([]hdc.HV, len(d.Maps))
	for i, m := range d.Maps {
		out[i] = e.Encode(m)
	}
	return out
}
