package wafer

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/hdc"
	"repro/internal/ml"
)

func rng() *rand.Rand { return rand.New(rand.NewSource(1)) }

func TestGenerateShape(t *testing.T) {
	m := Generate(Center, DefaultConfig(), rng())
	if m.Size != 64 || len(m.Cells) != 64*64 {
		t.Fatalf("map shape %d/%d", m.Size, len(m.Cells))
	}
	// Corners are off-die, center is on-die.
	if m.At(0, 0) != OffDie || m.At(63, 63) != OffDie {
		t.Error("corners must be off-die")
	}
	if m.At(32, 32) == OffDie {
		t.Error("center must be on-die")
	}
	if m.Label != Center {
		t.Error("label not recorded")
	}
}

func TestClassFailFractions(t *testing.T) {
	r := rng()
	cfg := DefaultConfig()
	frac := func(c Class) float64 {
		s := 0.0
		for i := 0; i < 5; i++ {
			s += Generate(c, cfg, r).FailFraction()
		}
		return s / 5
	}
	if f := frac(None); f > 0.05 {
		t.Errorf("None fail fraction = %f", f)
	}
	if f := frac(NearFull); f < 0.7 {
		t.Errorf("NearFull fail fraction = %f", f)
	}
	fNone, fCenter, fRandom := frac(None), frac(Center), frac(Random)
	if !(fNone < fCenter && fCenter < fRandom+0.3) {
		t.Errorf("implausible ordering: none %f center %f random %f", fNone, fCenter, fRandom)
	}
}

func TestCenterPatternIsCentral(t *testing.T) {
	r := rng()
	m := Generate(Center, DefaultConfig(), r)
	n := m.Size
	cx := float64(n-1) / 2
	radius := float64(n)/2 - 0.5
	var inFail, inTot, outFail, outTot float64
	for row := 0; row < n; row++ {
		for col := 0; col < n; col++ {
			v := m.At(row, col)
			if v == OffDie {
				continue
			}
			d := math.Hypot(float64(col)-cx, float64(row)-cx)
			if d < 0.2*radius {
				inTot++
				if v == Fail {
					inFail++
				}
			} else if d > 0.6*radius {
				outTot++
				if v == Fail {
					outFail++
				}
			}
		}
	}
	if inFail/inTot < 5*(outFail/outTot+0.01) {
		t.Errorf("center density %f not concentrated vs edge %f", inFail/inTot, outFail/outTot)
	}
}

func TestEdgeRingPattern(t *testing.T) {
	r := rng()
	m := Generate(EdgeRing, DefaultConfig(), r)
	n := m.Size
	cx := float64(n-1) / 2
	radius := float64(n)/2 - 0.5
	var edgeFail, edgeTot, midFail, midTot float64
	for row := 0; row < n; row++ {
		for col := 0; col < n; col++ {
			v := m.At(row, col)
			if v == OffDie {
				continue
			}
			d := math.Hypot(float64(col)-cx, float64(row)-cx)
			if d > 0.92*radius {
				edgeTot++
				if v == Fail {
					edgeFail++
				}
			} else if d < 0.5*radius {
				midTot++
				if v == Fail {
					midFail++
				}
			}
		}
	}
	if edgeFail/edgeTot < 0.5 {
		t.Errorf("edge ring density = %f", edgeFail/edgeTot)
	}
	if midFail/midTot > 0.1 {
		t.Errorf("interior density = %f for edge-ring", midFail/midTot)
	}
}

func TestGenerateDatasetStratified(t *testing.T) {
	d := GenerateDataset(5, DefaultConfig(), 3)
	if len(d.Maps) != 5*int(NumClasses) {
		t.Fatalf("dataset size %d", len(d.Maps))
	}
	counts := map[int]int{}
	for _, l := range d.Labels {
		counts[l]++
	}
	for c := 0; c < int(NumClasses); c++ {
		if counts[c] != 5 {
			t.Errorf("class %d count %d", c, counts[c])
		}
	}
	// First NumClasses samples contain all classes (interleaved).
	seen := map[int]bool{}
	for i := 0; i < int(NumClasses); i++ {
		seen[d.Labels[i]] = true
	}
	if len(seen) != int(NumClasses) {
		t.Error("dataset not interleaved")
	}
}

func TestFeaturesShapeAndRange(t *testing.T) {
	r := rng()
	for c := Class(0); c < NumClasses; c++ {
		f := Features(Generate(c, DefaultConfig(), r))
		if len(f) != NumFeatures {
			t.Fatalf("feature length %d", len(f))
		}
		for i, v := range f {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1.0001 {
				t.Errorf("class %v feature %d out of range: %f", c, i, v)
			}
		}
	}
}

func TestScratchElongationHigh(t *testing.T) {
	r := rng()
	elong := func(c Class) float64 {
		s := 0.0
		for i := 0; i < 10; i++ {
			f := Features(Generate(c, DefaultConfig(), r))
			s += f[NumFeatures-1]
		}
		return s / 10
	}
	if es, ec := elong(Scratch), elong(Center); es <= ec {
		t.Errorf("scratch elongation %f not above center %f", es, ec)
	}
}

func TestFeaturesSeparateClassesLinearly(t *testing.T) {
	// A forest on the classical features must beat chance by a wide margin —
	// guards against degenerate feature extraction.
	d := GenerateDataset(30, DefaultConfig(), 7)
	X := d.FeatureMatrix()
	train := &ml.Dataset{X: X, Labels: d.Labels}
	train.Shuffle(1)
	tr, te := train.Split(0.3)
	f := ml.NewForestClassifier(30, 10, 1)
	if err := f.Fit(tr.X, tr.Labels); err != nil {
		t.Fatal(err)
	}
	acc := ml.Accuracy(te.Labels, ml.ClassifyAll(f, te.X))
	if acc < 0.7 {
		t.Errorf("forest on wafer features accuracy = %f", acc)
	}
}

func TestEncoderDiscriminates(t *testing.T) {
	// Mean within-class Hamming distance must fall below the mean
	// cross-class distance over a sample of maps (individual pairs can
	// overlap because pattern parameters are themselves random).
	r := rng()
	enc := NewEncoder(2048, 64, 9)
	classes := []Class{Center, EdgeRing, Scratch, NearFull}
	const perClass = 6
	var vecs []hdc.HV
	var labels []Class
	for _, c := range classes {
		for i := 0; i < perClass; i++ {
			vecs = append(vecs, enc.Encode(Generate(c, DefaultConfig(), r)))
			labels = append(labels, c)
		}
	}
	var same, cross, ns, nc float64
	for i := 0; i < len(vecs); i++ {
		for j := i + 1; j < len(vecs); j++ {
			d := float64(vecs[i].Hamming(vecs[j]))
			if labels[i] == labels[j] {
				same += d
				ns++
			} else {
				cross += d
				nc++
			}
		}
	}
	if same/ns >= cross/nc {
		t.Errorf("mean same-class distance %.0f not below cross-class %.0f", same/ns, cross/nc)
	}
}

func TestEncodeEmptyMap(t *testing.T) {
	enc := NewEncoder(512, 8, 1)
	m := &Map{Size: 8, Cells: make([]uint8, 64)} // all off-die
	h := enc.Encode(m)
	if h.Popcount() != 0 {
		t.Error("empty map must encode to zero vector")
	}
}

func TestClassString(t *testing.T) {
	if Center.String() != "Center" || EdgeLoc.String() != "Edge-Loc" {
		t.Error("class names wrong")
	}
	if Class(99).String() == "" {
		t.Error("unknown class must render")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	d1 := GenerateDataset(2, DefaultConfig(), 42)
	d2 := GenerateDataset(2, DefaultConfig(), 42)
	for i := range d1.Maps {
		for j := range d1.Maps[i].Cells {
			if d1.Maps[i].Cells[j] != d2.Maps[i].Cells[j] {
				t.Fatal("same-seed datasets differ")
			}
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	r := rng()
	enc := NewEncoder(2048, 64, 9)
	m := Generate(Scratch, DefaultConfig(), r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Encode(m)
	}
}

func BenchmarkFeatures(b *testing.B) {
	r := rng()
	m := Generate(Scratch, DefaultConfig(), r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Features(m)
	}
}

func TestGenerateMixed(t *testing.T) {
	r := rng()
	cfg := DefaultConfig()
	m := GenerateMixed(Center, Scratch, cfg, r)
	if !m.IsMixed || m.Label != Center || m.MixedWith != Scratch {
		t.Fatalf("mixed metadata: %+v", m.Label)
	}
	// Mixed map must fail at least as much as a pure map of either class
	// on average (superposition adds fails).
	pureSum, mixSum := 0.0, 0.0
	for i := 0; i < 8; i++ {
		pureSum += Generate(Center, cfg, r).FailFraction()
		mixSum += GenerateMixed(Center, Scratch, cfg, r).FailFraction()
	}
	if mixSum <= pureSum {
		t.Errorf("mixed maps not denser: %.3f vs %.3f", mixSum/8, pureSum/8)
	}
}

func TestMixedMapsClassifyAsConstituent(t *testing.T) {
	// A classifier trained on pure classes, shown a mixed map, should
	// usually answer with one of the two constituents — the sanity property
	// the mixed-type literature starts from.
	cfg := DefaultConfig()
	cfg.Size = 32
	train := GenerateDataset(25, cfg, 1)
	f := ml.NewForestClassifier(40, 12, 1)
	if err := f.Fit(train.FeatureMatrix(), train.Labels); err != nil {
		t.Fatal(err)
	}
	r := rng()
	hits, total := 0, 0
	pairs := [][2]Class{{Center, Scratch}, {EdgeRing, Loc}, {Donut, Scratch}}
	for _, p := range pairs {
		for i := 0; i < 10; i++ {
			m := GenerateMixed(p[0], p[1], cfg, r)
			pred := Class(f.Predict(Features(m)))
			total++
			if pred == p[0] || pred == p[1] {
				hits++
			}
		}
	}
	if float64(hits)/float64(total) < 0.5 {
		t.Errorf("only %d/%d mixed maps classified as a constituent", hits, total)
	}
}

// TestEncodeConcurrent hammers one encoder from 8 goroutines under the
// race detector: Encode is documented safe for concurrent use (the serving
// hot path encodes maps of many simultaneous requests), and concurrent
// results must stay bit-identical to serial ones.
func TestEncodeConcurrent(t *testing.T) {
	cfg := Config{Size: 24, Noise: 0.02, PatternP: 0.85}
	ds := GenerateDataset(3, cfg, 9)
	enc := NewEncoder(1024, cfg.Size, 9)
	want := enc.EncodeAll(ds) // also warms the base-bundle cache path

	// A fresh encoder exercises the concurrent cache fill too.
	cold := NewEncoder(1024, cfg.Size, 9)
	var wg sync.WaitGroup
	mismatch := make(chan string, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, m := range ds.Maps {
				got := cold.Encode(m)
				for w := range got {
					if got[w] != want[i][w] {
						select {
						case mismatch <- "concurrent Encode diverged from serial":
						default:
						}
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(mismatch)
	for m := range mismatch {
		t.Error(m)
	}
}

// TestEncoderConfigRebuild pins the deterministic-rebuild contract used by
// model artifacts: an encoder rebuilt from its Config encodes every map
// bit-identically.
func TestEncoderConfigRebuild(t *testing.T) {
	cfg := Config{Size: 16, Noise: 0.02, PatternP: 0.85}
	ds := GenerateDataset(2, cfg, 4)
	orig := NewEncoder(512, cfg.Size, 77)
	rebuilt, err := NewEncoderFromConfig(orig.Config())
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range ds.Maps {
		a, b := orig.Encode(m), rebuilt.Encode(m)
		for w := range a {
			if a[w] != b[w] {
				t.Fatalf("map %d: rebuilt encoder diverges at word %d", i, w)
			}
		}
	}
	if _, err := NewEncoderFromConfig(EncoderConfig{Dim: 8, Size: 16}); err == nil {
		t.Error("tiny dim must be rejected")
	}
	if _, err := NewEncoderFromConfig(EncoderConfig{Dim: 512, Size: 1}); err == nil {
		t.Error("tiny grid must be rejected")
	}
}
