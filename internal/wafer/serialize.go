package wafer

import "fmt"

// EncoderConfig is the serializable description of an Encoder. The encoder
// is fully deterministic in (Dim, Size, Seed) — all position and marker
// hypervectors are regenerated from the seed — so trained-model artifacts
// store only this config instead of megabytes of basis vectors, and a
// rebuilt encoder is bit-identical to the one used at training time.
type EncoderConfig struct {
	Dim  int   `json:"dim"`
	Size int   `json:"size"`
	Seed int64 `json:"seed"`
}

// Config returns the encoder's rebuild recipe.
func (e *Encoder) Config() EncoderConfig {
	return EncoderConfig{Dim: e.Dim, Size: e.size, Seed: e.seed}
}

// NewEncoderFromConfig deterministically rebuilds an encoder from a saved
// config, validating the parameters first.
func NewEncoderFromConfig(c EncoderConfig) (*Encoder, error) {
	if c.Dim < 64 {
		return nil, fmt.Errorf("wafer: encoder dim %d too small (need >= 64)", c.Dim)
	}
	if c.Size < 2 {
		return nil, fmt.Errorf("wafer: encoder grid size %d too small (need >= 2)", c.Size)
	}
	return NewEncoder(c.Dim, c.Size, c.Seed), nil
}
