package parallel

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 137
		hits := make([]int32, n)
		err := For(workers, n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestForEmptyAndSmall(t *testing.T) {
	if err := For(4, 0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
	ran := 0
	if err := For(8, 1, func(i int) error { ran++; return nil }); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("ran = %d", ran)
	}
}

func TestForErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	err := For(4, 100, func(i int) error {
		if i == 42 {
			return fmt.Errorf("item %d: %w", i, boom)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestForSerialReturnsFirstError(t *testing.T) {
	err := For(1, 10, func(i int) error {
		if i >= 3 {
			return fmt.Errorf("item %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "item 3" {
		t.Fatalf("err = %v", err)
	}
}

func TestForWorkerIDsInRange(t *testing.T) {
	workers := 4
	var bad atomic.Int32
	err := ForWorker(workers, 200, func(w, i int) error {
		if w < 0 || w >= workers {
			bad.Store(1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad.Load() != 0 {
		t.Error("worker id out of range")
	}
}

// TestForWorkerScratchIsolation exercises the per-worker scratch pattern
// under the race detector: each worker owns one slot, items only touch
// their worker's slot.
func TestForWorkerScratchIsolation(t *testing.T) {
	workers := runtime.GOMAXPROCS(0) + 2
	scratch := make([][]int, workers)
	err := ForWorker(workers, 500, func(w, i int) error {
		scratch[w] = append(scratch[w], i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range scratch {
		total += len(s)
	}
	if total != 500 {
		t.Fatalf("items seen = %d", total)
	}
}

func TestSplitSeedDeterministicAndDistinct(t *testing.T) {
	seen := map[int64]int64{}
	for i := int64(0); i < 10000; i++ {
		s := SplitSeed(12345, i)
		if s2 := SplitSeed(12345, i); s2 != s {
			t.Fatalf("SplitSeed not deterministic at %d", i)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision: streams %d and %d", prev, i)
		}
		seen[s] = i
	}
	if SplitSeed(1, 0) == SplitSeed(2, 0) {
		t.Error("different base seeds must split differently")
	}
}

// TestSplitSeedStreamsLookRandom is a crude independence check: the mean of
// the first normal draw across split streams must be near zero (sequential
// seeds into rand.NewSource would be fine too, but this guards against a
// degenerate splitter).
func TestSplitSeedStreamsLookRandom(t *testing.T) {
	n := 2000
	sum := 0.0
	for i := 0; i < n; i++ {
		rng := rand.New(rand.NewSource(SplitSeed(7, int64(i))))
		sum += rng.NormFloat64()
	}
	mean := sum / float64(n)
	if mean < -0.1 || mean > 0.1 {
		t.Errorf("first-draw mean across streams = %f", mean)
	}
}

func TestSeeds(t *testing.T) {
	s := Seeds(99, 16)
	if len(s) != 16 {
		t.Fatalf("len = %d", len(s))
	}
	for i := range s {
		if s[i] != SplitSeed(99, int64(i)) {
			t.Errorf("Seeds[%d] mismatch", i)
		}
	}
}

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Error("explicit count not honoured")
	}
	if Workers(0) != runtime.GOMAXPROCS(0) || Workers(-1) != runtime.GOMAXPROCS(0) {
		t.Error("non-positive must select GOMAXPROCS")
	}
}
