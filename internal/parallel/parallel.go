// Package parallel is the shared worker-pool substrate for every fan-out
// hot path in the repository (library characterization, Monte Carlo
// sampling, experiment execution, fault simulation). It provides bounded
// parallel iteration over an index range with first-error collection, and
// deterministic seed-splitting so randomized workloads produce bit-identical
// results regardless of the worker count.
//
// The determinism contract: work item i must depend only on i (and on a
// per-item RNG derived via SplitSeed), never on which worker runs it or in
// which order items complete. Callers that follow the contract may freely
// change the Workers knob between runs.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: values > 0 are used as given,
// anything else selects GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// For runs fn(i) for every i in [0, n) across at most workers goroutines
// (workers <= 0 selects GOMAXPROCS). Items are claimed dynamically, so
// uneven item costs balance across workers. If any calls fail, iteration
// stops early and the error from the lowest failing index that ran is
// returned; remaining unclaimed items are skipped.
func For(workers, n int, fn func(i int) error) error {
	return ForWorker(workers, n, func(_, i int) error { return fn(i) })
}

// ForWorker is For, with the worker's id (in [0, workers)) passed alongside
// the item index so callers can maintain per-worker scratch state (e.g. one
// simulator instance per worker). Worker ids must not influence results —
// only which scratch buffer is used.
func ForWorker(workers, n int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
		mu     sync.Mutex
		errIdx = n
		first  error
	)
	record := func(i int, err error) {
		mu.Lock()
		if i < errIdx {
			errIdx, first = i, err
		}
		mu.Unlock()
		failed.Store(true)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(w, i); err != nil {
					record(i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return first
}

// SplitSeed derives a statistically independent 64-bit seed for stream i
// from a base seed, using a SplitMix64-style finalizer. Adjacent base seeds
// and adjacent stream indices yield uncorrelated outputs, so per-item RNGs
// built from SplitSeed(seed, i) are independent of how items are sharded
// over workers — the foundation of the repository's reproducibility
// guarantee for parallel Monte Carlo.
func SplitSeed(seed int64, i int64) int64 {
	z := uint64(seed)*0x9e3779b97f4a7c15 + uint64(i+1)*0xd1b54a32d192ed03
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Seeds returns n seeds split from the base seed, one per stream.
func Seeds(seed int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = SplitSeed(seed, int64(i))
	}
	return out
}
