// Package diagnosis implements stuck-at fault diagnosis from tester failure
// logs: a full-response fault dictionary is matched against the observed
// failing outputs, candidates are scored by signature similarity, and an
// optional learned scorer re-ranks the candidates (the "intelligent"
// diagnosis method of the survey, experiment T5).
package diagnosis

import (
	"math"
	"sort"

	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/logic"
)

// Observation is the failure log of one defective device: the set of
// (pattern, output) coordinates at which the device response differed from
// the good-circuit response, in the same bit-sliced layout as
// fault.Signature.
type Observation struct {
	Bits [][]logic.Word // [po][word]
}

// NumFeatures is the length of the per-candidate feature vector.
const NumFeatures = 8

// Candidate is one ranked diagnosis candidate.
type Candidate struct {
	Index    int // index into the fault list
	Fault    fault.Fault
	Score    float64
	Features []float64
}

// Diagnoser matches observations against a precomputed dictionary.
type Diagnoser struct {
	Net    *circuit.Netlist
	Faults []fault.Fault
	Dict   []*fault.Signature
	scoap  *circuit.SCOAP
}

// New builds a diagnoser with the default worker count: it fault-simulates
// the pattern set to create the full-response dictionary.
func New(n *circuit.Netlist, patterns *logic.PatternSet) (*Diagnoser, error) {
	return NewWorkers(n, patterns, 0)
}

// NewWorkers is New with an explicit worker bound for the dictionary build
// (<= 0 selects GOMAXPROCS). The dictionary is word-sharded across workers
// and bit-identical for any count.
func NewWorkers(n *circuit.Netlist, patterns *logic.PatternSet, workers int) (*Diagnoser, error) {
	return NewWorkersWords(n, patterns, workers, 1)
}

// NewWorkersWords is NewWorkers with an explicit fault-simulation lane
// width (pattern words per cone walk, normalized to {1,2,4,8}). The
// dictionary is bit-identical for any worker count and width.
func NewWorkersWords(n *circuit.Netlist, patterns *logic.PatternSet, workers, words int) (*Diagnoser, error) {
	faults := fault.Universe(n)
	dict, err := fault.DictionaryConcurrentWords(n, patterns, faults, workers, words)
	if err != nil {
		return nil, err
	}
	return &Diagnoser{
		Net:    n,
		Faults: faults,
		Dict:   dict,
		scoap:  circuit.ComputeSCOAP(n),
	}, nil
}

// Observe simulates a defective device containing fault f and returns its
// failure log for the diagnoser's pattern set. noise flips each failing bit
// to passing with the given probability (tester noise / intermittence),
// using the caller's rnd function for determinism.
func Observe(n *circuit.Netlist, patterns *logic.PatternSet, f fault.Fault, noise float64, rnd func() float64) (*Observation, error) {
	fsim, err := fault.NewSimulator(n)
	if err != nil {
		return nil, err
	}
	sigs := fsim.Dictionary(patterns, []fault.Fault{f})
	obs := &Observation{Bits: sigs[0].Bits}
	if noise > 0 {
		for o := range obs.Bits {
			for w := range obs.Bits[o] {
				word := obs.Bits[o][w]
				for b := 0; b < logic.WordBits; b++ {
					if word>>uint(b)&1 == 1 && rnd() < noise {
						word &^= 1 << uint(b)
					}
				}
				obs.Bits[o][w] = word
			}
		}
	}
	return obs, nil
}

// featureVector computes similarity features between a dictionary signature
// and the observation:
//
//	0: |dict ∩ obs|        (matched failures)
//	1: |dict \ obs|        (predicted failures not observed)
//	2: |obs \ dict|        (observed failures not predicted)
//	3: Jaccard(dict, obs)
//	4: |dict|              (signature size)
//	5: |obs|               (observation size)
//	6: output-set overlap  (fraction of failing POs in common)
//	7: normalized SCOAP observability of the candidate site
func (d *Diagnoser) featureVector(sig *fault.Signature, obs *Observation, f fault.Fault) []float64 {
	var inter, onlyDict, onlyObs int
	dictPOs, obsPOs, bothPOs := 0, 0, 0
	for o := range sig.Bits {
		var dAny, oAny bool
		for w := range sig.Bits[o] {
			dw, ow := sig.Bits[o][w], obs.Bits[o][w]
			inter += logic.PopCount(dw & ow)
			onlyDict += logic.PopCount(dw &^ ow)
			onlyObs += logic.PopCount(ow &^ dw)
			dAny = dAny || dw != 0
			oAny = oAny || ow != 0
		}
		if dAny {
			dictPOs++
		}
		if oAny {
			obsPOs++
		}
		if dAny && oAny {
			bothPOs++
		}
	}
	union := inter + onlyDict + onlyObs
	jacc := 0.0
	if union > 0 {
		jacc = float64(inter) / float64(union)
	}
	poOverlap := 0.0
	if m := maxInt(dictPOs, obsPOs); m > 0 {
		poOverlap = float64(bothPOs) / float64(m)
	}
	co := float64(d.scoap.CO[f.Gate])
	coNorm := co / (co + 10)
	return []float64{
		float64(inter), float64(onlyDict), float64(onlyObs), jacc,
		float64(inter + onlyDict), float64(inter + onlyObs),
		poOverlap, coNorm,
	}
}

// Scorer maps a candidate feature vector to a matching score; higher is a
// better match. It is the hook for the learned ranker.
type Scorer interface {
	Score(features []float64) float64
}

// JaccardScorer is the classical baseline: rank purely by Jaccard
// similarity between predicted and observed failure sets, with a small
// penalty for mispredictions to break ties.
type JaccardScorer struct{}

// Score implements Scorer.
func (JaccardScorer) Score(f []float64) float64 {
	return f[3] - 1e-4*(f[1]+f[2])
}

// Diagnose ranks all dictionary faults against the observation using the
// given scorer (JaccardScorer when nil). Faults whose signature shares no
// failure with the observation are pruned unless everything would be
// pruned.
func (d *Diagnoser) Diagnose(obs *Observation, scorer Scorer) []Candidate {
	if scorer == nil {
		scorer = JaccardScorer{}
	}
	cands := make([]Candidate, 0, len(d.Faults))
	for i, f := range d.Faults {
		fv := d.featureVector(d.Dict[i], obs, f)
		if fv[0] == 0 { // no shared failures: implausible candidate
			continue
		}
		cands = append(cands, Candidate{
			Index: i, Fault: f, Score: scorer.Score(fv), Features: fv,
		})
	}
	sort.SliceStable(cands, func(a, b int) bool {
		if cands[a].Score != cands[b].Score {
			return cands[a].Score > cands[b].Score
		}
		return cands[a].Index < cands[b].Index // deterministic tie-break
	})
	return cands
}

// HitRank returns the 1-based rank of the true fault in the candidate list,
// counting score-equivalent candidates conservatively (a tie at the top
// still counts as rank within the tie group). Returns 0 when absent.
// Because structurally equivalent faults are indistinguishable by any
// response-based diagnosis, a candidate whose signature is identical to the
// true fault's counts as a hit.
func (d *Diagnoser) HitRank(cands []Candidate, trueIdx int) int {
	trueSig := d.Dict[trueIdx]
	for r, c := range cands {
		if c.Index == trueIdx || sameSignature(d.Dict[c.Index], trueSig) {
			return r + 1
		}
	}
	return 0
}

func sameSignature(a, b *fault.Signature) bool {
	if len(a.Bits) != len(b.Bits) {
		return false
	}
	for o := range a.Bits {
		for w := range a.Bits[o] {
			if a.Bits[o][w] != b.Bits[o][w] {
				return false
			}
		}
	}
	return true
}

// TrainingExample is one labeled candidate for fitting a learned scorer.
type TrainingExample struct {
	Features []float64
	Label    float64 // 1 = candidate is (equivalent to) the true fault
}

// TrainingSet generates labeled candidate examples by injecting each fault
// in sample (indices into d.Faults), observing it with the given noise, and
// emitting every surviving candidate as an example. rnd supplies
// determinism for the noise process.
func (d *Diagnoser) TrainingSet(patterns *logic.PatternSet, sample []int, noise float64, rnd func() float64) ([]TrainingExample, error) {
	var out []TrainingExample
	for _, fi := range sample {
		obs, err := Observe(d.Net, patterns, d.Faults[fi], noise, rnd)
		if err != nil {
			return nil, err
		}
		cands := d.Diagnose(obs, nil)
		trueSig := d.Dict[fi]
		for _, c := range cands {
			label := 0.0
			if c.Index == fi || sameSignature(d.Dict[c.Index], trueSig) {
				label = 1.0
			}
			out = append(out, TrainingExample{Features: c.Features, Label: label})
		}
	}
	return out, nil
}

// Accuracy summarizes a diagnosis evaluation run.
type Accuracy struct {
	Cases    int
	Top1     int
	Top5     int
	MeanRank float64
	NoCand   int // cases where the true fault never appeared
}

// Top1Rate returns the top-1 hit fraction.
func (a Accuracy) Top1Rate() float64 { return rate(a.Top1, a.Cases) }

// Top5Rate returns the top-5 hit fraction.
func (a Accuracy) Top5Rate() float64 { return rate(a.Top5, a.Cases) }

func rate(n, d int) float64 {
	if d == 0 {
		return math.NaN()
	}
	return float64(n) / float64(d)
}

// Evaluate injects each fault index in cases, diagnoses with the scorer and
// accumulates ranking accuracy.
func (d *Diagnoser) Evaluate(patterns *logic.PatternSet, cases []int, noise float64, rnd func() float64, scorer Scorer) (Accuracy, error) {
	var acc Accuracy
	totalRank := 0
	for _, fi := range cases {
		obs, err := Observe(d.Net, patterns, d.Faults[fi], noise, rnd)
		if err != nil {
			return acc, err
		}
		cands := d.Diagnose(obs, scorer)
		r := d.HitRank(cands, fi)
		acc.Cases++
		if r == 0 {
			acc.NoCand++
			continue
		}
		if r == 1 {
			acc.Top1++
		}
		if r <= 5 {
			acc.Top5++
		}
		totalRank += r
	}
	if hit := acc.Cases - acc.NoCand; hit > 0 {
		acc.MeanRank = float64(totalRank) / float64(hit)
	}
	return acc, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
