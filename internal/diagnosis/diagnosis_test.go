package diagnosis

import (
	"math/rand"
	"testing"

	"repro/internal/atpg"
	"repro/internal/circuit"
	"repro/internal/logic"
)

func testPatterns(t testing.TB, n *circuit.Netlist) *logic.PatternSet {
	t.Helper()
	res, err := atpg.Run(n, atpg.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return res.Patterns
}

func TestNoiselessDiagnosisTop1(t *testing.T) {
	n := circuit.MustC17()
	p := logic.Exhaustive(5)
	d, err := New(n, p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	// With exhaustive patterns and no noise, every detectable fault must be
	// diagnosed at rank 1 (its own signature matches exactly).
	for fi := range d.Faults {
		if d.Dict[fi].FailBits() == 0 {
			continue // undetectable: nothing to diagnose
		}
		obs, err := Observe(n, p, d.Faults[fi], 0, rng.Float64)
		if err != nil {
			t.Fatal(err)
		}
		cands := d.Diagnose(obs, nil)
		if r := d.HitRank(cands, fi); r != 1 {
			t.Errorf("fault %s: rank %d, want 1", d.Faults[fi].Name(n), r)
		}
	}
}

func TestDiagnosisWithNoise(t *testing.T) {
	n := circuit.RippleAdder(6)
	p := testPatterns(t, n)
	d, err := New(n, p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	cases := []int{}
	for fi := range d.Faults {
		if d.Dict[fi].FailBits() > 2 {
			cases = append(cases, fi)
		}
		if len(cases) == 40 {
			break
		}
	}
	acc, err := d.Evaluate(p, cases, 0.1, rng.Float64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Top5Rate() < 0.6 {
		t.Errorf("noisy top-5 rate = %.2f, expected >= 0.6", acc.Top5Rate())
	}
	if acc.Cases != len(cases) {
		t.Errorf("cases = %d, want %d", acc.Cases, len(cases))
	}
}

func TestCandidatesSortedAndPruned(t *testing.T) {
	n := circuit.MustC17()
	p := logic.Exhaustive(5)
	d, _ := New(n, p)
	rng := rand.New(rand.NewSource(3))
	obs, _ := Observe(n, p, d.Faults[0], 0, rng.Float64)
	cands := d.Diagnose(obs, nil)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	for i := 1; i < len(cands); i++ {
		if cands[i].Score > cands[i-1].Score {
			t.Fatal("candidates not sorted by score")
		}
	}
	for _, c := range cands {
		if c.Features[0] == 0 {
			t.Fatal("pruning failed: candidate with zero intersection")
		}
	}
}

func TestFeatureVectorShape(t *testing.T) {
	n := circuit.MustC17()
	p := logic.Exhaustive(5)
	d, _ := New(n, p)
	rng := rand.New(rand.NewSource(4))
	obs, _ := Observe(n, p, d.Faults[2], 0, rng.Float64)
	cands := d.Diagnose(obs, nil)
	for _, c := range cands {
		if len(c.Features) != NumFeatures {
			t.Fatalf("feature vector length %d, want %d", len(c.Features), NumFeatures)
		}
		if c.Features[3] < 0 || c.Features[3] > 1 {
			t.Fatalf("jaccard out of range: %f", c.Features[3])
		}
	}
}

func TestSelfSignatureJaccardIsOne(t *testing.T) {
	n := circuit.MustC17()
	p := logic.Exhaustive(5)
	d, _ := New(n, p)
	rng := rand.New(rand.NewSource(5))
	for fi := 0; fi < len(d.Faults); fi += 3 {
		if d.Dict[fi].FailBits() == 0 {
			continue
		}
		obs, _ := Observe(n, p, d.Faults[fi], 0, rng.Float64)
		fv := d.featureVector(d.Dict[fi], obs, d.Faults[fi])
		if fv[3] != 1.0 {
			t.Errorf("fault %d: self jaccard = %f", fi, fv[3])
		}
		if fv[1] != 0 || fv[2] != 0 {
			t.Errorf("fault %d: self mismatches (%f,%f)", fi, fv[1], fv[2])
		}
	}
}

func TestTrainingSetLabels(t *testing.T) {
	n := circuit.MustC17()
	p := logic.Exhaustive(5)
	d, _ := New(n, p)
	rng := rand.New(rand.NewSource(6))
	sample := []int{0, 1, 2, 3}
	ts, err := d.TrainingSet(p, sample, 0, rng.Float64)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) == 0 {
		t.Fatal("empty training set")
	}
	pos := 0
	for _, ex := range ts {
		if ex.Label == 1 {
			pos++
		}
		if len(ex.Features) != NumFeatures {
			t.Fatal("bad feature length in training set")
		}
	}
	if pos < len(sample) {
		t.Errorf("positive examples = %d, want >= %d", pos, len(sample))
	}
}

func TestObserveNoiseReducesFails(t *testing.T) {
	n := circuit.RippleAdder(4)
	p := testPatterns(t, n)
	d, _ := New(n, p)
	var fi int
	for i := range d.Faults {
		if d.Dict[i].FailBits() > 10 {
			fi = i
			break
		}
	}
	rng := rand.New(rand.NewSource(7))
	clean, _ := Observe(n, p, d.Faults[fi], 0, rng.Float64)
	noisy, _ := Observe(n, p, d.Faults[fi], 0.5, rng.Float64)
	cnt := func(o *Observation) int {
		c := 0
		for _, ws := range o.Bits {
			for _, w := range ws {
				c += logic.PopCount(w)
			}
		}
		return c
	}
	if cnt(noisy) >= cnt(clean) {
		t.Errorf("noise did not reduce failing bits: %d vs %d", cnt(noisy), cnt(clean))
	}
}

func TestEquivalentFaultCountsAsHit(t *testing.T) {
	// Two faults with identical signatures: diagnosis cannot distinguish
	// them, so rank must treat either as a hit.
	n := circuit.MustC17()
	p := logic.Exhaustive(5)
	d, _ := New(n, p)
	// find two distinct faults with identical signatures, if any
	for i := range d.Faults {
		for j := i + 1; j < len(d.Faults); j++ {
			if d.Dict[i].FailBits() > 0 && sameSignature(d.Dict[i], d.Dict[j]) {
				rng := rand.New(rand.NewSource(8))
				obs, _ := Observe(n, p, d.Faults[i], 0, rng.Float64)
				cands := d.Diagnose(obs, nil)
				if r := d.HitRank(cands, j); r == 0 || r > 2 {
					t.Errorf("equivalent fault rank = %d", r)
				}
				return
			}
		}
	}
	t.Skip("no equivalent fault pair in collapsed universe")
}

func BenchmarkDiagnose(b *testing.B) {
	n := circuit.ArrayMultiplier(4)
	res, err := atpg.Run(n, atpg.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	d, err := New(n, res.Patterns)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	obs, _ := Observe(n, res.Patterns, d.Faults[10], 0, rng.Float64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Diagnose(obs, nil)
	}
}
