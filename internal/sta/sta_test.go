package sta

import (
	"math"
	"sync"
	"testing"

	"repro/internal/circuit"
	"repro/internal/liberty"
	"repro/internal/spice"
)

// The characterized library is expensive; share one across tests.
var (
	libOnce sync.Once
	testLib *liberty.Library
	libErr  error
)

func lib(t testing.TB) *liberty.Library {
	t.Helper()
	libOnce.Do(func() {
		testLib, libErr = liberty.Characterize("t300", liberty.AllCells(),
			spice.Default(300), liberty.CoarseGrid())
	})
	if libErr != nil {
		t.Fatal(libErr)
	}
	return testLib
}

func TestMappingC17(t *testing.T) {
	n := circuit.MustC17()
	a, err := New(n, lib(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range n.Gates {
		if g.Type == circuit.Input {
			if a.CellName(g.ID) != "" {
				t.Errorf("PI %s mapped to %s", g.Name, a.CellName(g.ID))
			}
			continue
		}
		if a.CellName(g.ID) == "" {
			t.Errorf("gate %s unmapped", g.Name)
		}
		if a.Load(g.ID) <= 0 {
			t.Errorf("gate %s has nonpositive load", g.Name)
		}
	}
}

func TestRunC17(t *testing.T) {
	n := circuit.MustC17()
	a, err := New(n, lib(t))
	if err != nil {
		t.Fatal(err)
	}
	tm, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if tm.WCDelay <= 0 || tm.WCDelay > 1e-9 {
		t.Errorf("c17 critical delay = %g s, implausible", tm.WCDelay)
	}
	if tm.Fmax() <= 0 {
		t.Error("Fmax must be positive")
	}
	if len(tm.Path) < 2 {
		t.Fatalf("critical path too short: %d", len(tm.Path))
	}
	// Path must start at a PI and end at the critical PO.
	first := n.Gates[tm.Path[0].Gate]
	if first.Type != circuit.Input {
		t.Errorf("path starts at %s (%v)", first.Name, first.Type)
	}
	if tm.Path[len(tm.Path)-1].Gate != tm.CriticalPO {
		t.Error("path does not end at critical PO")
	}
	// Arrivals along the path must be non-decreasing and sum of step delays
	// must reproduce the endpoint arrival.
	sum := tm.Path[0].Arrival
	for i := 1; i < len(tm.Path); i++ {
		if tm.Path[i].Arrival < tm.Path[i-1].Arrival {
			t.Error("arrivals decrease along critical path")
		}
		sum += tm.Path[i].Delay
	}
	if math.Abs(sum-tm.WCDelay) > 1e-15 {
		t.Errorf("path delays sum %g != WC delay %g", sum, tm.WCDelay)
	}
}

func TestDeeperCircuitSlower(t *testing.T) {
	l := lib(t)
	a8, err := New(circuit.RippleAdder(8), l)
	if err != nil {
		t.Fatal(err)
	}
	a16, err := New(circuit.RippleAdder(16), l)
	if err != nil {
		t.Fatal(err)
	}
	t8, err := a8.Run()
	if err != nil {
		t.Fatal(err)
	}
	t16, err := a16.Run()
	if err != nil {
		t.Fatal(err)
	}
	if t16.WCDelay <= t8.WCDelay {
		t.Errorf("16-bit adder (%g) not slower than 8-bit (%g)", t16.WCDelay, t8.WCDelay)
	}
}

func TestDerateScalesDelay(t *testing.T) {
	n := circuit.RippleAdder(8)
	a, err := New(n, lib(t))
	if err != nil {
		t.Fatal(err)
	}
	base, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	a.SetUniformDerate(1.2)
	der, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Slews are unchanged by derating (only delay scales), so the total is
	// not exactly 1.2x, but must lie close.
	r := der.WCDelay / base.WCDelay
	if r < 1.15 || r > 1.25 {
		t.Errorf("uniform 1.2 derate scaled delay by %f", r)
	}
}

func TestPerGateDerateOnlyOffPathHarmless(t *testing.T) {
	n := circuit.MustC17()
	a, err := New(n, lib(t))
	if err != nil {
		t.Fatal(err)
	}
	base, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	onPath := map[int]bool{}
	for _, s := range base.Path {
		onPath[s.Gate] = true
	}
	// Derate one gate off the critical path: WC delay must not decrease and
	// should stay equal unless that gate's path overtakes.
	a.Derates = make([]float64, len(n.Gates))
	for i := range a.Derates {
		a.Derates[i] = 1
	}
	victim := -1
	for _, g := range n.Gates {
		if g.Type != circuit.Input && !onPath[g.ID] {
			victim = g.ID
			break
		}
	}
	if victim < 0 {
		t.Skip("all gates on critical path")
	}
	a.Derates[victim] = 1.01
	der, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if der.WCDelay < base.WCDelay-1e-18 {
		t.Error("derating a gate reduced critical delay")
	}
}

func TestLeakagePower(t *testing.T) {
	n := circuit.MustC17()
	a, err := New(n, lib(t))
	if err != nil {
		t.Fatal(err)
	}
	if a.LeakagePower() <= 0 {
		t.Error("leakage must be positive at 300K")
	}
}

func TestBenchmarkSuiteAnalyzable(t *testing.T) {
	l := lib(t)
	for _, c := range circuit.BenchmarkSuite() {
		a, err := New(c, l)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		tm, err := a.Run()
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if tm.WCDelay <= 0 || math.IsInf(tm.WCDelay, 0) || math.IsNaN(tm.WCDelay) {
			t.Errorf("%s: WC delay = %g", c.Name, tm.WCDelay)
		}
		// Depth consistency: delay should grow with logic depth (loose
		// sanity: at least depth * 1 ps).
		if tm.WCDelay < float64(c.Depth())*1e-13 {
			t.Errorf("%s: delay %g suspiciously small for depth %d", c.Name, tm.WCDelay, c.Depth())
		}
	}
}

func TestDriveSizingReactsToLoad(t *testing.T) {
	// A gate driving many fanouts must get a bigger drive than one driving
	// a single fanout.
	src := `
INPUT(a)
INPUT(b)
OUTPUT(y1)
OUTPUT(y2)
OUTPUT(y3)
OUTPUT(y4)
OUTPUT(y5)
OUTPUT(y6)
OUTPUT(y7)
OUTPUT(y8)
OUTPUT(z)
hub = AND(a, b)
y1 = NOT(hub)
y2 = NOT(hub)
y3 = NOT(hub)
y4 = NOT(hub)
y5 = NOT(hub)
y6 = NOT(hub)
y7 = NOT(hub)
y8 = NOT(hub)
lone = AND(a, b)
z = NOT(lone)
`
	n, err := circuit.ParseBenchString(src, "fanout")
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(n, lib(t))
	if err != nil {
		t.Fatal(err)
	}
	hub, _ := n.GateByName("hub")
	lone, _ := n.GateByName("lone")
	if a.Load(hub.ID) <= a.Load(lone.ID) {
		t.Fatal("hub load not larger")
	}
	if a.CellName(hub.ID) == a.CellName(lone.ID) {
		t.Errorf("hub %s not upsized vs lone %s (loads %g vs %g)",
			a.CellName(hub.ID), a.CellName(lone.ID), a.Load(hub.ID), a.Load(lone.ID))
	}
}

func BenchmarkSTA(b *testing.B) {
	l := lib(b)
	n := circuit.Random(32, 1200, 2)
	a, err := New(n, l)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMinDelayProperties(t *testing.T) {
	l := lib(t)
	for _, c := range []*circuit.Netlist{
		circuit.MustC17(),
		circuit.RippleAdder(8),
		circuit.ArrayMultiplier(4),
	} {
		a, err := New(c, l)
		if err != nil {
			t.Fatal(err)
		}
		tm, err := a.Run()
		if err != nil {
			t.Fatal(err)
		}
		if tm.MinDelay <= 0 {
			t.Errorf("%s: min delay = %g", c.Name, tm.MinDelay)
		}
		if tm.MinDelay > tm.WCDelay {
			t.Errorf("%s: min delay %g exceeds max %g", c.Name, tm.MinDelay, tm.WCDelay)
		}
	}
	// A circuit with one short and one long path: the short one bounds
	// MinDelay, the long one WCDelay.
	src := `
INPUT(a)
INPUT(b)
OUTPUT(fast)
OUTPUT(slow)
fast = NOT(a)
s1 = NOT(b)
s2 = NOT(s1)
s3 = NOT(s2)
s4 = NOT(s3)
slow = NOT(s4)
`
	n, err := circuit.ParseBenchString(src, "skew")
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(n, l)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if tm.WCDelay < 3*tm.MinDelay {
		t.Errorf("skewed paths not separated: min %g max %g", tm.MinDelay, tm.WCDelay)
	}
}
