// Package sta performs graph-based static timing analysis of gate-level
// netlists against a characterized liberty.Library: technology mapping with
// load-based drive selection, rise/fall arrival-time and slew propagation
// through NLDM table lookups, critical-path extraction, and per-gate derate
// hooks for aging and process-variation analysis (experiments T6/F4).
package sta

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/liberty"
)

// Analyzer binds a netlist to a library with a concrete cell mapping.
type Analyzer struct {
	Net *circuit.Netlist
	Lib *liberty.Library

	// WireCapPerFanout models routing load per fanout branch, farads.
	WireCapPerFanout float64
	// PrimaryLoad is the capacitance seen by primary outputs, farads.
	PrimaryLoad float64
	// InputSlew is the transition time applied at primary inputs, seconds.
	InputSlew float64

	// Derates holds a per-gate multiplicative delay factor (aging,
	// variation); nil or 1.0 entries mean nominal.
	Derates []float64

	c     *circuit.Compiled // shared immutable IR
	cells []*liberty.Cell   // per gate ID; nil for PIs
	loads []float64         // per gate ID: capacitive load on the gate output
}

// New maps every logic gate to a library cell (drive strength picked from
// the output load) and precomputes loads. It fails when the library lacks a
// cell for some gate type/fanin combination. The compiled IR is cached on
// the netlist and shared with every other engine bound to it.
func New(n *circuit.Netlist, lib *liberty.Library) (*Analyzer, error) {
	c, err := n.Compiled()
	if err != nil {
		return nil, fmt.Errorf("sta: %w", err)
	}
	a := &Analyzer{
		Net:              n,
		Lib:              lib,
		WireCapPerFanout: 0.2e-15,
		PrimaryLoad:      2e-15,
		InputSlew:        10e-12,
		c:                c,
		cells:            make([]*liberty.Cell, len(n.Gates)),
		loads:            make([]float64, len(n.Gates)),
	}
	// First pass with X1 cells to estimate loads, then size drives.
	base := make([]string, len(n.Gates))
	for _, g := range n.Gates {
		if g.Type == circuit.Input || g.Type == circuit.DFF {
			continue // timing startpoints: no mapped combinational cell
		}
		name, err := liberty.CellFor(g.Type, len(g.Fanin))
		if err != nil {
			return nil, fmt.Errorf("sta: gate %s: %w", g.Name, err)
		}
		base[g.ID] = name
	}
	pick := func(baseName string, load float64) (*liberty.Cell, error) {
		suffix := "_X1"
		switch {
		case load > 8e-15:
			suffix = "_X4"
		case load > 3e-15:
			suffix = "_X2"
		}
		c, ok := lib.Cell(baseName + suffix)
		if !ok {
			// Fall back to X1 when the library was characterized without
			// drive variants.
			if c, ok = lib.Cell(baseName + "_X1"); !ok {
				if c, ok = lib.Cell(baseName); !ok {
					return nil, fmt.Errorf("sta: library lacks cell %s", baseName)
				}
			}
		}
		return c, nil
	}
	// Iterate sizing twice: loads depend on chosen pin caps and vice versa.
	for iter := 0; iter < 2; iter++ {
		for _, g := range n.Gates {
			fanout := c.Fanout(g.ID)
			load := a.WireCapPerFanout * float64(len(fanout))
			for _, fo := range fanout {
				pin := faninIndex(c, int(fo), g.ID)
				if fc := a.cells[fo]; fc != nil && pin < len(fc.PinCaps) {
					load += fc.PinCaps[pin]
				} else {
					load += 0.8e-15 // pre-sizing estimate
				}
			}
			if c.POIdx[g.ID] >= 0 {
				load += a.PrimaryLoad
			}
			a.loads[g.ID] = load
			if g.Type != circuit.Input && g.Type != circuit.DFF {
				cell, err := pick(base[g.ID], load)
				if err != nil {
					return nil, err
				}
				a.cells[g.ID] = cell
			}
		}
	}
	return a, nil
}

// faninIndex returns the pin position of driver id on gate g's inputs.
func faninIndex(c *circuit.Compiled, g, id int) int {
	for i, f := range c.Fanin(g) {
		if int(f) == id {
			return i
		}
	}
	return 0
}

// CellName returns the mapped cell of a gate ("" for PIs).
func (a *Analyzer) CellName(id int) string {
	if a.cells[id] == nil {
		return ""
	}
	return a.cells[id].Name
}

// Load returns the capacitive load on gate id's output.
func (a *Analyzer) Load(id int) float64 { return a.loads[id] }

// PathStep is one gate on the critical path.
type PathStep struct {
	Gate    int
	Cell    string
	Rise    bool // output edge
	Arrival float64
	Delay   float64
}

// Timing is the result of one STA run.
type Timing struct {
	ArrivalRise []float64
	ArrivalFall []float64
	SlewRise    []float64
	SlewFall    []float64
	// WCDelay is the worst arrival over all POs and edges (critical path
	// delay).
	WCDelay float64
	// MinDelay is the earliest arrival over all POs and edges (the
	// shortest sensitizable-in-topology path, used for hold-style checks:
	// a full-scan capture is hold-safe when MinDelay exceeds the capture
	// element's hold requirement).
	MinDelay float64
	// CriticalPO and CriticalRise identify the endpoint.
	CriticalPO   int
	CriticalRise bool
	Path         []PathStep
	// TotalEnergy sums per-arc switching energy along worst arcs — a rough
	// dynamic-energy indicator (J per full activity cycle).
	TotalEnergy float64
}

// Fmax converts the critical delay to a maximum clock frequency.
func (t *Timing) Fmax() float64 {
	if t.WCDelay <= 0 {
		return math.Inf(1)
	}
	return 1 / t.WCDelay
}

type pred struct {
	gate int
	rise bool
}

// Run propagates arrivals/slews and extracts the critical path.
func (a *Analyzer) Run() (*Timing, error) {
	n := a.Net
	ng := len(n.Gates)
	res := &Timing{
		ArrivalRise: make([]float64, ng),
		ArrivalFall: make([]float64, ng),
		SlewRise:    make([]float64, ng),
		SlewFall:    make([]float64, ng),
	}
	predRise := make([]pred, ng)
	predFall := make([]pred, ng)
	minArr := make([]float64, ng) // earliest arrival, edge-merged
	for i := 0; i < ng; i++ {
		res.ArrivalRise[i] = math.Inf(-1)
		res.ArrivalFall[i] = math.Inf(-1)
		minArr[i] = math.Inf(1)
		predRise[i] = pred{gate: -1}
		predFall[i] = pred{gate: -1}
	}
	for _, pi := range n.PIs {
		res.ArrivalRise[pi], res.ArrivalFall[pi] = 0, 0
		res.SlewRise[pi], res.SlewFall[pi] = a.InputSlew, a.InputSlew
		minArr[pi] = 0
	}
	derate := func(id int) float64 {
		if a.Derates == nil || id >= len(a.Derates) || a.Derates[id] == 0 {
			return 1
		}
		return a.Derates[id]
	}
	for _, id32 := range a.c.Order {
		id := int(id32)
		if t := a.c.Types[id]; t == circuit.Input || t == circuit.DFF {
			continue
		}
		cell := a.cells[id]
		load := a.loads[id]
		d := derate(id)
		for pin, fi32 := range a.c.Fanin(id) {
			fi := int(fi32)
			for _, inRise := range []bool{true, false} {
				var inArr, inSlew float64
				if inRise {
					inArr, inSlew = res.ArrivalRise[fi], res.SlewRise[fi]
				} else {
					inArr, inSlew = res.ArrivalFall[fi], res.SlewFall[fi]
				}
				if math.IsInf(inArr, -1) {
					continue
				}
				arc, ok := cell.Arc(pin, inRise)
				if !ok {
					return nil, fmt.Errorf("sta: cell %s lacks arc pin %d inRise=%v", cell.Name, pin, inRise)
				}
				delay := arc.Delay.Lookup(inSlew, load) * d
				slew := arc.OutSlew.Lookup(inSlew, load)
				arr := inArr + delay
				if early := minArr[fi] + delay; early < minArr[id] {
					minArr[id] = early
				}
				if arc.OutRise {
					if arr > res.ArrivalRise[id] {
						res.ArrivalRise[id] = arr
						res.SlewRise[id] = slew
						predRise[id] = pred{gate: fi, rise: inRise}
					}
				} else {
					if arr > res.ArrivalFall[id] {
						res.ArrivalFall[id] = arr
						res.SlewFall[id] = slew
						predFall[id] = pred{gate: fi, rise: inRise}
					}
				}
				res.TotalEnergy += arc.Energy.Lookup(inSlew, load)
			}
		}
		// Unreached edges (possible for deeply unate structures): mirror the
		// other edge so downstream lookups stay sane.
		if math.IsInf(res.ArrivalRise[id], -1) {
			res.ArrivalRise[id] = res.ArrivalFall[id]
			res.SlewRise[id] = res.SlewFall[id]
			predRise[id] = predFall[id]
		}
		if math.IsInf(res.ArrivalFall[id], -1) {
			res.ArrivalFall[id] = res.ArrivalRise[id]
			res.SlewFall[id] = res.SlewRise[id]
			predFall[id] = predRise[id]
		}
	}
	// Worst and earliest endpoints.
	res.WCDelay = math.Inf(-1)
	res.MinDelay = math.Inf(1)
	for _, po := range n.POs {
		if res.ArrivalRise[po] > res.WCDelay {
			res.WCDelay = res.ArrivalRise[po]
			res.CriticalPO, res.CriticalRise = po, true
		}
		if res.ArrivalFall[po] > res.WCDelay {
			res.WCDelay = res.ArrivalFall[po]
			res.CriticalPO, res.CriticalRise = po, false
		}
		if minArr[po] < res.MinDelay {
			res.MinDelay = minArr[po]
		}
	}
	// Backtrack the critical path.
	id, rise := res.CriticalPO, res.CriticalRise
	for id >= 0 {
		arr := res.ArrivalRise[id]
		if !rise {
			arr = res.ArrivalFall[id]
		}
		step := PathStep{Gate: id, Cell: a.CellName(id), Rise: rise, Arrival: arr}
		var p pred
		if rise {
			p = predRise[id]
		} else {
			p = predFall[id]
		}
		if p.gate >= 0 {
			pArr := res.ArrivalRise[p.gate]
			if !p.rise {
				pArr = res.ArrivalFall[p.gate]
			}
			step.Delay = arr - pArr
		}
		res.Path = append(res.Path, step)
		if len(res.Path) > len(n.Gates) {
			return nil, fmt.Errorf("sta: critical path backtrack did not terminate")
		}
		id, rise = p.gate, p.rise
	}
	// Reverse to source→sink order.
	for i, j := 0, len(res.Path)-1; i < j; i, j = i+1, j-1 {
		res.Path[i], res.Path[j] = res.Path[j], res.Path[i]
	}
	return res, nil
}

// LeakagePower sums the average leakage of every mapped cell instance.
func (a *Analyzer) LeakagePower() float64 {
	total := 0.0
	for _, c := range a.cells {
		if c != nil {
			total += c.LeakageAvg
		}
	}
	return total
}

// SetUniformDerate applies one factor to every gate.
func (a *Analyzer) SetUniformDerate(f float64) {
	a.Derates = make([]float64, len(a.Net.Gates))
	for i := range a.Derates {
		a.Derates[i] = f
	}
}
