package chaos

import (
	"errors"
	"sync"
)

// ErrDeviceCrashed is returned by VolatileFile writes and syncs after
// Crash, the way a dead machine answers nothing.
var ErrDeviceCrashed = errors.New("chaos: device crashed")

// VolatileFile models a file on a machine that can lose power: Write goes
// to a volatile buffer, Sync commits the buffer to durable storage, and
// Crash discards everything unsynced. It implements the SyncWriter
// contract a write-ahead journal needs, so journal crash-safety can be
// tested deterministically in-process — no real files, no real kills.
type VolatileFile struct {
	mu      sync.Mutex
	durable []byte
	pending []byte
	crashed bool
	syncs   int
}

// Write buffers p in volatile storage.
func (f *VolatileFile) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return 0, ErrDeviceCrashed
	}
	f.pending = append(f.pending, p...)
	return len(p), nil
}

// Sync commits everything buffered so far to durable storage.
func (f *VolatileFile) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrDeviceCrashed
	}
	f.durable = append(f.durable, f.pending...)
	f.pending = f.pending[:0]
	f.syncs++
	return nil
}

// Crash simulates power loss: unsynced bytes vanish, further writes fail,
// and the durable bytes — exactly what a real disk would still hold — are
// returned as a copy.
func (f *VolatileFile) Crash() []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed = true
	f.pending = nil
	return append([]byte(nil), f.durable...)
}

// Reopen clears the crashed state so the same durable bytes can back the
// resumed run (the "new process opens the journal in append mode" step).
func (f *VolatileFile) Reopen() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed = false
	f.pending = f.pending[:0]
}

// Durable returns a copy of the committed bytes.
func (f *VolatileFile) Durable() []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]byte(nil), f.durable...)
}

// Truncate cuts durable storage to n bytes (simulating a torn tail for
// replay tests). It is a no-op if n exceeds the durable length.
func (f *VolatileFile) Truncate(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n >= 0 && n < len(f.durable) {
		f.durable = f.durable[:n]
	}
}

// Syncs reports how many Sync calls have committed.
func (f *VolatileFile) Syncs() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncs
}
