package chaos

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("step %d: %#x != %#x", i, av, bv)
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams for different seeds collide too often: %d/100", same)
	}
}

func TestSplitIndependent(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 64; i++ {
		s := Split(7, i)
		if seen[s] {
			t.Fatalf("Split(7, %d) collides", i)
		}
		seen[s] = true
	}
	if Split(7, 0) == Split(8, 0) {
		t.Fatal("Split should vary with base seed")
	}
}

func TestRandomScheduleDeterministicAndWeighted(t *testing.T) {
	s1 := RandomSchedule(99, 64, Weights{})
	s2 := RandomSchedule(99, 64, Weights{})
	if len(s1) != 64 {
		t.Fatalf("len = %d", len(s1))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("schedule not deterministic at %d", i)
		}
	}
	// Zero-weight ops must never appear; default weights exclude
	// Truncate and Delay.
	for i, ev := range s1 {
		if ev.Op == Truncate || ev.Op == Delay {
			t.Fatalf("event %d has zero-weight op %v", i, ev.Op)
		}
	}
	// An only-Drop weighting yields only drops.
	for i, ev := range RandomSchedule(5, 32, Weights{Drop: 1}) {
		if ev.Op != Drop {
			t.Fatalf("event %d: want drop, got %v", i, ev.Op)
		}
	}
	// Delay events carry the configured sleep.
	for i, ev := range RandomSchedule(5, 8, Weights{Delay: 1, Sleep: 3 * time.Millisecond}) {
		if ev.Op != Delay || ev.Sleep != 3*time.Millisecond {
			t.Fatalf("event %d: got %+v", i, ev)
		}
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{
		Pass: "pass", Drop: "drop", Corrupt: "corrupt",
		Truncate: "truncate", Delay: "delay", Op(99): "op(99)",
	} {
		if got := op.String(); got != want {
			t.Fatalf("Op(%d).String() = %q, want %q", uint8(op), got, want)
		}
	}
}

// pipeRead collects n bytes (or until error) from the reader side.
func pipeRead(t *testing.T, c net.Conn, n int) []byte {
	t.Helper()
	buf := make([]byte, n)
	got := 0
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	for got < n {
		k, err := c.Read(buf[got:])
		got += k
		if err != nil {
			return buf[:got]
		}
	}
	return buf[:got]
}

func TestConnOps(t *testing.T) {
	msg := []byte("abcdefgh")

	t.Run("pass", func(t *testing.T) {
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		w := WrapConn(a, Plan(Pass))
		go w.Write(msg)
		if got := pipeRead(t, b, len(msg)); !bytes.Equal(got, msg) {
			t.Fatalf("got %q", got)
		}
		if w.Writes() != 1 {
			t.Fatalf("writes = %d", w.Writes())
		}
	})

	t.Run("drop", func(t *testing.T) {
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		w := WrapConn(a, Plan(Drop, Pass))
		if n, err := w.Write(msg); n != len(msg) || err != nil {
			t.Fatalf("drop write: n=%d err=%v", n, err)
		}
		// Second write passes; reader sees only it.
		go w.Write([]byte("XY"))
		if got := pipeRead(t, b, 2); !bytes.Equal(got, []byte("XY")) {
			t.Fatalf("got %q", got)
		}
	})

	t.Run("corrupt", func(t *testing.T) {
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		w := WrapConn(a, Plan(Corrupt))
		go w.Write(msg)
		got := pipeRead(t, b, len(msg))
		if bytes.Equal(got, msg) {
			t.Fatal("corrupt write arrived unmodified")
		}
		want := append([]byte(nil), msg...)
		want[len(want)-1] ^= 0x40
		if !bytes.Equal(got, want) {
			t.Fatalf("got %q, want %q", got, want)
		}
		// The original buffer must not be mutated.
		if !bytes.Equal(msg, []byte("abcdefgh")) {
			t.Fatal("caller's buffer was mutated")
		}
	})

	t.Run("truncate", func(t *testing.T) {
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		errc := make(chan error, 1)
		w := WrapConn(a, Plan(Truncate))
		go func() {
			_, err := w.Write(msg)
			errc <- err
		}()
		got := pipeRead(t, b, len(msg))
		if len(got) != len(msg)/2 {
			t.Fatalf("reader saw %d bytes, want %d", len(got), len(msg)/2)
		}
		if err := <-errc; !errors.Is(err, ErrTruncatedWrite) {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("past-schedule passes clean", func(t *testing.T) {
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		w := WrapConn(a, Plan(Drop))
		w.Write(msg) // dropped
		go w.Write(msg)
		if got := pipeRead(t, b, len(msg)); !bytes.Equal(got, msg) {
			t.Fatalf("got %q", got)
		}
	})
}

func TestDialerPerConnSchedules(t *testing.T) {
	// Dialer applies schedule i to connection i and leaves later
	// connections clean.
	var dialed int
	dial := func() (net.Conn, error) {
		dialed++
		a, _ := net.Pipe()
		return a, nil
	}
	d := NewDialer(dial, Plan(Drop), nil)
	c0, err := d.Dial()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c0.(*Conn); !ok {
		t.Fatalf("conn 0 not wrapped: %T", c0)
	}
	c1, _ := d.Dial()
	if _, ok := c1.(*Conn); !ok {
		t.Fatalf("conn 1 not wrapped (empty schedule still wraps): %T", c1)
	}
	c2, _ := d.Dial()
	if _, ok := c2.(*Conn); ok {
		t.Fatal("conn 2 past schedule list should be raw")
	}
	if d.Conns() != 3 || dialed != 3 {
		t.Fatalf("conns=%d dialed=%d", d.Conns(), dialed)
	}
}

func TestSeededDialerDeterministic(t *testing.T) {
	mk := func() *Dialer {
		return NewSeededDialer(func() (net.Conn, error) {
			a, _ := net.Pipe()
			return a, nil
		}, 11, 3, 16, Weights{Drop: 1, Pass: 1})
	}
	d1, d2 := mk(), mk()
	for i := 0; i < 3; i++ {
		c1, _ := d1.Dial()
		c2, _ := d2.Dial()
		w1 := c1.(*Conn)
		w2 := c2.(*Conn)
		for j := range w1.sched {
			if w1.sched[j] != w2.sched[j] {
				t.Fatalf("conn %d event %d differ", i, j)
			}
		}
	}
}

func TestVolatileFile(t *testing.T) {
	var f VolatileFile
	f.Write([]byte("aaaa"))
	if len(f.Durable()) != 0 {
		t.Fatal("unsynced bytes are durable")
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("bbbb"))
	got := f.Crash()
	if !bytes.Equal(got, []byte("aaaa")) {
		t.Fatalf("after crash durable = %q", got)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrDeviceCrashed) {
		t.Fatalf("write after crash: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrDeviceCrashed) {
		t.Fatalf("sync after crash: %v", err)
	}
	f.Reopen()
	f.Write([]byte("cc"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if want := []byte("aaaacc"); !bytes.Equal(f.Durable(), want) {
		t.Fatalf("after reopen durable = %q, want %q", f.Durable(), want)
	}
	if f.Syncs() != 2 {
		t.Fatalf("syncs = %d", f.Syncs())
	}
	f.Truncate(3)
	if want := []byte("aaa"); !bytes.Equal(f.Durable(), want) {
		t.Fatalf("after truncate durable = %q", f.Durable())
	}
	f.Truncate(100) // no-op past end
	if len(f.Durable()) != 3 {
		t.Fatal("truncate past end changed data")
	}
}

func TestCrashPlan(t *testing.T) {
	p := &CrashPlan{Point: CrashAfterJournalSync, After: 3}
	hook := p.Hook()
	if hook(CrashAfterDispatch) {
		t.Fatal("fired on wrong point")
	}
	if hook(CrashAfterJournalSync) || hook(CrashAfterJournalSync) {
		t.Fatal("fired early")
	}
	if !hook(CrashAfterJournalSync) {
		t.Fatal("did not fire at After-th hit")
	}
	if !p.Fired() || p.Hits() != 3 {
		t.Fatalf("fired=%v hits=%d", p.Fired(), p.Hits())
	}
	// Once dead, always dead — even on repeat hits.
	if !hook(CrashAfterJournalSync) {
		t.Fatal("revived after crash")
	}
	// Other points still don't fire.
	if hook(CrashAfterDispatch) {
		t.Fatal("wrong point fired after crash")
	}
}

func TestCrashPlanConcurrent(t *testing.T) {
	p := &CrashPlan{Point: CrashAfterDispatch, After: 5}
	hook := p.Hook()
	var wg sync.WaitGroup
	fired := make(chan bool, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				fired <- hook(CrashAfterDispatch)
			}
		}()
	}
	wg.Wait()
	close(fired)
	if !p.Fired() {
		t.Fatal("never fired")
	}
}

func TestValidCrashPoint(t *testing.T) {
	for _, p := range CrashPoints {
		if !ValidCrashPoint(p) {
			t.Fatalf("%q invalid", p)
		}
	}
	if ValidCrashPoint("before-breakfast") {
		t.Fatal("unknown point accepted")
	}
}
