package chaos

import (
	"errors"
	"net"
	"sync"
	"time"
)

// ErrTruncatedWrite is returned by Conn.Write for a Truncate event, after
// forwarding half the bytes and closing the connection.
var ErrTruncatedWrite = errors.New("chaos: truncated write")

// Conn wraps a net.Conn and sabotages its writes according to a Schedule:
// the i-th Write gets the i-th event; writes past the schedule pass
// clean. Because the cluster wire layer sends each frame in a single
// Write call, write index == frame index, which is what makes transport
// schedules deterministic at the protocol level.
//
// Reads are never sabotaged directly — a dropped or corrupted write is
// observed by the peer's reader, which keeps one schedule's effects
// attributable to one direction.
type Conn struct {
	net.Conn
	mu    sync.Mutex
	sched Schedule
	idx   int
}

// WrapConn applies a schedule to a connection's writes.
func WrapConn(c net.Conn, s Schedule) *Conn {
	return &Conn{Conn: c, sched: s}
}

func (c *Conn) next() Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	ev := Event{Op: Pass}
	if c.idx < len(c.sched) {
		ev = c.sched[c.idx]
	}
	c.idx++
	return ev
}

// Writes reports how many writes have been attempted through the wrapper.
func (c *Conn) Writes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.idx
}

func (c *Conn) Write(b []byte) (int, error) {
	ev := c.next()
	switch ev.Op {
	case Drop:
		return len(b), nil // pretend success; the peer waits on nothing
	case Corrupt:
		cp := append([]byte(nil), b...)
		cp[len(cp)-1] ^= 0x40 // the last byte sits in the payload for every frame
		return c.Conn.Write(cp)
	case Truncate:
		c.Conn.Write(b[:len(b)/2])
		c.Conn.Close()
		return len(b) / 2, ErrTruncatedWrite
	case Delay:
		if ev.Sleep > 0 {
			time.Sleep(ev.Sleep)
		}
	}
	return c.Conn.Write(b)
}

// Dialer applies per-connection schedules to the client side of a
// transport: the i-th dialed connection gets the i-th schedule, and
// connections past the schedule list are clean — so every dialer
// eventually converges to a healthy transport.
type Dialer struct {
	dial   func() (net.Conn, error)
	mu     sync.Mutex
	n      int
	scheds []Schedule
}

// NewDialer wraps a dial function with per-connection schedules.
func NewDialer(dial func() (net.Conn, error), scheds ...Schedule) *Dialer {
	return &Dialer{dial: dial, scheds: scheds}
}

// NewSeededDialer derives one n-event schedule per expected connection
// from a base seed (independent streams via Split), for conns
// connections; later connections are clean.
func NewSeededDialer(dial func() (net.Conn, error), seed uint64, conns, n int, w Weights) *Dialer {
	scheds := make([]Schedule, conns)
	for i := range scheds {
		scheds[i] = RandomSchedule(Split(seed, uint64(i)), n, w)
	}
	return NewDialer(dial, scheds...)
}

// Dial opens the next connection, sabotaged per its schedule.
func (d *Dialer) Dial() (net.Conn, error) {
	c, err := d.dial()
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	i := d.n
	d.n++
	d.mu.Unlock()
	if i < len(d.scheds) {
		return WrapConn(c, d.scheds[i]), nil
	}
	return c, nil
}

// Conns reports how many connections have been dialed.
func (d *Dialer) Conns() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.n
}

// Listener is the server-side twin: it sabotages writes on the i-th
// accepted connection per the i-th schedule; later connections are clean.
type Listener struct {
	net.Listener
	mu     sync.Mutex
	n      int
	scheds []Schedule
}

// WrapListener applies per-connection schedules to accepted connections.
func WrapListener(l net.Listener, scheds ...Schedule) *Listener {
	return &Listener{Listener: l, scheds: scheds}
}

// Accept returns the next connection, sabotaged per its schedule.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	i := l.n
	l.n++
	l.mu.Unlock()
	if i < len(l.scheds) {
		return WrapConn(c, l.scheds[i]), nil
	}
	return c, nil
}
