// Package chaos provides deterministic fault injection for robustness
// tests and CI chaos jobs. Everything is seeded and replayable: the same
// seed produces the same schedule of failures on every run, so a chaos
// test that fails once fails every time, with the exact failure sequence
// recoverable from the seed alone.
//
// Three injection surfaces are covered:
//
//   - Transport: Conn wraps a net.Conn and sabotages writes on a
//     per-connection Schedule of drop/corrupt/truncate/delay events;
//     Dialer and Listener apply per-connection schedules to the client
//     and server side of a transport (internal/cluster's flaky-wire tests
//     are built on these).
//   - Storage: VolatileFile models a file on a machine that can lose
//     power — writes are volatile until Sync commits them, and Crash
//     discards everything unsynced, which is exactly the durability model
//     a write-ahead journal must survive.
//   - Process: named coordinator crash points (CrashAfterDispatch, ...)
//     plus CrashPlan, a counting trigger that "kills" the process at the
//     N-th hit of a chosen point. The cluster coordinator calls its
//     Config.CrashHook at each point; a CLI hook can os.Exit for a real
//     process death, an in-process test hook fails the job and freezes
//     the journal instead.
package chaos

import (
	"fmt"
	"sync"
	"time"
)

// ---------------------------------------------------------------------------
// Seeded randomness. SplitMix64 matches the repository's seed-splitting
// convention (internal/parallel.SplitSeed): tiny state, full 64-bit
// avalanche, and statistically independent streams from split seeds.

// Rand is a SplitMix64 generator. The zero value is a valid (seed 0)
// stream; distinct seeds give independent streams.
type Rand struct{ state uint64 }

// NewRand returns a generator for the given seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 advances the stream and returns the next 64-bit value.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("chaos: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Split derives an independent seed for the given stream index, so one
// base seed can drive many schedules (one per connection, one per worker)
// that stay uncorrelated however they interleave.
func Split(seed, stream uint64) uint64 {
	z := seed*0x9e3779b97f4a7c15 + (stream+1)*0xd1b54a32d192ed03
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// Event schedules.

// Op is one transport sabotage action.
type Op uint8

// Transport sabotage operations applied to writes.
const (
	Pass     Op = iota // forward the write unchanged
	Drop               // swallow the write, report success
	Corrupt            // flip one payload bit, then forward
	Truncate           // forward half the bytes, then kill the connection
	Delay              // sleep, then forward unchanged
)

func (o Op) String() string {
	switch o {
	case Pass:
		return "pass"
	case Drop:
		return "drop"
	case Corrupt:
		return "corrupt"
	case Truncate:
		return "truncate"
	case Delay:
		return "delay"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Event is one scheduled action. Sleep is only used by Delay ops.
type Event struct {
	Op    Op
	Sleep time.Duration
}

// Schedule is the per-connection event plan: the i-th write gets the i-th
// event; writes past the end of the schedule pass clean, so every
// schedule eventually lets the protocol converge.
type Schedule []Event

// Weights select the relative frequency of each op in RandomSchedule. A
// zero weight disables the op; an all-zero Weights defaults to
// {Pass: 2, Drop: 1, Corrupt: 1}.
type Weights struct {
	Pass, Drop, Corrupt, Truncate, Delay int
	// Sleep is the delay applied by generated Delay events (default 1ms).
	Sleep time.Duration
}

// RandomSchedule builds a deterministic n-event schedule from a seed and
// op weights. The same (seed, n, weights) always yields the same schedule.
func RandomSchedule(seed uint64, n int, w Weights) Schedule {
	total := w.Pass + w.Drop + w.Corrupt + w.Truncate + w.Delay
	if total <= 0 {
		w = Weights{Pass: 2, Drop: 1, Corrupt: 1}
		total = 4
	}
	sleep := w.Sleep
	if sleep <= 0 {
		sleep = time.Millisecond
	}
	r := NewRand(seed)
	s := make(Schedule, n)
	for i := range s {
		pick := r.Intn(total)
		switch {
		case pick < w.Pass:
			s[i] = Event{Op: Pass}
		case pick < w.Pass+w.Drop:
			s[i] = Event{Op: Drop}
		case pick < w.Pass+w.Drop+w.Corrupt:
			s[i] = Event{Op: Corrupt}
		case pick < w.Pass+w.Drop+w.Corrupt+w.Truncate:
			s[i] = Event{Op: Truncate}
		default:
			s[i] = Event{Op: Delay, Sleep: sleep}
		}
	}
	return s
}

// Plan builds a schedule from bare ops (no delays) — the concise form for
// hand-written failure sequences in tests.
func Plan(ops ...Op) Schedule {
	s := make(Schedule, len(ops))
	for i, op := range ops {
		s[i] = Event{Op: op}
	}
	return s
}

// ---------------------------------------------------------------------------
// Coordinator crash points.

// Named coordinator crash points. The cluster coordinator calls its
// configured CrashHook with one of these at each interesting boundary of
// the checkpoint protocol:
//
//   - CrashAfterDispatch: a shard was just written to a worker; nothing
//     about it is journaled. Resume must re-dispatch it.
//   - CrashAfterResultBeforeSync: a verified shard result was appended to
//     the journal but not yet synced — the record may be lost. Resume
//     must tolerate the missing (or torn) tail and recompute the shard.
//   - CrashAfterJournalSync: the record is durable but was never merged
//     in memory. Resume must recover the shard from the journal alone.
const (
	CrashAfterDispatch         = "after-dispatch"
	CrashAfterResultBeforeSync = "after-result-before-journal-sync"
	CrashAfterJournalSync      = "after-journal-sync"
)

// CrashPoints lists every named crash point (CLI flag validation).
var CrashPoints = []string{
	CrashAfterDispatch,
	CrashAfterResultBeforeSync,
	CrashAfterJournalSync,
}

// ValidCrashPoint reports whether name is a known crash point.
func ValidCrashPoint(name string) bool {
	for _, p := range CrashPoints {
		if p == name {
			return true
		}
	}
	return false
}

// CrashPlan fires at the After-th hit of Point (1-based): a deterministic
// "kill the coordinator exactly here" trigger. Hits of other points are
// counted separately and never fire. Safe for concurrent use.
type CrashPlan struct {
	Point string
	After int

	mu    sync.Mutex
	hits  int
	fired bool
}

// Hook returns the crash-hook function to install as the coordinator's
// Config.CrashHook. It returns true exactly once, at the After-th hit of
// the plan's point.
func (p *CrashPlan) Hook() func(point string) bool {
	return func(point string) bool {
		if point != p.Point {
			return false
		}
		p.mu.Lock()
		defer p.mu.Unlock()
		if p.fired {
			return true // already "dead": a real crash never comes back
		}
		p.hits++
		if p.hits >= p.After {
			p.fired = true
		}
		return p.fired
	}
}

// Fired reports whether the plan's crash has triggered.
func (p *CrashPlan) Fired() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fired
}

// Hits returns how many times the plan's point has been reached.
func (p *CrashPlan) Hits() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits
}
