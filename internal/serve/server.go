package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"sync/atomic"
	"time"

	"repro/internal/parallel"
	"repro/internal/wafer"
)

// Endpoint names used for metrics and routing.
const (
	epWaferClassify  = "/v1/wafer/classify"
	epOutlierScore   = "/v1/outlier/score"
	epAdaptiveDecide = "/v1/adaptive/decide"
	epModels         = "/v1/models"
	epHealthz        = "/healthz"
	epReadyz         = "/readyz"
)

// Config tunes a Server. Zero values select the documented defaults.
type Config struct {
	Registry *Registry

	// Micro-batching: up to MaxBatch requests per inference call, flushed
	// after FlushWindow at the latest; QueueCap bounds the submission
	// queue (excess requests are shed with 429).
	MaxBatch    int           // default 32
	FlushWindow time.Duration // default 1ms
	QueueCap    int           // default 8*MaxBatch

	// Workers bounds the intra-batch inference parallelism (<= 0 selects
	// GOMAXPROCS, matching the rest of the repository).
	Workers int

	// MaxInFlight caps concurrently admitted requests across all
	// endpoints; excess is shed with 429. Default 1024.
	MaxInFlight int

	// RequestTimeout bounds one request's total time in the server,
	// enforced through the request context. Default 5s.
	RequestTimeout time.Duration

	// Logger receives one structured line per request. nil disables
	// request logging.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Registry == nil {
		c.Registry = NewRegistry()
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.FlushWindow <= 0 {
		c.FlushWindow = time.Millisecond
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 8 * c.MaxBatch
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 1024
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	return c
}

// waferOut is one batched classification result.
type waferOut struct {
	class   int
	version int
	err     error
}

// scoreOut is one batched scoring result; thresholds are captured at batch
// execution so a concurrent hot swap cannot mix scores of one model with
// thresholds of another.
type scoreOut struct {
	score   float64
	reject  float64
	retest  float64
	method  string
	version int
	err     error
}

// Server is the online inference service: registry-backed handlers behind
// micro-batching, metrics, logging, load shedding, and timeouts.
type Server struct {
	cfg     Config
	reg     *Registry
	metrics *Metrics
	mux     *http.ServeMux
	waferB  *Batcher[*wafer.Map, waferOut]
	scoreB  *Batcher[[]float64, scoreOut]
	closed  atomic.Bool
}

// errNoModel is returned per-item when the slot has no installed model.
var errNoModel = errors.New("no model installed")

// errModelPanic is returned per-item when model inference panicked; the
// request fails with 500 but the server (and the batch worker) keep going.
var errModelPanic = errors.New("model inference panicked")

// New builds a Server around a registry. Call Close when done to drain the
// batchers and release the metrics registration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg: cfg,
		reg: cfg.Registry,
		metrics: NewMetrics([]string{
			epWaferClassify, epOutlierScore, epAdaptiveDecide,
			epModels, epHealthz, epReadyz,
		}),
	}
	s.waferB = NewBatcher(cfg.MaxBatch, cfg.QueueCap, cfg.FlushWindow, s.waferBatch)
	s.scoreB = NewBatcher(cfg.MaxBatch, cfg.QueueCap, cfg.FlushWindow, s.scoreBatch)
	// A panic escaping a whole batch (e.g. a broken model blowing up before
	// per-item fan-out) fails that batch's requests with 500 instead of
	// killing the batch worker — and with it the process.
	s.waferB.PanicHandler = func(rec any) waferOut {
		s.recordPanic("wafer batch", rec)
		return waferOut{err: errModelPanic}
	}
	s.scoreB.PanicHandler = func(rec any) scoreOut {
		s.recordPanic("score batch", rec)
		return scoreOut{err: errModelPanic}
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST "+epWaferClassify, s.instrument(epWaferClassify, s.handleWaferClassify))
	mux.HandleFunc("POST "+epOutlierScore, s.instrument(epOutlierScore, s.handleOutlierScore))
	mux.HandleFunc("POST "+epAdaptiveDecide, s.instrument(epAdaptiveDecide, s.handleAdaptiveDecide))
	mux.HandleFunc("GET "+epModels, s.instrument(epModels, s.handleModels))
	mux.HandleFunc("GET "+epHealthz, s.instrument(epHealthz, s.handleHealthz))
	mux.HandleFunc("GET "+epReadyz, s.instrument(epReadyz, s.handleReadyz))
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	s.mux = mux
	return s
}

// Handler returns the root handler (mount it on an http.Server).
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the server's counters (tests and the daemon's shutdown
// report read them).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Close drains both batchers (every admitted request still gets its
// answer) and unregisters the metrics. Call it after http.Server.Shutdown
// has stopped admitting new requests.
func (s *Server) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	s.waferB.Close()
	s.scoreB.Close()
	s.metrics.Unregister()
}

// ---------------------------------------------------------------------------
// Middleware

// statusWriter records the response code for metrics/logging.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// instrument wraps a handler with the full serving middleware: in-flight
// admission control (shed with 429 beyond MaxInFlight), per-request
// timeout via context, latency/error metrics, and structured logging.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}

		if n := s.metrics.inflight.Add(1); n > int64(s.cfg.MaxInFlight) {
			s.metrics.inflight.Add(-1)
			writeError(sw, http.StatusTooManyRequests, "server overloaded: in-flight limit reached")
			s.finish(name, r, sw, start)
			return
		}
		defer s.metrics.inflight.Add(-1)

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		s.serveRecovered(h, sw, r.WithContext(ctx))
		s.finish(name, r, sw, start)
	}
}

// serveRecovered runs one handler with panic isolation: a panicking handler
// answers 500 (unless it already committed a response) and the panic is
// counted and logged with its stack instead of tearing down the server's
// connection goroutine.
func (s *Server) serveRecovered(h http.HandlerFunc, sw *statusWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			s.recordPanic(r.URL.Path, rec)
			if sw.status == 0 {
				writeError(sw, http.StatusInternalServerError, "internal server error")
			}
		}
	}()
	h(sw, r)
}

// recordPanic bumps the panics counter and logs the stack trace of a
// recovered panic.
func (s *Server) recordPanic(where string, rec any) {
	s.metrics.RecordPanic()
	if s.cfg.Logger != nil {
		s.cfg.Logger.Error("recovered panic",
			slog.String("where", where),
			slog.Any("panic", rec),
			slog.String("stack", string(debug.Stack())))
	}
}

func (s *Server) finish(name string, r *http.Request, sw *statusWriter, start time.Time) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	d := time.Since(start)
	s.metrics.Observe(name, sw.status, d)
	if s.cfg.Logger != nil {
		s.cfg.Logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Duration("dur", d),
			slog.Int("bytes", sw.bytes),
			slog.String("remote", r.RemoteAddr),
		)
	}
}

// ---------------------------------------------------------------------------
// Wire types

// ErrorResponse is the JSON body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// WaferClassifyRequest carries one wafer map as a row-major grid of die
// states (0 = off-die, 1 = pass, 2 = fail). Rows must be square.
type WaferClassifyRequest struct {
	Cells [][]uint8 `json:"cells"`
}

// WaferClassifyResponse is the classification verdict.
type WaferClassifyResponse struct {
	ClassID      int    `json:"class_id"`
	Class        string `json:"class"`
	ModelVersion int    `json:"model_version"`
}

// OutlierScoreRequest carries one device's parametric measurement vector.
type OutlierScoreRequest struct {
	X []float64 `json:"x"`
}

// OutlierScoreResponse reports the outlier score against the calibrated
// operating point.
type OutlierScoreResponse struct {
	Score           float64 `json:"score"`
	Reject          bool    `json:"reject"`
	RejectThreshold float64 `json:"reject_threshold"`
	RetestThreshold float64 `json:"retest_threshold"`
	Method          string  `json:"method"`
	ModelVersion    int     `json:"model_version"`
}

// Adaptive decisions returned by /v1/adaptive/decide.
const (
	DecisionContinue = "continue" // healthy: proceed with the normal flow
	DecisionRetest   = "retest"   // marginal band: re-measure the die
	DecisionStop     = "stop"     // confident outlier: stop testing, bin out
)

// AdaptiveDecideResponse is the per-die test-flow decision.
type AdaptiveDecideResponse struct {
	Decision        string  `json:"decision"`
	Score           float64 `json:"score"`
	RejectThreshold float64 `json:"reject_threshold"`
	RetestThreshold float64 `json:"retest_threshold"`
	Method          string  `json:"method"`
	ModelVersion    int     `json:"model_version"`
}

// ModelsResponse lists the installed model versions.
type ModelsResponse struct {
	Models []ModelMeta `json:"models"`
}

// maxBodyBytes bounds request bodies (a 300×300 wafer grid fits easily).
const maxBodyBytes = 4 << 20

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return false
	}
	// Reject trailing garbage.
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		writeError(w, http.StatusBadRequest, "invalid request body: trailing data")
		return false
	}
	return true
}

// batchErr maps batcher submission errors onto HTTP statuses.
func batchErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, "server overloaded: inference queue full")
	case errors.Is(err, ErrBatcherClosed):
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "request timed out")
	case errors.Is(err, context.Canceled):
		// Client went away; status is moot but keep the accounting honest.
		writeError(w, 499, "client closed request")
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// ---------------------------------------------------------------------------
// Batched inference

// waferBatch classifies one coalesced batch of wafer maps against the
// model that is live at execution time, fanning out over the shared worker
// pool. Per-item validation errors surface per item, never failing the
// whole batch.
func (s *Server) waferBatch(maps []*wafer.Map) []waferOut {
	out := make([]waferOut, len(maps))
	model := s.reg.Wafer()
	if model == nil {
		for i := range out {
			out[i].err = errNoModel
		}
		return out
	}
	size := model.Cls.GridSize()
	_ = parallel.For(s.cfg.Workers, len(maps), func(i int) error {
		// Per-item isolation: one map that crashes the model fails only its
		// own request; its batchmates still get real answers.
		defer func() {
			if rec := recover(); rec != nil {
				s.recordPanic("wafer predict", rec)
				out[i] = waferOut{err: errModelPanic}
			}
		}()
		if maps[i].Size != size {
			out[i] = waferOut{err: fmt.Errorf("grid is %dx%d, model expects %dx%d",
				maps[i].Size, maps[i].Size, size, size)}
			return nil
		}
		out[i] = waferOut{class: model.Cls.Predict(maps[i]), version: model.Meta.Version}
		return nil
	})
	return out
}

// scoreBatch scores one coalesced batch of measurement vectors. Model and
// thresholds are captured once per batch so every item in it is judged by
// one consistent operating point.
func (s *Server) scoreBatch(xs [][]float64) []scoreOut {
	out := make([]scoreOut, len(xs))
	model := s.reg.Outlier()
	if model == nil {
		for i := range out {
			out[i].err = errNoModel
		}
		return out
	}
	_ = parallel.For(s.cfg.Workers, len(xs), func(i int) error {
		defer func() {
			if rec := recover(); rec != nil {
				s.recordPanic("outlier score", rec)
				out[i] = scoreOut{err: errModelPanic}
			}
		}()
		if len(xs[i]) != model.Tests {
			out[i] = scoreOut{err: fmt.Errorf("x has %d tests, model expects %d",
				len(xs[i]), model.Tests)}
			return nil
		}
		out[i] = scoreOut{
			score:   model.Scorer.Score(xs[i]),
			reject:  model.RejectThreshold,
			retest:  model.RetestThreshold,
			method:  model.Method,
			version: model.Meta.Version,
		}
		return nil
	})
	return out
}

// ---------------------------------------------------------------------------
// Handlers

func (s *Server) handleWaferClassify(w http.ResponseWriter, r *http.Request) {
	var req WaferClassifyRequest
	if !decodeBody(w, r, &req) {
		return
	}
	m, err := mapFromCells(req.Cells)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	res, err := s.waferB.Do(r.Context(), m)
	if err != nil {
		batchErr(w, err)
		return
	}
	if res.err != nil {
		status := http.StatusBadRequest
		switch {
		case errors.Is(res.err, errNoModel):
			status = http.StatusServiceUnavailable
		case errors.Is(res.err, errModelPanic):
			status = http.StatusInternalServerError
		}
		writeError(w, status, res.err.Error())
		return
	}
	writeJSON(w, http.StatusOK, WaferClassifyResponse{
		ClassID:      res.class,
		Class:        wafer.Class(res.class).String(),
		ModelVersion: res.version,
	})
}

func (s *Server) handleOutlierScore(w http.ResponseWriter, r *http.Request) {
	res, ok := s.scoreOne(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, OutlierScoreResponse{
		Score:           res.score,
		Reject:          res.score > res.reject,
		RejectThreshold: res.reject,
		RetestThreshold: res.retest,
		Method:          res.method,
		ModelVersion:    res.version,
	})
}

func (s *Server) handleAdaptiveDecide(w http.ResponseWriter, r *http.Request) {
	res, ok := s.scoreOne(w, r)
	if !ok {
		return
	}
	decision := DecisionContinue
	switch {
	case res.score > res.reject:
		decision = DecisionStop
	case res.score > res.retest:
		decision = DecisionRetest
	}
	writeJSON(w, http.StatusOK, AdaptiveDecideResponse{
		Decision:        decision,
		Score:           res.score,
		RejectThreshold: res.reject,
		RetestThreshold: res.retest,
		Method:          res.method,
		ModelVersion:    res.version,
	})
}

// scoreOne is the shared request path of the two scoring endpoints.
func (s *Server) scoreOne(w http.ResponseWriter, r *http.Request) (scoreOut, bool) {
	var req OutlierScoreRequest
	if !decodeBody(w, r, &req) {
		return scoreOut{}, false
	}
	if len(req.X) == 0 {
		writeError(w, http.StatusBadRequest, "x must be a non-empty measurement vector")
		return scoreOut{}, false
	}
	res, err := s.scoreB.Do(r.Context(), req.X)
	if err != nil {
		batchErr(w, err)
		return scoreOut{}, false
	}
	if res.err != nil {
		status := http.StatusBadRequest
		switch {
		case errors.Is(res.err, errNoModel):
			status = http.StatusServiceUnavailable
		case errors.Is(res.err, errModelPanic):
			status = http.StatusInternalServerError
		}
		writeError(w, status, res.err.Error())
		return scoreOut{}, false
	}
	return res, true
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ModelsResponse{Models: s.reg.Models()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	status := http.StatusOK
	if !s.reg.Ready() {
		status = http.StatusServiceUnavailable
	}
	ready := map[string]bool{
		KindWaferHDC:      s.reg.Wafer() != nil,
		KindOutlierScreen: s.reg.Outlier() != nil,
	}
	writeJSON(w, status, ready)
}

// mapFromCells validates a request grid and converts it to a wafer.Map.
func mapFromCells(cells [][]uint8) (*wafer.Map, error) {
	n := len(cells)
	if n == 0 {
		return nil, fmt.Errorf("cells must be a non-empty square grid")
	}
	m := &wafer.Map{Size: n, Cells: make([]uint8, n*n)}
	for r, row := range cells {
		if len(row) != n {
			return nil, fmt.Errorf("row %d has %d cells, want %d (square grid)", r, len(row), n)
		}
		for c, v := range row {
			if v > wafer.Fail {
				return nil, fmt.Errorf("cell (%d,%d) = %d, want 0 (off-die), 1 (pass) or 2 (fail)", r, c, v)
			}
			m.Cells[r*n+c] = v
		}
	}
	return m, nil
}
