package serve

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/outlier"
	"repro/internal/wafer"
)

// DemoConfig sizes the built-in demo models (itrserve -demo and the test
// suite train these in-process instead of loading artifact files).
type DemoConfig struct {
	Dim      int   // hypervector dimension (default 2048)
	GridSize int   // wafer grid edge (default 32)
	TrainN   int   // training maps per class (default 12)
	Devices  int   // reference lot size for the outlier screen (default 600)
	Seed     int64 // deterministic seed (default 1)
	// OverkillBudget calibrates the reject threshold (default 0.02); the
	// retest threshold uses 4x the budget, widening the marginal band.
	OverkillBudget float64
}

func (c DemoConfig) withDefaults() DemoConfig {
	if c.Dim <= 0 {
		c.Dim = 2048
	}
	if c.GridSize <= 0 {
		c.GridSize = 32
	}
	if c.TrainN <= 0 {
		c.TrainN = 12
	}
	if c.Devices <= 0 {
		c.Devices = 600
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.OverkillBudget <= 0 {
		c.OverkillBudget = 0.02
	}
	return c
}

// TrainWaferArtifact trains an HDC wafer classifier on a synthesized
// dataset and wraps it as a versioned artifact.
func TrainWaferArtifact(cfg DemoConfig, version int) (*Artifact, error) {
	cfg = cfg.withDefaults()
	wcfg := wafer.DefaultConfig()
	wcfg.Size = cfg.GridSize
	train := wafer.GenerateDataset(cfg.TrainN, wcfg, cfg.Seed)
	cls := core.NewHDCWaferClassifier(cfg.Dim, cfg.GridSize, 20, cfg.Seed)
	if err := cls.Fit(train); err != nil {
		return nil, fmt.Errorf("serve: train demo wafer model: %w", err)
	}
	return NewArtifact(KindWaferHDC, "demo-wafer-hdc", version, cls)
}

// TrainOutlierArtifact fits a Mahalanobis screen on a synthesized healthy
// reference lot and calibrates its stop/retest thresholds with the F3
// tradeoff machinery (stop at the overkill budget, retest at 4x).
func TrainOutlierArtifact(cfg DemoConfig, version int) (*Artifact, error) {
	cfg = cfg.withDefaults()
	lcfg := outlier.DefaultLotConfig()
	lcfg.Devices = cfg.Devices
	lot := outlier.Synthesize(lcfg, cfg.Seed)
	var ref [][]float64
	for i, def := range lot.Defective {
		if !def {
			ref = append(ref, lot.X[i])
		}
	}
	s := &outlier.Mahalanobis{}
	if err := s.Fit(ref); err != nil {
		return nil, fmt.Errorf("serve: fit demo outlier screen: %w", err)
	}
	refScores := outlier.ScoreAll(s, ref)
	reject, err := core.CalibrateThreshold(refScores, cfg.OverkillBudget)
	if err != nil {
		return nil, err
	}
	retestBudget := 4 * cfg.OverkillBudget
	if retestBudget >= 1 {
		retestBudget = 0.5
	}
	retest, err := core.CalibrateThreshold(refScores, retestBudget)
	if err != nil {
		return nil, err
	}
	if retest > reject {
		retest = reject
	}
	saved, err := outlier.SaveScorer(s)
	if err != nil {
		return nil, err
	}
	return NewArtifact(KindOutlierScreen, "demo-mahalanobis", version, OutlierPayload{
		Method:          outlier.MethodMahalanobis,
		Tests:           lcfg.Tests,
		Scorer:          saved,
		RejectThreshold: reject,
		RetestThreshold: retest,
	})
}

// InstallDemoModels trains and installs both demo models.
func InstallDemoModels(r *Registry, cfg DemoConfig) error {
	wa, err := TrainWaferArtifact(cfg, 1)
	if err != nil {
		return err
	}
	if _, err := r.Install(wa); err != nil {
		return err
	}
	oa, err := TrainOutlierArtifact(cfg, 1)
	if err != nil {
		return err
	}
	_, err = r.Install(oa)
	return err
}
