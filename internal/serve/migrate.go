package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// MigrateResult describes one v1 JSON artifact converted to the binary v2
// format.
type MigrateResult struct {
	// File is the original artifact file name (relative to the directory).
	File string
	// NewFile is the written v2 file name (same stem, ".itm" extension).
	NewFile string
	// OldBytes and NewBytes are the on-disk sizes before and after.
	OldBytes, NewBytes int
	// Hash is the content hash — identical for both forms, since identity
	// is computed over the canonical body either way.
	Hash string
}

// MigrateSummary reports the outcome of one MigrateDir run.
type MigrateSummary struct {
	Migrated []MigrateResult
	// Skipped lists "file: reason" for artifacts that could not be
	// converted. Like LoadDir, one bad file does not abort the rest.
	Skipped []string
}

// MigrateDir converts every v1 JSON artifact under dir to the itr-model/v2
// binary format: "x.json" becomes "x.itm", and the original is kept as
// "x.json.v1.bak" so the migration is reversible by hand. Files already in
// the v2 format (and prior ".v1.bak" leftovers) are left untouched. Each
// conversion is atomic (temp + rename for the .itm, then the rename of the
// original), and the content hash of every migrated artifact is reported —
// it is the same identity the v1 file had, so a registry that had loaded
// the JSON sees the migrated file as the same artifact, not a fork.
func MigrateDir(dir string) (MigrateSummary, error) {
	var sum MigrateSummary
	entries, err := os.ReadDir(dir)
	if err != nil {
		return sum, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		src := filepath.Join(dir, name)
		a, err := ReadArtifact(src)
		if err != nil {
			sum.Skipped = append(sum.Skipped, fmt.Sprintf("%s: %v", name, err))
			continue
		}
		v2, err := a.ToV2()
		if err != nil {
			sum.Skipped = append(sum.Skipped, fmt.Sprintf("%s: %v", name, err))
			continue
		}
		newName := strings.TrimSuffix(name, ".json") + ".itm"
		dst := filepath.Join(dir, newName)
		if err := v2.WriteFile(dst); err != nil {
			sum.Skipped = append(sum.Skipped, fmt.Sprintf("%s: %v", name, err))
			continue
		}
		if err := os.Rename(src, src+".v1.bak"); err != nil {
			sum.Skipped = append(sum.Skipped, fmt.Sprintf("%s: %v", name, err))
			continue
		}
		oldInfo, _ := os.Stat(src + ".v1.bak")
		newInfo, _ := os.Stat(dst)
		res := MigrateResult{File: name, NewFile: newName, Hash: v2.Hash}
		if oldInfo != nil {
			res.OldBytes = int(oldInfo.Size())
		}
		if newInfo != nil {
			res.NewBytes = int(newInfo.Size())
		}
		sum.Migrated = append(sum.Migrated, res)
	}
	return sum, nil
}
