package serve

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/outlier"
	"repro/internal/wire"
)

// itr-model/v2: the canonical binary artifact format. Identity is content:
// the artifact's hash is blake2b-256 over its canonical body bytes (the
// easyfl LibraryHash pattern), so two artifacts are the same artifact iff
// their bytes are the same, replicas can diff and dedupe by hash alone,
// and a flipped bit anywhere surfaces as a typed refusal instead of a
// silently wrong model.
//
// File layout (everything after the 37-byte header is hashed):
//
//	offset  size  field
//	0       4     magic "ITRM"
//	4       1     format version (2)
//	5       32    blake2b-256(body)
//	37      n     body
//
// body (canonical: fixed field order, big-endian, length-prefixed):
//
//	str  kind
//	str  name
//	u32  version
//	i64  created_unix
//	bytes payload            (kind-specific canonical model encoding)
//
// Payloads:
//
//	wafer-hdc       core.HDCWaferClassifier.AppendBinary
//	outlier-screen  str method, u32 tests, bytes scorer
//	                (outlier.AppendScorerBinary), f64 reject, f64 retest
//
// CreatedUnix is inside the hashed body on purpose: an artifact is
// immutable once published, and re-publishing "the same" model under the
// same kind/name/version with any byte changed — even just the timestamp —
// is a forked lineage the registry must refuse rather than paper over.
const (
	// SchemaV2 is the binary artifact envelope version.
	SchemaV2 = "itr-model/v2"

	artifactMagic   = "ITRM"
	artifactVersion = 2
	// artifactHeaderSize is the unhashed prefix: magic, version, hash.
	artifactHeaderSize = 4 + 1 + 32
	// maxArtifactBytes bounds a decoded artifact file (a corrupt length
	// field must not drive a runaway allocation).
	maxArtifactBytes = 1 << 30
)

// Typed artifact errors, pinned by the failure-path tests.
var (
	// ErrBadArtifact marks a structurally malformed v2 artifact (bad
	// magic, unknown format version, truncated or trailing bytes).
	ErrBadArtifact = errors.New("serve: malformed itr-model/v2 artifact")
	// ErrHashMismatch marks an artifact whose bytes do not match its
	// content hash — bit rot, torn write, or in-flight corruption. Loaders
	// and replicas refuse such artifacts outright.
	ErrHashMismatch = errors.New("serve: artifact content hash mismatch")
	// ErrForkedLineage marks two different artifact contents claiming the
	// same kind/name/version. The registry refuses the second: versions
	// are immutable, and converging replicas must never disagree about
	// what a version means.
	ErrForkedLineage = errors.New("serve: forked artifact lineage")
)

// canonicalPayload returns the canonical binary payload section,
// converting from the v1 JSON payload when necessary.
func (a *Artifact) canonicalPayload() ([]byte, error) {
	if len(a.Binary) > 0 {
		return a.Binary, nil
	}
	switch a.Kind {
	case KindWaferHDC:
		cls := &core.HDCWaferClassifier{}
		if err := json.Unmarshal(a.Payload, cls); err != nil {
			return nil, fmt.Errorf("serve: convert %s payload: %w", a.Kind, err)
		}
		return cls.AppendBinary(nil)
	case KindOutlierScreen:
		var p OutlierPayload
		if err := json.Unmarshal(a.Payload, &p); err != nil {
			return nil, fmt.Errorf("serve: convert %s payload: %w", a.Kind, err)
		}
		s, err := outlier.LoadScorer(p.Scorer)
		if err != nil {
			return nil, fmt.Errorf("serve: convert %s payload: %w", a.Kind, err)
		}
		return appendOutlierPayload(nil, p.Method, p.Tests, s, p.RejectThreshold, p.RetestThreshold)
	}
	return nil, fmt.Errorf("serve: unknown artifact kind %q", a.Kind)
}

// appendOutlierPayload appends the canonical outlier-screen payload.
func appendOutlierPayload(b []byte, method string, tests int, s outlier.Scorer, reject, retest float64) ([]byte, error) {
	b = wire.AppendString(b, method)
	b = wire.AppendU32(b, uint32(tests))
	sb, err := outlier.AppendScorerBinary(nil, s)
	if err != nil {
		return nil, err
	}
	b = wire.AppendBytes(b, sb)
	b = wire.AppendF64(b, reject)
	b = wire.AppendF64(b, retest)
	return b, nil
}

// decodeOutlierPayload parses a canonical outlier-screen payload into an
// installable model (metadata filled in by the caller).
func decodeOutlierPayload(data []byte) (*OutlierModel, error) {
	d := wire.NewDec(data)
	method := d.String()
	tests := int(d.U32())
	scorerBytes := d.Bytes()
	reject := d.F64()
	retest := d.F64()
	if err := d.Close(); err != nil {
		return nil, fmt.Errorf("serve: decode %s payload: %w", KindOutlierScreen, err)
	}
	s, err := outlier.UnmarshalScorerBinary(scorerBytes)
	if err != nil {
		return nil, fmt.Errorf("serve: decode %s payload: %w", KindOutlierScreen, err)
	}
	return &OutlierModel{
		Method: method, Tests: tests, Scorer: s,
		RejectThreshold: reject, RetestThreshold: retest,
	}, nil
}

// canonicalBody returns the hashed body bytes of the artifact.
func (a *Artifact) canonicalBody() ([]byte, error) {
	payload, err := a.canonicalPayload()
	if err != nil {
		return nil, err
	}
	b := wire.AppendString(nil, a.Kind)
	b = wire.AppendString(b, a.Name)
	b = wire.AppendU32(b, uint32(a.Version))
	b = wire.AppendI64(b, a.CreatedUnix)
	return wire.AppendBytes(b, payload), nil
}

// ContentHash computes (and stamps) the artifact's identity: the hex
// blake2b-256 of its canonical body. A v1 JSON artifact hashes to exactly
// what its v2 conversion hashes to, so an artifact keeps its identity
// across the migration.
func (a *Artifact) ContentHash() (string, error) {
	body, err := a.canonicalBody()
	if err != nil {
		return "", err
	}
	sum := wire.Blake2b256(body)
	a.Hash = hex.EncodeToString(sum[:])
	return a.Hash, nil
}

// ToV2 returns the canonical binary form of the artifact (identity
// conversion for v2 inputs), with the content hash stamped.
func (a *Artifact) ToV2() (*Artifact, error) {
	payload, err := a.canonicalPayload()
	if err != nil {
		return nil, err
	}
	v2 := &Artifact{
		Schema:      SchemaV2,
		Kind:        a.Kind,
		Name:        a.Name,
		Version:     a.Version,
		CreatedUnix: a.CreatedUnix,
		Binary:      payload,
	}
	if err := v2.Validate(); err != nil {
		return nil, err
	}
	if _, err := v2.ContentHash(); err != nil {
		return nil, err
	}
	return v2, nil
}

// EncodeV2 serializes the artifact into the binary v2 file format
// (converting a v1 artifact first). Encoding is deterministic:
// encode → decode → re-encode yields identical bytes and identical hash.
func (a *Artifact) EncodeV2() ([]byte, error) {
	body, err := a.canonicalBody()
	if err != nil {
		return nil, err
	}
	sum := wire.Blake2b256(body)
	a.Hash = hex.EncodeToString(sum[:])
	out := make([]byte, 0, artifactHeaderSize+len(body))
	out = append(out, artifactMagic...)
	out = append(out, artifactVersion)
	out = append(out, sum[:]...)
	return append(out, body...), nil
}

// DecodeArtifactV2 parses and verifies a binary v2 artifact. Every
// corruption maps to a typed error: structural damage (magic, version,
// framing, trailing bytes) is ErrBadArtifact; any flipped byte in the
// hashed body is ErrHashMismatch; an unknown kind or invalid envelope
// fails Validate. The payload itself stays opaque here — model decoding
// (and its own validation) happens at install time.
func DecodeArtifactV2(data []byte) (*Artifact, error) {
	if len(data) < artifactHeaderSize {
		return nil, fmt.Errorf("%w: %d bytes, want >= %d", ErrBadArtifact, len(data), artifactHeaderSize)
	}
	if len(data) > maxArtifactBytes {
		return nil, fmt.Errorf("%w: %d bytes exceeds limit %d", ErrBadArtifact, len(data), maxArtifactBytes)
	}
	if string(data[:4]) != artifactMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadArtifact)
	}
	if data[4] != artifactVersion {
		return nil, fmt.Errorf("%w: format version %d, want %d", ErrBadArtifact, data[4], artifactVersion)
	}
	var want [32]byte
	copy(want[:], data[5:artifactHeaderSize])
	body := data[artifactHeaderSize:]
	if sum := wire.Blake2b256(body); sum != want {
		return nil, fmt.Errorf("%w: body hashes to %x, header claims %x",
			ErrHashMismatch, sum[:8], want[:8])
	}
	d := wire.NewDec(body)
	a := &Artifact{Schema: SchemaV2}
	a.Kind = d.String()
	a.Name = d.String()
	a.Version = int(d.U32())
	a.CreatedUnix = d.I64()
	a.Binary = append([]byte(nil), d.Bytes()...)
	if err := d.Close(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadArtifact, err)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	a.Hash = hex.EncodeToString(want[:])
	return a, nil
}
