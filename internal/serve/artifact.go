// Package serve is the online inference layer of the repository: it loads
// trained test-and-reliability models (HDC wafer-map classifiers, outlier
// screens) as versioned artifacts into an atomically hot-swappable
// registry, coalesces concurrent HTTP requests into micro-batches executed
// over the shared worker pool, and exposes the whole thing behind stdlib
// net/http with expvar metrics, pprof, structured logging, per-request
// timeouts, load shedding, and graceful drain — the "deployment artifact"
// half of the survey's ML-for-test story, where itrbench/itrwafer are the
// offline training half.
package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Schema is the artifact envelope version. Every model file produced by
// this repository carries it; loaders reject anything else.
const Schema = "itr-model/v1"

// Artifact kinds: which serving slot a model file fills.
const (
	// KindWaferHDC is a trained HDC wafer-map classifier
	// (payload: core.HDCWaferClassifier).
	KindWaferHDC = "wafer-hdc"
	// KindOutlierScreen is a fitted, threshold-calibrated outlier scorer
	// (payload: OutlierPayload).
	KindOutlierScreen = "outlier-screen"
)

// Artifact is the model envelope: self-describing metadata around a
// kind-specific payload. An itr-model/v1 artifact carries a JSON Payload;
// an itr-model/v2 artifact carries the canonical Binary payload (see
// artifactv2.go). Hash is the content identity — hex blake2b-256 over the
// canonical body — identical for both schemas of the same model.
type Artifact struct {
	Schema      string          `json:"schema"`
	Kind        string          `json:"kind"`
	Name        string          `json:"name"`
	Version     int             `json:"version"`
	CreatedUnix int64           `json:"created_unix,omitempty"`
	Payload     json.RawMessage `json:"payload,omitempty"`
	// Hash is the hex content hash, stamped by ContentHash / ReadArtifact /
	// WriteFile. In a v1 JSON file it is advisory (verified when present);
	// in the v2 binary format it is structural — decoding refuses any body
	// that does not hash to it.
	Hash string `json:"hash,omitempty"`
	// Binary is the canonical v2 payload section; never serialized as JSON.
	Binary []byte `json:"-"`
}

// NewArtifact wraps a payload value into a validated envelope.
func NewArtifact(kind, name string, version int, payload any) (*Artifact, error) {
	raw, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("serve: encode %s payload: %w", kind, err)
	}
	a := &Artifact{Schema: Schema, Kind: kind, Name: name, Version: version, Payload: raw}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// Validate checks the envelope invariants (schema, known kind, positive
// version, non-empty payload in the schema's own representation).
func (a *Artifact) Validate() error {
	switch a.Schema {
	case Schema, SchemaV2:
	default:
		return fmt.Errorf("serve: artifact schema %q, want %q or %q", a.Schema, Schema, SchemaV2)
	}
	switch a.Kind {
	case KindWaferHDC, KindOutlierScreen:
	default:
		return fmt.Errorf("serve: unknown artifact kind %q", a.Kind)
	}
	if a.Version < 1 {
		return fmt.Errorf("serve: artifact version %d, want >= 1", a.Version)
	}
	if a.Schema == SchemaV2 {
		if len(a.Binary) == 0 {
			return fmt.Errorf("serve: artifact %s/%s has empty binary payload", a.Kind, a.Name)
		}
		return nil
	}
	if len(a.Payload) == 0 {
		return fmt.Errorf("serve: artifact %s/%s has empty payload", a.Kind, a.Name)
	}
	return nil
}

// ReadArtifact loads, validates and content-hashes an artifact file,
// sniffing the format: "ITRM" magic means the v2 binary encoding (hash
// verified structurally), anything else is parsed as v1 JSON. A v1 file
// that carries a stamped hash is checked against the recomputed one, so a
// payload edited after signing is refused rather than trusted.
func ReadArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) >= len(artifactMagic) && string(data[:len(artifactMagic)]) == artifactMagic {
		a, err := DecodeArtifactV2(data)
		if err != nil {
			return nil, fmt.Errorf("%w (file %s)", err, path)
		}
		return a, nil
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("serve: decode artifact %s: %w", path, err)
	}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	stamped := a.Hash
	if _, err := a.ContentHash(); err != nil {
		return nil, fmt.Errorf("serve: hash artifact %s: %w", path, err)
	}
	if stamped != "" && stamped != a.Hash {
		return nil, fmt.Errorf("%w: file %s stamped %.8s…, content is %.8s…",
			ErrHashMismatch, path, stamped, a.Hash)
	}
	return &a, nil
}

// WriteFile atomically writes the artifact (temp file + rename), so a
// concurrently re-scanning server never observes a half-written model.
// A v2 artifact is written in the binary format; a v1 artifact is written
// as JSON with its content hash stamped into the envelope.
func (a *Artifact) WriteFile(path string) error {
	if err := a.Validate(); err != nil {
		return err
	}
	var data []byte
	var err error
	if a.Schema == SchemaV2 {
		data, err = a.EncodeV2()
	} else {
		if _, err = a.ContentHash(); err == nil {
			data, err = json.MarshalIndent(a, "", " ")
			data = append(data, '\n')
		}
	}
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".itr-model-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// OutlierPayload is the payload of KindOutlierScreen artifacts: a fitted
// scorer (outlier.SaveScorer envelope) plus its calibrated operating
// thresholds from the F3 escape-vs-overkill machinery.
type OutlierPayload struct {
	Method string          `json:"method"` // display name, e.g. "mahalanobis"
	Tests  int             `json:"tests"`  // measurement-vector length
	Scorer json.RawMessage `json:"scorer"`
	// RejectThreshold is the stop/bin-out score, calibrated so healthy
	// overkill stays within the reject budget.
	RejectThreshold float64 `json:"reject_threshold"`
	// RetestThreshold < RejectThreshold marks the marginal band: devices
	// scoring inside [retest, reject) are re-measured instead of binned.
	RetestThreshold float64 `json:"retest_threshold"`
}
