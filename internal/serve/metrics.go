package serve

import (
	"expvar"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// latBuckets is the histogram resolution: bucket i counts requests with
// latency < 2^i microseconds; the last bucket is the overflow (≥ ~8.4 s).
const latBuckets = 24

// histogram is a lock-free log2 latency histogram in microseconds.
type histogram struct {
	buckets [latBuckets]atomic.Int64
	count   atomic.Int64
	sumUS   atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	b := 0
	for v := us; v > 0; v >>= 1 {
		b++
	}
	if b >= latBuckets {
		b = latBuckets - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sumUS.Add(us)
}

// quantile returns an upper-bound estimate of the q-quantile in
// microseconds (the upper edge of the bucket the quantile falls in).
func (h *histogram) quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < latBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			return math.Pow(2, float64(i))
		}
	}
	return math.Pow(2, float64(latBuckets-1))
}

// endpointStats are the per-endpoint counters of the observability layer.
type endpointStats struct {
	requests atomic.Int64 // all observed requests, shed included
	errors   atomic.Int64 // responses with status >= 400
	shed     atomic.Int64 // 429 responses (queue full / overload)
	latency  histogram
}

// Metrics aggregates per-endpoint request counters and latency histograms.
// The endpoint set is fixed at construction, so observation is entirely
// lock-free on the hot path.
type Metrics struct {
	eps      map[string]*endpointStats
	inflight atomic.Int64
	panics   atomic.Int64
}

// RecordPanic counts one recovered panic (handler or model inference). A
// nonzero value in /debug/vars is the operational signal that a model or
// handler is broken even though the process keeps serving.
func (m *Metrics) RecordPanic() { m.panics.Add(1) }

// Panics reports the number of recovered panics so far.
func (m *Metrics) Panics() int64 { return m.panics.Load() }

// NewMetrics builds counters for a fixed endpoint set and registers them
// with the process-wide expvar publication.
func NewMetrics(endpoints []string) *Metrics {
	m := &Metrics{eps: make(map[string]*endpointStats, len(endpoints))}
	for _, ep := range endpoints {
		m.eps[ep] = &endpointStats{}
	}
	registerMetrics(m)
	return m
}

// Observe records one finished request.
func (m *Metrics) Observe(endpoint string, status int, d time.Duration) {
	ep := m.eps[endpoint]
	if ep == nil {
		return
	}
	ep.requests.Add(1)
	if status >= 400 {
		ep.errors.Add(1)
	}
	if status == 429 {
		ep.shed.Add(1)
	}
	ep.latency.observe(d)
}

// Snapshot renders the counters for /debug/vars.
func (m *Metrics) Snapshot() map[string]any {
	out := make(map[string]any, len(m.eps)+1)
	for name, ep := range m.eps {
		count := ep.latency.count.Load()
		stats := map[string]any{
			"requests": ep.requests.Load(),
			"errors":   ep.errors.Load(),
			"shed":     ep.shed.Load(),
		}
		lat := map[string]any{
			"count":  count,
			"p50_us": ep.latency.quantile(0.50),
			"p90_us": ep.latency.quantile(0.90),
			"p99_us": ep.latency.quantile(0.99),
		}
		if count > 0 {
			lat["mean_us"] = float64(ep.latency.sumUS.Load()) / float64(count)
		}
		var buckets []int64
		for i := range ep.latency.buckets {
			buckets = append(buckets, ep.latency.buckets[i].Load())
		}
		lat["log2us_buckets"] = buckets
		stats["latency"] = lat
		out[name] = stats
	}
	out["inflight"] = m.inflight.Load()
	out["panics"] = m.panics.Load()
	return out
}

// Unregister removes the metrics from the expvar publication (servers in
// tests come and go; the publication must only show live ones).
func (m *Metrics) Unregister() { unregisterMetrics(m) }

// expvar only allows one Publish per name per process, but tests (and in
// principle one process hosting several servers) create multiple Metrics.
// A process-wide registry publishes the union once, summifying nothing:
// each live Metrics appears as one entry keyed by its registration order.
var (
	metricsMu   sync.Mutex
	metricsLive = map[*Metrics]int{}
	metricsSeq  int
	publishOnce sync.Once
)

func registerMetrics(m *Metrics) {
	metricsMu.Lock()
	metricsSeq++
	metricsLive[m] = metricsSeq
	metricsMu.Unlock()
	publishOnce.Do(func() {
		expvar.Publish("itrserve", expvar.Func(func() any {
			metricsMu.Lock()
			defer metricsMu.Unlock()
			if len(metricsLive) == 1 {
				for m := range metricsLive {
					return m.Snapshot()
				}
			}
			out := make(map[string]any, len(metricsLive))
			for m, id := range metricsLive {
				out["server-"+strconv.Itoa(id)] = m.Snapshot()
			}
			return out
		}))
	})
}

func unregisterMetrics(m *Metrics) {
	metricsMu.Lock()
	delete(metricsLive, m)
	metricsMu.Unlock()
}
