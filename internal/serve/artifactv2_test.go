package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/outlier"
	"repro/internal/wafer"
)

// TestArtifactV2RoundTripIdentity pins the tentpole contract for every
// model kind: encode → hash → decode → re-encode yields identical bytes
// and an identical content hash, and the v1 JSON form of the same model
// hashes to the same identity as its v2 conversion.
func TestArtifactV2RoundTripIdentity(t *testing.T) {
	w1, _, o1 := testArtifacts(t)
	for _, a := range []*Artifact{w1, o1} {
		v1Hash, err := a.ContentHash()
		if err != nil {
			t.Fatal(err)
		}
		v2, err := a.ToV2()
		if err != nil {
			t.Fatal(err)
		}
		if v2.Hash != v1Hash {
			t.Errorf("%s: v1 hashes to %.12s, v2 to %.12s — identity lost in conversion",
				a.Kind, v1Hash, v2.Hash)
		}
		if len(v2.Hash) != 64 {
			t.Errorf("%s: hash %q is not hex blake2b-256", a.Kind, v2.Hash)
		}
		data, err := v2.EncodeV2()
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecodeArtifactV2(data)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Kind != a.Kind || dec.Name != a.Name || dec.Version != a.Version ||
			dec.CreatedUnix != a.CreatedUnix || dec.Hash != v1Hash {
			t.Errorf("%s: decoded envelope %+v does not match original", a.Kind, dec)
		}
		again, err := dec.EncodeV2()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, again) {
			t.Errorf("%s: re-encode differs (%d vs %d bytes)", a.Kind, len(data), len(again))
		}
		if dec.Hash != v2.Hash {
			t.Errorf("%s: re-encode changed hash %.12s -> %.12s", a.Kind, v2.Hash, dec.Hash)
		}
	}
}

// TestArtifactV2FlippedByte: corrupting any single byte of a v2 artifact
// is refused with a typed error — ErrBadArtifact in the unhashed header,
// ErrHashMismatch everywhere in the hashed body and in the hash itself.
// The outlier artifact is small enough to sweep every byte; the wafer
// artifact is swept with a stride.
func TestArtifactV2FlippedByte(t *testing.T) {
	w1, _, o1 := testArtifacts(t)
	for _, tc := range []struct {
		a      *Artifact
		stride int
	}{{o1, 1}, {w1, 101}} {
		data, err := tc.a.EncodeV2()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(data); i += tc.stride {
			bad := append([]byte(nil), data...)
			bad[i] ^= 0x40
			_, err := DecodeArtifactV2(bad)
			if err == nil {
				t.Fatalf("%s: flipped byte %d of %d accepted", tc.a.Kind, i, len(data))
			}
			switch {
			case i < 5: // magic + format version
				if !errors.Is(err, ErrBadArtifact) {
					t.Fatalf("%s: header byte %d: err = %v, want ErrBadArtifact", tc.a.Kind, i, err)
				}
			default: // stored hash or hashed body
				if !errors.Is(err, ErrHashMismatch) {
					t.Fatalf("%s: byte %d: err = %v, want ErrHashMismatch", tc.a.Kind, i, err)
				}
			}
		}
		// Truncations and trailing bytes are refused too.
		for _, n := range []int{0, 4, 36, len(data) / 2, len(data) - 1} {
			if _, err := DecodeArtifactV2(data[:n]); err == nil {
				t.Fatalf("%s: truncation to %d bytes accepted", tc.a.Kind, n)
			}
		}
		if _, err := DecodeArtifactV2(append(append([]byte(nil), data...), 0)); err == nil {
			t.Fatalf("%s: trailing byte accepted", tc.a.Kind)
		}
	}
}

// TestArtifactFileSniffing: WriteFile/ReadArtifact round-trip both schemas
// through the same entry points, and a v1 file whose payload was edited
// after its hash was stamped is refused.
func TestArtifactFileSniffing(t *testing.T) {
	_, _, o1 := testArtifacts(t)
	dir := t.TempDir()

	v2, err := o1.ToV2()
	if err != nil {
		t.Fatal(err)
	}
	binPath := filepath.Join(dir, "screen.itm")
	if err := v2.WriteFile(binPath); err != nil {
		t.Fatal(err)
	}
	got, err := ReadArtifact(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != SchemaV2 || got.Hash != v2.Hash {
		t.Errorf("read v2 file: schema %q hash %.12s, want %q %.12s",
			got.Schema, got.Hash, SchemaV2, v2.Hash)
	}

	jsonPath := filepath.Join(dir, "screen.json")
	if err := o1.WriteFile(jsonPath); err != nil {
		t.Fatal(err)
	}
	got, err = ReadArtifact(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || got.Hash != v2.Hash {
		t.Errorf("read v1 file: schema %q hash %.12s, want %q with the same identity %.12s",
			got.Schema, got.Hash, Schema, v2.Hash)
	}

	// Tamper with the JSON after the hash was stamped: bump the version
	// field. The recomputed content hash no longer matches the stamp.
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(raw, []byte(`"version": 1`), []byte(`"version": 7`), 1)
	if bytes.Equal(raw, tampered) {
		t.Fatal("tamper target not found in JSON")
	}
	if err := os.WriteFile(jsonPath, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadArtifact(jsonPath); !errors.Is(err, ErrHashMismatch) {
		t.Errorf("tampered v1 file: err = %v, want ErrHashMismatch", err)
	}
}

// TestRegistryForkedLineage: once a kind/name/version is bound to a
// content hash, an artifact with the same coordinates but different bytes
// is refused — re-installing the identical artifact stays allowed.
func TestRegistryForkedLineage(t *testing.T) {
	_, _, o1 := testArtifacts(t)
	reg := NewRegistry()
	if _, err := reg.Install(o1); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Install(o1); err != nil {
		t.Errorf("re-install of the identical artifact refused: %v", err)
	}

	// Same kind/name/version, nudged threshold: different content.
	var p OutlierPayload
	if err := json.Unmarshal(o1.Payload, &p); err != nil {
		t.Fatal(err)
	}
	p.RejectThreshold += 0.5
	fork, err := NewArtifact(o1.Kind, o1.Name, o1.Version, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Install(fork); !errors.Is(err, ErrForkedLineage) {
		t.Errorf("forked artifact: err = %v, want ErrForkedLineage", err)
	}
	if got := reg.Outlier().Meta.Hash; got != o1.Hash {
		t.Errorf("fork refusal changed the live model to %.12s", got)
	}

	// The store holds exactly the installed content, addressable by hash.
	man := reg.Manifest()
	if len(man) != 1 || man[0].Hash != o1.Hash {
		t.Errorf("manifest %+v, want exactly the installed artifact", man)
	}
	if a := reg.ArtifactByHash(o1.Hash); a == nil || a.Kind != o1.Kind {
		t.Error("installed artifact not addressable by content hash")
	}
	if a := reg.ArtifactByHash("deadbeef"); a != nil {
		t.Error("unknown hash resolved to an artifact")
	}
}

// TestRegistryLoadDirDedupe: byte-identical artifacts under different
// names — and the same model in both schemas — count once.
func TestRegistryLoadDirDedupe(t *testing.T) {
	w1, _, o1 := testArtifacts(t)
	dir := t.TempDir()
	for _, name := range []string{"a.json", "b.json"} {
		if err := w1.WriteFile(filepath.Join(dir, name)); err != nil {
			t.Fatal(err)
		}
	}
	v2, err := w1.ToV2()
	if err != nil {
		t.Fatal(err)
	}
	if err := v2.WriteFile(filepath.Join(dir, "c.itm")); err != nil {
		t.Fatal(err)
	}
	if err := o1.WriteFile(filepath.Join(dir, "screen.json")); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	sum, err := reg.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Installed != 2 || sum.Duplicates != 2 {
		t.Errorf("summary %+v, want 2 installed, 2 duplicates", sum)
	}
	if len(sum.Artifacts) != 4 {
		t.Errorf("artifact log %v, want one entry per readable file", sum.Artifacts)
	}
	for _, line := range sum.Artifacts {
		if !strings.Contains(line, w1.Hash[:12]) && !strings.Contains(line, o1.Hash[:12]) {
			t.Errorf("artifact log entry %q reports no known content hash", line)
		}
	}
	if !reg.Ready() {
		t.Error("registry not ready after deduped load")
	}
}

// TestArtifactCrossVersionPredict is the migration property test: a model
// trained once, served from its v1 JSON file and from its migrated v2
// binary file, produces bit-identical predictions and float64 score bits.
func TestArtifactCrossVersionPredict(t *testing.T) {
	w1, _, o1 := testArtifacts(t)
	dir := t.TempDir()
	for name, a := range map[string]*Artifact{"wafer.json": w1, "screen.json": o1} {
		if err := a.WriteFile(filepath.Join(dir, name)); err != nil {
			t.Fatal(err)
		}
	}
	regV1 := NewRegistry()
	if sum, err := regV1.LoadDir(dir); err != nil || sum.Installed != 2 {
		t.Fatalf("v1 load: %+v, %v", sum, err)
	}
	mig, err := MigrateDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(mig.Migrated) != 2 || len(mig.Skipped) != 0 {
		t.Fatalf("migration %+v, want 2 converted", mig)
	}
	regV2 := NewRegistry()
	if sum, err := regV2.LoadDir(dir); err != nil || sum.Installed != 2 {
		t.Fatalf("v2 load: %+v, %v", sum, err)
	}

	if a, b := regV1.Wafer().Meta.Hash, regV2.Wafer().Meta.Hash; a != b {
		t.Errorf("wafer model identity changed across migration: %.12s vs %.12s", a, b)
	}
	wcfg := wafer.DefaultConfig()
	wcfg.Size = testCfg.GridSize
	for i, m := range wafer.GenerateDataset(5, wcfg, 99).Maps {
		if a, b := regV1.Wafer().Cls.Predict(m), regV2.Wafer().Cls.Predict(m); a != b {
			t.Fatalf("map %d: v1 model predicts %d, migrated model %d", i, a, b)
		}
	}
	lot := outlier.Synthesize(outlier.DefaultLotConfig(), 99)
	s1, s2 := regV1.Outlier().Scorer, regV2.Outlier().Scorer
	for i, x := range lot.X {
		a, b := s1.Score(x), s2.Score(x)
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("device %d: v1 score %v, migrated score %v (bit mismatch)", i, a, b)
		}
	}
}

// TestMigrateDir pins the one-shot conversion mechanics: .json becomes
// .itm plus a .v1.bak, sizes and hashes are reported, corrupt files are
// skipped in place, and a re-run finds nothing left to do.
func TestMigrateDir(t *testing.T) {
	w1, _, o1 := testArtifacts(t)
	dir := t.TempDir()
	for name, a := range map[string]*Artifact{"wafer.json": w1, "screen.json": o1} {
		if err := a.WriteFile(filepath.Join(dir, name)); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "torn.json"), []byte(`{"schema":`), 0o644); err != nil {
		t.Fatal(err)
	}
	sum, err := MigrateDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Migrated) != 2 || len(sum.Skipped) != 1 {
		t.Fatalf("summary %+v, want 2 migrated, 1 skipped", sum)
	}
	for _, m := range sum.Migrated {
		if m.OldBytes <= 0 || m.NewBytes <= 0 || len(m.Hash) != 64 {
			t.Errorf("migration result %+v lacks sizes or hash", m)
		}
		if m.NewBytes >= m.OldBytes {
			t.Logf("note: %s binary (%d B) not smaller than JSON (%d B)", m.File, m.NewBytes, m.OldBytes)
		}
		if _, err := os.Stat(filepath.Join(dir, m.NewFile)); err != nil {
			t.Errorf("migrated file missing: %v", err)
		}
		if _, err := os.Stat(filepath.Join(dir, m.File+".v1.bak")); err != nil {
			t.Errorf("backup missing: %v", err)
		}
		if _, err := os.Stat(filepath.Join(dir, m.File)); !os.IsNotExist(err) {
			t.Errorf("original %s still present after migration", m.File)
		}
	}
	// The corrupt file is left untouched for the operator to inspect.
	if _, err := os.Stat(filepath.Join(dir, "torn.json")); err != nil {
		t.Errorf("corrupt file was moved: %v", err)
	}
	// Idempotent re-run: only the corrupt file remains, still skipped.
	again, err := MigrateDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Migrated) != 0 || len(again.Skipped) != 1 {
		t.Errorf("re-run %+v, want nothing migrated", again)
	}
}

// FuzzArtifactV2 hammers the binary decoder: arbitrary bytes must never
// panic, and anything that decodes must re-encode to the exact input.
func FuzzArtifactV2(f *testing.F) {
	// Tiny models: every fuzz worker process re-runs this setup.
	cfg := DemoConfig{Dim: 64, GridSize: 8, TrainN: 1, Devices: 60, Seed: 3, OverkillBudget: 0.05}
	wa, err := TrainWaferArtifact(cfg, 1)
	if err != nil {
		f.Fatal(err)
	}
	oa, err := TrainOutlierArtifact(cfg, 1)
	if err != nil {
		f.Fatal(err)
	}
	for _, a := range []*Artifact{wa, oa} {
		data, err := a.EncodeV2()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		f.Add(data[:len(data)/2])
	}
	f.Add([]byte(artifactMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := DecodeArtifactV2(data)
		if err != nil {
			return
		}
		again, err := a.EncodeV2()
		if err != nil {
			t.Fatalf("decoded artifact failed to re-encode: %v", err)
		}
		if !bytes.Equal(data, again) {
			t.Fatalf("re-encode differs from accepted input (%d vs %d bytes)", len(data), len(again))
		}
	})
}

// BenchmarkArtifactEncodeDecode compares the v1 JSON and v2 binary codecs
// on a 10k-dimensional HDC wafer classifier, reporting encoded sizes.
func BenchmarkArtifactEncodeDecode(b *testing.B) {
	wcfg := wafer.DefaultConfig()
	wcfg.Size = 32
	train := wafer.GenerateDataset(4, wcfg, 1)
	cls := core.NewHDCWaferClassifier(10240, wcfg.Size, 3, 1)
	if err := cls.Fit(train); err != nil {
		b.Fatal(err)
	}
	a, err := NewArtifact(KindWaferHDC, "bench-wafer-hdc", 1, cls)
	if err != nil {
		b.Fatal(err)
	}
	jsonData, err := json.Marshal(a)
	if err != nil {
		b.Fatal(err)
	}
	av2, err := a.ToV2()
	if err != nil {
		b.Fatal(err)
	}
	binData, err := av2.EncodeV2()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("v1-json", func(b *testing.B) {
		b.ReportMetric(float64(len(jsonData)), "bytes")
		b.Run("encode", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := json.Marshal(a); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("decode", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var dec Artifact
				if err := json.Unmarshal(jsonData, &dec); err != nil {
					b.Fatal(err)
				}
				cls := &core.HDCWaferClassifier{}
				if err := json.Unmarshal(dec.Payload, cls); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
	b.Run("v2-binary", func(b *testing.B) {
		b.ReportMetric(float64(len(binData)), "bytes")
		b.Run("encode", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := av2.EncodeV2(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("decode", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dec, err := DecodeArtifactV2(binData)
				if err != nil {
					b.Fatal(err)
				}
				cls := &core.HDCWaferClassifier{}
				if err := cls.UnmarshalBinary(dec.Binary); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}
