package serve

import (
	"errors"
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/wire"
)

// primaryRegistry builds a registry holding the three fixture artifacts
// (two wafer versions + one outlier screen) and serves it for replication.
func primaryRegistry(t *testing.T) (*Registry, *RepServer) {
	t.Helper()
	w1, w2, o1 := testArtifacts(t)
	reg := NewRegistry()
	for _, a := range []*Artifact{w1, w2, o1} {
		if _, err := reg.Install(a); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := NewRepServer(reg, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	return reg, srv
}

// TestReplicationConverges pins the acceptance criterion: a replica with
// an empty store pulls everything, ends with a manifest identical to the
// primary's, serves the same live models, and persists artifacts a
// restart can reload. A second sync is a no-op.
func TestReplicationConverges(t *testing.T) {
	primary, srv := primaryRegistry(t)
	replica := NewRegistry()
	dir := t.TempDir()

	rep, err := ReplicateFrom(srv.Addr(), replica, dir, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Pulled) != 3 || rep.AlreadyHad != 0 || len(rep.Skipped) != 0 {
		t.Errorf("first sync %+v, want 3 pulled", rep)
	}
	if !reflect.DeepEqual(primary.Manifest(), replica.Manifest()) {
		t.Errorf("manifests diverge:\nprimary %+v\nreplica %+v", primary.Manifest(), replica.Manifest())
	}
	if !replica.Ready() {
		t.Fatal("replica not ready after sync")
	}
	if a, b := primary.Wafer().Meta, replica.Wafer().Meta; a != b {
		t.Errorf("live wafer model %+v, primary has %+v", b, a)
	}
	if a, b := primary.Outlier().Meta, replica.Outlier().Meta; a != b {
		t.Errorf("live outlier model %+v, primary has %+v", b, a)
	}

	// Idempotent re-sync: everything already present by hash.
	rep, err = ReplicateFrom(srv.Addr(), replica, dir, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Pulled) != 0 || rep.AlreadyHad != 3 {
		t.Errorf("re-sync %+v, want 0 pulled, 3 already present", rep)
	}

	// The persisted .itm files alone rebuild an equivalent serving node:
	// LoadDir installs the newest version per kind, and the live models
	// carry the primary's content hashes.
	restarted := NewRegistry()
	sum, err := restarted.LoadDir(dir)
	if err != nil || sum.Installed != 2 || len(sum.Skipped) != 0 {
		t.Fatalf("reload of persisted artifacts: %+v, %v", sum, err)
	}
	if a, b := primary.Wafer().Meta, restarted.Wafer().Meta; a != b {
		t.Errorf("restarted wafer model %+v, primary has %+v", b, a)
	}
	if a, b := primary.Outlier().Meta, restarted.Outlier().Meta; a != b {
		t.Errorf("restarted outlier model %+v, primary has %+v", b, a)
	}
}

// TestReplicationRefusesCorruption: a byte flipped in flight — at the
// artifact header, inside the stored hash, or anywhere in the hashed body
// — is refused with a typed error and installs nothing. The server-side
// hook corrupts after encoding but before framing, so the frame checksum
// passes and only the embedded content hash stands between the replica
// and a wrong model. After the corruption clears, the same replica
// converges.
func TestReplicationRefusesCorruption(t *testing.T) {
	_, srv := primaryRegistry(t)
	// Offsets spanning the file: magic, format version, stored hash,
	// body header, and (via negative indexing) the payload tail.
	for _, off := range []int{0, 4, 5, 20, 37, 50, -1, -17} {
		srv.CorruptNth = srv.served.Load() + 1
		srv.CorruptOffset = off
		replica := NewRegistry()
		_, err := ReplicateFrom(srv.Addr(), replica, "", 10*time.Second)
		if err == nil {
			t.Fatalf("offset %d: corrupted artifact accepted", off)
		}
		if !errors.Is(err, ErrHashMismatch) && !errors.Is(err, ErrBadArtifact) {
			t.Errorf("offset %d: err = %v, want ErrHashMismatch or ErrBadArtifact", off, err)
		}
		if len(replica.Manifest()) != 0 {
			t.Errorf("offset %d: corrupted sync installed %+v", off, replica.Manifest())
		}
	}
	// Corruption cleared: the replica recovers on the next sync.
	srv.CorruptNth = 0
	replica := NewRegistry()
	rep, err := ReplicateFrom(srv.Addr(), replica, "", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Pulled) != 3 || !replica.Ready() {
		t.Errorf("post-corruption sync %+v, replica ready=%v", rep, replica.Ready())
	}
}

// TestReplicationLyingPeer: a peer that serves a self-consistent artifact
// under the wrong hash (content and embedded hash agree, but it is not
// what was requested) is refused — the replica checks the artifact
// against the hash it asked for, not just against itself.
func TestReplicationLyingPeer(t *testing.T) {
	w1, _, o1 := testArtifacts(t)
	// A registry whose store maps w1's hash to the outlier artifact.
	reg := NewRegistry()
	if _, err := reg.Install(w1); err != nil {
		t.Fatal(err)
	}
	o2, err := o1.ToV2()
	if err != nil {
		t.Fatal(err)
	}
	reg.mu.Lock()
	reg.store[w1.Hash] = o2
	reg.mu.Unlock()
	srv, err := NewRepServer(reg, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	replica := NewRegistry()
	_, err = ReplicateFrom(srv.Addr(), replica, "", 10*time.Second)
	if !errors.Is(err, ErrHashMismatch) {
		t.Errorf("lying peer: err = %v, want ErrHashMismatch", err)
	}
	if len(replica.Manifest()) != 0 {
		t.Errorf("lying peer installed %+v", replica.Manifest())
	}
}

// TestReplicationUnknownHash: fetching a hash the peer does not have is a
// typed error reply, not a hang or a panic, and an unexpected frame type
// is answered the same way.
func TestReplicationUnknownHash(t *testing.T) {
	_, srv := primaryRegistry(t)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	if err := repProto.WriteFrame(conn, repFetch, wire.AppendString(nil, "no-such-hash")); err != nil {
		t.Fatal(err)
	}
	ft, payload, err := repProto.ReadFrame(conn, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if ft != repErrReply {
		t.Fatalf("frame type %d, want error reply", ft)
	}
	if len(payload) == 0 {
		t.Error("empty error reply")
	}
	// Unknown frame type: answered with an error reply too.
	if err := repProto.WriteFrame(conn, 99, nil); err != nil {
		t.Fatal(err)
	}
	if ft, _, err = repProto.ReadFrame(conn, 1<<20); err != nil || ft != repErrReply {
		t.Fatalf("unknown frame type: got frame %d, err %v; want error reply", ft, err)
	}
}
