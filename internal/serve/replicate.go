package serve

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// Registry replication: a serve node exposes its content-addressed
// artifact store over a small framed TCP protocol, and a replica converges
// by diffing manifests and pulling only the hashes it is missing. Every
// pulled artifact is verified twice before install — the frame carries a
// sha256 over the bytes in flight (wire.Proto), and the artifact itself
// embeds the blake2b content hash of its body — so neither a corrupted
// link nor a corrupted (or lying) peer can install wrong bytes: the worst
// outcome is a typed refusal.
//
// The protocol reuses the cluster wire framing (magic/version/type/
// BE-length/sha256) under its own magic, so a replication client dialing a
// cluster port (or vice versa) fails immediately with ErrBadMagic instead
// of misparsing frames.
//
// Frames:
//
//	manifestReq  ->  (empty payload)
//	manifest     <-  u32 count, then per entry: str kind, str name,
//	                 u32 version, str hash   (sorted, canonical)
//	fetch        ->  str hash
//	artifact     <-  raw itr-model/v2 file bytes (EncodeV2)
//	errReply     <-  str message
const (
	repMagic   = "ITRS"
	repVersion = 1

	repManifestReq = 1
	repManifest    = 2
	repFetch       = 3
	repArtifact    = 4
	repErrReply    = 5
)

// repProto is the replication wire protocol instance.
var repProto = wire.Proto{Magic: repMagic, Version: repVersion}

// ErrReplication marks a protocol-level replication failure (unexpected
// frame, peer-reported error, unknown hash).
var ErrReplication = errors.New("serve: replication protocol error")

// encodeManifest appends the canonical manifest payload.
func encodeManifest(entries []ModelMeta) []byte {
	b := wire.AppendU32(nil, uint32(len(entries)))
	for _, e := range entries {
		b = wire.AppendString(b, e.Kind)
		b = wire.AppendString(b, e.Name)
		b = wire.AppendU32(b, uint32(e.Version))
		b = wire.AppendString(b, e.Hash)
	}
	return b
}

// decodeManifest parses a manifest payload.
func decodeManifest(data []byte) ([]ModelMeta, error) {
	d := wire.NewDec(data)
	n := d.U32()
	if err := d.Err(); err != nil {
		return nil, err
	}
	entries := make([]ModelMeta, 0, min(int(n), 1024))
	for i := uint32(0); i < n; i++ {
		var e ModelMeta
		e.Kind = d.String()
		e.Name = d.String()
		e.Version = int(d.U32())
		e.Hash = d.String()
		if err := d.Err(); err != nil {
			return nil, err
		}
		entries = append(entries, e)
	}
	if err := d.Close(); err != nil {
		return nil, err
	}
	return entries, nil
}

// RepServer serves a registry's artifact store to replicas.
type RepServer struct {
	reg *Registry
	ln  net.Listener
	log *slog.Logger

	// CorruptNth is a test/chaos hook: if > 0, the Nth artifact served
	// (1-based, counted across all connections) has the byte at
	// CorruptOffset flipped after encoding but before framing (negative
	// offsets count from the end; out-of-range clamps to the last byte).
	// The frame checksum is computed over the corrupted bytes, so only
	// the embedded content hash can catch it — exactly the failure mode
	// content addressing exists for. Set before Serve; not synchronized
	// with mutation.
	CorruptNth    int64
	CorruptOffset int
	served        atomic.Int64

	mu     sync.Mutex
	closed bool
}

// NewRepServer listens on addr (e.g. "127.0.0.1:0") and serves reg's
// artifact store. Call Serve (usually in a goroutine) to accept replicas.
// A nil logger disables logging.
func NewRepServer(reg *Registry, addr string, log *slog.Logger) (*RepServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &RepServer{reg: reg, ln: ln, log: log}, nil
}

// Addr returns the bound listen address.
func (s *RepServer) Addr() string { return s.ln.Addr().String() }

// Serve accepts replica connections until the server is closed.
func (s *RepServer) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		go s.handle(conn)
	}
}

// Close stops accepting replicas. Idempotent.
func (s *RepServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	return s.ln.Close()
}

// handle answers one replica's frames until it disconnects.
func (s *RepServer) handle(conn net.Conn) {
	defer conn.Close()
	for {
		t, payload, err := repProto.ReadFrame(conn, wire.DefaultMaxFrame)
		if err != nil {
			if s.log != nil && err != io.EOF {
				s.log.Warn("replication: bad frame", slog.String("peer", conn.RemoteAddr().String()),
					slog.String("err", err.Error()))
			}
			return
		}
		switch t {
		case repManifestReq:
			err = repProto.WriteFrame(conn, repManifest, encodeManifest(s.reg.Manifest()))
		case repFetch:
			err = s.serveFetch(conn, payload)
		default:
			err = repProto.WriteFrame(conn, repErrReply,
				wire.AppendString(nil, fmt.Sprintf("unexpected frame type %d", t)))
		}
		if err != nil {
			return
		}
	}
}

// serveFetch answers one fetch frame with the requested artifact (or a
// peer error if the hash is unknown), applying the corruption hook.
func (s *RepServer) serveFetch(conn net.Conn, payload []byte) error {
	d := wire.NewDec(payload)
	hash := d.String()
	if err := d.Close(); err != nil {
		return repProto.WriteFrame(conn, repErrReply, wire.AppendString(nil, "malformed fetch"))
	}
	a := s.reg.ArtifactByHash(hash)
	if a == nil {
		return repProto.WriteFrame(conn, repErrReply,
			wire.AppendString(nil, fmt.Sprintf("unknown artifact hash %.12s", hash)))
	}
	data, err := a.EncodeV2()
	if err != nil {
		return repProto.WriteFrame(conn, repErrReply, wire.AppendString(nil, err.Error()))
	}
	if n := s.served.Add(1); s.CorruptNth > 0 && n == s.CorruptNth {
		off := s.CorruptOffset
		if off < 0 {
			off += len(data)
		}
		if off < 0 || off >= len(data) {
			off = len(data) - 1
		}
		data[off] ^= 0x40
		if s.log != nil {
			s.log.Warn("replication: corrupting served artifact (chaos hook)",
				slog.String("hash", hash[:12]), slog.Int("offset", off))
		}
	}
	return repProto.WriteFrame(conn, repArtifact, data)
}

// RepReport summarizes one ReplicateFrom run.
type RepReport struct {
	// Remote is the peer's manifest as received.
	Remote []ModelMeta
	// Pulled lists the artifacts fetched, verified and installed.
	Pulled []ModelMeta
	// AlreadyHad counts remote entries whose hash was already in the
	// local store (nothing fetched).
	AlreadyHad int
	// Skipped lists "kind/name/vN: reason" for entries that could not be
	// installed (e.g. a downgrade below the live version).
	Skipped []string
}

// ReplicateFrom dials a RepServer, diffs its manifest against the local
// registry's content store, and pulls every hash the replica is missing.
// Each pulled artifact must decode as a valid itr-model/v2 file whose body
// matches its embedded content hash AND whose hash equals the one
// requested; anything else — a flipped byte in flight, a corrupted store,
// a peer serving the wrong content under a hash — is refused with a typed
// error and nothing is installed from that reply. Verified artifacts
// install through the ordinary hot-swap path (lineage and downgrade rules
// included) and, when dir is non-empty, persist there as .itm files so a
// restart reloads them without re-syncing.
func ReplicateFrom(addr string, reg *Registry, dir string, timeout time.Duration) (RepReport, error) {
	var rep RepReport
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return rep, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))

	if err := repProto.WriteFrame(conn, repManifestReq, nil); err != nil {
		return rep, err
	}
	t, payload, err := repProto.ReadFrame(conn, wire.DefaultMaxFrame)
	if err != nil {
		return rep, err
	}
	if t != repManifest {
		return rep, fmt.Errorf("%w: expected manifest, got frame type %d", ErrReplication, t)
	}
	remote, err := decodeManifest(payload)
	if err != nil {
		return rep, fmt.Errorf("%w: bad manifest: %v", ErrReplication, err)
	}
	rep.Remote = remote

	have := map[string]bool{}
	for _, m := range reg.Manifest() {
		have[m.Hash] = true
	}
	// Pull in manifest order (kind, name, ascending version): installing
	// versions oldest-first keeps the per-version lineage intact without
	// tripping the downgrade guard on the way up.
	sort.Slice(remote, func(i, j int) bool {
		a, b := remote[i], remote[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Version < b.Version
	})
	for _, want := range remote {
		if have[want.Hash] {
			rep.AlreadyHad++
			continue
		}
		conn.SetDeadline(time.Now().Add(timeout))
		if err := repProto.WriteFrame(conn, repFetch, wire.AppendString(nil, want.Hash)); err != nil {
			return rep, err
		}
		t, payload, err := repProto.ReadFrame(conn, wire.DefaultMaxFrame)
		if err != nil {
			return rep, err
		}
		switch t {
		case repArtifact:
		case repErrReply:
			d := wire.NewDec(payload)
			msg := d.String()
			return rep, fmt.Errorf("%w: peer: %s", ErrReplication, msg)
		default:
			return rep, fmt.Errorf("%w: expected artifact, got frame type %d", ErrReplication, t)
		}
		a, err := DecodeArtifactV2(payload)
		if err != nil {
			return rep, fmt.Errorf("replicate %s/%s/v%d from %s: %w",
				want.Kind, want.Name, want.Version, addr, err)
		}
		if a.Hash != want.Hash {
			return rep, fmt.Errorf("%w: requested %.12s…, peer sent content %.12s…",
				ErrHashMismatch, want.Hash, a.Hash)
		}
		if _, err := reg.Install(a); err != nil {
			rep.Skipped = append(rep.Skipped,
				fmt.Sprintf("%s: %v", lineageKey(want.Kind, want.Name, want.Version), err))
			continue
		}
		if dir != "" {
			name := fmt.Sprintf("%s-%s-v%d.itm", a.Kind, a.Name, a.Version)
			if err := a.WriteFile(filepath.Join(dir, name)); err != nil {
				return rep, fmt.Errorf("replicate: persist %s: %w", name, err)
			}
		}
		rep.Pulled = append(rep.Pulled, ModelMeta{
			Kind: a.Kind, Name: a.Name, Version: a.Version, Hash: a.Hash,
		})
		have[a.Hash] = true
	}
	return rep, nil
}
