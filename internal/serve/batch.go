package serve

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Batching errors surfaced to handlers.
var (
	// ErrQueueFull means the bounded submission queue was full: the server
	// sheds the request (HTTP 429) instead of queueing unbounded work.
	ErrQueueFull = errors.New("serve: batch queue full")
	// ErrBatcherClosed means the batcher is draining or drained.
	ErrBatcherClosed = errors.New("serve: batcher closed")
)

// batchItem carries one request through the queue to its waiting caller.
type batchItem[Req, Resp any] struct {
	ctx context.Context
	req Req
	out chan Resp // buffered(1): the worker's send never blocks
}

// Batcher coalesces concurrent single-item submissions into batched calls
// of fn. A batch is flushed when it reaches MaxBatch items or when the
// flush window elapses after the first item arrived — the classic
// inference micro-batching tradeoff: tiny added latency (bounded by the
// window) for much better amortization of per-call model overhead.
//
// The submission queue is bounded; Do never blocks on a full queue but
// fails fast with ErrQueueFull so callers can shed load explicitly.
type Batcher[Req, Resp any] struct {
	fn       func([]Req) []Resp
	// PanicHandler, when set, converts a panic escaping fn into one response
	// that answers every item of the failed batch — the worker goroutine
	// survives and keeps batching. When nil, the panic propagates and kills
	// the process (a batch worker panic is otherwise unrecoverable). Set it
	// before the first Do.
	PanicHandler func(rec any) Resp
	maxBatch int
	window   time.Duration
	queue    chan batchItem[Req, Resp]
	stop     chan struct{}
	done     chan struct{}
	closed   atomic.Bool

	// Counters exported through the metrics snapshot.
	batches  atomic.Int64
	items    atomic.Int64
	maxSeen  atomic.Int64
	rejected atomic.Int64
}

// NewBatcher starts a batching worker. fn receives 1..maxBatch requests
// and must return exactly one response per request, index-aligned; it runs
// on the batcher's goroutine, so its internal parallelism is its own
// business (the serving handlers fan out over internal/parallel).
func NewBatcher[Req, Resp any](maxBatch, queueCap int, window time.Duration, fn func([]Req) []Resp) *Batcher[Req, Resp] {
	if maxBatch < 1 {
		maxBatch = 1
	}
	if queueCap < maxBatch {
		queueCap = maxBatch
	}
	if window <= 0 {
		window = time.Millisecond
	}
	b := &Batcher[Req, Resp]{
		fn:       fn,
		maxBatch: maxBatch,
		window:   window,
		queue:    make(chan batchItem[Req, Resp], queueCap),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go b.loop()
	return b
}

// Do submits one request and waits for its batched response. It returns
// ErrQueueFull immediately when the queue is saturated, ErrBatcherClosed
// during shutdown, or the context error if the caller's deadline expires
// first (the work item is then skipped at execution time).
func (b *Batcher[Req, Resp]) Do(ctx context.Context, req Req) (Resp, error) {
	var zero Resp
	if b.closed.Load() {
		return zero, ErrBatcherClosed
	}
	it := batchItem[Req, Resp]{ctx: ctx, req: req, out: make(chan Resp, 1)}
	select {
	case b.queue <- it:
	default:
		b.rejected.Add(1)
		return zero, ErrQueueFull
	}
	select {
	case resp := <-it.out:
		return resp, nil
	case <-ctx.Done():
		return zero, ctx.Err()
	case <-b.done:
		// Lost the race with Close after the drain finished; the item can
		// no longer be executed.
		select {
		case resp := <-it.out:
			return resp, nil
		default:
			return zero, ErrBatcherClosed
		}
	}
}

// Close stops accepting new work, drains every queued item through fn, and
// returns once the worker has exited — the graceful-shutdown half of the
// serving lifecycle.
func (b *Batcher[Req, Resp]) Close() {
	if b.closed.CompareAndSwap(false, true) {
		close(b.stop)
	}
	<-b.done
}

func (b *Batcher[Req, Resp]) loop() {
	defer close(b.done)
	for {
		select {
		case it := <-b.queue:
			b.collect(it)
		case <-b.stop:
			b.drain()
			return
		}
	}
}

// collect gathers a batch around the first item: more items until the
// batch is full or the flush window expires.
func (b *Batcher[Req, Resp]) collect(first batchItem[Req, Resp]) {
	batch := make([]batchItem[Req, Resp], 1, b.maxBatch)
	batch[0] = first
	timer := time.NewTimer(b.window)
	defer timer.Stop()
	for len(batch) < b.maxBatch {
		select {
		case it := <-b.queue:
			batch = append(batch, it)
		case <-timer.C:
			b.run(batch)
			return
		case <-b.stop:
			b.run(batch)
			return // loop() will drain the rest
		}
	}
	b.run(batch)
}

// drain executes everything still queued at shutdown so no accepted
// request is dropped silently.
func (b *Batcher[Req, Resp]) drain() {
	for {
		batch := make([]batchItem[Req, Resp], 0, b.maxBatch)
		for len(batch) < b.maxBatch {
			select {
			case it := <-b.queue:
				batch = append(batch, it)
			default:
				goto flush
			}
		}
	flush:
		if len(batch) == 0 {
			return
		}
		b.run(batch)
	}
}

// run executes one batch: items whose caller already gave up (context
// done) are filtered out, the rest go through fn in one call.
func (b *Batcher[Req, Resp]) run(batch []batchItem[Req, Resp]) {
	live := batch[:0]
	for _, it := range batch {
		if it.ctx.Err() == nil {
			live = append(live, it)
		}
	}
	if len(live) == 0 {
		return
	}
	reqs := make([]Req, len(live))
	for i, it := range live {
		reqs[i] = it.req
	}
	resps := b.call(reqs)
	b.batches.Add(1)
	b.items.Add(int64(len(live)))
	for {
		max := b.maxSeen.Load()
		if int64(len(live)) <= max || b.maxSeen.CompareAndSwap(max, int64(len(live))) {
			break
		}
	}
	for i, it := range live {
		it.out <- resps[i]
	}
}

// call invokes fn, converting an escaping panic (or a response slice of the
// wrong length, which would corrupt the index alignment) into PanicHandler
// responses for the whole batch.
func (b *Batcher[Req, Resp]) call(reqs []Req) (resps []Resp) {
	fill := func(rec any) []Resp {
		resp := b.PanicHandler(rec)
		out := make([]Resp, len(reqs))
		for i := range out {
			out[i] = resp
		}
		return out
	}
	defer func() {
		if rec := recover(); rec != nil {
			if b.PanicHandler == nil {
				panic(rec)
			}
			resps = fill(rec)
		}
	}()
	resps = b.fn(reqs)
	if len(resps) != len(reqs) {
		if b.PanicHandler == nil {
			panic(fmt.Sprintf("serve: batch fn returned %d responses for %d requests", len(resps), len(reqs)))
		}
		resps = fill(fmt.Errorf("batch fn returned %d responses for %d requests", len(resps), len(reqs)))
	}
	return resps
}

// Stats reports lifetime batching counters (for /debug/vars).
func (b *Batcher[Req, Resp]) Stats() (batches, items, maxBatch, rejected int64) {
	return b.batches.Load(), b.items.Load(), b.maxSeen.Load(), b.rejected.Load()
}
