package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/outlier"
)

// ModelMeta identifies one installed model version. Hash is the content
// identity of the artifact the model was installed from.
type ModelMeta struct {
	Kind    string `json:"kind"`
	Name    string `json:"name"`
	Version int    `json:"version"`
	Hash    string `json:"hash,omitempty"`
}

// lineageKey names one published version line.
func lineageKey(kind, name string, version int) string {
	return fmt.Sprintf("%s/%s/v%d", kind, name, version)
}

// WaferModel is an installed wafer-map classifier.
type WaferModel struct {
	Meta ModelMeta
	Cls  *core.HDCWaferClassifier
}

// OutlierModel is an installed outlier screen with calibrated thresholds.
type OutlierModel struct {
	Meta            ModelMeta
	Method          string
	Tests           int
	Scorer          outlier.Scorer
	RejectThreshold float64
	RetestThreshold float64
}

// Registry holds the live model for each serving slot. Slots are
// atomic.Pointers, so installs are lock-free hot swaps: requests in flight
// keep the model they started with, new requests see the new version, and
// no request ever observes a half-installed model.
//
// Alongside the live slots the registry keeps a content-addressed store of
// every artifact it has installed, keyed by content hash, plus the lineage
// map recording which hash each kind/name/version resolves to. The store
// is what replication serves (see replicate.go); the lineage map is what
// makes versions immutable — a second artifact claiming an already-bound
// kind/name/version with different content is refused as a fork.
type Registry struct {
	wafer   atomic.Pointer[WaferModel]
	outlier atomic.Pointer[OutlierModel]

	mu      sync.Mutex
	lineage map[string]string    // lineageKey -> content hash
	store   map[string]*Artifact // content hash -> canonical v2 artifact
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		lineage: map[string]string{},
		store:   map[string]*Artifact{},
	}
}

// Wafer returns the live wafer classifier, or nil if none is installed.
func (r *Registry) Wafer() *WaferModel { return r.wafer.Load() }

// Outlier returns the live outlier screen, or nil if none is installed.
func (r *Registry) Outlier() *OutlierModel { return r.outlier.Load() }

// Ready reports whether every serving slot has a model.
func (r *Registry) Ready() bool { return r.Wafer() != nil && r.Outlier() != nil }

// Models lists the installed model versions (stable order by kind).
func (r *Registry) Models() []ModelMeta {
	var out []ModelMeta
	if m := r.Outlier(); m != nil {
		out = append(out, m.Meta)
	}
	if m := r.Wafer(); m != nil {
		out = append(out, m.Meta)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// Install canonicalizes an artifact to its itr-model/v2 form, checks its
// lineage, decodes the model from the canonical bytes and atomically swaps
// it into its slot, returning the metadata of the model it replaced (zero
// ModelMeta if the slot was empty). Both schemas install through the same
// path — a v1 JSON artifact is converted first — so the served model is
// always exactly the state the content hash covers. Downgrades are
// rejected: an artifact with a version lower than the live one leaves the
// registry untouched. An artifact whose kind/name/version was already
// bound to different content is refused with ErrForkedLineage.
func (r *Registry) Install(a *Artifact) (prev ModelMeta, err error) {
	if err := a.Validate(); err != nil {
		return ModelMeta{}, err
	}
	v2, err := a.ToV2()
	if err != nil {
		return ModelMeta{}, fmt.Errorf("serve: install %s: %w", a.Kind, err)
	}
	key := lineageKey(v2.Kind, v2.Name, v2.Version)
	r.mu.Lock()
	if bound, ok := r.lineage[key]; ok && bound != v2.Hash {
		r.mu.Unlock()
		return ModelMeta{}, fmt.Errorf("%w: %s is %.8s…, refusing %.8s…",
			ErrForkedLineage, key, bound, v2.Hash)
	}
	r.mu.Unlock()
	meta := ModelMeta{Kind: v2.Kind, Name: v2.Name, Version: v2.Version, Hash: v2.Hash}
	switch v2.Kind {
	case KindWaferHDC:
		cls := &core.HDCWaferClassifier{}
		if err := cls.UnmarshalBinary(v2.Binary); err != nil {
			return ModelMeta{}, fmt.Errorf("serve: install %s: %w", v2.Kind, err)
		}
		m := &WaferModel{Meta: meta, Cls: cls}
		for {
			old := r.wafer.Load()
			if old != nil && old.Meta.Version > meta.Version {
				return old.Meta, fmt.Errorf("serve: refusing downgrade of %s from v%d to v%d",
					v2.Kind, old.Meta.Version, meta.Version)
			}
			if r.wafer.CompareAndSwap(old, m) {
				if old != nil {
					prev = old.Meta
				}
				r.record(key, v2)
				return prev, nil
			}
		}
	case KindOutlierScreen:
		m, err := decodeOutlierPayload(v2.Binary)
		if err != nil {
			return ModelMeta{}, fmt.Errorf("serve: install %s: %w", v2.Kind, err)
		}
		if m.Tests < 1 {
			return ModelMeta{}, fmt.Errorf("serve: outlier artifact declares %d tests", m.Tests)
		}
		if m.RetestThreshold > m.RejectThreshold {
			return ModelMeta{}, fmt.Errorf("serve: retest threshold %g above reject threshold %g",
				m.RetestThreshold, m.RejectThreshold)
		}
		m.Meta = meta
		for {
			old := r.outlier.Load()
			if old != nil && old.Meta.Version > meta.Version {
				return old.Meta, fmt.Errorf("serve: refusing downgrade of %s from v%d to v%d",
					v2.Kind, old.Meta.Version, meta.Version)
			}
			if r.outlier.CompareAndSwap(old, m) {
				if old != nil {
					prev = old.Meta
				}
				r.record(key, v2)
				return prev, nil
			}
		}
	}
	return ModelMeta{}, fmt.Errorf("serve: unknown artifact kind %q", v2.Kind)
}

// record binds a lineage key to its hash and retains the canonical
// artifact in the content store. Called only after a successful install,
// so the store never holds artifacts the registry refused.
func (r *Registry) record(key string, v2 *Artifact) {
	r.mu.Lock()
	r.lineage[key] = v2.Hash
	r.store[v2.Hash] = v2
	r.mu.Unlock()
}

// Manifest lists every artifact in the content store as kind/name/version/
// hash tuples, sorted. This is what a replica diffs against its own
// manifest to decide which hashes to pull.
func (r *Registry) Manifest() []ModelMeta {
	r.mu.Lock()
	out := make([]ModelMeta, 0, len(r.store))
	for h, a := range r.store {
		out = append(out, ModelMeta{Kind: a.Kind, Name: a.Name, Version: a.Version, Hash: h})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Version != b.Version {
			return a.Version < b.Version
		}
		return a.Hash < b.Hash
	})
	return out
}

// ArtifactByHash returns the stored canonical artifact for a content hash,
// or nil if the registry has never installed it.
func (r *Registry) ArtifactByHash(hash string) *Artifact {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.store[hash]
}

// LoadSummary reports the outcome of one directory scan.
type LoadSummary struct {
	// Installed counts the models swapped in (the newest version per kind).
	Installed int
	// Duplicates counts files whose content hash matched an artifact
	// already seen in this scan — byte-identical copies count once.
	Duplicates int
	// Artifacts lists "file: kind/name/vN hash" for every readable
	// artifact, duplicates included, so the scan log shows exactly which
	// content each file resolved to.
	Artifacts []string
	// Skipped lists "file: reason" for every artifact that could not be
	// read, parsed or installed. Skips never abort the scan — one corrupt
	// file must not take down the SIGHUP reload of every healthy model.
	Skipped []string
}

// artifactExt reports whether a directory entry looks like a model
// artifact: ".json" (itr-model/v1) or ".itm" (itr-model/v2 binary).
func artifactExt(name string) bool {
	return strings.HasSuffix(name, ".json") || strings.HasSuffix(name, ".itm")
}

// LoadDir installs the newest version of every kind found among the
// "*.json" (v1) and "*.itm" (v2) artifacts under dir. Files are deduped
// by content hash first — byte-identical artifacts under different names
// (or the same model in both schemas) count once. Older versions may stay
// in the directory: only the per-kind maximum is installed, so a SIGHUP
// rescan over an unchanged directory is an idempotent no-op rather than a
// downgrade error. Corrupt or unparseable files are skipped (and listed
// in the summary), not fatal; only an unreadable directory is an error.
func (r *Registry) LoadDir(dir string) (LoadSummary, error) {
	var sum LoadSummary
	entries, err := os.ReadDir(dir)
	if err != nil {
		return sum, err
	}
	newest := map[string]*Artifact{}
	seen := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !artifactExt(e.Name()) {
			continue
		}
		a, err := ReadArtifact(filepath.Join(dir, e.Name()))
		if err != nil {
			sum.Skipped = append(sum.Skipped, fmt.Sprintf("%s: %v", e.Name(), err))
			continue
		}
		sum.Artifacts = append(sum.Artifacts,
			fmt.Sprintf("%s: %s %.12s…", e.Name(), lineageKey(a.Kind, a.Name, a.Version), a.Hash))
		if seen[a.Hash] {
			sum.Duplicates++
			continue
		}
		seen[a.Hash] = true
		if best := newest[a.Kind]; best == nil || a.Version > best.Version {
			newest[a.Kind] = a
		}
	}
	// Deterministic install order for logs and error attribution.
	kinds := make([]string, 0, len(newest))
	for k := range newest {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		if _, err := r.Install(newest[k]); err != nil {
			sum.Skipped = append(sum.Skipped, fmt.Sprintf("%s: %v", k, err))
			continue
		}
		sum.Installed++
	}
	return sum, nil
}
