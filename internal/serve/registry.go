package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/outlier"
)

// ModelMeta identifies one installed model version.
type ModelMeta struct {
	Kind    string `json:"kind"`
	Name    string `json:"name"`
	Version int    `json:"version"`
}

// WaferModel is an installed wafer-map classifier.
type WaferModel struct {
	Meta ModelMeta
	Cls  *core.HDCWaferClassifier
}

// OutlierModel is an installed outlier screen with calibrated thresholds.
type OutlierModel struct {
	Meta            ModelMeta
	Method          string
	Tests           int
	Scorer          outlier.Scorer
	RejectThreshold float64
	RetestThreshold float64
}

// Registry holds the live model for each serving slot. Slots are
// atomic.Pointers, so installs are lock-free hot swaps: requests in flight
// keep the model they started with, new requests see the new version, and
// no request ever observes a half-installed model.
type Registry struct {
	wafer   atomic.Pointer[WaferModel]
	outlier atomic.Pointer[OutlierModel]
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Wafer returns the live wafer classifier, or nil if none is installed.
func (r *Registry) Wafer() *WaferModel { return r.wafer.Load() }

// Outlier returns the live outlier screen, or nil if none is installed.
func (r *Registry) Outlier() *OutlierModel { return r.outlier.Load() }

// Ready reports whether every serving slot has a model.
func (r *Registry) Ready() bool { return r.Wafer() != nil && r.Outlier() != nil }

// Models lists the installed model versions (stable order by kind).
func (r *Registry) Models() []ModelMeta {
	var out []ModelMeta
	if m := r.Outlier(); m != nil {
		out = append(out, m.Meta)
	}
	if m := r.Wafer(); m != nil {
		out = append(out, m.Meta)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// Install decodes an artifact and atomically swaps it into its slot,
// returning the metadata of the model it replaced (zero ModelMeta if the
// slot was empty). Downgrades are rejected: an artifact with a version
// lower than the live one leaves the registry untouched.
func (r *Registry) Install(a *Artifact) (prev ModelMeta, err error) {
	if err := a.Validate(); err != nil {
		return ModelMeta{}, err
	}
	meta := ModelMeta{Kind: a.Kind, Name: a.Name, Version: a.Version}
	switch a.Kind {
	case KindWaferHDC:
		cls := &core.HDCWaferClassifier{}
		if err := json.Unmarshal(a.Payload, cls); err != nil {
			return ModelMeta{}, fmt.Errorf("serve: install %s: %w", a.Kind, err)
		}
		m := &WaferModel{Meta: meta, Cls: cls}
		for {
			old := r.wafer.Load()
			if old != nil && old.Meta.Version > meta.Version {
				return old.Meta, fmt.Errorf("serve: refusing downgrade of %s from v%d to v%d",
					a.Kind, old.Meta.Version, meta.Version)
			}
			if r.wafer.CompareAndSwap(old, m) {
				if old != nil {
					prev = old.Meta
				}
				return prev, nil
			}
		}
	case KindOutlierScreen:
		var p OutlierPayload
		if err := json.Unmarshal(a.Payload, &p); err != nil {
			return ModelMeta{}, fmt.Errorf("serve: install %s: %w", a.Kind, err)
		}
		s, err := outlier.LoadScorer(p.Scorer)
		if err != nil {
			return ModelMeta{}, fmt.Errorf("serve: install %s: %w", a.Kind, err)
		}
		if p.Tests < 1 {
			return ModelMeta{}, fmt.Errorf("serve: outlier artifact declares %d tests", p.Tests)
		}
		if p.RetestThreshold > p.RejectThreshold {
			return ModelMeta{}, fmt.Errorf("serve: retest threshold %g above reject threshold %g",
				p.RetestThreshold, p.RejectThreshold)
		}
		m := &OutlierModel{
			Meta: meta, Method: p.Method, Tests: p.Tests, Scorer: s,
			RejectThreshold: p.RejectThreshold, RetestThreshold: p.RetestThreshold,
		}
		for {
			old := r.outlier.Load()
			if old != nil && old.Meta.Version > meta.Version {
				return old.Meta, fmt.Errorf("serve: refusing downgrade of %s from v%d to v%d",
					a.Kind, old.Meta.Version, meta.Version)
			}
			if r.outlier.CompareAndSwap(old, m) {
				if old != nil {
					prev = old.Meta
				}
				return prev, nil
			}
		}
	}
	return ModelMeta{}, fmt.Errorf("serve: unknown artifact kind %q", a.Kind)
}

// LoadSummary reports the outcome of one directory scan.
type LoadSummary struct {
	// Installed counts the models swapped in (the newest version per kind).
	Installed int
	// Skipped lists "file: reason" for every artifact that could not be
	// read, parsed or installed. Skips never abort the scan — one corrupt
	// file must not take down the SIGHUP reload of every healthy model.
	Skipped []string
}

// LoadDir installs the newest version of every kind found among the
// "*.json" artifacts under dir. Older files may stay in the directory:
// only the per-kind maximum is installed, so a SIGHUP rescan over an
// unchanged directory is an idempotent no-op rather than a downgrade
// error. Corrupt or unparseable files are skipped (and listed in the
// summary), not fatal; only an unreadable directory is an error.
func (r *Registry) LoadDir(dir string) (LoadSummary, error) {
	var sum LoadSummary
	entries, err := os.ReadDir(dir)
	if err != nil {
		return sum, err
	}
	newest := map[string]*Artifact{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		a, err := ReadArtifact(filepath.Join(dir, e.Name()))
		if err != nil {
			sum.Skipped = append(sum.Skipped, fmt.Sprintf("%s: %v", e.Name(), err))
			continue
		}
		if best := newest[a.Kind]; best == nil || a.Version > best.Version {
			newest[a.Kind] = a
		}
	}
	// Deterministic install order for logs and error attribution.
	kinds := make([]string, 0, len(newest))
	for k := range newest {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		if _, err := r.Install(newest[k]); err != nil {
			sum.Skipped = append(sum.Skipped, fmt.Sprintf("%s: %v", k, err))
			continue
		}
		sum.Installed++
	}
	return sum, nil
}
