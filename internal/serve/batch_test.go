package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBatcherCoalesces proves the point of micro-batching: concurrent
// submissions arrive at fn in batches, every caller still gets its own
// correct result.
func TestBatcherCoalesces(t *testing.T) {
	var batches atomic.Int64
	b := NewBatcher(8, 64, 20*time.Millisecond, func(xs []int) []int {
		batches.Add(1)
		out := make([]int, len(xs))
		for i, x := range xs {
			out[i] = 2 * x
		}
		return out
	})
	defer b.Close()

	const n = 32
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := b.Do(context.Background(), i)
			if err != nil {
				errs <- err
				return
			}
			if got != 2*i {
				errs <- errors.New("wrong batched result")
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := batches.Load(); got >= n {
		t.Errorf("%d batches for %d items: no coalescing happened", got, n)
	}
	nb, items, maxSeen, rejected := b.Stats()
	if items != n || nb != batches.Load() || maxSeen < 2 || rejected != 0 {
		t.Errorf("stats = %d batches / %d items / max %d / %d rejected", nb, items, maxSeen, rejected)
	}
}

// TestBatcherQueueFull pins the load-shedding contract: a saturated queue
// fails fast with ErrQueueFull instead of blocking.
func TestBatcherQueueFull(t *testing.T) {
	started := make(chan struct{}, 4)
	block := make(chan struct{})
	var once sync.Once
	unblock := func() { once.Do(func() { close(block) }) }
	b := NewBatcher(1, 1, time.Millisecond, func(xs []int) []int {
		select {
		case started <- struct{}{}:
		default: // drained batches after the test body must not block
		}
		<-block
		return xs
	})
	t.Cleanup(func() { unblock(); b.Close() })

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); b.Do(context.Background(), 1) }() //nolint:errcheck
	<-started                                                      // worker is now stuck in fn
	go func() { defer wg.Done(); b.Do(context.Background(), 2) }() //nolint:errcheck
	// Wait for item 2 to occupy the single queue slot, then the next
	// submission must shed immediately.
	deadline := time.After(2 * time.Second)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		_, err := b.Do(ctx, 3)
		cancel()
		if errors.Is(err, ErrQueueFull) {
			break
		}
		select {
		case <-deadline:
			t.Fatal("never observed ErrQueueFull")
		default:
		}
	}
	_, _, _, rejected := b.Stats()
	if rejected < 1 {
		t.Error("rejected counter not incremented")
	}
	unblock()
	wg.Wait()
}

// TestBatcherCloseDrains pins graceful shutdown: everything admitted
// before Close still gets its answer.
func TestBatcherCloseDrains(t *testing.T) {
	started := make(chan struct{}, 1)
	block := make(chan struct{})
	first := true
	// maxBatch 1 so the first lone item flushes immediately; fn runs on the
	// single worker goroutine, so `first` needs no synchronization.
	b := NewBatcher(1, 64, time.Millisecond, func(xs []int) []int {
		if first { // only the first batch blocks; drained batches run free
			first = false
			started <- struct{}{}
			<-block
		}
		return xs
	})
	const n = 10
	var wg sync.WaitGroup
	var answered atomic.Int64
	submit := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got, err := b.Do(context.Background(), i); err == nil && got == i {
				answered.Add(1)
			}
		}()
	}
	submit(0)
	<-started // worker is stuck in the first batch
	for i := 1; i <= n; i++ {
		submit(i)
	}
	// The queue is same-package visible: wait until all n items sit in it.
	for deadline := time.After(2 * time.Second); len(b.queue) < n; {
		select {
		case <-deadline:
			t.Fatalf("only %d of %d items enqueued", len(b.queue), n)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(block)
	b.Close() // must drain all n queued items through fn
	wg.Wait()
	if got := answered.Load(); got != n+1 {
		t.Errorf("answered %d of %d requests across Close", got, n+1)
	}
	if _, err := b.Do(context.Background(), 99); !errors.Is(err, ErrBatcherClosed) {
		t.Errorf("Do after Close = %v, want ErrBatcherClosed", err)
	}
}

// TestBatcherContextCancel: a caller whose context dies before the flush
// gets the context error, and the batch skips its work item.
func TestBatcherContextCancel(t *testing.T) {
	var executed atomic.Int64
	b := NewBatcher(8, 8, 100*time.Millisecond, func(xs []int) []int {
		executed.Add(int64(len(xs)))
		return xs
	})
	defer b.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := b.Do(ctx, 1)
		done <- err
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Do = %v, want context.Canceled", err)
	}
	b.Close() // force the pending flush
	if got := executed.Load(); got != 0 {
		t.Errorf("cancelled item still executed (%d)", got)
	}
}
