package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/wafer"
)

// BenchmarkServeWaferClassify quantifies the serving overhead: a direct
// library Predict against the full HTTP path (JSON decode, micro-batching,
// metrics, JSON encode). The batched path amortizes per-call overhead under
// parallel load, which is exactly the tradeoff the micro-batcher buys.
func BenchmarkServeWaferClassify(b *testing.B) {
	w1, _, o1 := testArtifacts(b)
	reg := NewRegistry()
	if _, err := reg.Install(w1); err != nil {
		b.Fatal(err)
	}
	if _, err := reg.Install(o1); err != nil {
		b.Fatal(err)
	}
	s := New(Config{Registry: reg, RequestTimeout: time.Minute})
	defer s.Close()

	wcfg := wafer.DefaultConfig()
	wcfg.Size = testCfg.GridSize
	m := test1Map(wcfg)
	body, err := json.Marshal(WaferClassifyRequest{Cells: cellsOf(m)})
	if err != nil {
		b.Fatal(err)
	}

	b.Run("direct", func(b *testing.B) {
		cls := reg.Wafer().Cls
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				cls.Predict(m)
			}
		})
	})

	b.Run("batched-http", func(b *testing.B) {
		h := s.Handler()
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("POST", epWaferClassify, bytes.NewReader(body)))
				if rec.Code != http.StatusOK {
					b.Errorf("status %d: %s", rec.Code, rec.Body.String())
					return
				}
			}
		})
	})
}
