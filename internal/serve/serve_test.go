package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/outlier"
	"repro/internal/wafer"
)

// testCfg keeps fixture training fast: the serving contract under test does
// not depend on model quality.
var testCfg = DemoConfig{Dim: 512, GridSize: 16, TrainN: 3, Devices: 200, Seed: 1, OverkillBudget: 0.05}

// fixtures trains the shared artifacts exactly once per test binary: two
// wafer-model versions (for hot-swap tests) and one outlier screen.
var fixtures = sync.OnceValues(func() (arts [3]*Artifact, err error) {
	if arts[0], err = TrainWaferArtifact(testCfg, 1); err != nil {
		return arts, err
	}
	if arts[1], err = TrainWaferArtifact(testCfg, 2); err != nil {
		return arts, err
	}
	arts[2], err = TrainOutlierArtifact(testCfg, 1)
	return arts, err
})

func testArtifacts(t testing.TB) (waferV1, waferV2, outlierV1 *Artifact) {
	t.Helper()
	arts, err := fixtures()
	if err != nil {
		t.Fatal(err)
	}
	return arts[0], arts[1], arts[2]
}

// newTestServer builds a Server over a fresh registry with the fixture
// models installed (unless cfg brings its own registry).
func newTestServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	if cfg.Registry == nil {
		w1, _, o1 := testArtifacts(t)
		reg := NewRegistry()
		if _, err := reg.Install(w1); err != nil {
			t.Fatal(err)
		}
		if _, err := reg.Install(o1); err != nil {
			t.Fatal(err)
		}
		cfg.Registry = reg
	}
	s := New(cfg)
	t.Cleanup(s.Close)
	return s
}

func cellsOf(m *wafer.Map) [][]uint8 {
	cells := make([][]uint8, m.Size)
	for r := 0; r < m.Size; r++ {
		cells[r] = make([]uint8, m.Size)
		for c := 0; c < m.Size; c++ {
			cells[r][c] = m.At(r, c)
		}
	}
	return cells
}

// doJSON drives the server's handler directly (no TCP) and returns the
// recorded response.
func doJSON(t testing.TB, h http.Handler, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(method, path, rd))
	return rec
}

func decodeAs[T any](t testing.TB, rec *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatalf("decode %q: %v", rec.Body.String(), err)
	}
	return v
}

// TestServeWaferClassifyBitIdentical is the core acceptance check: the HTTP
// path must agree bit-for-bit with a direct library call on the same model.
func TestServeWaferClassifyBitIdentical(t *testing.T) {
	s := newTestServer(t, Config{})
	wcfg := wafer.DefaultConfig()
	wcfg.Size = testCfg.GridSize
	test := wafer.GenerateDataset(2, wcfg, 7)
	cls := s.reg.Wafer().Cls
	for i, m := range test.Maps {
		rec := doJSON(t, s.Handler(), "POST", epWaferClassify, WaferClassifyRequest{Cells: cellsOf(m)})
		if rec.Code != http.StatusOK {
			t.Fatalf("map %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
		got := decodeAs[WaferClassifyResponse](t, rec)
		want := cls.Predict(m)
		if got.ClassID != want || got.Class != wafer.Class(want).String() {
			t.Errorf("map %d: HTTP = %d/%s, direct Predict = %d", i, got.ClassID, got.Class, want)
		}
		if got.ModelVersion != 1 {
			t.Errorf("map %d: model version %d, want 1", i, got.ModelVersion)
		}
	}
}

// TestServeOutlierScoreBitIdentical pins float64 bit-identity of the scoring
// path across JSON (Go's shortest-round-trip encoding makes this exact) and
// the consistency of the adaptive decision with the returned thresholds.
func TestServeOutlierScoreBitIdentical(t *testing.T) {
	s := newTestServer(t, Config{})
	model := s.reg.Outlier()
	lcfg := outlier.DefaultLotConfig()
	lcfg.Devices = 30
	lot := outlier.Synthesize(lcfg, 9)
	for i, x := range lot.X {
		rec := doJSON(t, s.Handler(), "POST", epOutlierScore, OutlierScoreRequest{X: x})
		if rec.Code != http.StatusOK {
			t.Fatalf("x %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
		got := decodeAs[OutlierScoreResponse](t, rec)
		want := model.Scorer.Score(x)
		if math.Float64bits(got.Score) != math.Float64bits(want) {
			t.Errorf("x %d: HTTP score %v, direct Score %v (must be bit-identical)", i, got.Score, want)
		}
		if got.Reject != (want > model.RejectThreshold) || got.Method != model.Method {
			t.Errorf("x %d: reject=%v method=%q inconsistent with model", i, got.Reject, got.Method)
		}

		dec := decodeAs[AdaptiveDecideResponse](t, doJSON(t, s.Handler(), "POST", epAdaptiveDecide, OutlierScoreRequest{X: x}))
		wantDec := DecisionContinue
		switch {
		case dec.Score > dec.RejectThreshold:
			wantDec = DecisionStop
		case dec.Score > dec.RetestThreshold:
			wantDec = DecisionRetest
		}
		if dec.Decision != wantDec || math.Float64bits(dec.Score) != math.Float64bits(want) {
			t.Errorf("x %d: decision %q (score %v), want %q", i, dec.Decision, dec.Score, wantDec)
		}
	}
}

// TestServeEndToEndTCP runs one full round over a real listener: the wire
// path (chunking, headers, server goroutines) must not change any answer.
func TestServeEndToEndTCP(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + epHealthz)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}

	wcfg := wafer.DefaultConfig()
	wcfg.Size = testCfg.GridSize
	m := test1Map(wcfg)
	data, _ := json.Marshal(WaferClassifyRequest{Cells: cellsOf(m)})
	resp, err = http.Post(ts.URL+epWaferClassify, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var got WaferClassifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if want := s.reg.Wafer().Cls.Predict(m); got.ClassID != want {
		t.Errorf("TCP classify = %d, direct = %d", got.ClassID, want)
	}
}

func test1Map(cfg wafer.Config) *wafer.Map {
	return wafer.GenerateDataset(1, cfg, 11).Maps[0]
}

func TestServeValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	for name, tc := range map[string]struct {
		method, path, body string
		want               int
	}{
		"bad json":        {"POST", epWaferClassify, `{`, http.StatusBadRequest},
		"unknown field":   {"POST", epWaferClassify, `{"grid":[[1]]}`, http.StatusBadRequest},
		"trailing data":   {"POST", epWaferClassify, `{"cells":[[1]]}{}`, http.StatusBadRequest},
		"empty grid":      {"POST", epWaferClassify, `{"cells":[]}`, http.StatusBadRequest},
		"ragged grid":     {"POST", epWaferClassify, `{"cells":[[1,1],[1]]}`, http.StatusBadRequest},
		"bad cell value":  {"POST", epWaferClassify, `{"cells":[[1,7],[1,1]]}`, http.StatusBadRequest},
		"wrong grid size": {"POST", epWaferClassify, `{"cells":[[1,1],[1,1]]}`, http.StatusBadRequest},
		"empty x":         {"POST", epOutlierScore, `{"x":[]}`, http.StatusBadRequest},
		"wrong x length":  {"POST", epOutlierScore, `{"x":[1,2,3]}`, http.StatusBadRequest},
		"wrong method":    {"GET", epWaferClassify, ``, http.StatusMethodNotAllowed},
		"unknown path":    {"POST", "/v1/nope", `{}`, http.StatusNotFound},
	} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body)))
		if rec.Code != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", name, rec.Code, tc.want, rec.Body.String())
		}
	}
}

// TestServeNoModel: an empty registry answers 503 on inference and readyz,
// but stays healthy at the process level.
func TestServeNoModel(t *testing.T) {
	s := newTestServer(t, Config{Registry: NewRegistry()})
	h := s.Handler()
	if rec := doJSON(t, h, "POST", epWaferClassify, WaferClassifyRequest{Cells: [][]uint8{{1}}}); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("classify without model: %d, want 503", rec.Code)
	}
	if rec := doJSON(t, h, "POST", epOutlierScore, OutlierScoreRequest{X: []float64{1}}); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("score without model: %d, want 503", rec.Code)
	}
	if rec := doJSON(t, h, "GET", epReadyz, nil); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz without models: %d, want 503", rec.Code)
	}
	if rec := doJSON(t, h, "GET", epHealthz, nil); rec.Code != http.StatusOK {
		t.Errorf("healthz: %d, want 200", rec.Code)
	}
}

func TestServeReadyAndModels(t *testing.T) {
	s := newTestServer(t, Config{})
	if rec := doJSON(t, s.Handler(), "GET", epReadyz, nil); rec.Code != http.StatusOK {
		t.Errorf("readyz with both models: %d, want 200", rec.Code)
	}
	got := decodeAs[ModelsResponse](t, doJSON(t, s.Handler(), "GET", epModels, nil))
	if len(got.Models) != 2 || got.Models[0].Kind != KindOutlierScreen || got.Models[1].Kind != KindWaferHDC {
		t.Errorf("models = %+v, want outlier-screen then wafer-hdc", got.Models)
	}
}

// endpointVars digs one endpoint's stats out of the /debug/vars dump. With
// several live Metrics (servers of other tests) the itrserve var nests per
// server, so search one level deep too.
func endpointVars(t *testing.T, vars map[string]any, ep string) map[string]any {
	t.Helper()
	itr, ok := vars["itrserve"].(map[string]any)
	if !ok {
		t.Fatalf("/debug/vars has no itrserve object: %v", vars["itrserve"])
	}
	if s, ok := itr[ep].(map[string]any); ok {
		return s
	}
	for _, v := range itr {
		if m, ok := v.(map[string]any); ok {
			if s, ok := m[ep].(map[string]any); ok {
				return s
			}
		}
	}
	t.Fatalf("no stats for %s in itrserve vars", ep)
	return nil
}

// TestServeMetricsExposed drives traffic (including one error) and checks
// the per-endpoint counters and latency histogram on /debug/vars.
func TestServeMetricsExposed(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	wcfg := wafer.DefaultConfig()
	wcfg.Size = testCfg.GridSize
	m := test1Map(wcfg)
	const good = 5
	for i := 0; i < good; i++ {
		if rec := doJSON(t, h, "POST", epWaferClassify, WaferClassifyRequest{Cells: cellsOf(m)}); rec.Code != http.StatusOK {
			t.Fatalf("classify %d: %d", i, rec.Code)
		}
	}
	doJSON(t, h, "POST", epWaferClassify, WaferClassifyRequest{Cells: [][]uint8{{1}}}) // 400

	rec := doJSON(t, h, "GET", "/debug/vars", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/vars: %d", rec.Code)
	}
	var vars map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatalf("vars not JSON: %v", err)
	}
	ep := endpointVars(t, vars, epWaferClassify)
	if req := ep["requests"].(float64); req < good+1 {
		t.Errorf("requests = %v, want >= %d", req, good+1)
	}
	if errs := ep["errors"].(float64); errs < 1 {
		t.Errorf("errors = %v, want >= 1", errs)
	}
	lat, ok := ep["latency"].(map[string]any)
	if !ok {
		t.Fatal("no latency object")
	}
	if cnt := lat["count"].(float64); cnt < good+1 {
		t.Errorf("latency count = %v, want >= %d", cnt, good+1)
	}
	if buckets, ok := lat["log2us_buckets"].([]any); !ok || len(buckets) != latBuckets {
		t.Errorf("log2us_buckets missing or wrong length")
	}
	for _, q := range []string{"p50_us", "p90_us", "p99_us"} {
		if v, ok := lat[q].(float64); !ok || v <= 0 {
			t.Errorf("%s = %v, want > 0", q, lat[q])
		}
	}
}

func TestRegistryHotSwapAndDowngrade(t *testing.T) {
	w1, w2, _ := testArtifacts(t)
	reg := NewRegistry()
	if _, err := reg.Install(w1); err != nil {
		t.Fatal(err)
	}
	prev, err := reg.Install(w2)
	if err != nil {
		t.Fatal(err)
	}
	if prev.Version != 1 || reg.Wafer().Meta.Version != 2 {
		t.Fatalf("upgrade: prev v%d live v%d, want v1 -> v2", prev.Version, reg.Wafer().Meta.Version)
	}
	if _, err := reg.Install(w1); err == nil {
		t.Error("downgrade v2 -> v1 must be rejected")
	}
	if reg.Wafer().Meta.Version != 2 {
		t.Errorf("rejected downgrade changed the live model to v%d", reg.Wafer().Meta.Version)
	}
}

func TestRegistryLoadDir(t *testing.T) {
	w1, w2, o1 := testArtifacts(t)
	dir := t.TempDir()
	// Deliberately misleading file names: only versions inside count.
	for name, a := range map[string]*Artifact{"z-old.json": w1, "a-new.json": w2, "screen.json": o1} {
		if err := a.WriteFile(filepath.Join(dir, name)); err != nil {
			t.Fatal(err)
		}
	}
	reg := NewRegistry()
	sum, err := reg.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Installed != 2 || len(sum.Skipped) != 0 {
		t.Errorf("summary %+v, want 2 installed (newest version per kind), 0 skipped", sum)
	}
	if v := reg.Wafer().Meta.Version; v != 2 {
		t.Errorf("live wafer model v%d, want highest version 2", v)
	}
	if reg.Outlier() == nil || !reg.Ready() {
		t.Error("outlier screen not installed / registry not ready")
	}
	// A rescan over the unchanged directory (the SIGHUP path) must be an
	// idempotent no-op, not a downgrade error on the stale v1 file.
	if sum, err = reg.LoadDir(dir); err != nil || sum.Installed != 2 {
		t.Errorf("rescan: %+v, err %v; want 2 installed, nil", sum, err)
	}
	if v := reg.Wafer().Meta.Version; v != 2 {
		t.Errorf("rescan changed the live wafer model to v%v", reg.Wafer().Meta.Version)
	}
}

// TestRegistryLoadDirSkipsCorrupt pins the scan's fault isolation: corrupt
// files alongside healthy artifacts are skipped and reported, never fatal —
// a half-written upload must not take down a SIGHUP reload.
func TestRegistryLoadDirSkipsCorrupt(t *testing.T) {
	w1, w2, o1 := testArtifacts(t)
	dir := t.TempDir()
	for name, a := range map[string]*Artifact{"w1.json": w1, "w2.json": w2, "o1.json": o1} {
		if err := a.WriteFile(filepath.Join(dir, name)); err != nil {
			t.Fatal(err)
		}
	}
	corrupt := map[string]string{
		"torn.json":    `{"schema": "itr-model/v1", "kind": "wafer-`, // truncated mid-write
		"garbage.json": "\x00\x01\x02 not json at all",
		"badkind.json": `{"schema": "itr-model/v1", "kind": "mystery", "name": "x", "version": 9, "payload": {}}`,
	}
	for name, body := range corrupt {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Non-.json files are not artifacts and must be ignored outright.
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("not a model"), 0o644); err != nil {
		t.Fatal(err)
	}

	reg := NewRegistry()
	sum, err := reg.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Installed != 2 {
		t.Errorf("installed %d models, want 2 despite corrupt files", sum.Installed)
	}
	if len(sum.Skipped) != len(corrupt) {
		t.Errorf("skipped %v, want one entry per corrupt file (%d)", sum.Skipped, len(corrupt))
	}
	for _, s := range sum.Skipped {
		name := s[:strings.IndexByte(s, ':')]
		if _, ok := corrupt[name]; !ok {
			t.Errorf("skip entry %q does not name a corrupt file", s)
		}
	}
	if !reg.Ready() || reg.Wafer().Meta.Version != 2 {
		t.Errorf("healthy artifacts not installed around the corrupt ones: ready=%v", reg.Ready())
	}
	// A directory that cannot be read at all is still a hard error.
	if _, err := reg.LoadDir(filepath.Join(dir, "missing")); err == nil {
		t.Error("LoadDir on a missing directory must fail")
	}
}

func TestArtifactValidation(t *testing.T) {
	w1, _, _ := testArtifacts(t)
	for name, mutate := range map[string]func(a *Artifact){
		"wrong schema":  func(a *Artifact) { a.Schema = "itr-model/v0" },
		"unknown kind":  func(a *Artifact) { a.Kind = "mystery" },
		"zero version":  func(a *Artifact) { a.Version = 0 },
		"empty payload": func(a *Artifact) { a.Payload = nil },
	} {
		bad := *w1
		mutate(&bad)
		if err := bad.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken artifact", name)
		}
		if _, err := NewRegistry().Install(&bad); err == nil {
			t.Errorf("%s: Install accepted a broken artifact", name)
		}
	}
	// Round trip through the file format.
	path := filepath.Join(t.TempDir(), "m.json")
	if err := w1.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	// WriteFile indents, so compare payloads modulo whitespace.
	var a, b bytes.Buffer
	if json.Compact(&a, back.Payload) != nil || json.Compact(&b, w1.Payload) != nil {
		t.Fatal("payload is not valid JSON")
	}
	if back.Kind != w1.Kind || back.Version != w1.Version || !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("artifact changed across WriteFile/ReadArtifact")
	}
}

// TestServeShutdownDrain: requests racing Server.Close either complete
// normally or get a clean 503 — never a hang, never a dropped connection.
func TestServeShutdownDrain(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	wcfg := wafer.DefaultConfig()
	wcfg.Size = testCfg.GridSize
	body, _ := json.Marshal(WaferClassifyRequest{Cells: cellsOf(test1Map(wcfg))})

	const n = 64
	var wg sync.WaitGroup
	statuses := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("POST", epWaferClassify, bytes.NewReader(body)))
			statuses[i] = rec.Code
		}(i)
	}
	s.Close()
	wg.Wait()
	for i, code := range statuses {
		if code != http.StatusOK && code != http.StatusServiceUnavailable && code != http.StatusTooManyRequests {
			t.Errorf("request %d: status %d across shutdown, want 200/503/429", i, code)
		}
	}
}

// TestServeLoadConcurrent is the acceptance load test: >= 1k concurrent
// requests against a deliberately tiny queue, with a model hot swap racing
// the storm. Every request must be answered 200 or shed with 429 — nothing
// dropped, no other status, and the metrics must account for all of them.
// Run under -race (the CI default for this repo).
func TestServeLoadConcurrent(t *testing.T) {
	w1, w2, o1 := testArtifacts(t)
	reg := NewRegistry()
	if _, err := reg.Install(w1); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Install(o1); err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{
		Registry:       reg,
		MaxBatch:       4,
		QueueCap:       4,
		MaxInFlight:    48,
		FlushWindow:    200 * time.Microsecond,
		RequestTimeout: 30 * time.Second,
	})
	h := s.Handler()

	wcfg := wafer.DefaultConfig()
	wcfg.Size = testCfg.GridSize
	classifyBody, _ := json.Marshal(WaferClassifyRequest{Cells: cellsOf(test1Map(wcfg))})
	lcfg := outlier.DefaultLotConfig()
	lcfg.Devices = 10
	scoreBody, _ := json.Marshal(OutlierScoreRequest{X: outlier.Synthesize(lcfg, 3).X[0]})

	const n = 1200
	var (
		wg        sync.WaitGroup
		ok200     atomic.Int64
		shed429   atomic.Int64
		other     atomic.Int64
		badAnswer atomic.Int64
	)
	endpoints := []struct {
		path string
		body []byte
	}{
		{epWaferClassify, classifyBody},
		{epOutlierScore, scoreBody},
		{epAdaptiveDecide, scoreBody},
	}
	// Hot swap the wafer model to v2 mid-storm.
	swap := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-swap
		if _, err := reg.Install(w2); err != nil {
			t.Errorf("hot swap during load: %v", err)
		}
	}()
	for i := 0; i < n; i++ {
		if i == n/2 {
			close(swap)
		}
		ep := endpoints[i%len(endpoints)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("POST", ep.path, bytes.NewReader(ep.body)))
			switch rec.Code {
			case http.StatusOK:
				ok200.Add(1)
				if ep.path == epWaferClassify {
					var resp WaferClassifyResponse
					if json.Unmarshal(rec.Body.Bytes(), &resp) != nil ||
						(resp.ModelVersion != 1 && resp.ModelVersion != 2) {
						badAnswer.Add(1)
					}
				}
			case http.StatusTooManyRequests:
				shed429.Add(1)
			default:
				other.Add(1)
				t.Errorf("unexpected status %d: %s", rec.Code, rec.Body.String())
			}
		}()
	}
	wg.Wait()

	if got := ok200.Load() + shed429.Load() + other.Load(); got != n {
		t.Errorf("answered %d of %d requests — some were dropped silently", got, n)
	}
	if badAnswer.Load() != 0 {
		t.Errorf("%d classify answers had an invalid body or model version", badAnswer.Load())
	}
	if ok200.Load() == 0 {
		t.Error("no request succeeded under load")
	}
	t.Logf("load: %d ok, %d shed (429)", ok200.Load(), shed429.Load())

	// The metrics must account for every single request.
	snap := s.Metrics().Snapshot()
	var total, shed int64
	for _, ep := range endpoints {
		stats := snap[ep.path].(map[string]any)
		total += stats["requests"].(int64)
		shed += stats["shed"].(int64)
	}
	if total != n {
		t.Errorf("metrics saw %d requests, want %d", total, n)
	}
	if shed != shed429.Load() {
		t.Errorf("metrics shed %d != observed 429s %d", shed, shed429.Load())
	}
	if inflight := snap["inflight"].(int64); inflight != 0 {
		t.Errorf("inflight = %d after the storm, want 0", inflight)
	}
}

// ---------------------------------------------------------------------------
// Panic isolation.

// panicScorer is an installed model whose inference blows up: the per-item
// recovery in scoreBatch must convert that into a 500 for the one request,
// not a dead batch worker (which would hang every later request) or a dead
// process.
type panicScorer struct{}

func (panicScorer) Fit([][]float64) error   { return nil }
func (panicScorer) Score([]float64) float64 { panic("scorer poisoned") }

// TestServePanicRecovery hammers panicking models from many goroutines
// (meaningful under -race): every request gets an answer, every answer is a
// 500, the panics counter accounts for them, and the server still serves
// healthy traffic afterwards.
func TestServePanicRecovery(t *testing.T) {
	_, _, o1 := testArtifacts(t)
	reg := NewRegistry()
	// A zero-value classifier panics in GridSize() before the per-item
	// fan-out — the batch-level PanicHandler path.
	reg.wafer.Store(&WaferModel{
		Meta: ModelMeta{Kind: KindWaferHDC, Name: "broken", Version: 1},
		Cls:  &core.HDCWaferClassifier{},
	})
	// A poisoned scorer panics per item inside parallel.For — the per-item
	// recovery path.
	reg.outlier.Store(&OutlierModel{
		Meta:   ModelMeta{Kind: KindOutlierScreen, Name: "broken", Version: 1},
		Method: "poisoned", Tests: 3, Scorer: panicScorer{},
	})
	s := newTestServer(t, Config{Registry: reg, MaxBatch: 4, QueueCap: 256, MaxInFlight: 256})

	grid := make([][]uint8, 16)
	for r := range grid {
		grid[r] = make([]uint8, 16)
	}
	const n = 40
	var wg sync.WaitGroup
	codes := make([]int, n)
	bodies := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var rec *httptest.ResponseRecorder
			if i%2 == 0 {
				rec = doJSON(t, s.Handler(), "POST", epWaferClassify, WaferClassifyRequest{Cells: grid})
			} else {
				rec = doJSON(t, s.Handler(), "POST", epOutlierScore, OutlierScoreRequest{X: []float64{1, 2, 3}})
			}
			codes[i], bodies[i] = rec.Code, rec.Body.String()
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusInternalServerError {
			t.Fatalf("request %d: status %d (%s), want 500", i, code, bodies[i])
		}
		if !strings.Contains(bodies[i], "panicked") {
			t.Errorf("request %d: body %q does not name the panic", i, bodies[i])
		}
	}
	// The score path panics per item (n/2 requests); the wafer path panics
	// per batch, so its count depends on coalescing — at least one.
	if p := s.Metrics().Panics(); p < n/2+1 {
		t.Errorf("panics counter = %d, want >= %d", p, n/2+1)
	}
	if snap := s.Metrics().Snapshot(); snap["panics"].(int64) < n/2+1 {
		t.Error("/debug/vars snapshot does not expose the panics counter")
	}

	// The batch workers survived: swapping in a healthy model heals the
	// endpoint with no restart.
	if _, err := reg.Install(o1); err != nil {
		t.Fatal(err)
	}
	rec := doJSON(t, s.Handler(), "POST", epOutlierScore,
		OutlierScoreRequest{X: make([]float64, reg.Outlier().Tests)})
	if rec.Code != http.StatusOK {
		t.Fatalf("after heal: status %d (%s), want 200", rec.Code, rec.Body.String())
	}
}

// TestServeHandlerPanicRecovery pins the middleware layer: a handler that
// panics outright answers 500 (unless it already committed a status) and
// the server's connection goroutine survives.
func TestServeHandlerPanicRecovery(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.instrument(epHealthz, func(w http.ResponseWriter, r *http.Request) {
		panic("handler exploded")
	})
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", epHealthz, nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	if s.Metrics().Panics() == 0 {
		t.Error("handler panic not counted")
	}

	// A panic after the handler committed a response must not try to write
	// a second status line.
	before := s.Metrics().Panics()
	h = s.instrument(epHealthz, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		panic("late explosion")
	})
	rec = httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", epHealthz, nil))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("committed status rewritten to %d", rec.Code)
	}
	if s.Metrics().Panics() != before+1 {
		t.Error("late handler panic not counted")
	}
}
