package dft

import (
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/sim"
)

func TestSelectSkipsIO(t *testing.T) {
	n := circuit.ArrayMultiplier(4)
	plan := SelectTestPoints(n, 5, 5)
	if len(plan.Observe) != 5 || len(plan.Control) != 5 {
		t.Fatalf("plan sizes %d/%d", len(plan.Observe), len(plan.Control))
	}
	isPO := map[int]bool{}
	for _, po := range n.POs {
		isPO[po] = true
	}
	for _, id := range plan.Observe {
		g := n.Gates[id]
		if g.Type == circuit.Input || isPO[id] {
			t.Errorf("observation point on PI/PO %s", g.Name)
		}
	}
	for _, cp := range plan.Control {
		if n.Gates[cp.Gate].Type == circuit.Input {
			t.Errorf("control point on PI")
		}
	}
}

func TestApplyPreservesFunction(t *testing.T) {
	// With control inputs at their neutral values, the transformed circuit
	// must compute the original function on the original outputs.
	for _, orig := range []*circuit.Netlist{
		circuit.MustC17(),
		circuit.RippleAdder(5),
		circuit.Random(10, 120, 3),
	} {
		tp, plan, err := Insert(orig, 3, 3)
		if err != nil {
			t.Fatalf("%s: %v", orig.Name, err)
		}
		sOrig, err := sim.New(orig)
		if err != nil {
			t.Fatal(err)
		}
		sTP, err := sim.New(tp)
		if err != nil {
			t.Fatal(err)
		}
		neutral := NonControllingInputs(tp, plan)
		idxTP := tp.InputIndex()
		rng := rand.New(rand.NewSource(4))
		for trial := 0; trial < 64; trial++ {
			in := make([]bool, len(orig.PIs))
			for i := range in {
				in[i] = rng.Intn(2) == 1
			}
			// Map original inputs by name into the transformed netlist.
			tpIn := append([]bool(nil), neutral...)
			for i, pi := range orig.PIs {
				g, ok := tp.GateByName(orig.Gates[pi].Name)
				if !ok {
					t.Fatalf("input %s lost", orig.Gates[pi].Name)
				}
				tpIn[idxTP[g.ID]] = in[i]
			}
			want := sOrig.RunPattern(in)
			got := sTP.RunPattern(tpIn)
			// The transformed netlist's first len(orig.POs) outputs are the
			// original ones (marked first by Apply).
			for o := range want {
				if got[o] != want[o] {
					t.Fatalf("%s trial %d: output %d changed under neutral control", orig.Name, trial, o)
				}
			}
		}
	}
}

func TestControlForcing(t *testing.T) {
	// Asserting a control input must force the spliced net.
	orig := circuit.ArrayMultiplier(4)
	tp, plan, err := Insert(orig, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(tp)
	if err != nil {
		t.Fatal(err)
	}
	idx := tp.InputIndex()
	rng := rand.New(rand.NewSource(9))
	for i, cp := range plan.Control {
		cpGate, _ := tp.GateByName(nameOfCP(i))
		tpGate, _ := tp.GateByName(orig.Gates[cp.Gate].Name + "_tp")
		forced := cp.Kind == ForceOne
		for trial := 0; trial < 16; trial++ {
			in := make([]bool, len(tp.PIs))
			for j := range in {
				in[j] = rng.Intn(2) == 1
			}
			in[idx[cpGate.ID]] = forced // assert the controlling value
			s.RunPattern(in)
			if got := s.Value(tpGate.ID)&1 == 1; got != forced {
				t.Fatalf("control point %d did not force net to %v", i, forced)
			}
		}
	}
}

func nameOfCP(i int) string { return "cp" + string(rune('0'+i)) }

func TestTestPointsImproveRandomCoverage(t *testing.T) {
	// The headline property: on a circuit with poor random testability,
	// test points raise random-pattern fault coverage of the original
	// fault sites.
	orig := circuit.Comparator(16) // wide AND tree: terrible observability
	tp, _, err := Insert(orig, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	cov := func(c *circuit.Netlist) float64 {
		fsim, err := fault.NewSimulator(c)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(5))
		p := logic.NewPatternSet(len(c.PIs), 128)
		p.RandFill(rng.Uint64)
		return fsim.Run(p, fault.Universe(c)).Coverage
	}
	before, after := cov(orig), cov(tp)
	if after <= before {
		t.Errorf("test points did not improve random coverage: %.3f -> %.3f", before, after)
	}
}

func TestApplyValidatesPlan(t *testing.T) {
	n := circuit.MustC17()
	if _, err := Apply(n, Plan{Observe: []int{9999}}); err == nil {
		t.Error("out-of-range observation point must fail")
	}
	if _, err := Apply(n, Plan{Control: []ControlPoint{{Gate: -1}}}); err == nil {
		t.Error("out-of-range control point must fail")
	}
}

func TestInsertZeroPointsIsIdentity(t *testing.T) {
	orig := circuit.MustC17()
	tp, plan, err := Insert(orig, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Observe)+len(plan.Control) != 0 {
		t.Fatal("empty plan expected")
	}
	if tp.NumLogicGates() != orig.NumLogicGates() || len(tp.PIs) != len(orig.PIs) {
		t.Error("zero-point insertion changed the netlist")
	}
}
