// Package dft implements design-for-testability transformations:
// SCOAP-guided test-point insertion. Observation points expose
// hard-to-observe internal nets as extra pseudo-outputs; control points
// inject an AND/OR gate driven by an extra pseudo-input to fix
// hard-to-control nets. Both are the classical levers the survey's
// intelligent-test thread tunes (experiment T8 quantifies the
// coverage/pattern-count payoff).
package dft

import (
	"fmt"
	"sort"

	"repro/internal/circuit"
)

// Plan lists the chosen test points on the original netlist.
type Plan struct {
	Observe []int // gate IDs exposed as observation points
	Control []ControlPoint
}

// ControlKind selects the forcing polarity of a control point.
type ControlKind uint8

// Control point kinds: an OR-point forces the net to 1 when the new input
// is asserted, an AND-point (with inverted input semantics here: the new
// input is ANDed in, so driving it 0 forces the net to 0) forces 0.
const (
	ForceOne ControlKind = iota
	ForceZero
)

// ControlPoint is one control insertion on a gate output.
type ControlPoint struct {
	Gate int
	Kind ControlKind
}

// SelectTestPoints chooses up to nObs observation points (worst SCOAP
// observability) and nCtl control points (worst controllability, polarity
// by the harder side). Primary inputs and outputs are never selected.
// The SCOAP measures and PO membership come from the netlist's shared
// compiled IR (cached; compiled at most once).
func SelectTestPoints(n *circuit.Netlist, nObs, nCtl int) Plan {
	c, err := n.Compiled()
	if err != nil {
		panic(err) // matches the previous ComputeSCOAP/TopoOrder contract
	}
	s := circuit.ComputeSCOAPCompiled(c)
	type cand struct {
		id   int
		cost int
	}
	var obsCands, ctlCands []cand
	for _, g := range n.Gates {
		if g.Type == circuit.Input || g.Type == circuit.DFF || c.POIdx[g.ID] >= 0 {
			continue
		}
		obsCands = append(obsCands, cand{g.ID, s.CO[g.ID]})
		cc := s.CC0[g.ID]
		if s.CC1[g.ID] > cc {
			cc = s.CC1[g.ID]
		}
		ctlCands = append(ctlCands, cand{g.ID, cc})
	}
	sort.Slice(obsCands, func(a, b int) bool {
		if obsCands[a].cost != obsCands[b].cost {
			return obsCands[a].cost > obsCands[b].cost
		}
		return obsCands[a].id < obsCands[b].id
	})
	sort.Slice(ctlCands, func(a, b int) bool {
		if ctlCands[a].cost != ctlCands[b].cost {
			return ctlCands[a].cost > ctlCands[b].cost
		}
		return ctlCands[a].id < ctlCands[b].id
	})
	var plan Plan
	for i := 0; i < nObs && i < len(obsCands); i++ {
		plan.Observe = append(plan.Observe, obsCands[i].id)
	}
	used := map[int]bool{}
	for _, c := range ctlCands {
		if len(plan.Control) == nCtl {
			break
		}
		if used[c.id] {
			continue
		}
		used[c.id] = true
		kind := ForceZero
		if s.CC1[c.id] > s.CC0[c.id] {
			kind = ForceOne // 1 is the hard value: insert an OR point
		}
		plan.Control = append(plan.Control, ControlPoint{Gate: c.id, Kind: kind})
	}
	return plan
}

// Apply rebuilds the netlist with the plan's test points inserted. Control
// points splice a new gate between the target's output and its fanouts:
//
//	ForceOne:  tp = OR(g, cp_i)   — drive cp_i = 1 to force the net
//	ForceZero: tp = AND(g, cp_i)  — drive cp_i = 0 to force the net
//
// During normal operation the new inputs are held at their non-controlling
// value. Observation points become additional primary outputs. The
// returned netlist shares no state with the input.
func Apply(n *circuit.Netlist, plan Plan) (*circuit.Netlist, error) {
	ctl := map[int]ControlKind{}
	for _, cp := range plan.Control {
		if cp.Gate < 0 || cp.Gate >= len(n.Gates) {
			return nil, fmt.Errorf("dft: control gate %d out of range", cp.Gate)
		}
		ctl[cp.Gate] = cp.Kind
	}
	out := circuit.New(n.Name + "_tp")
	// Rebuild in topological order; consumers of a controlled gate are
	// rewired to the spliced test-point gate via the name map.
	nameOf := make([]string, len(n.Gates))
	// Control-point PIs first (deterministic order by plan).
	for i, cp := range plan.Control {
		if _, err := out.AddGate(fmt.Sprintf("cp%d", i), circuit.Input); err != nil {
			return nil, err
		}
		_ = cp
	}
	cpName := map[int]string{}
	for i, cp := range plan.Control {
		cpName[cp.Gate] = fmt.Sprintf("cp%d", i)
	}
	for _, id := range n.TopoOrder() {
		g := n.Gates[id]
		if g.Type == circuit.Input {
			if _, err := out.AddGate(g.Name, circuit.Input); err != nil {
				return nil, err
			}
			nameOf[id] = g.Name
			continue
		}
		fanin := make([]string, len(g.Fanin))
		for p, f := range g.Fanin {
			fanin[p] = nameOf[f]
		}
		if _, err := out.AddGate(g.Name, g.Type, fanin...); err != nil {
			return nil, err
		}
		nameOf[id] = g.Name
		if kind, ok := ctl[id]; ok {
			tpName := g.Name + "_tp"
			gt := circuit.And
			if kind == ForceOne {
				gt = circuit.Or
			}
			if _, err := out.AddGate(tpName, gt, g.Name, cpName[id]); err != nil {
				return nil, err
			}
			nameOf[id] = tpName // downstream consumers see the spliced net
		}
	}
	for _, po := range n.POs {
		if err := out.MarkOutput(nameOf[po]); err != nil {
			return nil, err
		}
	}
	for _, ob := range plan.Observe {
		if ob < 0 || ob >= len(n.Gates) {
			return nil, fmt.Errorf("dft: observation gate %d out of range", ob)
		}
		if err := out.MarkOutput(nameOf[ob]); err != nil {
			return nil, err
		}
	}
	return out, out.Validate()
}

// Insert is the one-call flow: select and apply nObs observation and nCtl
// control points.
func Insert(n *circuit.Netlist, nObs, nCtl int) (*circuit.Netlist, Plan, error) {
	plan := SelectTestPoints(n, nObs, nCtl)
	out, err := Apply(n, plan)
	return out, plan, err
}

// NonControllingInputs returns the input assignment that neutralizes all
// control points (cp inputs at their non-controlling value), given the plan
// and the transformed netlist. Indices follow the transformed netlist's PI
// order.
func NonControllingInputs(transformed *circuit.Netlist, plan Plan) []bool {
	idx := transformed.InputIndex()
	out := make([]bool, len(transformed.PIs))
	for i, cp := range plan.Control {
		g, ok := transformed.GateByName(fmt.Sprintf("cp%d", i))
		if !ok {
			continue
		}
		// OR point: neutral value 0; AND point: neutral value 1.
		out[idx[g.ID]] = cp.Kind == ForceZero
	}
	return out
}
