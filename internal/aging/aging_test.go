package aging

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZeroStress(t *testing.T) {
	m := Default()
	s := Stress{Years: 0, TempK: 300, Duty: 0.5, Activity: 0.1, ClockHz: 1e9}
	if m.DeltaVth(s) != 0 {
		t.Error("zero years must give zero shift")
	}
	if f := m.Degradation(s); f != 1 {
		t.Errorf("fresh degradation factor = %f, want 1", f)
	}
}

func TestTenYearShiftPlausible(t *testing.T) {
	m := Default()
	s := Stress{Years: 10, TempK: 350, Duty: 0.5, Activity: 0.2, ClockHz: 2e9}
	dv := m.DeltaVth(s)
	if dv < 0.02 || dv > 0.15 {
		t.Errorf("10-year ΔVth = %.3f V, outside the plausible 20–150 mV band", dv)
	}
	f := m.Degradation(s)
	if f < 1.02 || f > 1.6 {
		t.Errorf("10-year delay factor = %.3f, implausible", f)
	}
}

func TestNBTIMonotoneInTimeDutyTemp(t *testing.T) {
	m := Default()
	base := Stress{Years: 5, TempK: 350, Duty: 0.5}
	v0 := m.NBTI(base)
	for _, s := range []Stress{
		{Years: 10, TempK: 350, Duty: 0.5},
		{Years: 5, TempK: 400, Duty: 0.5},
		{Years: 5, TempK: 350, Duty: 0.9},
	} {
		if m.NBTI(s) <= v0 {
			t.Errorf("NBTI not monotone: %+v gives %g <= %g", s, m.NBTI(s), v0)
		}
	}
	// Colder is better.
	cold := Stress{Years: 5, TempK: 250, Duty: 0.5}
	if m.NBTI(cold) >= v0 {
		t.Error("NBTI must decrease at lower temperature")
	}
}

func TestHCIMonotone(t *testing.T) {
	m := Default()
	base := Stress{Years: 5, Activity: 0.2, ClockHz: 1e9, TempK: 350}
	v0 := m.HCI(base)
	if v0 <= 0 {
		t.Fatal("HCI must be positive under stress")
	}
	more := Stress{Years: 5, Activity: 0.8, ClockHz: 1e9, TempK: 350}
	if m.HCI(more) <= v0 {
		t.Error("HCI not monotone in activity")
	}
	faster := Stress{Years: 5, Activity: 0.2, ClockHz: 4e9, TempK: 350}
	if m.HCI(faster) <= v0 {
		t.Error("HCI not monotone in clock")
	}
}

func TestPowerLawTimeExponent(t *testing.T) {
	m := Default()
	s1 := Stress{Years: 1, TempK: 350, Duty: 1}
	s16 := Stress{Years: 16, TempK: 350, Duty: 1}
	ratio := m.NBTI(s16) / m.NBTI(s1)
	want := math.Pow(16, m.NbtiTimeExp)
	if math.Abs(ratio-want) > 1e-9 {
		t.Errorf("time power law ratio = %f, want %f", ratio, want)
	}
}

func TestDelayFactorProperties(t *testing.T) {
	m := Default()
	if m.DelayFactor(0) != 1 {
		t.Error("zero shift must give unity factor")
	}
	prev := 1.0
	for dv := 0.01; dv < 0.2; dv += 0.01 {
		f := m.DelayFactor(dv)
		if f <= prev {
			t.Fatalf("delay factor not strictly increasing at %f", dv)
		}
		prev = f
	}
	// Clamping near device death: still finite.
	if f := m.DelayFactor(0.45); math.IsInf(f, 0) || f < 1 {
		t.Errorf("extreme shift factor = %f", f)
	}
}

func TestGuardbandSavings(t *testing.T) {
	m := Default()
	light := Stress{Years: 10, TempK: 350, Duty: 0.1, Activity: 0.05, ClockHz: 1e9}
	heavy := Stress{Years: 10, TempK: 350, Duty: 0.9, Activity: 0.9, ClockHz: 1e9}
	sl, sh := m.GuardbandSavings(light), m.GuardbandSavings(heavy)
	if sl <= sh {
		t.Errorf("light workload must recover more margin: %f vs %f", sl, sh)
	}
	if sl < 0 || sl > 1 {
		t.Errorf("savings out of [0,1]: %f", sl)
	}
	wc := WorstCase(10, 350, 1e9)
	if s := m.GuardbandSavings(wc); math.Abs(s) > 1e-9 {
		t.Errorf("worst-case workload must save nothing, got %f", s)
	}
}

func TestStressValidate(t *testing.T) {
	good := Stress{Years: 1, TempK: 300, Duty: 0.5, Activity: 0.5, ClockHz: 1e9}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	for _, bad := range []Stress{
		{Years: -1, TempK: 300},
		{Years: 1, TempK: 300, Duty: 1.5},
		{Years: 1, TempK: 300, Activity: -0.1},
		{Years: 1, TempK: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("stress %+v must fail validation", bad)
		}
	}
}

// Property: the combined shift is always the sum of its parts and
// non-negative for valid stress.
func TestDeltaVthProperty(t *testing.T) {
	m := Default()
	f := func(yearsRaw, dutyRaw, actRaw uint8) bool {
		s := Stress{
			Years:    float64(yearsRaw%20) + 0.1,
			TempK:    300,
			Duty:     float64(dutyRaw%101) / 100,
			Activity: float64(actRaw%101) / 100,
			ClockHz:  1e9,
		}
		dv := m.DeltaVth(s)
		return dv >= 0 && math.Abs(dv-(m.NBTI(s)+m.HCI(s))) < 1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
