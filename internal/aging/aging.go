// Package aging models transistor wear-out: NBTI (negative-bias temperature
// instability) and HCI (hot-carrier injection) threshold-voltage shifts as
// power-law functions of stress time, workload and temperature, and their
// first-order mapping to cell-delay degradation. These are the reliability
// models that the survey's ML methods learn to predict (experiments T2/T6).
package aging

import (
	"fmt"
	"math"
)

// SecondsPerYear converts mission lifetimes to stress seconds.
const SecondsPerYear = 365.25 * 24 * 3600

// Model holds the technology's aging coefficients. Defaults are tuned so a
// 10-year, 50%-duty, 350 K mission produces a ΔVth of roughly 40–60 mV —
// the range reported for scaled FinFET nodes.
type Model struct {
	// NBTI: dVth = ANbti * duty^NbtiDutyExp * exp(-EaNbti/kT) * (t/t0)^NbtiTimeExp
	ANbti       float64 // volts
	NbtiTimeExp float64 // ~0.16 (reaction-diffusion)
	NbtiDutyExp float64 // ~0.25..0.5
	EaNbti      float64 // activation energy, eV

	// HCI: dVth = AHci * (activity * fClk * t / n0)^HciTimeExp
	AHci       float64 // volts
	HciTimeExp float64 // ~0.45..0.5
	N0         float64 // normalization toggle count

	// Delay sensitivity (alpha-power law).
	VDD   float64
	Vth0  float64
	Alpha float64
}

// Default returns the baseline aging model for the 5-nm-class technology in
// package spice (VDD 0.7 V, Vth 0.25 V, alpha 1.3).
func Default() Model {
	return Model{
		ANbti:       1.8,
		NbtiTimeExp: 0.16,
		NbtiDutyExp: 0.3,
		EaNbti:      0.12,
		AHci:        1.1e-3,
		HciTimeExp:  0.48,
		N0:          1e15,
		VDD:         0.70,
		Vth0:        0.25,
		Alpha:       1.3,
	}
}

// Stress describes one signal's (or one design's aggregate) workload over a
// mission.
type Stress struct {
	Years    float64
	TempK    float64
	Duty     float64 // fraction of time the PMOS is under negative bias (signal low)
	Activity float64 // toggles per clock cycle (0..1)
	ClockHz  float64
}

// Validate checks physical plausibility.
func (s Stress) Validate() error {
	if s.Years < 0 || s.Duty < 0 || s.Duty > 1 || s.Activity < 0 || s.Activity > 1 {
		return fmt.Errorf("aging: implausible stress %+v", s)
	}
	if s.TempK <= 0 {
		return fmt.Errorf("aging: temperature must be positive, got %g", s.TempK)
	}
	return nil
}

// NBTI returns the NBTI threshold shift in volts for the stress condition.
func (m Model) NBTI(s Stress) float64 {
	if s.Years == 0 || s.Duty == 0 {
		return 0
	}
	const k = 8.617333e-5 // eV/K
	t := s.Years * SecondsPerYear
	return m.ANbti *
		math.Pow(s.Duty, m.NbtiDutyExp) *
		math.Exp(-m.EaNbti/(k*s.TempK)) *
		math.Pow(t/SecondsPerYear, m.NbtiTimeExp) // stress time normalized to 1 year
}

// HCI returns the hot-carrier threshold shift in volts.
func (m Model) HCI(s Stress) float64 {
	if s.Years == 0 || s.Activity == 0 || s.ClockHz == 0 {
		return 0
	}
	toggles := s.Activity * s.ClockHz * s.Years * SecondsPerYear
	return m.AHci * math.Pow(toggles/m.N0, m.HciTimeExp)
}

// DeltaVth returns the combined threshold shift.
func (m Model) DeltaVth(s Stress) float64 {
	return m.NBTI(s) + m.HCI(s)
}

// DelayFactor maps a threshold shift to the multiplicative cell-delay
// degradation under the alpha-power delay model:
//
//	delay ∝ VDD / (VDD - Vth)^alpha
func (m Model) DelayFactor(dVth float64) float64 {
	den := m.VDD - m.Vth0 - dVth
	if den <= 0.01 {
		den = 0.01 // device effectively dead; clamp to a huge factor
	}
	fresh := math.Pow(m.VDD-m.Vth0, m.Alpha)
	return fresh / math.Pow(den, m.Alpha)
}

// Degradation returns the delay factor for a stress condition directly.
func (m Model) Degradation(s Stress) float64 {
	return m.DelayFactor(m.DeltaVth(s))
}

// WorstCase returns the stress corner used for traditional static
// guardbanding: maximum duty and activity at the given lifetime,
// temperature and clock.
func WorstCase(years, tempK, clockHz float64) Stress {
	return Stress{Years: years, TempK: tempK, Duty: 1, Activity: 1, ClockHz: clockHz}
}

// GuardbandSavings compares the worst-case guardband against the
// workload-specific one: the fraction of the static margin recovered by
// knowing the real workload (the headline metric of ML-driven aging
// estimation, experiment T6).
func (m Model) GuardbandSavings(actual Stress) float64 {
	wc := m.Degradation(WorstCase(actual.Years, actual.TempK, actual.ClockHz))
	act := m.Degradation(actual)
	if wc <= 1 {
		return 0
	}
	return (wc - act) / (wc - 1)
}
