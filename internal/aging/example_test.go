package aging_test

import (
	"fmt"

	"repro/internal/aging"
)

func ExampleModel_Degradation() {
	m := aging.Default()
	s := aging.Stress{Years: 10, TempK: 350, Duty: 0.5, Activity: 0.2, ClockHz: 1e9}
	fmt.Printf("ΔVth = %.1f mV, delay factor = %.3f\n", m.DeltaVth(s)*1e3, m.Degradation(s))
	// Output: ΔVth = 47.6 mV, delay factor = 1.156
}

func ExampleModel_GuardbandSavings() {
	m := aging.Default()
	light := aging.Stress{Years: 10, TempK: 350, Duty: 0.1, Activity: 0.05, ClockHz: 1e9}
	fmt.Printf("light workload recovers %.0f%% of the worst-case margin\n",
		m.GuardbandSavings(light)*100)
	// Output: light workload recovers 61% of the worst-case margin
}
