package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVString(t *testing.T) {
	cases := map[V]string{V0: "0", V1: "1", VX: "X", VD: "D", VDbar: "D'"}
	for v, want := range cases {
		if got := v.String(); got != want {
			t.Errorf("V(%d).String() = %q, want %q", v, got, want)
		}
	}
	if got := V(99).String(); got != "V(99)" {
		t.Errorf("invalid value string = %q", got)
	}
}

func TestGoodFaulty(t *testing.T) {
	cases := []struct {
		v            V
		good, faulty V
	}{
		{V0, V0, V0},
		{V1, V1, V1},
		{VX, VX, VX},
		{VD, V1, V0},
		{VDbar, V0, V1},
	}
	for _, c := range cases {
		if got := c.v.Good(); got != c.good {
			t.Errorf("%v.Good() = %v, want %v", c.v, got, c.good)
		}
		if got := c.v.Faulty(); got != c.faulty {
			t.Errorf("%v.Faulty() = %v, want %v", c.v, got, c.faulty)
		}
	}
}

func TestIsD(t *testing.T) {
	if !VD.IsD() || !VDbar.IsD() {
		t.Error("VD/VDbar must report IsD")
	}
	if V0.IsD() || V1.IsD() || VX.IsD() {
		t.Error("0/1/X must not report IsD")
	}
}

func TestNotInvolution(t *testing.T) {
	for _, v := range []V{V0, V1, VX, VD, VDbar} {
		if got := v.Not().Not(); got != v {
			t.Errorf("double negation of %v = %v", v, got)
		}
	}
}

// allV is the full five-valued domain.
var allV = []V{V0, V1, VX, VD, VDbar}

// TestFiveValuedConsistency checks that And/Or/Xor/Not agree with binary
// logic applied separately to the good and faulty projections, whenever no X
// is involved.
func TestFiveValuedConsistency(t *testing.T) {
	binAnd := func(a, b V) V {
		if a == V1 && b == V1 {
			return V1
		}
		return V0
	}
	binOr := func(a, b V) V {
		if a == V1 || b == V1 {
			return V1
		}
		return V0
	}
	binXor := func(a, b V) V {
		if a != b {
			return V1
		}
		return V0
	}
	for _, a := range allV {
		for _, b := range allV {
			if a == VX || b == VX {
				continue
			}
			type op struct {
				name string
				five func(V, V) V
				two  func(V, V) V
			}
			for _, o := range []op{{"And", And, binAnd}, {"Or", Or, binOr}, {"Xor", Xor, binXor}} {
				got := o.five(a, b)
				if g, w := got.Good(), o.two(a.Good(), b.Good()); g != w {
					t.Errorf("%s(%v,%v).Good() = %v, want %v", o.name, a, b, g, w)
				}
				if g, w := got.Faulty(), o.two(a.Faulty(), b.Faulty()); g != w {
					t.Errorf("%s(%v,%v).Faulty() = %v, want %v", o.name, a, b, g, w)
				}
			}
		}
	}
}

func TestFiveValuedXAbsorption(t *testing.T) {
	// Controlling values override X; otherwise X dominates.
	if And(V0, VX) != V0 || And(VX, V0) != V0 {
		t.Error("0 AND X must be 0")
	}
	if Or(V1, VX) != V1 || Or(VX, V1) != V1 {
		t.Error("1 OR X must be 1")
	}
	if And(V1, VX) != VX || Or(V0, VX) != VX || Xor(V1, VX) != VX {
		t.Error("X must propagate through non-controlling inputs")
	}
}

func TestCommutativity(t *testing.T) {
	for _, a := range allV {
		for _, b := range allV {
			if And(a, b) != And(b, a) {
				t.Errorf("And(%v,%v) not commutative", a, b)
			}
			if Or(a, b) != Or(b, a) {
				t.Errorf("Or(%v,%v) not commutative", a, b)
			}
			if Xor(a, b) != Xor(b, a) {
				t.Errorf("Xor(%v,%v) not commutative", a, b)
			}
		}
	}
}

func TestDeMorgan(t *testing.T) {
	for _, a := range allV {
		for _, b := range allV {
			if And(a, b).Not() != Or(a.Not(), b.Not()) {
				t.Errorf("De Morgan violated for And(%v,%v)", a, b)
			}
			if Or(a, b).Not() != And(a.Not(), b.Not()) {
				t.Errorf("De Morgan violated for Or(%v,%v)", a, b)
			}
		}
	}
}

func TestPatternSetSetGet(t *testing.T) {
	p := NewPatternSet(5, 130)
	p.Set(0, 0, true)
	p.Set(64, 3, true)
	p.Set(129, 4, true)
	if !p.Get(0, 0) || !p.Get(64, 3) || !p.Get(129, 4) {
		t.Error("set bits not readable")
	}
	if p.Get(1, 0) || p.Get(64, 2) {
		t.Error("unset bits read as set")
	}
	p.Set(64, 3, false)
	if p.Get(64, 3) {
		t.Error("cleared bit still set")
	}
}

func TestPatternSetWords(t *testing.T) {
	for _, c := range []struct{ n, words int }{{0, 0}, {1, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3}} {
		p := NewPatternSet(2, c.n)
		if got := p.Words(); got != c.words {
			t.Errorf("Words() for n=%d = %d, want %d", c.n, got, c.words)
		}
	}
}

func TestTailMask(t *testing.T) {
	p := NewPatternSet(1, 70)
	if got := p.TailMask(0); got != ^Word(0) {
		t.Errorf("full word mask = %x", got)
	}
	if got := p.TailMask(1); got != (1<<6)-1 {
		t.Errorf("tail mask = %x, want %x", got, (1<<6)-1)
	}
	p2 := NewPatternSet(1, 64)
	if got := p2.TailMask(0); got != ^Word(0) {
		t.Errorf("exact word mask = %x", got)
	}
}

func TestPatternRoundTrip(t *testing.T) {
	p := NewPatternSet(7, 20)
	bits := []bool{true, false, true, true, false, false, true}
	p.SetPattern(13, bits)
	got := p.Pattern(13)
	for i := range bits {
		if got[i] != bits[i] {
			t.Fatalf("pattern mismatch at input %d", i)
		}
	}
}

func TestAppend(t *testing.T) {
	p := NewPatternSet(3, 0)
	for i := 0; i < 200; i++ {
		idx := p.Append([]bool{i%2 == 0, i%3 == 0, i%5 == 0})
		if idx != i {
			t.Fatalf("Append returned %d, want %d", idx, i)
		}
	}
	if p.N != 200 {
		t.Fatalf("N = %d, want 200", p.N)
	}
	for i := 0; i < 200; i++ {
		if p.Get(i, 0) != (i%2 == 0) || p.Get(i, 1) != (i%3 == 0) || p.Get(i, 2) != (i%5 == 0) {
			t.Fatalf("pattern %d corrupted after appends", i)
		}
	}
}

func TestClone(t *testing.T) {
	p := NewPatternSet(2, 66)
	p.Set(65, 1, true)
	q := p.Clone()
	p.Set(65, 1, false)
	if !q.Get(65, 1) {
		t.Error("clone shares storage with original")
	}
}

func TestRandFillRespectsTail(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := NewPatternSet(3, 70)
	p.RandFill(rng.Uint64)
	for i := 0; i < 3; i++ {
		if p.Bits[i][1]&^p.TailMask(1) != 0 {
			t.Errorf("input %d has bits beyond pattern count", i)
		}
	}
}

func TestExhaustive(t *testing.T) {
	p := Exhaustive(4)
	if p.N != 16 {
		t.Fatalf("N = %d, want 16", p.N)
	}
	seen := map[string]bool{}
	for n := 0; n < p.N; n++ {
		seen[FormatBits(p.Pattern(n))] = true
	}
	if len(seen) != 16 {
		t.Fatalf("exhaustive set has %d distinct patterns, want 16", len(seen))
	}
}

func TestExhaustivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exhaustive(25) must panic")
		}
	}()
	Exhaustive(25)
}

func TestParseFormatBits(t *testing.T) {
	bits, err := ParseBits("10110")
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatBits(bits); got != "10110" {
		t.Errorf("round trip = %q", got)
	}
	if _, err := ParseBits("10x"); err == nil {
		t.Error("invalid character must error")
	}
}

func TestParseFormatProperty(t *testing.T) {
	f := func(raw []bool) bool {
		s := FormatBits(raw)
		back, err := ParseBits(s)
		if err != nil || len(back) != len(raw) {
			return false
		}
		for i := range raw {
			if back[i] != raw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Set followed by Get returns the written value for arbitrary
// in-range coordinates.
func TestPatternSetProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inputs := 1 + rng.Intn(20)
		n := 1 + rng.Intn(300)
		p := NewPatternSet(inputs, n)
		type key struct{ n, i int }
		want := map[key]bool{}
		for k := 0; k < 500; k++ {
			pos := key{rng.Intn(n), rng.Intn(inputs)}
			v := rng.Intn(2) == 1
			p.Set(pos.n, pos.i, v)
			want[pos] = v
		}
		for pos, v := range want {
			if p.Get(pos.n, pos.i) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: a pattern set refilled after Reset is indistinguishable from a
// freshly allocated one — no stale bits survive the word reuse, the tail
// mask tracks the new length, and PatternInto matches Pattern.
func TestPatternSetResetReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := NewPatternSet(9, 0)
	buf := make([]bool, 9)
	for round := 0; round < 20; round++ {
		n := 1 + rng.Intn(150)
		fresh := NewPatternSet(9, 0)
		p.Reset()
		if p.N != 0 {
			t.Fatalf("round %d: N = %d after Reset", round, p.N)
		}
		for k := 0; k < n; k++ {
			bits := make([]bool, 9)
			for i := range bits {
				bits[i] = rng.Intn(2) == 1
			}
			p.Append(bits)
			fresh.Append(bits)
		}
		if p.N != fresh.N || p.Words() != fresh.Words() {
			t.Fatalf("round %d: dims (%d,%d) != fresh (%d,%d)", round, p.N, p.Words(), fresh.N, fresh.Words())
		}
		for i := range p.Bits {
			for w := range p.Bits[i] {
				if p.Bits[i][w]&p.TailMask(w) != fresh.Bits[i][w] {
					t.Fatalf("round %d: input %d word %d: reused %x != fresh %x",
						round, i, w, p.Bits[i][w]&p.TailMask(w), fresh.Bits[i][w])
				}
			}
		}
		k := rng.Intn(n)
		if got, want := FormatBits(p.PatternInto(k, buf)), FormatBits(fresh.Pattern(k)); got != want {
			t.Fatalf("round %d: PatternInto(%d) = %s, want %s", round, k, got, want)
		}
	}
}

func BenchmarkFiveValuedAnd(b *testing.B) {
	var sink V
	for i := 0; i < b.N; i++ {
		sink = And(allV[i%5], allV[(i+1)%5])
	}
	_ = sink
}
