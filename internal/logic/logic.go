// Package logic provides the logic-value substrates used throughout the
// toolkit: 64-way parallel pattern words for high-throughput logic and fault
// simulation, and the five-valued D-algebra used by test generation.
package logic

import (
	"fmt"
	"math/bits"
)

// Word carries 64 independent binary patterns, one per bit position. All
// bitwise gate evaluations over Word therefore simulate 64 input vectors in
// a single machine operation (parallel-pattern simulation).
type Word = uint64

// WordBits is the number of patterns packed into a Word.
const WordBits = 64

// V is a five-valued logic value from the D-algebra used by ATPG:
// 0, 1, X (unknown), D (1 in the good circuit / 0 in the faulty circuit) and
// Dbar (0 good / 1 faulty).
type V uint8

// Five-valued logic constants.
const (
	V0    V = iota // logic 0 in both good and faulty circuit
	V1             // logic 1 in both good and faulty circuit
	VX             // unknown
	VD             // 1 in good circuit, 0 in faulty circuit
	VDbar          // 0 in good circuit, 1 in faulty circuit
)

// String returns the conventional textbook symbol for v.
func (v V) String() string {
	switch v {
	case V0:
		return "0"
	case V1:
		return "1"
	case VX:
		return "X"
	case VD:
		return "D"
	case VDbar:
		return "D'"
	}
	return fmt.Sprintf("V(%d)", uint8(v))
}

// Good returns the value seen in the fault-free circuit: V0, V1 or VX.
func (v V) Good() V {
	switch v {
	case VD:
		return V1
	case VDbar:
		return V0
	}
	return v
}

// Faulty returns the value seen in the faulty circuit: V0, V1 or VX.
func (v V) Faulty() V {
	switch v {
	case VD:
		return V0
	case VDbar:
		return V1
	}
	return v
}

// IsD reports whether v carries a fault effect (D or D').
func (v V) IsD() bool { return v == VD || v == VDbar }

// Not returns the five-valued complement of v.
func (v V) Not() V {
	switch v {
	case V0:
		return V1
	case V1:
		return V0
	case VD:
		return VDbar
	case VDbar:
		return VD
	}
	return VX
}

// And returns the five-valued conjunction of a and b.
func And(a, b V) V {
	if a == V0 || b == V0 {
		return V0
	}
	if a == V1 {
		return b
	}
	if b == V1 {
		return a
	}
	if a == b {
		return a // X&X=X, D&D=D, D'&D'=D'
	}
	if (a == VD && b == VDbar) || (a == VDbar && b == VD) {
		return V0 // D & D' = 0 in both circuits
	}
	return VX // any combination involving X
}

// Or returns the five-valued disjunction of a and b.
func Or(a, b V) V {
	if a == V1 || b == V1 {
		return V1
	}
	if a == V0 {
		return b
	}
	if b == V0 {
		return a
	}
	if a == b {
		return a
	}
	if (a == VD && b == VDbar) || (a == VDbar && b == VD) {
		return V1
	}
	return VX
}

// Xor returns the five-valued exclusive-or of a and b.
func Xor(a, b V) V {
	// x ^ y = (x & !y) | (!x & y)
	return Or(And(a, b.Not()), And(a.Not(), b))
}

// PatternSet is a set of test patterns for a fixed number of inputs, stored
// bit-sliced: Bits[i][w] packs patterns w*64 .. w*64+63 for input i, so that
// gate evaluation over all patterns in a word is a single bitwise operation.
type PatternSet struct {
	Inputs int      // number of circuit inputs
	N      int      // number of patterns
	Bits   [][]Word // [input][word]
}

// NewPatternSet returns an all-zero pattern set for the given number of
// inputs and patterns.
func NewPatternSet(inputs, n int) *PatternSet {
	if inputs < 0 || n < 0 {
		panic("logic: negative pattern set dimension")
	}
	words := (n + WordBits - 1) / WordBits
	bits := make([][]Word, inputs)
	backing := make([]Word, inputs*words)
	for i := range bits {
		bits[i], backing = backing[:words:words], backing[words:]
	}
	return &PatternSet{Inputs: inputs, N: n, Bits: bits}
}

// Words returns the number of 64-pattern words per input.
func (p *PatternSet) Words() int {
	return (p.N + WordBits - 1) / WordBits
}

// Set assigns bit value v to input i of pattern n.
func (p *PatternSet) Set(n, i int, v bool) {
	w, b := n/WordBits, uint(n%WordBits)
	if v {
		p.Bits[i][w] |= 1 << b
	} else {
		p.Bits[i][w] &^= 1 << b
	}
}

// Get returns the bit value of input i in pattern n.
func (p *PatternSet) Get(n, i int) bool {
	w, b := n/WordBits, uint(n%WordBits)
	return p.Bits[i][w]>>b&1 == 1
}

// Pattern returns pattern n as a bool slice of length Inputs.
func (p *PatternSet) Pattern(n int) []bool {
	out := make([]bool, p.Inputs)
	for i := range out {
		out[i] = p.Get(n, i)
	}
	return out
}

// SetPattern assigns the bits of pattern n from a bool slice.
func (p *PatternSet) SetPattern(n int, bits []bool) {
	if len(bits) != p.Inputs {
		panic(fmt.Sprintf("logic: pattern width %d != inputs %d", len(bits), p.Inputs))
	}
	for i, v := range bits {
		p.Set(n, i, v)
	}
}

// Append adds one pattern to the set and returns its index.
func (p *PatternSet) Append(bits []bool) int {
	if len(bits) != p.Inputs {
		panic(fmt.Sprintf("logic: pattern width %d != inputs %d", len(bits), p.Inputs))
	}
	n := p.N
	if n%WordBits == 0 {
		for i := range p.Bits {
			p.Bits[i] = append(p.Bits[i], 0)
		}
	}
	p.N++
	p.SetPattern(n, bits)
	return n
}

// TailMask returns the mask of valid pattern bits in word w (all ones except
// possibly in the final word of a set whose size is not a multiple of 64).
func (p *PatternSet) TailMask(w int) Word {
	if w != p.Words()-1 || p.N%WordBits == 0 {
		return ^Word(0)
	}
	return (Word(1) << uint(p.N%WordBits)) - 1
}

// Reset empties the set in place, keeping the per-input word backing for
// reuse: a hot loop that fills, consumes and refills a block avoids
// re-allocating one slice per input per iteration. Appending after Reset
// zeroes each reused word before setting bits, so stale contents never leak.
func (p *PatternSet) Reset() {
	p.N = 0
	for i := range p.Bits {
		p.Bits[i] = p.Bits[i][:0]
	}
}

// PatternInto writes pattern n into out, which must have length Inputs, and
// returns it — the allocation-free counterpart of Pattern for hot loops.
func (p *PatternSet) PatternInto(n int, out []bool) []bool {
	if len(out) != p.Inputs {
		panic(fmt.Sprintf("logic: pattern buffer %d != inputs %d", len(out), p.Inputs))
	}
	for i := range out {
		out[i] = p.Get(n, i)
	}
	return out
}

// Clone returns a deep copy of the pattern set.
func (p *PatternSet) Clone() *PatternSet {
	q := NewPatternSet(p.Inputs, p.N)
	for i := range p.Bits {
		copy(q.Bits[i], p.Bits[i])
	}
	return q
}

// RandFill fills all patterns with pseudo-random bits from rnd, a function
// returning uniformly random 64-bit words (e.g. (*math/rand.Rand).Uint64).
func (p *PatternSet) RandFill(rnd func() Word) {
	for i := range p.Bits {
		for w := range p.Bits[i] {
			p.Bits[i][w] = rnd() & p.TailMask(w)
		}
	}
}

// Exhaustive returns the pattern set enumerating all 2^inputs input
// combinations. It panics if inputs > 24 to guard against runaway memory.
func Exhaustive(inputs int) *PatternSet {
	if inputs > 24 {
		panic("logic: exhaustive pattern set limited to 24 inputs")
	}
	n := 1 << uint(inputs)
	p := NewPatternSet(inputs, n)
	for pat := 0; pat < n; pat++ {
		for i := 0; i < inputs; i++ {
			p.Set(pat, i, pat>>uint(i)&1 == 1)
		}
	}
	return p
}

// PopCount returns the number of set bits in w.
func PopCount(w Word) int { return bits.OnesCount64(w) }

// ParseBits parses a string of '0'/'1' characters into a bool slice.
func ParseBits(s string) ([]bool, error) {
	out := make([]bool, len(s))
	for i, c := range s {
		switch c {
		case '0':
			out[i] = false
		case '1':
			out[i] = true
		default:
			return nil, fmt.Errorf("logic: invalid bit character %q at position %d", c, i)
		}
	}
	return out, nil
}

// FormatBits renders a bool slice as a '0'/'1' string.
func FormatBits(bits []bool) string {
	b := make([]byte, len(bits))
	for i, v := range bits {
		if v {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}
