package spice

import (
	"math"
	"testing"
)

// inverter builds a minimum inverter: PMOS width 2 (mobility balance),
// NMOS width 1.
func inverter() *Cell {
	c := NewCell("INV_X1", 1)
	c.AddStage(DevW(0, 2), DevW(0, 1), 0.4e-15)
	return c
}

// nand2 builds a 2-input NAND: parallel PMOS, series NMOS (widened 2x to
// compensate stacking).
func nand2() *Cell {
	c := NewCell("NAND2_X1", 2)
	c.AddStage(
		Par(DevW(0, 2), DevW(1, 2)),
		Ser(DevW(0, 2), DevW(1, 2)),
		0.6e-15,
	)
	return c
}

// and2 is NAND2 followed by an inverter stage (2-stage cell).
func and2() *Cell {
	c := NewCell("AND2_X1", 2)
	mid := c.AddStage(
		Par(DevW(0, 2), DevW(1, 2)),
		Ser(DevW(0, 2), DevW(1, 2)),
		0.6e-15,
	)
	c.AddStage(DevW(mid, 2), DevW(mid, 1), 0.4e-15)
	return c
}

func TestDeviceCurrentsMonotone(t *testing.T) {
	p := Default(300)
	// Current increases with vgs.
	prev := 0.0
	for vgs := 0.0; vgs <= p.VDD; vgs += 0.05 {
		id := p.idN(vgs, p.VDD, 1)
		if id < prev {
			t.Fatalf("idN not monotone in vgs at %.2f", vgs)
		}
		prev = id
	}
	// On current vastly exceeds off current.
	if on, off := p.idN(p.VDD, p.VDD, 1), p.LeakN(1); on < 1e4*off {
		t.Errorf("on/off ratio too small: %g / %g", on, off)
	}
	// vds = 0 carries no current.
	if p.idN(p.VDD, 0, 1) != 0 {
		t.Error("current at vds=0 must be zero")
	}
	// Width scales current.
	if r := p.idN(0.5, 0.3, 2) / p.idN(0.5, 0.3, 1); math.Abs(r-2) > 1e-9 {
		t.Errorf("width scaling = %f, want 2", r)
	}
}

func TestCryoDeviceBehaviour(t *testing.T) {
	warm, cold := Default(300), Default(10)
	// Leakage collapses by orders of magnitude at 10 K.
	if lw, lc := warm.LeakN(1), cold.LeakN(1); lc > lw*1e-6 {
		t.Errorf("cryo leakage %g not ≪ 300K leakage %g", lc, lw)
	}
	// Threshold rises at cryo.
	if cold.vthN() <= warm.vthN() {
		t.Error("cryo threshold must increase")
	}
	// On-current stays the same order (mobility gain vs Vth rise).
	ion300 := warm.idN(warm.VDD, warm.VDD, 1)
	ion10 := cold.idN(cold.VDD, cold.VDD, 1)
	if r := ion10 / ion300; r < 0.5 || r > 3 {
		t.Errorf("cryo/warm on-current ratio %f outside plausible band", r)
	}
}

func TestCellLogic(t *testing.T) {
	inv := inverter()
	if inv.Logic([]bool{false}) != true || inv.Logic([]bool{true}) != false {
		t.Error("inverter logic wrong")
	}
	nd := nand2()
	for _, c := range []struct {
		a, b, y bool
	}{{false, false, true}, {false, true, true}, {true, false, true}, {true, true, false}} {
		if got := nd.Logic([]bool{c.a, c.b}); got != c.y {
			t.Errorf("NAND(%v,%v) = %v", c.a, c.b, got)
		}
	}
	a2 := and2()
	if !a2.Logic([]bool{true, true}) || a2.Logic([]bool{true, false}) {
		t.Error("AND2 logic wrong")
	}
}

func TestPinCapAndTransistors(t *testing.T) {
	nd := nand2()
	if nd.Transistors() != 4 {
		t.Errorf("NAND2 transistors = %d", nd.Transistors())
	}
	if nd.PinCap(0) <= 0 {
		t.Error("pin cap must be positive")
	}
	// X2 drive doubles pin cap.
	x2 := nd.ScaleDrive(2, "NAND2_X2")
	if r := x2.PinCap(0) / nd.PinCap(0); math.Abs(r-2) > 1e-9 {
		t.Errorf("drive scaling pin cap ratio = %f", r)
	}
}

func TestSensitizingSideInputs(t *testing.T) {
	nd := nand2()
	side, ok := SensitizingSideInputs(nd, 0)
	if !ok {
		t.Fatal("NAND2 pin 0 must be sensitizable")
	}
	if side[1] != true {
		t.Errorf("NAND2 side input must be 1, got %v", side)
	}
}

func TestInverterTransient(t *testing.T) {
	inv := inverter()
	p := Default(300)
	side := []bool{false}
	m, err := Simulate(inv, p, Arc{Pin: 0, RiseIn: true, InSlew: 10e-12, LoadCap: 1e-15, SideInputs: side})
	if err != nil {
		t.Fatal(err)
	}
	if m.Delay <= 0 || m.Delay > 200e-12 {
		t.Errorf("inverter delay = %g s, outside plausible range", m.Delay)
	}
	if m.Slew <= 0 {
		t.Errorf("output slew = %g", m.Slew)
	}
	if m.Energy <= 0 {
		t.Errorf("switching energy = %g", m.Energy)
	}
}

func TestDelayMonotoneInLoad(t *testing.T) {
	inv := inverter()
	p := Default(300)
	prev := 0.0
	for _, load := range []float64{0.5e-15, 1e-15, 2e-15, 4e-15, 8e-15} {
		m, err := Simulate(inv, p, Arc{Pin: 0, RiseIn: true, InSlew: 10e-12, LoadCap: load, SideInputs: []bool{false}})
		if err != nil {
			t.Fatal(err)
		}
		if m.Delay <= prev {
			t.Errorf("delay not increasing with load at %g: %g <= %g", load, m.Delay, prev)
		}
		prev = m.Delay
	}
}

func TestDelayDecreasesWithDrive(t *testing.T) {
	p := Default(300)
	x1 := inverter()
	x4 := x1.ScaleDrive(4, "INV_X4")
	arc := Arc{Pin: 0, RiseIn: true, InSlew: 10e-12, LoadCap: 8e-15, SideInputs: []bool{false}}
	m1, err := Simulate(x1, p, arc)
	if err != nil {
		t.Fatal(err)
	}
	m4, err := Simulate(x4, p, arc)
	if err != nil {
		t.Fatal(err)
	}
	if m4.Delay >= m1.Delay {
		t.Errorf("X4 not faster than X1 under load: %g vs %g", m4.Delay, m1.Delay)
	}
}

func TestDelayIncreasesWithVth(t *testing.T) {
	inv := inverter()
	arc := Arc{Pin: 0, RiseIn: true, InSlew: 10e-12, LoadCap: 2e-15, SideInputs: []bool{false}}
	fresh := Default(300)
	aged := Default(300)
	aged.DVthN = 0.08
	aged.DVthP = 0.08
	m0, err := Simulate(inv, fresh, arc)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := Simulate(inv, aged, arc)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Delay <= m0.Delay {
		t.Errorf("aged cell not slower: %g vs %g", m1.Delay, m0.Delay)
	}
}

func TestStackDepthSlowsFall(t *testing.T) {
	// Deeper series NMOS stacks (NAND3 vs NAND2, same device widths) must
	// slow the output-fall arc — the stacking effect.
	p := Default(300)
	nd2 := nand2()
	nd3 := NewCell("NAND3_X1", 3)
	nd3.AddStage(
		Par(DevW(0, 2), DevW(1, 2), DevW(2, 2)),
		Ser(DevW(0, 2), DevW(1, 2), DevW(2, 2)),
		0.6e-15,
	)
	side2, _ := SensitizingSideInputs(nd2, 0)
	side3, _ := SensitizingSideInputs(nd3, 0)
	m2, err := Simulate(nd2, p, Arc{Pin: 0, RiseIn: true, InSlew: 10e-12, LoadCap: 2e-15, SideInputs: side2})
	if err != nil {
		t.Fatal(err)
	}
	m3, err := Simulate(nd3, p, Arc{Pin: 0, RiseIn: true, InSlew: 10e-12, LoadCap: 2e-15, SideInputs: side3})
	if err != nil {
		t.Fatal(err)
	}
	if m3.Delay <= m2.Delay {
		t.Errorf("NAND3 fall (%g) not slower than NAND2 fall (%g)", m3.Delay, m2.Delay)
	}
}

func TestTwoStageCellTransient(t *testing.T) {
	a2 := and2()
	p := Default(300)
	side, ok := SensitizingSideInputs(a2, 1)
	if !ok {
		t.Fatal("AND2 pin 1 must be sensitizable")
	}
	m, err := Simulate(a2, p, Arc{Pin: 1, RiseIn: true, InSlew: 15e-12, LoadCap: 1e-15, SideInputs: side})
	if err != nil {
		t.Fatal(err)
	}
	if m.Delay <= 0 {
		t.Errorf("two-stage delay = %g", m.Delay)
	}
}

func TestLeakageStateDependent(t *testing.T) {
	p := Default(300)
	nd := nand2()
	// Both inputs high: output low, leakage through 2 parallel OFF PMOS.
	// Both low: series OFF NMOS stack → stacking suppresses leakage.
	lHH := Leakage(nd, p, []bool{true, true})
	lLL := Leakage(nd, p, []bool{false, false})
	if lLL >= lHH {
		t.Errorf("series OFF stack must leak less: LL=%g HH=%g", lLL, lHH)
	}
	if lHH <= 0 {
		t.Error("leakage must be positive")
	}
}

func TestLeakageCryoCollapse(t *testing.T) {
	nd := nand2()
	lw := Leakage(nd, Default(300), []bool{true, true})
	lc := Leakage(nd, Default(10), []bool{true, true})
	if lc > lw*1e-6 {
		t.Errorf("cryo cell leakage %g not ≪ %g", lc, lw)
	}
}

func TestLogicContentionPanics(t *testing.T) {
	c := NewCell("BROKEN", 2)
	// Pull-up gated by pin 0 (conducts when low), pull-down by pin 1
	// (conducts when high): inputs {false,true} drive both on.
	c.AddStage(Dev(0), Dev(1), 1e-15)
	defer func() {
		if recover() == nil {
			t.Error("contention must panic")
		}
	}()
	c.Logic([]bool{false, true})
}

func TestArcValidation(t *testing.T) {
	inv := inverter()
	p := Default(300)
	if _, err := Simulate(inv, p, Arc{Pin: 5, SideInputs: []bool{false}}); err == nil {
		t.Error("bad pin must error")
	}
	if _, err := Simulate(inv, p, Arc{Pin: 0, SideInputs: []bool{}}); err == nil {
		t.Error("bad side inputs must error")
	}
	// Non-sensitized arc: AND2 with side input 0 never toggles output.
	a2 := and2()
	if _, err := Simulate(a2, p, Arc{Pin: 0, RiseIn: true, InSlew: 1e-11, LoadCap: 1e-15, SideInputs: []bool{false, false}}); err == nil {
		t.Error("unsensitized arc must error")
	}
}

func BenchmarkTransient(b *testing.B) {
	inv := inverter()
	p := Default(300)
	arc := Arc{Pin: 0, RiseIn: true, InSlew: 10e-12, LoadCap: 2e-15, SideInputs: []bool{false}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(inv, p, arc); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: arc delay grows monotonically with the aging threshold shift
// across the plausible ΔVth range.
func TestDelayMonotoneInDVth(t *testing.T) {
	inv := inverter()
	arc := Arc{Pin: 0, RiseIn: true, InSlew: 10e-12, LoadCap: 2e-15, SideInputs: []bool{false}}
	prev := 0.0
	for _, dv := range []float64{0, 0.02, 0.05, 0.08, 0.12} {
		p := Default(300)
		p.DVthN, p.DVthP = dv, dv
		m, err := Simulate(inv, p, arc)
		if err != nil {
			t.Fatal(err)
		}
		if m.Delay <= prev {
			t.Fatalf("delay not increasing at ΔVth=%g: %g <= %g", dv, m.Delay, prev)
		}
		prev = m.Delay
	}
}
