package spice

import "fmt"

// NetKind discriminates transistor network nodes.
type NetKind uint8

// Network node kinds.
const (
	KindDevice NetKind = iota
	KindSeries
	KindParallel
)

// Network is a series/parallel transistor network. A Device leaf is a
// single transistor whose gate is driven by a cell signal (external pin or
// internal stage output). The same structure describes NMOS pull-down
// networks (conducting when the gate is high) and, as the logical dual,
// PMOS pull-up networks (conducting when the gate is low).
type Network struct {
	Kind     NetKind
	Pin      int     // gate signal index, for devices
	Width    float64 // device width multiple, for devices
	Children []*Network
}

// Dev returns a single-transistor network with unit width.
func Dev(pin int) *Network { return &Network{Kind: KindDevice, Pin: pin, Width: 1} }

// DevW returns a single-transistor network with the given width multiple.
func DevW(pin int, w float64) *Network { return &Network{Kind: KindDevice, Pin: pin, Width: w} }

// Ser composes networks in series.
func Ser(ns ...*Network) *Network { return &Network{Kind: KindSeries, Children: ns} }

// Par composes networks in parallel.
func Par(ns ...*Network) *Network { return &Network{Kind: KindParallel, Children: ns} }

// scaleWidth multiplies every device width (drive-strength variants).
func (n *Network) scaleWidth(f float64) *Network {
	if n == nil {
		return nil
	}
	out := &Network{Kind: n.Kind, Pin: n.Pin, Width: n.Width * f}
	for _, c := range n.Children {
		out.Children = append(out.Children, c.scaleWidth(f))
	}
	return out
}

// conducts evaluates the network digitally: NMOS devices conduct when the
// gate signal is true; with pmos set, devices conduct when the gate is
// false.
func (n *Network) conducts(sig []bool, pmos bool) bool {
	switch n.Kind {
	case KindDevice:
		v := sig[n.Pin]
		if pmos {
			return !v
		}
		return v
	case KindSeries:
		for _, c := range n.Children {
			if !c.conducts(sig, pmos) {
				return false
			}
		}
		return true
	default:
		for _, c := range n.Children {
			if c.conducts(sig, pmos) {
				return true
			}
		}
		return false
	}
}

// devCount returns the number of transistors in the network.
func (n *Network) devCount() int {
	if n == nil {
		return 0
	}
	if n.Kind == KindDevice {
		return 1
	}
	c := 0
	for _, ch := range n.Children {
		c += ch.devCount()
	}
	return c
}

// gateCap returns the total gate capacitance the network presents on signal
// pin (sum of widths of devices gated by pin, times capPerWidth).
func (n *Network) gateCap(pin int, capPerWidth float64) float64 {
	if n.Kind == KindDevice {
		if n.Pin == pin {
			return n.Width * capPerWidth
		}
		return 0
	}
	c := 0.0
	for _, ch := range n.Children {
		c += ch.gateCap(pin, capPerWidth)
	}
	return c
}

// conductance computes the equivalent conductance of the network with the
// given analog gate voltages, total terminal voltage vTot across the
// network, and device evaluator id(vgsOrVsg, vds, width). Series devices
// combine as reciprocal sums, parallel as sums — the fast-SPICE
// approximation that keeps characterization O(#devices) per step.
func (n *Network) conductance(gateV []float64, vTot float64, id func(vg, vds, w float64) float64) float64 {
	const eps = 1e-4
	v := vTot
	if v < eps {
		v = eps
	}
	switch n.Kind {
	case KindDevice:
		return id(gateV[n.Pin], v, n.Width) / v
	case KindSeries:
		inv := 0.0
		for _, c := range n.Children {
			g := c.conductance(gateV, vTot, id)
			if g <= 0 {
				return 0
			}
			inv += 1 / g
		}
		if inv == 0 {
			return 0
		}
		return 1 / inv
	default:
		g := 0.0
		for _, c := range n.Children {
			g += c.conductance(gateV, vTot, id)
		}
		return g
	}
}

// Stage is one CMOS stage: a pull-up PMOS network between VDD and the stage
// output, and the dual pull-down NMOS network between output and ground.
type Stage struct {
	PullUp   *Network
	PullDown *Network
	// IntrinsicCap is the parasitic capacitance at the stage output
	// (drain junctions plus wiring), in farads.
	IntrinsicCap float64
}

// Cell is a multi-stage CMOS standard cell. Signals 0..NumInputs-1 are the
// external pins; signal NumInputs+i is the output of stage i. The cell
// output is the last stage's output.
type Cell struct {
	Name      string
	NumInputs int
	Stages    []Stage
	// GateCapPerWidth converts device width to gate capacitance (F).
	GateCapPerWidth float64
}

// NewCell returns a cell shell with default per-width gate capacitance.
func NewCell(name string, inputs int) *Cell {
	return &Cell{Name: name, NumInputs: inputs, GateCapPerWidth: 0.35e-15}
}

// AddStage appends a stage and returns its output signal index.
func (c *Cell) AddStage(pullUp, pullDown *Network, intrinsicCap float64) int {
	c.Stages = append(c.Stages, Stage{PullUp: pullUp, PullDown: pullDown, IntrinsicCap: intrinsicCap})
	return c.NumInputs + len(c.Stages) - 1
}

// Output returns the cell output signal index.
func (c *Cell) Output() int { return c.NumInputs + len(c.Stages) - 1 }

// NumSignals returns the size of the cell's signal space.
func (c *Cell) NumSignals() int { return c.NumInputs + len(c.Stages) }

// Transistors returns the total device count (area proxy).
func (c *Cell) Transistors() int {
	t := 0
	for _, s := range c.Stages {
		t += s.PullUp.devCount() + s.PullDown.devCount()
	}
	return t
}

// PinCap returns the input capacitance of pin (gate caps of all devices the
// pin drives, across all stages).
func (c *Cell) PinCap(pin int) float64 {
	if pin < 0 || pin >= c.NumInputs {
		panic(fmt.Sprintf("spice: pin %d out of range for %s", pin, c.Name))
	}
	cap := 0.0
	for _, s := range c.Stages {
		cap += s.PullUp.gateCap(pin, c.GateCapPerWidth)
		cap += s.PullDown.gateCap(pin, c.GateCapPerWidth)
	}
	return cap
}

// internalLoad returns the capacitance that downstream in-cell stages add
// to stage output signal sig.
func (c *Cell) internalLoad(sig int) float64 {
	cap := 0.0
	for _, s := range c.Stages {
		cap += s.PullUp.gateCap(sig, c.GateCapPerWidth)
		cap += s.PullDown.gateCap(sig, c.GateCapPerWidth)
	}
	return cap
}

// Logic evaluates the cell's digital function for an input vector by
// propagating through the stages (output high iff pull-up conducts). It
// panics on contention (both or neither network conducting), which would
// indicate a malformed topology.
func (c *Cell) Logic(inputs []bool) bool {
	if len(inputs) != c.NumInputs {
		panic(fmt.Sprintf("spice: %s expects %d inputs, got %d", c.Name, c.NumInputs, len(inputs)))
	}
	sig := make([]bool, c.NumSignals())
	copy(sig, inputs)
	for i, s := range c.Stages {
		up := s.PullUp.conducts(sig, true)
		down := s.PullDown.conducts(sig, false)
		if up == down {
			panic(fmt.Sprintf("spice: %s stage %d contention/floating for %v", c.Name, i, inputs))
		}
		sig[c.NumInputs+i] = up
	}
	return sig[c.Output()]
}

// ScaleDrive returns a drive-strength variant: all widths and intrinsic
// caps multiplied by f, name suffixed.
func (c *Cell) ScaleDrive(f float64, name string) *Cell {
	out := NewCell(name, c.NumInputs)
	out.GateCapPerWidth = c.GateCapPerWidth
	for _, s := range c.Stages {
		out.Stages = append(out.Stages, Stage{
			PullUp:       s.PullUp.scaleWidth(f),
			PullDown:     s.PullDown.scaleWidth(f),
			IntrinsicCap: s.IntrinsicCap * f,
		})
	}
	return out
}
