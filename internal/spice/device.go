// Package spice is a compact transistor-level transient simulator used as
// the ground-truth engine for standard-cell characterization. It replaces
// the commercial SPICE + BSIM flow of the surveyed work with an
// alpha-power-law MOSFET model (Sakurai–Newton) extended with a
// subthreshold-conduction term and first-order temperature dependence, and
// a series/parallel network solver over multi-stage CMOS cells.
//
// The simulator intentionally preserves the *cost structure* of real
// characterization: one (cell, arc, slew, load) measurement runs a full
// numerically integrated transient, so sweeping a 7×7 NLDM grid over a
// whole library is orders of magnitude more expensive than evaluating a
// trained surrogate — the asymmetry that experiment T1 quantifies.
package spice

import "math"

// Params collects the technology parameters of the device model. All
// voltages in volts, currents in amperes, capacitances in farads, times in
// seconds.
type Params struct {
	VDD   float64 // supply voltage
	TempK float64 // operating temperature

	VthN, VthP float64 // threshold voltage magnitudes at 300 K
	KN, KP     float64 // drive factor per unit width (A/V^Alpha)
	Alpha      float64 // velocity-saturation exponent (~1.3 at 5 nm)
	Lambda     float64 // channel-length modulation (1/V)
	SSFactor   float64 // subthreshold slope ideality factor n
	I0N, I0P   float64 // subthreshold prefactor per unit width (A)

	DVthDT float64 // threshold shift per kelvin below 300 K (V/K)
	MobExp float64 // mobility ~ (300/T)^MobExp
	MobCap float64 // cap on the cryogenic mobility gain factor
	DVthN  float64 // additional NMOS threshold shift (aging/variation), volts
	DVthP  float64 // additional PMOS threshold shift (aging/variation), volts
}

// Default returns the baseline 5-nm-class technology parameters at the
// given temperature. The absolute values are synthetic but tuned so that a
// minimum inverter drives a 1 fF load in O(10 ps) at nominal 0.7 V.
func Default(tempK float64) Params {
	return Params{
		VDD:      0.70,
		TempK:    tempK,
		VthN:     0.25,
		VthP:     0.25,
		KN:       6.0e-4,
		KP:       3.0e-4,
		Alpha:    1.3,
		Lambda:   0.08,
		SSFactor: 1.35,
		I0N:      4.0e-7,
		I0P:      2.0e-7,
		DVthDT:   3.0e-4,
		MobExp:   0.9,
		MobCap:   2.5,
	}
}

// thermalV returns kT/q at the operating temperature.
func (p Params) thermalV() float64 {
	const kOverQ = 8.617333e-5 // V/K
	t := p.TempK
	if t < 1 {
		t = 1
	}
	return kOverQ * t
}

// vthN returns the effective NMOS threshold including temperature shift and
// the externally applied aging/variation delta.
func (p Params) vthN() float64 {
	return p.VthN + p.DVthDT*(300-p.TempK) + p.DVthN
}

func (p Params) vthP() float64 {
	return p.VthP + p.DVthDT*(300-p.TempK) + p.DVthP
}

// mobility returns the temperature mobility multiplier.
func (p Params) mobility() float64 {
	if p.TempK >= 300 {
		return math.Pow(300/p.TempK, p.MobExp)
	}
	m := math.Pow(300/p.TempK, p.MobExp)
	if m > p.MobCap {
		m = p.MobCap
	}
	return m
}

// idN returns the NMOS drain current for gate-source voltage vgs and
// drain-source voltage vds (both >= 0), for a device of the given width
// multiple. The model blends subthreshold exponential conduction with the
// alpha-power-law strong-inversion region.
func (p Params) idN(vgs, vds, width float64) float64 {
	return p.id(vgs, vds, width, p.vthN(), p.KN, p.I0N)
}

// idP returns the PMOS current with source at VDD: vsg = VDD - vg,
// vsd = VDD - vd, both magnitudes passed positive.
func (p Params) idP(vsg, vsd, width float64) float64 {
	return p.id(vsg, vsd, width, p.vthP(), p.KP, p.I0P)
}

func (p Params) id(vgs, vds, width, vth, k, i0 float64) float64 {
	if vds <= 0 {
		return 0
	}
	vT := p.thermalV()
	// Subthreshold current: exponential in (vgs - vth), saturating in vds.
	// The exponent is clamped at zero so the term tops out at the weak/
	// strong-inversion boundary instead of exploding above threshold.
	expArg := (vgs - vth) / (p.SSFactor * vT)
	if expArg > 0 {
		expArg = 0
	}
	sub := i0 * width * math.Exp(expArg) * (1 - math.Exp(-vds/vT))
	if vgs <= vth {
		return sub
	}
	vgst := vgs - vth
	mob := p.mobility()
	idsat := k * mob * width * math.Pow(vgst, p.Alpha) * (1 + p.Lambda*vds)
	vdsat := 0.5 * vgst
	if vds >= vdsat {
		return idsat + sub
	}
	x := vds / vdsat
	return idsat*(2-x)*x + sub
}

// LeakN returns the OFF-state NMOS leakage (vgs = 0, vds = VDD).
func (p Params) LeakN(width float64) float64 { return p.idN(0, p.VDD, width) }

// LeakP returns the OFF-state PMOS leakage.
func (p Params) LeakP(width float64) float64 { return p.idP(0, p.VDD, width) }
