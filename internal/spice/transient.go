package spice

import (
	"fmt"
	"math"
)

// Measurement is the result of one characterized timing arc: the
// propagation delay (input 50% crossing to output 50% crossing), the output
// transition time (20%–80%), and the switching energy drawn from the
// supply during the event.
type Measurement struct {
	Delay  float64 // seconds
	Slew   float64 // seconds (20-80%)
	Energy float64 // joules
	Steps  int     // integration steps spent (cost accounting)
}

// Arc identifies one characterization point.
type Arc struct {
	Pin     int     // switching input pin
	RiseIn  bool    // input transitions low→high
	InSlew  float64 // input 20-80% transition time, seconds
	LoadCap float64 // external load, farads
	// SideInputs fixes the non-switching pins; it must sensitize the arc
	// (the output must change when the pin toggles).
	SideInputs []bool
}

// SensitizingSideInputs searches for side-input values under which toggling
// pin changes the cell output, preferring non-controlling values. It
// returns ok=false for untestable pins (should not happen for standard
// cells).
func SensitizingSideInputs(c *Cell, pin int) ([]bool, bool) {
	n := c.NumInputs
	for v := 0; v < 1<<uint(n); v++ {
		in := make([]bool, n)
		for i := range in {
			in[i] = v>>uint(i)&1 == 1
		}
		in[pin] = false
		lo := c.Logic(in)
		in[pin] = true
		hi := c.Logic(in)
		if lo != hi {
			return in, true
		}
	}
	return nil, false
}

// Simulate runs a transient analysis of one arc and measures delay, output
// slew and energy. The input ramps linearly over InSlew/0.6 seconds
// (converting the 20–80% spec to a full 0–100% ramp). Internal nodes start
// from the DC solution of the initial input vector.
func Simulate(c *Cell, p Params, arc Arc) (Measurement, error) {
	if arc.Pin < 0 || arc.Pin >= c.NumInputs {
		return Measurement{}, fmt.Errorf("spice: arc pin %d out of range for %s", arc.Pin, c.Name)
	}
	if len(arc.SideInputs) != c.NumInputs {
		return Measurement{}, fmt.Errorf("spice: %s: side inputs length %d != %d", c.Name, len(arc.SideInputs), c.NumInputs)
	}
	vdd := p.VDD
	nSig := c.NumSignals()

	// Initial digital state: switching pin at its start value.
	initial := make([]bool, c.NumInputs)
	copy(initial, arc.SideInputs)
	initial[arc.Pin] = !arc.RiseIn
	final := make([]bool, c.NumInputs)
	copy(final, arc.SideInputs)
	final[arc.Pin] = arc.RiseIn
	out0 := c.Logic(initial)
	out1 := c.Logic(final)
	if out0 == out1 {
		return Measurement{}, fmt.Errorf("spice: %s pin %d arc not sensitized by side inputs", c.Name, arc.Pin)
	}

	// Analog signal vector; DC-initialize internal nodes via digital logic.
	v := make([]float64, nSig)
	sigBool := make([]bool, nSig)
	copy(sigBool, initial)
	for i, s := range c.Stages {
		up := s.PullUp.conducts(sigBool, true)
		sigBool[c.NumInputs+i] = up
	}
	for i := 0; i < nSig; i++ {
		if sigBool[i] {
			v[i] = vdd
		}
	}

	// Per-stage output capacitance: intrinsic + in-cell fanout gate caps +
	// external load on the final output.
	caps := make([]float64, len(c.Stages))
	for i, s := range c.Stages {
		caps[i] = s.IntrinsicCap + c.internalLoad(c.NumInputs+i)
		if c.NumInputs+i == c.Output() {
			caps[i] += arc.LoadCap
		}
		if caps[i] < 1e-18 {
			caps[i] = 1e-18
		}
	}

	// Horizon estimate: ramp time plus RC time constants of every stage at
	// half drive.
	ramp := arc.InSlew / 0.6
	drive := p.idN(vdd, vdd/2, 1) // unit reference current
	horizon := ramp
	for i := range c.Stages {
		tau := caps[i] * vdd / math.Max(drive, 1e-9)
		horizon += 12 * tau
	}
	const maxExtend = 4
	dt := horizon / 3000
	if dt > ramp/40 && ramp > 0 {
		dt = ramp / 40
	}

	outSig := c.Output()
	outIdx := outSig - c.NumInputs
	rise := !out0 // output rising transition?

	// Crossing trackers.
	var tIn50, tOut50, tOut20, tOut80 float64 = -1, -1, -1, -1
	inStart := 0.0
	if !arc.RiseIn {
		inStart = vdd
	}
	prevIn, prevOut := inStart, v[outSig]
	energy := 0.0
	steps := 0

	deriv := func(vv []float64, dv []float64) (supply float64) {
		for i, s := range c.Stages {
			node := vv[c.NumInputs+i]
			vup := vdd - node
			iUp := 0.0
			if vup > 0 {
				g := s.PullUp.conductance(vv, vup, func(vg, vds, w float64) float64 {
					return p.idP(vdd-vg, vds, w)
				})
				iUp = g * vup
			}
			iDn := 0.0
			if node > 0 {
				g := s.PullDown.conductance(vv, node, func(vg, vds, w float64) float64 {
					return p.idN(vg, vds, w)
				})
				iDn = g * node
			}
			dv[i] = (iUp - iDn) / caps[i]
			supply += iUp
		}
		return supply
	}

	dv1 := make([]float64, len(c.Stages))
	dv2 := make([]float64, len(c.Stages))
	vMid := make([]float64, nSig)

	t := 0.0
	settledAfterRamp := false
	for ext := 0; ext <= maxExtend && !settledAfterRamp; ext++ {
		end := horizon * float64(ext+1)
		for t < end {
			// Input voltage at t and t+dt/2 (linear ramp).
			inV := func(tt float64) float64 {
				x := tt / ramp
				if x > 1 {
					x = 1
				}
				if x < 0 {
					x = 0
				}
				if arc.RiseIn {
					return vdd * x
				}
				return vdd * (1 - x)
			}
			v[arc.Pin] = inV(t)
			sup1 := deriv(v, dv1)
			copy(vMid, v)
			for i := range c.Stages {
				vMid[c.NumInputs+i] += dv1[i] * dt / 2
			}
			vMid[arc.Pin] = inV(t + dt/2)
			sup2 := deriv(vMid, dv2)
			for i := range c.Stages {
				v[c.NumInputs+i] += dv2[i] * dt
				if v[c.NumInputs+i] < 0 {
					v[c.NumInputs+i] = 0
				}
				if v[c.NumInputs+i] > vdd {
					v[c.NumInputs+i] = vdd
				}
			}
			energy += 0.5 * (sup1 + sup2) * vdd * dt
			t += dt
			steps++

			// Record crossings with linear interpolation.
			curIn := inV(t)
			if tIn50 < 0 && crossed(prevIn, curIn, vdd/2) {
				tIn50 = interp(t-dt, t, prevIn, curIn, vdd/2)
			}
			curOut := v[outSig]
			if rise {
				if tOut20 < 0 && crossed(prevOut, curOut, 0.2*vdd) {
					tOut20 = interp(t-dt, t, prevOut, curOut, 0.2*vdd)
				}
				if tOut50 < 0 && crossed(prevOut, curOut, 0.5*vdd) {
					tOut50 = interp(t-dt, t, prevOut, curOut, 0.5*vdd)
				}
				if tOut80 < 0 && crossed(prevOut, curOut, 0.8*vdd) {
					tOut80 = interp(t-dt, t, prevOut, curOut, 0.8*vdd)
				}
			} else {
				if tOut80 < 0 && crossed(prevOut, curOut, 0.2*vdd) {
					tOut80 = interp(t-dt, t, prevOut, curOut, 0.2*vdd)
				}
				if tOut50 < 0 && crossed(prevOut, curOut, 0.5*vdd) {
					tOut50 = interp(t-dt, t, prevOut, curOut, 0.5*vdd)
				}
				if tOut20 < 0 && crossed(prevOut, curOut, 0.8*vdd) {
					tOut20 = interp(t-dt, t, prevOut, curOut, 0.8*vdd)
				}
			}
			prevIn, prevOut = curIn, curOut

			if t > ramp && tOut50 > 0 && tOut80 > 0 && tOut20 > 0 {
				target := vdd
				if !rise {
					target = 0
				}
				if math.Abs(curOut-target) < 0.02*vdd {
					settledAfterRamp = true
					break
				}
			}
		}
	}
	if tIn50 < 0 || tOut50 < 0 || tOut20 < 0 || tOut80 < 0 {
		return Measurement{}, fmt.Errorf("spice: %s pin %d transient did not complete (in50=%g out50=%g)",
			c.Name, arc.Pin, tIn50, tOut50)
	}
	outSlew := tOut80 - tOut20
	if outSlew < 0 {
		outSlew = -outSlew
	}
	_ = outIdx
	return Measurement{Delay: tOut50 - tIn50, Slew: outSlew, Energy: energy, Steps: steps}, nil
}

func crossed(a, b, th float64) bool {
	return (a-th)*(b-th) <= 0 && a != b
}

func interp(t0, t1, v0, v1, th float64) float64 {
	if v1 == v0 {
		return t1
	}
	return t0 + (t1-t0)*(th-v0)/(v1-v0)
}

// Leakage returns the static supply current of the cell for a digital input
// vector, summing each stage's OFF-network subthreshold current.
func Leakage(c *Cell, p Params, inputs []bool) float64 {
	sig := make([]bool, c.NumSignals())
	copy(sig, inputs)
	gateV := make([]float64, c.NumSignals())
	for i, s := range c.Stages {
		up := s.PullUp.conducts(sig, true)
		sig[c.NumInputs+i] = up
	}
	for i, b := range sig {
		if b {
			gateV[i] = p.VDD
		}
	}
	total := 0.0
	for i, s := range c.Stages {
		if sig[c.NumInputs+i] {
			// Output high: leakage through the OFF pull-down.
			g := s.PullDown.conductance(gateV, p.VDD, func(vg, vds, w float64) float64 {
				return p.idN(vg, vds, w)
			})
			total += g * p.VDD
		} else {
			g := s.PullUp.conductance(gateV, p.VDD, func(vg, vds, w float64) float64 {
				return p.idP(p.VDD-vg, vds, w)
			})
			total += g * p.VDD
		}
	}
	return total
}
