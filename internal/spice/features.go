package spice

// Structural cell features consumed by the ML characterization surrogates
// (experiment T1): cheap topological descriptors that, together with the
// electrical query point (slew, load, ΔVth), predict arc delay without a
// transient simulation.

// MaxSeriesDepth returns the deepest series transistor chain in the
// network — the stacking-effect indicator.
func (n *Network) MaxSeriesDepth() int {
	if n == nil {
		return 0
	}
	switch n.Kind {
	case KindDevice:
		return 1
	case KindSeries:
		d := 0
		for _, c := range n.Children {
			d += c.MaxSeriesDepth()
		}
		return d
	default:
		d := 0
		for _, c := range n.Children {
			if cd := c.MaxSeriesDepth(); cd > d {
				d = cd
			}
		}
		return d
	}
}

// TotalWidth sums all device widths — the drive-strength proxy.
func (n *Network) TotalWidth() float64 {
	if n == nil {
		return 0
	}
	if n.Kind == KindDevice {
		return n.Width
	}
	w := 0.0
	for _, c := range n.Children {
		w += c.TotalWidth()
	}
	return w
}

// StructuralFeatures returns the per-(cell, pin) topology descriptor used
// as ML input: [pinCap(F), transistors, numInputs, numStages,
// outPullDownWidth, outPullUpWidth, outPullDownDepth, outPullUpDepth].
func (c *Cell) StructuralFeatures(pin int) []float64 {
	out := c.Stages[len(c.Stages)-1]
	return []float64{
		c.PinCap(pin),
		float64(c.Transistors()),
		float64(c.NumInputs),
		float64(len(c.Stages)),
		out.PullDown.TotalWidth(),
		out.PullUp.TotalWidth(),
		float64(out.PullDown.MaxSeriesDepth()),
		float64(out.PullUp.MaxSeriesDepth()),
	}
}

// NumStructuralFeatures is the length of StructuralFeatures vectors.
const NumStructuralFeatures = 8
