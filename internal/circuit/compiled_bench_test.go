package circuit

import (
	"fmt"
	"testing"
)

// BenchmarkCompile measures the cost of building the full compiled IR (CSR
// fanin/fanout, topo order, PI/PO maps) from a levelized netlist. Compile is
// called directly — Netlist.Compiled() would cache and return immediately —
// so best-of-N reflects the CSR-build cost the concurrent engines pay once
// per netlist.
func BenchmarkCompile(b *testing.B) {
	for _, gates := range []int{500, 2000, 8000} {
		n := Random(64, gates, 3)
		n.TopoOrder() // levelize outside the timed region, like every engine does
		b.Run(fmt.Sprintf("gates=%d", gates), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Compile(n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCone measures lazy cone materialization for every gate of a
// cold compiled IR (the dominant setup cost of PPSFP fault simulation).
func BenchmarkCone(b *testing.B) {
	n := Random(64, 2000, 3)
	if _, err := n.Compiled(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, err := Compile(n) // fresh IR each iteration: cones start cold
		if err != nil {
			b.Fatal(err)
		}
		for id := range n.Gates {
			if cone := c.Cone(id); len(cone) == 0 {
				b.Fatal("empty cone")
			}
		}
	}
}
