package circuit

import (
	"fmt"
	"math/rand"
)

// RippleAdder builds an n-bit ripple-carry adder with inputs a0..a(n-1),
// b0..b(n-1), cin and outputs s0..s(n-1), cout.
func RippleAdder(n int) *Netlist {
	if n < 1 {
		panic("circuit: adder width must be >= 1")
	}
	c := New(fmt.Sprintf("rca%d", n))
	for i := 0; i < n; i++ {
		c.MustAddGate(fmt.Sprintf("a%d", i), Input)
		c.MustAddGate(fmt.Sprintf("b%d", i), Input)
	}
	c.MustAddGate("cin", Input)
	carry := "cin"
	for i := 0; i < n; i++ {
		a, b := fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)
		p := fmt.Sprintf("p%d", i)  // propagate
		g := fmt.Sprintf("g%d", i)  // generate
		s := fmt.Sprintf("s%d", i)  // sum
		t := fmt.Sprintf("t%d", i)  // p & cin
		co := fmt.Sprintf("c%d", i) // carry out
		c.MustAddGate(p, Xor, a, b)
		c.MustAddGate(g, And, a, b)
		c.MustAddGate(s, Xor, p, carry)
		c.MustAddGate(t, And, p, carry)
		c.MustAddGate(co, Or, g, t)
		if err := c.MarkOutput(s); err != nil {
			panic(err)
		}
		carry = co
	}
	cout := c.MustAddGate("cout", Buf, carry)
	_ = cout
	if err := c.MarkOutput("cout"); err != nil {
		panic(err)
	}
	if err := c.Validate(); err != nil {
		panic(err)
	}
	return c
}

// ArrayMultiplier builds an n×n-bit array multiplier with inputs a*, b* and
// outputs m0..m(2n-1).
func ArrayMultiplier(n int) *Netlist {
	if n < 2 {
		panic("circuit: multiplier width must be >= 2")
	}
	c := New(fmt.Sprintf("mul%d", n))
	for i := 0; i < n; i++ {
		c.MustAddGate(fmt.Sprintf("a%d", i), Input)
		c.MustAddGate(fmt.Sprintf("b%d", i), Input)
	}
	// Partial products pp_i_j = a_i & b_j.
	pp := make([][]string, n)
	for i := 0; i < n; i++ {
		pp[i] = make([]string, n)
		for j := 0; j < n; j++ {
			name := fmt.Sprintf("pp_%d_%d", i, j)
			c.MustAddGate(name, And, fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", j))
			pp[i][j] = name
		}
	}
	// Column-wise accumulation with full adders built from gates.
	cols := make([][]string, 2*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			cols[i+j] = append(cols[i+j], pp[i][j])
		}
	}
	uid := 0
	fullAdder := func(x, y, z string) (sum, carry string) {
		uid++
		s1 := fmt.Sprintf("fx%d", uid)
		sum = fmt.Sprintf("fs%d", uid)
		a1 := fmt.Sprintf("fa%d", uid)
		a2 := fmt.Sprintf("fb%d", uid)
		carry = fmt.Sprintf("fc%d", uid)
		c.MustAddGate(s1, Xor, x, y)
		c.MustAddGate(sum, Xor, s1, z)
		c.MustAddGate(a1, And, x, y)
		c.MustAddGate(a2, And, s1, z)
		c.MustAddGate(carry, Or, a1, a2)
		return sum, carry
	}
	halfAdder := func(x, y string) (sum, carry string) {
		uid++
		sum = fmt.Sprintf("hs%d", uid)
		carry = fmt.Sprintf("hc%d", uid)
		c.MustAddGate(sum, Xor, x, y)
		c.MustAddGate(carry, And, x, y)
		return sum, carry
	}
	for col := 0; col < 2*n; col++ {
		for len(cols[col]) > 1 {
			if len(cols[col]) >= 3 {
				s, cy := fullAdder(cols[col][0], cols[col][1], cols[col][2])
				cols[col] = append(cols[col][3:], s)
				if col+1 < 2*n {
					cols[col+1] = append(cols[col+1], cy)
				}
			} else {
				s, cy := halfAdder(cols[col][0], cols[col][1])
				cols[col] = append(cols[col][2:], s)
				if col+1 < 2*n {
					cols[col+1] = append(cols[col+1], cy)
				}
			}
		}
	}
	for col := 0; col < 2*n; col++ {
		out := fmt.Sprintf("m%d", col)
		if len(cols[col]) == 1 {
			c.MustAddGate(out, Buf, cols[col][0])
		} else {
			// Empty top column (can happen for col = 2n-1 with no carry).
			c.MustAddGate(out, And, pp[0][0], pp[0][0])
		}
		if err := c.MarkOutput(out); err != nil {
			panic(err)
		}
	}
	if err := c.Validate(); err != nil {
		panic(err)
	}
	return c
}

// ParityTree builds an n-input XOR tree computing odd parity.
func ParityTree(n int) *Netlist {
	if n < 2 {
		panic("circuit: parity tree needs >= 2 inputs")
	}
	c := New(fmt.Sprintf("parity%d", n))
	layer := make([]string, n)
	for i := range layer {
		layer[i] = fmt.Sprintf("x%d", i)
		c.MustAddGate(layer[i], Input)
	}
	uid := 0
	for len(layer) > 1 {
		var next []string
		for i := 0; i+1 < len(layer); i += 2 {
			uid++
			name := fmt.Sprintf("px%d", uid)
			c.MustAddGate(name, Xor, layer[i], layer[i+1])
			next = append(next, name)
		}
		if len(layer)%2 == 1 {
			next = append(next, layer[len(layer)-1])
		}
		layer = next
	}
	c.MustAddGate("parity", Buf, layer[0])
	if err := c.MarkOutput("parity"); err != nil {
		panic(err)
	}
	if err := c.Validate(); err != nil {
		panic(err)
	}
	return c
}

// Comparator builds an n-bit equality comparator: eq = AND over XNOR(ai,bi).
func Comparator(n int) *Netlist {
	if n < 1 {
		panic("circuit: comparator width must be >= 1")
	}
	c := New(fmt.Sprintf("cmp%d", n))
	bits := make([]string, n)
	for i := 0; i < n; i++ {
		c.MustAddGate(fmt.Sprintf("a%d", i), Input)
		c.MustAddGate(fmt.Sprintf("b%d", i), Input)
		bits[i] = fmt.Sprintf("e%d", i)
		c.MustAddGate(bits[i], Xnor, fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i))
	}
	// Balanced AND tree.
	uid := 0
	for len(bits) > 1 {
		var next []string
		for i := 0; i+1 < len(bits); i += 2 {
			uid++
			name := fmt.Sprintf("and%d", uid)
			c.MustAddGate(name, And, bits[i], bits[i+1])
			next = append(next, name)
		}
		if len(bits)%2 == 1 {
			next = append(next, bits[len(bits)-1])
		}
		bits = next
	}
	c.MustAddGate("eq", Buf, bits[0])
	if err := c.MarkOutput("eq"); err != nil {
		panic(err)
	}
	if err := c.Validate(); err != nil {
		panic(err)
	}
	return c
}

// ALUSlice builds a small n-bit ALU (AND/OR/XOR/ADD selected by two control
// inputs) exercising reconvergent fanout, useful as a mid-size testbench.
func ALUSlice(n int) *Netlist {
	if n < 1 {
		panic("circuit: ALU width must be >= 1")
	}
	c := New(fmt.Sprintf("alu%d", n))
	for i := 0; i < n; i++ {
		c.MustAddGate(fmt.Sprintf("a%d", i), Input)
		c.MustAddGate(fmt.Sprintf("b%d", i), Input)
	}
	c.MustAddGate("op0", Input)
	c.MustAddGate("op1", Input)
	c.MustAddGate("nop0", Not, "op0")
	c.MustAddGate("nop1", Not, "op1")
	// One-hot select lines: s0=~op1~op0 (AND), s1=~op1 op0 (OR),
	// s2=op1~op0 (XOR), s3=op1 op0 (ADD).
	c.MustAddGate("s0", And, "nop1", "nop0")
	c.MustAddGate("s1", And, "nop1", "op0")
	c.MustAddGate("s2", And, "op1", "nop0")
	c.MustAddGate("s3", And, "op1", "op0")
	carry := "s3" // carry-in zero: AND with s3 keeps it masked; use constant trick
	// Build carry-in as a&~a = 0 equivalent: use XOR(a0,a0).
	c.MustAddGate("zero", Xor, "a0", "a0")
	carry = "zero"
	for i := 0; i < n; i++ {
		a, b := fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)
		c.MustAddGate(fmt.Sprintf("andv%d", i), And, a, b)
		c.MustAddGate(fmt.Sprintf("orv%d", i), Or, a, b)
		c.MustAddGate(fmt.Sprintf("xorv%d", i), Xor, a, b)
		// full adder
		c.MustAddGate(fmt.Sprintf("sum%d", i), Xor, fmt.Sprintf("xorv%d", i), carry)
		c.MustAddGate(fmt.Sprintf("cg%d", i), And, fmt.Sprintf("xorv%d", i), carry)
		c.MustAddGate(fmt.Sprintf("cout%d", i), Or, fmt.Sprintf("andv%d", i), fmt.Sprintf("cg%d", i))
		carry = fmt.Sprintf("cout%d", i)
		// Mux via AND-OR with one-hot selects.
		c.MustAddGate(fmt.Sprintf("m0_%d", i), And, "s0", fmt.Sprintf("andv%d", i))
		c.MustAddGate(fmt.Sprintf("m1_%d", i), And, "s1", fmt.Sprintf("orv%d", i))
		c.MustAddGate(fmt.Sprintf("m2_%d", i), And, "s2", fmt.Sprintf("xorv%d", i))
		c.MustAddGate(fmt.Sprintf("m3_%d", i), And, "s3", fmt.Sprintf("sum%d", i))
		c.MustAddGate(fmt.Sprintf("m01_%d", i), Or, fmt.Sprintf("m0_%d", i), fmt.Sprintf("m1_%d", i))
		c.MustAddGate(fmt.Sprintf("m23_%d", i), Or, fmt.Sprintf("m2_%d", i), fmt.Sprintf("m3_%d", i))
		c.MustAddGate(fmt.Sprintf("y%d", i), Or, fmt.Sprintf("m01_%d", i), fmt.Sprintf("m23_%d", i))
		if err := c.MarkOutput(fmt.Sprintf("y%d", i)); err != nil {
			panic(err)
		}
	}
	if err := c.Validate(); err != nil {
		panic(err)
	}
	return c
}

// Random builds a pseudo-random levelized netlist with nIn primary inputs
// and nGates logic gates. Gate types and fanin are drawn from seeded
// randomness, so the same arguments always yield the same circuit. All
// gates that end up with no fanout become primary outputs.
func Random(nIn, nGates int, seed int64) *Netlist {
	if nIn < 2 || nGates < 1 {
		panic("circuit: Random requires nIn >= 2 and nGates >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	c := New(fmt.Sprintf("rand_i%d_g%d_s%d", nIn, nGates, seed))
	signals := make([]string, 0, nIn+nGates)
	for i := 0; i < nIn; i++ {
		name := fmt.Sprintf("i%d", i)
		c.MustAddGate(name, Input)
		signals = append(signals, name)
	}
	types := []GateType{And, Nand, Or, Nor, Xor, Xnor, Not, Buf}
	weights := []int{20, 20, 20, 20, 8, 8, 3, 1} // NAND/NOR-heavy like real logic
	totalW := 0
	for _, w := range weights {
		totalW += w
	}
	pick := func() GateType {
		r := rng.Intn(totalW)
		for i, w := range weights {
			if r < w {
				return types[i]
			}
			r -= w
		}
		return Nand
	}
	for g := 0; g < nGates; g++ {
		t := pick()
		fanin := 1
		if t != Not && t != Buf {
			fanin = 2 + rng.Intn(2) // 2- or 3-input gates
			if t == Xor || t == Xnor {
				fanin = 2
			}
		}
		// Bias fanin selection toward recent signals to control depth while
		// still creating reconvergence.
		ins := make([]string, 0, fanin)
		used := map[string]bool{}
		for len(ins) < fanin {
			var idx int
			if rng.Float64() < 0.7 && len(signals) > nIn {
				lo := len(signals) - len(signals)/3 - 1
				idx = lo + rng.Intn(len(signals)-lo)
			} else {
				idx = rng.Intn(len(signals))
			}
			s := signals[idx]
			if used[s] {
				continue
			}
			used[s] = true
			ins = append(ins, s)
		}
		name := fmt.Sprintf("g%d", g)
		c.MustAddGate(name, t, ins...)
		signals = append(signals, name)
	}
	for _, g := range c.Gates {
		if len(g.Fanout) == 0 && g.Type != Input {
			if err := c.MarkOutput(g.Name); err != nil {
				panic(err)
			}
		}
	}
	if len(c.POs) == 0 {
		if err := c.MarkOutput(signals[len(signals)-1]); err != nil {
			panic(err)
		}
	}
	if err := c.Validate(); err != nil {
		panic(err)
	}
	return c
}

// Decoder builds an n-to-2^n decoder. Widths above 8 use the standard
// two-level predecode structure: the select bits split into groups of up
// to 4, each group feeds a small one-hot predecoder, and every output AND
// combines one line from each group — keeping all gate fanins within the
// simulator's bound while the primary-output count grows exponentially.
func Decoder(n int) *Netlist {
	if n < 1 || n > 16 {
		panic("circuit: decoder select width must be in [1,16]")
	}
	c := New(fmt.Sprintf("dec%d", n))
	for i := 0; i < n; i++ {
		c.MustAddGate(fmt.Sprintf("s%d", i), Input)
		c.MustAddGate(fmt.Sprintf("ns%d", i), Not, fmt.Sprintf("s%d", i))
	}
	// lit returns the true or complemented select literal.
	lit := func(i int, one bool) string {
		if one {
			return fmt.Sprintf("s%d", i)
		}
		return fmt.Sprintf("ns%d", i)
	}
	// line materializes the one-hot predecode line for value v of the select
	// group [lo, lo+w); for single-literal groups it is the literal itself.
	line := func(lo, w, v int) string {
		if w == 1 {
			return lit(lo, v == 1)
		}
		name := fmt.Sprintf("p%d_%d", lo, v)
		if _, ok := c.GateByName(name); !ok {
			terms := make([]string, w)
			for i := 0; i < w; i++ {
				terms[i] = lit(lo+i, v>>uint(i)&1 == 1)
			}
			c.MustAddGate(name, And, terms...)
		}
		return name
	}
	// Group widths: direct literals up to n==8; predecoded groups of <=4
	// above, so output ANDs have fanin ceil(n/4) <= 4.
	groupW := 1
	if n > 8 {
		groupW = 4
	}
	for v := 0; v < 1<<uint(n); v++ {
		var terms []string
		for lo := 0; lo < n; lo += groupW {
			w := groupW
			if lo+w > n {
				w = n - lo
			}
			terms = append(terms, line(lo, w, v>>uint(lo)&(1<<uint(w)-1)))
		}
		out := fmt.Sprintf("o%d", v)
		if len(terms) == 1 {
			c.MustAddGate(out, Buf, terms[0])
		} else {
			c.MustAddGate(out, And, terms...)
		}
		if err := c.MarkOutput(out); err != nil {
			panic(err)
		}
	}
	if err := c.Validate(); err != nil {
		panic(err)
	}
	return c
}

// GatedParity builds a bank of `units` independent signature monitors: each
// unit accumulates a chain of `chain` cascaded XOR stages over its own data
// inputs and drives its primary output through an AND with a wide
// (`enable`-input) enable conjunction. The structure models the classic
// random-pattern-resistant logic of bus monitors and MISR-style checkers
// behind address-decoded enables, and it is the adversarial case for
// per-pattern fault dropping: a fault in a chain is activated by roughly
// half of all patterns and its effect ripples through the remaining XOR
// stages (XOR never masks) only to be blocked at the enable gate, which a
// random fill opens with probability 2^-enable. Faults therefore stay live
// — and expensive to walk — for almost the entire pattern set, while each
// PODEM call resolves in the unit's small cone.
func GatedParity(units, chain, enable int) *Netlist {
	if units < 1 || chain < 2 || enable < 1 || enable > 16 {
		panic("circuit: gated parity needs units >= 1, chain >= 2, enable in [1,16]")
	}
	c := New(fmt.Sprintf("gparity%dx%d", units, chain))
	for u := 0; u < units; u++ {
		d := make([]string, chain+1)
		for i := range d {
			d[i] = fmt.Sprintf("d%d_%d", u, i)
			c.MustAddGate(d[i], Input)
		}
		en := make([]string, enable)
		for i := range en {
			en[i] = fmt.Sprintf("en%d_%d", u, i)
			c.MustAddGate(en[i], Input)
		}
		// Cascaded XOR chain: stage j folds data tap j+1 into the signature.
		prev := d[0]
		for j := 1; j <= chain; j++ {
			name := fmt.Sprintf("sig%d_%d", u, j)
			c.MustAddGate(name, Xor, prev, d[j])
			prev = name
		}
		// Enable conjunction, split to respect the simulator fanin bound.
		enName := fmt.Sprintf("en%d", u)
		if enable == 1 {
			enName = en[0]
		} else if enable <= 8 {
			c.MustAddGate(enName, And, en...)
		} else {
			lo := fmt.Sprintf("enlo%d", u)
			hi := fmt.Sprintf("enhi%d", u)
			c.MustAddGate(lo, And, en[:8]...)
			c.MustAddGate(hi, And, en[8:]...)
			c.MustAddGate(enName, And, lo, hi)
		}
		out := fmt.Sprintf("o%d", u)
		c.MustAddGate(out, And, prev, enName)
		if err := c.MarkOutput(out); err != nil {
			panic(err)
		}
	}
	if err := c.Validate(); err != nil {
		panic(err)
	}
	return c
}

// BenchmarkSuite returns the standard set of circuits used by the
// experiment harness, keyed by short name, in a deterministic order.
func BenchmarkSuite() []*Netlist {
	return []*Netlist{
		MustC17(),
		RippleAdder(8),
		RippleAdder(16),
		ArrayMultiplier(4),
		ArrayMultiplier(8),
		ALUSlice(8),
		Comparator(16),
		ParityTree(16),
		Random(20, 300, 1),
		Random(32, 1200, 2),
	}
}
