package circuit

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
)

// Compiled is the immutable compile-once IR of a netlist: the gate graph
// flattened into CSR (compressed sparse row) adjacency — one backing []int32
// per direction instead of a []int slice per gate — plus the dense side
// tables every engine in this repository needs (topological order and its
// inverse, levels, PI/PO index maps, gate types). It is built once per
// netlist via Netlist.Compiled and shared by the logic simulators, the fault
// simulator, STA, ATPG, DFT, BIST, SCOAP and diagnosis, so the compile cost
// is paid once — not once per worker goroutine or per request.
//
// Immutability contract: after Compile returns, no field of Compiled is ever
// written again; every slice may be read concurrently from any number of
// goroutines without synchronization. Callers must treat all exported slices
// as read-only. The only internal mutable state is the lazy fanout-cone
// cache, which is concurrency-safe (per-gate atomic publication of
// immutable slices; racing builders compute identical cones, so last-write
// wins is benign).
type Compiled struct {
	Net *Netlist

	// FaninOff/FaninDat are the CSR fanin adjacency: the fanin gate IDs of
	// gate g are FaninDat[FaninOff[g]:FaninOff[g+1]], in pin order.
	FaninOff []int32
	FaninDat []int32
	// FanoutOff/FanoutDat are the CSR fanout adjacency, in insertion order
	// (identical to the per-gate Fanout slices of the netlist).
	FanoutOff []int32
	FanoutDat []int32

	// Types[g] is gate g's function, copied dense for cache locality.
	Types []GateType
	// Level[g] is gate g's logic level (PIs at 0).
	Level []int32
	// Order holds gate IDs in topological order (inputs first); Tpos is its
	// inverse: Tpos[Order[i]] == i.
	Order []int32
	Tpos  []int32

	// PIPos[g] is g's index in Net.PIs, -1 for non-PI gates. POIdx[g] is
	// g's index in Net.POs, -1 when g is not a primary output.
	PIPos []int32
	POIdx []int32

	// Depth is the number of logic levels (PIs at level 0 count as one).
	Depth int

	// cones caches per-gate fanout cones (computed lazily by Cone).
	cones []atomic.Pointer[[]int32]
}

// compileCount tracks the total number of Compile calls in this process; a
// test/metrics hook that pins the compile-once-per-netlist contract of the
// concurrent fault-simulation paths.
var compileCount atomic.Int64

// CompileCount returns the total number of netlist compilations performed by
// this process so far.
func CompileCount() int64 { return compileCount.Load() }

// Compile builds the immutable IR for the netlist. It validates the netlist
// (structure and acyclicity) and additionally rejects unknown gate types, so
// a malformed netlist fails here — at compile time — rather than mid-
// simulation. Most callers should prefer Netlist.Compiled, which caches the
// result on the netlist.
func Compile(n *Netlist) (*Compiled, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	ng := len(n.Gates)
	for _, g := range n.Gates {
		if g.Type >= numGateTypes {
			return nil, fmt.Errorf("circuit: %s: gate %q has unknown type %v", n.Name, g.Name, g.Type)
		}
	}
	compileCount.Add(1)
	c := &Compiled{
		Net:       n,
		FaninOff:  make([]int32, ng+1),
		FanoutOff: make([]int32, ng+1),
		Types:     make([]GateType, ng),
		Level:     make([]int32, ng),
		Order:     make([]int32, ng),
		Tpos:      make([]int32, ng),
		PIPos:     make([]int32, ng),
		POIdx:     make([]int32, ng),
		Depth:     n.Depth(),
		cones:     make([]atomic.Pointer[[]int32], ng),
	}
	nIn, nOut := 0, 0
	for _, g := range n.Gates {
		nIn += len(g.Fanin)
		nOut += len(g.Fanout)
	}
	c.FaninDat = make([]int32, 0, nIn)
	c.FanoutDat = make([]int32, 0, nOut)
	for _, g := range n.Gates {
		c.Types[g.ID] = g.Type
		c.Level[g.ID] = int32(g.Level)
		c.PIPos[g.ID] = -1
		c.POIdx[g.ID] = -1
		for _, f := range g.Fanin {
			c.FaninDat = append(c.FaninDat, int32(f))
		}
		c.FaninOff[g.ID+1] = int32(len(c.FaninDat))
		for _, fo := range g.Fanout {
			c.FanoutDat = append(c.FanoutDat, int32(fo))
		}
		c.FanoutOff[g.ID+1] = int32(len(c.FanoutDat))
	}
	for i, id := range n.TopoOrder() {
		c.Order[i] = int32(id)
		c.Tpos[id] = int32(i)
	}
	for i, id := range n.PIs {
		c.PIPos[id] = int32(i)
	}
	for i, po := range n.POs {
		c.POIdx[po] = int32(i)
	}
	return c, nil
}

// Compiled returns the netlist's compiled IR, building it on first use. The
// result is cached on the netlist and shared between all callers; concurrent
// first calls are serialized so compilation happens exactly once. Mutating
// the netlist (AddGate, MarkOutput, ConnectScanD) invalidates the cache.
func (n *Netlist) Compiled() (*Compiled, error) {
	n.compileMu.Lock()
	defer n.compileMu.Unlock()
	if n.compiled != nil {
		return n.compiled, nil
	}
	c, err := Compile(n)
	if err != nil {
		return nil, err
	}
	n.compiled = c
	return c, nil
}

// NumGates returns the total gate count including primary inputs.
func (c *Compiled) NumGates() int { return len(c.Types) }

// NumPIs returns the primary-input count (including scan-cell outputs).
func (c *Compiled) NumPIs() int { return len(c.Net.PIs) }

// NumPOs returns the primary-output count (including scan D-sources).
func (c *Compiled) NumPOs() int { return len(c.Net.POs) }

// Fanin returns gate id's fanin gate IDs in pin order. Read-only view into
// the shared CSR storage.
func (c *Compiled) Fanin(id int) []int32 {
	return c.FaninDat[c.FaninOff[id]:c.FaninOff[id+1]]
}

// Fanout returns gate id's fanout gate IDs. Read-only view into the shared
// CSR storage.
func (c *Compiled) Fanout(id int) []int32 {
	return c.FanoutDat[c.FanoutOff[id]:c.FanoutOff[id+1]]
}

// coneScratch pools the per-construction scratch used by Cone so cache
// misses do not allocate visited bitmaps proportional to circuit size on
// every call.
var coneScratch = sync.Pool{New: func() any { return &coneBuf{} }}

type coneBuf struct {
	visit []uint32
	epoch uint32
	stack []int32
	pos   []int32
}

// Cone returns the structural fanout cone of gate id — every gate reachable
// from id through fanout edges, including id itself — in topological order.
// Cones are computed lazily and cached; the cache is concurrency-safe and
// the returned slice is immutable (callers must not modify it). Racing
// goroutines may build the same cone twice, but both builds are identical,
// so publication order is irrelevant.
func (c *Compiled) Cone(id int) []int32 {
	if p := c.cones[id].Load(); p != nil {
		return *p
	}
	sc := coneScratch.Get().(*coneBuf)
	if len(sc.visit) < len(c.Types) {
		sc.visit = make([]uint32, len(c.Types))
		sc.epoch = 0
	}
	sc.epoch++
	ve := sc.epoch
	sc.visit[id] = ve
	stack := append(sc.stack[:0], int32(id))
	pos := sc.pos[:0]
	for len(stack) > 0 {
		g := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		pos = append(pos, c.Tpos[g])
		for _, fo := range c.Fanout(int(g)) {
			if sc.visit[fo] != ve {
				sc.visit[fo] = ve
				stack = append(stack, fo)
			}
		}
	}
	slices.Sort(pos)
	cone := make([]int32, len(pos))
	for i, tp := range pos {
		cone[i] = c.Order[tp]
	}
	sc.stack, sc.pos = stack, pos // keep grown capacity for the next miss
	coneScratch.Put(sc)
	c.cones[id].Store(&cone)
	return cone
}
