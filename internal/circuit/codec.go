package circuit

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
)

// The canonical binary netlist codec. Unlike the .bench text round trip —
// which re-orders gates topologically, re-sorts outputs and re-groups DFF
// pseudo-PIs, so IDs and PI/PO positions drift — the binary form replays the
// exact construction sequence: gate IDs, PI order, PO order and scan edges
// are preserved bit for bit. That exactness is what distributed fault
// simulation relies on: a worker that decodes the coordinator's bytes
// indexes the same fault list, pattern rows and signature rows without any
// name-mapping layer, and ContentHash is a stable identity for the circuit
// (two netlists hash equal iff they were built by the same construction
// sequence).
//
// Layout (all integers big-endian):
//
//	magic "ITRN" | version u8 | name (u16 len + bytes)
//	gate count u32, then per gate in ID order:
//	    name (u16 len + bytes) | type u8 | fanin count u16 | fanin IDs u32...
//	PO count u32 | PO gate IDs u32...
//	scan count u32 | (DFF ID u32, D-source ID u32)... in DFF-ID order
//
// PIs are not encoded: AddGate rebuilds the PI list from the gate sequence
// (Input and DFF gates become PIs in ID order), which is exactly how the
// original netlist grew its own.
const (
	netlistMagic   = "ITRN"
	netlistVersion = 1
)

// MarshalBinary encodes the netlist in the canonical binary form.
func (n *Netlist) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(netlistMagic)
	buf.WriteByte(netlistVersion)
	if err := writeName(&buf, n.Name); err != nil {
		return nil, err
	}
	if len(n.Gates) > math.MaxUint32 {
		return nil, fmt.Errorf("circuit: %d gates exceed codec limit", len(n.Gates))
	}
	writeU32(&buf, uint32(len(n.Gates)))
	for _, g := range n.Gates {
		if err := writeName(&buf, g.Name); err != nil {
			return nil, err
		}
		buf.WriteByte(byte(g.Type))
		if len(g.Fanin) > math.MaxUint16 {
			return nil, fmt.Errorf("circuit: gate %q fanin %d exceeds codec limit", g.Name, len(g.Fanin))
		}
		writeU16(&buf, uint16(len(g.Fanin)))
		for _, f := range g.Fanin {
			writeU32(&buf, uint32(f))
		}
	}
	writeU32(&buf, uint32(len(n.POs)))
	for _, po := range n.POs {
		writeU32(&buf, uint32(po))
	}
	writeU32(&buf, uint32(len(n.ScanD)))
	// Map iteration order is random; emit scan edges in DFF-ID order so the
	// encoding (and therefore ContentHash) is deterministic.
	for _, g := range n.Gates {
		if d, ok := n.ScanD[g.ID]; ok {
			writeU32(&buf, uint32(g.ID))
			writeU32(&buf, uint32(d))
		}
	}
	return buf.Bytes(), nil
}

// ContentHash returns the sha256 of the canonical binary encoding — the
// content identity used to pin distributed jobs and artifacts to one exact
// circuit.
func (n *Netlist) ContentHash() ([32]byte, error) {
	data, err := n.MarshalBinary()
	if err != nil {
		return [32]byte{}, err
	}
	return sha256.Sum256(data), nil
}

// UnmarshalNetlist decodes a canonical binary netlist, rebuilding it through
// the ordinary construction API so every structural invariant is re-checked.
// The result is structurally identical to the encoded netlist: same gate
// IDs, names, types, fanin order, PI/PO order and scan edges.
func UnmarshalNetlist(data []byte) (*Netlist, error) {
	d := &netDecoder{data: data}
	if string(d.take(4)) != netlistMagic {
		return nil, fmt.Errorf("circuit: bad netlist magic")
	}
	if v := d.u8(); d.err == nil && v != netlistVersion {
		return nil, fmt.Errorf("circuit: netlist codec version %d, want %d", v, netlistVersion)
	}
	name := d.str()
	nGates := int(d.u32())
	if d.err != nil {
		return nil, d.err
	}
	// Each gate costs at least 4 bytes (name len + type + fanin count); a
	// length-sane bound before allocating.
	if nGates < 0 || nGates > len(data) {
		return nil, fmt.Errorf("circuit: implausible gate count %d", nGates)
	}
	n := New(name)
	faninNames := make([]string, 0, 8)
	for id := 0; id < nGates; id++ {
		gname := d.str()
		typ := GateType(d.u8())
		if typ >= numGateTypes {
			if d.err == nil {
				return nil, fmt.Errorf("circuit: gate %d has unknown type %d", id, typ)
			}
			return nil, d.err
		}
		nf := int(d.u16())
		faninNames = faninNames[:0]
		for i := 0; i < nf; i++ {
			f := int(d.u32())
			if d.err != nil {
				return nil, d.err
			}
			if f < 0 || f >= id {
				return nil, fmt.Errorf("circuit: gate %d fanin %d not yet defined", id, f)
			}
			faninNames = append(faninNames, n.Gates[f].Name)
		}
		if d.err != nil {
			return nil, d.err
		}
		if _, err := n.AddGate(gname, typ, faninNames...); err != nil {
			return nil, err
		}
	}
	nPOs := int(d.u32())
	for i := 0; i < nPOs; i++ {
		po := int(d.u32())
		if d.err != nil {
			return nil, d.err
		}
		if po < 0 || po >= nGates {
			return nil, fmt.Errorf("circuit: PO id %d out of range", po)
		}
		if err := n.MarkOutput(n.Gates[po].Name); err != nil {
			return nil, err
		}
	}
	nScan := int(d.u32())
	for i := 0; i < nScan; i++ {
		dff := int(d.u32())
		src := int(d.u32())
		if d.err != nil {
			return nil, d.err
		}
		if dff < 0 || dff >= nGates || src < 0 || src >= nGates {
			return nil, fmt.Errorf("circuit: scan edge %d-%d out of range", dff, src)
		}
		if err := n.ConnectScanD(n.Gates[dff].Name, n.Gates[src].Name); err != nil {
			return nil, err
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.data) != d.off {
		return nil, fmt.Errorf("circuit: %d trailing bytes after netlist", len(d.data)-d.off)
	}
	return n, n.Validate()
}

func writeU16(buf *bytes.Buffer, v uint16) {
	var b [2]byte
	binary.BigEndian.PutUint16(b[:], v)
	buf.Write(b[:])
}

func writeU32(buf *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	buf.Write(b[:])
}

func writeName(buf *bytes.Buffer, s string) error {
	if len(s) > math.MaxUint16 {
		return fmt.Errorf("circuit: name %q exceeds codec limit", s[:32]+"…")
	}
	writeU16(buf, uint16(len(s)))
	buf.WriteString(s)
	return nil
}

// netDecoder is a sticky-error cursor over the encoded bytes: out-of-bounds
// reads record the error once and make every later read a no-op, so decode
// paths stay linear instead of error-checking every field.
type netDecoder struct {
	data []byte
	off  int
	err  error
}

func (d *netDecoder) take(n int) []byte {
	if d.err != nil || d.off+n > len(d.data) {
		if d.err == nil {
			d.err = fmt.Errorf("circuit: truncated netlist encoding at byte %d", d.off)
		}
		return make([]byte, n)
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b
}

func (d *netDecoder) u8() uint8   { return d.take(1)[0] }
func (d *netDecoder) u16() uint16 { return binary.BigEndian.Uint16(d.take(2)) }
func (d *netDecoder) u32() uint32 { return binary.BigEndian.Uint32(d.take(4)) }
func (d *netDecoder) str() string { return string(d.take(int(d.u16()))) }
