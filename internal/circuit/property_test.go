package circuit

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: .bench serialization round-trips arbitrary generated netlists
// structurally (same gate count, IO shape, depth) and functionally (same
// stats per gate type).
func TestBenchRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := Random(4+rng.Intn(10), 10+rng.Intn(80), seed)
		var buf bytes.Buffer
		if err := c.WriteBench(&buf); err != nil {
			return false
		}
		back, err := ParseBenchString(buf.String(), c.Name)
		if err != nil {
			return false
		}
		a, b := c.Stats(), back.Stats()
		if a.PIs != b.PIs || a.POs != b.POs || a.Gates != b.Gates || a.Depth != b.Depth {
			return false
		}
		for gt, n := range a.ByType {
			if b.ByType[gt] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: SCOAP observability of any gate is at least the minimum
// observability of its fanouts (it can only get harder, never easier, to
// observe a signal than its easiest consumer path).
func TestSCOAPObservabilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		c := Random(6, 50+int(seed%50+50), seed)
		s := ComputeSCOAP(c)
		isPO := map[int]bool{}
		for _, po := range c.POs {
			isPO[po] = true
		}
		for _, g := range c.Gates {
			if isPO[g.ID] || len(g.Fanout) == 0 {
				continue
			}
			minFo := int(^uint(0) >> 1)
			for _, fo := range g.Fanout {
				if s.CO[fo] < minFo {
					minFo = s.CO[fo]
				}
			}
			if s.CO[g.ID] <= minFo {
				return false // must be strictly harder than the consumer
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: levelization puts every gate strictly above all of its fanins.
func TestLevelizeProperty(t *testing.T) {
	f := func(seed int64) bool {
		c := Random(5, 40, seed)
		if err := c.Levelize(); err != nil {
			return false
		}
		for _, g := range c.Gates {
			for _, fi := range g.Fanin {
				if c.Gates[fi].Level >= g.Level {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
