package circuit

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ParseBench reads a netlist in the ISCAS .bench format:
//
//	# comment
//	INPUT(a)
//	OUTPUT(y)
//	n1 = NAND(a, b)
//	y  = NOT(n1)
//
// Gate keywords are case-insensitive. Forward references are resolved after
// the whole file is read, so gates may be declared in any order.
func ParseBench(r io.Reader, name string) (*Netlist, error) {
	type decl struct {
		name  string
		typ   GateType
		fanin []string
		line  int
	}
	type scan struct {
		dff, dSource string
		line         int
	}
	var (
		decls   []decl
		outputs []string
		inputs  []string
		scans   []scan
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		upper := strings.ToUpper(line)
		switch {
		case strings.HasPrefix(upper, "INPUT(") || strings.HasPrefix(upper, "INPUT ("):
			arg, err := parenArg(line)
			if err != nil {
				return nil, fmt.Errorf("bench line %d: %w", lineNo, err)
			}
			inputs = append(inputs, arg)
		case strings.HasPrefix(upper, "OUTPUT(") || strings.HasPrefix(upper, "OUTPUT ("):
			arg, err := parenArg(line)
			if err != nil {
				return nil, fmt.Errorf("bench line %d: %w", lineNo, err)
			}
			outputs = append(outputs, arg)
		default:
			eq := strings.IndexByte(line, '=')
			if eq < 0 {
				return nil, fmt.Errorf("bench line %d: expected assignment, got %q", lineNo, line)
			}
			lhs := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			if !validName(lhs) {
				return nil, fmt.Errorf("bench line %d: invalid signal name %q", lineNo, lhs)
			}
			open := strings.IndexByte(rhs, '(')
			close := strings.LastIndexByte(rhs, ')')
			if open < 0 || close < open {
				return nil, fmt.Errorf("bench line %d: malformed gate expression %q", lineNo, rhs)
			}
			kw := strings.ToUpper(strings.TrimSpace(rhs[:open]))
			typ, ok := ParseGateType(kw)
			if !ok || typ == Input {
				return nil, fmt.Errorf("bench line %d: unknown gate type %q", lineNo, kw)
			}
			var fanin []string
			for _, f := range strings.Split(rhs[open+1:close], ",") {
				f = strings.TrimSpace(f)
				if f == "" {
					return nil, fmt.Errorf("bench line %d: empty fanin in %q", lineNo, rhs)
				}
				if !validName(f) {
					return nil, fmt.Errorf("bench line %d: invalid signal name %q", lineNo, f)
				}
				fanin = append(fanin, f)
			}
			if typ == DFF {
				// Full scan: the DFF becomes a pseudo-PI immediately and
				// its D connection is resolved after all gates exist (it
				// may close a sequential loop).
				if len(fanin) != 1 {
					return nil, fmt.Errorf("bench line %d: DFF takes one input, got %d", lineNo, len(fanin))
				}
				scans = append(scans, scan{dff: lhs, dSource: fanin[0], line: lineNo})
				continue
			}
			decls = append(decls, decl{lhs, typ, fanin, lineNo})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}

	n := New(name)
	for _, in := range inputs {
		if _, err := n.AddGate(in, Input); err != nil {
			return nil, err
		}
	}
	for _, sc := range scans {
		if _, err := n.AddGate(sc.dff, DFF); err != nil {
			return nil, fmt.Errorf("bench line %d: %w", sc.line, err)
		}
	}
	// Resolve forward references by repeatedly adding gates whose fanins
	// exist. A full pass with no progress means an undefined signal or cycle.
	pending := decls
	for len(pending) > 0 {
		var next []decl
		progress := false
		for _, d := range pending {
			ready := true
			for _, f := range d.fanin {
				if _, ok := n.byName[f]; !ok {
					ready = false
					break
				}
			}
			if !ready {
				next = append(next, d)
				continue
			}
			if _, err := n.AddGate(d.name, d.typ, d.fanin...); err != nil {
				return nil, fmt.Errorf("bench line %d: %w", d.line, err)
			}
			progress = true
		}
		if !progress {
			return nil, fmt.Errorf("bench: unresolved signals (first: gate %q at line %d)",
				next[0].name, next[0].line)
		}
		pending = next
	}
	for _, sc := range scans {
		if err := n.ConnectScanD(sc.dff, sc.dSource); err != nil {
			return nil, fmt.Errorf("bench line %d: %w", sc.line, err)
		}
	}
	for _, out := range outputs {
		if err := n.MarkOutput(out); err != nil {
			return nil, err
		}
	}
	return n, n.Validate()
}

func parenArg(line string) (string, error) {
	open := strings.IndexByte(line, '(')
	close := strings.LastIndexByte(line, ')')
	if open < 0 || close < open {
		return "", fmt.Errorf("malformed declaration %q", line)
	}
	arg := strings.TrimSpace(line[open+1 : close])
	if arg == "" {
		return "", fmt.Errorf("empty name in %q", line)
	}
	if !validName(arg) {
		return "", fmt.Errorf("invalid signal name %q", arg)
	}
	return arg, nil
}

// validName reports whether s can serve as a .bench signal name. Names
// containing the format's syntax characters or whitespace would serialize
// ambiguously (WriteBench joins fanins with commas inside parentheses), so
// the parser rejects them up front — this is what makes parse→write→parse
// a lossless round trip on every accepted netlist.
func validName(s string) bool {
	if s == "" {
		return false
	}
	return !strings.ContainsAny(s, "#(),=\" \t\r\n\v\f")
}

// ParseBenchString parses a .bench netlist from a string.
func ParseBenchString(src, name string) (*Netlist, error) {
	return ParseBench(strings.NewReader(src), name)
}

// WriteBench serializes the netlist in .bench format. Gates are emitted in
// topological order so the output parses without forward references.
func (n *Netlist) WriteBench(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", n.Name)
	fmt.Fprintf(bw, "# %d inputs, %d outputs, %d gates\n", len(n.PIs), len(n.POs), n.NumLogicGates())
	for _, id := range n.PIs {
		// DFF outputs are pseudo-PIs; they are declared by their DFF line,
		// not an INPUT line, or the file would re-parse with a duplicate.
		if n.Gates[id].Type == Input {
			fmt.Fprintf(bw, "INPUT(%s)\n", n.Gates[id].Name)
		}
	}
	outs := make([]string, 0, len(n.POs))
	for _, id := range n.POs {
		outs = append(outs, n.Gates[id].Name)
	}
	sort.Strings(outs)
	for _, o := range outs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", o)
	}
	for _, id := range n.TopoOrder() {
		g := n.Gates[id]
		switch g.Type {
		case Input:
			continue
		case DFF:
			if d, ok := n.ScanD[id]; ok {
				fmt.Fprintf(bw, "%s = DFF(%s)\n", g.Name, n.Gates[d].Name)
			}
			continue
		}
		names := make([]string, len(g.Fanin))
		for i, f := range g.Fanin {
			names[i] = n.Gates[f].Name
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", g.Name, g.Type, strings.Join(names, ", "))
	}
	return bw.Flush()
}

// C17 is the classic ISCAS-85 c17 benchmark, embedded for tests and demos.
const C17 = `# c17 (ISCAS-85)
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`

// MustC17 returns a freshly parsed c17 netlist.
func MustC17() *Netlist {
	n, err := ParseBenchString(C17, "c17")
	if err != nil {
		panic(err)
	}
	return n
}
