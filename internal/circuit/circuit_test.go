package circuit

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func TestAddGateBasics(t *testing.T) {
	n := New("t")
	if _, err := n.AddGate("a", Input); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddGate("b", Input); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddGate("y", Nand, "a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := n.MarkOutput("y"); err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	g, ok := n.GateByName("y")
	if !ok || g.Type != Nand || len(g.Fanin) != 2 {
		t.Fatalf("gate y malformed: %+v", g)
	}
	a, _ := n.GateByName("a")
	if len(a.Fanout) != 1 || a.Fanout[0] != g.ID {
		t.Fatalf("fanout of a not maintained: %+v", a)
	}
}

func TestAddGateErrors(t *testing.T) {
	n := New("t")
	n.MustAddGate("a", Input)
	if _, err := n.AddGate("a", Input); err == nil {
		t.Error("duplicate name must fail")
	}
	if _, err := n.AddGate("y", And, "a", "missing"); err == nil {
		t.Error("unknown fanin must fail")
	}
	if _, err := n.AddGate("n", Not, "a", "a"); err == nil {
		t.Error("NOT with 2 fanins must fail")
	}
	if _, err := n.AddGate("z", And); err == nil {
		t.Error("AND with no fanin must fail")
	}
	if err := n.MarkOutput("nope"); err == nil {
		t.Error("unknown output must fail")
	}
}

func TestValidateRequiresIO(t *testing.T) {
	n := New("empty")
	if err := n.Validate(); err == nil {
		t.Error("netlist without PIs must fail validation")
	}
	n.MustAddGate("a", Input)
	if err := n.Validate(); err == nil {
		t.Error("netlist without POs must fail validation")
	}
}

func TestLevelize(t *testing.T) {
	n := MustC17()
	if err := n.Levelize(); err != nil {
		t.Fatal(err)
	}
	g22, _ := n.GateByName("G22")
	g10, _ := n.GateByName("G10")
	g1, _ := n.GateByName("G1")
	if g1.Level != 0 {
		t.Errorf("PI level = %d", g1.Level)
	}
	if g10.Level != 1 {
		t.Errorf("G10 level = %d, want 1", g10.Level)
	}
	if g22.Level != 3 {
		t.Errorf("G22 level = %d, want 3", g22.Level)
	}
	if n.Depth() != 4 {
		t.Errorf("depth = %d, want 4", n.Depth())
	}
	// Topological order property: every gate appears after all its fanins.
	pos := make(map[int]int)
	for i, id := range n.TopoOrder() {
		pos[id] = i
	}
	for _, g := range n.Gates {
		for _, f := range g.Fanin {
			if pos[f] >= pos[g.ID] {
				t.Errorf("gate %s before its fanin", g.Name)
			}
		}
	}
}

func TestParseBenchC17(t *testing.T) {
	n, err := ParseBenchString(C17, "c17")
	if err != nil {
		t.Fatal(err)
	}
	if len(n.PIs) != 5 || len(n.POs) != 2 || n.NumLogicGates() != 6 {
		t.Fatalf("c17 shape wrong: %v", n.Stats())
	}
}

func TestParseBenchForwardRefs(t *testing.T) {
	src := `
OUTPUT(y)
y = NOT(mid)
mid = AND(a, b)
INPUT(a)
INPUT(b)
`
	n, err := ParseBenchString(src, "fwd")
	if err != nil {
		t.Fatal(err)
	}
	if n.NumLogicGates() != 2 {
		t.Fatalf("gates = %d", n.NumLogicGates())
	}
}

func TestParseBenchErrors(t *testing.T) {
	cases := []string{
		"INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n",    // unknown gate type
		"INPUT(a)\nOUTPUT(y)\ny NOT(a)\n",       // missing '='
		"INPUT(a)\nOUTPUT(y)\ny = NOT(q)\n",     // undefined signal
		"INPUT(a)\nOUTPUT(y)\ny = NOT(a,)\n",    // empty fanin
		"INPUT()\nOUTPUT(y)\ny = NOT(a)\n",      // empty input name
		"INPUT(a)\nOUTPUT(y)\ny = NOT a\n",      // malformed expression
		"INPUT(a)\nOUTPUT(z)\ny = NOT(a)\n",     // unknown output
		"INPUT(a)\na2 = INPUT(a)\ny = NOT(a)\n", // INPUT as gate keyword
	}
	for i, src := range cases {
		if _, err := ParseBenchString(src, "bad"); err == nil {
			t.Errorf("case %d: expected parse error", i)
		}
	}
}

func TestBenchRoundTrip(t *testing.T) {
	for _, c := range []*Netlist{MustC17(), RippleAdder(4), ALUSlice(4)} {
		var buf bytes.Buffer
		if err := c.WriteBench(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ParseBench(strings.NewReader(buf.String()), c.Name)
		if err != nil {
			t.Fatalf("%s: reparse failed: %v\n%s", c.Name, err, buf.String())
		}
		if back.NumLogicGates() != c.NumLogicGates() ||
			len(back.PIs) != len(c.PIs) || len(back.POs) != len(c.POs) {
			t.Errorf("%s: round trip changed shape: %v vs %v", c.Name, back.Stats(), c.Stats())
		}
	}
}

func TestGeneratorsValidate(t *testing.T) {
	for _, c := range BenchmarkSuite() {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
		if c.NumLogicGates() == 0 {
			t.Errorf("%s: no gates", c.Name)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(10, 50, 42)
	b := Random(10, 50, 42)
	var bufA, bufB bytes.Buffer
	if err := a.WriteBench(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteBench(&bufB); err != nil {
		t.Fatal(err)
	}
	if bufA.String() != bufB.String() {
		t.Error("Random with same seed differs")
	}
	c := Random(10, 50, 43)
	var bufC bytes.Buffer
	if err := c.WriteBench(&bufC); err != nil {
		t.Fatal(err)
	}
	if bufA.String() == bufC.String() {
		t.Error("Random with different seed identical")
	}
}

func TestStats(t *testing.T) {
	s := MustC17().Stats()
	if s.PIs != 5 || s.POs != 2 || s.Gates != 6 {
		t.Errorf("stats = %+v", s)
	}
	if s.ByType[Nand] != 6 {
		t.Errorf("NAND count = %d", s.ByType[Nand])
	}
	if !strings.Contains(s.String(), "c17") {
		t.Errorf("stats string = %q", s.String())
	}
}

func TestGateTypeString(t *testing.T) {
	if And.String() != "AND" || Xnor.String() != "XNOR" {
		t.Error("gate type names wrong")
	}
	if tt, ok := ParseGateType("NOR"); !ok || tt != Nor {
		t.Error("ParseGateType(NOR) failed")
	}
	if _, ok := ParseGateType("BOGUS"); ok {
		t.Error("ParseGateType must reject unknown")
	}
}

func TestSCOAPC17(t *testing.T) {
	n := MustC17()
	s := ComputeSCOAP(n)
	for _, pi := range n.PIs {
		if s.CC0[pi] != 1 || s.CC1[pi] != 1 {
			t.Errorf("PI %s controllability = (%d,%d)", n.Gates[pi].Name, s.CC0[pi], s.CC1[pi])
		}
	}
	for _, po := range n.POs {
		if s.CO[po] != 0 {
			t.Errorf("PO %s observability = %d", n.Gates[po].Name, s.CO[po])
		}
	}
	// NAND(a,b) with PI inputs: CC0 = CC1a+CC1b+1 = 3, CC1 = min(CC0)+1 = 2.
	g10, _ := n.GateByName("G10")
	if s.CC0[g10.ID] != 3 || s.CC1[g10.ID] != 2 {
		t.Errorf("G10 controllability = (%d,%d), want (3,2)", s.CC0[g10.ID], s.CC1[g10.ID])
	}
}

func TestSCOAPMonotone(t *testing.T) {
	// Deeper signals must never be easier to control than 1 (the PI cost).
	for _, c := range []*Netlist{RippleAdder(8), ALUSlice(4), Random(12, 200, 7)} {
		s := ComputeSCOAP(c)
		for _, g := range c.Gates {
			if s.CC0[g.ID] < 1 || s.CC1[g.ID] < 1 {
				t.Errorf("%s/%s: controllability below 1", c.Name, g.Name)
			}
			if s.CO[g.ID] < 0 {
				t.Errorf("%s/%s: negative observability", c.Name, g.Name)
			}
		}
	}
}

func TestSCOAPXor(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(y)
y = XOR(a, b)
`
	n, err := ParseBenchString(src, "x")
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeSCOAP(n)
	y, _ := n.GateByName("y")
	// XOR of two PIs: CC0 = min(1+1, 1+1)+1 = 3, CC1 = 3.
	if s.CC0[y.ID] != 3 || s.CC1[y.ID] != 3 {
		t.Errorf("XOR controllability = (%d,%d), want (3,3)", s.CC0[y.ID], s.CC1[y.ID])
	}
}

func TestCycleDetection(t *testing.T) {
	n := New("cyc")
	n.MustAddGate("a", Input)
	// Build a cycle manually (cannot be expressed via AddGate since fanin
	// must exist, so wire it up directly).
	g1 := &Gate{ID: 1, Name: "g1", Type: And}
	g2 := &Gate{ID: 2, Name: "g2", Type: And}
	g1.Fanin = []int{0, 2}
	g2.Fanin = []int{1}
	g1.Fanout = []int{2}
	g2.Fanout = []int{1}
	n.Gates = append(n.Gates, g1, g2)
	n.byName["g1"], n.byName["g2"] = 1, 2
	n.POs = []int{2}
	if err := n.Levelize(); err == nil {
		t.Error("cycle must be detected")
	}
}

func TestDecoder(t *testing.T) {
	d := Decoder(3)
	if len(d.POs) != 8 {
		t.Fatalf("decoder outputs = %d", len(d.POs))
	}
}

// evalNetlist computes all gate values for one input assignment, keyed by
// PI gate ID — a tiny reference evaluator for generator functional tests.
func evalNetlist(t *testing.T, n *Netlist, in map[int]bool) []bool {
	t.Helper()
	vals := make([]bool, len(n.Gates))
	for _, id := range n.TopoOrder() {
		g := n.Gates[id]
		if g.Type == Input {
			vals[id] = in[id]
			continue
		}
		var v bool
		switch g.Type {
		case Buf, DFF:
			v = vals[g.Fanin[0]]
		case Not:
			v = !vals[g.Fanin[0]]
		case And, Nand:
			v = true
			for _, f := range g.Fanin {
				v = v && vals[f]
			}
			v = v != (g.Type == Nand)
		case Or, Nor:
			for _, f := range g.Fanin {
				v = v || vals[f]
			}
			v = v != (g.Type == Nor)
		case Xor, Xnor:
			for _, f := range g.Fanin {
				v = v != vals[f]
			}
			v = v != (g.Type == Xnor)
		default:
			t.Fatalf("unexpected gate type %v", g.Type)
		}
		vals[id] = v
	}
	return vals
}

// TestDecoderPredecoded checks the two-level predecode structure used above
// width 8: fanins stay within the simulator bound and the outputs remain a
// correct one-hot decode of the select value.
func TestDecoderPredecoded(t *testing.T) {
	d := Decoder(11)
	if len(d.POs) != 2048 {
		t.Fatalf("decoder outputs = %d", len(d.POs))
	}
	for _, g := range d.Gates {
		if len(g.Fanin) > 8 {
			t.Fatalf("gate %s fanin %d exceeds simulator bound", g.Name, len(g.Fanin))
		}
	}
	for _, sel := range []int{0, 1, 1024, 1027, 2047} {
		in := map[int]bool{}
		for i := 0; i < 11; i++ {
			in[d.PIs[i]] = sel>>uint(i)&1 == 1
		}
		vals := evalNetlist(t, d, in)
		for v, po := range d.POs {
			if vals[po] != (v == sel) {
				t.Fatalf("sel=%d: output o%d = %v", sel, v, vals[po])
			}
		}
	}
}

// TestGatedParity checks the gated signature-monitor bank: each output must
// equal (parity of the unit's data inputs) AND (conjunction of its enables).
func TestGatedParity(t *testing.T) {
	const units, chain, enable = 3, 5, 9
	n := GatedParity(units, chain, enable)
	if len(n.POs) != units {
		t.Fatalf("outputs = %d, want %d", len(n.POs), units)
	}
	piPerUnit := chain + 1 + enable
	if len(n.PIs) != units*piPerUnit {
		t.Fatalf("inputs = %d, want %d", len(n.PIs), units*piPerUnit)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		in := map[int]bool{}
		for _, pi := range n.PIs {
			in[pi] = rng.Intn(2) == 1
		}
		// Bias some trials toward open enables so both AND outcomes occur.
		if trial%2 == 0 {
			for u := 0; u < units; u++ {
				for i := 0; i < enable; i++ {
					id, ok := n.GateByName(fmt.Sprintf("en%d_%d", u, i))
					if !ok {
						t.Fatal("missing enable input")
					}
					in[id.ID] = true
				}
			}
		}
		vals := evalNetlist(t, n, in)
		for u := 0; u < units; u++ {
			want := true
			for i := 0; i < enable; i++ {
				id, _ := n.GateByName(fmt.Sprintf("en%d_%d", u, i))
				want = want && in[id.ID]
			}
			parity := false
			for i := 0; i <= chain; i++ {
				id, _ := n.GateByName(fmt.Sprintf("d%d_%d", u, i))
				parity = parity != in[id.ID]
			}
			want = want && parity
			if vals[n.POs[u]] != want {
				t.Fatalf("trial %d unit %d: output %v, want %v", trial, u, vals[n.POs[u]], want)
			}
		}
	}
}

func TestGeneratorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"adder":   func() { RippleAdder(0) },
		"mul":     func() { ArrayMultiplier(1) },
		"parity":  func() { ParityTree(1) },
		"cmp":     func() { Comparator(0) },
		"alu":     func() { ALUSlice(0) },
		"random":  func() { Random(1, 10, 0) },
		"decoder": func() { Decoder(0) },
		"decwide": func() { Decoder(17) },
		"gparity": func() { GatedParity(0, 5, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on invalid size", name)
				}
			}()
			f()
		}()
	}
}
