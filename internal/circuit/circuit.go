// Package circuit models gate-level combinational netlists: construction,
// ISCAS-style .bench serialization, levelization, structural analysis
// (SCOAP testability measures) and parametric benchmark generators.
//
// Sequential elements (DFF) are supported under the standard full-scan
// assumption: a flip-flop's output behaves as a pseudo primary input and its
// input as a pseudo primary output, so every test method in this repository
// operates on the combinational core.
package circuit

import (
	"fmt"
	"sort"
	"sync"
)

// GateType enumerates the supported gate functions.
type GateType uint8

// Gate function constants. Input denotes a primary input (no fanin); DFF is
// a scan flip-flop treated as pseudo-PI/pseudo-PO.
const (
	Input GateType = iota
	Buf
	Not
	And
	Nand
	Or
	Nor
	Xor
	Xnor
	DFF
	numGateTypes
)

var gateNames = [...]string{
	Input: "INPUT", Buf: "BUF", Not: "NOT", And: "AND", Nand: "NAND",
	Or: "OR", Nor: "NOR", Xor: "XOR", Xnor: "XNOR", DFF: "DFF",
}

// String returns the .bench keyword for the gate type.
func (t GateType) String() string {
	if int(t) < len(gateNames) {
		return gateNames[t]
	}
	return fmt.Sprintf("GATE(%d)", uint8(t))
}

// ParseGateType resolves a .bench keyword (case-insensitive handled by the
// parser) to a GateType.
func ParseGateType(s string) (GateType, bool) {
	for t, name := range gateNames {
		if name == s {
			return GateType(t), true
		}
	}
	return 0, false
}

// MaxFanin returns the maximum legal structural fanin count for the type,
// or -1 for unbounded. A DFF carries no structural fanin: under the
// full-scan assumption its output is a pseudo primary input and its D
// source is registered as a pseudo primary output via AddScanCell, cutting
// sequential loops out of the combinational graph.
func (t GateType) MaxFanin() int {
	switch t {
	case Input, DFF:
		return 0
	case Buf, Not:
		return 1
	default:
		return -1
	}
}

// Inverting reports whether the gate output inverts its "core" function
// (NOT, NAND, NOR, XNOR).
func (t GateType) Inverting() bool {
	return t == Not || t == Nand || t == Nor || t == Xnor
}

// Gate is one node of the netlist. Fanin and Fanout hold gate IDs, which are
// dense indices into Netlist.Gates.
type Gate struct {
	ID     int
	Name   string
	Type   GateType
	Fanin  []int
	Fanout []int
	Level  int // set by Levelize; inputs are level 0
}

// Netlist is a gate-level circuit. Gates are stored in a dense slice; PIs
// and POs reference gate IDs. A gate may be both internal and a PO.
type Netlist struct {
	Name  string
	Gates []*Gate
	PIs   []int // primary inputs (and DFF outputs under full scan)
	POs   []int // primary outputs (and DFF D-sources under full scan)
	// ScanD maps each DFF gate ID to the gate driving its D input. The
	// edge is informational only — it is not part of the combinational
	// graph (full scan cuts it).
	ScanD  map[int]int
	byName map[string]int
	order  []int // topological order, built by Levelize
	levels int

	// compiled caches the immutable IR built by Compiled(); compileMu
	// serializes concurrent first compilations. Construction-time mutators
	// (AddGate, MarkOutput) invalidate the cache.
	compileMu sync.Mutex
	compiled  *Compiled
}

// New returns an empty netlist with the given name.
func New(name string) *Netlist {
	return &Netlist{Name: name, byName: make(map[string]int)}
}

// AddGate appends a gate with the given name, type and fanin names. All
// fanin gates must already exist. It returns the new gate's ID.
func (n *Netlist) AddGate(name string, t GateType, fanin ...string) (int, error) {
	if _, dup := n.byName[name]; dup {
		return 0, fmt.Errorf("circuit: duplicate gate name %q", name)
	}
	if mf := t.MaxFanin(); mf >= 0 && len(fanin) != mf {
		return 0, fmt.Errorf("circuit: gate %q type %v requires %d fanin, got %d", name, t, mf, len(fanin))
	}
	if t != Input && t != DFF && len(fanin) == 0 {
		return 0, fmt.Errorf("circuit: gate %q type %v requires fanin", name, t)
	}
	g := &Gate{ID: len(n.Gates), Name: name, Type: t}
	for _, fn := range fanin {
		fid, ok := n.byName[fn]
		if !ok {
			return 0, fmt.Errorf("circuit: gate %q references unknown fanin %q", name, fn)
		}
		g.Fanin = append(g.Fanin, fid)
	}
	n.Gates = append(n.Gates, g)
	n.byName[name] = g.ID
	for _, fid := range g.Fanin {
		n.Gates[fid].Fanout = append(n.Gates[fid].Fanout, g.ID)
	}
	if t == Input || t == DFF {
		n.PIs = append(n.PIs, g.ID)
	}
	n.order = nil
	n.compiled = nil
	return g.ID, nil
}

// MustAddGate is AddGate that panics on error; intended for generators.
func (n *Netlist) MustAddGate(name string, t GateType, fanin ...string) int {
	id, err := n.AddGate(name, t, fanin...)
	if err != nil {
		panic(err)
	}
	return id
}

// ConnectScanD records the D-source of a scan cell (DFF) and marks it as a
// pseudo primary output. Both gates must already exist.
func (n *Netlist) ConnectScanD(dff, dSource string) error {
	fid, ok := n.byName[dff]
	if !ok || n.Gates[fid].Type != DFF {
		return fmt.Errorf("circuit: %q is not a DFF", dff)
	}
	did, ok := n.byName[dSource]
	if !ok {
		return fmt.Errorf("circuit: unknown scan D-source %q", dSource)
	}
	if n.ScanD == nil {
		n.ScanD = make(map[int]int)
	}
	n.ScanD[fid] = did
	return n.MarkOutput(dSource)
}

// MarkOutput declares the named gate a primary output.
func (n *Netlist) MarkOutput(name string) error {
	id, ok := n.byName[name]
	if !ok {
		return fmt.Errorf("circuit: unknown output %q", name)
	}
	for _, po := range n.POs {
		if po == id {
			return nil
		}
	}
	n.POs = append(n.POs, id)
	n.compiled = nil
	return nil
}

// GateByName returns the gate with the given name.
func (n *Netlist) GateByName(name string) (*Gate, bool) {
	id, ok := n.byName[name]
	if !ok {
		return nil, false
	}
	return n.Gates[id], true
}

// NumGates returns the total number of gates including primary inputs.
func (n *Netlist) NumGates() int { return len(n.Gates) }

// NumLogicGates returns the number of gates excluding primary inputs/DFFs.
func (n *Netlist) NumLogicGates() int {
	c := 0
	for _, g := range n.Gates {
		if g.Type != Input && g.Type != DFF {
			c++
		}
	}
	return c
}

// Levelize assigns a level to every gate (PIs at 0, each gate one past its
// deepest fanin) and caches a topological order. It returns an error when
// the netlist contains a combinational cycle or a dangling reference.
func (n *Netlist) Levelize() error {
	if n.order != nil {
		return nil
	}
	indeg := make([]int, len(n.Gates))
	for _, g := range n.Gates {
		indeg[g.ID] = len(g.Fanin)
	}
	queue := make([]int, 0, len(n.Gates))
	for _, g := range n.Gates {
		if indeg[g.ID] == 0 {
			g.Level = 0
			queue = append(queue, g.ID)
		}
	}
	order := make([]int, 0, len(n.Gates))
	maxLevel := 0
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		g := n.Gates[id]
		if g.Level > maxLevel {
			maxLevel = g.Level
		}
		for _, fo := range g.Fanout {
			fg := n.Gates[fo]
			if l := g.Level + 1; l > fg.Level {
				fg.Level = l
			}
			indeg[fo]--
			if indeg[fo] == 0 {
				queue = append(queue, fo)
			}
		}
	}
	if len(order) != len(n.Gates) {
		return fmt.Errorf("circuit: %s contains a combinational cycle (%d of %d gates ordered)",
			n.Name, len(order), len(n.Gates))
	}
	n.order = order
	n.levels = maxLevel + 1
	return nil
}

// TopoOrder returns gate IDs in topological order (inputs first). The caller
// must not mutate the returned slice. Levelize must have succeeded.
func (n *Netlist) TopoOrder() []int {
	if n.order == nil {
		if err := n.Levelize(); err != nil {
			panic(err)
		}
	}
	return n.order
}

// Depth returns the number of logic levels (PIs at level 0 count as one).
func (n *Netlist) Depth() int {
	n.TopoOrder()
	return n.levels
}

// Validate performs structural sanity checks: every non-input gate has
// fanin, every PO exists, no floating gates that drive nothing and are not
// POs (reported, not fatal), and the netlist is acyclic.
func (n *Netlist) Validate() error {
	if len(n.PIs) == 0 {
		return fmt.Errorf("circuit: %s has no primary inputs", n.Name)
	}
	if len(n.POs) == 0 {
		return fmt.Errorf("circuit: %s has no primary outputs", n.Name)
	}
	for _, g := range n.Gates {
		if g.Type != Input && g.Type != DFF && len(g.Fanin) == 0 {
			return fmt.Errorf("circuit: gate %q has no fanin", g.Name)
		}
		for _, f := range g.Fanin {
			if f < 0 || f >= len(n.Gates) {
				return fmt.Errorf("circuit: gate %q has out-of-range fanin %d", g.Name, f)
			}
		}
	}
	return n.Levelize()
}

// Stats summarizes a netlist for reporting.
type Stats struct {
	Name    string
	PIs     int
	POs     int
	Gates   int // logic gates, excluding PIs
	Depth   int
	ByType  map[GateType]int
	Fanout  float64 // average fanout of logic signals
	MaxFano int
}

// Stats computes summary statistics.
func (n *Netlist) Stats() Stats {
	s := Stats{
		Name: n.Name, PIs: len(n.PIs), POs: len(n.POs),
		Gates: n.NumLogicGates(), Depth: n.Depth(),
		ByType: make(map[GateType]int),
	}
	total, cnt := 0, 0
	for _, g := range n.Gates {
		s.ByType[g.Type]++
		total += len(g.Fanout)
		cnt++
		if len(g.Fanout) > s.MaxFano {
			s.MaxFano = len(g.Fanout)
		}
	}
	if cnt > 0 {
		s.Fanout = float64(total) / float64(cnt)
	}
	return s
}

// String renders a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("%s: %d PI, %d PO, %d gates, depth %d, avg fanout %.2f",
		s.Name, s.PIs, s.POs, s.Gates, s.Depth, s.Fanout)
}

// InputIndex returns a map from gate ID to its position in PIs.
func (n *Netlist) InputIndex() map[int]int {
	m := make(map[int]int, len(n.PIs))
	for i, id := range n.PIs {
		m[id] = i
	}
	return m
}

// SortedNames returns all gate names sorted, for deterministic output.
func (n *Netlist) SortedNames() []string {
	names := make([]string, 0, len(n.Gates))
	for _, g := range n.Gates {
		names = append(names, g.Name)
	}
	sort.Strings(names)
	return names
}
