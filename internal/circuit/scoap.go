package circuit

// SCOAP implements the Sandia Controllability/Observability Analysis
// Program testability measures (Goldstein 1979). CC0/CC1 estimate the
// minimum number of line assignments required to set a signal to 0/1; CO
// estimates the effort to observe a signal at a primary output. The ATPG
// backtrace uses these measures to pick the cheapest input to justify an
// objective, and they also serve as topological features for the ML models.
type SCOAP struct {
	CC0 []int // controllability to 0, per gate ID
	CC1 []int // controllability to 1, per gate ID
	CO  []int // observability, per gate ID
}

const scoapInf = 1 << 28

// ComputeSCOAP calculates the combinational SCOAP measures for the netlist.
// It panics when the netlist does not compile (cycle, dangling reference),
// mirroring TopoOrder; use ComputeSCOAPCompiled with an already-compiled IR
// to avoid the error path entirely.
func ComputeSCOAP(n *Netlist) *SCOAP {
	c, err := n.Compiled()
	if err != nil {
		panic(err)
	}
	return ComputeSCOAPCompiled(c)
}

// ComputeSCOAPCompiled calculates the SCOAP measures over the shared
// compiled IR.
func ComputeSCOAPCompiled(c *Compiled) *SCOAP {
	ng := c.NumGates()
	s := &SCOAP{
		CC0: make([]int, ng),
		CC1: make([]int, ng),
		CO:  make([]int, ng),
	}
	// Controllability: forward pass in topological order.
	for _, id32 := range c.Order {
		id := int(id32)
		fanin := c.Fanin(id)
		switch c.Types[id] {
		case Input, DFF:
			s.CC0[id], s.CC1[id] = 1, 1
		case Buf:
			f := fanin[0]
			s.CC0[id], s.CC1[id] = s.CC0[f]+1, s.CC1[f]+1
		case Not:
			f := fanin[0]
			s.CC0[id], s.CC1[id] = s.CC1[f]+1, s.CC0[f]+1
		case And, Nand:
			sum1, min0 := 1, scoapInf
			for _, f := range fanin {
				sum1 += s.CC1[f]
				if s.CC0[f] < min0 {
					min0 = s.CC0[f]
				}
			}
			c1, c0 := sum1, min0+1
			if c.Types[id] == Nand {
				c0, c1 = c1, c0
			}
			s.CC0[id], s.CC1[id] = c0, c1
		case Or, Nor:
			sum0, min1 := 1, scoapInf
			for _, f := range fanin {
				sum0 += s.CC0[f]
				if s.CC1[f] < min1 {
					min1 = s.CC1[f]
				}
			}
			c0, c1 := sum0, min1+1
			if c.Types[id] == Nor {
				c0, c1 = c1, c0
			}
			s.CC0[id], s.CC1[id] = c0, c1
		case Xor, Xnor:
			// For 2-input XOR: CC1 = min(CC1a+CC0b, CC0a+CC1b)+1,
			// CC0 = min(CC0a+CC0b, CC1a+CC1b)+1. Generalize pairwise.
			c0, c1 := s.CC0[fanin[0]], s.CC1[fanin[0]]
			for _, f := range fanin[1:] {
				n0 := min(c0+s.CC0[f], c1+s.CC1[f])
				n1 := min(c1+s.CC0[f], c0+s.CC1[f])
				c0, c1 = n0, n1
			}
			c0++
			c1++
			if c.Types[id] == Xnor {
				c0, c1 = c1, c0
			}
			s.CC0[id], s.CC1[id] = c0, c1
		}
	}
	// Observability: backward pass in reverse topological order.
	for i := range s.CO {
		s.CO[i] = scoapInf
	}
	for _, po := range c.Net.POs {
		s.CO[po] = 0
	}
	for i := len(c.Order) - 1; i >= 0; i-- {
		id := int(c.Order[i])
		if s.CO[id] == scoapInf {
			continue
		}
		fanin := c.Fanin(id)
		for pin, f := range fanin {
			var co int
			switch c.Types[id] {
			case Buf, Not:
				co = s.CO[id] + 1
			case And, Nand:
				// Sensitize: all side inputs at 1.
				co = s.CO[id] + 1
				for p2, f2 := range fanin {
					if p2 != pin {
						co += s.CC1[f2]
					}
				}
			case Or, Nor:
				co = s.CO[id] + 1
				for p2, f2 := range fanin {
					if p2 != pin {
						co += s.CC0[f2]
					}
				}
			case Xor, Xnor:
				// Side inputs need any known value; use cheaper of CC0/CC1.
				co = s.CO[id] + 1
				for p2, f2 := range fanin {
					if p2 != pin {
						co += min(s.CC0[f2], s.CC1[f2])
					}
				}
			default:
				co = s.CO[id] + 1
			}
			if co < s.CO[f] {
				s.CO[f] = co
			}
		}
	}
	return s
}

// Testability returns a per-gate combined difficulty score
// (CC0+CC1+CO), clamped, used as an ML feature and for reporting.
func (s *SCOAP) Testability(id int) int {
	t := s.CC0[id] + s.CC1[id] + s.CO[id]
	if t > scoapInf {
		t = scoapInf
	}
	return t
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
