package circuit_test

import (
	"fmt"

	"repro/internal/circuit"
)

func ExampleParseBenchString() {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(y)
y = NAND(a, b)
`
	n, err := circuit.ParseBenchString(src, "tiny")
	if err != nil {
		panic(err)
	}
	fmt.Println(n.Stats())
	// Output: tiny: 2 PI, 1 PO, 1 gates, depth 2, avg fanout 0.67
}

func ExampleComputeSCOAP() {
	n := circuit.MustC17()
	s := circuit.ComputeSCOAP(n)
	g22, _ := n.GateByName("G22")
	fmt.Printf("G22: CC0=%d CC1=%d CO=%d\n", s.CC0[g22.ID], s.CC1[g22.ID], s.CO[g22.ID])
	// Output: G22: CC0=5 CC1=4 CO=0
}

func ExampleRippleAdder() {
	n := circuit.RippleAdder(4)
	fmt.Printf("%d inputs, %d outputs, %d gates\n", len(n.PIs), len(n.POs), n.NumLogicGates())
	// Output: 9 inputs, 5 outputs, 21 gates
}
