package circuit

import (
	"bytes"
	"testing"
)

// FuzzRandomCircuit drives the generated-circuit builder that backs the
// benchmark tiers (including the 32k- and 100k-gate fault-simulation rows)
// across arbitrary sizes and seeds. Contract under test: Random never
// produces an invalid netlist, the result always compiles into the shared
// CSR IR, the primary-output set matches the builder's spec (every
// no-fanout non-Input gate is a PO, with the last signal as fallback when
// everything has fanout), and the construction is deterministic in
// (nIn, nGates, seed).
func FuzzRandomCircuit(f *testing.F) {
	// Seed corpus: the benchmark-tier shapes (64 PIs, seed 3 — the exact
	// circuits in BENCH_faultsim.json, scaled down) plus boundary sizes.
	f.Add(2, 1, int64(0))
	f.Add(2, 2, int64(1))
	f.Add(64, 500, int64(3))
	f.Add(64, 2000, int64(3))
	f.Add(8, 120, int64(7))
	f.Add(6, 40, int64(-1))
	f.Add(128, 3000, int64(42))
	f.Fuzz(func(t *testing.T, nIn, nGates int, seed int64) {
		// Clamp into the builder's documented domain; sizes beyond the
		// 100k benchmark tier only cost fuzz time, not coverage.
		nIn = 2 + abs(nIn)%127        // [2, 128]
		nGates = 1 + abs(nGates)%3000 // [1, 3000]
		n := Random(nIn, nGates, seed)
		if got := len(n.PIs); got != nIn {
			t.Fatalf("Random(%d,%d,%d): %d PIs, want %d", nIn, nGates, seed, got, nIn)
		}
		if got := n.NumLogicGates(); got != nGates {
			t.Fatalf("Random(%d,%d,%d): %d logic gates, want %d", nIn, nGates, seed, got, nGates)
		}
		// PO spec: every non-Input gate with no fanout is marked, and if no
		// gate qualifies the last-added signal is the single fallback PO.
		wantPOs := 0
		for _, g := range n.Gates {
			if len(g.Fanout) == 0 && g.Type != Input {
				wantPOs++
			}
		}
		if wantPOs == 0 {
			wantPOs = 1
		}
		if got := len(n.POs); got != wantPOs {
			t.Fatalf("Random(%d,%d,%d): %d POs, want %d per builder spec", nIn, nGates, seed, got, wantPOs)
		}
		c, err := Compile(n)
		if err != nil {
			t.Fatalf("Random(%d,%d,%d) does not compile: %v", nIn, nGates, seed, err)
		}
		if got := c.NumGates(); got != len(n.Gates) {
			t.Fatalf("compiled IR has %d gates, netlist has %d", got, len(n.Gates))
		}
		// Same arguments must rebuild the identical circuit: the benchmark
		// trajectory depends on every run measuring the same netlist.
		var a, b bytes.Buffer
		if err := n.WriteBench(&a); err != nil {
			t.Fatal(err)
		}
		if err := Random(nIn, nGates, seed).WriteBench(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("Random(%d,%d,%d) is not deterministic", nIn, nGates, seed)
		}
	})
}

func abs(v int) int {
	if v < 0 {
		if v == -v { // math.MinInt
			return 0
		}
		return -v
	}
	return v
}
