package circuit

import (
	"fmt"
	"strings"
)

// FromSpec resolves a generated-circuit spec string — the shared `-gen`
// vocabulary of the CLIs (itratpg, itrcluster) — to a netlist:
//
//	c17            the ISCAS-85 c17 sample
//	adderN         N-bit ripple-carry adder
//	mulN           N×N array multiplier
//	aluN           N-bit ALU slice
//	cmpN           N-bit comparator
//	parityN        N-leaf parity tree
//	decN           N-to-2^N decoder
//	gparityU.C.E   gated parity banks: U units, chain C, E enables
//	randI.G.S      random netlist: I inputs, G gates, seed S
func FromSpec(name string) (*Netlist, error) {
	var size int
	switch {
	case name == "c17":
		return MustC17(), nil
	case scanSpec(name, "adder", &size):
		return RippleAdder(size), nil
	case scanSpec(name, "mul", &size):
		return ArrayMultiplier(size), nil
	case scanSpec(name, "alu", &size):
		return ALUSlice(size), nil
	case scanSpec(name, "cmp", &size):
		return Comparator(size), nil
	case scanSpec(name, "parity", &size):
		return ParityTree(size), nil
	case strings.HasPrefix(name, "gparity"):
		var units, chain, enable int
		if _, err := fmt.Sscanf(name, "gparity%d.%d.%d", &units, &chain, &enable); err != nil {
			return nil, fmt.Errorf("gated parity spec %q, want gparityU.C.E", name)
		}
		return GatedParity(units, chain, enable), nil
	case scanSpec(name, "dec", &size):
		return Decoder(size), nil
	case strings.HasPrefix(name, "rand"):
		var in, gates int
		var seed int64
		if _, err := fmt.Sscanf(name, "rand%d.%d.%d", &in, &gates, &seed); err != nil {
			return nil, fmt.Errorf("random circuit spec %q, want randI.G.S", name)
		}
		return Random(in, gates, seed), nil
	}
	return nil, fmt.Errorf("unknown circuit %q", name)
}

func scanSpec(name, prefix string, size *int) bool {
	if !strings.HasPrefix(name, prefix) {
		return false
	}
	_, err := fmt.Sscanf(name[len(prefix):], "%d", size)
	return err == nil && *size > 0
}
