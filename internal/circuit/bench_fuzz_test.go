package circuit

import (
	"bytes"
	"testing"
)

// FuzzParseBench feeds arbitrary text to the .bench parser. Contract:
// never panic; and any input the parser accepts must survive a
// parse → write → parse round trip with its structure intact (the property
// the golden corpus and every on-disk netlist rely on).
func FuzzParseBench(f *testing.F) {
	f.Add(C17)
	f.Add("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
	f.Add("# only a comment\nINPUT(a)\nOUTPUT(a)\n")
	f.Add("INPUT(d)\nOUTPUT(q)\nq = DFF(d)\n")
	f.Add("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b) # trailing comment\n")
	f.Add("INPUT (a)\nOUTPUT (y)\ny = BUF(a)")
	f.Add("y = AND(a\nINPUT()\nOUTPUT\n=\n(((((")
	f.Fuzz(func(t *testing.T, src string) {
		n, err := ParseBenchString(src, "fuzz")
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := n.WriteBench(&buf); err != nil {
			t.Fatalf("WriteBench failed on accepted netlist: %v\ninput: %q", err, src)
		}
		n2, err := ParseBenchString(buf.String(), "fuzz")
		if err != nil {
			t.Fatalf("round trip rejected: %v\nserialized:\n%s\ninput: %q", err, buf.String(), src)
		}
		if len(n2.PIs) != len(n.PIs) || len(n2.POs) != len(n.POs) ||
			n2.NumLogicGates() != n.NumLogicGates() || n2.Depth() != n.Depth() {
			t.Fatalf("round trip changed structure: %d/%d/%d/%d -> %d/%d/%d/%d\ninput: %q",
				len(n.PIs), len(n.POs), n.NumLogicGates(), n.Depth(),
				len(n2.PIs), len(n2.POs), n2.NumLogicGates(), n2.Depth(), src)
		}
		// A second serialization must be byte-identical (stable output).
		var buf2 bytes.Buffer
		if err := n2.WriteBench(&buf2); err != nil {
			t.Fatal(err)
		}
		if got, want := buf2.String(), buf.String(); got != want {
			t.Fatalf("serialization not stable:\nfirst:\n%s\nsecond:\n%s", want, got)
		}
	})
}
