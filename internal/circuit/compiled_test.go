package circuit

import (
	"sync"
	"testing"
)

// TestCompiledMatchesNetlist cross-checks every CSR table and side map of
// the compiled IR against the per-gate slices of the netlist it was built
// from.
func TestCompiledMatchesNetlist(t *testing.T) {
	n := Random(16, 300, 11)
	c, err := n.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	if c.Net != n {
		t.Fatal("Compiled.Net does not point back at the source netlist")
	}
	if c.NumGates() != len(n.Gates) || c.NumPIs() != len(n.PIs) || c.NumPOs() != len(n.POs) {
		t.Fatalf("counts: gates %d/%d PIs %d/%d POs %d/%d",
			c.NumGates(), len(n.Gates), c.NumPIs(), len(n.PIs), c.NumPOs(), len(n.POs))
	}
	for _, g := range n.Gates {
		if c.Types[g.ID] != g.Type {
			t.Errorf("gate %d type %v != %v", g.ID, c.Types[g.ID], g.Type)
		}
		if int(c.Level[g.ID]) != g.Level {
			t.Errorf("gate %d level %d != %d", g.ID, c.Level[g.ID], g.Level)
		}
		fanin := c.Fanin(g.ID)
		if len(fanin) != len(g.Fanin) {
			t.Fatalf("gate %d fanin len %d != %d", g.ID, len(fanin), len(g.Fanin))
		}
		for p, f := range g.Fanin {
			if int(fanin[p]) != f {
				t.Errorf("gate %d fanin[%d] = %d want %d", g.ID, p, fanin[p], f)
			}
		}
		fanout := c.Fanout(g.ID)
		if len(fanout) != len(g.Fanout) {
			t.Fatalf("gate %d fanout len %d != %d", g.ID, len(fanout), len(g.Fanout))
		}
		for p, f := range g.Fanout {
			if int(fanout[p]) != f {
				t.Errorf("gate %d fanout[%d] = %d want %d", g.ID, p, fanout[p], f)
			}
		}
	}
	for i, id := range n.TopoOrder() {
		if int(c.Order[i]) != id {
			t.Fatalf("Order[%d] = %d want %d", i, c.Order[i], id)
		}
		if int(c.Tpos[id]) != i {
			t.Fatalf("Tpos[%d] = %d want %d", id, c.Tpos[id], i)
		}
	}
	piSeen, poSeen := 0, 0
	for id := range n.Gates {
		if p := c.PIPos[id]; p >= 0 {
			piSeen++
			if n.PIs[p] != id {
				t.Errorf("PIPos[%d] = %d but PIs[%d] = %d", id, p, p, n.PIs[p])
			}
		}
		if p := c.POIdx[id]; p >= 0 {
			poSeen++
			if n.POs[p] != id {
				t.Errorf("POIdx[%d] = %d but POs[%d] = %d", id, p, p, n.POs[p])
			}
		}
	}
	if piSeen != len(n.PIs) || poSeen != len(n.POs) {
		t.Errorf("PI/PO maps cover %d/%d and %d/%d", piSeen, len(n.PIs), poSeen, len(n.POs))
	}
	if c.Depth != n.Depth() {
		t.Errorf("Depth %d != %d", c.Depth, n.Depth())
	}
}

// TestCompiledCached pins the compile-once contract: repeated and
// concurrent Compiled() calls return the same pointer and perform exactly
// one compilation; construction-time mutation invalidates the cache.
func TestCompiledCached(t *testing.T) {
	n := Random(8, 50, 2)
	before := CompileCount()
	first, err := n.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	got := make([]*Compiled, 16)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := n.Compiled()
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = c
		}(i)
	}
	wg.Wait()
	for i, c := range got {
		if c != first {
			t.Fatalf("call %d returned a different Compiled instance", i)
		}
	}
	if d := CompileCount() - before; d != 1 {
		t.Fatalf("netlist compiled %d times, want exactly 1", d)
	}
	n.MustAddGate("extra", Not, n.Gates[n.PIs[0]].Name)
	if err := n.MarkOutput("extra"); err != nil {
		t.Fatal(err)
	}
	second, err := n.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	if second == first {
		t.Fatal("mutating the netlist did not invalidate the compiled cache")
	}
	if second.NumGates() != first.NumGates()+1 {
		t.Fatalf("recompiled gate count %d, want %d", second.NumGates(), first.NumGates()+1)
	}
}

// TestCompileRejectsUnknownGateType pins the compile-time gate-type check:
// a netlist smuggling an out-of-range gate type (only constructible by
// bypassing AddGate) fails at Compile, not mid-simulation.
func TestCompileRejectsUnknownGateType(t *testing.T) {
	n := MustC17()
	for _, g := range n.Gates {
		if g.Type == Nand {
			g.Type = GateType(97)
			break
		}
	}
	if _, err := Compile(n); err == nil {
		t.Fatal("Compile accepted a netlist with an unknown gate type")
	}
}

// TestConeTopoOrderAndMembership validates the lazy cone cache: every cone
// starts at its root, is topologically ordered, and contains exactly the
// gates reachable through fanout edges.
func TestConeTopoOrderAndMembership(t *testing.T) {
	n := Random(12, 200, 5)
	c, err := n.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	for id := range n.Gates {
		cone := c.Cone(id)
		if len(cone) == 0 || int(cone[0]) != id {
			t.Fatalf("cone of %d does not start with its root: %v", id, cone)
		}
		want := map[int32]bool{}
		stack := []int32{int32(id)}
		for len(stack) > 0 {
			g := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if want[g] {
				continue
			}
			want[g] = true
			stack = append(stack, c.Fanout(int(g))...)
		}
		if len(cone) != len(want) {
			t.Fatalf("cone of %d has %d members, want %d", id, len(cone), len(want))
		}
		for i, g := range cone {
			if !want[g] {
				t.Fatalf("cone of %d contains unreachable gate %d", id, g)
			}
			if i > 0 && c.Tpos[cone[i-1]] >= c.Tpos[g] {
				t.Fatalf("cone of %d not topologically ordered at %d", id, i)
			}
		}
		if again := c.Cone(id); &again[0] != &cone[0] {
			t.Fatalf("cone of %d rebuilt instead of cached", id)
		}
	}
}

// TestConeConcurrent hammers the lazy cone cache from many goroutines; the
// race detector (CI runs -race) pins the publication safety, and the cones
// must agree across goroutines.
func TestConeConcurrent(t *testing.T) {
	n := Random(16, 400, 9)
	c, err := n.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := range n.Gates {
				cone := c.Cone(id)
				if len(cone) == 0 || int(cone[0]) != id {
					select {
					case errc <- errCone(id):
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

type errCone int

func (e errCone) Error() string { return "bad cone for gate" }
