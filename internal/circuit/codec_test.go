package circuit

import (
	"bytes"
	"math/rand"
	"testing"
)

// codecNetlists builds a spread of netlists covering the structural corners
// the codec must preserve: plain combinational circuits, scan DFFs with
// interleaved PI/DFF creation order, and generator output at several sizes.
func codecNetlists(t *testing.T) []*Netlist {
	t.Helper()
	scan := New("scanmix")
	scan.MustAddGate("a", Input)
	scan.MustAddGate("q0", DFF)
	scan.MustAddGate("b", Input)
	scan.MustAddGate("n1", Nand, "a", "q0")
	scan.MustAddGate("n2", Xor, "n1", "b")
	if err := scan.MarkOutput("n2"); err != nil {
		t.Fatal(err)
	}
	if err := scan.ConnectScanD("q0", "n1"); err != nil {
		t.Fatal(err)
	}
	return []*Netlist{
		MustC17(),
		RippleAdder(8),
		ArrayMultiplier(4),
		Random(16, 200, 7),
		GatedParity(4, 6, 4),
		scan,
	}
}

// sameStructure asserts exact structural identity — IDs, names, types, fanin
// order, PI/PO order and scan edges — which is the codec's whole contract.
func sameStructure(t *testing.T, want, got *Netlist) {
	t.Helper()
	if got.Name != want.Name {
		t.Fatalf("name %q != %q", got.Name, want.Name)
	}
	if len(got.Gates) != len(want.Gates) {
		t.Fatalf("gate count %d != %d", len(got.Gates), len(want.Gates))
	}
	for i, wg := range want.Gates {
		gg := got.Gates[i]
		if gg.ID != wg.ID || gg.Name != wg.Name || gg.Type != wg.Type {
			t.Fatalf("gate %d: got %+v want %+v", i, gg, wg)
		}
		if len(gg.Fanin) != len(wg.Fanin) {
			t.Fatalf("gate %d: fanin count %d != %d", i, len(gg.Fanin), len(wg.Fanin))
		}
		for k := range wg.Fanin {
			if gg.Fanin[k] != wg.Fanin[k] {
				t.Fatalf("gate %d: fanin[%d] %d != %d", i, k, gg.Fanin[k], wg.Fanin[k])
			}
		}
	}
	if len(got.PIs) != len(want.PIs) {
		t.Fatalf("PI count %d != %d", len(got.PIs), len(want.PIs))
	}
	for i := range want.PIs {
		if got.PIs[i] != want.PIs[i] {
			t.Fatalf("PI[%d] %d != %d", i, got.PIs[i], want.PIs[i])
		}
	}
	if len(got.POs) != len(want.POs) {
		t.Fatalf("PO count %d != %d", len(got.POs), len(want.POs))
	}
	for i := range want.POs {
		if got.POs[i] != want.POs[i] {
			t.Fatalf("PO[%d] %d != %d", i, got.POs[i], want.POs[i])
		}
	}
	if len(got.ScanD) != len(want.ScanD) {
		t.Fatalf("scan count %d != %d", len(got.ScanD), len(want.ScanD))
	}
	for dff, src := range want.ScanD {
		if got.ScanD[dff] != src {
			t.Fatalf("ScanD[%d] %d != %d", dff, got.ScanD[dff], src)
		}
	}
}

func TestNetlistCodecRoundTrip(t *testing.T) {
	for _, n := range codecNetlists(t) {
		data, err := n.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: marshal: %v", n.Name, err)
		}
		got, err := UnmarshalNetlist(data)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", n.Name, err)
		}
		sameStructure(t, n, got)
		// Re-encoding the decoded netlist must reproduce the bytes — the
		// fixed point that makes ContentHash a content identity.
		again, err := got.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: re-marshal: %v", n.Name, err)
		}
		if !bytes.Equal(data, again) {
			t.Fatalf("%s: re-encoded bytes differ", n.Name)
		}
		h1, err := n.ContentHash()
		if err != nil {
			t.Fatal(err)
		}
		h2, err := got.ContentHash()
		if err != nil {
			t.Fatal(err)
		}
		if h1 != h2 {
			t.Fatalf("%s: content hash changed across round trip", n.Name)
		}
	}
}

// TestNetlistCodecRejectsCorruption flips/truncates encoded bytes and
// requires a decode error — never a panic, never a silently different
// circuit that still hashes clean.
func TestNetlistCodecRejectsCorruption(t *testing.T) {
	n := Random(8, 60, 3)
	data, err := n.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	want, err := n.ContentHash()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut += 7 {
		if _, err := UnmarshalNetlist(data[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		mut := append([]byte(nil), data...)
		mut[rng.Intn(len(mut))] ^= 1 << uint(rng.Intn(8))
		got, err := UnmarshalNetlist(mut)
		if err != nil {
			continue // rejected: fine
		}
		h, err := got.ContentHash()
		if err != nil {
			continue
		}
		if h == want {
			// Decoded to a circuit claiming the original's identity: the
			// only legal way is if the flip didn't change the parse (it
			// must — every byte is load-bearing except none are padding).
			t.Fatalf("trial %d: corrupted encoding reproduced the original content hash", trial)
		}
	}
}

func TestNetlistCodecBadMagicAndVersion(t *testing.T) {
	n := MustC17()
	data, err := n.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := UnmarshalNetlist(bad); err == nil {
		t.Error("bad magic accepted")
	}
	bad = append([]byte(nil), data...)
	bad[4] = 99
	if _, err := UnmarshalNetlist(bad); err == nil {
		t.Error("bad version accepted")
	}
	if _, err := UnmarshalNetlist(nil); err == nil {
		t.Error("empty input accepted")
	}
}
