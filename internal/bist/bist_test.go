package bist

import (
	"testing"

	"repro/internal/circuit"
)

func TestLFSRMaximalPeriod(t *testing.T) {
	for _, length := range []int{4, 5, 6, 7, 8, 9, 10, 12, 16} {
		l, err := NewLFSR(length, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := 1<<uint(length) - 1
		if got := l.Period(); got != want {
			t.Errorf("length %d: period %d, want %d (polynomial not primitive?)", length, got, want)
		}
	}
}

func TestLFSRNeverZero(t *testing.T) {
	l, err := NewLFSR(8, 0) // zero seed must be coerced
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if l.Step() == 0 {
			t.Fatal("LFSR reached the all-zero state")
		}
	}
}

func TestLFSRUnknownLength(t *testing.T) {
	if _, err := NewLFSR(13, 1); err == nil {
		t.Error("unsupported length must fail")
	}
}

func TestLFSRDeterministic(t *testing.T) {
	a, _ := NewLFSR(16, 77)
	b, _ := NewLFSR(16, 77)
	for i := 0; i < 100; i++ {
		if a.Step() != b.Step() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestPatternsBalanced(t *testing.T) {
	l, _ := NewLFSR(16, 3)
	p := l.Patterns(10, 256)
	if p.N != 256 || p.Inputs != 10 {
		t.Fatalf("pattern set shape %d/%d", p.N, p.Inputs)
	}
	ones := 0
	for k := 0; k < p.N; k++ {
		for i := 0; i < p.Inputs; i++ {
			if p.Get(k, i) {
				ones++
			}
		}
	}
	frac := float64(ones) / float64(p.N*p.Inputs)
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("LFSR bit balance = %.3f", frac)
	}
}

func TestMISRSensitivity(t *testing.T) {
	// Signatures must differ when any single response bit flips.
	mkSig := func(flipAt int) uint64 {
		m, err := NewMISR(16, 5)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 50; k++ {
			row := []bool{k%2 == 0, k%3 == 0, k%5 == 0}
			if k == flipAt {
				row[1] = !row[1]
			}
			m.Absorb(row)
		}
		return m.Signature()
	}
	clean := mkSig(-1)
	for _, at := range []int{0, 10, 49} {
		if mkSig(at) == clean {
			t.Errorf("single-bit flip at %d aliased", at)
		}
	}
}

func TestRunBISTC17(t *testing.T) {
	res, err := Run(circuit.MustC17(), 16, 16, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage < 0.99 {
		t.Errorf("c17 BIST coverage = %.3f", res.Coverage)
	}
	if res.Aliased > 0 {
		t.Errorf("aliasing on c17 with 16-bit MISR: %d", res.Aliased)
	}
	if res.GoodSignature == 0 {
		t.Error("suspicious zero signature")
	}
}

func TestRunBISTAliasingRareWithWideMISR(t *testing.T) {
	n := circuit.ArrayMultiplier(4)
	res, err := Run(n, 20, 20, 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage < 0.95 {
		t.Errorf("mul4 BIST coverage = %.3f", res.Coverage)
	}
	// Theoretical aliasing probability ~2^-20 per fault; zero expected.
	if float64(res.Aliased) > 0.01*float64(res.Detected)+1 {
		t.Errorf("aliased %d of %d detected", res.Aliased, res.Detected)
	}
}

func TestBISTCoverageGrowsWithPatterns(t *testing.T) {
	n := circuit.ArrayMultiplier(4)
	r16, err := Run(n, 16, 16, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	r256, err := Run(n, 16, 16, 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	if r256.Coverage < r16.Coverage {
		t.Errorf("coverage fell with more patterns: %.3f -> %.3f", r16.Coverage, r256.Coverage)
	}
}

func BenchmarkLFSRStep(b *testing.B) {
	l, _ := NewLFSR(32, 1)
	for i := 0; i < b.N; i++ {
		l.Step()
	}
}
