// Package bist implements logic built-in self-test infrastructure: linear
// feedback shift registers (LFSR) as pseudo-random pattern generators, and
// multiple-input signature registers (MISR) for response compaction, with
// aliasing analysis against the stuck-at fault model (experiment F6).
package bist

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/sim"
)

// primitivePolys maps register length to a primitive characteristic
// polynomial over GF(2), given as a tap mask (bit i set = term x^(i+1); the
// x^0 term is implicit). Taken from the standard tables; every listed
// polynomial is maximal-length.
var primitivePolys = map[int]uint64{
	4:  0b1001,
	5:  0b10010,
	6:  0b100001,
	7:  0b1000001,
	8:  0b10111000,
	9:  0b100010000,
	10: 0b1000000100,
	12: 0b100000101001,
	16: 0b1000000000010110,
	20: 0b10000000000000000100,
	24: 0b100000000000000000011011,
	32: 0b10000000000000000000000001100010,
}

// LFSR is a Fibonacci linear feedback shift register over GF(2).
type LFSR struct {
	Length int
	Taps   uint64
	state  uint64
}

// NewLFSR builds an LFSR of the given length with a primitive polynomial
// from the built-in table and a nonzero seed.
func NewLFSR(length int, seed uint64) (*LFSR, error) {
	taps, ok := primitivePolys[length]
	if !ok {
		return nil, fmt.Errorf("bist: no primitive polynomial of length %d (have %v)", length, lengths())
	}
	l := &LFSR{Length: length, Taps: taps}
	l.Seed(seed)
	return l, nil
}

func lengths() []int {
	return []int{4, 5, 6, 7, 8, 9, 10, 12, 16, 20, 24, 32}
}

// Seed resets the register; a zero seed is mapped to 1 (the all-zero state
// is the LFSR's fixed point and must be avoided).
func (l *LFSR) Seed(seed uint64) {
	mask := (uint64(1) << uint(l.Length)) - 1
	l.state = seed & mask
	if l.state == 0 {
		l.state = 1
	}
}

// State returns the current register contents.
func (l *LFSR) State() uint64 { return l.state }

// Step advances one clock and returns the new state.
func (l *LFSR) Step() uint64 {
	fb := uint64(0)
	taps := l.Taps
	for taps != 0 {
		bit := taps & (^taps + 1) // lowest set tap
		pos := trailingZeros(bit)
		fb ^= l.state >> uint(pos) & 1
		taps &^= bit
	}
	l.state = (l.state<<1 | fb) & ((1 << uint(l.Length)) - 1)
	return l.state
}

func trailingZeros(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// Period steps the register until the start state recurs and returns the
// cycle length (2^Length - 1 for a primitive polynomial). It is O(period);
// intended for verification of short registers.
func (l *LFSR) Period() int {
	start := l.state
	n := 0
	for {
		l.Step()
		n++
		if l.state == start || n > 1<<uint(l.Length)+1 {
			return n
		}
	}
}

// Patterns expands nPatterns LFSR states into test patterns for a circuit
// with nInputs inputs. Inputs beyond the register length are fed from
// additional shifts (standard phase-shifter-free expansion: the register is
// clocked once per input bit).
func (l *LFSR) Patterns(nInputs, nPatterns int) *logic.PatternSet {
	p := logic.NewPatternSet(nInputs, nPatterns)
	for k := 0; k < nPatterns; k++ {
		for i := 0; i < nInputs; i++ {
			l.Step()
			p.Set(k, i, l.state&1 == 1)
		}
	}
	return p
}

// MISR is a multiple-input signature register: a LFSR that XORs one
// response bit per output into consecutive stages each cycle, compacting a
// full response stream into Length bits.
type MISR struct {
	LFSR
}

// NewMISR builds a MISR of the given length.
func NewMISR(length int, seed uint64) (*MISR, error) {
	l, err := NewLFSR(length, seed)
	if err != nil {
		return nil, err
	}
	return &MISR{LFSR: *l}, nil
}

// Absorb compacts one response vector (one bit per circuit output) into the
// signature.
func (m *MISR) Absorb(bits []bool) {
	m.Step()
	for i, b := range bits {
		if b {
			m.state ^= 1 << uint(i%m.Length)
		}
	}
}

// Signature returns the current compacted signature.
func (m *MISR) Signature() uint64 { return m.state }

// Result summarizes one BIST session.
type Result struct {
	Patterns      int
	GoodSignature uint64
	Coverage      float64 // stuck-at coverage of the applied patterns
	Detected      int
	TotalFaults   int
	// Aliased counts detected faults whose final signature nevertheless
	// equals the good signature (escapes through compaction).
	Aliased int
}

// Run executes a full BIST session on the netlist: the LFSR applies
// nPatterns patterns, the good signature is computed, stuck-at coverage is
// measured, and every detected fault's faulty signature is checked for
// aliasing.
func Run(n *circuit.Netlist, lfsrLen, misrLen int, seed uint64, nPatterns int) (*Result, error) {
	gen, err := NewLFSR(lfsrLen, seed)
	if err != nil {
		return nil, err
	}
	patterns := gen.Patterns(len(n.PIs), nPatterns)

	// One shared compiled IR drives both the good-circuit simulator and the
	// fault simulator below.
	comp, err := n.Compiled()
	if err != nil {
		return nil, err
	}
	gsim := sim.NewCompiled(comp)
	goodResp := gsim.Run(patterns)
	good, err := NewMISR(misrLen, seed)
	if err != nil {
		return nil, err
	}
	row := make([]bool, len(n.POs))
	for k := 0; k < patterns.N; k++ {
		for o := range row {
			row[o] = goodResp.Get(k, o)
		}
		good.Absorb(row)
	}

	fsim := fault.NewSimulatorCompiled(comp)
	faults := fault.Universe(n)
	res := &Result{
		Patterns:      patterns.N,
		GoodSignature: good.Signature(),
		TotalFaults:   len(faults),
	}
	// Full dictionary so the faulty response stream (good XOR diff) can be
	// re-compacted per fault.
	dict := fsim.Dictionary(patterns, faults)
	for fi := range faults {
		if dict[fi].FailBits() == 0 {
			continue
		}
		res.Detected++
		m, err := NewMISR(misrLen, seed)
		if err != nil {
			return nil, err
		}
		for k := 0; k < patterns.N; k++ {
			w, b := k/logic.WordBits, uint(k%logic.WordBits)
			for o := range row {
				diff := dict[fi].Bits[o][w]>>b&1 == 1
				row[o] = goodResp.Get(k, o) != diff // faulty = good XOR diff
			}
			m.Absorb(row)
		}
		if m.Signature() == res.GoodSignature {
			res.Aliased++
		}
	}
	res.Coverage = float64(res.Detected) / float64(res.TotalFaults)
	return res, nil
}
