// Package liberty models cryogenic/aging-aware standard cell libraries in
// the spirit of the Liberty NLDM format: per-arc delay and output-slew
// tables over an input-slew × output-load grid, pin capacitances and
// state-dependent leakage, all characterized by the transistor-level
// simulator in package spice.
package liberty

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/spice"
)

// The parametric cell set. Topologies follow standard static CMOS: series
// NMOS / parallel PMOS for NAND-class, the dual for NOR-class, and
// complementary pass networks over internal inverters for XOR/XNOR.
// Series devices are widened to compensate stacking (factor = stack depth).

func invCell() *spice.Cell {
	c := spice.NewCell("INV", 1)
	c.AddStage(spice.DevW(0, 2), spice.DevW(0, 1), 0.4e-15)
	return c
}

func bufCell() *spice.Cell {
	c := spice.NewCell("BUF", 1)
	m := c.AddStage(spice.DevW(0, 1), spice.DevW(0, 0.5), 0.25e-15)
	c.AddStage(spice.DevW(m, 2), spice.DevW(m, 1), 0.4e-15)
	return c
}

func nandCell(n int) *spice.Cell {
	c := spice.NewCell(fmt.Sprintf("NAND%d", n), n)
	up := make([]*spice.Network, n)
	dn := make([]*spice.Network, n)
	for i := 0; i < n; i++ {
		up[i] = spice.DevW(i, 2)
		dn[i] = spice.DevW(i, float64(n))
	}
	c.AddStage(spice.Par(up...), spice.Ser(dn...), 0.3e-15*float64(n))
	return c
}

func norCell(n int) *spice.Cell {
	c := spice.NewCell(fmt.Sprintf("NOR%d", n), n)
	up := make([]*spice.Network, n)
	dn := make([]*spice.Network, n)
	for i := 0; i < n; i++ {
		up[i] = spice.DevW(i, 2*float64(n))
		dn[i] = spice.DevW(i, 1)
	}
	c.AddStage(spice.Ser(up...), spice.Par(dn...), 0.3e-15*float64(n))
	return c
}

func andCell(n int) *spice.Cell {
	c := spice.NewCell(fmt.Sprintf("AND%d", n), n)
	up := make([]*spice.Network, n)
	dn := make([]*spice.Network, n)
	for i := 0; i < n; i++ {
		up[i] = spice.DevW(i, 2)
		dn[i] = spice.DevW(i, float64(n))
	}
	m := c.AddStage(spice.Par(up...), spice.Ser(dn...), 0.3e-15*float64(n))
	c.AddStage(spice.DevW(m, 2), spice.DevW(m, 1), 0.4e-15)
	return c
}

func orCell(n int) *spice.Cell {
	c := spice.NewCell(fmt.Sprintf("OR%d", n), n)
	up := make([]*spice.Network, n)
	dn := make([]*spice.Network, n)
	for i := 0; i < n; i++ {
		up[i] = spice.DevW(i, 2*float64(n))
		dn[i] = spice.DevW(i, 1)
	}
	m := c.AddStage(spice.Ser(up...), spice.Par(dn...), 0.3e-15*float64(n))
	c.AddStage(spice.DevW(m, 2), spice.DevW(m, 1), 0.4e-15)
	return c
}

func xorCell() *spice.Cell {
	c := spice.NewCell("XOR2", 2)
	na := c.AddStage(spice.DevW(0, 1), spice.DevW(0, 0.5), 0.2e-15) // ā
	nb := c.AddStage(spice.DevW(1, 1), spice.DevW(1, 0.5), 0.2e-15) // b̄
	// Output 1 iff a≠b. PMOS network conducts when output must be high:
	// Ser(Par(a,b), Par(ā,b̄)) conducts iff (a=0 ∨ b=0) ∧ (a=1 ∨ b=1).
	pullUp := spice.Ser(
		spice.Par(spice.DevW(0, 4), spice.DevW(1, 4)),
		spice.Par(spice.DevW(na, 4), spice.DevW(nb, 4)),
	)
	// NMOS network conducts when output must be low (a=b):
	pullDown := spice.Par(
		spice.Ser(spice.DevW(0, 2), spice.DevW(1, 2)),
		spice.Ser(spice.DevW(na, 2), spice.DevW(nb, 2)),
	)
	c.AddStage(pullUp, pullDown, 0.8e-15)
	return c
}

func xnorCell() *spice.Cell {
	c := spice.NewCell("XNOR2", 2)
	na := c.AddStage(spice.DevW(0, 1), spice.DevW(0, 0.5), 0.2e-15)
	nb := c.AddStage(spice.DevW(1, 1), spice.DevW(1, 0.5), 0.2e-15)
	// Output 1 iff a=b: PMOS Ser(Par(a,b̄), Par(ā,b)).
	pullUp := spice.Ser(
		spice.Par(spice.DevW(0, 4), spice.DevW(nb, 4)),
		spice.Par(spice.DevW(na, 4), spice.DevW(1, 4)),
	)
	pullDown := spice.Par(
		spice.Ser(spice.DevW(0, 2), spice.DevW(nb, 2)),
		spice.Ser(spice.DevW(na, 2), spice.DevW(1, 2)),
	)
	c.AddStage(pullUp, pullDown, 0.8e-15)
	return c
}

func aoi21Cell() *spice.Cell {
	// y = NOT(a·b + c); pins a=0 b=1 c=2.
	c := spice.NewCell("AOI21", 3)
	pullDown := spice.Par(
		spice.Ser(spice.DevW(0, 2), spice.DevW(1, 2)),
		spice.DevW(2, 1),
	)
	pullUp := spice.Ser(
		spice.Par(spice.DevW(0, 4), spice.DevW(1, 4)),
		spice.DevW(2, 4),
	)
	c.AddStage(pullUp, pullDown, 0.7e-15)
	return c
}

func oai21Cell() *spice.Cell {
	// y = NOT((a+b)·c).
	c := spice.NewCell("OAI21", 3)
	pullDown := spice.Ser(
		spice.Par(spice.DevW(0, 2), spice.DevW(1, 2)),
		spice.DevW(2, 2),
	)
	pullUp := spice.Par(
		spice.Ser(spice.DevW(0, 4), spice.DevW(1, 4)),
		spice.DevW(2, 2),
	)
	c.AddStage(pullUp, pullDown, 0.7e-15)
	return c
}

// DriveStrengths lists the drive variants characterized for every base cell.
var DriveStrengths = []struct {
	Suffix string
	Factor float64
}{
	{"_X1", 1}, {"_X2", 2}, {"_X4", 4},
}

// BaseCells returns the base (X1) transistor-level cell set in a
// deterministic order.
func BaseCells() []*spice.Cell {
	return []*spice.Cell{
		invCell(), bufCell(),
		nandCell(2), nandCell(3),
		norCell(2), norCell(3),
		andCell(2), andCell(3),
		orCell(2), orCell(3),
		xorCell(), xnorCell(),
		aoi21Cell(), oai21Cell(),
	}
}

// AllCells expands BaseCells across DriveStrengths (X1/X2/X4).
func AllCells() []*spice.Cell {
	var out []*spice.Cell
	for _, base := range BaseCells() {
		for _, d := range DriveStrengths {
			out = append(out, base.ScaleDrive(d.Factor, base.Name+d.Suffix))
		}
	}
	return out
}

// CellFor maps a netlist gate type and fanin count to the library cell base
// name, e.g. (Nand, 3) → "NAND3".
func CellFor(t circuit.GateType, fanin int) (string, error) {
	switch t {
	case circuit.Not:
		return "INV", nil
	case circuit.Buf:
		return "BUF", nil
	case circuit.DFF:
		return "", fmt.Errorf("liberty: DFFs are timing startpoints under full scan, not mapped cells")
	case circuit.And:
		return fmt.Sprintf("AND%d", fanin), nil
	case circuit.Nand:
		return fmt.Sprintf("NAND%d", fanin), nil
	case circuit.Or:
		return fmt.Sprintf("OR%d", fanin), nil
	case circuit.Nor:
		return fmt.Sprintf("NOR%d", fanin), nil
	case circuit.Xor:
		if fanin != 2 {
			return "", fmt.Errorf("liberty: no XOR%d cell", fanin)
		}
		return "XOR2", nil
	case circuit.Xnor:
		if fanin != 2 {
			return "", fmt.Errorf("liberty: no XNOR%d cell", fanin)
		}
		return "XNOR2", nil
	}
	return "", fmt.Errorf("liberty: no cell for gate type %v", t)
}
