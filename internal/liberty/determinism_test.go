package liberty

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/spice"
)

// TestCharacterizeDeterministicAcrossWorkers is the contract the parallel
// characterization must satisfy: the library is bit-identical for any
// worker count, including the cost accounting.
func TestCharacterizeDeterministicAcrossWorkers(t *testing.T) {
	cells := AllCells()
	p := spice.Default(300)
	grid := CoarseGrid()
	ref, err := CharacterizeWorkers("det", cells, p, grid, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		lib, err := CharacterizeWorkers("det", cells, p, grid, workers)
		if err != nil {
			t.Fatal(err)
		}
		if lib.SpiceRuns != ref.SpiceRuns || lib.SpiceSteps != ref.SpiceSteps {
			t.Errorf("workers=%d: cost accounting %d/%d != serial %d/%d",
				workers, lib.SpiceRuns, lib.SpiceSteps, ref.SpiceRuns, ref.SpiceSteps)
		}
		if !reflect.DeepEqual(lib.Cells, ref.Cells) {
			t.Fatalf("workers=%d: characterized cells differ from serial run", workers)
		}
		// Byte-identical serialized tables, not just numerically close.
		if !bytes.Equal(dumpTables(t, lib), dumpTables(t, ref)) {
			t.Fatalf("workers=%d: serialized library differs from serial run", workers)
		}
	}
}

func dumpTables(t *testing.T, lib *Library) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := lib.WriteLib(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
