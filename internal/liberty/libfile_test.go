package liberty

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestLibRoundTrip(t *testing.T) {
	lib := smallLib(t, 300)
	var buf bytes.Buffer
	if err := lib.WriteLib(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseLib(&buf)
	if err != nil {
		t.Fatalf("parse failed: %v", err)
	}
	if len(back.Cells) != len(lib.Cells) {
		t.Fatalf("cells %d != %d", len(back.Cells), len(lib.Cells))
	}
	if back.Params.TempK != lib.Params.TempK {
		t.Errorf("temperature %g != %g", back.Params.TempK, lib.Params.TempK)
	}
	for name, orig := range lib.Cells {
		got, ok := back.Cells[name]
		if !ok {
			t.Fatalf("cell %s lost", name)
		}
		if got.Inputs != orig.Inputs || got.Transistors != orig.Transistors {
			t.Errorf("%s: shape changed", name)
		}
		if relErr(got.LeakageAvg, orig.LeakageAvg) > 1e-6 {
			t.Errorf("%s: leakage %g != %g", name, got.LeakageAvg, orig.LeakageAvg)
		}
		for p := range orig.PinCaps {
			if relErr(got.PinCaps[p], orig.PinCaps[p]) > 1e-6 {
				t.Errorf("%s pin %d: cap %g != %g", name, p, got.PinCaps[p], orig.PinCaps[p])
			}
		}
		if len(got.Arcs) != len(orig.Arcs) {
			t.Fatalf("%s: arcs %d != %d", name, len(got.Arcs), len(orig.Arcs))
		}
		got.SortArcs()
		copyOrig := *orig
		copyOrig.Arcs = append([]TimingArc(nil), orig.Arcs...)
		copyOrig.SortArcs()
		for i := range copyOrig.Arcs {
			a, b := copyOrig.Arcs[i], got.Arcs[i]
			if a.Pin != b.Pin || a.InRise != b.InRise || a.OutRise != b.OutRise {
				t.Fatalf("%s arc %d: identity changed (%+v vs %+v)", name, i, a.Pin, b.Pin)
			}
			compareTables(t, name, a.Delay, b.Delay)
			compareTables(t, name, a.OutSlew, b.OutSlew)
			compareTables(t, name, a.Energy, b.Energy)
		}
	}
}

func compareTables(t *testing.T, name string, a, b *Table) {
	t.Helper()
	if len(a.Slews) != len(b.Slews) || len(a.Loads) != len(b.Loads) {
		t.Fatalf("%s: table shape changed", name)
	}
	for i := range a.Values {
		for j := range a.Values[i] {
			if relErr(a.Values[i][j], b.Values[i][j]) > 1e-6 {
				t.Fatalf("%s: value [%d][%d] %g != %g", name, i, j, a.Values[i][j], b.Values[i][j])
			}
		}
	}
	for i := range a.Slews {
		if relErr(a.Slews[i], b.Slews[i]) > 1e-6 {
			t.Fatalf("%s: slew index changed", name)
		}
	}
}

func relErr(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

func TestParseLibErrors(t *testing.T) {
	cases := []string{
		"",
		"foo (x) { }",
		"library (l) { cell (X) { pin (Q7) { direction : input ; } } }",
		"library (l) { cell (X) {",
		"library (l) { cell (X) { area : ; } }",
	}
	for i, src := range cases {
		if _, err := ParseLib(strings.NewReader(src)); err == nil && i < 3 {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestParseLibComments(t *testing.T) {
	src := `
/* header comment */
library (demo) {
  nom_temperature : 300 ;
  nom_voltage : 0.7 ;
}
`
	lib, err := ParseLib(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if lib.Name != "demo" || lib.Params.TempK != 300 {
		t.Errorf("parsed %q %g", lib.Name, lib.Params.TempK)
	}
}

func TestWriteLibIsLibertyShaped(t *testing.T) {
	lib := smallLib(t, 300)
	var buf bytes.Buffer
	if err := lib.WriteLib(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, needle := range []string{
		"library (", "cell (INV)", "pin (A0)", "related_pin", "cell_rise", "values (",
	} {
		if !strings.Contains(text, needle) {
			t.Errorf("output missing %q", needle)
		}
	}
}
