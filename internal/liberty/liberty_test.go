package liberty

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/spice"
)

func TestTableLookup(t *testing.T) {
	tab := &Table{
		Slews:  []float64{1, 2, 3},
		Loads:  []float64{10, 20},
		Values: [][]float64{{1, 2}, {3, 4}, {5, 6}},
	}
	// Exact grid points.
	if v := tab.Lookup(1, 10); v != 1 {
		t.Errorf("corner = %f", v)
	}
	if v := tab.Lookup(3, 20); v != 6 {
		t.Errorf("corner = %f", v)
	}
	// Midpoint bilinear.
	if v := tab.Lookup(1.5, 15); math.Abs(v-2.5) > 1e-12 {
		t.Errorf("midpoint = %f, want 2.5", v)
	}
	// Clamped extrapolation.
	if v := tab.Lookup(0, 5); v != 1 {
		t.Errorf("below-range clamp = %f", v)
	}
	if v := tab.Lookup(100, 100); v != 6 {
		t.Errorf("above-range clamp = %f", v)
	}
}

func TestBracket(t *testing.T) {
	xs := []float64{1, 2, 4}
	if i0, i1, f := bracket(xs, 2); i0 != 1 || i1 != 1 || f != 0 {
		t.Errorf("exact hit = %d,%d,%f", i0, i1, f)
	}
	if i0, i1, f := bracket(xs, 3); i0 != 1 || i1 != 2 || math.Abs(f-0.5) > 1e-12 {
		t.Errorf("interp = %d,%d,%f", i0, i1, f)
	}
}

func TestBaseCellLogicFunctions(t *testing.T) {
	check := func(c *spice.Cell, f func(in []bool) bool) {
		t.Helper()
		n := c.NumInputs
		for v := 0; v < 1<<uint(n); v++ {
			in := make([]bool, n)
			for i := range in {
				in[i] = v>>uint(i)&1 == 1
			}
			if got, want := c.Logic(in), f(in); got != want {
				t.Errorf("%s(%v) = %v, want %v", c.Name, in, got, want)
			}
		}
	}
	check(invCell(), func(in []bool) bool { return !in[0] })
	check(bufCell(), func(in []bool) bool { return in[0] })
	check(nandCell(2), func(in []bool) bool { return !(in[0] && in[1]) })
	check(nandCell(3), func(in []bool) bool { return !(in[0] && in[1] && in[2]) })
	check(norCell(2), func(in []bool) bool { return !(in[0] || in[1]) })
	check(norCell(3), func(in []bool) bool { return !(in[0] || in[1] || in[2]) })
	check(andCell(2), func(in []bool) bool { return in[0] && in[1] })
	check(andCell(3), func(in []bool) bool { return in[0] && in[1] && in[2] })
	check(orCell(2), func(in []bool) bool { return in[0] || in[1] })
	check(orCell(3), func(in []bool) bool { return in[0] || in[1] || in[2] })
	check(xorCell(), func(in []bool) bool { return in[0] != in[1] })
	check(xnorCell(), func(in []bool) bool { return in[0] == in[1] })
	check(aoi21Cell(), func(in []bool) bool { return !((in[0] && in[1]) || in[2]) })
	check(oai21Cell(), func(in []bool) bool { return !((in[0] || in[1]) && in[2]) })
}

func TestCellFor(t *testing.T) {
	cases := []struct {
		t     circuit.GateType
		fanin int
		want  string
	}{
		{circuit.Not, 1, "INV"},
		{circuit.Buf, 1, "BUF"},
		{circuit.Nand, 2, "NAND2"},
		{circuit.Nand, 3, "NAND3"},
		{circuit.And, 3, "AND3"},
		{circuit.Nor, 2, "NOR2"},
		{circuit.Or, 2, "OR2"},
		{circuit.Xor, 2, "XOR2"},
		{circuit.Xnor, 2, "XNOR2"},
	}
	for _, c := range cases {
		got, err := CellFor(c.t, c.fanin)
		if err != nil || got != c.want {
			t.Errorf("CellFor(%v,%d) = %q, %v", c.t, c.fanin, got, err)
		}
	}
	if _, err := CellFor(circuit.Xor, 3); err == nil {
		t.Error("XOR3 must be rejected")
	}
	if _, err := CellFor(circuit.Input, 0); err == nil {
		t.Error("Input must be rejected")
	}
}

// characterize a small cell subset once for the remaining tests.
func smallLib(t testing.TB, temp float64) *Library {
	t.Helper()
	cells := []*spice.Cell{invCell(), nandCell(2), xorCell()}
	lib, err := Characterize("test", cells, spice.Default(temp), CoarseGrid())
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func TestCharacterizeShape(t *testing.T) {
	lib := smallLib(t, 300)
	if len(lib.Cells) != 3 {
		t.Fatalf("cells = %d", len(lib.Cells))
	}
	inv, ok := lib.Cell("INV")
	if !ok {
		t.Fatal("INV missing")
	}
	if len(inv.Arcs) != 2 {
		t.Fatalf("INV arcs = %d, want 2", len(inv.Arcs))
	}
	// Inverting cell: input rise → output fall.
	for _, a := range inv.Arcs {
		if a.OutRise == a.InRise {
			t.Error("inverter arc not inverting")
		}
	}
	nand, _ := lib.Cell("NAND2")
	if len(nand.Arcs) != 4 {
		t.Fatalf("NAND2 arcs = %d, want 4", len(nand.Arcs))
	}
	if lib.SpiceRuns != (2+4+4)*9 {
		t.Errorf("spice runs = %d, want %d", lib.SpiceRuns, (2+4+4)*9)
	}
	if lib.SpiceSteps == 0 {
		t.Error("no steps accounted")
	}
}

func TestDelayTablesMonotoneInLoad(t *testing.T) {
	lib := smallLib(t, 300)
	for name, c := range lib.Cells {
		for _, arc := range c.Arcs {
			for i := range arc.Delay.Values {
				for j := 1; j < len(arc.Delay.Values[i]); j++ {
					if arc.Delay.Values[i][j] <= arc.Delay.Values[i][j-1] {
						t.Errorf("%s pin %d: delay not increasing with load (row %d)", name, arc.Pin, i)
					}
				}
			}
		}
	}
}

func TestAllDelaysPositive(t *testing.T) {
	lib := smallLib(t, 300)
	for name, c := range lib.Cells {
		for _, arc := range c.Arcs {
			for i := range arc.Delay.Values {
				for j := range arc.Delay.Values[i] {
					if arc.Delay.Values[i][j] <= 0 {
						t.Errorf("%s: nonpositive delay", name)
					}
					if arc.OutSlew.Values[i][j] <= 0 {
						t.Errorf("%s: nonpositive slew", name)
					}
					if arc.Energy.Values[i][j] <= 0 {
						t.Errorf("%s: nonpositive energy", name)
					}
				}
			}
		}
	}
}

func TestCryoCornerLeakageAndDelay(t *testing.T) {
	warm := smallLib(t, 300)
	cold := smallLib(t, 10)
	if cold.TotalLeakage() > warm.TotalLeakage()*1e-5 {
		t.Errorf("cryo library leakage %g not ≪ %g", cold.TotalLeakage(), warm.TotalLeakage())
	}
	// Delay shift at cryo stays modest (< 50% here; the paper reports <10%
	// for its technology).
	wInv, _ := warm.Cell("INV")
	cInv, _ := cold.Cell("INV")
	dw := wInv.Arcs[0].Delay.Values[1][1]
	dc := cInv.Arcs[0].Delay.Values[1][1]
	if r := dc / dw; r < 0.5 || r > 1.5 {
		t.Errorf("cryo/warm delay ratio = %f", r)
	}
}

func TestAgedLibrarySlower(t *testing.T) {
	fresh := smallLib(t, 300)
	p := spice.Default(300)
	p.DVthN, p.DVthP = 0.06, 0.06
	aged, err := Characterize("aged", []*spice.Cell{invCell(), nandCell(2), xorCell()}, p, CoarseGrid())
	if err != nil {
		t.Fatal(err)
	}
	for name := range fresh.Cells {
		f, a := fresh.Cells[name], aged.Cells[name]
		df := f.Arcs[0].Delay.Values[1][1]
		da := a.Arcs[0].Delay.Values[1][1]
		if da <= df {
			t.Errorf("%s: aged delay %g not slower than fresh %g", name, da, df)
		}
	}
}

func TestWorstDelayAndHistogram(t *testing.T) {
	lib := smallLib(t, 300)
	inv, _ := lib.Cell("INV")
	w := inv.WorstDelay(10e-12, 2e-15)
	if w <= 0 {
		t.Error("worst delay must be positive")
	}
	h := lib.DelayHistogram()
	if len(h) != lib.SpiceRuns {
		t.Errorf("histogram size %d != runs %d", len(h), lib.SpiceRuns)
	}
	for i := 1; i < len(h); i++ {
		if h[i] < h[i-1] {
			t.Fatal("histogram not sorted")
		}
	}
	if lib.Summary() == "" {
		t.Error("empty summary")
	}
}

func TestAllCellsExpandDrives(t *testing.T) {
	all := AllCells()
	if len(all) != len(BaseCells())*len(DriveStrengths) {
		t.Fatalf("AllCells = %d", len(all))
	}
	names := map[string]bool{}
	for _, c := range all {
		if names[c.Name] {
			t.Fatalf("duplicate cell name %s", c.Name)
		}
		names[c.Name] = true
	}
	if !names["NAND2_X4"] || !names["INV_X1"] {
		t.Error("expected drive variants missing")
	}
}

func TestArcLookupHelper(t *testing.T) {
	lib := smallLib(t, 300)
	nand, _ := lib.Cell("NAND2")
	arc, ok := nand.Arc(1, true)
	if !ok || arc.Pin != 1 || !arc.InRise {
		t.Error("Arc lookup failed")
	}
	if _, ok := nand.Arc(5, true); ok {
		t.Error("Arc must miss for bad pin")
	}
}

// Property: table lookups are bounded by the table's corner values for any
// query point (bilinear interpolation cannot overshoot).
func TestLookupBoundedProperty(t *testing.T) {
	lib := smallLib(t, 300)
	for _, c := range lib.Cells {
		for _, arc := range c.Arcs {
			tab := arc.Delay
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, row := range tab.Values {
				for _, v := range row {
					if v < lo {
						lo = v
					}
					if v > hi {
						hi = v
					}
				}
			}
			for _, slew := range []float64{0, 3e-12, 17e-12, 60e-12, 1e-9} {
				for _, load := range []float64{0, 2e-15, 9e-15, 25e-15, 1e-12} {
					got := tab.Lookup(slew, load)
					if got < lo-1e-18 || got > hi+1e-18 {
						t.Fatalf("%s: lookup(%g,%g)=%g outside [%g,%g]",
							c.Name, slew, load, got, lo, hi)
					}
				}
			}
		}
	}
}
