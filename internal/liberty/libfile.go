package liberty

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file implements serialization of characterized libraries to a
// Liberty (.lib) subset and a tolerant parser for it, so corners can be
// characterized once and cached on disk like a real PDK deliverable.
//
// Supported constructs: nested groups `name (arg) { ... }`, simple
// attributes `key : value ;` and complex attributes `key ("v1", "v2") ;`.
// Delays/slews are stored in ns and capacitances in pF per Liberty
// convention; the in-memory representation stays SI (seconds/farads).

const (
	timeUnit = 1e-9  // ns
	capUnit  = 1e-12 // pF
)

// WriteLib serializes the library in Liberty syntax.
func (l *Library) WriteLib(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "library (%s) {\n", l.Name)
	fmt.Fprintf(bw, "  time_unit : \"1ns\" ;\n")
	fmt.Fprintf(bw, "  capacitive_load_unit (1, pf) ;\n")
	fmt.Fprintf(bw, "  nom_temperature : %g ;\n", l.Params.TempK)
	fmt.Fprintf(bw, "  nom_voltage : %g ;\n", l.Params.VDD)
	for _, name := range l.CellNames() {
		c := l.Cells[name]
		fmt.Fprintf(bw, "  cell (%s) {\n", c.Name)
		fmt.Fprintf(bw, "    area : %d ;\n", c.Transistors)
		fmt.Fprintf(bw, "    cell_leakage_power : %s ;\n", fstr(c.LeakageAvg))
		fmt.Fprintf(bw, "    max_leakage_power : %s ;\n", fstr(c.LeakageMax))
		for pin := 0; pin < c.Inputs; pin++ {
			fmt.Fprintf(bw, "    pin (A%d) {\n", pin)
			fmt.Fprintf(bw, "      direction : input ;\n")
			fmt.Fprintf(bw, "      capacitance : %s ;\n", fstr(c.PinCaps[pin]/capUnit))
			fmt.Fprintf(bw, "    }\n")
		}
		fmt.Fprintf(bw, "    pin (Y) {\n")
		fmt.Fprintf(bw, "      direction : output ;\n")
		for i := range c.Arcs {
			arc := &c.Arcs[i]
			fmt.Fprintf(bw, "      timing () {\n")
			fmt.Fprintf(bw, "        related_pin : \"A%d\" ;\n", arc.Pin)
			sense := "negative_unate"
			if arc.InRise == arc.OutRise {
				sense = "positive_unate"
			}
			fmt.Fprintf(bw, "        timing_sense : %s ;\n", sense)
			edge := "fall"
			if arc.InRise {
				edge = "rise"
			}
			fmt.Fprintf(bw, "        input_edge : %s ;\n", edge)
			delayKey, slewKey := "cell_fall", "fall_transition"
			if arc.OutRise {
				delayKey, slewKey = "cell_rise", "rise_transition"
			}
			writeTable(bw, delayKey, arc.Delay, timeUnit)
			writeTable(bw, slewKey, arc.OutSlew, timeUnit)
			writeTable(bw, "internal_power", arc.Energy, 1)
			fmt.Fprintf(bw, "      }\n")
		}
		fmt.Fprintf(bw, "    }\n")
		fmt.Fprintf(bw, "  }\n")
	}
	fmt.Fprintf(bw, "}\n")
	return bw.Flush()
}

func writeTable(w io.Writer, key string, t *Table, unit float64) {
	fmt.Fprintf(w, "        %s (grid) {\n", key)
	fmt.Fprintf(w, "          index_1 (\"%s\") ;\n", joinScaled(t.Slews, timeUnit))
	fmt.Fprintf(w, "          index_2 (\"%s\") ;\n", joinScaled(t.Loads, capUnit))
	rows := make([]string, len(t.Values))
	for i, row := range t.Values {
		rows[i] = joinScaled(row, unit)
	}
	fmt.Fprintf(w, "          values (\"%s\") ;\n", strings.Join(rows, "\", \""))
	fmt.Fprintf(w, "        }\n")
}

func joinScaled(xs []float64, unit float64) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fstr(x / unit)
	}
	return strings.Join(parts, ", ")
}

func fstr(x float64) string { return strconv.FormatFloat(x, 'g', 10, 64) }

// ---- parser ----

// node is a parsed Liberty group.
type node struct {
	name    string
	arg     string
	attrs   map[string]string   // simple attributes
	complex map[string][]string // complex attributes (quoted string lists)
	kids    []*node
}

type libLexer struct {
	s    string
	pos  int
	line int
}

func (lx *libLexer) errf(format string, args ...any) error {
	return fmt.Errorf("liberty: line %d: %s", lx.line+1, fmt.Sprintf(format, args...))
}

func (lx *libLexer) skipSpace() {
	for lx.pos < len(lx.s) {
		c := lx.s[lx.pos]
		if c == '\n' {
			lx.line++
		}
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			lx.pos++
			continue
		}
		// Comments.
		if c == '/' && lx.pos+1 < len(lx.s) && lx.s[lx.pos+1] == '*' {
			end := strings.Index(lx.s[lx.pos+2:], "*/")
			if end < 0 {
				lx.pos = len(lx.s)
				return
			}
			lx.line += strings.Count(lx.s[lx.pos:lx.pos+end+4], "\n")
			lx.pos += end + 4
			continue
		}
		return
	}
}

// ident reads until a delimiter.
func (lx *libLexer) ident() string {
	start := lx.pos
	for lx.pos < len(lx.s) && !strings.ContainsRune(" \t\n\r(){}:;\"", rune(lx.s[lx.pos])) {
		lx.pos++
	}
	return lx.s[start:lx.pos]
}

func (lx *libLexer) expect(c byte) error {
	lx.skipSpace()
	if lx.pos >= len(lx.s) || lx.s[lx.pos] != c {
		return lx.errf("expected %q", string(c))
	}
	lx.pos++
	return nil
}

func (lx *libLexer) peek() byte {
	lx.skipSpace()
	if lx.pos >= len(lx.s) {
		return 0
	}
	return lx.s[lx.pos]
}

// parseGroup parses `name (arg) { body }` with the cursor at name.
func (lx *libLexer) parseGroup() (*node, error) {
	lx.skipSpace()
	n := &node{attrs: map[string]string{}, complex: map[string][]string{}}
	n.name = lx.ident()
	if n.name == "" {
		return nil, lx.errf("expected group name")
	}
	if err := lx.expect('('); err != nil {
		return nil, err
	}
	// Argument: everything until ')'.
	start := lx.pos
	for lx.pos < len(lx.s) && lx.s[lx.pos] != ')' {
		lx.pos++
	}
	n.arg = strings.TrimSpace(lx.s[start:lx.pos])
	if err := lx.expect(')'); err != nil {
		return nil, err
	}
	if err := lx.expect('{'); err != nil {
		return nil, err
	}
	for {
		switch lx.peek() {
		case 0:
			return nil, lx.errf("unexpected EOF in group %s", n.name)
		case '}':
			lx.pos++
			return n, nil
		}
		// Either `key : value ;`, `key (args...) ;` or a nested group.
		save := lx.pos
		key := lx.ident()
		if key == "" {
			return nil, lx.errf("expected statement in group %s", n.name)
		}
		switch lx.peek() {
		case ':':
			lx.pos++
			lx.skipSpace()
			val, err := lx.value()
			if err != nil {
				return nil, err
			}
			n.attrs[key] = val
			if err := lx.expect(';'); err != nil {
				return nil, err
			}
		case '(':
			// Complex attribute or nested group: decide by what follows the
			// closing paren.
			depth := 0
			scan := lx.pos
			for scan < len(lx.s) {
				if lx.s[scan] == '(' {
					depth++
				} else if lx.s[scan] == ')' {
					depth--
					if depth == 0 {
						break
					}
				}
				scan++
			}
			rest := strings.TrimLeft(lx.s[scan+1:], " \t\r\n")
			if strings.HasPrefix(rest, "{") {
				lx.pos = save
				kid, err := lx.parseGroup()
				if err != nil {
					return nil, err
				}
				n.kids = append(n.kids, kid)
			} else {
				lx.pos++ // consume '('
				vals, err := lx.argList()
				if err != nil {
					return nil, err
				}
				n.complex[key] = vals
				if err := lx.expect(';'); err != nil {
					return nil, err
				}
			}
		default:
			return nil, lx.errf("unexpected token after %q", key)
		}
	}
}

// value reads a simple attribute value up to ';'.
func (lx *libLexer) value() (string, error) {
	lx.skipSpace()
	if lx.peek() == '"' {
		lx.pos++
		start := lx.pos
		for lx.pos < len(lx.s) && lx.s[lx.pos] != '"' {
			lx.pos++
		}
		v := lx.s[start:lx.pos]
		if err := lx.expect('"'); err != nil {
			return "", err
		}
		return v, nil
	}
	start := lx.pos
	for lx.pos < len(lx.s) && lx.s[lx.pos] != ';' && lx.s[lx.pos] != '\n' {
		lx.pos++
	}
	return strings.TrimSpace(lx.s[start:lx.pos]), nil
}

// argList reads a comma-separated list of quoted or bare tokens up to ')'.
func (lx *libLexer) argList() ([]string, error) {
	var out []string
	for {
		lx.skipSpace()
		switch lx.peek() {
		case ')':
			lx.pos++
			return out, nil
		case '"':
			lx.pos++
			start := lx.pos
			for lx.pos < len(lx.s) && lx.s[lx.pos] != '"' {
				lx.pos++
			}
			out = append(out, lx.s[start:lx.pos])
			if err := lx.expect('"'); err != nil {
				return nil, err
			}
		case ',':
			lx.pos++
		case 0:
			return nil, lx.errf("unexpected EOF in argument list")
		default:
			start := lx.pos
			for lx.pos < len(lx.s) && !strings.ContainsRune(",)", rune(lx.s[lx.pos])) {
				lx.pos++
			}
			out = append(out, strings.TrimSpace(lx.s[start:lx.pos]))
		}
	}
}

// ParseLib reads a library serialized by WriteLib.
func ParseLib(r io.Reader) (*Library, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	lx := &libLexer{s: string(raw)}
	root, err := lx.parseGroup()
	if err != nil {
		return nil, err
	}
	if root.name != "library" {
		return nil, fmt.Errorf("liberty: top-level group is %q, want library", root.name)
	}
	lib := &Library{Name: root.arg, Cells: map[string]*Cell{}}
	lib.Params.TempK = atofOr(root.attrs["nom_temperature"], 300)
	lib.Params.VDD = atofOr(root.attrs["nom_voltage"], 0.7)
	for _, cg := range root.kids {
		if cg.name != "cell" {
			continue
		}
		cell, err := parseCell(cg)
		if err != nil {
			return nil, fmt.Errorf("liberty: cell %s: %w", cg.arg, err)
		}
		lib.Cells[cell.Name] = cell
	}
	return lib, nil
}

func parseCell(cg *node) (*Cell, error) {
	c := &Cell{Name: cg.arg}
	c.Transistors = int(atofOr(cg.attrs["area"], 0))
	c.LeakageAvg = atofOr(cg.attrs["cell_leakage_power"], 0)
	c.LeakageMax = atofOr(cg.attrs["max_leakage_power"], 0)
	pinCaps := map[int]float64{}
	for _, pg := range cg.kids {
		if pg.name != "pin" {
			continue
		}
		if pg.attrs["direction"] == "input" {
			var idx int
			if _, err := fmt.Sscanf(pg.arg, "A%d", &idx); err != nil {
				return nil, fmt.Errorf("input pin name %q", pg.arg)
			}
			pinCaps[idx] = atofOr(pg.attrs["capacitance"], 0) * capUnit
			continue
		}
		// Output pin: timing groups.
		for _, tg := range pg.kids {
			if tg.name != "timing" {
				continue
			}
			arc, err := parseArc(tg)
			if err != nil {
				return nil, err
			}
			c.Arcs = append(c.Arcs, *arc)
		}
	}
	c.Inputs = len(pinCaps)
	c.PinCaps = make([]float64, c.Inputs)
	for i := 0; i < c.Inputs; i++ {
		cap, ok := pinCaps[i]
		if !ok {
			return nil, fmt.Errorf("missing pin A%d", i)
		}
		c.PinCaps[i] = cap
	}
	return c, nil
}

func parseArc(tg *node) (*TimingArc, error) {
	arc := &TimingArc{}
	rel := strings.Trim(tg.attrs["related_pin"], "\" ")
	if _, err := fmt.Sscanf(rel, "A%d", &arc.Pin); err != nil {
		return nil, fmt.Errorf("related_pin %q", rel)
	}
	arc.InRise = tg.attrs["input_edge"] == "rise"
	sense := tg.attrs["timing_sense"]
	arc.OutRise = arc.InRise == (sense == "positive_unate")
	for _, g := range tg.kids {
		t, err := parseTable(g)
		if err != nil {
			return nil, err
		}
		switch g.name {
		case "cell_rise", "cell_fall":
			scaleTable(t, timeUnit)
			arc.Delay = t
		case "rise_transition", "fall_transition":
			scaleTable(t, timeUnit)
			arc.OutSlew = t
		case "internal_power":
			arc.Energy = t
		}
	}
	if arc.Delay == nil || arc.OutSlew == nil || arc.Energy == nil {
		return nil, fmt.Errorf("timing group for A%d missing tables", arc.Pin)
	}
	return arc, nil
}

func parseTable(g *node) (*Table, error) {
	t := &Table{}
	var err error
	if t.Slews, err = floats(g.complex["index_1"]); err != nil {
		return nil, err
	}
	if t.Loads, err = floats(g.complex["index_2"]); err != nil {
		return nil, err
	}
	for i := range t.Slews {
		t.Slews[i] *= timeUnit
	}
	for i := range t.Loads {
		t.Loads[i] *= capUnit
	}
	for _, row := range g.complex["values"] {
		vals, err := floats(strings.Split(row, ","))
		if err != nil {
			return nil, err
		}
		if len(vals) != len(t.Loads) {
			return nil, fmt.Errorf("table row has %d values for %d loads", len(vals), len(t.Loads))
		}
		t.Values = append(t.Values, vals)
	}
	if len(t.Values) != len(t.Slews) {
		return nil, fmt.Errorf("table has %d rows for %d slews", len(t.Values), len(t.Slews))
	}
	return t, nil
}

func scaleTable(t *Table, unit float64) {
	for i := range t.Values {
		for j := range t.Values[i] {
			t.Values[i][j] *= unit
		}
	}
}

func floats(parts []string) ([]float64, error) {
	// index_1 style: a single string with comma-separated values, or
	// already-split pieces.
	var flat []string
	for _, p := range parts {
		for _, q := range strings.Split(p, ",") {
			q = strings.TrimSpace(q)
			if q != "" {
				flat = append(flat, q)
			}
		}
	}
	out := make([]float64, len(flat))
	for i, s := range flat {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", s)
		}
		out[i] = v
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty number list")
	}
	return out, nil
}

func atofOr(s string, def float64) float64 {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return def
	}
	return v
}

// SortArcs orders cell arcs deterministically (pin, then edge), useful
// after parsing.
func (c *Cell) SortArcs() {
	sort.SliceStable(c.Arcs, func(i, j int) bool {
		if c.Arcs[i].Pin != c.Arcs[j].Pin {
			return c.Arcs[i].Pin < c.Arcs[j].Pin
		}
		return c.Arcs[i].InRise && !c.Arcs[j].InRise
	})
}
