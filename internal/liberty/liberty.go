package liberty

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/parallel"
	"repro/internal/spice"
)

// Table is a two-dimensional NLDM lookup table indexed by input slew
// (rows) and output load (columns), with bilinear interpolation and clamped
// extrapolation.
type Table struct {
	Slews  []float64 // seconds, ascending
	Loads  []float64 // farads, ascending
	Values [][]float64
}

// Lookup interpolates the table at (slew, load). Queries outside the
// characterized grid clamp to the boundary (the standard signoff-safe
// behaviour for our purposes).
func (t *Table) Lookup(slew, load float64) float64 {
	i0, i1, fx := bracket(t.Slews, slew)
	j0, j1, fy := bracket(t.Loads, load)
	v00 := t.Values[i0][j0]
	v01 := t.Values[i0][j1]
	v10 := t.Values[i1][j0]
	v11 := t.Values[i1][j1]
	return v00*(1-fx)*(1-fy) + v10*fx*(1-fy) + v01*(1-fx)*fy + v11*fx*fy
}

func bracket(xs []float64, x float64) (int, int, float64) {
	n := len(xs)
	if n == 1 || x <= xs[0] {
		return 0, 0, 0
	}
	if x >= xs[n-1] {
		return n - 1, n - 1, 0
	}
	i := sort.SearchFloat64s(xs, x)
	if xs[i] == x {
		return i, i, 0
	}
	lo, hi := i-1, i
	f := (x - xs[lo]) / (xs[hi] - xs[lo])
	return lo, hi, f
}

// TimingArc is one characterized (input pin, input edge) arc of a cell.
type TimingArc struct {
	Pin     int
	InRise  bool // input transition direction
	OutRise bool // resulting output transition direction
	Delay   *Table
	OutSlew *Table
	Energy  *Table
}

// Cell is one characterized library cell.
type Cell struct {
	Name        string
	Inputs      int
	PinCaps     []float64 // farads per input pin
	Arcs        []TimingArc
	LeakageAvg  float64 // average over all input states, watts at VDD
	LeakageMax  float64
	Transistors int
}

// Arc returns the timing arc for (pin, input edge).
func (c *Cell) Arc(pin int, inRise bool) (*TimingArc, bool) {
	for i := range c.Arcs {
		if c.Arcs[i].Pin == pin && c.Arcs[i].InRise == inRise {
			return &c.Arcs[i], true
		}
	}
	return nil, false
}

// WorstDelay returns the maximum delay over all arcs at (slew, load) —
// a conservative single-number summary used in reports.
func (c *Cell) WorstDelay(slew, load float64) float64 {
	worst := 0.0
	for i := range c.Arcs {
		if d := c.Arcs[i].Delay.Lookup(slew, load); d > worst {
			worst = d
		}
	}
	return worst
}

// Library is a characterized standard-cell library at one operating corner.
type Library struct {
	Name   string
	Params spice.Params
	Cells  map[string]*Cell
	// Characterization cost accounting (experiment T1 compares this against
	// the ML surrogate's cost).
	SpiceRuns  int
	SpiceSteps int
}

// Cell returns the named cell.
func (l *Library) Cell(name string) (*Cell, bool) {
	c, ok := l.Cells[name]
	return c, ok
}

// CellNames returns all cell names sorted.
func (l *Library) CellNames() []string {
	names := make([]string, 0, len(l.Cells))
	for n := range l.Cells {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Grid is the characterization grid specification.
type Grid struct {
	Slews []float64
	Loads []float64
}

// DefaultGrid returns the standard 7×7 NLDM grid.
func DefaultGrid() Grid {
	return Grid{
		Slews: []float64{2e-12, 5e-12, 10e-12, 20e-12, 40e-12, 80e-12, 160e-12},
		Loads: []float64{0.5e-15, 1e-15, 2e-15, 4e-15, 8e-15, 16e-15, 32e-15},
	}
}

// CoarseGrid returns a 3×3 grid for fast tests.
func CoarseGrid() Grid {
	return Grid{
		Slews: []float64{5e-12, 20e-12, 80e-12},
		Loads: []float64{1e-15, 4e-15, 16e-15},
	}
}

// Characterize builds a library by running the transistor-level simulator
// over every (cell, pin, edge, slew, load) point of the grid, exactly like
// a commercial characterization flow. The passed params carry the corner:
// temperature, supply, and aging ΔVth. It fans the sweep out over
// GOMAXPROCS workers; use CharacterizeWorkers for an explicit worker count.
func Characterize(name string, cells []*spice.Cell, p spice.Params, grid Grid) (*Library, error) {
	return CharacterizeWorkers(name, cells, p, grid, 0)
}

// arcUnit is one independent characterization work item: the full slew×load
// grid of a single (cell, pin, input-edge) timing arc. Units only write
// their own arc tables and local counters, so they parallelize freely.
type arcUnit struct {
	cell        *spice.Cell
	out         *Cell // destination library cell
	arcIdx      int
	pin         int
	inRise      bool
	side        []bool
	runs, steps int
}

// CharacterizeWorkers is Characterize with a bounded worker pool
// (workers <= 0 selects GOMAXPROCS). The characterization is deterministic:
// the transistor-level simulator has no randomness and every (cell, arc)
// unit is independent, with cost counters accumulated in unit order after
// the fan-out, so the resulting library is bit-identical for any worker
// count.
func CharacterizeWorkers(name string, cells []*spice.Cell, p spice.Params, grid Grid, workers int) (*Library, error) {
	lib := &Library{Name: name, Params: p, Cells: make(map[string]*Cell, len(cells))}
	// Serial skeleton pass: resolve arcs and pin data, building the flat
	// unit list the pool consumes. This is pure logic evaluation — cheap
	// next to the transient sweeps.
	var units []*arcUnit
	for _, sc := range cells {
		lc := &Cell{
			Name:        sc.Name,
			Inputs:      sc.NumInputs,
			PinCaps:     make([]float64, sc.NumInputs),
			Transistors: sc.Transistors(),
		}
		for pin := 0; pin < sc.NumInputs; pin++ {
			lc.PinCaps[pin] = sc.PinCap(pin)
		}
		for pin := 0; pin < sc.NumInputs; pin++ {
			side, ok := spice.SensitizingSideInputs(sc, pin)
			if !ok {
				return nil, fmt.Errorf("liberty: cell %s: pin %d not sensitizable", sc.Name, pin)
			}
			for _, inRise := range []bool{true, false} {
				arc := TimingArc{Pin: pin, InRise: inRise}
				// Output direction from the digital function.
				in := append([]bool(nil), side...)
				in[pin] = inRise
				arc.OutRise = sc.Logic(in)
				units = append(units, &arcUnit{
					cell: sc, out: lc, arcIdx: len(lc.Arcs),
					pin: pin, inRise: inRise, side: side,
				})
				lc.Arcs = append(lc.Arcs, arc)
			}
		}
		characterizeLeakage(sc, p, lc)
		lib.Cells[sc.Name] = lc
	}

	err := parallel.For(workers, len(units), func(k int) error {
		u := units[k]
		arc := &u.out.Arcs[u.arcIdx]
		arc.Delay = newTable(grid)
		arc.OutSlew = newTable(grid)
		arc.Energy = newTable(grid)
		for i, slew := range grid.Slews {
			for j, load := range grid.Loads {
				m, err := spice.Simulate(u.cell, p, spice.Arc{
					Pin: u.pin, RiseIn: u.inRise, InSlew: slew,
					LoadCap: load, SideInputs: u.side,
				})
				if err != nil {
					return fmt.Errorf("liberty: cell %s: %w", u.cell.Name, err)
				}
				u.runs++
				u.steps += m.Steps
				arc.Delay.Values[i][j] = m.Delay
				arc.OutSlew.Values[i][j] = m.Slew
				arc.Energy.Values[i][j] = m.Energy
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Deterministic cost accounting: sum per-unit counters in unit order.
	for _, u := range units {
		lib.SpiceRuns += u.runs
		lib.SpiceSteps += u.steps
	}
	return lib, nil
}

// characterizeLeakage fills the state-dependent leakage summary over all
// input vectors of one cell.
func characterizeLeakage(sc *spice.Cell, p spice.Params, lc *Cell) {
	n := sc.NumInputs
	total, worst := 0.0, 0.0
	states := 1 << uint(n)
	for v := 0; v < states; v++ {
		in := make([]bool, n)
		for i := range in {
			in[i] = v>>uint(i)&1 == 1
		}
		leak := spice.Leakage(sc, p, in) * p.VDD
		total += leak
		if leak > worst {
			worst = leak
		}
	}
	lc.LeakageAvg = total / float64(states)
	lc.LeakageMax = worst
}

func newTable(g Grid) *Table {
	t := &Table{Slews: g.Slews, Loads: g.Loads}
	t.Values = make([][]float64, len(g.Slews))
	for i := range t.Values {
		t.Values[i] = make([]float64, len(g.Loads))
	}
	return t
}

// DelayHistogram aggregates every delay value stored in the library —
// the data behind the "cell delay distribution" style figure.
func (l *Library) DelayHistogram() []float64 {
	var out []float64
	for _, name := range l.CellNames() {
		c := l.Cells[name]
		for _, arc := range c.Arcs {
			for _, row := range arc.Delay.Values {
				out = append(out, row...)
			}
		}
	}
	sort.Float64s(out)
	return out
}

// TotalLeakage sums average leakage across all cells (for corner reports).
func (l *Library) TotalLeakage() float64 {
	t := 0.0
	for _, c := range l.Cells {
		t += c.LeakageAvg
	}
	return t
}

// Summary describes a library corner in one line.
func (l *Library) Summary() string {
	hist := l.DelayHistogram()
	med := math.NaN()
	if len(hist) > 0 {
		med = hist[len(hist)/2]
	}
	return fmt.Sprintf("%s: %d cells, %d arcs points, median delay %.1f ps, total avg leakage %.3g W",
		l.Name, len(l.Cells), l.SpiceRuns, med*1e12, l.TotalLeakage())
}
