package outlier

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

func TestSynthesizeShape(t *testing.T) {
	cfg := DefaultLotConfig()
	lot := Synthesize(cfg, 1)
	if len(lot.X) != cfg.Devices || len(lot.Defective) != cfg.Devices {
		t.Fatalf("lot shape %d/%d", len(lot.X), len(lot.Defective))
	}
	nDef := 0
	for _, d := range lot.Defective {
		if d {
			nDef++
		}
	}
	rate := float64(nDef) / float64(cfg.Devices)
	if rate < cfg.DefectRate/3 || rate > cfg.DefectRate*3 {
		t.Errorf("defect rate %f far from configured %f", rate, cfg.DefectRate)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := Synthesize(DefaultLotConfig(), 42)
	b := Synthesize(DefaultLotConfig(), 42)
	for i := range a.X {
		if a.Defective[i] != b.Defective[i] {
			t.Fatal("labels differ across same-seed lots")
		}
		for j := range a.X[i] {
			if a.X[i][j] != b.X[i][j] {
				t.Fatal("data differ across same-seed lots")
			}
		}
	}
}

// healthyRef extracts the healthy devices — in a real flow this is the
// passing reference population.
func healthyRef(lot *Lot) [][]float64 {
	var ref [][]float64
	for i, d := range lot.Defective {
		if !d {
			ref = append(ref, lot.X[i])
		}
	}
	return ref
}

func TestAllScorersBeatChance(t *testing.T) {
	lot := Synthesize(DefaultLotConfig(), 7)
	ref := healthyRef(lot)
	// The univariate PAT screen is expected to be clearly weaker on
	// correlated data — that gap is the finding of experiment F3 — so its
	// floor is lower.
	for name, c := range map[string]struct {
		s     Scorer
		floor float64
	}{
		"zscore":      {&ZScorePAT{}, 0.60},
		"mahalanobis": {&Mahalanobis{}, 0.85},
		"knn":         {&KNNOutlier{K: 10}, 0.80},
	} {
		if err := c.s.Fit(ref); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		auc := AUC(ScoreAll(c.s, lot.X), lot.Defective)
		if auc < c.floor {
			t.Errorf("%s AUC = %f, expected > %.2f", name, auc, c.floor)
		}
	}
}

func TestMahalanobisBeatsUnivariateOnCorrelatedData(t *testing.T) {
	// With strongly correlated tests, the multivariate screen should not be
	// worse than the univariate PAT screen.
	cfg := DefaultLotConfig()
	cfg.Factors = 2
	cfg.NoiseSigma = 0.15
	lot := Synthesize(cfg, 11)
	ref := healthyRef(lot)
	z := &ZScorePAT{}
	m := &Mahalanobis{}
	if err := z.Fit(ref); err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(ref); err != nil {
		t.Fatal(err)
	}
	aucZ := AUC(ScoreAll(z, lot.X), lot.Defective)
	aucM := AUC(ScoreAll(m, lot.X), lot.Defective)
	if aucM+0.02 < aucZ {
		t.Errorf("mahalanobis AUC %f clearly below zscore %f", aucM, aucZ)
	}
}

func TestSweepMonotoneTradeoff(t *testing.T) {
	lot := Synthesize(DefaultLotConfig(), 13)
	s := &ZScorePAT{}
	if err := s.Fit(healthyRef(lot)); err != nil {
		t.Fatal(err)
	}
	pts := Sweep(ScoreAll(s, lot.X), lot.Defective, 50)
	if len(pts) != 50 {
		t.Fatalf("sweep points = %d", len(pts))
	}
	// Raising the threshold can only increase escapes and decrease
	// overkill.
	for i := 1; i < len(pts); i++ {
		if pts[i].EscapeRate < pts[i-1].EscapeRate-1e-12 {
			t.Error("escape rate decreased with threshold")
		}
		if pts[i].OverkillRate > pts[i-1].OverkillRate+1e-12 {
			t.Error("overkill rate increased with threshold")
		}
	}
	// Extremes: lowest threshold rejects nearly everything (low escapes),
	// highest passes everything (no overkill).
	if pts[0].OverkillRate < 0.5 {
		t.Errorf("lowest threshold overkill = %f", pts[0].OverkillRate)
	}
	if pts[len(pts)-1].OverkillRate != 0 {
		t.Errorf("highest threshold overkill = %f", pts[len(pts)-1].OverkillRate)
	}
}

func TestAUCProperties(t *testing.T) {
	// Perfect separation.
	scores := []float64{1, 2, 3, 10, 11}
	labels := []bool{false, false, false, true, true}
	if auc := AUC(scores, labels); auc != 1 {
		t.Errorf("perfect AUC = %f", auc)
	}
	// Inverted scores.
	if auc := AUC([]float64{10, 11, 1, 2}, []bool{false, false, true, true}); auc != 0 {
		t.Errorf("inverted AUC = %f", auc)
	}
	// Ties count half.
	if auc := AUC([]float64{5, 5}, []bool{false, true}); auc != 0.5 {
		t.Errorf("tied AUC = %f", auc)
	}
	// Degenerate lots carry no ranking information: chance level, not NaN.
	if auc := AUC([]float64{1, 2}, []bool{false, false}); auc != 0.5 {
		t.Errorf("all-pass AUC = %f, want 0.5", auc)
	}
	if auc := AUC([]float64{1, 2}, []bool{true, true}); auc != 0.5 {
		t.Errorf("all-defective AUC = %f, want 0.5", auc)
	}
	if auc := AUC(nil, nil); auc != 0.5 {
		t.Errorf("empty AUC = %f, want 0.5", auc)
	}
}

func TestScorerValidation(t *testing.T) {
	if err := (&ZScorePAT{}).Fit(nil); err == nil {
		t.Error("empty fit must fail")
	}
	if err := (&Mahalanobis{}).Fit([][]float64{{1, 2}}); err == nil {
		t.Error("single-row covariance must fail")
	}
	if err := (&KNNOutlier{}).Fit(nil); err == nil {
		t.Error("empty knn fit must fail")
	}
	// K larger than reference clamps rather than crashing.
	k := &KNNOutlier{K: 100}
	if err := k.Fit([][]float64{{0, 0}, {1, 1}}); err != nil {
		t.Fatal(err)
	}
	if s := k.Score([]float64{0.5, 0.5}); s <= 0 {
		t.Errorf("knn score = %f", s)
	}
}

func TestInvertIdentity(t *testing.T) {
	a := [][]float64{{2, 0}, {0, 4}}
	inv, err := invert(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(inv[0][0]-0.5) > 1e-12 || math.Abs(inv[1][1]-0.25) > 1e-12 {
		t.Errorf("inverse = %v", inv)
	}
	if _, err := invert([][]float64{{1, 1}, {1, 1}}); err == nil {
		t.Error("singular inverse must fail")
	}
}

func TestZScoreOnOutlier(t *testing.T) {
	ref := [][]float64{{0}, {0.1}, {-0.1}, {0.05}, {-0.05}, {0.02}, {-0.02}}
	s := &ZScorePAT{}
	if err := s.Fit(ref); err != nil {
		t.Fatal(err)
	}
	if inlier, outl := s.Score([]float64{0}), s.Score([]float64{5}); outl < 10*inlier+1 {
		t.Errorf("outlier score %f not far above inlier %f", outl, inlier)
	}
}

func BenchmarkMahalanobis(b *testing.B) {
	lot := Synthesize(DefaultLotConfig(), 1)
	s := &Mahalanobis{}
	if err := s.Fit(healthyRef(lot)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Score(lot.X[i%len(lot.X)])
	}
}

func TestPCAResidualScreen(t *testing.T) {
	lot := Synthesize(DefaultLotConfig(), 21)
	ref := healthyRef(lot)
	s := &PCAResidual{}
	if err := s.Fit(ref); err != nil {
		t.Fatal(err)
	}
	auc := AUC(ScoreAll(s, lot.X), lot.Defective)
	if auc < 0.8 {
		t.Errorf("PCA residual AUC = %f", auc)
	}
	// Fixed K also works.
	sk := &PCAResidual{K: 3}
	if err := sk.Fit(ref); err != nil {
		t.Fatal(err)
	}
	if a := AUC(ScoreAll(sk, lot.X), lot.Defective); a < 0.8 {
		t.Errorf("PCA(K=3) AUC = %f", a)
	}
	if err := (&PCAResidual{}).Fit(nil); err == nil {
		t.Error("empty reference must fail")
	}
}

func TestSweepEdgeCases(t *testing.T) {
	// Empty input: empty curve, no NaN thresholds.
	if pts := Sweep(nil, nil, 10); len(pts) != 0 {
		t.Errorf("empty Sweep returned %d points", len(pts))
	}
	// All-pass lot: escape rate is identically zero and overkill well-defined.
	scores := []float64{1, 2, 3, 4}
	for _, p := range Sweep(scores, []bool{false, false, false, false}, 5) {
		if p.EscapeRate != 0 {
			t.Errorf("all-pass escape rate = %f at threshold %f", p.EscapeRate, p.Threshold)
		}
		if math.IsNaN(p.OverkillRate) || math.IsNaN(p.Threshold) {
			t.Errorf("all-pass point has NaN: %+v", p)
		}
	}
	// All-defective lot: overkill identically zero.
	for _, p := range Sweep(scores, []bool{true, true, true, true}, 5) {
		if p.OverkillRate != 0 {
			t.Errorf("all-defective overkill = %f at threshold %f", p.OverkillRate, p.Threshold)
		}
		if math.IsNaN(p.EscapeRate) || math.IsNaN(p.Threshold) {
			t.Errorf("all-defective point has NaN: %+v", p)
		}
	}
	// Fully tied scores: the threshold range collapses but every point
	// stays finite and consistent.
	pts := Sweep([]float64{2, 2, 2}, []bool{true, false, true}, 4)
	if len(pts) != 4 {
		t.Fatalf("tied Sweep returned %d points, want 4", len(pts))
	}
	for _, p := range pts {
		if p.Threshold != 2 {
			t.Errorf("tied threshold = %f, want 2", p.Threshold)
		}
		// No score exceeds the threshold, so nothing is rejected.
		if p.EscapeRate != 1 || p.OverkillRate != 0 {
			t.Errorf("tied point = %+v, want escape 1 / overkill 0", p)
		}
	}
}

// TestScoreConcurrent hammers every fitted scorer from 8 goroutines under
// the race detector: Score is documented safe for concurrent readers (the
// itrserve handlers share one fitted model).
func TestScoreConcurrent(t *testing.T) {
	lot := Synthesize(LotConfig{
		Devices: 300, Tests: 8, Factors: 3,
		DefectRate: 0.05, DefectMag: 2, DefectLoc: 2, NoiseSigma: 0.3,
	}, 11)
	scorers := map[string]Scorer{
		"zscore":      &ZScorePAT{},
		"mahalanobis": &Mahalanobis{},
		"knn":         &KNNOutlier{K: 5},
		"pca":         &PCAResidual{},
	}
	for name, s := range scorers {
		if err := s.Fit(lot.X); err != nil {
			t.Fatalf("%s fit: %v", name, err)
		}
		want := ScoreAll(s, lot.X)
		var wg sync.WaitGroup
		errs := make(chan string, 8)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i, x := range lot.X {
					if got := s.Score(x); got != want[i] {
						select {
						case errs <- fmt.Sprintf("%s: concurrent Score(%d) = %v, want %v", name, i, got, want[i]):
						default:
						}
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Error(e)
		}
	}
}

// TestScorerSerializeRoundTrip saves and reloads each serializable scorer
// and asserts bit-identical scores — the registry's model-artifact
// contract.
func TestScorerSerializeRoundTrip(t *testing.T) {
	lot := Synthesize(LotConfig{
		Devices: 200, Tests: 6, Factors: 2,
		DefectRate: 0.05, DefectMag: 2, DefectLoc: 2, NoiseSigma: 0.3,
	}, 3)
	for _, s := range []Scorer{&ZScorePAT{}, &Mahalanobis{}, &KNNOutlier{K: 7}} {
		method := MethodOf(s)
		if err := s.Fit(lot.X); err != nil {
			t.Fatalf("%s fit: %v", method, err)
		}
		data, err := SaveScorer(s)
		if err != nil {
			t.Fatalf("%s save: %v", method, err)
		}
		loaded, err := LoadScorer(data)
		if err != nil {
			t.Fatalf("%s load: %v", method, err)
		}
		if got := MethodOf(loaded); got != method {
			t.Errorf("round trip changed method %q -> %q", method, got)
		}
		for i, x := range lot.X {
			if a, b := s.Score(x), loaded.Score(x); a != b {
				t.Fatalf("%s: reloaded Score(%d) = %v, want %v (must be bit-identical)", method, i, b, a)
			}
		}
	}
	// PCAResidual has no serialized form.
	if _, err := SaveScorer(&PCAResidual{}); err == nil {
		t.Error("SaveScorer(PCAResidual) must fail")
	}
	// Corrupt envelopes are rejected.
	if _, err := LoadScorer([]byte(`{"method":"nope","state":{}}`)); err == nil {
		t.Error("unknown method must fail to load")
	}
	if _, err := LoadScorer([]byte(`{"method":"knn","state":{"k":0,"ref":[[1]]}}`)); err == nil {
		t.Error("invalid knn state must fail to load")
	}
	if _, err := LoadScorer([]byte(`{"method":"zscore-pat","state":{"med":[0],"mad":[0]}}`)); err == nil {
		t.Error("non-positive MAD must fail to load")
	}
}
