package outlier

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/wire"
)

// fittedScorers returns one fitted instance of every serializable scorer.
func fittedScorers(t *testing.T) []Scorer {
	t.Helper()
	lot := Synthesize(DefaultLotConfig(), 7)
	ref := healthyRef(lot)
	out := []Scorer{&ZScorePAT{}, &Mahalanobis{}, &KNNOutlier{K: 5}}
	for _, s := range out {
		if err := s.Fit(ref); err != nil {
			t.Fatalf("fit %T: %v", s, err)
		}
	}
	return out
}

// TestScorerBinaryRoundTrip pins the itr-model/v2 contract for every
// serializable scorer: canonical bytes round-trip bit-identically and the
// reloaded scorer produces the same float64 score bits on every device.
func TestScorerBinaryRoundTrip(t *testing.T) {
	lot := Synthesize(DefaultLotConfig(), 8)
	for _, s := range fittedScorers(t) {
		data, err := AppendScorerBinary(nil, s)
		if err != nil {
			t.Fatalf("%T: %v", s, err)
		}
		loaded, err := UnmarshalScorerBinary(data)
		if err != nil {
			t.Fatalf("%T: %v", s, err)
		}
		again, err := AppendScorerBinary(nil, loaded)
		if err != nil {
			t.Fatalf("%T re-encode: %v", s, err)
		}
		if !bytes.Equal(data, again) {
			t.Errorf("%T: re-encode differs (%d vs %d bytes)", s, len(data), len(again))
		}
		for i, x := range lot.X {
			a, b := s.Score(x), loaded.Score(x)
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("%T: device %d score %v vs %v (bit mismatch)", s, i, a, b)
			}
		}
	}
}

// TestScorerBinaryMatchesJSON: both codecs describe the same fitted state.
func TestScorerBinaryMatchesJSON(t *testing.T) {
	lot := Synthesize(DefaultLotConfig(), 9)
	for _, s := range fittedScorers(t) {
		jsonData, err := SaveScorer(s)
		if err != nil {
			t.Fatal(err)
		}
		binData, err := AppendScorerBinary(nil, s)
		if err != nil {
			t.Fatal(err)
		}
		fromJSON, err := LoadScorer(jsonData)
		if err != nil {
			t.Fatal(err)
		}
		fromBin, err := UnmarshalScorerBinary(binData)
		if err != nil {
			t.Fatal(err)
		}
		for i, x := range lot.X {
			a, b := fromJSON.Score(x), fromBin.Score(x)
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("%T: device %d json score %v vs binary %v", s, i, a, b)
			}
		}
	}
}

func TestScorerBinaryValidation(t *testing.T) {
	if _, err := UnmarshalScorerBinary(nil); err == nil {
		t.Error("empty envelope accepted")
	}
	if _, err := UnmarshalScorerBinary([]byte{99}); err == nil {
		t.Error("unknown method code accepted")
	}
	for _, s := range fittedScorers(t) {
		data, err := AppendScorerBinary(nil, s)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 1; cut < len(data); cut += 5 {
			if _, err := UnmarshalScorerBinary(data[:cut]); err == nil {
				t.Fatalf("%T: truncation at %d accepted", s, cut)
			}
		}
		if _, err := UnmarshalScorerBinary(append(append([]byte(nil), data...), 0)); err == nil {
			t.Errorf("%T: trailing byte accepted", s)
		}
	}
	// A refit-only scorer has no serialized form, mirroring SaveScorer.
	if _, err := AppendScorerBinary(nil, &PCAResidual{}); err == nil {
		t.Error("PCAResidual serialized")
	}
	// A zero MAD must be refused on load (division guard), as in JSON.
	z := &ZScorePAT{med: []float64{0}, mad: []float64{0}}
	data := wire.AppendF64s(nil, z.med)
	data = wire.AppendF64s(data, z.mad)
	if err := new(ZScorePAT).UnmarshalBinary(data); err == nil {
		t.Error("zero MAD accepted")
	}
}
