package outlier

import (
	"fmt"

	"repro/internal/wire"
)

// Canonical binary forms of the fitted PAT scorers (itr-model/v2
// sections). The envelope mirrors SaveScorer/LoadScorer: a method code
// byte followed by the method's state, so one decoder dispatches to the
// right implementation. Matrices are stored flat with their row length
// implied by the preceding vector (mahalanobis) or explicit (knn) — one
// fitted scorer has exactly one encoding.

// Binary method codes (the envelope's discriminant). Stable on the wire:
// new methods append, existing codes never change meaning.
const (
	methodCodeZScorePAT   = 1
	methodCodeMahalanobis = 2
	methodCodeKNN         = 3
)

// AppendScorerBinary appends the self-describing canonical encoding of a
// fitted scorer (method code + state) to b.
func AppendScorerBinary(b []byte, s Scorer) ([]byte, error) {
	switch s := s.(type) {
	case *ZScorePAT:
		return s.AppendBinary(wire.AppendU8(b, methodCodeZScorePAT))
	case *Mahalanobis:
		return s.AppendBinary(wire.AppendU8(b, methodCodeMahalanobis))
	case *KNNOutlier:
		return s.AppendBinary(wire.AppendU8(b, methodCodeKNN))
	}
	return nil, fmt.Errorf("outlier: scorer %T has no serialized form", s)
}

// UnmarshalScorerBinary reconstructs a fitted scorer from an
// AppendScorerBinary encoding.
func UnmarshalScorerBinary(data []byte) (Scorer, error) {
	d := wire.NewDec(data)
	code := d.U8()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("outlier: decode scorer envelope: %w", err)
	}
	var s Scorer
	switch code {
	case methodCodeZScorePAT:
		s = &ZScorePAT{}
	case methodCodeMahalanobis:
		s = &Mahalanobis{}
	case methodCodeKNN:
		s = &KNNOutlier{}
	default:
		return nil, fmt.Errorf("outlier: unknown scorer method code %d", code)
	}
	type binaryUnmarshaler interface{ UnmarshalBinary([]byte) error }
	if err := s.(binaryUnmarshaler).UnmarshalBinary(data[1:]); err != nil {
		return nil, err
	}
	return s, nil
}

// AppendBinary appends the fitted robust location/scale estimates:
// f64s med, f64s mad.
func (s *ZScorePAT) AppendBinary(b []byte) ([]byte, error) {
	if len(s.med) == 0 || len(s.med) != len(s.mad) {
		return nil, fmt.Errorf("outlier: cannot serialize zscore state %d medians / %d MADs",
			len(s.med), len(s.mad))
	}
	b = wire.AppendF64s(b, s.med)
	b = wire.AppendF64s(b, s.mad)
	return b, nil
}

// UnmarshalBinary restores a fitted ZScorePAT, enforcing the JSON loader's
// invariants.
func (s *ZScorePAT) UnmarshalBinary(data []byte) error {
	d := wire.NewDec(data)
	med := d.F64s()
	mad := d.F64s()
	if err := d.Close(); err != nil {
		return fmt.Errorf("outlier: decode zscore state: %w", err)
	}
	if len(med) == 0 || len(med) != len(mad) {
		return fmt.Errorf("outlier: zscore state %d medians / %d MADs", len(med), len(mad))
	}
	for t, m := range mad {
		if !(m > 0) {
			return fmt.Errorf("outlier: zscore MAD[%d] = %g not positive", t, m)
		}
	}
	s.med, s.mad = med, mad
	return nil
}

// AppendBinary appends the fitted mean and inverse covariance:
// f64s mean, f64s inv (row-major d*d, d implied by the mean length).
func (s *Mahalanobis) AppendBinary(b []byte) ([]byte, error) {
	di := len(s.mean)
	if di == 0 || len(s.inv) != di {
		return nil, fmt.Errorf("outlier: cannot serialize mahalanobis state dim %d with %d inverse rows",
			di, len(s.inv))
	}
	b = wire.AppendF64s(b, s.mean)
	flat := make([]float64, 0, di*di)
	for i, row := range s.inv {
		if len(row) != di {
			return nil, fmt.Errorf("outlier: mahalanobis inverse row %d has %d cols for dim %d",
				i, len(row), di)
		}
		flat = append(flat, row...)
	}
	return wire.AppendF64s(b, flat), nil
}

// UnmarshalBinary restores a fitted Mahalanobis scorer.
func (s *Mahalanobis) UnmarshalBinary(data []byte) error {
	d := wire.NewDec(data)
	mean := d.F64s()
	flat := d.F64s()
	if err := d.Close(); err != nil {
		return fmt.Errorf("outlier: decode mahalanobis state: %w", err)
	}
	di := len(mean)
	if di == 0 || len(flat) != di*di {
		return fmt.Errorf("outlier: mahalanobis state dim %d with %d inverse entries", di, len(flat))
	}
	inv := make([][]float64, di)
	for i := range inv {
		inv[i] = flat[i*di : (i+1)*di : (i+1)*di]
	}
	s.mean, s.inv = mean, inv
	return nil
}

// AppendBinary appends the neighbor count and memorized reference lot:
// u32 k, u32 rows, u32 cols, flat row-major f64s.
func (s *KNNOutlier) AppendBinary(b []byte) ([]byte, error) {
	if len(s.ref) == 0 {
		return nil, fmt.Errorf("outlier: cannot serialize knn state with empty reference")
	}
	if s.K < 1 || s.K > len(s.ref) {
		return nil, fmt.Errorf("outlier: cannot serialize knn state k=%d for %d reference devices",
			s.K, len(s.ref))
	}
	cols := len(s.ref[0])
	b = wire.AppendU32(b, uint32(s.K))
	b = wire.AppendU32(b, uint32(len(s.ref)))
	b = wire.AppendU32(b, uint32(cols))
	flat := make([]float64, 0, len(s.ref)*cols)
	for i, row := range s.ref {
		if len(row) != cols {
			return nil, fmt.Errorf("outlier: knn reference row %d has %d tests, row 0 has %d",
				i, len(row), cols)
		}
		flat = append(flat, row...)
	}
	return wire.AppendF64s(b, flat), nil
}

// UnmarshalBinary restores a fitted KNNOutlier.
func (s *KNNOutlier) UnmarshalBinary(data []byte) error {
	d := wire.NewDec(data)
	k := int(d.U32())
	rows := int(d.U32())
	cols := int(d.U32())
	flat := d.F64s()
	if err := d.Close(); err != nil {
		return fmt.Errorf("outlier: decode knn state: %w", err)
	}
	if rows == 0 || cols == 0 || len(flat) != rows*cols {
		return fmt.Errorf("outlier: knn state %dx%d with %d entries", rows, cols, len(flat))
	}
	if k < 1 || k > rows {
		return fmt.Errorf("outlier: knn state k=%d for %d reference devices", k, rows)
	}
	ref := make([][]float64, rows)
	for i := range ref {
		ref[i] = flat[i*cols : (i+1)*cols : (i+1)*cols]
	}
	s.K, s.ref = k, ref
	return nil
}
