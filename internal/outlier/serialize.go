package outlier

import (
	"encoding/json"
	"fmt"
)

// Scorer method names used in serialized artifacts (itr-model/v1).
const (
	MethodZScorePAT   = "zscore-pat"
	MethodMahalanobis = "mahalanobis"
	MethodKNN         = "knn"
)

// MethodOf returns the artifact method name of a scorer, or "" for scorers
// without a serialized form (e.g. PCAResidual, which is refit-only).
func MethodOf(s Scorer) string {
	switch s.(type) {
	case *ZScorePAT:
		return MethodZScorePAT
	case *Mahalanobis:
		return MethodMahalanobis
	case *KNNOutlier:
		return MethodKNN
	}
	return ""
}

// scorerEnvelope tags a serialized scorer with its method so LoadScorer can
// reconstruct the right implementation.
type scorerEnvelope struct {
	Method string          `json:"method"`
	State  json.RawMessage `json:"state"`
}

// SaveScorer serializes a fitted scorer (one of the three PAT screens) into
// a self-describing JSON envelope.
func SaveScorer(s Scorer) ([]byte, error) {
	method := MethodOf(s)
	if method == "" {
		return nil, fmt.Errorf("outlier: scorer %T has no serialized form", s)
	}
	state, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("outlier: encode %s: %w", method, err)
	}
	return json.Marshal(scorerEnvelope{Method: method, State: state})
}

// LoadScorer reconstructs a fitted scorer from a SaveScorer envelope.
func LoadScorer(data []byte) (Scorer, error) {
	var env scorerEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("outlier: decode scorer envelope: %w", err)
	}
	var s Scorer
	switch env.Method {
	case MethodZScorePAT:
		s = &ZScorePAT{}
	case MethodMahalanobis:
		s = &Mahalanobis{}
	case MethodKNN:
		s = &KNNOutlier{}
	default:
		return nil, fmt.Errorf("outlier: unknown scorer method %q", env.Method)
	}
	if err := json.Unmarshal(env.State, s); err != nil {
		return nil, fmt.Errorf("outlier: decode %s state: %w", env.Method, err)
	}
	return s, nil
}

type zscoreJSON struct {
	Med []float64 `json:"med"`
	MAD []float64 `json:"mad"`
}

// MarshalJSON serializes the fitted robust location/scale estimates.
func (s *ZScorePAT) MarshalJSON() ([]byte, error) {
	return json.Marshal(zscoreJSON{Med: s.med, MAD: s.mad})
}

// UnmarshalJSON restores a fitted ZScorePAT.
func (s *ZScorePAT) UnmarshalJSON(data []byte) error {
	var w zscoreJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if len(w.Med) == 0 || len(w.Med) != len(w.MAD) {
		return fmt.Errorf("outlier: zscore state %d medians / %d MADs", len(w.Med), len(w.MAD))
	}
	for t, m := range w.MAD {
		if !(m > 0) {
			return fmt.Errorf("outlier: zscore MAD[%d] = %g not positive", t, m)
		}
	}
	s.med, s.mad = w.Med, w.MAD
	return nil
}

type mahalanobisJSON struct {
	Mean []float64   `json:"mean"`
	Inv  [][]float64 `json:"inv"`
}

// MarshalJSON serializes the fitted mean and inverse covariance.
func (s *Mahalanobis) MarshalJSON() ([]byte, error) {
	return json.Marshal(mahalanobisJSON{Mean: s.mean, Inv: s.inv})
}

// UnmarshalJSON restores a fitted Mahalanobis scorer.
func (s *Mahalanobis) UnmarshalJSON(data []byte) error {
	var w mahalanobisJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	d := len(w.Mean)
	if d == 0 || len(w.Inv) != d {
		return fmt.Errorf("outlier: mahalanobis state dim %d with %d inverse rows", d, len(w.Inv))
	}
	for i, row := range w.Inv {
		if len(row) != d {
			return fmt.Errorf("outlier: mahalanobis inverse row %d has %d cols for dim %d", i, len(row), d)
		}
	}
	s.mean, s.inv = w.Mean, w.Inv
	return nil
}

type knnJSON struct {
	K   int         `json:"k"`
	Ref [][]float64 `json:"ref"`
}

// MarshalJSON serializes the neighbor count and memorized reference lot.
func (s *KNNOutlier) MarshalJSON() ([]byte, error) {
	return json.Marshal(knnJSON{K: s.K, Ref: s.ref})
}

// UnmarshalJSON restores a fitted KNNOutlier.
func (s *KNNOutlier) UnmarshalJSON(data []byte) error {
	var w knnJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if len(w.Ref) == 0 {
		return fmt.Errorf("outlier: knn state has empty reference")
	}
	if w.K < 1 || w.K > len(w.Ref) {
		return fmt.Errorf("outlier: knn state k=%d for %d reference devices", w.K, len(w.Ref))
	}
	d := len(w.Ref[0])
	for i, row := range w.Ref {
		if len(row) != d {
			return fmt.Errorf("outlier: knn reference row %d has %d tests, row 0 has %d", i, len(row), d)
		}
	}
	s.K, s.ref = w.K, w.Ref
	return nil
}
