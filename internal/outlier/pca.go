package outlier

import (
	"fmt"

	"repro/internal/ml"
)

// PCAResidual screens by the reconstruction error outside the principal
// subspace of the healthy population: defects that break the natural test
// correlation stick out of the subspace even when every individual reading
// is within its univariate limits. K is the retained component count
// (0 = keep components covering 90% of variance).
type PCAResidual struct {
	K   int
	pca *ml.PCA
}

// Fit learns the principal subspace of the reference lot.
func (s *PCAResidual) Fit(ref [][]float64) error {
	if len(ref) < 2 {
		return fmt.Errorf("outlier: PCA screen needs >= 2 reference devices")
	}
	d := len(ref[0])
	k := s.K
	if k <= 0 {
		// Auto-select: fit full rank, keep components to 90% variance.
		full, err := ml.FitPCA(ref, d)
		if err != nil {
			return err
		}
		ev := full.ExplainedVariance()
		cum := 0.0
		k = 1
		for i, v := range ev {
			cum += v
			if cum >= 0.9 {
				k = i + 1
				break
			}
		}
	}
	if k > d {
		k = d
	}
	pca, err := ml.FitPCA(ref, k)
	if err != nil {
		return err
	}
	s.pca = pca
	return nil
}

// Score returns the residual distance outside the healthy subspace.
func (s *PCAResidual) Score(x []float64) float64 {
	return s.pca.ReconstructionError(x)
}
