// Package outlier implements adaptive test and outlier screening on
// parametric test data: a correlated-measurement synthesizer with injected
// latent defects, classical part-average-testing (PAT) screens, Mahalanobis
// and k-NN outlier scores, and the escape-vs-overkill tradeoff analysis of
// experiment F3.
package outlier

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// LotConfig controls synthetic lot generation.
type LotConfig struct {
	Devices    int     // devices in the lot
	Tests      int     // parametric tests per device
	Factors    int     // latent process factors driving correlation
	DefectRate float64 // fraction of devices carrying a latent defect
	DefectMag  float64 // defect shift magnitude in sigma units
	DefectLoc  int     // number of tests a defect perturbs
	NoiseSigma float64 // per-test measurement noise
}

// DefaultLotConfig returns a realistic mid-size lot.
func DefaultLotConfig() LotConfig {
	return LotConfig{
		Devices: 2000, Tests: 12, Factors: 3,
		DefectRate: 0.02, DefectMag: 1.6, DefectLoc: 3,
		NoiseSigma: 0.3,
	}
}

// Lot is a synthesized wafer lot: per-device test measurements and the
// ground-truth defect labels the screen tries to recover.
type Lot struct {
	X         [][]float64
	Defective []bool
}

// Synthesize draws a lot: healthy devices follow a correlated multivariate
// normal (factor model X = L·z + noise); defective devices additionally
// shift a random subset of tests. Marginal defects (half the magnitude)
// make the screening problem realistically imperfect.
func Synthesize(cfg LotConfig, seed int64) *Lot {
	if cfg.Devices < 1 || cfg.Tests < 1 || cfg.Factors < 1 {
		panic(fmt.Sprintf("outlier: bad lot config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(seed))
	// Factor loadings.
	L := make([][]float64, cfg.Tests)
	for t := range L {
		L[t] = make([]float64, cfg.Factors)
		for f := range L[t] {
			L[t][f] = rng.NormFloat64() * 0.8
		}
	}
	lot := &Lot{X: make([][]float64, cfg.Devices), Defective: make([]bool, cfg.Devices)}
	z := make([]float64, cfg.Factors)
	for d := 0; d < cfg.Devices; d++ {
		for f := range z {
			z[f] = rng.NormFloat64()
		}
		row := make([]float64, cfg.Tests)
		for t := 0; t < cfg.Tests; t++ {
			v := 0.0
			for f := range z {
				v += L[t][f] * z[f]
			}
			row[t] = v + rng.NormFloat64()*cfg.NoiseSigma
		}
		if rng.Float64() < cfg.DefectRate {
			lot.Defective[d] = true
			mag := cfg.DefectMag
			if rng.Float64() < 0.5 {
				mag /= 2 // marginal defect: harder to catch
			}
			perm := rng.Perm(cfg.Tests)
			nloc := cfg.DefectLoc
			if nloc > cfg.Tests {
				nloc = cfg.Tests
			}
			for _, t := range perm[:nloc] {
				sign := 1.0
				if rng.Float64() < 0.5 {
					sign = -1
				}
				row[t] += sign * mag
			}
		}
		lot.X[d] = row
	}
	return lot
}

// Scorer assigns an outlier score (higher = more anomalous) after fitting a
// reference population.
//
// Concurrency contract: Score on every implementation in this package is a
// pure read of the fitted state, so one fitted scorer may serve any number
// of concurrent Score calls (the itrserve hot path) as long as no
// Fit/UnmarshalJSON runs at the same time.
type Scorer interface {
	Fit(ref [][]float64) error
	Score(x []float64) float64
}

// ZScorePAT is classical part-average testing: per-test robust z-scores
// (median / MAD), aggregated as the maximum across tests.
type ZScorePAT struct {
	med []float64
	mad []float64
}

// Fit estimates per-test robust location/scale.
func (s *ZScorePAT) Fit(ref [][]float64) error {
	if len(ref) == 0 {
		return fmt.Errorf("outlier: empty reference")
	}
	d := len(ref[0])
	s.med = make([]float64, d)
	s.mad = make([]float64, d)
	col := make([]float64, len(ref))
	for t := 0; t < d; t++ {
		for i := range ref {
			col[i] = ref[i][t]
		}
		sort.Float64s(col)
		s.med[t] = median(col)
		for i := range ref {
			col[i] = math.Abs(ref[i][t] - s.med[t])
		}
		sort.Float64s(col)
		s.mad[t] = median(col) * 1.4826 // normal-consistent MAD
		if s.mad[t] < 1e-9 {
			s.mad[t] = 1e-9
		}
	}
	return nil
}

// Score returns the max absolute robust z across tests.
func (s *ZScorePAT) Score(x []float64) float64 {
	worst := 0.0
	for t, v := range x {
		z := math.Abs(v-s.med[t]) / s.mad[t]
		if z > worst {
			worst = z
		}
	}
	return worst
}

func median(sorted []float64) float64 {
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// Mahalanobis scores by the Mahalanobis distance under the reference mean
// and covariance — the multivariate screen that exploits test correlation.
type Mahalanobis struct {
	mean []float64
	inv  [][]float64 // inverse covariance
}

// Fit estimates the mean and inverse covariance (ridge-stabilized).
func (s *Mahalanobis) Fit(ref [][]float64) error {
	n := len(ref)
	if n < 2 {
		return fmt.Errorf("outlier: need >= 2 reference devices")
	}
	d := len(ref[0])
	s.mean = make([]float64, d)
	for _, row := range ref {
		for t, v := range row {
			s.mean[t] += v
		}
	}
	for t := range s.mean {
		s.mean[t] /= float64(n)
	}
	cov := make([][]float64, d)
	for i := range cov {
		cov[i] = make([]float64, d)
	}
	for _, row := range ref {
		for i := 0; i < d; i++ {
			di := row[i] - s.mean[i]
			for j := i; j < d; j++ {
				cov[i][j] += di * (row[j] - s.mean[j])
			}
		}
	}
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			cov[i][j] /= float64(n - 1)
			cov[j][i] = cov[i][j]
		}
		cov[i][i] += 1e-6 // ridge for numerical safety
	}
	inv, err := invert(cov)
	if err != nil {
		return fmt.Errorf("outlier: covariance inversion: %w", err)
	}
	s.inv = inv
	return nil
}

// Score returns sqrt((x-μ)ᵀ Σ⁻¹ (x-μ)).
func (s *Mahalanobis) Score(x []float64) float64 {
	d := len(s.mean)
	diff := make([]float64, d)
	for i := range diff {
		diff[i] = x[i] - s.mean[i]
	}
	q := 0.0
	for i := 0; i < d; i++ {
		row := s.inv[i]
		for j := 0; j < d; j++ {
			q += diff[i] * row[j] * diff[j]
		}
	}
	if q < 0 {
		q = 0
	}
	return math.Sqrt(q)
}

// invert computes a matrix inverse by Gauss-Jordan with partial pivoting.
func invert(a [][]float64) ([][]float64, error) {
	n := len(a)
	aug := make([][]float64, n)
	for i := range aug {
		aug[i] = make([]float64, 2*n)
		copy(aug[i], a[i])
		aug[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(aug[r][col]) > math.Abs(aug[p][col]) {
				p = r
			}
		}
		if math.Abs(aug[p][col]) < 1e-12 {
			return nil, fmt.Errorf("singular matrix at column %d", col)
		}
		aug[col], aug[p] = aug[p], aug[col]
		piv := aug[col][col]
		for c := 0; c < 2*n; c++ {
			aug[col][c] /= piv
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := aug[r][col]
			if f == 0 {
				continue
			}
			for c := 0; c < 2*n; c++ {
				aug[r][c] -= f * aug[col][c]
			}
		}
	}
	inv := make([][]float64, n)
	for i := range inv {
		inv[i] = aug[i][n:]
	}
	return inv, nil
}

// KNNOutlier scores by the Euclidean distance to the k-th nearest reference
// device — the non-parametric ML screen of the survey.
type KNNOutlier struct {
	K   int
	ref [][]float64
}

// Fit memorizes the reference lot.
func (s *KNNOutlier) Fit(ref [][]float64) error {
	if len(ref) == 0 {
		return fmt.Errorf("outlier: empty reference")
	}
	if s.K < 1 {
		s.K = 5
	}
	if s.K > len(ref) {
		s.K = len(ref)
	}
	s.ref = ref
	return nil
}

// Score returns the distance to the k-th nearest reference point.
func (s *KNNOutlier) Score(x []float64) float64 {
	ds := make([]float64, len(s.ref))
	for i, r := range s.ref {
		sum := 0.0
		for j := range r {
			d := r[j] - x[j]
			sum += d * d
		}
		ds[i] = sum
	}
	sort.Float64s(ds)
	return math.Sqrt(ds[s.K-1])
}

// Point is one operating point of the screening tradeoff.
type Point struct {
	Threshold    float64
	EscapeRate   float64 // defective devices passed / defective total
	OverkillRate float64 // healthy devices rejected / healthy total
}

// Sweep scores every device and sweeps the decision threshold over the
// observed score range, returning the escape/overkill curve (figure F3).
// Degenerate lots stay well-defined: an empty input yields an empty curve,
// all-pass (or all-defective) lots report a zero escape (or overkill) rate
// at every threshold, and fully tied scores collapse to identical points.
func Sweep(scores []float64, defective []bool, nPoints int) []Point {
	if len(scores) != len(defective) {
		panic(fmt.Sprintf("outlier: %d scores for %d labels", len(scores), len(defective)))
	}
	if len(scores) == 0 {
		return nil
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	nDef, nOK := 0, 0
	for i, s := range scores {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
		if defective[i] {
			nDef++
		} else {
			nOK++
		}
	}
	if nPoints < 2 {
		nPoints = 2
	}
	out := make([]Point, 0, nPoints)
	for k := 0; k < nPoints; k++ {
		th := lo + (hi-lo)*float64(k)/float64(nPoints-1)
		esc, over := 0, 0
		for i, s := range scores {
			rejected := s > th
			if defective[i] && !rejected {
				esc++
			}
			if !defective[i] && rejected {
				over++
			}
		}
		p := Point{Threshold: th}
		if nDef > 0 {
			p.EscapeRate = float64(esc) / float64(nDef)
		}
		if nOK > 0 {
			p.OverkillRate = float64(over) / float64(nOK)
		}
		out = append(out, p)
	}
	return out
}

// AUC returns the area under the ROC curve of the scores against the
// defect labels (probability a random defective scores above a random
// healthy device; ties count half). Degenerate lots with only one class
// present (all-pass, all-defective, or empty) carry no ranking information
// and return the chance level 0.5 rather than NaN.
func AUC(scores []float64, defective []bool) float64 {
	var pos, neg []float64
	for i, s := range scores {
		if defective[i] {
			pos = append(pos, s)
		} else {
			neg = append(neg, s)
		}
	}
	if len(pos) == 0 || len(neg) == 0 {
		return 0.5
	}
	wins := 0.0
	for _, p := range pos {
		for _, n := range neg {
			switch {
			case p > n:
				wins++
			case p == n:
				wins += 0.5
			}
		}
	}
	return wins / float64(len(pos)*len(neg))
}

// ScoreAll applies a scorer to every device.
func ScoreAll(s Scorer, X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = s.Score(x)
	}
	return out
}
