package core

import (
	"fmt"
	"sort"

	"repro/internal/outlier"
)

// AdaptiveFlow is a calibrated outlier screen: a fitted scorer plus an
// operating threshold chosen for an overkill (yield-loss) budget.
type AdaptiveFlow struct {
	Scorer    outlier.Scorer
	Threshold float64
}

// CalibrateThreshold picks the smallest threshold whose overkill on the
// reference (healthy) population stays within budget: the
// budget-quantile of the reference score distribution.
func CalibrateThreshold(refScores []float64, overkillBudget float64) (float64, error) {
	if len(refScores) == 0 {
		return 0, fmt.Errorf("core: empty reference scores")
	}
	if overkillBudget < 0 || overkillBudget >= 1 {
		return 0, fmt.Errorf("core: overkill budget %g outside [0,1)", overkillBudget)
	}
	sorted := append([]float64(nil), refScores...)
	sort.Float64s(sorted)
	idx := int(float64(len(sorted)) * (1 - overkillBudget))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx], nil
}

// NewAdaptiveFlow fits the scorer on the reference lot and calibrates its
// threshold to the overkill budget.
func NewAdaptiveFlow(s outlier.Scorer, ref [][]float64, overkillBudget float64) (*AdaptiveFlow, error) {
	if err := s.Fit(ref); err != nil {
		return nil, err
	}
	th, err := CalibrateThreshold(outlier.ScoreAll(s, ref), overkillBudget)
	if err != nil {
		return nil, err
	}
	return &AdaptiveFlow{Scorer: s, Threshold: th}, nil
}

// Reject reports whether a device should be screened out.
func (f *AdaptiveFlow) Reject(x []float64) bool {
	return f.Scorer.Score(x) > f.Threshold
}

// ScreenResult summarizes screening a lot at the calibrated operating
// point.
type ScreenResult struct {
	Devices  int
	Rejected int
	Escapes  int // defective devices passed
	Overkill int // healthy devices rejected
}

// Screen applies the flow to a labeled lot and tallies the outcome.
func (f *AdaptiveFlow) Screen(lot *outlier.Lot) ScreenResult {
	res := ScreenResult{Devices: len(lot.X)}
	for i, x := range lot.X {
		rej := f.Reject(x)
		if rej {
			res.Rejected++
			if !lot.Defective[i] {
				res.Overkill++
			}
		} else if lot.Defective[i] {
			res.Escapes++
		}
	}
	return res
}
