package core

import (
	"fmt"
	"time"

	"repro/internal/hdc"
	"repro/internal/ml"
	"repro/internal/wafer"
)

// WaferResult reports one classifier's quality and cost on the wafer-map
// task (experiment T3).
type WaferResult struct {
	Name      string
	Accuracy  float64
	MacroF1   float64
	TrainTime time.Duration
	InferPer  time.Duration // per-map inference latency including encoding
	Confusion [][]int
}

// HDCWaferClassifier couples the spatial hypervector encoder with the
// associative-memory classifier.
type HDCWaferClassifier struct {
	Dim    int
	Epochs int
	enc    *wafer.Encoder
	cls    *hdc.Classifier
	// ErrHistory records retraining errors per epoch (experiment F5).
	ErrHistory []int
}

// NewHDCWaferClassifier returns an untrained HDC classifier.
func NewHDCWaferClassifier(dim, size, epochs int, seed int64) *HDCWaferClassifier {
	return &HDCWaferClassifier{
		Dim:    dim,
		Epochs: epochs,
		enc:    wafer.NewEncoder(dim, size, seed),
		cls:    hdc.NewClassifier(dim, int(wafer.NumClasses)),
	}
}

// Fit trains the prototypes with bundling plus perceptron retraining.
func (h *HDCWaferClassifier) Fit(d *wafer.Dataset) error {
	enc := h.enc.EncodeAll(d)
	if err := h.cls.Train(enc, d.Labels); err != nil {
		return err
	}
	h.ErrHistory = h.cls.Retrain(enc, d.Labels, h.Epochs)
	return nil
}

// Predict classifies one wafer map. It is safe for concurrent use on a
// fitted model (encoding and prototype lookup are both concurrent-reader
// safe), which is what lets itrserve share one model across handlers.
func (h *HDCWaferClassifier) Predict(m *wafer.Map) int {
	return h.cls.Predict(h.enc.Encode(m))
}

// EvaluateWaferClassifiers runs the full T3 model comparison: HDC against
// the classical baselines on identical train/test splits.
func EvaluateWaferClassifiers(train, test *wafer.Dataset, dim int, seed int64) ([]WaferResult, error) {
	var out []WaferResult

	// HDC.
	h := NewHDCWaferClassifier(dim, train.Maps[0].Size, 20, seed)
	t0 := time.Now()
	if err := h.Fit(train); err != nil {
		return nil, err
	}
	trainTime := time.Since(t0)
	pred := make([]int, len(test.Maps))
	t1 := time.Now()
	for i, m := range test.Maps {
		pred[i] = h.Predict(m)
	}
	infer := time.Since(t1)
	out = append(out, waferResult(fmt.Sprintf("HDC-d%d", dim), test.Labels, pred, trainTime, infer))

	// Classical models on the engineered features.
	Xtr := train.FeatureMatrix()
	Xte := test.FeatureMatrix()
	mlpCfg := ml.DefaultMLPConfig()
	mlpCfg.Epochs = 200
	mlpCfg.Seed = seed
	models := []struct {
		name string
		cls  ml.Classifier
	}{
		{"kNN-5", ml.NewKNNClassifier(5)},
		{"tree", ml.NewTreeClassifier(12)},
		{"forest", ml.NewForestClassifier(50, 12, seed)},
		{"mlp", ml.NewMLPClassifier(mlpCfg)},
	}
	for _, m := range models {
		t0 = time.Now()
		if err := m.cls.Fit(Xtr, train.Labels); err != nil {
			return nil, fmt.Errorf("core: wafer %s: %w", m.name, err)
		}
		trainTime = time.Since(t0)
		t1 = time.Now()
		// Inference cost includes feature extraction, mirroring the HDC
		// path which includes encoding.
		p := make([]int, len(test.Maps))
		for i, mp := range test.Maps {
			p[i] = m.cls.Predict(wafer.Features(mp))
		}
		infer = time.Since(t1)
		_ = Xte
		out = append(out, waferResult(m.name, test.Labels, p, trainTime, infer))
	}
	return out, nil
}

func waferResult(name string, labels, pred []int, train, infer time.Duration) WaferResult {
	per := time.Duration(0)
	if len(pred) > 0 {
		per = infer / time.Duration(len(pred))
	}
	return WaferResult{
		Name:      name,
		Accuracy:  ml.Accuracy(labels, pred),
		MacroF1:   ml.MacroF1(labels, pred, int(wafer.NumClasses)),
		TrainTime: train,
		InferPer:  per,
		Confusion: ml.ConfusionMatrix(labels, pred, int(wafer.NumClasses)),
	}
}
