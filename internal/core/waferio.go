package core

import (
	"encoding/json"
	"fmt"

	"repro/internal/hdc"
	"repro/internal/wafer"
)

// hdcWaferJSON is the wire form of a trained HDCWaferClassifier: the
// encoder as its deterministic rebuild recipe, the classifier as its full
// accumulator state. This is the payload of "wafer-hdc" itr-model/v1
// artifacts.
type hdcWaferJSON struct {
	Encoder    wafer.EncoderConfig `json:"encoder"`
	Epochs     int                 `json:"epochs"`
	ErrHistory []int               `json:"err_history,omitempty"`
	Classifier *hdc.Classifier     `json:"classifier"`
}

// MarshalJSON serializes the trained model.
func (h *HDCWaferClassifier) MarshalJSON() ([]byte, error) {
	if h.enc == nil || h.cls == nil {
		return nil, fmt.Errorf("core: cannot serialize unbuilt wafer classifier")
	}
	return json.Marshal(hdcWaferJSON{
		Encoder:    h.enc.Config(),
		Epochs:     h.Epochs,
		ErrHistory: h.ErrHistory,
		Classifier: h.cls,
	})
}

// UnmarshalJSON restores a trained model; its predictions are bit-identical
// to the classifier that was saved.
func (h *HDCWaferClassifier) UnmarshalJSON(data []byte) error {
	var w hdcWaferJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("core: decode wafer classifier: %w", err)
	}
	if w.Classifier == nil {
		return fmt.Errorf("core: wafer classifier payload missing classifier state")
	}
	if w.Classifier.Dim != w.Encoder.Dim {
		return fmt.Errorf("core: classifier dim %d != encoder dim %d",
			w.Classifier.Dim, w.Encoder.Dim)
	}
	enc, err := wafer.NewEncoderFromConfig(w.Encoder)
	if err != nil {
		return err
	}
	h.Dim = w.Encoder.Dim
	h.Epochs = w.Epochs
	h.ErrHistory = w.ErrHistory
	h.enc = enc
	h.cls = w.Classifier
	return nil
}

// GridSize returns the wafer grid edge the model was built for (incoming
// maps must match it).
func (h *HDCWaferClassifier) GridSize() int { return h.enc.Config().Size }
