package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/wafer"
)

// trainSmallWafer fits a small HDC wafer classifier for codec tests.
func trainSmallWafer(t testing.TB) (*HDCWaferClassifier, *wafer.Dataset) {
	t.Helper()
	cfg := wafer.DefaultConfig()
	cfg.Size = 16
	train := wafer.GenerateDataset(6, cfg, 3)
	cls := NewHDCWaferClassifier(512, cfg.Size, 5, 3)
	if err := cls.Fit(train); err != nil {
		t.Fatal(err)
	}
	test := wafer.GenerateDataset(4, cfg, 4)
	return cls, test
}

// TestWaferClassifierBinaryRoundTrip pins the v2 contract for the composed
// model: canonical bytes round-trip bit-identically and the reloaded model
// predicts exactly like the original.
func TestWaferClassifierBinaryRoundTrip(t *testing.T) {
	cls, test := trainSmallWafer(t)
	data, err := cls.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	loaded := &HDCWaferClassifier{}
	if err := loaded.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	again, err := loaded.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("re-encode differs (%d vs %d bytes)", len(data), len(again))
	}
	if loaded.Dim != cls.Dim || loaded.Epochs != cls.Epochs || loaded.GridSize() != cls.GridSize() {
		t.Fatalf("reloaded header dim=%d epochs=%d grid=%d", loaded.Dim, loaded.Epochs, loaded.GridSize())
	}
	for i, m := range test.Maps {
		if a, b := cls.Predict(m), loaded.Predict(m); a != b {
			t.Fatalf("map %d: reloaded Predict = %d, want %d", i, b, a)
		}
	}
}

// TestWaferClassifierBinaryMatchesJSON: the v1 JSON form and the v2 binary
// form describe the same trained state.
func TestWaferClassifierBinaryMatchesJSON(t *testing.T) {
	cls, test := trainSmallWafer(t)
	jsonData, err := json.Marshal(cls)
	if err != nil {
		t.Fatal(err)
	}
	binData, err := cls.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, fromBin := &HDCWaferClassifier{}, &HDCWaferClassifier{}
	if err := json.Unmarshal(jsonData, fromJSON); err != nil {
		t.Fatal(err)
	}
	if err := fromBin.UnmarshalBinary(binData); err != nil {
		t.Fatal(err)
	}
	for i, m := range test.Maps {
		if a, b := fromJSON.Predict(m), fromBin.Predict(m); a != b {
			t.Fatalf("map %d: json Predict %d vs binary %d", i, a, b)
		}
	}
}

func TestWaferClassifierBinaryValidation(t *testing.T) {
	if _, err := (&HDCWaferClassifier{}).MarshalBinary(); err == nil {
		t.Error("unbuilt classifier serialized")
	}
	cls, _ := trainSmallWafer(t)
	data, err := cls.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut += 13 {
		if err := new(HDCWaferClassifier).UnmarshalBinary(data[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if err := new(HDCWaferClassifier).UnmarshalBinary(append(append([]byte(nil), data...), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
}
