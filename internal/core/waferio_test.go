package core

import (
	"encoding/json"
	"testing"

	"repro/internal/wafer"
)

// TestHDCWaferSaveLoadRoundTrip pins the artifact contract end to end: a
// serialized-and-reloaded wafer classifier predicts bit-identically to the
// original on every test map (the -export/-import path of itrwafer and the
// registry's install path both ride on it).
func TestHDCWaferSaveLoadRoundTrip(t *testing.T) {
	cfg := wafer.DefaultConfig()
	cfg.Size = 24
	train := wafer.GenerateDataset(6, cfg, 2)
	test := wafer.GenerateDataset(3, cfg, 3)

	orig := NewHDCWaferClassifier(1024, cfg.Size, 10, 2)
	if err := orig.Fit(train); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	loaded := &HDCWaferClassifier{}
	if err := json.Unmarshal(data, loaded); err != nil {
		t.Fatal(err)
	}
	if loaded.Dim != orig.Dim || loaded.GridSize() != cfg.Size {
		t.Fatalf("reloaded header dim=%d grid=%d", loaded.Dim, loaded.GridSize())
	}
	for i, m := range test.Maps {
		if a, b := orig.Predict(m), loaded.Predict(m); a != b {
			t.Fatalf("map %d: reloaded Predict = %d, want %d (must be bit-identical)", i, b, a)
		}
	}
	// A second round trip is byte-stable (no hidden state drift).
	data2, err := json.Marshal(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Error("second serialization differs from first")
	}
}

func TestHDCWaferUnmarshalValidation(t *testing.T) {
	if err := json.Unmarshal([]byte(`{"encoder":{"dim":512,"size":16,"seed":1},"epochs":5}`),
		&HDCWaferClassifier{}); err == nil {
		t.Error("missing classifier state must fail")
	}
	bad := `{"encoder":{"dim":512,"size":16,"seed":1},"epochs":5,` +
		`"classifier":{"dim":256,"n_classes":1,"mode":0,"counts":[[]],"adds":[0]}}`
	if err := json.Unmarshal([]byte(bad), &HDCWaferClassifier{}); err == nil {
		t.Error("encoder/classifier dim mismatch must fail")
	}
	if err := (&HDCWaferClassifier{}).UnmarshalJSON([]byte(`{`)); err == nil {
		t.Error("truncated JSON must fail")
	}
	if _, err := json.Marshal(&HDCWaferClassifier{}); err == nil {
		t.Error("serializing an unbuilt classifier must fail")
	}
}
