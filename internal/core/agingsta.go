package core

import (
	"fmt"
	"math/rand"

	"repro/internal/aging"
	"repro/internal/circuit"
	"repro/internal/liberty"
	"repro/internal/logic"
	"repro/internal/ml"
	"repro/internal/sim"
	"repro/internal/sta"
)

// AgingSTAConfig describes the mission scenario for aging-aware timing.
type AgingSTAConfig struct {
	Years    float64
	TempK    float64
	ClockHz  float64
	Patterns int // workload sample length for activity profiling
	Seed     int64
	Model    aging.Model
	// MLTrainPoints is the number of (stress → degradation) pairs sampled
	// to fit the learned aging estimator (default 400).
	MLTrainPoints int
}

// DefaultAgingSTAConfig returns a 10-year, 350 K, 1 GHz mission.
func DefaultAgingSTAConfig() AgingSTAConfig {
	return AgingSTAConfig{
		Years: 10, TempK: 350, ClockHz: 1e9,
		Patterns: 512, Seed: 1, Model: aging.Default(),
		MLTrainPoints: 400,
	}
}

// AgingSTAReport compares guardbanding strategies (experiment T6).
type AgingSTAReport struct {
	Circuit       string
	FreshDelay    float64 // seconds, nominal STA
	WorstCase     float64 // uniform worst-case-aged STA
	WorkloadAware float64 // per-gate workload-derated STA (exact model)
	MLPredicted   float64 // per-gate derates from the learned estimator
	// SavingsFrac is the share of the worst-case margin recovered by
	// workload awareness; MLSavings the same with the learned estimator.
	SavingsFrac float64
	MLSavings   float64
	// MLMAPE is the learned estimator's error on held-out stress points.
	MLMAPE float64
	// MeanDuty/MeanActivity summarize the profiled workload.
	MeanDuty     float64
	MeanActivity float64
}

// WorkloadProfile estimates each gate's signal probability (fraction of
// time the output is high) and toggle activity from a random workload
// sample.
func WorkloadProfile(n *circuit.Netlist, patterns, seed int64) (probHigh, activity []float64, err error) {
	ps, err := sim.New(n)
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	p := logic.NewPatternSet(len(n.PIs), int(patterns))
	p.RandFill(rng.Uint64)
	ones := make([]int, len(n.Gates))
	pi := make([]logic.Word, len(n.PIs))
	for w := 0; w < p.Words(); w++ {
		for i := range pi {
			pi[i] = p.Bits[i][w]
		}
		vals := ps.Block(pi)
		mask := p.TailMask(w)
		for g, v := range vals {
			ones[g] += logic.PopCount(v & mask)
		}
	}
	probHigh = make([]float64, len(n.Gates))
	for g := range probHigh {
		probHigh[g] = float64(ones[g]) / float64(p.N)
	}
	es, err := sim.NewEvent(n)
	if err != nil {
		return nil, nil, err
	}
	seq := make([][]bool, p.N)
	for k := 0; k < p.N; k++ {
		seq[k] = p.Pattern(k)
	}
	activity = es.ActivityProfile(seq)
	for g, a := range activity {
		if a > 1 {
			activity[g] = 1
		}
		_ = a
	}
	return probHigh, activity, nil
}

// AgingAwareSTA runs the full T6 comparison on one netlist: fresh timing,
// worst-case aged timing, workload-aware aged timing using the exact aging
// model, and workload-aware timing using a learned (forest) aging
// estimator. The per-gate NBTI duty proxy is the probability the gate
// output sits low (PMOS under negative bias).
func AgingAwareSTA(n *circuit.Netlist, lib *liberty.Library, cfg AgingSTAConfig) (*AgingSTAReport, error) {
	if cfg.Patterns == 0 {
		cfg = DefaultAgingSTAConfig()
	}
	an, err := sta.New(n, lib)
	if err != nil {
		return nil, err
	}
	fresh, err := an.Run()
	if err != nil {
		return nil, err
	}

	probHigh, activity, err := WorkloadProfile(n, int64(cfg.Patterns), cfg.Seed)
	if err != nil {
		return nil, err
	}

	rep := &AgingSTAReport{Circuit: n.Name, FreshDelay: fresh.WCDelay}

	// Worst case: every gate at duty=1, activity=1.
	wcFactor := cfg.Model.Degradation(aging.WorstCase(cfg.Years, cfg.TempK, cfg.ClockHz))
	an.SetUniformDerate(wcFactor)
	wc, err := an.Run()
	if err != nil {
		return nil, err
	}
	rep.WorstCase = wc.WCDelay

	// Workload aware, exact model.
	stressOf := func(g int) aging.Stress {
		return aging.Stress{
			Years: cfg.Years, TempK: cfg.TempK, ClockHz: cfg.ClockHz,
			Duty:     1 - probHigh[g],
			Activity: clamp01(activity[g]),
		}
	}
	derates := make([]float64, len(n.Gates))
	var sumDuty, sumAct float64
	for g := range derates {
		s := stressOf(g)
		derates[g] = cfg.Model.Degradation(s)
		sumDuty += s.Duty
		sumAct += s.Activity
	}
	rep.MeanDuty = sumDuty / float64(len(derates))
	rep.MeanActivity = sumAct / float64(len(derates))
	an.Derates = derates
	wa, err := an.Run()
	if err != nil {
		return nil, err
	}
	rep.WorkloadAware = wa.WCDelay

	// Learned estimator: forest fit on sampled stress → degradation pairs.
	if cfg.MLTrainPoints < 50 {
		cfg.MLTrainPoints = 400
	}
	est, mape, err := trainAgingEstimator(cfg)
	if err != nil {
		return nil, err
	}
	rep.MLMAPE = mape
	mlDer := make([]float64, len(n.Gates))
	for g := range mlDer {
		s := stressOf(g)
		mlDer[g] = est.Predict([]float64{s.Duty, s.Activity, s.Years, s.TempK, s.ClockHz / 1e9})
		if mlDer[g] < 1 {
			mlDer[g] = 1
		}
	}
	an.Derates = mlDer
	mlT, err := an.Run()
	if err != nil {
		return nil, err
	}
	rep.MLPredicted = mlT.WCDelay

	margin := rep.WorstCase - rep.FreshDelay
	if margin > 0 {
		rep.SavingsFrac = (rep.WorstCase - rep.WorkloadAware) / margin
		rep.MLSavings = (rep.WorstCase - rep.MLPredicted) / margin
	}
	return rep, nil
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// trainAgingEstimator fits a forest mapping (duty, activity, years, tempK,
// clockGHz) to the exact model's degradation factor and reports held-out
// MAPE — the "learned aging model" of experiment T2/T6.
func trainAgingEstimator(cfg AgingSTAConfig) (ml.Regressor, float64, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 101))
	n := cfg.MLTrainPoints
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := aging.Stress{
			Years:    rng.Float64() * 15,
			TempK:    250 + rng.Float64()*150,
			Duty:     rng.Float64(),
			Activity: rng.Float64(),
			ClockHz:  (0.5 + rng.Float64()*3.5) * 1e9,
		}
		X[i] = []float64{s.Duty, s.Activity, s.Years, s.TempK, s.ClockHz / 1e9}
		y[i] = cfg.Model.Degradation(s)
	}
	split := n * 4 / 5
	model := ml.NewForestRegressor(40, 12, cfg.Seed)
	if err := model.Fit(X[:split], y[:split]); err != nil {
		return nil, 0, fmt.Errorf("core: aging estimator: %w", err)
	}
	pred := ml.PredictAll(model, X[split:])
	return model, ml.MAPE(y[split:], pred), nil
}

// DegradationCurve tabulates the exact model's delay factor over mission
// time for a fixed workload — the T2 table/figure series.
func DegradationCurve(m aging.Model, s aging.Stress, years []float64) []struct {
	Years  float64
	DVth   float64
	Factor float64
} {
	out := make([]struct {
		Years  float64
		DVth   float64
		Factor float64
	}, len(years))
	for i, yr := range years {
		sy := s
		sy.Years = yr
		out[i].Years = yr
		out[i].DVth = m.DeltaVth(sy)
		out[i].Factor = m.DelayFactor(out[i].DVth)
	}
	return out
}
