package core

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/aging"
	"repro/internal/atpg"
	"repro/internal/circuit"
	"repro/internal/diagnosis"
	"repro/internal/liberty"
	"repro/internal/outlier"
	"repro/internal/spice"
	"repro/internal/wafer"
)

// Shared small arc corpus (spice runs are the expensive part).
var (
	arcOnce sync.Once
	arcData *ArcData
	arcErr  error
)

func smallArcData(t testing.TB) *ArcData {
	t.Helper()
	arcOnce.Do(func() {
		cells := liberty.BaseCells()[:6] // INV, BUF, NAND2, NAND3, NOR2, NOR3
		arcData, arcErr = BuildArcData(cells, spice.Default(300),
			[]float64{0, 0.04, 0.08}, liberty.CoarseGrid())
	})
	if arcErr != nil {
		t.Fatal(arcErr)
	}
	return arcData
}

func TestBuildArcDataShape(t *testing.T) {
	d := smallArcData(t)
	// 6 cells: INV(1) BUF(1) NAND2(2) NAND3(3) NOR2(2) NOR3(3) pins = 12
	// arcs = 12 pins * 2 edges, each * 3 dVth * 9 grid points.
	wantRuns := 12 * 2 * 3 * 9
	if d.Runs != wantRuns || len(d.Samples) != wantRuns {
		t.Fatalf("runs = %d samples = %d, want %d", d.Runs, len(d.Samples), wantRuns)
	}
	for _, s := range d.Samples {
		if len(s.Features) != NumArcFeatures {
			t.Fatalf("feature length %d, want %d", len(s.Features), NumArcFeatures)
		}
		if s.Delay <= 0 {
			t.Fatalf("nonpositive delay for %s", s.Cell)
		}
	}
	if d.SpiceTime <= 0 {
		t.Error("spice time not recorded")
	}
}

func TestSurrogateAccuracyAndSpeedup(t *testing.T) {
	d := smallArcData(t)
	for _, mz := range ModelZoo(1) {
		if mz.Name == "linear" {
			continue // plain linear is knowingly weak; covered below
		}
		_, rep, err := TrainSurrogate(mz.Name, mz.New(), d, 0.7, 1)
		if err != nil {
			t.Fatalf("%s: %v", mz.Name, err)
		}
		if rep.MAPE > 0.25 {
			t.Errorf("%s: MAPE %.3f too high", mz.Name, rep.MAPE)
		}
		// kNN keeps the whole corpus and pays a scan per query; everything
		// else must beat SPICE by well over an order of magnitude.
		minSpeedup := 10.0
		if mz.Name == "knn5" {
			minSpeedup = 2
		}
		if rep.Speedup < minSpeedup {
			t.Errorf("%s: speedup %.1f, expected > %.0f over transient sim", mz.Name, rep.Speedup, minSpeedup)
		}
	}
}

func TestNonlinearBeatsLinearSurrogate(t *testing.T) {
	d := smallArcData(t)
	_, lin, err := TrainSurrogate("linear", ModelZoo(1)[0].New(), d, 0.7, 1)
	if err != nil {
		t.Fatal(err)
	}
	zoo := ModelZoo(1)
	var forestRep *SurrogateReport
	for _, mz := range zoo {
		if mz.Name == "forest" {
			_, forestRep, err = TrainSurrogate(mz.Name, mz.New(), d, 0.7, 1)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	if forestRep.MAPE >= lin.MAPE {
		t.Errorf("forest MAPE %.3f not below linear %.3f", forestRep.MAPE, lin.MAPE)
	}
}

func TestSurrogatePredictScales(t *testing.T) {
	d := smallArcData(t)
	sur, _, err := TrainSurrogate("forest", ModelZoo(1)[3].New(), d, 0.8, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := d.Samples[0]
	pred := sur.Predict(s.Features)
	if pred <= 0 || pred > 1e-9 {
		t.Errorf("predicted delay %g s implausible", pred)
	}
}

func TestTrainSurrogateValidation(t *testing.T) {
	d := &ArcData{}
	if _, _, err := TrainSurrogate("x", ModelZoo(1)[0].New(), d, 0.7, 1); err == nil {
		t.Error("empty corpus must fail")
	}
	d2 := smallArcData(t)
	if _, _, err := TrainSurrogate("x", ModelZoo(1)[0].New(), d2, 1.0, 1); err == nil {
		t.Error("train fraction 1.0 must fail")
	}
}

func TestWaferClassifiers(t *testing.T) {
	cfg := wafer.DefaultConfig()
	cfg.Size = 32
	train := wafer.GenerateDataset(20, cfg, 1)
	test := wafer.GenerateDataset(8, cfg, 2)
	results, err := EvaluateWaferClassifiers(train, test, 2048, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Accuracy < 0.5 {
			t.Errorf("%s accuracy %.3f below sanity floor", r.Name, r.Accuracy)
		}
		if r.MacroF1 <= 0 {
			t.Errorf("%s macro F1 = %f", r.Name, r.MacroF1)
		}
	}
	// HDC must be competitive (within 20 points of the best baseline).
	best := 0.0
	for _, r := range results[1:] {
		if r.Accuracy > best {
			best = r.Accuracy
		}
	}
	if results[0].Accuracy < best-0.2 {
		t.Errorf("HDC accuracy %.3f far below best baseline %.3f", results[0].Accuracy, best)
	}
}

func TestHDCRetrainingHistoryRecorded(t *testing.T) {
	cfg := wafer.DefaultConfig()
	cfg.Size = 32
	train := wafer.GenerateDataset(10, cfg, 3)
	h := NewHDCWaferClassifier(1024, 32, 10, 1)
	if err := h.Fit(train); err != nil {
		t.Fatal(err)
	}
	if len(h.ErrHistory) == 0 {
		t.Fatal("no retraining history")
	}
	if h.ErrHistory[len(h.ErrHistory)-1] > h.ErrHistory[0] {
		t.Error("retraining errors increased")
	}
}

// sharedLib for aging STA (coarse grid for speed).
var (
	libOnce sync.Once
	aLib    *liberty.Library
	aLibErr error
)

func agingLib(t testing.TB) *liberty.Library {
	t.Helper()
	libOnce.Do(func() {
		aLib, aLibErr = liberty.Characterize("t300", liberty.AllCells(),
			spice.Default(300), liberty.CoarseGrid())
	})
	if aLibErr != nil {
		t.Fatal(aLibErr)
	}
	return aLib
}

func TestAgingAwareSTA(t *testing.T) {
	n := circuit.RippleAdder(8)
	rep, err := AgingAwareSTA(n, agingLib(t), DefaultAgingSTAConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !(rep.FreshDelay < rep.WorkloadAware && rep.WorkloadAware < rep.WorstCase) {
		t.Errorf("ordering violated: fresh %g workload %g worst %g",
			rep.FreshDelay, rep.WorkloadAware, rep.WorstCase)
	}
	if rep.SavingsFrac <= 0 || rep.SavingsFrac > 1 {
		t.Errorf("savings fraction = %f", rep.SavingsFrac)
	}
	if rep.MLMAPE > 0.05 {
		t.Errorf("learned aging estimator MAPE = %f", rep.MLMAPE)
	}
	// The ML-predicted guardband must land near the exact workload-aware
	// one (within 5% of the fresh delay).
	diff := rep.MLPredicted - rep.WorkloadAware
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.05*rep.FreshDelay {
		t.Errorf("ML guardband %g far from exact %g", rep.MLPredicted, rep.WorkloadAware)
	}
}

func TestWorkloadProfileRanges(t *testing.T) {
	n := circuit.MustC17()
	probHigh, activity, err := WorkloadProfile(n, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	for g := range probHigh {
		if probHigh[g] < 0 || probHigh[g] > 1 {
			t.Errorf("probHigh[%d] = %f", g, probHigh[g])
		}
		if activity[g] < 0 {
			t.Errorf("activity[%d] = %f", g, activity[g])
		}
	}
}

func TestDegradationCurveMonotone(t *testing.T) {
	cfg := DefaultAgingSTAConfig()
	stress := aging.Stress{TempK: 350, Duty: 0.5, Activity: 0.2, ClockHz: 1e9}
	curve := DegradationCurve(cfg.Model, stress, []float64{0, 1, 2, 5, 10})
	prev := 0.0
	for i, pt := range curve {
		if pt.DVth < prev {
			t.Fatalf("ΔVth decreased at point %d", i)
		}
		prev = pt.DVth
		if pt.Factor < 1 {
			t.Errorf("factor below 1 at %f years", pt.Years)
		}
	}
}

func TestDiagnosisMLScorerImproves(t *testing.T) {
	n := circuit.ArrayMultiplier(4)
	res, err := atpg.Run(n, atpg.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	d, err := diagnosis.New(n, res.Patterns)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	var trainSample, evalSample []int
	for i := range d.Faults {
		if d.Dict[i].FailBits() == 0 {
			continue
		}
		if i%3 == 0 {
			trainSample = append(trainSample, i)
		} else if len(evalSample) < 60 {
			evalSample = append(evalSample, i)
		}
	}
	scorer, err := TrainDiagnosisScorer(d, res.Patterns, trainSample[:40], 0.15, 1)
	if err != nil {
		t.Fatal(err)
	}
	noise := 0.15
	base, err := d.Evaluate(res.Patterns, evalSample, noise, rng.Float64, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng2 := rand.New(rand.NewSource(5))
	mlAcc, err := d.Evaluate(res.Patterns, evalSample, noise, rng2.Float64, scorer)
	if err != nil {
		t.Fatal(err)
	}
	if mlAcc.Top5Rate() < base.Top5Rate()-0.1 {
		t.Errorf("ML ranking top-5 %.3f clearly below baseline %.3f",
			mlAcc.Top5Rate(), base.Top5Rate())
	}
	if mlAcc.Top1Rate() <= 0.2 {
		t.Errorf("ML top-1 rate = %f", mlAcc.Top1Rate())
	}
}

func TestAdaptiveFlow(t *testing.T) {
	lot := outlier.Synthesize(outlier.DefaultLotConfig(), 3)
	var ref [][]float64
	for i, d := range lot.Defective {
		if !d {
			ref = append(ref, lot.X[i])
		}
	}
	flow, err := NewAdaptiveFlow(&outlier.Mahalanobis{}, ref, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	res := flow.Screen(lot)
	if res.Devices != len(lot.X) {
		t.Error("device count wrong")
	}
	healthy := 0
	for _, d := range lot.Defective {
		if !d {
			healthy++
		}
	}
	overkillRate := float64(res.Overkill) / float64(healthy)
	if overkillRate > 0.05 {
		t.Errorf("overkill %.3f blew the 2%% budget (tolerance 5%%)", overkillRate)
	}
	// It must catch a nontrivial share of defects.
	defects := len(lot.X) - healthy
	caught := defects - res.Escapes
	if float64(caught)/float64(defects) < 0.4 {
		t.Errorf("caught only %d of %d defects", caught, defects)
	}
}

func TestCalibrateThresholdValidation(t *testing.T) {
	if _, err := CalibrateThreshold(nil, 0.05); err == nil {
		t.Error("empty scores must fail")
	}
	if _, err := CalibrateThreshold([]float64{1}, 1.5); err == nil {
		t.Error("bad budget must fail")
	}
	th, err := CalibrateThreshold([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if th != 10 {
		t.Errorf("threshold = %f, want 10 (90th percentile index)", th)
	}
}
