package core

import (
	"fmt"

	"repro/internal/hdc"
	"repro/internal/wafer"
	"repro/internal/wire"
)

// Canonical binary form of a trained HDCWaferClassifier, the payload of
// "wafer-hdc" itr-model/v2 artifacts:
//
//	encoder config (u32 dim, u32 size, i64 seed — the rebuild recipe)
//	u32  epochs
//	i64s err_history
//	bytes classifier (length-prefixed hdc.Classifier canonical section)
//
// The classifier rides in its own length-prefixed section so its codec can
// evolve without shifting the outer layout.

// AppendBinary appends the canonical binary encoding to b.
func (h *HDCWaferClassifier) AppendBinary(b []byte) ([]byte, error) {
	if h.enc == nil || h.cls == nil {
		return nil, fmt.Errorf("core: cannot serialize unbuilt wafer classifier")
	}
	if h.Epochs < 0 {
		return nil, fmt.Errorf("core: cannot serialize wafer classifier with %d epochs", h.Epochs)
	}
	b, err := h.enc.Config().AppendBinary(b)
	if err != nil {
		return nil, err
	}
	b = wire.AppendU32(b, uint32(h.Epochs))
	hist := make([]int64, len(h.ErrHistory))
	for i, e := range h.ErrHistory {
		hist[i] = int64(e)
	}
	b = wire.AppendI64s(b, hist)
	cls, err := h.cls.AppendBinary(nil)
	if err != nil {
		return nil, err
	}
	return wire.AppendBytes(b, cls), nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (h *HDCWaferClassifier) MarshalBinary() ([]byte, error) { return h.AppendBinary(nil) }

// UnmarshalBinary restores a trained model saved by AppendBinary; its
// predictions are bit-identical to the classifier that was saved, and it
// can keep retraining (the accumulators are the complete state).
func (h *HDCWaferClassifier) UnmarshalBinary(data []byte) error {
	d := wire.NewDec(data)
	cfg := wafer.EncoderConfig{Dim: int(d.U32()), Size: int(d.U32()), Seed: d.I64()}
	epochs := int(d.U32())
	hist := d.I64s()
	clsBytes := d.Bytes()
	if err := d.Close(); err != nil {
		return fmt.Errorf("core: decode wafer classifier: %w", err)
	}
	cls := &hdc.Classifier{}
	if err := cls.UnmarshalBinary(clsBytes); err != nil {
		return fmt.Errorf("core: decode wafer classifier: %w", err)
	}
	if cls.Dim != cfg.Dim {
		return fmt.Errorf("core: classifier dim %d != encoder dim %d", cls.Dim, cfg.Dim)
	}
	enc, err := wafer.NewEncoderFromConfig(cfg)
	if err != nil {
		return err
	}
	var errHistory []int
	if len(hist) > 0 {
		errHistory = make([]int, len(hist))
		for i, e := range hist {
			errHistory[i] = int(e)
		}
	}
	h.Dim = cfg.Dim
	h.Epochs = epochs
	h.ErrHistory = errHistory
	h.enc = enc
	h.cls = cls
	return nil
}
