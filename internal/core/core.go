// Package core is the public face of the toolkit: it composes the machine-
// learning substrate (internal/ml, internal/hdc) with the test and
// reliability substrates (spice, liberty, aging, sta, fault, atpg,
// diagnosis, outlier, wafer) into the four "intelligent methods" the
// DATE 2022 survey covers:
//
//   - Surrogate — ML-accelerated standard-cell characterization (T1)
//   - WaferClassifiers — brain-inspired wafer-map classification (T3/F1/F5)
//   - AgingAwareSTA — workload-aware aging guardbands (T2/T6)
//   - MLScorer — learned fault-diagnosis candidate ranking (T5)
//   - AdaptiveFlow — ML outlier screening operating points (F3)
package core
