package core

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/liberty"
	"repro/internal/ml"
	"repro/internal/spice"
)

// ArcSample is one ground-truth characterization point: the electrical
// query (slew, load, ΔVth) plus the structural descriptor of the cell arc,
// and the transient-simulated delay.
type ArcSample struct {
	Cell     string
	Pin      int
	InRise   bool
	Features []float64
	Delay    float64 // seconds (SPICE ground truth)
}

// ArcData is the full characterization corpus with cost accounting.
type ArcData struct {
	Samples   []ArcSample
	SpiceTime time.Duration // wall time spent producing the ground truth
	Runs      int
}

// NumArcFeatures is the feature dimensionality of ArcSample.Features:
// slew, load, ΔVth, inRise flag, plus the structural descriptor.
const NumArcFeatures = 4 + spice.NumStructuralFeatures

// BuildArcData measures every (cell, pin, edge, slew, load, ΔVth) point
// with the transistor-level simulator. This is the expensive ground truth a
// surrogate replaces; the recorded wall time is the baseline of the T1
// speedup figure.
func BuildArcData(cells []*spice.Cell, base spice.Params, dVths []float64, grid liberty.Grid) (*ArcData, error) {
	data := &ArcData{}
	start := time.Now()
	for _, c := range cells {
		for pin := 0; pin < c.NumInputs; pin++ {
			side, ok := spice.SensitizingSideInputs(c, pin)
			if !ok {
				return nil, fmt.Errorf("core: cell %s pin %d not sensitizable", c.Name, pin)
			}
			sf := c.StructuralFeatures(pin)
			for _, inRise := range []bool{true, false} {
				for _, dv := range dVths {
					p := base
					p.DVthN += dv
					p.DVthP += dv
					for _, slew := range grid.Slews {
						for _, load := range grid.Loads {
							m, err := spice.Simulate(c, p, spice.Arc{
								Pin: pin, RiseIn: inRise, InSlew: slew,
								LoadCap: load, SideInputs: side,
							})
							if err != nil {
								return nil, fmt.Errorf("core: %s: %w", c.Name, err)
							}
							data.Runs++
							feat := make([]float64, 0, NumArcFeatures)
							rise := 0.0
							if inRise {
								rise = 1
							}
							// Scale to comfortable numeric ranges: ps, fF, mV.
							feat = append(feat, slew*1e12, load*1e15, dv*1e3, rise)
							feat = append(feat, sf...)
							data.Samples = append(data.Samples, ArcSample{
								Cell: c.Name, Pin: pin, InRise: inRise,
								Features: feat, Delay: m.Delay,
							})
						}
					}
				}
			}
		}
	}
	data.SpiceTime = time.Since(start)
	return data, nil
}

// Surrogate is a trained delay predictor standing in for SPICE
// characterization.
type Surrogate struct {
	Name  string
	Model ml.Regressor
}

// Predict returns the delay estimate in seconds for an arc feature vector.
func (s *Surrogate) Predict(features []float64) float64 {
	// Model is trained on picosecond targets for conditioning.
	return s.Model.Predict(features) * 1e-12
}

// SurrogateReport evaluates one model on held-out characterization points.
type SurrogateReport struct {
	Name       string
	MAPE       float64 // fraction
	RMSE       float64 // seconds
	R2         float64
	TrainTime  time.Duration
	PredictPer time.Duration // per-point inference latency
	SpicePer   time.Duration // per-point transient latency (ground truth)
	Speedup    float64       // SpicePer / PredictPer
	TrainPts   int
	TestPts    int
}

// ModelZoo returns the standard surrogate model constructors of experiment
// T1 in a deterministic order.
func ModelZoo(seed int64) []struct {
	Name string
	New  func() ml.Regressor
} {
	mlpCfg := ml.DefaultMLPConfig()
	mlpCfg.Epochs = 150
	mlpCfg.Seed = seed
	return []struct {
		Name string
		New  func() ml.Regressor
	}{
		{"linear", func() ml.Regressor { return ml.NewRidge(1e-6) }},
		{"ridge-poly2", func() ml.Regressor { return &polyRidge{inner: ml.NewRidge(1e-3)} }},
		{"knn5", func() ml.Regressor { return &scaledKNN{inner: &ml.KNNRegressor{K: 5, Weighted: true}} }},
		{"forest", func() ml.Regressor { return ml.NewForestRegressor(40, 12, seed) }},
		{"gbt", func() ml.Regressor { return ml.NewGBTRegressor(150, 4, 0.1, seed) }},
		{"mlp", func() ml.Regressor { return ml.NewMLPRegressor(mlpCfg) }},
	}
}

// scaledKNN standardizes features before the distance computation —
// essential here because slew (ps), load (fF) and the structural
// descriptors live on very different scales.
type scaledKNN struct {
	inner  *ml.KNNRegressor
	scaler *ml.Scaler
}

func (s *scaledKNN) Fit(X [][]float64, y []float64) error {
	s.scaler = ml.FitScaler(X)
	return s.inner.Fit(s.scaler.TransformAll(X), y)
}

func (s *scaledKNN) Predict(x []float64) float64 {
	return s.inner.Predict(s.scaler.Transform(x))
}

// polyRidge wraps ridge regression with a degree-2 polynomial basis.
type polyRidge struct {
	inner *ml.Ridge
}

func (p *polyRidge) Fit(X [][]float64, y []float64) error {
	return p.inner.Fit(ml.PolyExpand(X), y)
}

func (p *polyRidge) Predict(x []float64) float64 {
	return p.inner.Predict(ml.PolyFeatures(x))
}

// TrainSurrogate fits one model on a train fraction of the corpus and
// evaluates it on the rest. Targets are scaled to picoseconds.
func TrainSurrogate(name string, model ml.Regressor, data *ArcData, trainFrac float64, seed int64) (*Surrogate, *SurrogateReport, error) {
	n := len(data.Samples)
	if n < 10 {
		return nil, nil, fmt.Errorf("core: need >= 10 samples, have %d", n)
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	nTrain := int(float64(n) * trainFrac)
	if nTrain < 1 || nTrain >= n {
		return nil, nil, fmt.Errorf("core: train fraction %g leaves no train/test split", trainFrac)
	}
	X := make([][]float64, 0, nTrain)
	y := make([]float64, 0, nTrain)
	for _, i := range perm[:nTrain] {
		X = append(X, data.Samples[i].Features)
		y = append(y, data.Samples[i].Delay*1e12)
	}
	t0 := time.Now()
	if err := model.Fit(X, y); err != nil {
		return nil, nil, fmt.Errorf("core: surrogate %s: %w", name, err)
	}
	trainTime := time.Since(t0)

	testIdx := perm[nTrain:]
	yTrue := make([]float64, len(testIdx))
	yPred := make([]float64, len(testIdx))
	t1 := time.Now()
	for k, i := range testIdx {
		yPred[k] = model.Predict(data.Samples[i].Features)
	}
	predTime := time.Since(t1)
	for k, i := range testIdx {
		yTrue[k] = data.Samples[i].Delay * 1e12
	}
	rep := &SurrogateReport{
		Name:       name,
		MAPE:       ml.MAPE(yTrue, yPred),
		RMSE:       ml.RMSE(yTrue, yPred) * 1e-12,
		R2:         ml.R2(yTrue, yPred),
		TrainTime:  trainTime,
		PredictPer: predTime / time.Duration(len(testIdx)),
		SpicePer:   data.SpiceTime / time.Duration(data.Runs),
		TrainPts:   nTrain,
		TestPts:    len(testIdx),
	}
	if rep.PredictPer > 0 {
		rep.Speedup = float64(rep.SpicePer) / float64(rep.PredictPer)
	}
	return &Surrogate{Name: name, Model: model}, rep, nil
}
