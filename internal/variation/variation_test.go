package variation

import (
	"math"
	"testing"
)

func TestSamplerDeterministic(t *testing.T) {
	a := NewSampler(Default(), 42)
	b := NewSampler(Default(), 42)
	for i := 0; i < 100; i++ {
		if a.Instance(1) != b.Instance(1) {
			t.Fatal("same seed must reproduce")
		}
	}
	c := NewSampler(Default(), 43)
	same := true
	aa := NewSampler(Default(), 42)
	for i := 0; i < 10; i++ {
		if aa.Instance(1) != c.Instance(1) {
			same = false
		}
	}
	if same {
		t.Error("different seeds identical")
	}
}

func TestPelgromScaling(t *testing.T) {
	p := Default()
	s := NewSampler(p, 1)
	const n = 200000
	var ss1, ss4 float64
	for i := 0; i < n; i++ {
		v := s.Instance(1)
		ss1 += v * v
	}
	for i := 0; i < n; i++ {
		v := s.Instance(4)
		ss4 += v * v
	}
	sd1 := math.Sqrt(ss1 / n)
	sd4 := math.Sqrt(ss4 / n)
	if math.Abs(sd1-p.SigmaVth0) > 0.002 {
		t.Errorf("unit width sigma = %f, want %f", sd1, p.SigmaVth0)
	}
	if r := sd1 / sd4; math.Abs(r-2) > 0.1 {
		t.Errorf("width-4 sigma ratio = %f, want 2 (1/sqrt(w))", r)
	}
}

func TestInstanceZeroWidthSafe(t *testing.T) {
	s := NewSampler(Default(), 1)
	v := s.Instance(0)
	if math.IsInf(v, 0) || math.IsNaN(v) {
		t.Error("zero width must not blow up")
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	s := Summarize(xs)
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("stats = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("std = %f", s.Std)
	}
	if s.P50 != 3 {
		t.Errorf("median = %f", s.P50)
	}
	if Summarize(nil).N != 0 {
		t.Error("empty sample must yield zero stats")
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{0, 10}
	if q := Quantile(sorted, 0.5); q != 5 {
		t.Errorf("q50 = %f", q)
	}
	if q := Quantile(sorted, 0); q != 0 {
		t.Errorf("q0 = %f", q)
	}
	if q := Quantile(sorted, 1); q != 10 {
		t.Errorf("q1 = %f", q)
	}
	if q := Quantile([]float64{7}, 0.9); q != 7 {
		t.Errorf("single sample q = %f", q)
	}
	defer func() {
		if recover() == nil {
			t.Error("empty quantile must panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 0.1, 0.2, 0.9, 1.0}
	edges, counts := Histogram(xs, 2)
	if len(edges) != 3 || len(counts) != 2 {
		t.Fatalf("histogram shape %d edges %d counts", len(edges), len(counts))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(xs) {
		t.Errorf("histogram loses samples: %d", total)
	}
	if e, c := Histogram(nil, 4); e != nil || c != nil {
		t.Error("empty input must return nil")
	}
	// Degenerate constant sample.
	_, c2 := Histogram([]float64{3, 3, 3}, 3)
	total = 0
	for _, c := range c2 {
		total += c
	}
	if total != 3 {
		t.Error("constant sample mishandled")
	}
}

func TestGlobalOffsetScale(t *testing.T) {
	p := Default()
	s := NewSampler(p, 9)
	const n = 100000
	var ss float64
	for i := 0; i < n; i++ {
		v := s.Global()
		ss += v * v
	}
	sd := math.Sqrt(ss / n)
	if math.Abs(sd-p.GlobalSig) > 0.002 {
		t.Errorf("global sigma = %f, want %f", sd, p.GlobalSig)
	}
}
