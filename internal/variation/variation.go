// Package variation models process variation for Monte Carlo timing
// analysis: per-instance threshold-voltage mismatch following Pelgrom-style
// scaling (sigma shrinks with device width), plus summary statistics for
// sampled delay distributions (experiment F4).
package variation

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/parallel"
)

// Params describes the variation corner.
type Params struct {
	SigmaVth0 float64 // Vth sigma for a unit-width device, volts
	GlobalSig float64 // die-to-die global Vth sigma, volts
}

// Default returns a 5-nm-class variation model: ~20 mV local sigma for the
// minimum device and 10 mV global.
func Default() Params {
	return Params{SigmaVth0: 0.020, GlobalSig: 0.010}
}

// Sampler draws per-instance threshold shifts deterministically from a
// seed.
type Sampler struct {
	p   Params
	rng *rand.Rand
}

// NewSampler returns a sampler seeded for reproducibility.
func NewSampler(p Params, seed int64) *Sampler {
	return &Sampler{p: p, rng: rand.New(rand.NewSource(seed))}
}

// NewSamplerAt returns the sampler for Monte Carlo sample index i, with its
// seed split deterministically from the base seed. Because every sample owns
// an independent RNG stream, a Monte Carlo sweep produces identical samples
// no matter how the index range is sharded over workers.
func NewSamplerAt(p Params, seed int64, i int) *Sampler {
	return NewSampler(p, parallel.SplitSeed(seed, int64(i)))
}

// MonteCarlo runs fn for each of n samples across a bounded worker pool
// (workers <= 0 selects GOMAXPROCS). Each call receives the sample index and
// a sampler derived via seed-splitting, so results are bit-identical for
// any worker count as long as fn(i) writes only to per-index state.
func MonteCarlo(p Params, seed int64, n, workers int, fn func(i int, s *Sampler) error) error {
	return parallel.For(workers, n, func(i int) error {
		return fn(i, NewSamplerAt(p, seed, i))
	})
}

// Global draws one die-level Vth offset shared by all instances on the die.
func (s *Sampler) Global() float64 {
	return s.rng.NormFloat64() * s.p.GlobalSig
}

// Instance draws one device/cell local Vth offset. width is the effective
// device width multiple: mismatch scales as 1/sqrt(width) (Pelgrom).
func (s *Sampler) Instance(width float64) float64 {
	if width <= 0 {
		width = 1
	}
	return s.rng.NormFloat64() * s.p.SigmaVth0 / math.Sqrt(width)
}

// PerGate draws n independent instance offsets with unit width.
func (s *Sampler) PerGate(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = s.Instance(1)
	}
	return out
}

// Stats summarizes a sample.
type Stats struct {
	N             int
	Mean, Std     float64
	Min, Max      float64
	P50, P95, P99 float64
}

// Summarize computes distribution statistics (quantiles by linear
// interpolation on the sorted sample).
func Summarize(xs []float64) Stats {
	if len(xs) == 0 {
		return Stats{}
	}
	s := Stats{N: len(xs)}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	s.Mean = sum / float64(len(sorted))
	ss := 0.0
	for _, x := range sorted {
		d := x - s.Mean
		ss += d * d
	}
	if len(sorted) > 1 {
		s.Std = math.Sqrt(ss / float64(len(sorted)-1))
	}
	s.P50 = Quantile(sorted, 0.50)
	s.P95 = Quantile(sorted, 0.95)
	s.P99 = Quantile(sorted, 0.99)
	return s
}

// Quantile returns the q-quantile of a sorted sample with linear
// interpolation. It panics when the sample is empty or q outside [0,1].
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 || q < 0 || q > 1 {
		panic(fmt.Sprintf("variation: bad quantile request (n=%d, q=%g)", len(sorted), q))
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo == len(sorted)-1 {
		return sorted[lo]
	}
	f := pos - float64(lo)
	return sorted[lo]*(1-f) + sorted[lo+1]*f
}

// Histogram bins xs into n equal-width bins over [min,max] and returns bin
// edges and counts — used by the harness to print figure-style
// distributions.
func Histogram(xs []float64, n int) (edges []float64, counts []int) {
	if n < 1 || len(xs) == 0 {
		return nil, nil
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	w := (hi - lo) / float64(n)
	edges = make([]float64, n+1)
	for i := range edges {
		edges[i] = lo + float64(i)*w
	}
	counts = make([]int, n)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b >= n {
			b = n - 1
		}
		counts[b]++
	}
	return edges, counts
}
