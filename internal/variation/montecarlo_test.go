package variation

import (
	"math"
	"testing"
)

// TestMonteCarloDeterministicAcrossWorkers asserts the seed-splitting
// contract: the sample vector is bit-identical for any worker count.
func TestMonteCarloDeterministicAcrossWorkers(t *testing.T) {
	p := Default()
	n := 500
	run := func(workers int) []float64 {
		out := make([]float64, n)
		err := MonteCarlo(p, 42, n, workers, func(i int, s *Sampler) error {
			v := s.Global()
			for k := 0; k < 8; k++ {
				v += s.Instance(1)
			}
			out[i] = v
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	ref := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: sample %d = %v, serial %v", workers, i, got[i], ref[i])
			}
		}
	}
}

func TestNewSamplerAtIndependentStreams(t *testing.T) {
	p := Default()
	a := NewSamplerAt(p, 1, 0)
	b := NewSamplerAt(p, 1, 1)
	if a.Global() == b.Global() {
		t.Error("adjacent sample streams must not be identical")
	}
	// Same (seed, index) reproduces exactly.
	x := NewSamplerAt(p, 1, 7).Instance(1)
	y := NewSamplerAt(p, 1, 7).Instance(1)
	if x != y {
		t.Error("sampler at fixed (seed, index) must reproduce")
	}
}

// TestMonteCarloStats sanity-checks that split streams still follow the
// variation model: pooled instance offsets are ~N(0, SigmaVth0).
func TestMonteCarloStats(t *testing.T) {
	p := Default()
	n := 4000
	xs := make([]float64, n)
	err := MonteCarlo(p, 9, n, 4, func(i int, s *Sampler) error {
		xs[i] = s.Instance(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := Summarize(xs)
	if math.Abs(st.Mean) > 3*p.SigmaVth0/math.Sqrt(float64(n)) {
		t.Errorf("pooled mean %g too far from 0", st.Mean)
	}
	if st.Std < 0.8*p.SigmaVth0 || st.Std > 1.2*p.SigmaVth0 {
		t.Errorf("pooled std %g vs model sigma %g", st.Std, p.SigmaVth0)
	}
}
