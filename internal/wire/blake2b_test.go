package wire

import (
	"encoding/hex"
	"fmt"
	"testing"
)

// Vectors produced by an independent BLAKE2b implementation (Python
// hashlib.blake2b, digest_size=32). The length grid deliberately straddles
// every block boundary: empty input, sub-block, exactly one block (128),
// one block plus one byte, two blocks, and multi-block tails — each of
// which takes a different path through the counter/final-flag logic.
func TestBlake2b256Vectors(t *testing.T) {
	known := []struct {
		n    int
		want string
	}{
		{0, "0e5751c026e543b2e8ab2eb06099daa1d1e5df47778f7787faab45cdf12fe3a8"},
		{1, "e88bd757ad5b9bedf372d8d3f0cf6c962a469db61a265f6418e1ffed86da29ec"},
		{63, "a69e023685fa5f19fca13acc02142a9cf8450ce5b77966586e0d000c4a4ea942"},
		{64, "586c0dd87616ec042093edc5f87f880d37ca73618e99b03d5850ce9be478721f"},
		{127, "c9ae3859964b35f04c54b36d33cf299d7290ee621005d28e51598a943560aaaa"},
		{128, "f0501d06597880592bc49234eef100ec1ff349058d0e9d9b753504e24af86dd6"},
		{129, "a34a4e1e03c541dfbf3099c4b6c143c022ced65c28bd7e8a10e0a098461aecf0"},
		{255, "f2d64a40e9412a3414161ff6250075225418fd7c271c1123e162e1bca0de9f93"},
		{256, "d93ebb9c802f5630ab22516fd82b6c21bc8bd551d531349b715f046ed11ed871"},
		{257, "4ce481b24d387422d2bc2baa03d1afd55a1327939ff537c71eb9b38709268649"},
		{384, "cff59531b16bf549e1048f7df5efadf9c590cad5a0b52ab9eeb52e5b5eb86e55"},
		{1024, "69690d5736283a6379bc55ddd89b01dfff8db87eff8208c9177baa695b639b50"},
	}
	for _, tc := range known {
		data := make([]byte, tc.n)
		for i := range data {
			data[i] = byte((i*7 + 3) % 256)
		}
		sum := Blake2b256(data)
		if got := hex.EncodeToString(sum[:]); got != tc.want {
			t.Errorf("Blake2b256(%d bytes) = %s, want %s", tc.n, got, tc.want)
		}
	}

	ascii := []struct{ in, want string }{
		{"abc", "bddd813c634239723171ef3fee98579b94964e3bb1cb3e427262c8c068d52319"},
		{"The quick brown fox jumps over the lazy dog",
			"01718cec35cd3d796dd00020e0bfecb473ad23457d063b75eff29c0ffa2e58a9"},
	}
	for _, tc := range ascii {
		sum := Blake2b256([]byte(tc.in))
		if got := hex.EncodeToString(sum[:]); got != tc.want {
			t.Errorf("Blake2b256(%q) = %s, want %s", tc.in, got, tc.want)
		}
	}
}

// TestBlake2b256Sensitivity: flipping any single bit of a two-block input
// must change the digest — the property the artifact hash check rests on.
func TestBlake2b256Sensitivity(t *testing.T) {
	data := make([]byte, 200)
	for i := range data {
		data[i] = byte(i)
	}
	base := Blake2b256(data)
	for i := range data {
		data[i] ^= 0x10
		if Blake2b256(data) == base {
			t.Fatalf("digest unchanged after flipping byte %d", i)
		}
		data[i] ^= 0x10
	}
	if Blake2b256(data) != base {
		t.Fatal("digest not restored after undoing flips")
	}
}

func BenchmarkBlake2b256(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 20} {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i)
		}
		b.Run(fmt.Sprintf("%dB", n), func(b *testing.B) {
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				Blake2b256(data)
			}
		})
	}
}
