package wire

import (
	"errors"
	"math"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	var b []byte
	b = AppendU8(b, 7)
	b = AppendU32(b, 0xDEADBEEF)
	b = AppendU64(b, 1<<63|42)
	b = AppendI64(b, -12345)
	b = AppendF64(b, -0.0)
	b = AppendF64(b, math.NaN())
	b = AppendString(b, "kind/name")
	b = AppendBytes(b, []byte{1, 2, 3})
	b = AppendI32s(b, []int32{-1, 0, math.MaxInt32, math.MinInt32})
	b = AppendI64s(b, []int64{-9, 9})
	b = AppendF64s(b, []float64{1.5, math.Inf(-1)})

	d := NewDec(b)
	if v := d.U8(); v != 7 {
		t.Errorf("U8 = %d", v)
	}
	if v := d.U32(); v != 0xDEADBEEF {
		t.Errorf("U32 = %x", v)
	}
	if v := d.U64(); v != 1<<63|42 {
		t.Errorf("U64 = %x", v)
	}
	if v := d.I64(); v != -12345 {
		t.Errorf("I64 = %d", v)
	}
	if v := d.F64(); math.Float64bits(v) != math.Float64bits(-0.0) {
		t.Errorf("F64 -0.0 bits = %x", math.Float64bits(v))
	}
	if v := d.F64(); math.Float64bits(v) != math.Float64bits(math.NaN()) {
		t.Errorf("F64 NaN bits = %x", math.Float64bits(v))
	}
	if v := d.String(); v != "kind/name" {
		t.Errorf("String = %q", v)
	}
	if v := d.Bytes(); len(v) != 3 || v[0] != 1 || v[2] != 3 {
		t.Errorf("Bytes = %v", v)
	}
	if v := d.I32s(); len(v) != 4 || v[3] != math.MinInt32 {
		t.Errorf("I32s = %v", v)
	}
	if v := d.I64s(); len(v) != 2 || v[0] != -9 {
		t.Errorf("I64s = %v", v)
	}
	if v := d.F64s(); len(v) != 2 || !math.IsInf(v[1], -1) {
		t.Errorf("F64s = %v", v)
	}
	if err := d.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// TestCodecTruncation: every proper prefix of a valid encoding must decode
// to ErrCodec, never panic or succeed.
func TestCodecTruncation(t *testing.T) {
	var b []byte
	b = AppendString(b, "hello")
	b = AppendF64s(b, []float64{1, 2, 3})
	b = AppendI64(b, -1)
	for cut := 0; cut < len(b); cut++ {
		d := NewDec(b[:cut])
		_ = d.String()
		d.F64s()
		d.I64()
		if err := d.Close(); !errors.Is(err, ErrCodec) {
			t.Errorf("cut at %d: err = %v, want ErrCodec", cut, err)
		}
	}
}

func TestCodecTrailingBytes(t *testing.T) {
	b := AppendU32(nil, 5)
	b = append(b, 0xFF)
	d := NewDec(b)
	d.U32()
	if err := d.Close(); !errors.Is(err, ErrCodec) {
		t.Errorf("trailing byte: err = %v, want ErrCodec", err)
	}
}

// TestCodecHugeCount: a corrupt count field must fail before allocating,
// not attempt a multi-gigabyte make().
func TestCodecHugeCount(t *testing.T) {
	b := AppendU32(nil, 0xFFFFFFFF)
	d := NewDec(b)
	if v := d.F64s(); v != nil {
		t.Errorf("F64s = %d elems, want nil", len(v))
	}
	if err := d.Err(); !errors.Is(err, ErrCodec) {
		t.Errorf("err = %v, want ErrCodec", err)
	}
}

// TestCodecStickyError: after the first failure every later read returns a
// zero value and the first error is preserved.
func TestCodecStickyError(t *testing.T) {
	d := NewDec([]byte{0x01})
	d.U64() // fails: needs 8 bytes
	first := d.Err()
	if first == nil {
		t.Fatal("expected error")
	}
	if v := d.String(); v != "" {
		t.Errorf("String after error = %q", v)
	}
	if d.Err() != first {
		t.Errorf("error replaced: %v", d.Err())
	}
}
