package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Canonical binary codec. The encode half is append-only over a caller
// byte slice (zero hidden allocation, composable into larger sections);
// the decode half is a cursor with sticky error tracking. The rules that
// make an encoding canonical — and therefore make blake2b over the bytes a
// usable identity:
//
//   - fields are written in one fixed, documented order; there is no map
//     iteration and no optional-field skipping anywhere in an encode path
//   - scalars are fixed-width big-endian; float64 is its IEEE-754 bit
//     pattern (so NaN payloads and signed zeros round-trip bit-exactly)
//   - variable-length sections carry a u32 count/length prefix
//   - a decoder consumes the buffer exactly: trailing bytes are an error
//
// Under those rules every value has exactly one encoding, encode∘decode is
// the identity on bytes, and two encodings are byte-equal iff the values
// are equal — the property the content-addressed artifact store relies on.

// ErrCodec is the typed error for every canonical-decode failure
// (truncation, impossible lengths, trailing bytes). Wrapped with context.
var ErrCodec = errors.New("wire: malformed canonical encoding")

// AppendU8 appends one byte.
func AppendU8(b []byte, v uint8) []byte { return append(b, v) }

// AppendU32 appends a big-endian uint32.
func AppendU32(b []byte, v uint32) []byte {
	return binary.BigEndian.AppendUint32(b, v)
}

// AppendU64 appends a big-endian uint64.
func AppendU64(b []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(b, v)
}

// AppendI64 appends an int64 as its two's-complement big-endian bits.
func AppendI64(b []byte, v int64) []byte { return AppendU64(b, uint64(v)) }

// AppendF64 appends a float64 as its IEEE-754 bit pattern (big-endian).
func AppendF64(b []byte, v float64) []byte { return AppendU64(b, math.Float64bits(v)) }

// AppendBytes appends a u32 length prefix followed by the bytes.
func AppendBytes(b, v []byte) []byte {
	b = AppendU32(b, uint32(len(v)))
	return append(b, v...)
}

// AppendString appends a string as a length-prefixed byte section.
func AppendString(b []byte, v string) []byte {
	b = AppendU32(b, uint32(len(v)))
	return append(b, v...)
}

// AppendI32s appends a u32 count followed by each value big-endian.
func AppendI32s(b []byte, v []int32) []byte {
	b = AppendU32(b, uint32(len(v)))
	for _, x := range v {
		b = AppendU32(b, uint32(x))
	}
	return b
}

// AppendI64s appends a u32 count followed by each value big-endian.
func AppendI64s(b []byte, v []int64) []byte {
	b = AppendU32(b, uint32(len(v)))
	for _, x := range v {
		b = AppendI64(b, x)
	}
	return b
}

// AppendF64s appends a u32 count followed by each IEEE bit pattern.
func AppendF64s(b []byte, v []float64) []byte {
	b = AppendU32(b, uint32(len(v)))
	for _, x := range v {
		b = AppendF64(b, x)
	}
	return b
}

// Dec is a canonical-decoding cursor. The first failure sticks: every
// later read returns a zero value, so decode sequences read straight-line
// and check Err (or Close) once at the end.
type Dec struct {
	b   []byte
	off int
	err error
}

// NewDec returns a cursor over data.
func NewDec(data []byte) *Dec { return &Dec{b: data} }

// Err returns the first decode error, if any.
func (d *Dec) Err() error { return d.err }

// Remaining returns the number of unconsumed bytes.
func (d *Dec) Remaining() int { return len(d.b) - d.off }

// fail records the first error with context.
func (d *Dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s (offset %d)", ErrCodec, fmt.Sprintf(format, args...), d.off)
	}
}

// take consumes n bytes, or fails.
func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.Remaining() < n {
		d.fail("need %d bytes, have %d", n, d.Remaining())
		return nil
	}
	v := d.b[d.off : d.off+n]
	d.off += n
	return v
}

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	v := d.take(1)
	if v == nil {
		return 0
	}
	return v[0]
}

// U32 reads a big-endian uint32.
func (d *Dec) U32() uint32 {
	v := d.take(4)
	if v == nil {
		return 0
	}
	return binary.BigEndian.Uint32(v)
}

// U64 reads a big-endian uint64.
func (d *Dec) U64() uint64 {
	v := d.take(8)
	if v == nil {
		return 0
	}
	return binary.BigEndian.Uint64(v)
}

// I64 reads an int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// F64 reads a float64 bit pattern.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Bytes reads a length-prefixed byte section. The returned slice aliases
// the input buffer; callers that retain it must copy.
func (d *Dec) Bytes() []byte {
	n := d.U32()
	return d.take(int(n))
}

// String reads a length-prefixed string.
func (d *Dec) String() string { return string(d.Bytes()) }

// count reads a u32 element count and validates it against the remaining
// bytes at elemSize each, so a corrupt count cannot drive a huge
// allocation before the truncation is noticed.
func (d *Dec) count(elemSize int) int {
	n := int(d.U32())
	if d.err == nil && n*elemSize > d.Remaining() {
		d.fail("count %d needs %d bytes, have %d", n, n*elemSize, d.Remaining())
		return 0
	}
	if d.err != nil {
		return 0
	}
	return n
}

// I32s reads a count-prefixed []int32.
func (d *Dec) I32s() []int32 {
	n := d.count(4)
	if d.err != nil || n == 0 {
		return nil
	}
	v := make([]int32, n)
	for i := range v {
		v[i] = int32(d.U32())
	}
	return v
}

// I64s reads a count-prefixed []int64.
func (d *Dec) I64s() []int64 {
	n := d.count(8)
	if d.err != nil || n == 0 {
		return nil
	}
	v := make([]int64, n)
	for i := range v {
		v[i] = d.I64()
	}
	return v
}

// F64s reads a count-prefixed []float64.
func (d *Dec) F64s() []float64 {
	n := d.count(8)
	if d.err != nil || n == 0 {
		return nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = d.F64()
	}
	return v
}

// Close finishes a decode: it returns the sticky error if any, and
// otherwise fails if unconsumed bytes remain (a canonical encoding is
// consumed exactly).
func (d *Dec) Close() error {
	if d.err != nil {
		return d.err
	}
	if r := d.Remaining(); r != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCodec, r)
	}
	return nil
}
