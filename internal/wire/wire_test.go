package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

var testProto = Proto{Magic: "TEST", Version: 3}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 1000)}
	for i, p := range payloads {
		if err := testProto.WriteFrame(&buf, uint8(i+1), p); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	for i, want := range payloads {
		ft, p, err := testProto.ReadFrame(&buf, 0)
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if ft != uint8(i+1) || !bytes.Equal(p, want) {
			t.Errorf("frame %d: type %d payload %d bytes, want type %d payload %d bytes",
				i, ft, len(p), i+1, len(want))
		}
	}
	if _, _, err := testProto.ReadFrame(&buf, 0); err != io.EOF {
		t.Errorf("clean EOF at frame boundary: err = %v, want io.EOF", err)
	}
}

func TestFrameTypedErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := testProto.WriteFrame(&buf, 1, []byte("payload-bytes")); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	mutate := func(f func([]byte)) []byte {
		b := append([]byte(nil), frame...)
		f(b)
		return b
	}
	cases := []struct {
		name string
		data []byte
		max  uint32
		want error
	}{
		{"bad magic", mutate(func(b []byte) { b[0] ^= 0xff }), 0, ErrBadMagic},
		{"bad version", mutate(func(b []byte) { b[4] ^= 0x01 }), 0, ErrVersion},
		{"oversize length", mutate(func(b []byte) { binary.BigEndian.PutUint32(b[6:10], 4096) }), 64, ErrFrameTooBig},
		{"payload bit flip", mutate(func(b []byte) { b[HeaderSize] ^= 0x01 }), 0, ErrPayloadHash},
		{"hash bit flip", mutate(func(b []byte) { b[10] ^= 0x01 }), 0, ErrPayloadHash},
		{"length shrunk", mutate(func(b []byte) { binary.BigEndian.PutUint32(b[6:10], 4) }), 0, ErrPayloadHash},
	}
	for _, tc := range cases {
		if _, _, err := testProto.ReadFrame(bytes.NewReader(tc.data), tc.max); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	for cut := 1; cut < len(frame); cut++ {
		_, _, err := testProto.ReadFrame(bytes.NewReader(frame[:cut]), 0)
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("cut at %d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

// TestProtoIsolation: frames of one protocol must be unreadable under
// another protocol's magic or version — the property that keeps the
// cluster job protocol and the artifact replication protocol from ever
// decoding each other's traffic.
func TestProtoIsolation(t *testing.T) {
	var buf bytes.Buffer
	if err := testProto.WriteFrame(&buf, 1, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	other := Proto{Magic: "OTHR", Version: 3}
	if _, _, err := other.ReadFrame(bytes.NewReader(frame), 0); !errors.Is(err, ErrBadMagic) {
		t.Errorf("foreign magic: err = %v, want ErrBadMagic", err)
	}
	v2 := Proto{Magic: "TEST", Version: 4}
	if _, _, err := v2.ReadFrame(bytes.NewReader(frame), 0); !errors.Is(err, ErrVersion) {
		t.Errorf("foreign version: err = %v, want ErrVersion", err)
	}
}

func TestWriteFrameBadMagic(t *testing.T) {
	bad := Proto{Magic: "LONGER", Version: 1}
	if err := bad.WriteFrame(io.Discard, 1, nil); err == nil {
		t.Error("5-byte magic accepted")
	}
}
