// Package wire is the shared binary transport substrate of the repository:
// length-prefixed frames with per-frame content hashing (the framing
// internal/cluster introduced, extracted so the artifact-replication
// protocol reuses it verbatim), a canonical binary codec for deterministic
// model serialization (fixed field order, big-endian fixed-width scalars,
// length-prefixed sections — no map iteration anywhere), and a pure-Go
// BLAKE2b-256 whose digest over canonical bytes is an artifact's identity.
package wire

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame format, transhift-style explicit framing with easyfl-style content
// hashing: a fixed header carries a protocol magic, the protocol version,
// the frame type, the big-endian payload length and the sha256 of the
// payload. The hash makes payload corruption (truncation, bit rot,
// desynced streams) a typed error at the frame boundary instead of a
// garbage decode downstream.
//
//	offset  size  field
//	0       4     protocol magic
//	4       1     protocol version
//	5       1     frame type
//	6       4     payload length (big-endian)
//	10      32    sha256(payload)
//	42      n     payload
const (
	// HeaderSize is the fixed frame header length.
	HeaderSize = 4 + 1 + 1 + 4 + sha256.Size

	// DefaultMaxFrame bounds a single frame's payload: large enough for a
	// million-gate setup frame or a dense dictionary shard, small enough
	// that a corrupt length field cannot trigger a runaway allocation.
	DefaultMaxFrame = 1 << 28
)

// Typed wire errors. Everything a peer can get wrong on the wire maps to
// exactly one of these (possibly wrapped with context), so failure-path
// tests can pin the classification with errors.Is.
var (
	ErrBadMagic    = errors.New("wire: bad frame magic")
	ErrVersion     = errors.New("wire: frame protocol version mismatch")
	ErrFrameTooBig = errors.New("wire: frame exceeds size limit")
	ErrPayloadHash = errors.New("wire: frame payload hash mismatch")
	ErrTruncated   = errors.New("wire: truncated frame")
)

// Proto identifies one framed protocol: a 4-byte magic and a version byte.
// Two protocols sharing the frame layout (cluster job dispatch, artifact
// replication) stay mutually unintelligible through their magics.
type Proto struct {
	Magic   string // exactly 4 bytes
	Version byte
}

// WriteFrame writes one framed message: header (magic, version, type,
// length, payload hash) followed by the payload.
func (p Proto) WriteFrame(w io.Writer, t uint8, payload []byte) error {
	if len(p.Magic) != 4 {
		return fmt.Errorf("wire: protocol magic %q is not 4 bytes", p.Magic)
	}
	hdr := make([]byte, HeaderSize, HeaderSize+len(payload))
	copy(hdr, p.Magic)
	hdr[4] = p.Version
	hdr[5] = t
	binary.BigEndian.PutUint32(hdr[6:10], uint32(len(payload)))
	sum := sha256.Sum256(payload)
	copy(hdr[10:], sum[:])
	// One Write call for header+payload: a frame is either fully queued to
	// the transport or fails as a unit, which keeps the failure model
	// simple (a short write is a broken connection, not a desynced stream).
	_, err := w.Write(append(hdr, payload...))
	return err
}

// ReadFrame reads and verifies one framed message. maxFrame bounds the
// payload length accepted (0 selects DefaultMaxFrame). Errors are typed:
// ErrBadMagic, ErrVersion, ErrFrameTooBig, ErrPayloadHash, or ErrTruncated
// for short reads; io.EOF is returned untouched only for a clean EOF at a
// frame boundary, so callers can distinguish orderly close from mid-frame
// loss.
func (p Proto) ReadFrame(r io.Reader, maxFrame uint32) (uint8, []byte, error) {
	if maxFrame == 0 {
		maxFrame = DefaultMaxFrame
	}
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: header: %v", ErrTruncated, err)
	}
	if string(hdr[:4]) != p.Magic {
		return 0, nil, ErrBadMagic
	}
	if hdr[4] != p.Version {
		return 0, nil, fmt.Errorf("%w: got %d, want %d", ErrVersion, hdr[4], p.Version)
	}
	t := hdr[5]
	n := binary.BigEndian.Uint32(hdr[6:10])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("%w: %d bytes > limit %d", ErrFrameTooBig, n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("%w: payload: %v", ErrTruncated, err)
	}
	if sum := sha256.Sum256(payload); sum != [sha256.Size]byte(hdr[10:42]) {
		return 0, nil, ErrPayloadHash
	}
	return t, payload, nil
}
