package wire

import "math/bits"

// BLAKE2b-256 (RFC 7693), unkeyed, implemented here because the module is
// deliberately stdlib-only. An artifact's identity is Blake2b256 over its
// canonical bytes — the easyfl LibraryHash pattern: content addressing
// instead of trusting filenames. BLAKE2b is chosen over the stdlib SHA-2
// family for the same reason easyfl uses it: it is the conventional
// content-address hash in this niche and measurably faster per byte on
// 64-bit machines, which matters when a replica verifies million-entry
// dictionary artifacts on every sync.
//
// The implementation is the straightforward RFC one: 12 rounds of the G
// mixing function over a 16-word state, 128-byte blocks, 128-bit byte
// counter, little-endian words. It is validated against vectors produced
// by an independent implementation (Python hashlib) in blake2b_test.go.

// blake2bIV is the BLAKE2b initialization vector (the SHA-512 IV).
var blake2bIV = [8]uint64{
	0x6a09e667f3bcc908, 0xbb67ae8584caa73b, 0x3c6ef372fe94f82b, 0xa54ff53a5f1d36f1,
	0x510e527fade682d1, 0x9b05688c2b3e6c1f, 0x1f83d9abfb41bd6b, 0x5be0cd19137e2179,
}

// blake2bSigma is the message-word schedule; rounds 10 and 11 reuse rows 0
// and 1.
var blake2bSigma = [12][16]uint8{
	{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
	{14, 10, 4, 8, 9, 15, 13, 6, 1, 12, 0, 2, 11, 7, 5, 3},
	{11, 8, 12, 0, 5, 2, 15, 13, 10, 14, 3, 6, 7, 1, 9, 4},
	{7, 9, 3, 1, 13, 12, 11, 14, 2, 6, 5, 10, 4, 0, 15, 8},
	{9, 0, 5, 7, 2, 4, 10, 15, 14, 1, 11, 12, 6, 8, 3, 13},
	{2, 12, 6, 10, 0, 11, 8, 3, 4, 13, 7, 5, 15, 14, 1, 9},
	{12, 5, 1, 15, 14, 13, 4, 10, 0, 7, 6, 3, 9, 2, 8, 11},
	{13, 11, 7, 14, 12, 1, 3, 9, 5, 0, 15, 4, 8, 6, 2, 10},
	{6, 15, 14, 9, 11, 3, 0, 8, 12, 2, 13, 7, 1, 4, 10, 5},
	{10, 2, 8, 4, 7, 6, 1, 5, 15, 11, 9, 14, 3, 12, 13, 0},
	{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
	{14, 10, 4, 8, 9, 15, 13, 6, 1, 12, 0, 2, 11, 7, 5, 3},
}

// blake2bCompress runs the F function: mix one 128-byte block into h.
// t0/t1 are the low/high words of the 128-bit byte counter (bytes hashed
// so far including this block); final marks the last block.
func blake2bCompress(h *[8]uint64, block *[128]byte, t0, t1 uint64, final bool) {
	var m [16]uint64
	for i := range m {
		// Little-endian load, per the RFC.
		o := i * 8
		m[i] = uint64(block[o]) | uint64(block[o+1])<<8 | uint64(block[o+2])<<16 |
			uint64(block[o+3])<<24 | uint64(block[o+4])<<32 | uint64(block[o+5])<<40 |
			uint64(block[o+6])<<48 | uint64(block[o+7])<<56
	}
	var v [16]uint64
	copy(v[:8], h[:])
	copy(v[8:], blake2bIV[:])
	v[12] ^= t0
	v[13] ^= t1
	if final {
		v[14] = ^v[14]
	}
	g := func(a, b, c, d int, x, y uint64) {
		v[a] += v[b] + x
		v[d] = bits.RotateLeft64(v[d]^v[a], -32)
		v[c] += v[d]
		v[b] = bits.RotateLeft64(v[b]^v[c], -24)
		v[a] += v[b] + y
		v[d] = bits.RotateLeft64(v[d]^v[a], -16)
		v[c] += v[d]
		v[b] = bits.RotateLeft64(v[b]^v[c], -63)
	}
	for r := 0; r < 12; r++ {
		s := &blake2bSigma[r]
		g(0, 4, 8, 12, m[s[0]], m[s[1]])
		g(1, 5, 9, 13, m[s[2]], m[s[3]])
		g(2, 6, 10, 14, m[s[4]], m[s[5]])
		g(3, 7, 11, 15, m[s[6]], m[s[7]])
		g(0, 5, 10, 15, m[s[8]], m[s[9]])
		g(1, 6, 11, 12, m[s[10]], m[s[11]])
		g(2, 7, 8, 13, m[s[12]], m[s[13]])
		g(3, 4, 9, 14, m[s[14]], m[s[15]])
	}
	for i := range h {
		h[i] ^= v[i] ^ v[i+8]
	}
}

// Blake2b256 returns the unkeyed BLAKE2b-256 digest of data.
func Blake2b256(data []byte) [32]byte {
	var h [8]uint64
	copy(h[:], blake2bIV[:])
	// Parameter block word 0: digest length 32, key length 0, fanout 1,
	// depth 1 (sequential mode).
	h[0] ^= 0x01010000 ^ 32

	var block [128]byte
	var t uint64 // byte counter; artifact sizes stay far below 2^64
	// Every full block followed by more data is an intermediate block; the
	// last block (even a full or empty one) is compressed with the final
	// flag and zero padding.
	for len(data) > 128 {
		copy(block[:], data[:128])
		t += 128
		blake2bCompress(&h, &block, t, 0, false)
		data = data[128:]
	}
	block = [128]byte{}
	copy(block[:], data)
	t += uint64(len(data))
	blake2bCompress(&h, &block, t, 0, true)

	var out [32]byte
	for i := 0; i < 4; i++ {
		// Little-endian store of h[0..3], per the RFC.
		w := h[i]
		for j := 0; j < 8; j++ {
			out[i*8+j] = byte(w >> (8 * j))
		}
	}
	return out
}
