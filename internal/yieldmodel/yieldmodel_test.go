package yieldmodel

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/wafer"
)

func TestYieldKnownValues(t *testing.T) {
	// Zero defects: perfect yield under every model.
	for _, m := range []Model{Poisson, Murphy, NegBinomial} {
		y, err := Yield(m, 1, 0, 2)
		if err != nil || math.Abs(y-1) > 1e-12 {
			t.Errorf("%v at D0=0: %g, %v", m, y, err)
		}
	}
	// Poisson at A·D0 = 1: e^-1.
	y, _ := Yield(Poisson, 1, 1, 0)
	if math.Abs(y-math.Exp(-1)) > 1e-12 {
		t.Errorf("poisson = %g", y)
	}
	// Murphy at A·D0 = 1: ((1-e^-1)/1)^2 ≈ 0.3996.
	y, _ = Yield(Murphy, 1, 1, 0)
	if math.Abs(y-0.39958) > 1e-4 {
		t.Errorf("murphy = %g", y)
	}
}

func TestModelOrdering(t *testing.T) {
	// For the same A·D0, clustering helps yield: NB(small alpha) > Poisson;
	// Murphy lies between Poisson and NB for moderate clustering.
	for _, ad := range []float64{0.5, 1, 2} {
		p, _ := Yield(Poisson, 1, ad, 0)
		nb, _ := Yield(NegBinomial, 1, ad, 0.5)
		mu, _ := Yield(Murphy, 1, ad, 0)
		if !(nb > mu && mu > p) {
			t.Errorf("A·D0=%g: ordering nb %g > murphy %g > poisson %g violated", ad, nb, mu, p)
		}
	}
}

func TestNegBinomialApproachesPoisson(t *testing.T) {
	p, _ := Yield(Poisson, 1, 1.3, 0)
	nb, _ := Yield(NegBinomial, 1, 1.3, 1e7)
	if math.Abs(p-nb) > 1e-4 {
		t.Errorf("NB(alpha→inf) %g != poisson %g", nb, p)
	}
}

func TestYieldValidation(t *testing.T) {
	if _, err := Yield(Poisson, 0, 1, 0); err == nil {
		t.Error("zero area must fail")
	}
	if _, err := Yield(NegBinomial, 1, 1, 0); err == nil {
		t.Error("zero alpha must fail")
	}
}

func TestFitD0RoundTrip(t *testing.T) {
	for _, m := range []Model{Poisson, Murphy, NegBinomial} {
		for _, d0 := range []float64{0.1, 0.5, 2} {
			y, err := Yield(m, 1, d0, 2)
			if err != nil {
				t.Fatal(err)
			}
			back, err := FitD0(m, y, 2)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(back-d0) > 1e-6*(1+d0) {
				t.Errorf("%v: fit %g for true %g", m, back, d0)
			}
		}
	}
	if _, err := FitD0(Poisson, 0, 0); err == nil {
		t.Error("zero yield must fail")
	}
}

func TestEstimateFromCleanMaps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := wafer.DefaultConfig()
	cfg.Size = 32
	var maps []*wafer.Map
	for i := 0; i < 30; i++ {
		maps = append(maps, wafer.Generate(wafer.None, cfg, rng))
	}
	s, err := Estimate(maps)
	if err != nil {
		t.Fatal(err)
	}
	if s.Wafers != 30 || s.DiesPerMap < 500 {
		t.Errorf("stats = %+v", s)
	}
	// Background noise is Bernoulli per die: fail counts ~ Binomial,
	// essentially unclustered.
	if s.Yield < 0.95 {
		t.Errorf("None-class yield = %f", s.Yield)
	}
}

func TestEstimateDetectsClustering(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := wafer.DefaultConfig()
	cfg.Size = 32
	// Mix of clean wafers and heavily patterned ones: fail counts are
	// overdispersed, which the moments estimator must flag as clustered.
	var maps []*wafer.Map
	for i := 0; i < 20; i++ {
		class := wafer.None
		if i%4 == 0 {
			class = wafer.Center
		}
		maps = append(maps, wafer.Generate(class, cfg, rng))
	}
	s, err := Estimate(maps)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Clustered {
		t.Fatal("mixed lot must be flagged clustered")
	}
	if s.Alpha <= 0 || s.Alpha > 10 {
		t.Errorf("alpha = %f, expected strong clustering (small alpha)", s.Alpha)
	}
}

func TestEstimateValidation(t *testing.T) {
	if _, err := Estimate(nil); err == nil {
		t.Error("empty estimate must fail")
	}
}

func TestModelString(t *testing.T) {
	if Poisson.String() != "poisson" || NegBinomial.String() != "neg-binomial" {
		t.Error("model names wrong")
	}
}
