// Package yieldmodel implements classical die-yield statistics: the
// Poisson, Murphy and negative-binomial (clustered) yield models, plus
// estimation of the defect density and cluster parameter from observed
// wafer maps. These models link the wafer-level defect data of package
// wafer to the lot-level economics that adaptive test trades against
// (escapes vs yield loss).
package yieldmodel

import (
	"fmt"
	"math"

	"repro/internal/wafer"
)

// Model selects the yield formula.
type Model int

// Yield models.
const (
	// Poisson assumes independent defects: Y = exp(-A·D0).
	Poisson Model = iota
	// Murphy integrates a triangular defect-density distribution:
	// Y = ((1 - exp(-A·D0)) / (A·D0))².
	Murphy
	// NegBinomial models defect clustering with parameter alpha:
	// Y = (1 + A·D0/alpha)^(-alpha). alpha→∞ recovers Poisson.
	NegBinomial
)

func (m Model) String() string {
	switch m {
	case Poisson:
		return "poisson"
	case Murphy:
		return "murphy"
	case NegBinomial:
		return "neg-binomial"
	}
	return fmt.Sprintf("Model(%d)", int(m))
}

// Yield returns the predicted die yield for defect density d0 (defects per
// die area unit), die area a, and — for NegBinomial — cluster parameter
// alpha (ignored otherwise).
func Yield(m Model, a, d0, alpha float64) (float64, error) {
	if a <= 0 || d0 < 0 {
		return 0, fmt.Errorf("yieldmodel: invalid area %g / density %g", a, d0)
	}
	ad := a * d0
	switch m {
	case Poisson:
		return math.Exp(-ad), nil
	case Murphy:
		if ad == 0 {
			return 1, nil
		}
		f := (1 - math.Exp(-ad)) / ad
		return f * f, nil
	case NegBinomial:
		if alpha <= 0 {
			return 0, fmt.Errorf("yieldmodel: cluster parameter alpha must be positive, got %g", alpha)
		}
		return math.Pow(1+ad/alpha, -alpha), nil
	}
	return 0, fmt.Errorf("yieldmodel: unknown model %v", m)
}

// Stats summarizes defect statistics observed on a set of wafer maps.
type Stats struct {
	Wafers     int
	DiesPerMap float64 // mean on-wafer dies
	MeanFails  float64 // mean failing dies per wafer
	VarFails   float64 // variance of failing dies per wafer
	Yield      float64 // observed good-die fraction
	// Alpha is the method-of-moments cluster estimate from the fail-count
	// dispersion: alpha = mean² / (var - mean). +Inf (reported as 0 with
	// Clustered=false) when the counts are underdispersed (no clustering).
	Alpha     float64
	Clustered bool
}

// Estimate computes defect statistics over wafer maps. It needs at least
// two maps for the variance.
func Estimate(maps []*wafer.Map) (Stats, error) {
	if len(maps) < 2 {
		return Stats{}, fmt.Errorf("yieldmodel: need >= 2 maps, got %d", len(maps))
	}
	var s Stats
	s.Wafers = len(maps)
	fails := make([]float64, len(maps))
	var totDies, totFails float64
	for i, m := range maps {
		dies, f := 0.0, 0.0
		for _, v := range m.Cells {
			if v == wafer.OffDie {
				continue
			}
			dies++
			if v == wafer.Fail {
				f++
			}
		}
		fails[i] = f
		totDies += dies
		totFails += f
	}
	s.DiesPerMap = totDies / float64(len(maps))
	s.MeanFails = totFails / float64(len(maps))
	for _, f := range fails {
		d := f - s.MeanFails
		s.VarFails += d * d
	}
	s.VarFails /= float64(len(maps) - 1)
	if totDies > 0 {
		s.Yield = 1 - totFails/totDies
	}
	if over := s.VarFails - s.MeanFails; over > 1e-9 && s.MeanFails > 0 {
		s.Alpha = s.MeanFails * s.MeanFails / over
		s.Clustered = true
	}
	return s, nil
}

// FitD0 inverts the chosen yield model for the defect density that explains
// an observed yield at unit die area.
func FitD0(m Model, observedYield, alpha float64) (float64, error) {
	if observedYield <= 0 || observedYield > 1 {
		return 0, fmt.Errorf("yieldmodel: observed yield %g outside (0,1]", observedYield)
	}
	switch m {
	case Poisson:
		return -math.Log(observedYield), nil
	case NegBinomial:
		if alpha <= 0 {
			return 0, fmt.Errorf("yieldmodel: alpha must be positive")
		}
		// Y = (1 + D0/alpha)^-alpha  =>  D0 = alpha (Y^(-1/alpha) - 1)
		return alpha * (math.Pow(observedYield, -1/alpha) - 1), nil
	case Murphy:
		// Numerically invert the monotone Murphy curve by bisection.
		lo, hi := 0.0, 1.0
		for {
			y, _ := Yield(Murphy, 1, hi, 0)
			if y < observedYield || hi > 1e6 {
				break
			}
			hi *= 2
		}
		for i := 0; i < 200; i++ {
			mid := (lo + hi) / 2
			y, _ := Yield(Murphy, 1, mid, 0)
			if y > observedYield {
				lo = mid
			} else {
				hi = mid
			}
		}
		return (lo + hi) / 2, nil
	}
	return 0, fmt.Errorf("yieldmodel: unknown model %v", m)
}
