package fault

import (
	"fmt"
	"sort"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/sim"
)

// TransitionFault is a gross-delay (transition) fault on a gate output:
// slow-to-rise (STR) or slow-to-fall (STF). Under the standard two-pattern
// model, a pair (v1, v2) detects an STR fault at line s iff
//
//  1. v1 sets s to 0 (initialization),
//  2. v2 sets s to 1 and propagates a stuck-at-0 effect at s to an output
//     (launch + capture).
//
// STF is the dual. Consecutive patterns of a test set form the pairs
// (launch-on-capture style for the full-scan combinational core).
type TransitionFault struct {
	Gate       int
	SlowToRise bool
}

// String renders the fault in conventional notation.
func (f TransitionFault) String() string {
	kind := "STF"
	if f.SlowToRise {
		kind = "STR"
	}
	return fmt.Sprintf("g%d/%s", f.Gate, kind)
}

// Name renders the fault with netlist signal names.
func (f TransitionFault) Name(n *circuit.Netlist) string {
	kind := "STF"
	if f.SlowToRise {
		kind = "STR"
	}
	return fmt.Sprintf("%s/%s", n.Gates[f.Gate].Name, kind)
}

// TransitionUniverse enumerates both transition faults on every gate
// output (including primary inputs, whose transitions exercise input
// paths).
func TransitionUniverse(n *circuit.Netlist) []TransitionFault {
	out := make([]TransitionFault, 0, 2*len(n.Gates))
	for _, g := range n.Gates {
		out = append(out,
			TransitionFault{Gate: g.ID, SlowToRise: true},
			TransitionFault{Gate: g.ID, SlowToRise: false},
		)
	}
	return out
}

// TransitionResult reports two-pattern fault simulation.
type TransitionResult struct {
	Total      int
	Detected   int
	DetectedBy []int // per fault: index k of the first detecting pair (k, k+1); -1 if undetected
	Coverage   float64
}

// SimulateTransitions runs two-pattern transition-fault simulation over all
// consecutive pattern pairs of the set with the default worker count.
func SimulateTransitions(n *circuit.Netlist, p *logic.PatternSet, faults []TransitionFault) (*TransitionResult, error) {
	return SimulateTransitionsWords(n, p, faults, 0, 1)
}

// SimulateTransitionsWorkers is SimulateTransitionsWords with single-word
// (W=1) dictionary simulators.
func SimulateTransitionsWorkers(n *circuit.Netlist, p *logic.PatternSet, faults []TransitionFault, workers int) (*TransitionResult, error) {
	return SimulateTransitionsWords(n, p, faults, workers, 1)
}

// SimulateTransitionsWords runs two-pattern transition-fault simulation
// over all consecutive pattern pairs of the set. It composes the existing
// engines: good-value simulation supplies the initialization condition, and
// the stuck-at dictionary (built block-sharded across workers with
// words-wide simulators; bit-identical for any count and width, <= 0
// workers selects GOMAXPROCS) supplies launch/propagation, so the result
// provably matches the two-pattern definition above.
func SimulateTransitionsWords(n *circuit.Netlist, p *logic.PatternSet, faults []TransitionFault, workers, words int) (*TransitionResult, error) {
	if p.N < 2 {
		return &TransitionResult{Total: len(faults), DetectedBy: fillNeg(len(faults))}, nil
	}
	// Compile once; the good-value simulator here and the word-sharded
	// dictionary workers below all read the same immutable IR.
	c, err := n.Compiled()
	if err != nil {
		return nil, err
	}
	gsim := sim.NewCompiled(c)
	// Good value of every gate for every pattern, bit-sliced.
	nWords := p.Words()
	vals := make([][]logic.Word, len(n.Gates))
	for g := range vals {
		vals[g] = make([]logic.Word, nWords)
	}
	pi := make([]logic.Word, len(n.PIs))
	for w := 0; w < nWords; w++ {
		for i := range pi {
			pi[i] = p.Bits[i][w]
		}
		block := gsim.Block(pi)
		mask := p.TailMask(w)
		for g := range vals {
			vals[g][w] = block[g] & mask
		}
	}
	getVal := func(gate, k int) bool {
		return vals[gate][k/logic.WordBits]>>(uint(k)%logic.WordBits)&1 == 1
	}

	// Stuck-at stem dictionary for the gates that carry transition faults,
	// in deterministic gate order.
	needGate := map[int]bool{}
	for _, tf := range faults {
		needGate[tf.Gate] = true
	}
	gates := make([]int, 0, len(needGate))
	for g := range needGate {
		gates = append(gates, g)
	}
	sort.Ints(gates)
	var stuck []Fault
	stuckIdx := map[Fault]int{}
	for _, g := range gates {
		for _, sa := range []uint8{0, 1} {
			f := Fault{Gate: g, Pin: -1, SA: sa}
			stuckIdx[f] = len(stuck)
			stuck = append(stuck, f)
		}
	}
	dict, err := DictionaryConcurrentWords(n, p, stuck, workers, words)
	if err != nil {
		return nil, err
	}
	stuckDetected := func(gate int, sa uint8, k int) bool {
		sg := dict[stuckIdx[Fault{Gate: gate, Pin: -1, SA: sa}]]
		w, b := k/logic.WordBits, uint(k%logic.WordBits)
		for o := range sg.Bits {
			if sg.Bits[o][w]>>b&1 == 1 {
				return true
			}
		}
		return false
	}

	res := &TransitionResult{Total: len(faults), DetectedBy: fillNeg(len(faults))}
	for fi, tf := range faults {
		for k := 0; k+1 < p.N; k++ {
			v1 := getVal(tf.Gate, k)
			if v1 == tf.SlowToRise {
				continue // initialization not satisfied (STR needs v1=0)
			}
			// Launch/capture: the slow line behaves stuck at its old value.
			sa := uint8(1)
			if tf.SlowToRise {
				sa = 0
			}
			if stuckDetected(tf.Gate, sa, k+1) {
				res.DetectedBy[fi] = k
				res.Detected++
				break
			}
		}
	}
	if res.Total > 0 {
		res.Coverage = float64(res.Detected) / float64(res.Total)
	}
	return res, nil
}

func fillNeg(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = -1
	}
	return out
}
