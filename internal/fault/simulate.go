package fault

import (
	"fmt"
	"math/bits"
	"slices"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/sim"
)

// Simulator performs serial-fault, parallel-pattern stuck-at fault
// simulation (PPSFP): the good circuit is simulated once per 64-pattern
// block, then each live fault is injected and its structural fanout cone
// re-evaluated event-driven — only gates reached by a live fault effect are
// touched, and injection terminates as soon as the effect dies (every
// faulty word equals its good word and nothing downstream can differ).
// A fault is detected when any primary output differs from the good value
// in any pattern bit.
type Simulator struct {
	Net    *circuit.Netlist
	good   *sim.Simulator
	cones  [][]int32    // per gate ID: fanout cone in topological order (incl. the gate)
	poIdx  []int32      // gate ID -> index in Net.POs, -1 when not a PO
	fval   []logic.Word // scratch: faulty values, valid where stamp[id] == epoch
	tpos   []int32      // gate ID -> topological position
	topoID []int32      // topological position -> gate ID (inverse of tpos)
	stamp  []uint64     // per gate: epoch at which fval was written with a differing word
	visit  []uint64     // per gate: cone-construction visited stamp
	epoch  uint64       // current detectWord epoch
	vepoch uint64       // current cone-construction epoch
	stack  []int32      // cone-construction scratch
	posBuf []int32      // cone-construction scratch (topological positions)
}

// NewSimulator compiles a fault simulator for the netlist.
func NewSimulator(n *circuit.Netlist) (*Simulator, error) {
	gs, err := sim.New(n)
	if err != nil {
		return nil, err
	}
	fs := &Simulator{
		Net:    n,
		good:   gs,
		cones:  make([][]int32, len(n.Gates)),
		poIdx:  make([]int32, len(n.Gates)),
		fval:   make([]logic.Word, len(n.Gates)),
		tpos:   make([]int32, len(n.Gates)),
		topoID: make([]int32, len(n.Gates)),
		stamp:  make([]uint64, len(n.Gates)),
		visit:  make([]uint64, len(n.Gates)),
	}
	for i, id := range n.TopoOrder() {
		fs.tpos[id] = int32(i)
		fs.topoID[i] = int32(id)
	}
	for i := range fs.poIdx {
		fs.poIdx[i] = -1
	}
	for i, po := range n.POs {
		fs.poIdx[po] = int32(i)
	}
	return fs, nil
}

// cone returns the fanout cone of gate id (including id), in topological
// order, computing and caching it on first use. Membership is tracked with
// an epoch-stamped visited array (no map) and the topological order is
// recovered by sorting the precomputed positions and mapping them back
// through the inverse topological table (no comparator closure).
func (s *Simulator) cone(id int) []int32 {
	if s.cones[id] != nil {
		return s.cones[id]
	}
	s.vepoch++
	ve := s.vepoch
	s.visit[id] = ve
	stack := append(s.stack[:0], int32(id))
	pos := s.posBuf[:0]
	for len(stack) > 0 {
		g := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		pos = append(pos, s.tpos[g])
		for _, fo := range s.Net.Gates[g].Fanout {
			if s.visit[fo] != ve {
				s.visit[fo] = ve
				stack = append(stack, int32(fo))
			}
		}
	}
	slices.Sort(pos)
	cone := make([]int32, len(pos))
	for i, tp := range pos {
		cone[i] = s.topoID[tp]
	}
	s.stack, s.posBuf = stack, pos // keep grown scratch capacity
	s.cones[id] = cone
	return cone
}

// detectWord simulates fault f against the good values currently held in
// s.good (from the last Block call) and returns the word of pattern bits
// where any faulty primary output differs. When perPO is non-nil the
// difference word of each PO index is OR-accumulated into it.
//
// The walk is event-driven: the cone is topologically ordered, so a gate is
// evaluated only when one of its fanins carries a fault effect (stamped this
// epoch with a word differing from the good value). maxReach tracks the
// furthest topological position any live effect can still influence; once
// the walk passes it the effect has provably died and the remaining cone is
// skipped.
func (s *Simulator) detectWord(f Fault, mask logic.Word, perPO []logic.Word) logic.Word {
	n := s.Net
	site := f.Gate
	var force logic.Word
	if f.SA == 1 {
		force = ^logic.Word(0)
	}
	var faninBuf [8]logic.Word
	var diff logic.Word
	cone := s.cone(site)
	good := s.good.Values()
	s.epoch++
	ep := s.epoch
	maxReach := int32(-1)
	for ci, id32 := range cone {
		id := int(id32)
		isSite := ci == 0
		if !isSite && s.tpos[id32] > maxReach {
			break // fault effect died: nothing stamped feeds this or any later gate
		}
		g := n.Gates[id]
		var v logic.Word
		if isSite && f.Pin < 0 {
			// Output (stem) fault on the site gate itself.
			v = force
		} else {
			needs := isSite // input-branch site always re-evaluates
			if !needs {
				for _, fi := range g.Fanin {
					if s.stamp[fi] == ep {
						needs = true
						break
					}
				}
			}
			if !needs {
				continue
			}
			in := faninBuf[:0]
			for pin, fi := range g.Fanin {
				var w logic.Word
				if isSite && pin == f.Pin {
					w = force // input branch fault
				} else if s.stamp[fi] == ep {
					w = s.fval[fi]
				} else {
					w = good[fi]
				}
				in = append(in, w)
			}
			if g.Type == circuit.Input || g.Type == circuit.DFF {
				v = good[id] // PIs unchanged unless stem-faulted
			} else {
				v = sim.Eval(g.Type, in)
			}
		}
		d := v ^ good[id]
		if d == 0 {
			continue // faulty equals good: no event; consumers read the good word
		}
		s.fval[id] = v
		s.stamp[id] = ep
		for _, fo := range g.Fanout {
			if tp := s.tpos[fo]; tp > maxReach {
				maxReach = tp
			}
		}
		if pi := s.poIdx[id]; pi >= 0 {
			dm := d & mask
			if dm != 0 && perPO != nil {
				perPO[pi] |= dm
			}
			diff |= dm
		}
	}
	return diff
}

// Result summarizes a fault simulation run.
type Result struct {
	Total      int
	Detected   int
	DetectedBy []int // per fault: index of first detecting pattern, -1 if undetected
	Coverage   float64
}

// Run fault-simulates the pattern set against the fault list with fault
// dropping and returns detection results. Faults are not mutated.
func (s *Simulator) Run(p *logic.PatternSet, faults []Fault) *Result {
	if p.Inputs != len(s.Net.PIs) {
		panic(fmt.Sprintf("fault: pattern width %d != PIs %d", p.Inputs, len(s.Net.PIs)))
	}
	res := &Result{Total: len(faults), DetectedBy: make([]int, len(faults))}
	for i := range res.DetectedBy {
		res.DetectedBy[i] = -1
	}
	live := make([]int, len(faults))
	for i := range live {
		live[i] = i
	}
	pi := make([]logic.Word, len(s.Net.PIs))
	words := p.Words()
	for w := 0; w < words && len(live) > 0; w++ {
		for i := range pi {
			pi[i] = p.Bits[i][w]
		}
		s.good.Block(pi)
		mask := p.TailMask(w)
		kept := live[:0]
		for _, fi := range live {
			diff := s.detectWord(faults[fi], mask, nil)
			if diff != 0 {
				// First detecting pattern = lowest set bit.
				res.DetectedBy[fi] = w*logic.WordBits + bits.TrailingZeros64(diff)
				res.Detected++
			} else {
				kept = append(kept, fi)
			}
		}
		live = kept
	}
	if res.Total > 0 {
		res.Coverage = float64(res.Detected) / float64(res.Total)
	}
	return res
}

// RunSerial is the baseline used by experiment T7: identical algorithm but
// patterns are applied one at a time (one valid bit per word), forgoing the
// 64-way parallelism. Fault dropping is still applied.
func (s *Simulator) RunSerial(p *logic.PatternSet, faults []Fault) *Result {
	res := &Result{Total: len(faults), DetectedBy: make([]int, len(faults))}
	for i := range res.DetectedBy {
		res.DetectedBy[i] = -1
	}
	live := make([]int, len(faults))
	for i := range live {
		live[i] = i
	}
	pi := make([]logic.Word, len(s.Net.PIs))
	for k := 0; k < p.N && len(live) > 0; k++ {
		for i := range pi {
			if p.Get(k, i) {
				pi[i] = 1
			} else {
				pi[i] = 0
			}
		}
		s.good.Block(pi)
		kept := live[:0]
		for _, fi := range live {
			if s.detectWord(faults[fi], 1, nil) != 0 {
				res.DetectedBy[fi] = k
				res.Detected++
			} else {
				kept = append(kept, fi)
			}
		}
		live = kept
	}
	if res.Total > 0 {
		res.Coverage = float64(res.Detected) / float64(res.Total)
	}
	return res
}

// Signature is a fault's full pass/fail dictionary entry: for each pattern
// word and each PO, the bits where the faulty circuit differs from the good
// circuit. Bits[po][word].
type Signature struct {
	Bits [][]logic.Word
}

// FailBits returns the total number of (pattern, PO) failure coordinates.
func (sg *Signature) FailBits() int {
	c := 0
	for _, ws := range sg.Bits {
		for _, w := range ws {
			c += logic.PopCount(w)
		}
	}
	return c
}

// newSignatures allocates the signature matrix for faults × POs × words in
// one backing slice.
func newSignatures(nFaults, nPOs, words int) []*Signature {
	sigs := make([]*Signature, nFaults)
	backing := make([]logic.Word, nFaults*nPOs*words)
	for i := range sigs {
		sigs[i] = &Signature{Bits: make([][]logic.Word, nPOs)}
		for o := range sigs[i].Bits {
			sigs[i].Bits[o], backing = backing[:words:words], backing[words:]
		}
	}
	return sigs
}

// dictionaryWord fills column w of the signature matrix: it simulates the
// good circuit for pattern word w and injects every fault. Signatures must
// have been allocated for the full word range; distinct words touch
// disjoint storage, which is what makes DictionaryConcurrent's word-sharded
// merge bit-identical to the serial run.
func (s *Simulator) dictionaryWord(p *logic.PatternSet, faults []Fault, w int, sigs []*Signature, pi, perPO []logic.Word) {
	for i := range pi {
		pi[i] = p.Bits[i][w]
	}
	s.good.Block(pi)
	mask := p.TailMask(w)
	for fi := range faults {
		for o := range perPO {
			perPO[o] = 0
		}
		s.detectWord(faults[fi], mask, perPO)
		for o := range perPO {
			sigs[fi].Bits[o][w] = perPO[o]
		}
	}
}

// Dictionary fault-simulates without dropping and returns every fault's
// full failure signature — the input to fault diagnosis.
func (s *Simulator) Dictionary(p *logic.PatternSet, faults []Fault) []*Signature {
	words := p.Words()
	sigs := newSignatures(len(faults), len(s.Net.POs), words)
	pi := make([]logic.Word, len(s.Net.PIs))
	perPO := make([]logic.Word, len(s.Net.POs))
	for w := 0; w < words; w++ {
		s.dictionaryWord(p, faults, w, sigs, pi, perPO)
	}
	return sigs
}
