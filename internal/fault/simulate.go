package fault

import (
	"fmt"
	"sort"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/sim"
)

// Simulator performs serial-fault, parallel-pattern stuck-at fault
// simulation (PPSFP): the good circuit is simulated once per 64-pattern
// block, then each live fault is injected and only its structural fanout
// cone re-evaluated; a fault is detected when any primary output differs
// from the good value in any pattern bit.
type Simulator struct {
	Net   *circuit.Netlist
	good  *sim.Simulator
	cones [][]int      // per gate ID: fanout cone in topological order (incl. the gate)
	isPO  []bool       // per gate ID
	fval  []logic.Word // scratch: faulty values
	tpos  []int        // gate ID -> topological position
}

// NewSimulator compiles a fault simulator for the netlist.
func NewSimulator(n *circuit.Netlist) (*Simulator, error) {
	gs, err := sim.New(n)
	if err != nil {
		return nil, err
	}
	fs := &Simulator{
		Net:   n,
		good:  gs,
		cones: make([][]int, len(n.Gates)),
		isPO:  make([]bool, len(n.Gates)),
		fval:  make([]logic.Word, len(n.Gates)),
		tpos:  make([]int, len(n.Gates)),
	}
	for i, id := range n.TopoOrder() {
		fs.tpos[id] = i
	}
	for _, po := range n.POs {
		fs.isPO[po] = true
	}
	return fs, nil
}

// cone returns the fanout cone of gate id (including id), in topological
// order, computing and caching it on first use.
func (s *Simulator) cone(id int) []int {
	if s.cones[id] != nil {
		return s.cones[id]
	}
	seen := map[int]bool{id: true}
	stack := []int{id}
	var cone []int
	for len(stack) > 0 {
		g := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		cone = append(cone, g)
		for _, fo := range s.Net.Gates[g].Fanout {
			if !seen[fo] {
				seen[fo] = true
				stack = append(stack, fo)
			}
		}
	}
	sort.Slice(cone, func(i, j int) bool { return s.tpos[cone[i]] < s.tpos[cone[j]] })
	s.cones[id] = cone
	return cone
}

// detectWord simulates fault f against the good values currently held in
// s.good (from the last Block call) and returns, for each PO index, the word
// of pattern bits where the faulty response differs. The aggregate OR of
// all PO difference words is returned as well.
func (s *Simulator) detectWord(f Fault, mask logic.Word, perPO []logic.Word) logic.Word {
	n := s.Net
	site := f.Gate
	var force logic.Word
	if f.SA == 1 {
		force = ^logic.Word(0)
	}
	var faninBuf [8]logic.Word
	var diff logic.Word
	cone := s.cone(site)
	// Evaluate the cone with faulty values. Gates outside the cone keep
	// good values; s.fval is lazily filled per cone member.
	for ci, id := range cone {
		g := n.Gates[id]
		var v logic.Word
		if ci == 0 && f.Pin < 0 {
			// Output (stem) fault on the site gate itself.
			v = force
		} else {
			in := faninBuf[:0]
			for pin, fi := range g.Fanin {
				var w logic.Word
				if id == site && pin == f.Pin {
					w = force // input branch fault
				} else if s.inCone(cone, ci, fi) {
					w = s.fval[fi]
				} else {
					w = s.good.Value(fi)
				}
				in = append(in, w)
			}
			if g.Type == circuit.Input || g.Type == circuit.DFF {
				v = s.good.Value(id) // PIs unchanged unless stem-faulted
			} else {
				v = sim.Eval(g.Type, in)
			}
			if id == site && f.Pin < 0 {
				v = force
			}
		}
		s.fval[id] = v
		if s.isPO[id] {
			d := (v ^ s.good.Value(id)) & mask
			if d != 0 && perPO != nil {
				for poIdx, po := range n.POs {
					if po == id {
						perPO[poIdx] |= d
					}
				}
			}
			diff |= d
		}
	}
	return diff
}

// inCone reports whether gate fi appears in cone before position ci. Cones
// are topologically sorted, so any fanin inside the cone appears earlier;
// a simple backward scan is cheap because cones are small relative to the
// netlist and fanins are near their consumers.
func (s *Simulator) inCone(cone []int, ci, fi int) bool {
	for k := ci - 1; k >= 0; k-- {
		if cone[k] == fi {
			return true
		}
		// Early exit: cone is topologically ordered, so once we pass below
		// fi's topological position the fanin cannot appear.
		if s.tpos[cone[k]] < s.tpos[fi] {
			return false
		}
	}
	return false
}

// Result summarizes a fault simulation run.
type Result struct {
	Total      int
	Detected   int
	DetectedBy []int // per fault: index of first detecting pattern, -1 if undetected
	Coverage   float64
}

// Run fault-simulates the pattern set against the fault list with fault
// dropping and returns detection results. Faults are not mutated.
func (s *Simulator) Run(p *logic.PatternSet, faults []Fault) *Result {
	if p.Inputs != len(s.Net.PIs) {
		panic(fmt.Sprintf("fault: pattern width %d != PIs %d", p.Inputs, len(s.Net.PIs)))
	}
	res := &Result{Total: len(faults), DetectedBy: make([]int, len(faults))}
	for i := range res.DetectedBy {
		res.DetectedBy[i] = -1
	}
	live := make([]int, len(faults))
	for i := range live {
		live[i] = i
	}
	pi := make([]logic.Word, len(s.Net.PIs))
	words := p.Words()
	for w := 0; w < words && len(live) > 0; w++ {
		for i := range pi {
			pi[i] = p.Bits[i][w]
		}
		s.good.Block(pi)
		mask := p.TailMask(w)
		kept := live[:0]
		for _, fi := range live {
			diff := s.detectWord(faults[fi], mask, nil)
			if diff != 0 {
				// First detecting pattern = lowest set bit.
				bit := 0
				for diff&1 == 0 {
					diff >>= 1
					bit++
				}
				res.DetectedBy[fi] = w*logic.WordBits + bit
				res.Detected++
			} else {
				kept = append(kept, fi)
			}
		}
		live = kept
	}
	if res.Total > 0 {
		res.Coverage = float64(res.Detected) / float64(res.Total)
	}
	return res
}

// RunSerial is the baseline used by experiment T7: identical algorithm but
// patterns are applied one at a time (one valid bit per word), forgoing the
// 64-way parallelism. Fault dropping is still applied.
func (s *Simulator) RunSerial(p *logic.PatternSet, faults []Fault) *Result {
	res := &Result{Total: len(faults), DetectedBy: make([]int, len(faults))}
	for i := range res.DetectedBy {
		res.DetectedBy[i] = -1
	}
	live := make([]int, len(faults))
	for i := range live {
		live[i] = i
	}
	pi := make([]logic.Word, len(s.Net.PIs))
	for k := 0; k < p.N && len(live) > 0; k++ {
		for i := range pi {
			if p.Get(k, i) {
				pi[i] = 1
			} else {
				pi[i] = 0
			}
		}
		s.good.Block(pi)
		kept := live[:0]
		for _, fi := range live {
			if s.detectWord(faults[fi], 1, nil) != 0 {
				res.DetectedBy[fi] = k
				res.Detected++
			} else {
				kept = append(kept, fi)
			}
		}
		live = kept
	}
	if res.Total > 0 {
		res.Coverage = float64(res.Detected) / float64(res.Total)
	}
	return res
}

// Signature is a fault's full pass/fail dictionary entry: for each pattern
// word and each PO, the bits where the faulty circuit differs from the good
// circuit. Bits[po][word].
type Signature struct {
	Bits [][]logic.Word
}

// FailBits returns the total number of (pattern, PO) failure coordinates.
func (sg *Signature) FailBits() int {
	c := 0
	for _, ws := range sg.Bits {
		for _, w := range ws {
			c += logic.PopCount(w)
		}
	}
	return c
}

// Dictionary fault-simulates without dropping and returns every fault's
// full failure signature — the input to fault diagnosis.
func (s *Simulator) Dictionary(p *logic.PatternSet, faults []Fault) []*Signature {
	words := p.Words()
	sigs := make([]*Signature, len(faults))
	for i := range sigs {
		sigs[i] = &Signature{Bits: make([][]logic.Word, len(s.Net.POs))}
		for o := range sigs[i].Bits {
			sigs[i].Bits[o] = make([]logic.Word, words)
		}
	}
	pi := make([]logic.Word, len(s.Net.PIs))
	perPO := make([]logic.Word, len(s.Net.POs))
	for w := 0; w < words; w++ {
		for i := range pi {
			pi[i] = p.Bits[i][w]
		}
		s.good.Block(pi)
		mask := p.TailMask(w)
		for fi := range faults {
			for o := range perPO {
				perPO[o] = 0
			}
			s.detectWord(faults[fi], mask, perPO)
			for o := range perPO {
				sigs[fi].Bits[o][w] = perPO[o]
			}
		}
	}
	return sigs
}
