package fault

import (
	"fmt"
	"math/bits"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/sim"
)

// MaxWords is the largest supported pattern-word packing: a W-word pass
// carries W*64 patterns through every gate evaluation, so a full-width
// engine amortizes one cone walk over up to 512 patterns.
const MaxWords = sim.MaxLanes

// NormalizeWords clamps a Words knob to the supported lane widths
// {1, 2, 4, 8}: values <= 1 select 1, other values round down to the
// nearest supported width, capped at MaxWords. Every engine entry point
// applies it, so callers may thread raw flag values through unchecked.
func NormalizeWords(w int) int {
	switch {
	case w <= 1:
		return 1
	case w < 4:
		return 2
	case w < 8:
		return 4
	default:
		return MaxWords
	}
}

// Simulator performs serial-fault, parallel-pattern stuck-at fault
// simulation (PPSFP): the good circuit is simulated once per pattern block,
// then each live fault is injected and its structural fanout cone
// re-evaluated event-driven — only gates reached by a live fault effect are
// touched, and injection terminates as soon as the effect dies (every
// faulty lane equals its good lane and nothing downstream can differ).
// A fault is detected when any primary output differs from the good value
// in any pattern bit.
//
// The engine packs W = Words() 64-bit pattern words per gate (lanes), so a
// single epoch-stamped cone walk amortizes over up to W*64 patterns. Lanes
// are stored strided — all W words of gate g sit at [g*W : g*W+W] — and the
// live-effect early exit triggers only when every lane has died.
//
// All graph structure (CSR adjacency, topological tables, PO index map)
// lives in the shared immutable circuit.Compiled IR; a Simulator owns only
// its mutable scratch (the good/faulty value lanes, the frontier bitmap and
// the undo log), so per-worker instances over one compiled graph are
// cheap — O(gates) each, independent of circuit depth or cone sizes.
type Simulator struct {
	Net  *circuit.Netlist
	c    *circuit.Compiled
	w    int       // lanes (pattern words) per pass
	good *sim.Wide // good-value lanes; patched in place during a walk, restored after
	// front is the frontier bitmap over topological positions; it is
	// self-clearing, so walks never pay a bulk reset.
	front []uint64
	// undoIdx/undoVal log the value-buffer windows a walk overwrote with
	// faulty lanes, so one short replay restores the good values. Patching
	// in place means gate evaluation reads a single array with no
	// faulty-or-good selection in the hot loop.
	undoIdx []int32
	undoVal []logic.Word
	dirty   []int32 // scratch: PO indices touched by the last detectLanes
	piBuf   []logic.Word

	// Staged-probe state (Stage/Probe): the lane count and tail masks of the
	// pattern set whose good values currently occupy the value lanes, plus
	// the set identity and pattern count for incremental re-staging of
	// append-only sets.
	stagedAct   int
	stagedMasks [MaxWords]logic.Word
	stagedSet   *logic.PatternSet
	stagedN     int
}

// NewSimulator compiles a single-word (W=1) fault simulator for the
// netlist. The compiled IR is cached on the netlist, so repeated calls
// share one graph.
func NewSimulator(n *circuit.Netlist) (*Simulator, error) {
	return NewSimulatorWords(n, 1)
}

// NewSimulatorWords compiles a fault simulator packing words pattern words
// per gate (normalized to {1,2,4,8}).
func NewSimulatorWords(n *circuit.Netlist, words int) (*Simulator, error) {
	c, err := n.Compiled()
	if err != nil {
		return nil, err
	}
	return NewSimulatorCompiledWords(c, words), nil
}

// NewSimulatorCompiled builds a single-word (W=1) fault simulator over an
// already-compiled IR, allocating only the per-instance mutable scratch.
// The concurrent drivers (RunConcurrent, DictionaryConcurrent) use this to
// hand every worker goroutine the same graph.
func NewSimulatorCompiled(c *circuit.Compiled) *Simulator {
	return NewSimulatorCompiledWords(c, 1)
}

// NewSimulatorCompiledWords builds a W-word fault simulator over an
// already-compiled IR. words is normalized to {1,2,4,8}; all widths share
// the IR and its cone cache, so simulators of different widths over one
// graph are cheap.
func NewSimulatorCompiledWords(c *circuit.Compiled, words int) *Simulator {
	w := NormalizeWords(words)
	return &Simulator{
		Net:   c.Net,
		c:     c,
		w:     w,
		good:  sim.NewWideCompiled(c, w),
		front: make([]uint64, (c.NumGates()+63)/64),
	}
}

// Compiled returns the shared immutable IR the simulator reads.
func (s *Simulator) Compiled() *circuit.Compiled { return s.c }

// Words returns the number of 64-bit pattern words packed per pass.
func (s *Simulator) Words() int { return s.w }

// detectWord simulates fault f against lane 0 of the good values currently
// held in s.good and returns the word of pattern bits where any faulty
// primary output differs. When perPO is non-nil the difference word of each
// PO index is OR-accumulated into it at stride Words(). It is the
// single-word view of detectLanes, kept for the serial baseline and the
// oracle tests.
func (s *Simulator) detectWord(f Fault, mask logic.Word, perPO []logic.Word) logic.Word {
	var masks, diff [1]logic.Word
	masks[0] = mask
	s.detectLanes(f, 0, 1, masks[:], diff[:], perPO)
	return diff[0]
}

// detectLanes simulates fault f against the lane window [lo, lo+act) of the
// good values currently held in s.good (from the last Block call). masks and
// diff are window-relative (length act): for every window lane l it
// OR-accumulates the masked PO difference word into diff[l]. When perPO is
// non-nil, per-PO difference lanes are accumulated at perPO[po*W+lo+l] and
// the indices of the touched POs are returned (the caller owns clearing
// them — detectLanes never zeroes perPO).
//
// The walk is event-driven over a frontier bitmap indexed by topological
// position: evaluating a gate whose lanes differ from the good lanes sets
// the bits of its fanouts, and the walk consumes set bits in increasing
// position (fanouts always sit at strictly higher positions, so each gate is
// evaluated at most once, after all of its faulty fanins). Only gates
// actually fed by a live fault effect are ever visited, and the walk
// terminates exactly when the effect has died in every lane — an empty
// frontier is the all-lanes-dead early exit. The bitmap is self-clearing
// (each consumed bit is cleared before its gate is processed), so the
// scratch never needs a bulk reset between faults.
//
// Faulty lanes are patched directly into the good-value buffer and logged
// in the undo list; the walk epilogue replays the log to restore the good
// values. Gate evaluation therefore reads one array with no faulty-or-good
// selection per fanin, which is what keeps the per-event cost flat.
//
// act == 1 takes a specialized scalar path with the gate evaluation fused
// into the fanin loads: the drop-mode Run stages lane 0 of every block
// through it as a cheap filter before packing the surviving lanes into one
// multi-lane walk.
func (s *Simulator) detectLanes(f Fault, lo, act int, masks, diff []logic.Word, perPO []logic.Word) []int32 {
	c := s.c
	W := s.w
	vals := s.good.Values()
	bm := s.front
	dirty := s.dirty[:0]
	undoIdx := s.undoIdx[:0]
	undoVal := s.undoVal[:0]
	var force logic.Word
	if f.SA == 1 {
		force = ^logic.Word(0)
	}
	site := f.Gate
	maxW := -1

	if act == 1 {
		// Scalar fast path: one lane, evaluation fused into the loads.
		mask := masks[0]
		var d0 logic.Word
		sbase := site*W + lo
		var v logic.Word
		if t := c.Types[site]; f.Pin < 0 {
			v = force // stem fault on the site output
		} else if t == circuit.Input || t == circuit.DFF {
			v = vals[sbase] // pseudo-PIs have no evaluable fanin
		} else {
			fanin := c.Fanin(site)
			var faninBuf [maxFanin]logic.Word
			in := faninBuf[:len(fanin)]
			for pin, fi := range fanin {
				if pin == f.Pin {
					in[pin] = force // input-branch fault
				} else {
					in[pin] = vals[int(fi)*W+lo]
				}
			}
			v = sim.Eval(c.Types[site], in)
		}
		if d := v ^ vals[sbase]; d != 0 {
			undoIdx = append(undoIdx, int32(sbase))
			undoVal = append(undoVal, vals[sbase])
			vals[sbase] = v
			for _, fo := range c.Fanout(site) {
				tp := int(c.Tpos[fo])
				bm[tp>>6] |= 1 << uint(tp&63)
				if tw := tp >> 6; tw > maxW {
					maxW = tw
				}
			}
			if po := c.POIdx[site]; po >= 0 {
				if dm := d & mask; dm != 0 {
					d0 |= dm
					if perPO != nil {
						perPO[int(po)*W+lo] |= dm
						dirty = append(dirty, po)
					}
				}
			}
		}
		for w := int(c.Tpos[site]) >> 6; w <= maxW; w++ {
			for bm[w] != 0 {
				b := bits.TrailingZeros64(bm[w])
				bm[w] &^= 1 << uint(b)
				id := int(c.Order[w<<6|b])
				t := c.Types[id]
				fanin := c.Fanin(id)
				var v logic.Word
				switch t {
				case circuit.And, circuit.Nand:
					v = vals[int(fanin[0])*W+lo]
					for _, fi := range fanin[1:] {
						v &= vals[int(fi)*W+lo]
					}
					if t == circuit.Nand {
						v = ^v
					}
				case circuit.Or, circuit.Nor:
					v = vals[int(fanin[0])*W+lo]
					for _, fi := range fanin[1:] {
						v |= vals[int(fi)*W+lo]
					}
					if t == circuit.Nor {
						v = ^v
					}
				case circuit.Xor, circuit.Xnor:
					v = vals[int(fanin[0])*W+lo]
					for _, fi := range fanin[1:] {
						v ^= vals[int(fi)*W+lo]
					}
					if t == circuit.Xnor {
						v = ^v
					}
				case circuit.Not:
					v = ^vals[int(fanin[0])*W+lo]
				case circuit.Buf:
					v = vals[int(fanin[0])*W+lo]
				default:
					continue // pseudo-PI (Input/DFF): immune to fanin changes
				}
				base := id*W + lo
				d := v ^ vals[base]
				if d == 0 {
					continue // effect masked here; consumers read the good lane
				}
				undoIdx = append(undoIdx, int32(base))
				undoVal = append(undoVal, vals[base])
				vals[base] = v
				for _, fo := range c.Fanout(id) {
					tp := int(c.Tpos[fo])
					bm[tp>>6] |= 1 << uint(tp&63)
					if tw := tp >> 6; tw > maxW {
						maxW = tw
					}
				}
				if po := c.POIdx[id]; po >= 0 {
					if dm := d & mask; dm != 0 {
						d0 |= dm
						if perPO != nil {
							perPO[int(po)*W+lo] |= dm
							dirty = append(dirty, po)
						}
					}
				}
			}
		}
		diff[0] = d0
		for k, bi := range undoIdx {
			vals[bi] = undoVal[k]
		}
		s.undoIdx, s.undoVal = undoIdx, undoVal
		s.dirty = dirty
		return dirty
	}

	// Multi-lane path: lanes of a gate are contiguous in the strided
	// buffer, so gathers and undo snapshots are plain copies.
	var faninBuf [maxFanin * MaxWords]logic.Word
	var vbuf, dbuf [MaxWords]logic.Word
	sbase := site*W + lo
	v := vbuf[:act]
	if t := c.Types[site]; f.Pin < 0 {
		for l := 0; l < act; l++ {
			v[l] = force
		}
	} else if t == circuit.Input || t == circuit.DFF {
		copy(v, vals[sbase:sbase+act])
	} else {
		fanin := c.Fanin(site)
		in := faninBuf[:len(fanin)*act]
		for pin, fi := range fanin {
			ib := pin * act
			if pin == f.Pin {
				for l := 0; l < act; l++ {
					in[ib+l] = force
				}
			} else {
				fb := int(fi)*W + lo
				copy(in[ib:ib+act], vals[fb:fb+act])
			}
		}
		sim.EvalLanes(c.Types[site], in, len(fanin), act, v)
	}
	commit := func(id, base int, v []logic.Word) {
		var any logic.Word
		d := dbuf[:act]
		gw := vals[base : base+act]
		for l := 0; l < act; l++ {
			dl := v[l] ^ gw[l]
			d[l] = dl
			any |= dl
		}
		if any == 0 {
			return
		}
		undoIdx = append(undoIdx, int32(base))
		undoVal = append(undoVal, gw...)
		copy(gw, v)
		for _, fo := range c.Fanout(id) {
			tp := int(c.Tpos[fo])
			bm[tp>>6] |= 1 << uint(tp&63)
			if tw := tp >> 6; tw > maxW {
				maxW = tw
			}
		}
		if po := c.POIdx[id]; po >= 0 {
			var anyMasked logic.Word
			for l := 0; l < act; l++ {
				dm := d[l] & masks[l]
				d[l] = dm
				anyMasked |= dm
			}
			if anyMasked == 0 {
				return
			}
			for l := 0; l < act; l++ {
				diff[l] |= d[l]
			}
			if perPO != nil {
				pb := int(po)*W + lo
				for l := 0; l < act; l++ {
					perPO[pb+l] |= d[l]
				}
				dirty = append(dirty, po)
			}
		}
	}
	commit(site, sbase, v)
	for w := int(c.Tpos[site]) >> 6; w <= maxW; w++ {
		for bm[w] != 0 {
			b := bits.TrailingZeros64(bm[w])
			bm[w] &^= 1 << uint(b)
			id := int(c.Order[w<<6|b])
			t := c.Types[id]
			if t == circuit.Input || t == circuit.DFF {
				continue
			}
			fanin := c.Fanin(id)
			in := faninBuf[:len(fanin)*act]
			for pin, fi := range fanin {
				fb := int(fi)*W + lo
				copy(in[pin*act:pin*act+act], vals[fb:fb+act])
			}
			v := vbuf[:act]
			sim.EvalLanes(t, in, len(fanin), act, v)
			commit(id, id*W+lo, v)
		}
	}
	for k, bi := range undoIdx {
		copy(vals[bi:int(bi)+act], undoVal[k*act:(k+1)*act])
	}
	s.undoIdx, s.undoVal = undoIdx, undoVal
	s.dirty = dirty
	return dirty
}

// maxFanin bounds the per-gate fanin scratch of the hot loop; it matches
// the single-word engine's historical faninBuf bound.
const maxFanin = 8

// Result summarizes a fault simulation run.
type Result struct {
	Total      int
	Detected   int
	DetectedBy []int // per fault: index of first detecting pattern, -1 if undetected
	Coverage   float64
}

// Run fault-simulates the pattern set against the fault list with fault
// dropping and returns detection results. Faults are not mutated. The
// pattern words are processed Words() lanes at a time, with the good-value
// simulation amortized over the whole block. Within a block, lane 0 is
// staged first through the scalar walk: on random patterns the majority of
// detectable faults fall in the first 64 patterns, and a detected fault
// never needs its remaining lanes, so the cheap lane filters the fault list
// before one packed multi-lane walk covers lanes 1..act-1 for the
// survivors — the faults that were going to need every lane anyway.
// Detection indices and coverage are bit-identical for every lane width.
func (s *Simulator) Run(p *logic.PatternSet, faults []Fault) *Result {
	res := &Result{Total: len(faults), DetectedBy: make([]int, len(faults))}
	res.Detected = s.RunInto(p, faults, res.DetectedBy, nil)
	if res.Total > 0 {
		res.Coverage = float64(res.Detected) / float64(res.Total)
	}
	return res
}

// RunInto is the allocation-free core of Run, for callers that drop pattern
// blocks in a hot loop (the ATPG flow runs one per deterministic block and
// one per compaction block): detBy must have length len(faults) and receives
// each fault's first-detection pattern index (-1 if undetected); liveBuf is
// an optional worklist scratch buffer reused across calls (grown as needed).
// Returns the number of detected faults. Results are identical to Run for
// any lane width.
func (s *Simulator) RunInto(p *logic.PatternSet, faults []Fault, detBy []int, liveBuf []int) int {
	if p.Inputs != len(s.Net.PIs) {
		panic(fmt.Sprintf("fault: pattern width %d != PIs %d", p.Inputs, len(s.Net.PIs)))
	}
	if len(detBy) != len(faults) {
		panic(fmt.Sprintf("fault: detBy length %d != faults %d", len(detBy), len(faults)))
	}
	s.stagedAct = 0 // the group loop below clobbers the staged good values
	detected := 0
	for i := range detBy {
		detBy[i] = -1
	}
	live := liveBuf[:0]
	for i := range faults {
		live = append(live, i)
	}
	W := s.w
	if need := len(s.Net.PIs) * W; cap(s.piBuf) < need {
		s.piBuf = make([]logic.Word, need)
	}
	pi := s.piBuf[:len(s.Net.PIs)*W]
	var masks, diff [MaxWords]logic.Word
	words := p.Words()
	for base := 0; base < words && len(live) > 0; base += W {
		act := W
		if rem := words - base; rem < act {
			act = rem
		}
		for i := range s.Net.PIs {
			pb := i * W
			for l := 0; l < act; l++ {
				pi[pb+l] = p.Bits[i][base+l]
			}
		}
		s.good.Block(pi, act)
		for l := 0; l < act; l++ {
			masks[l] = p.TailMask(base + l)
		}
		// Stage 1: lane 0 as a scalar filter.
		kept := live[:0]
		for _, fi := range live {
			diff[0] = 0
			s.detectLanes(faults[fi], 0, 1, masks[:1], diff[:1], nil)
			if diff[0] != 0 {
				detBy[fi] = base*logic.WordBits + bits.TrailingZeros64(diff[0])
				detected++
			} else {
				kept = append(kept, fi)
			}
		}
		live = kept
		// Stage 2: one packed walk over the remaining lanes for survivors.
		if act > 1 && len(live) > 0 {
			kept = live[:0]
			for _, fi := range live {
				for l := 1; l < act; l++ {
					diff[l] = 0
				}
				s.detectLanes(faults[fi], 1, act-1, masks[1:act], diff[1:act], nil)
				det := -1
				for l := 1; l < act; l++ {
					if diff[l] != 0 {
						// First detecting pattern = lowest set bit of the first live lane.
						det = (base+l)*logic.WordBits + bits.TrailingZeros64(diff[l])
						break
					}
				}
				if det >= 0 {
					detBy[fi] = det
					detected++
				} else {
					kept = append(kept, fi)
				}
			}
			live = kept
		}
	}
	return detected
}

// Stage loads the good-circuit response of every pattern in p into the
// value lanes, preparing the simulator for Probe queries against a frozen
// pattern set. The set must fit one lane group (p.Words() <= Words()) and be
// non-empty. Staging pays the good simulation once; each subsequent Probe
// is a single event-driven cone walk, which is what makes per-fault
// liveness queries against a pending pattern block cheap.
//
// Re-staging the same set is incremental: if p is the set staged last time
// and has only grown since (append-only — the caller must not mutate or
// reset-and-refill a staged set between Stages), only the lane words that
// gained patterns are re-simulated, so staging after each append costs one
// single-lane pass instead of a full-width one. Any Run/RunInto/Dictionary
// call invalidates the staging; the next Stage pays the full pass again.
func (s *Simulator) Stage(p *logic.PatternSet) {
	if p.Inputs != len(s.Net.PIs) {
		panic(fmt.Sprintf("fault: pattern width %d != PIs %d", p.Inputs, len(s.Net.PIs)))
	}
	words := p.Words()
	if words == 0 || words > s.w {
		panic(fmt.Sprintf("fault: Stage needs 1..%d pattern words, got %d", s.w, words))
	}
	lo := 0
	if s.stagedAct > 0 && s.stagedSet == p && p.N >= s.stagedN {
		if p.N == s.stagedN {
			return // nothing appended since the last Stage
		}
		lo = s.stagedN / logic.WordBits // first lane word with new bits
	}
	W := s.w
	if need := len(s.Net.PIs) * W; cap(s.piBuf) < need {
		s.piBuf = make([]logic.Word, need)
	}
	pi := s.piBuf[:len(s.Net.PIs)*W]
	for i := range s.Net.PIs {
		pb := i * W
		for l := lo; l < words; l++ {
			pi[pb+l] = p.Bits[i][l]
		}
	}
	s.good.BlockRange(pi, lo, words)
	s.stagedAct = words
	s.stagedSet = p
	s.stagedN = p.N
	for l := 0; l < words; l++ {
		s.stagedMasks[l] = p.TailMask(l)
	}
}

// Probe reports whether fault f is detected by any pattern of the staged
// set (see Stage). Results are identical to a RunInto call over the same
// set and the single fault.
func (s *Simulator) Probe(f Fault) bool {
	act := s.stagedAct
	if act == 0 {
		panic("fault: Probe without Stage")
	}
	var diff [MaxWords]logic.Word
	s.detectLanes(f, 0, act, s.stagedMasks[:act], diff[:act], nil)
	for l := 0; l < act; l++ {
		if diff[l] != 0 {
			return true
		}
	}
	return false
}

// RunSerial is the baseline used by experiment T7: identical algorithm but
// patterns are applied one at a time (one valid bit per word, one lane),
// forgoing both the 64-way and the multi-word parallelism. Fault dropping
// is still applied.
func (s *Simulator) RunSerial(p *logic.PatternSet, faults []Fault) *Result {
	s.stagedAct = 0
	res := &Result{Total: len(faults), DetectedBy: make([]int, len(faults))}
	for i := range res.DetectedBy {
		res.DetectedBy[i] = -1
	}
	live := make([]int, len(faults))
	for i := range live {
		live[i] = i
	}
	W := s.w
	pi := make([]logic.Word, len(s.Net.PIs)*W)
	for k := 0; k < p.N && len(live) > 0; k++ {
		for i := range pi {
			pi[i] = 0
		}
		for i := range s.Net.PIs {
			if p.Get(k, i) {
				pi[i*W] = 1
			}
		}
		s.good.Block(pi, 1)
		kept := live[:0]
		for _, fi := range live {
			if s.detectWord(faults[fi], 1, nil) != 0 {
				res.DetectedBy[fi] = k
				res.Detected++
			} else {
				kept = append(kept, fi)
			}
		}
		live = kept
	}
	if res.Total > 0 {
		res.Coverage = float64(res.Detected) / float64(res.Total)
	}
	return res
}

// Signature is a fault's full pass/fail dictionary entry: for each pattern
// word and each PO, the bits where the faulty circuit differs from the good
// circuit. Bits[po][word].
type Signature struct {
	Bits [][]logic.Word
}

// FailBits returns the total number of (pattern, PO) failure coordinates.
func (sg *Signature) FailBits() int {
	c := 0
	for _, ws := range sg.Bits {
		for _, w := range ws {
			c += logic.PopCount(w)
		}
	}
	return c
}

// NewSignatures allocates the zeroed signature matrix for faults × POs ×
// words in one backing slice — the merge target for dictionary builds that
// fill disjoint column ranges (DictionaryConcurrentWords locally, the
// cluster coordinator across nodes).
func NewSignatures(nFaults, nPOs, words int) []*Signature {
	return newSignatures(nFaults, nPOs, words)
}

// newSignatures allocates the signature matrix for faults × POs × words in
// one backing slice.
func newSignatures(nFaults, nPOs, words int) []*Signature {
	sigs := make([]*Signature, nFaults)
	backing := make([]logic.Word, nFaults*nPOs*words)
	for i := range sigs {
		sigs[i] = &Signature{Bits: make([][]logic.Word, nPOs)}
		for o := range sigs[i].Bits {
			sigs[i].Bits[o], backing = backing[:words:words], backing[words:]
		}
	}
	return sigs
}

// dictionaryBlock fills signature columns base..base+act-1 (act = up to
// Words() lanes): it simulates the good circuit for the block's pattern
// words and injects every fault once, writing all act columns from a single
// cone walk. Signatures must have been allocated (zeroed) for the full word
// range; distinct blocks touch disjoint storage, which is what makes
// DictionaryConcurrent's block-sharded merge bit-identical to the serial
// run. pi and perPO are caller scratch of len(PIs)*W and len(POs)*W; perPO
// must be zero on entry and is left zero on return (only the touched PO
// lanes are written and cleared, so sparse signatures never pay a full
// clear).
func (s *Simulator) dictionaryBlock(p *logic.PatternSet, faults []Fault, base int, sigs []*Signature, pi, perPO []logic.Word) {
	s.stagedAct = 0
	W := s.w
	words := p.Words()
	act := W
	if rem := words - base; rem < act {
		act = rem
	}
	for i := range s.Net.PIs {
		pb := i * W
		for l := 0; l < act; l++ {
			pi[pb+l] = p.Bits[i][base+l]
		}
	}
	s.good.Block(pi, act)
	var masks, diff [MaxWords]logic.Word
	for l := 0; l < act; l++ {
		masks[l] = p.TailMask(base + l)
	}
	for fi := range faults {
		dirty := s.detectLanes(faults[fi], 0, act, masks[:act], diff[:act], perPO)
		for _, po := range dirty {
			pb := int(po) * W
			row := sigs[fi].Bits[po]
			for l := 0; l < act; l++ {
				row[base+l] = perPO[pb+l]
				perPO[pb+l] = 0
			}
		}
		for l := 0; l < act; l++ {
			diff[l] = 0
		}
	}
}

// Dictionary fault-simulates without dropping and returns every fault's
// full failure signature — the input to fault diagnosis. Pattern words are
// filled Words() columns per cone walk; the signatures are bit-identical
// for every lane width.
func (s *Simulator) Dictionary(p *logic.PatternSet, faults []Fault) []*Signature {
	sigs := newSignatures(len(faults), len(s.Net.POs), p.Words())
	s.DictionaryRange(p, faults, 0, p.Words(), sigs)
	return sigs
}

// DictionaryRange fills the signature columns of the pattern-word range
// [lo, hi) for every fault: the shard-sized unit of distributed dictionary
// construction. sigs must have been allocated (zeroed) for the full word
// range of p (NewSignatures); distinct word ranges write disjoint storage,
// so range shards merge bit-identically in any order. lo must be a multiple
// of Words(), and hi must either extend to p.Words() or keep the range a
// whole number of W-blocks — otherwise a block walk would spill columns
// into a neighboring shard, and the call panics instead.
func (s *Simulator) DictionaryRange(p *logic.PatternSet, faults []Fault, lo, hi int, sigs []*Signature) {
	W := s.w
	words := p.Words()
	if lo < 0 || hi < lo || hi > words || lo%W != 0 || (hi != words && (hi-lo)%W != 0) {
		panic(fmt.Sprintf("fault: DictionaryRange [%d,%d) not W=%d block-aligned within %d words", lo, hi, W, words))
	}
	pi := make([]logic.Word, len(s.Net.PIs)*W)
	perPO := make([]logic.Word, len(s.Net.POs)*W)
	for base := lo; base < hi; base += W {
		s.dictionaryBlock(p, faults, base, sigs, pi, perPO)
	}
}
