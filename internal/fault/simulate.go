package fault

import (
	"fmt"
	"math/bits"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/sim"
)

// Simulator performs serial-fault, parallel-pattern stuck-at fault
// simulation (PPSFP): the good circuit is simulated once per 64-pattern
// block, then each live fault is injected and its structural fanout cone
// re-evaluated event-driven — only gates reached by a live fault effect are
// touched, and injection terminates as soon as the effect dies (every
// faulty word equals its good word and nothing downstream can differ).
// A fault is detected when any primary output differs from the good value
// in any pattern bit.
//
// All graph structure (CSR adjacency, topological tables, PO index map, the
// lazily-built fanout-cone cache) lives in the shared immutable
// circuit.Compiled IR; a Simulator owns only its mutable scratch, so
// per-worker instances over one compiled graph are cheap and share cones.
type Simulator struct {
	Net   *circuit.Netlist
	c     *circuit.Compiled
	good  *sim.Simulator
	fval  []logic.Word // scratch: faulty values, valid where stamp[id] == epoch
	stamp []uint64     // per gate: epoch at which fval was written with a differing word
	epoch uint64       // current detectWord epoch
}

// NewSimulator compiles a fault simulator for the netlist. The compiled IR
// is cached on the netlist, so repeated calls share one graph.
func NewSimulator(n *circuit.Netlist) (*Simulator, error) {
	c, err := n.Compiled()
	if err != nil {
		return nil, err
	}
	return NewSimulatorCompiled(c), nil
}

// NewSimulatorCompiled builds a fault simulator over an already-compiled
// IR, allocating only the per-instance mutable scratch. The concurrent
// drivers (RunConcurrent, DictionaryConcurrent) use this to hand every
// worker goroutine the same graph.
func NewSimulatorCompiled(c *circuit.Compiled) *Simulator {
	return &Simulator{
		Net:   c.Net,
		c:     c,
		good:  sim.NewCompiled(c),
		fval:  make([]logic.Word, c.NumGates()),
		stamp: make([]uint64, c.NumGates()),
	}
}

// Compiled returns the shared immutable IR the simulator reads.
func (s *Simulator) Compiled() *circuit.Compiled { return s.c }

// detectWord simulates fault f against the good values currently held in
// s.good (from the last Block call) and returns the word of pattern bits
// where any faulty primary output differs. When perPO is non-nil the
// difference word of each PO index is OR-accumulated into it.
//
// The walk is event-driven: the cone is topologically ordered, so a gate is
// evaluated only when one of its fanins carries a fault effect (stamped this
// epoch with a word differing from the good value). maxReach tracks the
// furthest topological position any live effect can still influence; once
// the walk passes it the effect has provably died and the remaining cone is
// skipped.
func (s *Simulator) detectWord(f Fault, mask logic.Word, perPO []logic.Word) logic.Word {
	c := s.c
	site := f.Gate
	var force logic.Word
	if f.SA == 1 {
		force = ^logic.Word(0)
	}
	var faninBuf [8]logic.Word
	var diff logic.Word
	cone := c.Cone(site)
	good := s.good.Values()
	s.epoch++
	ep := s.epoch
	maxReach := int32(-1)
	for ci, id32 := range cone {
		id := int(id32)
		isSite := ci == 0
		if !isSite && c.Tpos[id32] > maxReach {
			break // fault effect died: nothing stamped feeds this or any later gate
		}
		var v logic.Word
		if isSite && f.Pin < 0 {
			// Output (stem) fault on the site gate itself.
			v = force
		} else {
			fanin := c.Fanin(id)
			needs := isSite // input-branch site always re-evaluates
			if !needs {
				for _, fi := range fanin {
					if s.stamp[fi] == ep {
						needs = true
						break
					}
				}
			}
			if !needs {
				continue
			}
			in := faninBuf[:0]
			for pin, fi := range fanin {
				var w logic.Word
				if isSite && pin == f.Pin {
					w = force // input branch fault
				} else if s.stamp[fi] == ep {
					w = s.fval[fi]
				} else {
					w = good[fi]
				}
				in = append(in, w)
			}
			if t := c.Types[id]; t == circuit.Input || t == circuit.DFF {
				v = good[id] // PIs unchanged unless stem-faulted
			} else {
				v = sim.Eval(t, in)
			}
		}
		d := v ^ good[id]
		if d == 0 {
			continue // faulty equals good: no event; consumers read the good word
		}
		s.fval[id] = v
		s.stamp[id] = ep
		for _, fo := range c.Fanout(id) {
			if tp := c.Tpos[fo]; tp > maxReach {
				maxReach = tp
			}
		}
		if pi := c.POIdx[id]; pi >= 0 {
			dm := d & mask
			if dm != 0 && perPO != nil {
				perPO[pi] |= dm
			}
			diff |= dm
		}
	}
	return diff
}

// Result summarizes a fault simulation run.
type Result struct {
	Total      int
	Detected   int
	DetectedBy []int // per fault: index of first detecting pattern, -1 if undetected
	Coverage   float64
}

// Run fault-simulates the pattern set against the fault list with fault
// dropping and returns detection results. Faults are not mutated.
func (s *Simulator) Run(p *logic.PatternSet, faults []Fault) *Result {
	if p.Inputs != len(s.Net.PIs) {
		panic(fmt.Sprintf("fault: pattern width %d != PIs %d", p.Inputs, len(s.Net.PIs)))
	}
	res := &Result{Total: len(faults), DetectedBy: make([]int, len(faults))}
	for i := range res.DetectedBy {
		res.DetectedBy[i] = -1
	}
	live := make([]int, len(faults))
	for i := range live {
		live[i] = i
	}
	pi := make([]logic.Word, len(s.Net.PIs))
	words := p.Words()
	for w := 0; w < words && len(live) > 0; w++ {
		for i := range pi {
			pi[i] = p.Bits[i][w]
		}
		s.good.Block(pi)
		mask := p.TailMask(w)
		kept := live[:0]
		for _, fi := range live {
			diff := s.detectWord(faults[fi], mask, nil)
			if diff != 0 {
				// First detecting pattern = lowest set bit.
				res.DetectedBy[fi] = w*logic.WordBits + bits.TrailingZeros64(diff)
				res.Detected++
			} else {
				kept = append(kept, fi)
			}
		}
		live = kept
	}
	if res.Total > 0 {
		res.Coverage = float64(res.Detected) / float64(res.Total)
	}
	return res
}

// RunSerial is the baseline used by experiment T7: identical algorithm but
// patterns are applied one at a time (one valid bit per word), forgoing the
// 64-way parallelism. Fault dropping is still applied.
func (s *Simulator) RunSerial(p *logic.PatternSet, faults []Fault) *Result {
	res := &Result{Total: len(faults), DetectedBy: make([]int, len(faults))}
	for i := range res.DetectedBy {
		res.DetectedBy[i] = -1
	}
	live := make([]int, len(faults))
	for i := range live {
		live[i] = i
	}
	pi := make([]logic.Word, len(s.Net.PIs))
	for k := 0; k < p.N && len(live) > 0; k++ {
		for i := range pi {
			if p.Get(k, i) {
				pi[i] = 1
			} else {
				pi[i] = 0
			}
		}
		s.good.Block(pi)
		kept := live[:0]
		for _, fi := range live {
			if s.detectWord(faults[fi], 1, nil) != 0 {
				res.DetectedBy[fi] = k
				res.Detected++
			} else {
				kept = append(kept, fi)
			}
		}
		live = kept
	}
	if res.Total > 0 {
		res.Coverage = float64(res.Detected) / float64(res.Total)
	}
	return res
}

// Signature is a fault's full pass/fail dictionary entry: for each pattern
// word and each PO, the bits where the faulty circuit differs from the good
// circuit. Bits[po][word].
type Signature struct {
	Bits [][]logic.Word
}

// FailBits returns the total number of (pattern, PO) failure coordinates.
func (sg *Signature) FailBits() int {
	c := 0
	for _, ws := range sg.Bits {
		for _, w := range ws {
			c += logic.PopCount(w)
		}
	}
	return c
}

// newSignatures allocates the signature matrix for faults × POs × words in
// one backing slice.
func newSignatures(nFaults, nPOs, words int) []*Signature {
	sigs := make([]*Signature, nFaults)
	backing := make([]logic.Word, nFaults*nPOs*words)
	for i := range sigs {
		sigs[i] = &Signature{Bits: make([][]logic.Word, nPOs)}
		for o := range sigs[i].Bits {
			sigs[i].Bits[o], backing = backing[:words:words], backing[words:]
		}
	}
	return sigs
}

// dictionaryWord fills column w of the signature matrix: it simulates the
// good circuit for pattern word w and injects every fault. Signatures must
// have been allocated for the full word range; distinct words touch
// disjoint storage, which is what makes DictionaryConcurrent's word-sharded
// merge bit-identical to the serial run.
func (s *Simulator) dictionaryWord(p *logic.PatternSet, faults []Fault, w int, sigs []*Signature, pi, perPO []logic.Word) {
	for i := range pi {
		pi[i] = p.Bits[i][w]
	}
	s.good.Block(pi)
	mask := p.TailMask(w)
	for fi := range faults {
		for o := range perPO {
			perPO[o] = 0
		}
		s.detectWord(faults[fi], mask, perPO)
		for o := range perPO {
			sigs[fi].Bits[o][w] = perPO[o]
		}
	}
}

// Dictionary fault-simulates without dropping and returns every fault's
// full failure signature — the input to fault diagnosis.
func (s *Simulator) Dictionary(p *logic.PatternSet, faults []Fault) []*Signature {
	words := p.Words()
	sigs := newSignatures(len(faults), len(s.Net.POs), words)
	pi := make([]logic.Word, len(s.Net.PIs))
	perPO := make([]logic.Word, len(s.Net.POs))
	for w := 0; w < words; w++ {
		s.dictionaryWord(p, faults, w, sigs, pi, perPO)
	}
	return sigs
}
