package fault

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/sim"
)

// Property: collapsing never invents faults and never changes which
// pattern sets achieve detection of the surviving representatives — on
// random circuits, every collapsed fault's detection status matches its
// status in the uncollapsed run.
func TestCollapsePreservesDetection(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := circuit.Random(6+rng.Intn(6), 30+rng.Intn(60), seed)
		fsim, err := NewSimulator(c)
		if err != nil {
			return false
		}
		all := AllFaults(c)
		col := Collapse(c, all)
		if len(col) > len(all) {
			return false
		}
		p := logic.NewPatternSet(len(c.PIs), 96)
		p.RandFill(rng.Uint64)
		rAll := fsim.Run(p, all)
		rCol := fsim.Run(p, col)
		// Index the uncollapsed results.
		status := map[Fault]bool{}
		for i, fl := range all {
			status[fl] = rAll.DetectedBy[i] >= 0
		}
		for i, fl := range col {
			if status[fl] != (rCol.DetectedBy[i] >= 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: the event-driven 64-way engine and the one-pattern-at-a-time
// baseline agree exactly — identical DetectedBy indices and Coverage — on
// randomly generated circuits. This pins the event-driven rewrite (epoch
// stamping, early termination) to the simplest formulation of PPSFP.
func TestEventDrivenMatchesSerial(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := circuit.Random(6+rng.Intn(8), 40+rng.Intn(120), seed)
		fsim, err := NewSimulator(c)
		if err != nil {
			return false
		}
		faults := Universe(c)
		p := logic.NewPatternSet(len(c.PIs), 70+rng.Intn(80))
		p.RandFill(rng.Uint64)
		par := fsim.Run(p, faults)
		ser := fsim.RunSerial(p, faults)
		if par.Coverage != ser.Coverage || par.Detected != ser.Detected {
			return false
		}
		for i := range faults {
			if par.DetectedBy[i] != ser.DetectedBy[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: the event-driven injection produces, word for word, the same
// PO difference words as a full re-simulation of the whole faulty circuit
// (every gate evaluated, no events, no cones) — an oracle independent of
// the cone and stamping machinery.
func TestEventDrivenMatchesFullResim(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := circuit.Random(5+rng.Intn(6), 30+rng.Intn(80), seed)
		fsim, err := NewSimulator(c)
		if err != nil {
			return false
		}
		faults := Universe(c)
		p := logic.NewPatternSet(len(c.PIs), 64)
		p.RandFill(rng.Uint64)
		gsim, err := sim.New(c)
		if err != nil {
			return false
		}
		pi := make([]logic.Word, len(c.PIs))
		for i := range pi {
			pi[i] = p.Bits[i][0]
		}
		gsim.Block(pi)
		good := append([]logic.Word(nil), gsim.Values()...)
		fsim.good.Block(pi, 1)
		for _, fl := range faults {
			want := fullResimDiff(c, fl, pi, good)
			got := fsim.detectWord(fl, p.TailMask(0), nil)
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// fullResimDiff re-evaluates every gate of the circuit with fault f
// injected and returns the OR over POs of faulty XOR good words.
func fullResimDiff(c *circuit.Netlist, f Fault, pi []logic.Word, good []logic.Word) logic.Word {
	idx := c.InputIndex()
	vals := make([]logic.Word, len(c.Gates))
	var force logic.Word
	if f.SA == 1 {
		force = ^logic.Word(0)
	}
	for _, id := range c.TopoOrder() {
		g := c.Gates[id]
		var v logic.Word
		if g.Type == circuit.Input || g.Type == circuit.DFF {
			v = pi[idx[id]]
		} else {
			in := make([]logic.Word, len(g.Fanin))
			for pin, fi := range g.Fanin {
				in[pin] = vals[fi]
				if id == f.Gate && pin == f.Pin {
					in[pin] = force
				}
			}
			v = sim.Eval(g.Type, in)
		}
		if id == f.Gate && f.Pin < 0 {
			v = force
		}
		vals[id] = v
	}
	var diff logic.Word
	for _, po := range c.POs {
		diff |= vals[po] ^ good[po]
	}
	return diff
}

// Property: the word-sharded concurrent dictionary is bit-identical to the
// serial dictionary for any worker count.
func TestDictionaryConcurrentBitIdentical(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := circuit.Random(6+rng.Intn(6), 40+rng.Intn(80), seed)
		fsim, err := NewSimulator(c)
		if err != nil {
			return false
		}
		faults := Universe(c)
		p := logic.NewPatternSet(len(c.PIs), 65+rng.Intn(200))
		p.RandFill(rng.Uint64)
		want := fsim.Dictionary(p, faults)
		for _, workers := range []int{1, 2, 3, 8} {
			got, err := DictionaryConcurrent(c, p, faults, workers)
			if err != nil {
				return false
			}
			for i := range want {
				for o := range want[i].Bits {
					for w := range want[i].Bits[o] {
						if got[i].Bits[o][w] != want[i].Bits[o][w] {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Property: a fault detected by a pattern set is also detected by any
// superset of that pattern set (monotonicity of detection).
func TestDetectionMonotoneInPatterns(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := circuit.Random(8, 60, seed)
		fsim, err := NewSimulator(c)
		if err != nil {
			return false
		}
		faults := Universe(c)
		small := logic.NewPatternSet(len(c.PIs), 32)
		small.RandFill(rng.Uint64)
		big := small.Clone()
		extra := logic.NewPatternSet(len(c.PIs), 32)
		extra.RandFill(rng.Uint64)
		for k := 0; k < extra.N; k++ {
			big.Append(extra.Pattern(k))
		}
		rs := fsim.Run(small, faults)
		rb := fsim.Run(big, faults)
		for i := range faults {
			if rs.DetectedBy[i] >= 0 && rb.DetectedBy[i] < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
