package fault

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/logic"
)

// Property: collapsing never invents faults and never changes which
// pattern sets achieve detection of the surviving representatives — on
// random circuits, every collapsed fault's detection status matches its
// status in the uncollapsed run.
func TestCollapsePreservesDetection(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := circuit.Random(6+rng.Intn(6), 30+rng.Intn(60), seed)
		fsim, err := NewSimulator(c)
		if err != nil {
			return false
		}
		all := AllFaults(c)
		col := Collapse(c, all)
		if len(col) > len(all) {
			return false
		}
		p := logic.NewPatternSet(len(c.PIs), 96)
		p.RandFill(rng.Uint64)
		rAll := fsim.Run(p, all)
		rCol := fsim.Run(p, col)
		// Index the uncollapsed results.
		status := map[Fault]bool{}
		for i, fl := range all {
			status[fl] = rAll.DetectedBy[i] >= 0
		}
		for i, fl := range col {
			if status[fl] != (rCol.DetectedBy[i] >= 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: a fault detected by a pattern set is also detected by any
// superset of that pattern set (monotonicity of detection).
func TestDetectionMonotoneInPatterns(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := circuit.Random(8, 60, seed)
		fsim, err := NewSimulator(c)
		if err != nil {
			return false
		}
		faults := Universe(c)
		small := logic.NewPatternSet(len(c.PIs), 32)
		small.RandFill(rng.Uint64)
		big := small.Clone()
		extra := logic.NewPatternSet(len(c.PIs), 32)
		extra.RandFill(rng.Uint64)
		for k := 0; k < extra.N; k++ {
			big.Append(extra.Pattern(k))
		}
		rs := fsim.Run(small, faults)
		rb := fsim.Run(big, faults)
		for i := range faults {
			if rs.DetectedBy[i] >= 0 && rb.DetectedBy[i] < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
