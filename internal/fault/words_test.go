package fault

import (
	"fmt"
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/sim"
)

// laneWidths is the full grid of supported pattern-word packings; the
// bit-identity suite pins every width against the serial baseline.
var laneWidths = []int{1, 2, 4, 8}

// TestNormalizeWords pins the lane-width clamping every engine entry point
// applies to raw flag values.
func TestNormalizeWords(t *testing.T) {
	cases := map[int]int{-3: 1, 0: 1, 1: 1, 2: 2, 3: 2, 4: 4, 5: 4, 7: 4, 8: 8, 9: 8, 64: 8}
	for in, want := range cases {
		if got := NormalizeWords(in); got != want {
			t.Errorf("NormalizeWords(%d) = %d, want %d", in, got, want)
		}
	}
}

// Property: for every lane width W in {1,2,4,8} and worker count in
// {1,4,8}, Run and RunConcurrentWords return exactly the serial baseline's
// DetectedBy — including ragged tails where the pattern count is not a
// multiple of 64*W, so the last super-word runs with fewer active lanes and
// a partial tail mask.
func TestMultiWordRunBitIdentical(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := circuit.Random(6+rng.Intn(8), 40+rng.Intn(120), seed)
		faults := Universe(c)
		// Pattern counts straddling the super-word boundaries of every
		// width: 8 words = 512 patterns, so 500 exercises a ragged tail at
		// W=8, 130 at W=4 and W=2, 70 at every width.
		nPat := []int{70, 130, 500}[rng.Intn(3)]
		p := logic.NewPatternSet(len(c.PIs), nPat)
		p.RandFill(rng.Uint64)
		base, err := NewSimulator(c)
		if err != nil {
			return false
		}
		want := base.RunSerial(p, faults)
		for _, words := range laneWidths {
			fsim, err := NewSimulatorWords(c, words)
			if err != nil {
				return false
			}
			got := fsim.Run(p, faults)
			if got.Detected != want.Detected || got.Coverage != want.Coverage {
				return false
			}
			for i := range faults {
				if got.DetectedBy[i] != want.DetectedBy[i] {
					return false
				}
			}
			for _, workers := range []int{1, 4, 8} {
				rc, err := RunConcurrentWords(c, p, faults, workers, words)
				if err != nil {
					return false
				}
				for i := range faults {
					if rc.DetectedBy[i] != want.DetectedBy[i] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}

// Property: the full-response dictionary is bit-identical across every lane
// width and worker count — signatures from W-word walks sharded over
// workers equal the single-word serial dictionary word for word.
func TestMultiWordDictionaryBitIdentical(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := circuit.Random(6+rng.Intn(6), 40+rng.Intn(80), seed)
		faults := Universe(c)
		nPat := []int{65, 130, 420}[rng.Intn(3)]
		p := logic.NewPatternSet(len(c.PIs), nPat)
		p.RandFill(rng.Uint64)
		base, err := NewSimulator(c)
		if err != nil {
			return false
		}
		want := base.Dictionary(p, faults)
		for _, words := range laneWidths {
			for _, workers := range []int{1, 4, 8} {
				got, err := DictionaryConcurrentWords(c, p, faults, workers, words)
				if err != nil {
					return false
				}
				for i := range want {
					for o := range want[i].Bits {
						for w := range want[i].Bits[o] {
							if got[i].Bits[o][w] != want[i].Bits[o][w] {
								return false
							}
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}

// Property: every lane of a multi-lane walk equals the full-resimulation
// oracle for its pattern word — the same independent check the single-word
// engine is pinned by, applied per lane so strided indexing and lane
// windows cannot silently swap or corrupt words.
func TestMultiWordMatchesFullResimOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := circuit.Random(5+rng.Intn(6), 30+rng.Intn(80), seed)
		faults := Universe(c)
		gsim, err := sim.New(c)
		if err != nil {
			return false
		}
		for _, words := range []int{2, 4, 8} {
			fsim, err := NewSimulatorWords(c, words)
			if err != nil {
				return false
			}
			W := fsim.Words()
			p := logic.NewPatternSet(len(c.PIs), W*logic.WordBits)
			p.RandFill(rng.Uint64)
			// Per-word good values and flat PI words for the oracle.
			goodByWord := make([][]logic.Word, W)
			piByWord := make([][]logic.Word, W)
			for w := 0; w < W; w++ {
				pi := make([]logic.Word, len(c.PIs))
				for i := range pi {
					pi[i] = p.Bits[i][w]
				}
				gsim.Block(pi)
				goodByWord[w] = append([]logic.Word(nil), gsim.Values()...)
				piByWord[w] = pi
			}
			// One wide block holding all W lanes.
			piWide := make([]logic.Word, len(c.PIs)*W)
			for i := range c.PIs {
				for l := 0; l < W; l++ {
					piWide[i*W+l] = p.Bits[i][l]
				}
			}
			fsim.good.Block(piWide, W)
			masks := make([]logic.Word, W)
			diff := make([]logic.Word, W)
			for l := 0; l < W; l++ {
				masks[l] = p.TailMask(l)
			}
			for _, fl := range faults {
				for l := range diff {
					diff[l] = 0
				}
				fsim.detectLanes(fl, 0, W, masks, diff, nil)
				for l := 0; l < W; l++ {
					want := fullResimDiff(c, fl, piByWord[l], goodByWord[l])
					if diff[l] != want&masks[l] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// Property: lane windows compose — walking lanes [0,1) then [1,act) gives
// the same per-lane diffs as one [0,act) walk. This is the identity Run's
// staged filter relies on.
func TestLaneWindowComposition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := circuit.Random(6, 60+rng.Intn(60), seed)
		faults := Universe(c)
		fsim, err := NewSimulatorWords(c, 4)
		if err != nil {
			return false
		}
		W := fsim.Words()
		p := logic.NewPatternSet(len(c.PIs), W*logic.WordBits-17) // ragged tail
		p.RandFill(rng.Uint64)
		pi := make([]logic.Word, len(c.PIs)*W)
		for i := range c.PIs {
			for l := 0; l < W; l++ {
				pi[i*W+l] = p.Bits[i][l]
			}
		}
		fsim.good.Block(pi, W)
		masks := make([]logic.Word, W)
		for l := 0; l < W; l++ {
			masks[l] = p.TailMask(l)
		}
		whole := make([]logic.Word, W)
		staged := make([]logic.Word, W)
		for _, fl := range faults {
			for l := 0; l < W; l++ {
				whole[l], staged[l] = 0, 0
			}
			fsim.detectLanes(fl, 0, W, masks, whole, nil)
			fsim.detectLanes(fl, 0, 1, masks[:1], staged[:1], nil)
			fsim.detectLanes(fl, 1, W-1, masks[1:], staged[1:], nil)
			for l := 0; l < W; l++ {
				if whole[l] != staged[l] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Property: the transition engine is bit-identical across lane widths and
// worker counts.
func TestTransitionWordsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := circuit.Random(8, 120, 7)
	faults := TransitionUniverse(c)
	p := logic.NewPatternSet(len(c.PIs), 150)
	p.RandFill(rng.Uint64)
	want, err := SimulateTransitionsWords(c, p, faults, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, words := range laneWidths {
		for _, workers := range []int{1, 4, 8} {
			got, err := SimulateTransitionsWords(c, p, faults, workers, words)
			if err != nil {
				t.Fatal(err)
			}
			if got.Detected != want.Detected {
				t.Fatalf("words=%d workers=%d: detected %d != %d", words, workers, got.Detected, want.Detected)
			}
			for i := range faults {
				if got.DetectedBy[i] != want.DetectedBy[i] {
					t.Fatalf("words=%d workers=%d fault %d: %d != %d",
						words, workers, i, got.DetectedBy[i], want.DetectedBy[i])
				}
			}
		}
	}
}

// The good-value buffer is patched in place during a walk and must be
// restored exactly afterwards; otherwise results would depend on fault
// order. Pin the restore by interleaving faults and re-checking a clean
// walk against itself.
func TestWalkRestoresGoodValues(t *testing.T) {
	c := circuit.Random(8, 200, 11)
	faults := Universe(c)
	fsim, err := NewSimulatorWords(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	W := fsim.Words()
	rng := rand.New(rand.NewSource(11))
	p := logic.NewPatternSet(len(c.PIs), 2*logic.WordBits)
	p.RandFill(rng.Uint64)
	pi := make([]logic.Word, len(c.PIs)*W)
	for i := range c.PIs {
		for l := 0; l < W; l++ {
			pi[i*W+l] = p.Bits[i][l]
		}
	}
	fsim.good.Block(pi, W)
	snapshot := append([]logic.Word(nil), fsim.good.Values()...)
	masks := []logic.Word{p.TailMask(0), p.TailMask(1)}
	diff := make([]logic.Word, W)
	for _, fl := range faults {
		diff[0], diff[1] = 0, 0
		fsim.detectLanes(fl, 0, W, masks, diff, nil)
		for i, v := range fsim.good.Values() {
			if v != snapshot[i] {
				t.Fatalf("fault %v: good value %d not restored: %x != %x", fl, i, v, snapshot[i])
			}
		}
	}
}

// The concurrent dictionary at every width must agree with Run on
// first-detection: a fault's earliest failing (pattern, PO) bit equals its
// DetectedBy index (cross-engine consistency, used by diagnosis).
func TestMultiWordDictionaryMatchesRun(t *testing.T) {
	for _, words := range laneWidths {
		t.Run(fmt.Sprintf("words=%d", words), func(t *testing.T) {
			c := circuit.Random(8, 150, 5)
			faults := Universe(c)
			rng := rand.New(rand.NewSource(5))
			p := logic.NewPatternSet(len(c.PIs), 200)
			p.RandFill(rng.Uint64)
			fsim, err := NewSimulatorWords(c, words)
			if err != nil {
				t.Fatal(err)
			}
			run := fsim.Run(p, faults)
			dict, err := DictionaryConcurrentWords(c, p, faults, 4, words)
			if err != nil {
				t.Fatal(err)
			}
			for i := range faults {
				first := -1
				for w := 0; w < p.Words(); w++ {
					var or logic.Word
					for o := range dict[i].Bits {
						or |= dict[i].Bits[o][w]
					}
					if or != 0 {
						first = w*logic.WordBits + bits.TrailingZeros64(uint64(or))
						break
					}
				}
				if first != run.DetectedBy[i] {
					t.Fatalf("fault %d: dictionary first fail %d != DetectedBy %d", i, first, run.DetectedBy[i])
				}
			}
		})
	}
}

// Property: RunInto with caller-owned scratch returns exactly Run's results
// when the same buffers are reused across many calls on different pattern
// sets — no stale detection state or worklist contents leak between drops.
func TestRunIntoMatchesRunReusedScratch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := circuit.Random(5+rng.Intn(6), 30+rng.Intn(90), seed)
		faults := Universe(c)
		words := laneWidths[rng.Intn(len(laneWidths))]
		fsim, err := NewSimulatorWords(c, words)
		if err != nil {
			return false
		}
		detBy := make([]int, len(faults))
		liveBuf := make([]int, 0, len(faults))
		for round := 0; round < 4; round++ {
			nPat := 1 + rng.Intn(200)
			p := logic.NewPatternSet(len(c.PIs), nPat)
			p.RandFill(rng.Uint64)
			want := fsim.Run(p, faults)
			got := fsim.RunInto(p, faults, detBy, liveBuf)
			if got != want.Detected {
				return false
			}
			for i := range faults {
				if detBy[i] != want.DetectedBy[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// Property: Probe against a staged pattern set answers exactly like a
// RunInto call over the same set and a single fault — across incremental
// re-staging of an append-only set (the batched ATPG flow's usage, where
// each committed pattern triggers a cheap tail-lane restage) and across a
// mid-run invalidation that forces the full pass again.
func TestStageProbeMatchesRunIntoOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := circuit.Random(5+rng.Intn(6), 30+rng.Intn(80), seed)
		faults := Universe(c)
		words := laneWidths[rng.Intn(len(laneWidths))]
		probe, err := NewSimulatorWords(c, words)
		if err != nil {
			return false
		}
		oracle, err := NewSimulatorWords(c, words)
		if err != nil {
			return false
		}
		var db [1]int
		var one [1]Fault
		p := logic.NewPatternSet(len(c.PIs), 0)
		bits := make([]bool, len(c.PIs))
		cap := words * logic.WordBits
		for p.N < cap {
			grow := 1 + rng.Intn(17)
			if p.N+grow > cap {
				grow = cap - p.N
			}
			for g := 0; g < grow; g++ {
				for i := range bits {
					bits[i] = rng.Intn(2) == 1
				}
				p.Append(bits)
			}
			if rng.Intn(5) == 0 {
				// Clobber the staged values so the next Stage cannot take
				// the incremental path.
				probe.RunInto(p, faults[:1], db[:], nil)
			}
			probe.Stage(p)
			for _, fl := range faults {
				one[0] = fl
				want := oracle.RunInto(p, one[:], db[:], nil) > 0
				if probe.Probe(fl) != want {
					t.Errorf("seed %d: N=%d fault %+v: probe %v, oracle %v", seed, p.N, fl, !want, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}
