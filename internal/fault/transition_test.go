package fault

import (
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/logic"
)

// explicitTransitionDetect checks pair (v1, v2) against fault tf by
// first-principles simulation: v1 must set the site to the pre-transition
// value, and under v2 the faulty circuit (site stuck at the old value)
// must differ from the good circuit at some output.
func explicitTransitionDetect(n *circuit.Netlist, tf TransitionFault, v1, v2 []bool) bool {
	goodV1 := simulateGood(n, v1)
	init := false // required value of site under v1: 0 for STR, 1 for STF
	if !tf.SlowToRise {
		init = true
	}
	if goodV1[tf.Gate] != init {
		return false
	}
	goodV2 := simulateGood(n, v2)
	sa := uint8(1)
	if tf.SlowToRise {
		sa = 0
	}
	faulty := simulateFaulty(n, Fault{Gate: tf.Gate, Pin: -1, SA: sa}, v2)
	for o, po := range n.POs {
		if faulty[o] != goodV2[po] {
			return true
		}
	}
	return false
}

func simulateGood(n *circuit.Netlist, bits []bool) []bool {
	idx := n.InputIndex()
	vals := make([]bool, len(n.Gates))
	for _, id := range n.TopoOrder() {
		g := n.Gates[id]
		if g.Type == circuit.Input || g.Type == circuit.DFF {
			vals[id] = bits[idx[id]]
			continue
		}
		in := make([]bool, len(g.Fanin))
		for p, f := range g.Fanin {
			in[p] = vals[f]
		}
		vals[id] = evalBool(g.Type, in)
	}
	return vals
}

func TestTransitionUniverse(t *testing.T) {
	n := circuit.MustC17()
	tfs := TransitionUniverse(n)
	if len(tfs) != 2*len(n.Gates) {
		t.Fatalf("universe = %d, want %d", len(tfs), 2*len(n.Gates))
	}
	if tfs[0].Name(n) == "" || tfs[0].String() == "" {
		t.Error("empty rendering")
	}
}

// TestTransitionSimAgainstExplicit is the correctness anchor: the composed
// simulator must agree with first-principles pair simulation on every
// fault and every pair.
func TestTransitionSimAgainstExplicit(t *testing.T) {
	for _, c := range []*circuit.Netlist{
		circuit.MustC17(),
		circuit.RippleAdder(3),
		circuit.Random(7, 50, 31),
	} {
		rng := rand.New(rand.NewSource(5))
		p := logic.NewPatternSet(len(c.PIs), 40)
		p.RandFill(rng.Uint64)
		faults := TransitionUniverse(c)
		res, err := SimulateTransitions(c, p, faults)
		if err != nil {
			t.Fatal(err)
		}
		for fi, tf := range faults {
			// First detecting pair by explicit simulation.
			first := -1
			for k := 0; k+1 < p.N && first < 0; k++ {
				if explicitTransitionDetect(c, tf, p.Pattern(k), p.Pattern(k+1)) {
					first = k
				}
			}
			if res.DetectedBy[fi] != first {
				t.Fatalf("%s fault %s: simulator pair %d, explicit %d",
					c.Name, tf.Name(c), res.DetectedBy[fi], first)
			}
		}
	}
}

func TestTransitionNeedsTwoPatterns(t *testing.T) {
	n := circuit.MustC17()
	p := logic.NewPatternSet(len(n.PIs), 1)
	res, err := SimulateTransitions(n, p, TransitionUniverse(n))
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected != 0 {
		t.Error("single pattern cannot detect transition faults")
	}
}

func TestTransitionCoverageBelowStuckAt(t *testing.T) {
	// A transition fault needs strictly more than the corresponding
	// stuck-at detection (the extra initialization condition), so random
	// transition coverage can never exceed random stuck-at stem coverage.
	c := circuit.ArrayMultiplier(4)
	rng := rand.New(rand.NewSource(9))
	p := logic.NewPatternSet(len(c.PIs), 128)
	p.RandFill(rng.Uint64)
	tres, err := SimulateTransitions(c, p, TransitionUniverse(c))
	if err != nil {
		t.Fatal(err)
	}
	fsim, _ := NewSimulator(c)
	var stems []Fault
	for _, g := range c.Gates {
		stems = append(stems, Fault{Gate: g.ID, Pin: -1, SA: 0}, Fault{Gate: g.ID, Pin: -1, SA: 1})
	}
	sres := fsim.Run(p, stems)
	if tres.Coverage > sres.Coverage+1e-9 {
		t.Errorf("transition coverage %.3f exceeds stuck-at stem coverage %.3f",
			tres.Coverage, sres.Coverage)
	}
	if tres.Coverage < 0.5 {
		t.Errorf("transition coverage %.3f suspiciously low for mul4", tres.Coverage)
	}
}
