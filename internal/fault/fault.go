// Package fault implements the single stuck-at fault model over gate-level
// netlists: fault universe enumeration, structural equivalence collapsing,
// and serial-fault/parallel-pattern fault simulation (PPSFP) with fault
// dropping and full-signature dictionary generation for diagnosis.
package fault

import (
	"fmt"
	"sort"

	"repro/internal/circuit"
)

// Fault is a single stuck-at fault. Pin == -1 denotes the gate's output
// (stem) fault; Pin >= 0 denotes the fault on the gate's Pin-th input
// branch. SA is the stuck value (0 or 1).
type Fault struct {
	Gate int // gate ID in the netlist
	Pin  int // -1 for output, else input pin index
	SA   uint8
}

// String renders the fault in the conventional "signal s-a-v" notation.
func (f Fault) String() string {
	loc := "out"
	if f.Pin >= 0 {
		loc = fmt.Sprintf("in%d", f.Pin)
	}
	return fmt.Sprintf("g%d.%s/sa%d", f.Gate, loc, f.SA)
}

// Name renders the fault with netlist signal names.
func (f Fault) Name(n *circuit.Netlist) string {
	g := n.Gates[f.Gate]
	if f.Pin < 0 {
		return fmt.Sprintf("%s/sa%d", g.Name, f.SA)
	}
	return fmt.Sprintf("%s.%s/sa%d", g.Name, n.Gates[g.Fanin[f.Pin]].Name, f.SA)
}

// AllFaults enumerates the full uncollapsed stuck-at fault universe: both
// polarities on every gate output, and on every gate input branch of
// multi-fanout nets (branch faults are distinct from the stem only when the
// driver has fanout > 1; for single-fanout nets the branch is identical to
// the stem and skipped).
func AllFaults(n *circuit.Netlist) []Fault {
	var out []Fault
	for _, g := range n.Gates {
		for _, sa := range []uint8{0, 1} {
			out = append(out, Fault{Gate: g.ID, Pin: -1, SA: sa})
		}
		for pin, f := range g.Fanin {
			if len(n.Gates[f].Fanout) > 1 {
				for _, sa := range []uint8{0, 1} {
					out = append(out, Fault{Gate: g.ID, Pin: pin, SA: sa})
				}
			}
		}
	}
	return out
}

// Collapse performs structural equivalence collapsing. For each gate, input
// faults equivalent to an output fault are removed:
//
//	AND : any input sa0 ≡ output sa0      NAND: any input sa0 ≡ output sa1
//	OR  : any input sa1 ≡ output sa1      NOR : any input sa1 ≡ output sa0
//	BUF : input sa-v ≡ output sa-v        NOT : input sa-v ≡ output sa-(1-v)
//
// The representative kept is always the gate-output (stem) fault. The
// returned slice preserves the deterministic order of AllFaults filtering.
func Collapse(n *circuit.Netlist, faults []Fault) []Fault {
	out := faults[:0:0]
	for _, f := range faults {
		if f.Pin < 0 {
			out = append(out, f)
			continue
		}
		t := n.Gates[f.Gate].Type
		equiv := false
		switch t {
		case circuit.And, circuit.Nand:
			equiv = f.SA == 0
		case circuit.Or, circuit.Nor:
			equiv = f.SA == 1
		case circuit.Buf, circuit.Not, circuit.DFF:
			equiv = true
		}
		if !equiv {
			out = append(out, f)
		}
	}
	return out
}

// Universe builds the standard collapsed fault list for a netlist.
func Universe(n *circuit.Netlist) []Fault {
	return Collapse(n, AllFaults(n))
}

// SortFaults orders faults deterministically (by gate, pin, stuck value).
func SortFaults(fs []Fault) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].Gate != fs[j].Gate {
			return fs[i].Gate < fs[j].Gate
		}
		if fs[i].Pin != fs[j].Pin {
			return fs[i].Pin < fs[j].Pin
		}
		return fs[i].SA < fs[j].SA
	})
}
