package fault

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/sim"
)

// TestSharedCompiledRace drives eight fault simulators and eight good-value
// simulators off ONE cold Compiled IR concurrently. Under -race (CI runs the
// race job over this package) it pins the immutability contract, including
// the lazily-built cone cache, and every worker must produce the serial
// reference result bit-for-bit.
func TestSharedCompiledRace(t *testing.T) {
	n := circuit.Random(32, 400, 21)
	faults := Collapse(n, Universe(n))
	rng := rand.New(rand.NewSource(5))
	p := logic.NewPatternSet(len(n.PIs), 192)
	p.RandFill(rng.Uint64)

	c, err := circuit.Compile(n) // fresh, unwarmed: no cones built yet
	if err != nil {
		t.Fatal(err)
	}
	ref := NewSimulatorCompiled(c).RunSerial(p, faults)
	refGood := sim.NewCompiled(c).Run(p)

	// Second cold IR so the goroutines themselves race to build every cone.
	c2, err := circuit.Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fsim := NewSimulatorCompiled(c2)
			if got := fsim.Compiled(); got != c2 {
				t.Errorf("worker %d: simulator not bound to the shared IR", w)
				return
			}
			res := fsim.Run(p, faults)
			if res.Detected != ref.Detected {
				t.Errorf("worker %d: detected %d, want %d", w, res.Detected, ref.Detected)
				return
			}
			for i := range faults {
				if res.DetectedBy[i] != ref.DetectedBy[i] {
					t.Errorf("worker %d: fault %v first=%d want %d",
						w, faults[i], res.DetectedBy[i], ref.DetectedBy[i])
					return
				}
			}
			good := sim.NewCompiled(c2).Run(p)
			for o := 0; o < len(n.POs); o++ {
				for k := 0; k < p.N; k++ {
					if good.Get(k, o) != refGood.Get(k, o) {
						t.Errorf("worker %d: good value mismatch at pattern %d output %d", w, k, o)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestConcurrentCompilesOnce pins the compile-once acceptance criterion: the
// concurrent drivers compile a fresh netlist exactly once no matter how many
// workers they spawn, and reuse that compilation across calls.
func TestConcurrentCompilesOnce(t *testing.T) {
	n := circuit.Random(24, 300, 33)
	faults := Collapse(n, Universe(n))
	rng := rand.New(rand.NewSource(7))
	p := logic.NewPatternSet(len(n.PIs), 128)
	p.RandFill(rng.Uint64)

	before := circuit.CompileCount()
	if _, err := RunConcurrent(n, p, faults, 8); err != nil {
		t.Fatal(err)
	}
	if d := circuit.CompileCount() - before; d != 1 {
		t.Fatalf("RunConcurrent with 8 workers compiled %d times, want 1", d)
	}
	if _, err := DictionaryConcurrent(n, p, faults, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := SimulateTransitionsWorkers(n, p, TransitionUniverse(n), 8); err != nil {
		t.Fatal(err)
	}
	if d := circuit.CompileCount() - before; d != 1 {
		t.Fatalf("full concurrent pipeline compiled %d times total, want 1 (cached)", d)
	}
}

// TestMultiWordSharedCompiledRace drives eight multi-word fault simulators
// of mixed lane widths (1/2/4/8) off ONE cold Compiled IR concurrently.
// Under -race it pins three contracts at once: the netlist is compiled
// exactly once no matter how many widths race on it; the lazily-built
// fanout-cone cache (exercised concurrently by the ATPG-style Cone reader)
// is built once and returns the identical backing slice to every width; and
// every simulator — whatever its width — produces the serial reference
// result bit for bit, since all mutable lane scratch is per-instance.
func TestMultiWordSharedCompiledRace(t *testing.T) {
	n := circuit.Random(32, 400, 43)
	faults := Collapse(n, Universe(n))
	rng := rand.New(rand.NewSource(9))
	p := logic.NewPatternSet(len(n.PIs), 300) // ragged at every width
	p.RandFill(rng.Uint64)

	c, err := circuit.Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	ref := NewSimulatorCompiled(c).RunSerial(p, faults)

	before := circuit.CompileCount()
	c2, err := circuit.Compile(n) // cold IR the workers share
	if err != nil {
		t.Fatal(err)
	}
	if d := circuit.CompileCount() - before; d != 1 {
		t.Fatalf("setup compiled %d times, want 1", d)
	}

	// Reference cone slice, resolved after the race: every concurrent
	// Cone call must have returned this exact backing array.
	widths := []int{1, 2, 4, 8, 8, 4, 2, 1}
	cones := make([][]int32, len(widths))
	var wg sync.WaitGroup
	for w := range widths {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fsim := NewSimulatorCompiledWords(c2, widths[w])
			if got := fsim.Words(); got != widths[w] {
				t.Errorf("worker %d: width %d, want %d", w, got, widths[w])
				return
			}
			// Race the cone cache the way concurrent ATPG does while
			// simulators of other widths are mid-run on the same IR.
			cones[w] = c2.Cone(n.PIs[0])
			res := fsim.Run(p, faults)
			if res.Detected != ref.Detected {
				t.Errorf("worker %d (W=%d): detected %d, want %d", w, widths[w], res.Detected, ref.Detected)
				return
			}
			for i := range faults {
				if res.DetectedBy[i] != ref.DetectedBy[i] {
					t.Errorf("worker %d (W=%d): fault %v first=%d want %d",
						w, widths[w], faults[i], res.DetectedBy[i], ref.DetectedBy[i])
					return
				}
			}
			dict := fsim.Dictionary(p, faults)
			for i := range faults {
				first := -1
				for wd := 0; wd < p.Words() && first < 0; wd++ {
					var or logic.Word
					for o := range dict[i].Bits {
						or |= dict[i].Bits[o][wd]
					}
					if or != 0 {
						first = wd * logic.WordBits
					}
				}
				if (first < 0) != (ref.DetectedBy[i] < 0) {
					t.Errorf("worker %d (W=%d): fault %d dictionary/run detection disagree", w, widths[w], i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if d := circuit.CompileCount() - before; d != 1 {
		t.Fatalf("racing widths compiled %d times total, want 1 (shared IR)", d)
	}
	for w := 1; w < len(cones); w++ {
		if len(cones[w]) == 0 || len(cones[0]) == 0 {
			t.Fatalf("worker %d: empty cone", w)
		}
		if &cones[w][0] != &cones[0][0] {
			t.Fatalf("worker %d: cone cache not reused across lane widths", w)
		}
	}
}
