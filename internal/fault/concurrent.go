package fault

import (
	"runtime"
	"sync"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/parallel"
)

// RunConcurrent fault-simulates the pattern set across multiple goroutines
// with single-word (W=1) simulators. See RunConcurrentWords.
func RunConcurrent(n *circuit.Netlist, p *logic.PatternSet, faults []Fault, workers int) (*Result, error) {
	return RunConcurrentWords(n, p, faults, workers, 1)
}

// RunConcurrentWords fault-simulates the pattern set across multiple
// goroutines, splitting the fault list into contiguous shards; each worker
// packs words pattern words per pass (normalized to {1,2,4,8}). The netlist
// is compiled exactly once; every worker gets a cheap Simulator over the
// shared immutable IR (and therefore shares the fanout-cone cache). Results
// are identical to Simulator.Run for any worker count and any lane width
// (fault dropping happens within each shard, and detection indices do not
// depend on other faults). workers <= 0 selects GOMAXPROCS.
func RunConcurrentWords(n *circuit.Netlist, p *logic.PatternSet, faults []Fault, workers, words int) (*Result, error) {
	c, err := n.Compiled()
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(faults) {
		workers = len(faults)
	}
	if workers <= 1 {
		return NewSimulatorCompiledWords(c, words).Run(p, faults), nil
	}
	res := &Result{Total: len(faults), DetectedBy: make([]int, len(faults))}
	type shard struct {
		lo, hi int
		out    *Result
	}
	shards := make([]shard, workers)
	per := (len(faults) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > len(faults) {
			hi = len(faults)
		}
		shards[w] = shard{lo: lo, hi: hi}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(s *shard) {
			defer wg.Done()
			s.out = NewSimulatorCompiledWords(c, words).Run(p, faults[s.lo:s.hi])
		}(&shards[w])
	}
	wg.Wait()
	for _, s := range shards {
		if s.out == nil {
			continue
		}
		copy(res.DetectedBy[s.lo:s.hi], s.out.DetectedBy)
		res.Detected += s.out.Detected
	}
	if res.Total > 0 {
		res.Coverage = float64(res.Detected) / float64(res.Total)
	}
	return res, nil
}

// DictionaryConcurrent builds full-response signatures with single-word
// (W=1) simulators. See DictionaryConcurrentWords.
func DictionaryConcurrent(n *circuit.Netlist, p *logic.PatternSet, faults []Fault, workers int) ([]*Signature, error) {
	return DictionaryConcurrentWords(n, p, faults, workers, 1)
}

// DictionaryConcurrentWords builds the same full-response signatures as
// Simulator.Dictionary, sharding W-word pattern blocks across workers
// (words normalized to {1,2,4,8}). The netlist is compiled exactly once up
// front; each worker owns a cheap Simulator over the shared IR (created
// lazily on first claim) and fills whole signature-column blocks from one
// cone walk per fault. Distinct blocks write disjoint storage, so the
// merged dictionary is bit-identical to the serial one for any worker count
// and any lane width. workers <= 0 selects GOMAXPROCS.
func DictionaryConcurrentWords(n *circuit.Netlist, p *logic.PatternSet, faults []Fault, workers, words int) ([]*Signature, error) {
	c, err := n.Compiled()
	if err != nil {
		return nil, err
	}
	W := NormalizeWords(words)
	nWords := p.Words()
	blocks := (nWords + W - 1) / W
	workers = parallel.Workers(workers)
	if workers <= 1 || blocks <= 1 {
		return NewSimulatorCompiledWords(c, W).Dictionary(p, faults), nil
	}
	sigs := newSignatures(len(faults), len(n.POs), nWords)
	type scratch struct {
		fsim  *Simulator
		pi    []logic.Word
		perPO []logic.Word
	}
	scratches := make([]scratch, workers)
	err = parallel.ForWorker(workers, blocks, func(worker, b int) error {
		sc := &scratches[worker]
		if sc.fsim == nil {
			sc.fsim = NewSimulatorCompiledWords(c, W)
			sc.pi = make([]logic.Word, len(n.PIs)*W)
			sc.perPO = make([]logic.Word, len(n.POs)*W)
		}
		sc.fsim.dictionaryBlock(p, faults, b*W, sigs, sc.pi, sc.perPO)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sigs, nil
}
