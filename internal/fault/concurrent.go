package fault

import (
	"runtime"
	"sync"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/parallel"
)

// RunConcurrent fault-simulates the pattern set across multiple goroutines,
// splitting the fault list into contiguous shards. The netlist is compiled
// exactly once; every worker gets a cheap Simulator over the shared
// immutable IR (and therefore shares the fanout-cone cache). Results are
// identical to Simulator.Run (fault dropping happens within each shard, and
// detection indices do not depend on other faults). workers <= 0 selects
// GOMAXPROCS.
func RunConcurrent(n *circuit.Netlist, p *logic.PatternSet, faults []Fault, workers int) (*Result, error) {
	c, err := n.Compiled()
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(faults) {
		workers = len(faults)
	}
	if workers <= 1 {
		return NewSimulatorCompiled(c).Run(p, faults), nil
	}
	res := &Result{Total: len(faults), DetectedBy: make([]int, len(faults))}
	type shard struct {
		lo, hi int
		out    *Result
	}
	shards := make([]shard, workers)
	per := (len(faults) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > len(faults) {
			hi = len(faults)
		}
		shards[w] = shard{lo: lo, hi: hi}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(s *shard) {
			defer wg.Done()
			s.out = NewSimulatorCompiled(c).Run(p, faults[s.lo:s.hi])
		}(&shards[w])
	}
	wg.Wait()
	for _, s := range shards {
		if s.out == nil {
			continue
		}
		copy(res.DetectedBy[s.lo:s.hi], s.out.DetectedBy)
		res.Detected += s.out.Detected
	}
	if res.Total > 0 {
		res.Coverage = float64(res.Detected) / float64(res.Total)
	}
	return res, nil
}

// DictionaryConcurrent builds the same full-response signatures as
// Simulator.Dictionary, sharding the pattern words across workers. The
// netlist is compiled exactly once up front; each worker owns a cheap
// Simulator over the shared IR (created lazily on first claim) and fills
// whole signature columns. Distinct words write disjoint storage, so the
// merged dictionary is bit-identical to the serial one for any worker
// count. workers <= 0 selects GOMAXPROCS.
func DictionaryConcurrent(n *circuit.Netlist, p *logic.PatternSet, faults []Fault, workers int) ([]*Signature, error) {
	c, err := n.Compiled()
	if err != nil {
		return nil, err
	}
	words := p.Words()
	workers = parallel.Workers(workers)
	if workers <= 1 || words <= 1 {
		return NewSimulatorCompiled(c).Dictionary(p, faults), nil
	}
	sigs := newSignatures(len(faults), len(n.POs), words)
	type scratch struct {
		fsim  *Simulator
		pi    []logic.Word
		perPO []logic.Word
	}
	scratches := make([]scratch, workers)
	err = parallel.ForWorker(workers, words, func(worker, w int) error {
		sc := &scratches[worker]
		if sc.fsim == nil {
			sc.fsim = NewSimulatorCompiled(c)
			sc.pi = make([]logic.Word, len(n.PIs))
			sc.perPO = make([]logic.Word, len(n.POs))
		}
		sc.fsim.dictionaryWord(p, faults, w, sigs, sc.pi, sc.perPO)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sigs, nil
}
