package fault

import (
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/sim"
)

func TestAllFaultsC17(t *testing.T) {
	n := circuit.MustC17()
	fs := AllFaults(n)
	// 11 signals * 2 stem faults = 22, plus branch faults on fanout stems:
	// G1(1), G2(1), G3(2), G6(1), G7(1), G10(1), G11(2), G16(2), G19(1):
	// gates with fanout>1: G3 (feeds G10,G11), G11 (G16,G19), G16 (G22,G23).
	// Branch faults: each consumer input pin fed by those stems gets 2.
	stems := 22
	branches := 0
	for _, g := range n.Gates {
		for _, f := range g.Fanin {
			if len(n.Gates[f].Fanout) > 1 {
				branches += 2
			}
		}
	}
	if len(fs) != stems+branches {
		t.Errorf("fault universe = %d, want %d", len(fs), stems+branches)
	}
}

func TestCollapseReduces(t *testing.T) {
	n := circuit.MustC17()
	all := AllFaults(n)
	col := Collapse(n, all)
	if len(col) >= len(all) {
		t.Errorf("collapsing did not reduce: %d -> %d", len(all), len(col))
	}
	// No NAND input sa0 may survive.
	for _, f := range col {
		if f.Pin >= 0 && n.Gates[f.Gate].Type == circuit.Nand && f.SA == 0 {
			t.Errorf("NAND input sa0 survived collapsing: %v", f)
		}
	}
}

func TestFaultString(t *testing.T) {
	n := circuit.MustC17()
	f := Fault{Gate: 5, Pin: -1, SA: 1}
	if f.String() == "" || f.Name(n) == "" {
		t.Error("empty fault rendering")
	}
	g22, _ := n.GateByName("G22")
	bf := Fault{Gate: g22.ID, Pin: 0, SA: 0}
	if got := bf.Name(n); got != "G22.G10/sa0" {
		t.Errorf("branch fault name = %q", got)
	}
}

// TestDetectionAgainstExplicit verifies PPSFP against an explicit faulty-
// circuit simulation: for each fault, rebuild the faulty function by brute
// force and compare detection per pattern.
func TestDetectionAgainstExplicit(t *testing.T) {
	for _, c := range []*circuit.Netlist{
		circuit.MustC17(),
		circuit.RippleAdder(3),
		circuit.Random(8, 60, 21),
	} {
		fsim, err := NewSimulator(c)
		if err != nil {
			t.Fatal(err)
		}
		faults := Universe(c)
		p := logic.Exhaustive(len(c.PIs))
		if len(c.PIs) > 12 {
			rng := rand.New(rand.NewSource(5))
			p = logic.NewPatternSet(len(c.PIs), 256)
			p.RandFill(rng.Uint64)
		}
		res := fsim.Run(p, faults)
		gsim, _ := sim.New(c)
		goodResp := gsim.Run(p)
		for fi, f := range faults {
			// Explicit faulty simulation for every pattern.
			firstDet := -1
			for k := 0; k < p.N && firstDet < 0; k++ {
				out := simulateFaulty(c, f, p.Pattern(k))
				for o := range c.POs {
					if out[o] != goodResp.Get(k, o) {
						firstDet = k
						break
					}
				}
			}
			if got := res.DetectedBy[fi]; (got < 0) != (firstDet < 0) {
				t.Fatalf("%s fault %s: PPSFP detect=%d, explicit=%d",
					c.Name, f.Name(c), got, firstDet)
			} else if got >= 0 && got != firstDet {
				t.Fatalf("%s fault %s: first detection %d, explicit %d",
					c.Name, f.Name(c), got, firstDet)
			}
		}
	}
}

// simulateFaulty evaluates the netlist with fault f injected, one pattern.
func simulateFaulty(n *circuit.Netlist, f Fault, bits []bool) []bool {
	idx := n.InputIndex()
	vals := make([]bool, len(n.Gates))
	force := f.SA == 1
	for _, id := range n.TopoOrder() {
		g := n.Gates[id]
		var v bool
		if g.Type == circuit.Input || g.Type == circuit.DFF {
			v = bits[idx[id]]
		} else {
			in := make([]bool, len(g.Fanin))
			for pin, fi := range g.Fanin {
				in[pin] = vals[fi]
				if id == f.Gate && pin == f.Pin {
					in[pin] = force
				}
			}
			v = evalBool(g.Type, in)
		}
		if id == f.Gate && f.Pin < 0 {
			v = force
		}
		vals[id] = v
	}
	out := make([]bool, len(n.POs))
	for i, po := range n.POs {
		out[i] = vals[po]
	}
	return out
}

func evalBool(t circuit.GateType, in []bool) bool {
	switch t {
	case circuit.Buf, circuit.DFF:
		return in[0]
	case circuit.Not:
		return !in[0]
	case circuit.And, circuit.Nand:
		v := true
		for _, b := range in {
			v = v && b
		}
		if t == circuit.Nand {
			return !v
		}
		return v
	case circuit.Or, circuit.Nor:
		v := false
		for _, b := range in {
			v = v || b
		}
		if t == circuit.Nor {
			return !v
		}
		return v
	case circuit.Xor, circuit.Xnor:
		v := false
		for _, b := range in {
			v = v != b
		}
		if t == circuit.Xnor {
			return !v
		}
		return v
	}
	panic("bad gate")
}

func TestSerialMatchesParallel(t *testing.T) {
	c := circuit.ALUSlice(4)
	fsim, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	faults := Universe(c)
	rng := rand.New(rand.NewSource(17))
	p := logic.NewPatternSet(len(c.PIs), 100)
	p.RandFill(rng.Uint64)
	par := fsim.Run(p, faults)
	ser := fsim.RunSerial(p, faults)
	if par.Detected != ser.Detected {
		t.Fatalf("parallel detected %d, serial %d", par.Detected, ser.Detected)
	}
	for i := range faults {
		if par.DetectedBy[i] != ser.DetectedBy[i] {
			t.Errorf("fault %v: parallel first=%d serial first=%d",
				faults[i], par.DetectedBy[i], ser.DetectedBy[i])
		}
	}
}

func TestExhaustiveCoverageC17(t *testing.T) {
	c := circuit.MustC17()
	fsim, _ := NewSimulator(c)
	faults := Universe(c)
	res := fsim.Run(logic.Exhaustive(5), faults)
	// c17 is fully testable: exhaustive patterns must detect all collapsed
	// faults.
	if res.Coverage != 1.0 {
		var missed []string
		for i, d := range res.DetectedBy {
			if d < 0 {
				missed = append(missed, faults[i].Name(c))
			}
		}
		t.Errorf("c17 exhaustive coverage = %.3f, undetected: %v", res.Coverage, missed)
	}
}

func TestDictionaryConsistentWithRun(t *testing.T) {
	c := circuit.MustC17()
	fsim, _ := NewSimulator(c)
	faults := Universe(c)
	p := logic.Exhaustive(5)
	res := fsim.Run(p, faults)
	dict := fsim.Dictionary(p, faults)
	for i := range faults {
		detected := res.DetectedBy[i] >= 0
		hasFails := dict[i].FailBits() > 0
		if detected != hasFails {
			t.Errorf("fault %v: run detected=%v, dictionary fails=%d",
				faults[i], detected, dict[i].FailBits())
		}
	}
}

func TestDictionaryFirstFailMatches(t *testing.T) {
	c := circuit.RippleAdder(3)
	fsim, _ := NewSimulator(c)
	faults := Universe(c)
	p := logic.Exhaustive(len(c.PIs))
	res := fsim.Run(p, faults)
	dict := fsim.Dictionary(p, faults)
	for i := range faults {
		if res.DetectedBy[i] < 0 {
			continue
		}
		// First failing pattern in the dictionary must equal DetectedBy.
		first := -1
		for k := 0; k < p.N; k++ {
			w, b := k/logic.WordBits, uint(k%logic.WordBits)
			for o := range dict[i].Bits {
				if dict[i].Bits[o][w]>>b&1 == 1 {
					first = k
					break
				}
			}
			if first >= 0 {
				break
			}
		}
		if first != res.DetectedBy[i] {
			t.Errorf("fault %v: dictionary first fail %d, run says %d",
				faults[i], first, res.DetectedBy[i])
		}
	}
}

func TestUndetectableRedundantFault(t *testing.T) {
	// y = OR(a, NOT(a)) is constant 1: y/sa1 is undetectable.
	src := `
INPUT(a)
OUTPUT(y)
na = NOT(a)
y = OR(a, na)
`
	c, err := circuit.ParseBenchString(src, "taut")
	if err != nil {
		t.Fatal(err)
	}
	fsim, _ := NewSimulator(c)
	y, _ := c.GateByName("y")
	faults := []Fault{{Gate: y.ID, Pin: -1, SA: 1}}
	res := fsim.Run(logic.Exhaustive(1), faults)
	if res.Detected != 0 {
		t.Error("redundant sa1 on constant-1 output reported detected")
	}
}

func TestSortFaults(t *testing.T) {
	fs := []Fault{{3, -1, 1}, {1, 0, 0}, {3, -1, 0}, {1, -1, 1}}
	SortFaults(fs)
	want := []Fault{{1, -1, 1}, {1, 0, 0}, {3, -1, 0}, {3, -1, 1}}
	for i := range want {
		if fs[i] != want[i] {
			t.Fatalf("sorted order = %v", fs)
		}
	}
}

func BenchmarkPPSFP(b *testing.B) {
	c := circuit.Random(32, 1200, 2)
	fsim, err := NewSimulator(c)
	if err != nil {
		b.Fatal(err)
	}
	faults := Universe(c)
	rng := rand.New(rand.NewSource(1))
	p := logic.NewPatternSet(len(c.PIs), 256)
	p.RandFill(rng.Uint64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fsim.Run(p, faults)
	}
	b.ReportMetric(float64(len(faults)), "faults/op")
}

func TestConcurrentMatchesSerial(t *testing.T) {
	c := circuit.Random(16, 300, 8)
	faults := Universe(c)
	rng := rand.New(rand.NewSource(4))
	p := logic.NewPatternSet(len(c.PIs), 192)
	p.RandFill(rng.Uint64)
	fsim, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	want := fsim.Run(p, faults)
	for _, workers := range []int{0, 1, 2, 4, 7} {
		got, err := RunConcurrent(c, p, faults, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got.Detected != want.Detected {
			t.Fatalf("workers=%d: detected %d, want %d", workers, got.Detected, want.Detected)
		}
		for i := range faults {
			if got.DetectedBy[i] != want.DetectedBy[i] {
				t.Fatalf("workers=%d fault %d: first pattern %d, want %d",
					workers, i, got.DetectedBy[i], want.DetectedBy[i])
			}
		}
	}
}

func TestConcurrentMoreWorkersThanFaults(t *testing.T) {
	c := circuit.MustC17()
	faults := Universe(c)[:3]
	got, err := RunConcurrent(c, logic.Exhaustive(5), faults, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got.Total != 3 {
		t.Errorf("total = %d", got.Total)
	}
}
