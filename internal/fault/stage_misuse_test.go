package fault

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/logic"
)

// These tests pin the documented Stage/Probe contracts at their edges: what
// panics, what restages, and what stays bit-identical to the RunInto oracle
// — so the incremental-staging fast path can never silently widen.

func assertPanics(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic, want panic containing %q", substr)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, substr) {
			t.Fatalf("panic %v, want message containing %q", r, substr)
		}
	}()
	fn()
}

func stageFixture(t *testing.T, words int) (*Simulator, *circuit.Netlist, []Fault) {
	t.Helper()
	n := circuit.Random(7, 80, 11)
	s, err := NewSimulatorWords(n, words)
	if err != nil {
		t.Fatal(err)
	}
	return s, n, Universe(n)
}

// TestProbeWithoutStagePanics pins the misuse guard: Probe with nothing
// staged — never staged, or staged and then invalidated by a Run-family
// call — must panic with the documented message, not return garbage.
func TestProbeWithoutStagePanics(t *testing.T) {
	s, n, faults := stageFixture(t, 1)
	assertPanics(t, "Probe without Stage", func() { s.Probe(faults[0]) })

	// Stage, then invalidate via each Run-family entry point: the staged
	// lanes are clobbered, so Probe must refuse rather than read them.
	p := logic.NewPatternSet(len(n.PIs), 30)
	rng := rand.New(rand.NewSource(1))
	p.RandFill(rng.Uint64)
	detBy := make([]int, len(faults))

	s.Stage(p)
	s.Probe(faults[0]) // sanity: staged probes work
	s.RunInto(p, faults, detBy, nil)
	assertPanics(t, "Probe without Stage", func() { s.Probe(faults[0]) })

	s.Stage(p)
	s.RunSerial(p, faults)
	assertPanics(t, "Probe without Stage", func() { s.Probe(faults[0]) })
}

// TestStageRejectsEmptySet pins that staging zero patterns is a contract
// violation (Probe over an empty set is meaningless), as is a set wider
// than the simulator's lane group.
func TestStageRejectsEmptySet(t *testing.T) {
	s, n, _ := stageFixture(t, 1)
	assertPanics(t, "Stage needs", func() { s.Stage(logic.NewPatternSet(len(n.PIs), 0)) })
}

// TestStageRejectsOversizedSet pins the lane-group bound: a W-word
// simulator can stage at most W pattern words; more must panic, not
// silently truncate the set.
func TestStageRejectsOversizedSet(t *testing.T) {
	s, n, _ := stageFixture(t, 2)
	oversize := logic.NewPatternSet(len(n.PIs), 2*logic.WordBits+1) // 3 words > W=2
	assertPanics(t, "Stage needs", func() { s.Stage(oversize) })

	w1, _, _ := stageFixture(t, 1)
	two := logic.NewPatternSet(len(n.PIs), logic.WordBits+1)
	assertPanics(t, "Stage needs", func() { w1.Stage(two) })
}

// TestStageRejectsWidthMismatch pins the input-width check: a pattern set
// for a different circuit must panic with the documented message.
func TestStageRejectsWidthMismatch(t *testing.T) {
	s, n, _ := stageFixture(t, 1)
	assertPanics(t, "pattern width", func() { s.Stage(logic.NewPatternSet(len(n.PIs)+3, 8)) })
}

// TestStageShrunkSetRestages pins the incremental-staging guard: the fast
// path only triggers for the same set object growing append-only. A set
// that shrank (Reset + refill below the staged count) or a different set
// object must take the full restage, and every Probe afterwards must match
// the RunInto oracle on the new set.
func TestStageShrunkSetRestages(t *testing.T) {
	s, n, faults := stageFixture(t, 1)
	rng := rand.New(rand.NewSource(7))

	p := logic.NewPatternSet(len(n.PIs), 0)
	for k := 0; k < 60; k++ {
		p.Append(randBits(rng, len(n.PIs)))
	}
	s.Stage(p)

	// Shrink the same object: Reset drops N to zero, then refill with
	// different, fewer patterns. The stale staged lanes must not leak.
	p.Reset()
	for k := 0; k < 17; k++ {
		p.Append(randBits(rng, len(n.PIs)))
	}
	s.Stage(p)
	probeMatchesOracle(t, s, n, p, faults)

	// A brand-new smaller object likewise restages from scratch.
	q := logic.NewPatternSet(len(n.PIs), 9)
	q.RandFill(rng.Uint64)
	s.Stage(q)
	probeMatchesOracle(t, s, n, q, faults)
}

// TestStageMultiWordIncremental pins words>1 staging: a set grown
// append-only across several Stage calls (the incremental path, including
// crossings of 64-pattern word boundaries) probes bit-identically to the
// RunInto oracle at every step.
func TestStageMultiWordIncremental(t *testing.T) {
	s, n, faults := stageFixture(t, 8)
	rng := rand.New(rand.NewSource(13))
	p := logic.NewPatternSet(len(n.PIs), 0)
	for _, grow := range []int{1, 40, 23, 64, 130} { // cumulative: 1..258 patterns
		for k := 0; k < grow; k++ {
			p.Append(randBits(rng, len(n.PIs)))
		}
		s.Stage(p)
		probeMatchesOracle(t, s, n, p, faults)
	}
}

// probeMatchesOracle cross-checks Probe for every fault against a fresh
// RunInto over the same set — the documented equivalence.
func probeMatchesOracle(t *testing.T, s *Simulator, n *circuit.Netlist, p *logic.PatternSet, faults []Fault) {
	t.Helper()
	oracle, err := NewSimulatorWords(n, s.Words())
	if err != nil {
		t.Fatal(err)
	}
	detBy := make([]int, len(faults))
	oracle.RunInto(p, faults, detBy, nil)
	for i, f := range faults {
		if got, want := s.Probe(f), detBy[i] >= 0; got != want {
			t.Fatalf("N=%d fault %d (%v): Probe = %v, oracle = %v", p.N, i, f, got, want)
		}
	}
}

func randBits(rng *rand.Rand, n int) []bool {
	bits := make([]bool, n)
	for i := range bits {
		bits[i] = rng.Intn(2) == 1
	}
	return bits
}
