package fault

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/logic"
)

// benchSetup builds a generated circuit with roughly the given gate count,
// its collapsed fault universe, and a fixed random pattern set. Seeds are
// fixed so every run (and every engine revision) measures identical work.
func benchSetup(b *testing.B, gates, patterns int) (*circuit.Netlist, []Fault, *logic.PatternSet) {
	b.Helper()
	c := circuit.Random(64, gates, 3)
	faults := Universe(c)
	rng := rand.New(rand.NewSource(1))
	p := logic.NewPatternSet(len(c.PIs), patterns)
	p.RandFill(rng.Uint64)
	return c, faults, p
}

// BenchmarkFaultSim measures PPSFP fault simulation with fault dropping on
// generated circuits of increasing size and lane widths (the acceptance
// benchmark for the event-driven engine; see BENCH_faultsim.json for the
// tracked trajectory). words=1 is the pre-multi-word engine; words=8 packs
// 512 patterns per cone walk.
func BenchmarkFaultSim(b *testing.B) {
	for _, gates := range []int{500, 2000, 8000} {
		for _, words := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("gates=%d/words=%d", gates, words), func(b *testing.B) {
				c, faults, p := benchSetup(b, gates, 256)
				fsim, err := NewSimulatorWords(c, words)
				if err != nil {
					b.Fatal(err)
				}
				fsim.Run(p, faults) // warm the cone cache before timing
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					fsim.Run(p, faults)
				}
				b.ReportMetric(float64(len(faults)), "faults/op")
			})
		}
	}
}

// BenchmarkFaultSimConcurrent measures the multi-goroutine fault-shard path.
func BenchmarkFaultSimConcurrent(b *testing.B) {
	c, faults, p := benchSetup(b, 2000, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunConcurrent(c, p, faults, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDictionary measures full-signature dictionary generation (no
// fault dropping), the diagnosis workload, at single- and multi-word lane
// widths. One 128-pattern set is two 64-bit words, so words=2 fills a whole
// signature from one cone walk per fault.
func BenchmarkDictionary(b *testing.B) {
	for _, gates := range []int{500, 2000} {
		for _, words := range []int{1, 2} {
			b.Run(fmt.Sprintf("gates=%d/words=%d", gates, words), func(b *testing.B) {
				c, faults, p := benchSetup(b, gates, 128)
				fsim, err := NewSimulatorWords(c, words)
				if err != nil {
					b.Fatal(err)
				}
				fsim.Dictionary(p, faults)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					fsim.Dictionary(p, faults)
				}
			})
		}
	}
}
