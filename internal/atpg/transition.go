package atpg

import (
	"math/rand"
	"time"

	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/logic"
)

// TransitionResult reports the two-pattern ATPG flow.
type TransitionResult struct {
	Circuit     string
	TotalFaults int
	Detected    int
	Untestable  int // both launch and capture proven impossible
	Aborted     int
	Patterns    *logic.PatternSet
	Coverage    float64
	Runtime     time.Duration
}

// RunTransition generates a two-pattern test set for transition faults:
// a random phase (consecutive random patterns form launch/capture pairs)
// followed by a deterministic phase that, for each remaining fault,
// generates the capture pattern with PODEM (stuck-at at the slow value)
// and an initialization pattern justifying the pre-transition value, and
// appends them as a consecutive pair.
func RunTransition(n *circuit.Netlist, cfg Config) (*TransitionResult, error) {
	start := time.Now()
	if cfg.BacktrackLim == 0 {
		cfg.BacktrackLim = 10000
	}
	eng, err := New(n)
	if err != nil {
		return nil, err
	}
	eng.Guide = cfg.Guide
	eng.BacktrackLim = cfg.BacktrackLim
	rng := rand.New(rand.NewSource(cfg.Seed))
	faults := fault.TransitionUniverse(n)
	res := &TransitionResult{Circuit: n.Name, TotalFaults: len(faults)}

	// Phase 1: random patterns (pairs arise from adjacency).
	nRand := 256
	if cfg.RandomBlocks > 0 {
		nRand = cfg.RandomBlocks * logic.WordBits
	}
	if cfg.SkipRandom {
		nRand = 0
	}
	patterns := logic.NewPatternSet(len(n.PIs), nRand)
	patterns.RandFill(rng.Uint64)

	detected := make([]bool, len(faults))
	if nRand > 0 {
		r, err := fault.SimulateTransitionsWords(n, patterns, faults, cfg.Workers, cfg.Words)
		if err != nil {
			return nil, err
		}
		for i, d := range r.DetectedBy {
			if d >= 0 {
				detected[i] = true
			}
		}
	}

	// Phase 2: deterministic pairs for the remaining faults.
	for fi, tf := range faults {
		if detected[fi] {
			continue
		}
		// Capture pattern: detect stuck-at(old value) at the site.
		sa := uint8(1)
		if tf.SlowToRise {
			sa = 0
		}
		capCube, capStatus := eng.Generate(fault.Fault{Gate: tf.Gate, Pin: -1, SA: sa})
		// Launch/init pattern: the opposite stuck-at test sets the site to
		// the pre-transition value (its activation condition).
		initCube, initStatus := eng.Generate(fault.Fault{Gate: tf.Gate, Pin: -1, SA: 1 - sa})
		if capStatus == Redundant || initStatus == Redundant {
			// The transition cannot be launched or captured: untestable.
			res.Untestable++
			detected[fi] = true
			continue
		}
		if capStatus != Detected || initStatus != Detected {
			res.Aborted++
			continue
		}
		v1 := fillCube(initCube, rng, cfg.FillRandom)
		v2 := fillCube(capCube, rng, cfg.FillRandom)
		patterns.Append(v1)
		patterns.Append(v2)
		// Drop every still-live fault the grown set now detects (the new
		// pair can detect other faults too).
		var live []fault.TransitionFault
		var liveIdx []int
		for i, tf2 := range faults {
			if !detected[i] {
				live = append(live, tf2)
				liveIdx = append(liveIdx, i)
			}
		}
		r, err := fault.SimulateTransitionsWords(n, patterns, live, cfg.Workers, cfg.Words)
		if err != nil {
			return nil, err
		}
		for i, d := range r.DetectedBy {
			if d >= 0 {
				detected[liveIdx[i]] = true
			}
		}
	}

	final, err := fault.SimulateTransitionsWords(n, patterns, faults, cfg.Workers, cfg.Words)
	if err != nil {
		return nil, err
	}
	res.Patterns = patterns
	res.Detected = final.Detected
	if res.TotalFaults > 0 {
		res.Coverage = float64(res.Detected) / float64(res.TotalFaults)
	}
	res.Runtime = time.Since(start)
	return res, nil
}
