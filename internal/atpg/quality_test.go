package atpg

import (
	"math"
	"strings"
	"testing"

	"repro/internal/circuit"
)

func TestDefectLevelKnownPoints(t *testing.T) {
	// Full coverage ships zero defects regardless of yield.
	if dl, err := DefectLevel(0.5, 1.0); err != nil || dl != 0 {
		t.Errorf("DL(0.5, 1) = %g, %v", dl, err)
	}
	// Zero coverage ships 1-Y defective parts.
	if dl, _ := DefectLevel(0.5, 0); math.Abs(dl-0.5) > 1e-12 {
		t.Errorf("DL(0.5, 0) = %g", dl)
	}
	// Textbook example: Y=0.5, FC=0.95 → DL ≈ 3.4%.
	dl, _ := DefectLevel(0.5, 0.95)
	if math.Abs(dl-0.0341) > 0.001 {
		t.Errorf("DL(0.5, 0.95) = %g, want ~0.034", dl)
	}
}

func TestDefectLevelMonotone(t *testing.T) {
	prev := 1.0
	for fc := 0.0; fc <= 1.0001; fc += 0.05 {
		dl, err := DefectLevel(0.6, math.Min(fc, 1))
		if err != nil {
			t.Fatal(err)
		}
		if dl > prev+1e-12 {
			t.Fatalf("defect level not decreasing in coverage at %f", fc)
		}
		prev = dl
	}
}

func TestDefectLevelValidation(t *testing.T) {
	if _, err := DefectLevel(0, 0.5); err == nil {
		t.Error("zero yield must fail")
	}
	if _, err := DefectLevel(0.5, 1.5); err == nil {
		t.Error("coverage > 1 must fail")
	}
}

func TestRequiredCoverageRoundTrip(t *testing.T) {
	for _, y := range []float64{0.3, 0.5, 0.8} {
		for _, dl := range []float64{0.001, 0.01, 0.05} {
			fc, err := RequiredCoverage(y, dl)
			if err != nil {
				t.Fatal(err)
			}
			if fc > 0 {
				back, _ := DefectLevel(y, fc)
				if math.Abs(back-dl) > 1e-9 {
					t.Errorf("round trip Y=%g DL=%g: got %g", y, dl, back)
				}
			}
		}
	}
	if _, err := RequiredCoverage(1.0, 0.01); err == nil {
		t.Error("yield 1.0 must fail (log singularity)")
	}
}

func TestQualityReport(t *testing.T) {
	res, err := Run(circuit.MustC17(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := res.QualityReport(0.7)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "DPPM") || !strings.Contains(s, "c17") {
		t.Errorf("report = %q", s)
	}
	// c17 at full coverage: 0 DPPM.
	if !strings.Contains(s, "0 DPPM") {
		t.Errorf("full-coverage report should show 0 DPPM: %q", s)
	}
}
