package atpg

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/circuit"
	"repro/internal/logic"
)

// samePatterns reports whether two pattern sets are bit-identical.
func samePatterns(a, b *logic.PatternSet) bool {
	if a.N != b.N || a.Inputs != b.Inputs {
		return false
	}
	for i := range a.Bits {
		for w := range a.Bits[i] {
			if a.Bits[i][w]&a.TailMask(w) != b.Bits[i][w]&b.TailMask(w) {
				return false
			}
		}
	}
	return true
}

// requireIdentical fails the test unless got reproduces want in every field
// the flow pins: the pattern bits themselves and all counters.
func requireIdentical(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if !samePatterns(got.Patterns, want.Patterns) {
		t.Fatalf("%s: pattern set differs (%d patterns vs %d)", label, got.Patterns.N, want.Patterns.N)
	}
	if got.Detected != want.Detected || got.Redundant != want.Redundant ||
		got.Aborted != want.Aborted || got.Backtracks != want.Backtracks ||
		got.RandomPhase != want.RandomPhase || got.DetPhase != want.DetPhase ||
		got.Coverage != want.Coverage || got.Efficiency != want.Efficiency {
		t.Fatalf("%s: counters differ:\n got  det=%d red=%d ab=%d bt=%d rand=%d detph=%d cov=%v eff=%v\n want det=%d red=%d ab=%d bt=%d rand=%d detph=%d cov=%v eff=%v",
			label,
			got.Detected, got.Redundant, got.Aborted, got.Backtracks, got.RandomPhase, got.DetPhase, got.Coverage, got.Efficiency,
			want.Detected, want.Redundant, want.Aborted, want.Backtracks, want.RandomPhase, want.DetPhase, want.Coverage, want.Efficiency)
	}
	if len(got.CoverageAt) != len(want.CoverageAt) {
		t.Fatalf("%s: coverage curve length %d, want %d", label, len(got.CoverageAt), len(want.CoverageAt))
	}
	for k := range got.CoverageAt {
		if got.CoverageAt[k] != want.CoverageAt[k] {
			t.Fatalf("%s: coverage curve diverges at pattern %d", label, k+1)
		}
	}
}

// TestBatchedBitIdenticalGrid pins the determinism contract of the
// speculative flow: for every workers × words combination in the supported
// grid, and for adversarial speculation depths, atpg.Run produces exactly
// the pattern set and statistics of the Serial reference flow. Both the
// random+deterministic flow and the harder deterministic-only flow (every
// fault goes through PODEM, so the commit replay sees skips, redundancies
// and aborts) are pinned.
func TestBatchedBitIdenticalGrid(t *testing.T) {
	for _, skipRandom := range []bool{false, true} {
		n := circuit.Random(16, 250, 77)
		base := DefaultConfig()
		base.BacktrackLim = 50 // low limit so Aborted paths are exercised
		base.SkipRandom = skipRandom
		serial := base
		serial.Serial = true
		want, err := Run(n, serial)
		if err != nil {
			t.Fatal(err)
		}
		if want.Detected == 0 || want.Patterns.N == 0 {
			t.Fatalf("degenerate reference: detected=%d patterns=%d", want.Detected, want.Patterns.N)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			for _, words := range []int{1, 2, 4, 8} {
				cfg := base
				cfg.Workers = workers
				cfg.Words = words
				got, err := Run(n, cfg)
				if err != nil {
					t.Fatal(err)
				}
				requireIdentical(t, fmt.Sprintf("skipRandom=%v workers=%d words=%d", skipRandom, workers, words), got, want)
			}
		}
		// Speculation depth must not be observable: degenerate (1), prime,
		// block-sized, and beyond-universe depths all replay to the same
		// committed sequence.
		for _, depth := range []int{1, 3, 64, 257, 1 << 20} {
			cfg := base
			cfg.Workers = 4
			cfg.Words = 4
			cfg.SpecDepth = depth
			got, err := Run(n, cfg)
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, fmt.Sprintf("skipRandom=%v specDepth=%d", skipRandom, depth), got, want)
		}
	}
}

// TestBatchedSharedIRRace runs eight full ATPG flows concurrently on one
// netlist: the compiled IR must be built exactly once (shared by every
// flow's engines and simulators), and every flow must return the identical
// result. CI runs this package under -race.
func TestBatchedSharedIRRace(t *testing.T) {
	n := circuit.Random(12, 180, 91)
	cfg := DefaultConfig()
	cfg.Workers = 2
	cfg.Words = 2
	want, err := Run(n, cfg)
	if err != nil {
		t.Fatal(err)
	}

	n2 := circuit.Random(12, 180, 91) // fresh netlist: nothing compiled yet
	before := circuit.CompileCount()
	var wg sync.WaitGroup
	results := make([]*Result, 8)
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w], errs[w] = Run(n2, cfg)
		}(w)
	}
	wg.Wait()
	if d := circuit.CompileCount() - before; d != 1 {
		t.Fatalf("8 concurrent flows compiled %d times, want 1 (shared IR)", d)
	}
	for w := 0; w < 8; w++ {
		if errs[w] != nil {
			t.Fatal(errs[w])
		}
		requireIdentical(t, fmt.Sprintf("concurrent flow %d", w), results[w], want)
	}
}

// TestSerialFlagTimingSplit sanity-checks the instrumentation the benchmark
// layer publishes: a deterministic-only run spends measurable time in both
// generation and dropping, and the batched flow reports the same phase
// totals structure as the serial one.
func TestSerialFlagTimingSplit(t *testing.T) {
	n := circuit.Random(14, 200, 5)
	cfg := DefaultConfig()
	cfg.SkipRandom = true
	for _, serial := range []bool{false, true} {
		cfg.Serial = serial
		res, err := Run(n, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.GenTime <= 0 {
			t.Errorf("serial=%v: GenTime = %v, want > 0", serial, res.GenTime)
		}
		if res.DropTime <= 0 {
			t.Errorf("serial=%v: DropTime = %v, want > 0", serial, res.DropTime)
		}
	}
}

// The flow benchmarks use a small gated-parity bank — the random-pattern-
// resistant shape whose deterministic phase the batching rebuild targets —
// sized so bench-smoke stays fast.
func BenchmarkATPGFlow(b *testing.B) {
	n := circuit.GatedParity(8, 12, 8)
	cfg := DefaultConfig()
	cfg.SkipRandom = true
	cfg.Serial = true
	if _, err := Run(n, cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(n, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkATPGFlowParallel(b *testing.B) {
	n := circuit.GatedParity(8, 12, 8)
	cfg := DefaultConfig()
	cfg.SkipRandom = true
	cfg.Workers = 8
	cfg.Words = 8
	if _, err := Run(n, cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(n, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
