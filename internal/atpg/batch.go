package atpg

import (
	"math/rand"
	"time"

	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/parallel"
)

// deterministicBatched is phase 2 of the flow: pattern-batched, speculative
// parallel PODEM with deterministic commit. It reproduces the serial flow's
// decisions exactly — same Generate calls, same pattern set, same statistics
// — while replacing its two per-fault costs with batched equivalents:
//
// Pattern batching: the serial flow runs one full live-list fault simulation
// per committed pattern, using 1 of the 64×Words pattern bits a walk can
// carry. Here committed patterns accumulate in a pending block and the full
// live-list walk runs once per 64×Words patterns (the flush). In between,
// "is this fault already detected?" — the only question the serial flow
// answered with those walks — is answered lazily per fault: the pending
// block's good values are staged once per round and each query is a single
// event-driven cone walk (fault.Stage/Probe). Total dropping work shrinks
// from patterns × live-list walks to faults × cone probes + one walk per
// block, typically one to two orders of magnitude.
//
// Speculation: each round snapshots the next `depth` undetected faults in
// fault order and generates all their candidate cubes concurrently —
// per-worker engines over the shared compiled IR and SCOAP table, per-fault
// SplitMix64 fill seeds, so every candidate is a pure function of its fault
// index. The commit replay then walks candidates in fault order: a
// candidate whose target was meanwhile detected by an earlier committed
// pattern of the same round is discarded exactly as the serial flow would
// never have generated it (its backtracks are not counted); the rest commit
// in order. Commits of this round are re-simulated against later candidates
// (resimOne) so intra-round fortuitous detection is honored.
//
// Speculation depth adapts unless Config.SpecDepth pins it: the snapshot
// scan already counts how many faults the cursor passed over because a
// pending pattern had fortuitously killed them, and the replay counts
// intra-round skips. A high kill rate means each pattern detects many
// upcoming faults — speculating ahead would waste Generate calls — so the
// depth halves (down to 1, the serial schedule with batched dropping). A
// low rate means candidates are independent, so the depth doubles (up to
// one block, 64×Words) and the worker pool gets full fan-out. Because the
// commit protocol is depth-invariant, any deterministic schedule yields
// bit-identical results — pinned by tests across the workers × words grid,
// fixed SpecDepth values and the Serial reference.
func (f *flow) deterministicBatched() {
	workers := parallel.Workers(f.cfg.Workers)
	blockCap := logic.WordBits * fault.NormalizeWords(f.cfg.Words)
	fixedDepth := f.cfg.SpecDepth > 0
	depth := workers
	if fixedDepth {
		depth = f.cfg.SpecDepth
	}
	maxDepth := blockCap
	if maxDepth < workers {
		maxDepth = workers
	}

	engs := make([]*Engine, workers)
	for w := range engs {
		engs[w] = NewShared(f.comp, f.scoap)
		engs[w].Guide = f.cfg.Guide
		engs[w].BacktrackLim = f.cfg.BacktrackLim
	}
	// Intra-round resimulation gets its own single-word simulator so it
	// never clobbers f.fsim's staged good values: re-staging the pending
	// block at each snapshot then stays incremental (only the lane words
	// that gained patterns re-simulate) instead of paying a full-width good
	// simulation per round.
	f.resim = fault.NewSimulatorCompiled(f.comp)

	capHint := depth
	if capHint > len(f.faults) {
		capHint = len(f.faults)
	}
	var (
		pending   = logic.NewPatternSet(len(f.net.PIs), 0) // committed, not yet flushed
		roundKept = logic.NewPatternSet(len(f.net.PIs), 0) // committed this round
		cand      = make([]int, 0, capHint)                // global fault indices, ascending
		statuses  []Status                                 // per-candidate PODEM outcome
		bits      [][]bool                                 // per-candidate filled pattern
		btDelta   []int64                                  // per-candidate backtrack count
	)

	// flush marks everything the pending block detects — the deferred
	// equivalent of the serial flow's per-pattern live-list walks — and
	// resets it. Faults already marked (committed targets, redundant proofs,
	// snapshot/replay skips) are not in the live list, so nothing is counted
	// twice.
	flush := func() {
		if pending.N == 0 {
			return
		}
		live, liveIdx := f.liveFaults()
		f.fsim.RunInto(pending, live, f.detBy, f.dropBuf)
		for i, d := range f.detBy {
			if d >= 0 {
				f.detected[liveIdx[i]] = true
				f.res.DetPhase++
			}
		}
		pending.Reset()
	}

	cursor := 0
	for cursor < len(f.faults) {
		// Snapshot: collect the next `depth` faults that are live even
		// against the pending block. A fault a pending pattern detects is
		// marked here — the serial flow marked it during that pattern's
		// walk, before ever reaching it — so no Generate is wasted on it.
		t1 := time.Now()
		cand = cand[:0]
		deadPassed := 0
		if pending.N > 0 {
			f.fsim.Stage(pending)
		}
		for ; cursor < len(f.faults) && len(cand) < depth; cursor++ {
			if f.detected[cursor] {
				continue
			}
			if pending.N > 0 && f.fsim.Probe(f.faults[cursor]) {
				f.detected[cursor] = true
				f.res.DetPhase++
				deadPassed++
				continue
			}
			cand = append(cand, cursor)
		}
		f.res.DropTime += time.Since(t1)
		m := len(cand)
		if m == 0 {
			break
		}

		// Speculative generation: each candidate is a pure function of its
		// fault index, so workers may complete them in any order.
		t0 := time.Now()
		if cap(statuses) < m {
			statuses = make([]Status, m)
			bits = make([][]bool, m)
			btDelta = make([]int64, m)
		}
		statuses, bits, btDelta = statuses[:m], bits[:m], btDelta[:m]
		_ = parallel.ForWorker(workers, m, func(w, j int) error {
			eng := engs[w]
			before := eng.Backtracks
			cube, status := eng.Generate(f.faults[cand[j]])
			btDelta[j] = eng.Backtracks - before
			statuses[j] = status
			if status == Detected {
				rng := rand.New(rand.NewSource(f.fillSeed(cand[j])))
				bits[j] = fillCube(cube, rng, f.cfg.FillRandom)
			}
			return nil
		})
		f.res.GenTime += time.Since(t0)

		// Commit replay in fault order. A mid-replay flush (pending block
		// full) can mark later candidates of this round detected; the
		// replay honors those marks like any other prior detection.
		t1 = time.Now()
		roundKept.Reset()
		skips := 0
		for j := 0; j < m; j++ {
			fi := cand[j]
			if f.detected[fi] {
				skips++ // marked by a mid-replay flush; already counted there
				continue
			}
			if roundKept.N > 0 && f.resimOne(roundKept, f.faults[fi]) {
				// An earlier committed pattern of this round detects the
				// target: the serial flow would have marked it during that
				// pattern's walk and never generated it.
				f.detected[fi] = true
				f.res.DetPhase++
				skips++
				continue
			}
			f.res.Backtracks += btDelta[j]
			switch statuses[j] {
			case Redundant:
				f.res.Redundant++
				f.detected[fi] = true // excluded from live lists and coverage
			case Aborted:
				f.res.Aborted++
			case Detected:
				roundKept.Append(bits[j])
				pending.Append(bits[j])
				f.patterns.Append(bits[j])
				f.detected[fi] = true
				f.res.DetPhase++
				if pending.N >= blockCap {
					flush()
				}
			}
		}
		f.res.DropTime += time.Since(t1)

		if !fixedDepth {
			// deadPassed+skips of deadPassed+m snapshot-live faults turned
			// out to be fortuitously covered: the kill rate that decides
			// whether speculating further ahead pays.
			killed := deadPassed + skips
			seen := deadPassed + m
			if killed*2 >= seen {
				if depth > 1 {
					depth /= 2
				}
			} else if killed*4 <= seen && m == depth && depth < maxDepth {
				depth *= 2
				if depth > maxDepth {
					depth = maxDepth
				}
			}
		}
	}
	t1 := time.Now()
	flush()
	f.res.DropTime += time.Since(t1)
}

// resimOne reports whether fault fl is detected by any pattern in p — the
// replay's intra-round fortuitous-detection check against the patterns
// committed earlier in the same round. It runs on the dedicated resim
// simulator, leaving f.fsim's staged pending block intact.
func (f *flow) resimOne(p *logic.PatternSet, fl fault.Fault) bool {
	if p.N == 0 {
		return false
	}
	var one [1]fault.Fault
	var db [1]int
	one[0] = fl
	return f.resim.RunInto(p, one[:], db[:], f.dropBuf) > 0
}
