package atpg_test

import (
	"fmt"

	"repro/internal/atpg"
	"repro/internal/circuit"
)

func ExampleRun() {
	res, err := atpg.Run(circuit.MustC17(), atpg.DefaultConfig())
	if err != nil {
		panic(err)
	}
	fmt.Printf("coverage %.0f%% with %d patterns\n", res.Coverage*100, res.Patterns.N)
	// Output: coverage 100% with 8 patterns
}

func ExampleDefectLevel() {
	dl, err := atpg.DefectLevel(0.5, 0.95)
	if err != nil {
		panic(err)
	}
	fmt.Printf("yield 50%%, coverage 95%% → %.0f DPPM\n", atpg.DPPM(dl))
	// Output: yield 50%, coverage 95% → 34064 DPPM
}
