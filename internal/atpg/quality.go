package atpg

import (
	"fmt"
	"math"
)

// DefectLevel returns the Williams–Brown defect level: the expected
// fraction of shipped parts that are defective, given process yield and
// fault coverage:
//
//	DL = 1 - Y^(1-FC)
//
// It is the classical bridge from a coverage number to outgoing quality
// (e.g. 95% coverage at 50% yield ships ~3.4% defective parts) and is used
// to express ATPG results in DPPM terms.
func DefectLevel(yield, coverage float64) (float64, error) {
	if yield <= 0 || yield > 1 {
		return 0, fmt.Errorf("atpg: yield %g outside (0,1]", yield)
	}
	if coverage < 0 || coverage > 1 {
		return 0, fmt.Errorf("atpg: coverage %g outside [0,1]", coverage)
	}
	return 1 - math.Pow(yield, 1-coverage), nil
}

// DPPM converts a defect level to defective parts per million.
func DPPM(defectLevel float64) float64 { return defectLevel * 1e6 }

// RequiredCoverage inverts the Williams–Brown model: the fault coverage
// needed to reach a target defect level at a given yield.
func RequiredCoverage(yield, targetDL float64) (float64, error) {
	if yield <= 0 || yield >= 1 {
		return 0, fmt.Errorf("atpg: yield %g outside (0,1)", yield)
	}
	if targetDL <= 0 || targetDL >= 1 {
		return 0, fmt.Errorf("atpg: target defect level %g outside (0,1)", targetDL)
	}
	// 1 - Y^(1-FC) = DL  =>  FC = 1 - ln(1-DL)/ln(Y)
	fc := 1 - math.Log(1-targetDL)/math.Log(yield)
	if fc < 0 {
		fc = 0 // yield alone already meets the target
	}
	return fc, nil
}

// QualityReport summarizes an ATPG result in shipped-quality terms.
func (r *Result) QualityReport(yield float64) (string, error) {
	dl, err := DefectLevel(yield, r.Coverage)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%s: coverage %.2f%% at yield %.0f%% → defect level %.4f%% (%.0f DPPM)",
		r.Circuit, r.Coverage*100, yield*100, dl*100, DPPM(dl)), nil
}
