// Package atpg implements automatic test pattern generation for single
// stuck-at faults: the PODEM algorithm (Goel 1981) over five-valued
// D-algebra with SCOAP-guided backtrace, plus a complete test-generation
// flow (random-pattern phase, deterministic top-up, reverse-order static
// compaction).
package atpg

import (
	"fmt"
	"math/bits"

	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/logic"
)

// Status classifies the outcome of deterministic test generation for one
// fault.
type Status int

// Test generation outcomes.
const (
	Detected  Status = iota // a test was found
	Redundant               // search space exhausted: the fault is untestable
	Aborted                 // backtrack limit hit before a conclusion
)

func (s Status) String() string {
	switch s {
	case Detected:
		return "detected"
	case Redundant:
		return "redundant"
	case Aborted:
		return "aborted"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Guide selects the backtrace heuristic.
type Guide int

// Backtrace heuristics (ablation knob for experiment T4).
const (
	GuideSCOAP Guide = iota // controllability/observability guided (default)
	GuideNaive              // first-X-input, used as the ablation baseline
)

// Engine generates tests for stuck-at faults on one netlist using PODEM.
// All graph structure — topological order, PI/PO index maps, CSR adjacency
// and the per-PI fanout cones — comes from the shared immutable
// circuit.Compiled IR; the engine owns only its five-valued value array and
// search state.
type Engine struct {
	Net           *circuit.Netlist
	Scoap         *circuit.SCOAP
	Guide         Guide
	BacktrackLim  int // decisions un-done before aborting a fault (default 10000)
	c             *circuit.Compiled
	vals          []logic.V
	Backtracks    int64 // cumulative statistics
	Implications  int64
	faultGate     int
	faultPin      int
	faultSA       uint8
	decisionStack []decision
	visit         []int64 // epoch stamps for xPathExists
	epoch         int64
	stackBuf      []int32
	front         []uint64 // implyPI frontier bitmap over topological positions

	// Incremental search state, maintained by evalGate so the per-decision
	// O(gates) scans of the textbook loop disappear: dCount is the number of
	// POs currently carrying a fault effect (detected() is a comparison);
	// dfList/dfPos hold the current D-frontier as an unordered set with
	// swap-delete membership. Between Generate calls the value array rests
	// at the all-X fixpoint (empty frontier, zero dCount), which also makes
	// the per-fault full-circuit baseline implication unnecessary: the all-X
	// network looks identical under every fault injection.
	dCount int
	dfList []int32
	dfPos  []int32
}

type decision struct {
	pi      int // PI index
	val     logic.V
	flipped bool
}

// New builds a PODEM engine. The netlist must compile; the compiled IR is
// cached on the netlist and shared with the fault simulator and every other
// engine bound to it.
func New(n *circuit.Netlist) (*Engine, error) {
	c, err := n.Compiled()
	if err != nil {
		return nil, fmt.Errorf("atpg: %w", err)
	}
	return NewShared(c, circuit.ComputeSCOAPCompiled(c)), nil
}

// NewShared builds a PODEM engine over an already-compiled IR and an
// already-computed SCOAP table, allocating only the engine's private search
// state. The speculative flow hands one engine per worker the same IR and
// the same SCOAP — both are immutable after construction — so spinning up a
// worker pool costs O(gates) per worker, not a recompile or a SCOAP pass.
func NewShared(c *circuit.Compiled, scoap *circuit.SCOAP) *Engine {
	e := &Engine{
		Net:          c.Net,
		Scoap:        scoap,
		BacktrackLim: 10000,
		c:            c,
		vals:         make([]logic.V, c.NumGates()),
		visit:        make([]int64, c.NumGates()),
		front:        make([]uint64, (c.NumGates()+63)/64),
		dfPos:        make([]int32, c.NumGates()),
	}
	for i := range e.vals {
		e.vals[i] = logic.VX // the resting all-X fixpoint Generate relies on
	}
	for i := range e.dfPos {
		e.dfPos[i] = -1
	}
	return e
}

// implyPI incrementally re-implies after a single PI assignment change.
// Only gates an actual value change reaches are re-evaluated: the walk is
// event-driven over a self-clearing frontier bitmap indexed by topological
// position (the same scheme as the fault simulator's cone walk), so a
// change masked by a controlling side input stops paying immediately
// instead of sweeping the PI's full structural cone. Fanouts always sit at
// strictly higher positions, so each gate is evaluated at most once, after
// all of its changed fanins — the fixpoint is identical to a full cone
// sweep, which is what keeps Generate outcomes bit-identical.
func (e *Engine) implyPI(piIdx int, piVals []logic.V) {
	e.Implications++
	c := e.c
	id := e.Net.PIs[piIdx]
	old := e.vals[id]
	e.evalGate(id, piVals)
	if e.vals[id] == old {
		return
	}
	bm := e.front
	maxW := -1
	for _, fo := range c.Fanout(id) {
		tp := int(c.Tpos[fo])
		bm[tp>>6] |= 1 << uint(tp&63)
		if tw := tp >> 6; tw > maxW {
			maxW = tw
		}
	}
	for w := int(c.Tpos[id]) >> 6; w <= maxW; w++ {
		for bm[w] != 0 {
			b := bits.TrailingZeros64(bm[w])
			bm[w] &^= 1 << uint(b)
			g := int(c.Order[w<<6|b])
			prev := e.vals[g]
			e.evalGate(g, piVals)
			if e.vals[g] == prev {
				continue
			}
			for _, fo := range c.Fanout(g) {
				tp := int(c.Tpos[fo])
				bm[tp>>6] |= 1 << uint(tp&63)
				if tw := tp >> 6; tw > maxW {
					maxW = tw
				}
			}
		}
	}
}

// evalGate recomputes one gate's five-valued output from its fanins with
// fault injection applied, and keeps the incremental search state current:
// the PO fault-effect count and the gate's D-frontier membership. Both
// depend only on the gate's value and its fanin values, and any change to
// either re-evaluates the gate, so updating here is exhaustive.
func (e *Engine) evalGate(id int, piVals []logic.V) {
	c := e.c
	fanin := c.Fanin(id)
	var v logic.V
	t := c.Types[id]
	switch t {
	case circuit.Input, circuit.DFF:
		v = piVals[c.PIPos[id]]
	case circuit.Buf:
		v = e.in(id, fanin, 0)
	case circuit.Not:
		v = e.in(id, fanin, 0).Not()
	case circuit.And, circuit.Nand:
		v = e.in(id, fanin, 0)
		for p := 1; p < len(fanin); p++ {
			v = logic.And(v, e.in(id, fanin, p))
		}
		if t == circuit.Nand {
			v = v.Not()
		}
	case circuit.Or, circuit.Nor:
		v = e.in(id, fanin, 0)
		for p := 1; p < len(fanin); p++ {
			v = logic.Or(v, e.in(id, fanin, p))
		}
		if t == circuit.Nor {
			v = v.Not()
		}
	case circuit.Xor, circuit.Xnor:
		v = e.in(id, fanin, 0)
		for p := 1; p < len(fanin); p++ {
			v = logic.Xor(v, e.in(id, fanin, p))
		}
		if t == circuit.Xnor {
			v = v.Not()
		}
	}
	if id == e.faultGate && e.faultPin < 0 {
		v = e.injectStem(v)
	}
	old := e.vals[id]
	e.vals[id] = v
	if c.POIdx[id] >= 0 && old.IsD() != v.IsD() {
		if v.IsD() {
			e.dCount++
		} else {
			e.dCount--
		}
	}
	if t != circuit.Input {
		inDF := false
		if v == logic.VX {
			for p := range fanin {
				if e.in(id, fanin, p).IsD() {
					inDF = true
					break
				}
			}
		}
		e.setFrontier(id, inDF)
	}
}

// setFrontier inserts or removes a gate from the maintained D-frontier set.
func (e *Engine) setFrontier(id int, in bool) {
	cur := e.dfPos[id] >= 0
	if in == cur {
		return
	}
	if in {
		e.dfPos[id] = int32(len(e.dfList))
		e.dfList = append(e.dfList, int32(id))
		return
	}
	p := e.dfPos[id]
	last := e.dfList[len(e.dfList)-1]
	e.dfList[p] = last
	e.dfPos[last] = p
	e.dfList = e.dfList[:len(e.dfList)-1]
	e.dfPos[id] = -1
}

// in returns the five-valued value on input pin p of gate id, applying the
// branch fault when (id, p) is the fault site.
func (e *Engine) in(id int, fanin []int32, p int) logic.V {
	v := e.vals[fanin[p]]
	if id == e.faultGate && p == e.faultPin {
		return e.injectStem(v)
	}
	return v
}

// injectStem converts the good value at the fault site into the D-algebra
// value seen downstream.
func (e *Engine) injectStem(good logic.V) logic.V {
	switch good.Good() {
	case logic.VX:
		return logic.VX
	case logic.V0:
		if e.faultSA == 1 {
			return logic.VDbar // good 0, faulty 1
		}
		return logic.V0
	default: // good 1
		if e.faultSA == 0 {
			return logic.VD
		}
		return logic.V1
	}
}

// detected reports whether any PO currently carries a fault effect, from
// the count evalGate maintains.
func (e *Engine) detected() bool { return e.dCount > 0 }

// siteValue returns the good value at the fault site line.
func (e *Engine) siteValue() logic.V {
	if e.faultPin < 0 {
		return e.vals[e.faultGate].Good()
	}
	return e.vals[e.c.Fanin(e.faultGate)[e.faultPin]].Good()
}

// xPathExists reports whether a path of X-valued gates connects gate id to
// any primary output — a necessary condition for propagation (X-path
// check). Iterative DFS with epoch-stamped visit marks, allocation free.
func (e *Engine) xPathExists(id int) bool {
	e.epoch++
	stack := e.stackBuf[:0]
	stack = append(stack, int32(id))
	for len(stack) > 0 {
		g := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if e.visit[g] == e.epoch {
			continue
		}
		e.visit[g] = e.epoch
		if e.vals[g] != logic.VX && !e.vals[g].IsD() {
			continue
		}
		if e.c.POIdx[g] >= 0 {
			e.stackBuf = stack[:0]
			return true
		}
		stack = append(stack, e.c.Fanout(int(g))...)
	}
	e.stackBuf = stack[:0]
	return false
}

// objective returns the next (gate, value) goal: activate the fault if not
// yet activated, otherwise advance the D-frontier. ok=false means the
// current partial assignment cannot detect the fault.
func (e *Engine) objective() (gate int, val logic.V, ok bool) {
	sv := e.siteValue()
	want := logic.V1
	if e.faultSA == 1 {
		want = logic.V0
	}
	if sv == logic.VX {
		// Activate: drive the site line to the opposite of the stuck value.
		target := e.faultGate
		if e.faultPin >= 0 {
			target = int(e.c.Fanin(e.faultGate)[e.faultPin])
		}
		return target, want, true
	}
	if sv != want {
		return 0, 0, false // fault cannot be activated under this assignment
	}
	// Propagate: pick the D-frontier gate closest to an output (min CO) and
	// set one of its X side-inputs to the non-controlling value. The
	// maintained set is unordered, so ties break on topological position —
	// the same gate the old in-order full scan would have picked first.
	best := -1
	for _, id32 := range e.dfList {
		id := int(id32)
		if !e.xPathExists(id) {
			continue
		}
		if best < 0 || e.Scoap.CO[id] < e.Scoap.CO[best] ||
			(e.Scoap.CO[id] == e.Scoap.CO[best] && e.c.Tpos[id] < e.c.Tpos[best]) {
			best = id
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	fanin := e.c.Fanin(best)
	nc := nonControlling(e.c.Types[best])
	for p := range fanin {
		if e.in(best, fanin, p) == logic.VX {
			return int(fanin[p]), nc, true
		}
	}
	return 0, 0, false
}

// nonControlling returns the side-input value that lets a fault effect pass
// through the gate type.
func nonControlling(t circuit.GateType) logic.V {
	switch t {
	case circuit.And, circuit.Nand:
		return logic.V1
	case circuit.Or, circuit.Nor:
		return logic.V0
	default: // XOR/XNOR/NOT/BUF: any value sensitizes
		return logic.V0
	}
}

// backtrace maps an objective (gate, value) to an unassigned primary input
// and a value likely to achieve it, walking backward through X-valued gates.
func (e *Engine) backtrace(gate int, val logic.V) (piIdx int, v logic.V, ok bool) {
	id, want := gate, val
	for steps := 0; steps < e.c.NumGates()+1; steps++ {
		t := e.c.Types[id]
		if t == circuit.Input || t == circuit.DFF {
			return int(e.c.PIPos[id]), want, true
		}
		if t.Inverting() {
			want = want.Not()
		}
		fanin := e.c.Fanin(id)
		// Choose which X input to pursue.
		pin := -1
		switch t {
		case circuit.Buf, circuit.Not:
			pin = 0
		case circuit.And, circuit.Nand, circuit.Or, circuit.Nor:
			allNeeded := false
			if t == circuit.And || t == circuit.Nand {
				allNeeded = want == logic.V1 // need all 1s
			} else {
				allNeeded = want == logic.V0 // need all 0s
			}
			pin = e.pickInput(id, fanin, want, allNeeded)
		case circuit.Xor, circuit.Xnor:
			pin = e.pickInput(id, fanin, want, false)
			// Desired value on the chosen input: fold known side inputs.
			acc := want
			for p := range fanin {
				if p == pin {
					continue
				}
				sv := e.in(id, fanin, p).Good()
				if sv == logic.V1 {
					acc = acc.Not()
				}
			}
			want = acc
		}
		if pin < 0 {
			return 0, 0, false
		}
		id = int(fanin[pin])
		if e.vals[id] != logic.VX {
			return 0, 0, false // line already justified; objective stuck
		}
	}
	return 0, 0, false
}

// pickInput chooses an X-valued fanin pin. With SCOAP guidance, the
// "all inputs needed" case picks the hardest line (set the bottleneck
// first), the "any input suffices" case picks the easiest.
func (e *Engine) pickInput(id int, fanin []int32, want logic.V, allNeeded bool) int {
	best, bestCost := -1, 0
	for p, f := range fanin {
		v := e.in(id, fanin, p)
		if v != logic.VX {
			continue
		}
		if e.Guide == GuideNaive {
			return p
		}
		cost := e.Scoap.CC1[f]
		if want == logic.V0 {
			cost = e.Scoap.CC0[f]
		}
		if best < 0 || (allNeeded && cost > bestCost) || (!allNeeded && cost < bestCost) {
			best, bestCost = p, cost
		}
	}
	return best
}

// Generate runs PODEM for one fault. On Detected it returns the test cube
// as five-valued PI assignments (VX = don't care).
//
// The engine enters with its value array at the all-X fixpoint — which is
// identical under every fault injection, so no per-fault baseline
// implication is needed — and restores it on every exit path by unwinding
// the remaining decisions, each an event-driven cone walk over exactly the
// state the search had dirtied.
func (e *Engine) Generate(f fault.Fault) ([]logic.V, Status) {
	e.faultGate, e.faultPin, e.faultSA = f.Gate, f.Pin, f.SA
	piVals := make([]logic.V, len(e.Net.PIs))
	for i := range piVals {
		piVals[i] = logic.VX
	}
	e.decisionStack = e.decisionStack[:0]
	backtracks := 0
	for {
		if e.detected() {
			out := make([]logic.V, len(piVals))
			copy(out, piVals)
			e.unwind(piVals)
			return out, Detected
		}
		gate, val, ok := e.objective()
		var pi int
		var v logic.V
		if ok {
			pi, v, ok = e.backtrace(gate, val)
		}
		if ok {
			piVals[pi] = v
			e.implyPI(pi, piVals)
			e.decisionStack = append(e.decisionStack, decision{pi: pi, val: v})
			continue
		}
		// Dead end: backtrack.
		for {
			if len(e.decisionStack) == 0 {
				return nil, Redundant // fully unwound: already back at all-X
			}
			top := &e.decisionStack[len(e.decisionStack)-1]
			if !top.flipped {
				top.flipped = true
				top.val = top.val.Not()
				piVals[top.pi] = top.val
				e.implyPI(top.pi, piVals)
				backtracks++
				e.Backtracks++
				if backtracks > e.BacktrackLim {
					e.unwind(piVals)
					return nil, Aborted
				}
				break
			}
			piVals[top.pi] = logic.VX
			e.implyPI(top.pi, piVals)
			e.decisionStack = e.decisionStack[:len(e.decisionStack)-1]
		}
	}
}

// unwind pops every remaining decision, re-implying each PI back to X, and
// leaves the value array at the all-X fixpoint the next Generate expects.
func (e *Engine) unwind(piVals []logic.V) {
	for len(e.decisionStack) > 0 {
		top := e.decisionStack[len(e.decisionStack)-1]
		piVals[top.pi] = logic.VX
		e.implyPI(top.pi, piVals)
		e.decisionStack = e.decisionStack[:len(e.decisionStack)-1]
	}
}
