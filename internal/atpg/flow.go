package atpg

import (
	"math/rand"
	"time"

	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/logic"
)

// Config controls the full test-generation flow.
type Config struct {
	Seed         int64
	RandomBlocks int // max 64-pattern random blocks before deterministic phase (default 16)
	RandomStall  int // stop random phase after this many blocks without new detections (default 2)
	BacktrackLim int // PODEM backtrack limit (default 10000)
	Guide        Guide
	Compact      bool // reverse-order static compaction (default on via DefaultConfig)
	FillRandom   bool // fill don't-cares randomly (true) or with zeros
	SkipRandom   bool // deterministic-only flow (for ablation)
	// Workers bounds the fan-out of the post-generation coverage sweep and
	// the transition-fault dictionary (<= 0 selects GOMAXPROCS). Results
	// are bit-identical for any worker count.
	Workers int
	// Words selects the fault-simulation lane width (pattern words packed
	// per cone walk, normalized to {1,2,4,8}). Results are bit-identical
	// for any width.
	Words int
}

// DefaultConfig returns the standard flow configuration.
func DefaultConfig() Config {
	return Config{
		Seed:         1,
		RandomBlocks: 16,
		RandomStall:  2,
		BacktrackLim: 10000,
		Guide:        GuideSCOAP,
		Compact:      true,
		FillRandom:   true,
	}
}

// Result reports the outcome of a full ATPG run.
type Result struct {
	Circuit     string
	TotalFaults int
	Detected    int
	Redundant   int
	Aborted     int
	Patterns    *logic.PatternSet
	RandomPhase int     // faults detected by random patterns
	DetPhase    int     // faults detected by PODEM patterns
	Coverage    float64 // detected / total
	Efficiency  float64 // (detected + proven redundant) / total
	Backtracks  int64
	Runtime     time.Duration
	CoverageAt  []CoveragePoint // coverage after each pattern (for figure F2)
}

// CoveragePoint is one sample of the coverage-vs-patterns curve.
type CoveragePoint struct {
	Patterns int
	Coverage float64
}

// Run executes the full ATPG flow on the netlist: a random-pattern phase
// with fault dropping, a deterministic PODEM phase for the remaining
// faults, and optional reverse-order static compaction.
func Run(n *circuit.Netlist, cfg Config) (*Result, error) {
	start := time.Now()
	if cfg.RandomBlocks == 0 {
		cfg.RandomBlocks = 16
	}
	if cfg.RandomStall == 0 {
		cfg.RandomStall = 2
	}
	if cfg.BacktrackLim == 0 {
		cfg.BacktrackLim = 10000
	}
	fsim, err := fault.NewSimulator(n)
	if err != nil {
		return nil, err
	}
	eng, err := New(n)
	if err != nil {
		return nil, err
	}
	eng.Guide = cfg.Guide
	eng.BacktrackLim = cfg.BacktrackLim

	faults := fault.Universe(n)
	res := &Result{Circuit: n.Name, TotalFaults: len(faults)}
	rng := rand.New(rand.NewSource(cfg.Seed))
	patterns := logic.NewPatternSet(len(n.PIs), 0)
	detected := make([]bool, len(faults))
	remaining := len(faults)

	// Phase 1: random patterns, dropped against the live fault list.
	if !cfg.SkipRandom {
		stall := 0
		for b := 0; b < cfg.RandomBlocks && remaining > 0 && stall < cfg.RandomStall; b++ {
			block := logic.NewPatternSet(len(n.PIs), logic.WordBits)
			block.RandFill(rng.Uint64)
			live, liveIdx := liveFaults(faults, detected)
			r := fsim.Run(block, live)
			newDet := 0
			for i, d := range r.DetectedBy {
				if d >= 0 {
					detected[liveIdx[i]] = true
					newDet++
				}
			}
			if newDet == 0 {
				stall++
				continue // drop useless block entirely
			}
			stall = 0
			remaining -= newDet
			res.RandomPhase += newDet
			for k := 0; k < block.N; k++ {
				patterns.Append(block.Pattern(k))
			}
		}
	}

	// Phase 2: deterministic PODEM for each remaining fault, dropping other
	// faults against each new pattern.
	for fi := range faults {
		if detected[fi] {
			continue
		}
		cube, status := eng.Generate(faults[fi])
		switch status {
		case Redundant:
			res.Redundant++
			detected[fi] = true // excluded from coverage denominator handling below
			continue
		case Aborted:
			res.Aborted++
			continue
		}
		bits := fillCube(cube, rng, cfg.FillRandom)
		one := logic.NewPatternSet(len(n.PIs), 0)
		one.Append(bits)
		live, liveIdx := liveFaults(faults, detected)
		r := fsim.Run(one, live)
		newDet := 0
		for i, d := range r.DetectedBy {
			if d >= 0 {
				detected[liveIdx[i]] = true
				newDet++
			}
		}
		if newDet > 0 {
			patterns.Append(bits)
			res.DetPhase += newDet
		}
	}

	// Phase 3: reverse-order static compaction — re-simulate the pattern set
	// backwards with fault dropping; keep only patterns that detect a fault
	// not detected by a later pattern.
	if cfg.Compact && patterns.N > 1 {
		patterns = compact(fsim, faults, patterns)
	}

	// Final accounting: one clean fault simulation of the final set, fanned
	// out across workers (fault-shard results are bit-identical to serial).
	final, err := fault.RunConcurrentWords(n, patterns, faults, cfg.Workers, cfg.Words)
	if err != nil {
		return nil, err
	}
	res.Patterns = patterns
	res.Detected = final.Detected
	if res.TotalFaults > 0 {
		res.Coverage = float64(res.Detected) / float64(res.TotalFaults)
		res.Efficiency = float64(res.Detected+res.Redundant) / float64(res.TotalFaults)
	}
	res.Backtracks = eng.Backtracks
	res.CoverageAt = coverageCurve(final, patterns.N, res.TotalFaults)
	res.Runtime = time.Since(start)
	return res, nil
}

func liveFaults(faults []fault.Fault, detected []bool) ([]fault.Fault, []int) {
	var live []fault.Fault
	var idx []int
	for i, f := range faults {
		if !detected[i] {
			live = append(live, f)
			idx = append(idx, i)
		}
	}
	return live, idx
}

func fillCube(cube []logic.V, rng *rand.Rand, random bool) []bool {
	bits := make([]bool, len(cube))
	for i, v := range cube {
		switch v {
		case logic.V1:
			bits[i] = true
		case logic.V0:
			bits[i] = false
		default:
			if random {
				bits[i] = rng.Intn(2) == 1
			}
		}
	}
	return bits
}

// compact keeps patterns in reverse order that contribute new detections.
func compact(fsim *fault.Simulator, faults []fault.Fault, p *logic.PatternSet) *logic.PatternSet {
	detected := make([]bool, len(faults))
	var keep []int
	for k := p.N - 1; k >= 0; k-- {
		one := logic.NewPatternSet(p.Inputs, 0)
		one.Append(p.Pattern(k))
		live, liveIdx := liveFaults(faults, detected)
		if len(live) == 0 {
			break
		}
		r := fsim.Run(one, live)
		newDet := 0
		for i, d := range r.DetectedBy {
			if d >= 0 {
				detected[liveIdx[i]] = true
				newDet++
			}
		}
		if newDet > 0 {
			keep = append(keep, k)
		}
	}
	out := logic.NewPatternSet(p.Inputs, 0)
	for i := len(keep) - 1; i >= 0; i-- {
		out.Append(p.Pattern(keep[i]))
	}
	return out
}

// coverageCurve recomputes the cumulative coverage after each pattern from
// the first-detection indices of the final run.
func coverageCurve(r *fault.Result, nPatterns, total int) []CoveragePoint {
	if total == 0 || nPatterns == 0 {
		return nil
	}
	detAt := make([]int, nPatterns)
	for _, d := range r.DetectedBy {
		if d >= 0 && d < nPatterns {
			detAt[d]++
		}
	}
	curve := make([]CoveragePoint, nPatterns)
	cum := 0
	for k := 0; k < nPatterns; k++ {
		cum += detAt[k]
		curve[k] = CoveragePoint{Patterns: k + 1, Coverage: float64(cum) / float64(total)}
	}
	return curve
}

// RandomOnly generates nPatterns random patterns and returns the coverage
// curve — the baseline against which the ATPG curve is compared (figure F2).
func RandomOnly(n *circuit.Netlist, nPatterns int, seed int64) (*Result, error) {
	faults := fault.Universe(n)
	rng := rand.New(rand.NewSource(seed))
	p := logic.NewPatternSet(len(n.PIs), nPatterns)
	p.RandFill(rng.Uint64)
	r, err := fault.RunConcurrent(n, p, faults, 0)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Circuit:     n.Name,
		TotalFaults: len(faults),
		Detected:    r.Detected,
		Patterns:    p,
		Coverage:    r.Coverage,
		CoverageAt:  coverageCurve(r, p.N, len(faults)),
	}
	return res, nil
}
