package atpg

import (
	"math/rand"
	"time"

	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/parallel"
)

// Config controls the full test-generation flow.
type Config struct {
	Seed         int64
	RandomBlocks int // max 64-pattern random blocks before deterministic phase (default 16)
	RandomStall  int // stop random phase after this many blocks without new detections (default 2)
	BacktrackLim int // PODEM backtrack limit (default 10000)
	Guide        Guide
	Compact      bool // reverse-order static compaction (default on via DefaultConfig)
	FillRandom   bool // fill don't-cares randomly (true) or with zeros
	SkipRandom   bool // deterministic-only flow (for ablation)
	// Serial selects the one-PODEM-one-drop-per-fault reference flow: no
	// pattern batching, no speculative generation. Results are bit-identical
	// to the batched flow (pinned by tests); the knob exists for the
	// performance ablation in BENCH_atpg.json and experiment T4.
	Serial bool
	// SpecDepth is the number of undetected faults speculatively generated
	// per round of the batched deterministic phase (<= 0 selects one block's
	// worth, 64 × Words). Results are independent of the value.
	SpecDepth int
	// Workers bounds the fan-out of speculative PODEM generation, the
	// post-generation coverage sweep and the transition-fault dictionary
	// (<= 0 selects GOMAXPROCS). Results are bit-identical for any count.
	Workers int
	// Words selects the fault-simulation lane width (pattern words packed
	// per cone walk, normalized to {1,2,4,8}). Results are bit-identical
	// for any width.
	Words int
}

// DefaultConfig returns the standard flow configuration.
func DefaultConfig() Config {
	return Config{
		Seed:         1,
		RandomBlocks: 16,
		RandomStall:  2,
		BacktrackLim: 10000,
		Guide:        GuideSCOAP,
		Compact:      true,
		FillRandom:   true,
	}
}

// Result reports the outcome of a full ATPG run.
type Result struct {
	Circuit     string
	TotalFaults int
	Detected    int
	Redundant   int
	Aborted     int
	Patterns    *logic.PatternSet
	RandomPhase int     // faults detected by random patterns
	DetPhase    int     // faults detected by PODEM patterns
	Coverage    float64 // detected / total
	Efficiency  float64 // (detected + proven redundant) / total
	Backtracks  int64
	Runtime     time.Duration
	GenTime     time.Duration   // deterministic phase: PODEM generation + fill
	DropTime    time.Duration   // deterministic phase: block fault dropping + commit replay
	CoverageAt  []CoveragePoint // coverage after each pattern (for figure F2)
}

// CoveragePoint is one sample of the coverage-vs-patterns curve.
type CoveragePoint struct {
	Patterns int
	Coverage float64
}

// flow carries the state of one ATPG run: configuration, the shared
// compiled IR and SCOAP table, the simulator, and the scratch buffers that
// phase-1/2/3 hot loops reuse instead of allocating per block or pattern.
type flow struct {
	cfg      Config
	net      *circuit.Netlist
	comp     *circuit.Compiled
	scoap    *circuit.SCOAP
	fsim     *fault.Simulator
	resim    *fault.Simulator // single-word sidecar for intra-round resimOne
	faults   []fault.Fault
	detected []bool
	res      *Result
	patterns *logic.PatternSet

	// Scratch reused across blocks/patterns (satellite of the batching
	// work: liveFaults used to allocate two slices per call in hot loops).
	live    []fault.Fault // live-fault worklist
	liveIdx []int         // live position -> global fault index
	detBy   []int         // first-detection slots, parallel to live
	dropBuf []int         // fsim.RunInto internal worklist
	patBuf  []bool        // one-pattern bit buffer
}

// liveFaults rebuilds the live worklist (undetected faults and their global
// indices) in the flow-owned scratch buffers and returns them sliced to the
// live count; detBy is resized alongside for the next RunInto call.
func (f *flow) liveFaults() ([]fault.Fault, []int) {
	f.live, f.liveIdx = f.live[:0], f.liveIdx[:0]
	for i, fl := range f.faults {
		if !f.detected[i] {
			f.live = append(f.live, fl)
			f.liveIdx = append(f.liveIdx, i)
		}
	}
	if cap(f.detBy) < len(f.live) {
		f.detBy = make([]int, len(f.live))
	}
	f.detBy = f.detBy[:len(f.live)]
	return f.live, f.liveIdx
}

// Run executes the full ATPG flow on the netlist: a random-pattern phase
// with fault dropping, a deterministic PODEM phase for the remaining
// faults — batched into 64×Words pattern blocks and generated speculatively
// across workers unless cfg.Serial — and optional reverse-order static
// compaction. Results are bit-identical for any Workers, Words and
// SpecDepth, and identical to the Serial reference flow.
func Run(n *circuit.Netlist, cfg Config) (*Result, error) {
	start := time.Now()
	if cfg.RandomBlocks == 0 {
		cfg.RandomBlocks = 16
	}
	if cfg.RandomStall == 0 {
		cfg.RandomStall = 2
	}
	if cfg.BacktrackLim == 0 {
		cfg.BacktrackLim = 10000
	}
	comp, err := n.Compiled()
	if err != nil {
		return nil, err
	}
	fsim, err := fault.NewSimulatorWords(n, cfg.Words)
	if err != nil {
		return nil, err
	}
	faults := fault.Universe(n)
	f := &flow{
		cfg:      cfg,
		net:      n,
		comp:     comp,
		scoap:    circuit.ComputeSCOAPCompiled(comp),
		fsim:     fsim,
		faults:   faults,
		detected: make([]bool, len(faults)),
		res:      &Result{Circuit: n.Name, TotalFaults: len(faults)},
		patterns: logic.NewPatternSet(len(n.PIs), 0),
		patBuf:   make([]bool, len(n.PIs)),
		live:     make([]fault.Fault, 0, len(faults)),
		liveIdx:  make([]int, 0, len(faults)),
		detBy:    make([]int, 0, len(faults)),
		dropBuf:  make([]int, 0, len(faults)),
	}

	if !cfg.SkipRandom {
		f.randomPhase()
	}
	if cfg.Serial {
		f.deterministicSerial()
	} else {
		f.deterministicBatched()
	}
	if cfg.Compact && f.patterns.N > 1 {
		blockCap := 1 // Serial ablation keeps the one-pattern-at-a-time shape
		if !cfg.Serial {
			blockCap = logic.WordBits * fault.NormalizeWords(cfg.Words)
		}
		f.patterns = f.compact(blockCap)
	}

	// Final accounting: one clean fault simulation of the final set, fanned
	// out across workers (fault-shard results are bit-identical to serial).
	final, err := fault.RunConcurrentWords(n, f.patterns, faults, cfg.Workers, cfg.Words)
	if err != nil {
		return nil, err
	}
	res := f.res
	res.Patterns = f.patterns
	res.Detected = final.Detected
	if res.TotalFaults > 0 {
		res.Coverage = float64(res.Detected) / float64(res.TotalFaults)
		res.Efficiency = float64(res.Detected+res.Redundant) / float64(res.TotalFaults)
	}
	res.CoverageAt = coverageCurve(final, f.patterns.N, res.TotalFaults)
	res.Runtime = time.Since(start)
	return res, nil
}

// randomPhase runs phase 1: 64-pattern random blocks dropped against the
// live fault list, stopping early after RandomStall consecutive blocks with
// no new detections. Blocks that detect nothing are not appended.
func (f *flow) randomPhase() {
	rng := rand.New(rand.NewSource(f.cfg.Seed))
	block := logic.NewPatternSet(len(f.net.PIs), logic.WordBits)
	stall := 0
	remaining := len(f.faults)
	for b := 0; b < f.cfg.RandomBlocks && remaining > 0 && stall < f.cfg.RandomStall; b++ {
		block.RandFill(rng.Uint64)
		live, liveIdx := f.liveFaults()
		newDet := f.fsim.RunInto(block, live, f.detBy, f.dropBuf)
		for i, d := range f.detBy {
			if d >= 0 {
				f.detected[liveIdx[i]] = true
			}
		}
		if newDet == 0 {
			stall++
			continue // drop useless block entirely
		}
		stall = 0
		remaining -= newDet
		f.res.RandomPhase += newDet
		for k := 0; k < block.N; k++ {
			f.patterns.Append(block.PatternInto(k, f.patBuf))
		}
	}
}

// fillSeed derives the RNG seed for the don't-care fill of the fault at
// global index fi. Splitting per fault — rather than drawing from one
// shared stream — makes every candidate pattern a pure function of its
// fault index, which is what lets speculative workers generate candidates
// out of order and still commit bit-identical results.
func (f *flow) fillSeed(fi int) int64 {
	return parallel.SplitSeed(f.cfg.Seed, int64(fi))
}

// deterministicSerial is phase 2 in the reference shape: one PODEM call and
// one single-pattern block drop per remaining fault, in fault order. It
// shares the per-fault fill-seed discipline with the batched flow, so the
// two produce bit-identical pattern sets.
func (f *flow) deterministicSerial() {
	eng := NewShared(f.comp, f.scoap)
	eng.Guide = f.cfg.Guide
	eng.BacktrackLim = f.cfg.BacktrackLim
	one := logic.NewPatternSet(len(f.net.PIs), 0)
	for fi := range f.faults {
		if f.detected[fi] {
			continue
		}
		t0 := time.Now()
		cube, status := eng.Generate(f.faults[fi])
		switch status {
		case Redundant:
			f.res.GenTime += time.Since(t0)
			f.res.Redundant++
			f.detected[fi] = true // drop from live lists; excluded from coverage
			continue
		case Aborted:
			f.res.GenTime += time.Since(t0)
			f.res.Aborted++
			continue
		}
		rng := rand.New(rand.NewSource(f.fillSeed(fi)))
		bits := fillCube(cube, rng, f.cfg.FillRandom)
		f.res.GenTime += time.Since(t0)
		t1 := time.Now()
		one.Reset()
		one.Append(bits)
		live, liveIdx := f.liveFaults()
		newDet := f.fsim.RunInto(one, live, f.detBy, f.dropBuf)
		for i, d := range f.detBy {
			if d >= 0 {
				f.detected[liveIdx[i]] = true
			}
		}
		f.res.DropTime += time.Since(t1)
		if newDet > 0 {
			f.patterns.Append(bits)
			f.res.DetPhase += newDet
		}
	}
	f.res.Backtracks = eng.Backtracks
}

func fillCube(cube []logic.V, rng *rand.Rand, random bool) []bool {
	bits := make([]bool, len(cube))
	for i, v := range cube {
		switch v {
		case logic.V1:
			bits[i] = true
		case logic.V0:
			bits[i] = false
		default:
			if random {
				bits[i] = rng.Intn(2) == 1
			}
		}
	}
	return bits
}

// compact keeps patterns, sweeping in reverse order, that detect at least
// one fault no later pattern detects. The sweep re-simulates blockCap
// patterns per fault-simulation call and attributes detections to patterns
// with the block's first-detection indices: a pattern survives iff some
// fault's first detection in the reversed order lands on it — exactly the
// serial one-pattern-at-a-time dropping rule, so the kept set is
// independent of blockCap.
func (f *flow) compact(blockCap int) *logic.PatternSet {
	p := f.patterns
	detected := make([]bool, len(f.faults))
	block := logic.NewPatternSet(p.Inputs, 0)
	slotPat := make([]int, 0, blockCap) // block slot -> original pattern index
	keep := make([]bool, p.N)
	live := make([]fault.Fault, 0, len(f.faults))
	liveIdx := make([]int, 0, len(f.faults))
	for k := p.N - 1; k >= 0; {
		live, liveIdx = live[:0], liveIdx[:0]
		for i, fl := range f.faults {
			if !detected[i] {
				live = append(live, fl)
				liveIdx = append(liveIdx, i)
			}
		}
		if len(live) == 0 {
			break
		}
		block.Reset()
		slotPat = slotPat[:0]
		for ; k >= 0 && block.N < blockCap; k-- {
			slotPat = append(slotPat, k)
			block.Append(p.PatternInto(k, f.patBuf))
		}
		if cap(f.detBy) < len(live) {
			f.detBy = make([]int, len(live))
		}
		f.detBy = f.detBy[:len(live)]
		f.fsim.RunInto(block, live, f.detBy, f.dropBuf)
		for i, d := range f.detBy {
			if d >= 0 {
				detected[liveIdx[i]] = true
				keep[slotPat[d]] = true
			}
		}
	}
	out := logic.NewPatternSet(p.Inputs, 0)
	for k := 0; k < p.N; k++ {
		if keep[k] {
			out.Append(p.PatternInto(k, f.patBuf))
		}
	}
	return out
}

// coverageCurve recomputes the cumulative coverage after each pattern from
// the first-detection indices of the final run.
func coverageCurve(r *fault.Result, nPatterns, total int) []CoveragePoint {
	if total == 0 || nPatterns == 0 {
		return nil
	}
	detAt := make([]int, nPatterns)
	for _, d := range r.DetectedBy {
		if d >= 0 && d < nPatterns {
			detAt[d]++
		}
	}
	curve := make([]CoveragePoint, nPatterns)
	cum := 0
	for k := 0; k < nPatterns; k++ {
		cum += detAt[k]
		curve[k] = CoveragePoint{Patterns: k + 1, Coverage: float64(cum) / float64(total)}
	}
	return curve
}

// RandomOnly generates nPatterns random patterns and returns the coverage
// curve — the baseline against which the ATPG curve is compared (figure F2).
func RandomOnly(n *circuit.Netlist, nPatterns int, seed int64) (*Result, error) {
	return RandomOnlyWords(n, nPatterns, seed, 0, 0)
}

// RandomOnlyWords is RandomOnly with the fault-simulation fan-out knobs
// exposed: workers shards the fault list (<= 0 selects GOMAXPROCS) and
// words selects the lane width. Results are bit-identical for any values.
func RandomOnlyWords(n *circuit.Netlist, nPatterns int, seed int64, workers, words int) (*Result, error) {
	faults := fault.Universe(n)
	rng := rand.New(rand.NewSource(seed))
	p := logic.NewPatternSet(len(n.PIs), nPatterns)
	p.RandFill(rng.Uint64)
	r, err := fault.RunConcurrentWords(n, p, faults, workers, words)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Circuit:     n.Name,
		TotalFaults: len(faults),
		Detected:    r.Detected,
		Patterns:    p,
		Coverage:    r.Coverage,
		CoverageAt:  coverageCurve(r, p.N, len(faults)),
	}
	return res, nil
}
