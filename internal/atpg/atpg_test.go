package atpg

import (
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/logic"
)

// verifyCube checks that the generated cube really detects the fault by
// explicit good/faulty simulation of every don't-care completion... that is
// exponential, so instead we fill don't-cares with zeros and with ones and
// check detection by fault simulation (a valid test cube must detect the
// fault for *any* completion).
func verifyCube(t *testing.T, n *circuit.Netlist, f fault.Fault, cube []logic.V) {
	t.Helper()
	fsim, err := fault.NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	for fill := 0; fill < 2; fill++ {
		bits := make([]bool, len(cube))
		for i, v := range cube {
			switch v {
			case logic.V1:
				bits[i] = true
			case logic.V0:
				bits[i] = false
			default:
				bits[i] = fill == 1
			}
		}
		p := logic.NewPatternSet(len(n.PIs), 0)
		p.Append(bits)
		r := fsim.Run(p, []fault.Fault{f})
		if r.Detected != 1 {
			t.Errorf("%s: cube with fill=%d does not detect %s", n.Name, fill, f.Name(n))
		}
	}
}

func TestPODEMDetectsAllC17(t *testing.T) {
	n := circuit.MustC17()
	eng, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fault.Universe(n) {
		cube, status := eng.Generate(f)
		if status != Detected {
			t.Errorf("fault %s: status %v, want detected", f.Name(n), status)
			continue
		}
		verifyCube(t, n, f, cube)
	}
}

func TestPODEMAdder(t *testing.T) {
	n := circuit.RippleAdder(4)
	eng, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	detected := 0
	faults := fault.Universe(n)
	for _, f := range faults {
		cube, status := eng.Generate(f)
		if status == Detected {
			detected++
			verifyCube(t, n, f, cube)
		}
	}
	if detected != len(faults) {
		t.Errorf("adder: PODEM detected %d of %d (adder is fully testable)", detected, len(faults))
	}
}

func TestPODEMProvesRedundancy(t *testing.T) {
	// y = OR(a, NOT(a)): y stuck-at-1 is redundant.
	src := `
INPUT(a)
INPUT(b)
OUTPUT(z)
na = NOT(a)
y = OR(a, na)
z = AND(y, b)
`
	n, err := circuit.ParseBenchString(src, "red")
	if err != nil {
		t.Fatal(err)
	}
	eng, _ := New(n)
	y, _ := n.GateByName("y")
	_, status := eng.Generate(fault.Fault{Gate: y.ID, Pin: -1, SA: 1})
	if status != Redundant {
		t.Errorf("redundant fault classified %v", status)
	}
	// y stuck-at-0 is testable (z = b when y=1 normally, y=0 forces z=0).
	cube, status := eng.Generate(fault.Fault{Gate: y.ID, Pin: -1, SA: 0})
	if status != Detected {
		t.Fatalf("y/sa0 classified %v, want detected", status)
	}
	verifyCube(t, n, fault.Fault{Gate: y.ID, Pin: -1, SA: 0}, cube)
}

func TestGuideNaiveStillCorrect(t *testing.T) {
	n := circuit.ALUSlice(2)
	eng, _ := New(n)
	eng.Guide = GuideNaive
	faults := fault.Universe(n)
	for _, f := range faults[:40] {
		cube, status := eng.Generate(f)
		if status == Detected {
			verifyCube(t, n, f, cube)
		}
	}
}

func TestFullFlowCoverage(t *testing.T) {
	for _, c := range []*circuit.Netlist{
		circuit.MustC17(),
		circuit.RippleAdder(8),
		circuit.ArrayMultiplier(4),
		circuit.Random(16, 200, 3),
	} {
		res, err := Run(c, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if res.Efficiency < 0.99 {
			t.Errorf("%s: efficiency %.3f < 0.99 (cov %.3f, red %d, abort %d)",
				c.Name, res.Efficiency, res.Coverage, res.Redundant, res.Aborted)
		}
		if res.Patterns.N == 0 {
			t.Errorf("%s: no patterns generated", c.Name)
		}
		// Re-simulating the final pattern set must reproduce the coverage.
		fsim, _ := fault.NewSimulator(c)
		r := fsim.Run(res.Patterns, fault.Universe(c))
		if r.Detected != res.Detected {
			t.Errorf("%s: reported %d detected, resim %d", c.Name, res.Detected, r.Detected)
		}
	}
}

func TestCompactionReducesPatterns(t *testing.T) {
	c := circuit.RippleAdder(8)
	cfgNo := DefaultConfig()
	cfgNo.Compact = false
	resNo, err := Run(c, cfgNo)
	if err != nil {
		t.Fatal(err)
	}
	resYes, err := Run(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if resYes.Patterns.N > resNo.Patterns.N {
		t.Errorf("compaction grew pattern count: %d -> %d", resNo.Patterns.N, resYes.Patterns.N)
	}
	if resYes.Detected < resNo.Detected {
		t.Errorf("compaction lost coverage: %d -> %d", resNo.Detected, resYes.Detected)
	}
}

func TestCoverageCurveMonotone(t *testing.T) {
	c := circuit.ArrayMultiplier(4)
	res, err := Run(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, pt := range res.CoverageAt {
		if pt.Coverage < prev {
			t.Fatalf("coverage curve decreases at %d patterns", pt.Patterns)
		}
		prev = pt.Coverage
	}
	if prev != res.Coverage {
		t.Errorf("curve endpoint %.4f != final coverage %.4f", prev, res.Coverage)
	}
}

func TestRandomOnlyBaseline(t *testing.T) {
	c := circuit.ArrayMultiplier(4)
	res, err := RandomOnly(c, 256, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage < 0.5 {
		t.Errorf("random coverage suspiciously low: %.3f", res.Coverage)
	}
	det, err := Run(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if det.Coverage < res.Coverage {
		t.Errorf("ATPG coverage %.3f below random %.3f", det.Coverage, res.Coverage)
	}
}

func TestDeterministicOnlyFlow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SkipRandom = true
	res, err := Run(circuit.MustC17(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RandomPhase != 0 {
		t.Errorf("random phase ran despite SkipRandom")
	}
	if res.Coverage != 1.0 {
		t.Errorf("c17 deterministic coverage = %.3f", res.Coverage)
	}
}

func TestStatusString(t *testing.T) {
	if Detected.String() != "detected" || Redundant.String() != "redundant" || Aborted.String() != "aborted" {
		t.Error("status names wrong")
	}
}

// Property: for randomly chosen faults on random circuits, any cube PODEM
// returns is a genuine test (validated by fault simulation).
func TestPODEMPropertyRandomCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5; trial++ {
		c := circuit.Random(10, 80, int64(trial+100))
		eng, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		faults := fault.Universe(c)
		for k := 0; k < 20; k++ {
			f := faults[rng.Intn(len(faults))]
			cube, status := eng.Generate(f)
			if status == Detected {
				verifyCube(t, c, f, cube)
			}
		}
	}
}

func BenchmarkPODEM(b *testing.B) {
	c := circuit.Random(20, 300, 1)
	eng, err := New(c)
	if err != nil {
		b.Fatal(err)
	}
	faults := fault.Universe(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Generate(faults[i%len(faults)])
	}
}

func BenchmarkFullFlow(b *testing.B) {
	c := circuit.ArrayMultiplier(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(c, DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func TestTransitionATPG(t *testing.T) {
	for _, c := range []*circuit.Netlist{
		circuit.MustC17(),
		circuit.RippleAdder(6),
		circuit.ArrayMultiplier(4),
	} {
		res, err := RunTransition(c, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		reached := float64(res.Detected+res.Untestable) / float64(res.TotalFaults)
		if reached < 0.95 {
			t.Errorf("%s: transition efficiency %.3f (cov %.3f, unt %d, abort %d)",
				c.Name, reached, res.Coverage, res.Untestable, res.Aborted)
		}
		// Re-simulating the final set must reproduce the claimed coverage.
		final, err := fault.SimulateTransitions(c, res.Patterns, fault.TransitionUniverse(c))
		if err != nil {
			t.Fatal(err)
		}
		if final.Detected != res.Detected {
			t.Errorf("%s: reported %d detected, resim %d", c.Name, res.Detected, final.Detected)
		}
	}
}

func TestTransitionATPGBeatsRandomPairs(t *testing.T) {
	c := circuit.ArrayMultiplier(4)
	rng := rand.New(rand.NewSource(2))
	p := logic.NewPatternSet(len(c.PIs), 64)
	p.RandFill(rng.Uint64)
	random, err := fault.SimulateTransitions(c, p, fault.TransitionUniverse(c))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.RandomBlocks = 1
	det, err := RunTransition(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if det.Coverage < random.Coverage {
		t.Errorf("deterministic transition coverage %.3f below random %.3f",
			det.Coverage, random.Coverage)
	}
}
