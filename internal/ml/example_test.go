package ml_test

import (
	"fmt"

	"repro/internal/ml"
)

func ExampleRidge() {
	// y = 2x + 1
	X := [][]float64{{0}, {1}, {2}, {3}}
	y := []float64{1, 3, 5, 7}
	r := ml.NewRidge(1e-9)
	if err := r.Fit(X, y); err != nil {
		panic(err)
	}
	fmt.Printf("w=%.2f b=%.2f predict(4)=%.2f\n", r.Weights[0], r.Intercept, r.Predict([]float64{4}))
	// Output: w=2.00 b=1.00 predict(4)=9.00
}

func ExampleKNNClassifier() {
	X := [][]float64{{0, 0}, {0, 1}, {5, 5}, {5, 6}}
	labels := []int{0, 0, 1, 1}
	knn := ml.NewKNNClassifier(1)
	if err := knn.Fit(X, labels); err != nil {
		panic(err)
	}
	fmt.Println(knn.Predict([]float64{0.2, 0.1}), knn.Predict([]float64{4.9, 5.2}))
	// Output: 0 1
}

func ExampleFitPCA() {
	// Points on the line y = x: one dominant direction.
	X := [][]float64{{-2, -2}, {-1, -1}, {0, 0}, {1, 1}, {2, 2}}
	p, err := ml.FitPCA(X, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("residual of an on-line point: %.3f\n", p.ReconstructionError([]float64{3, 3}))
	fmt.Printf("residual of an off-line point: %.3f\n", p.ReconstructionError([]float64{1, -1}))
	// Output:
	// residual of an on-line point: 0.000
	// residual of an off-line point: 1.414
}

func ExampleConfusionMatrix() {
	truth := []int{0, 0, 1, 1}
	pred := []int{0, 1, 1, 1}
	cm := ml.ConfusionMatrix(truth, pred, 2)
	fmt.Println(cm[0], cm[1])
	// Output: [1 1] [0 2]
}
