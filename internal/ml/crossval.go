package ml

import "fmt"

// CVResult aggregates per-fold regression scores.
type CVResult struct {
	FoldMAPE []float64
	FoldRMSE []float64
	FoldR2   []float64
}

// MeanMAPE returns the average fold MAPE.
func (r CVResult) MeanMAPE() float64 { return mean(r.FoldMAPE) }

// MeanRMSE returns the average fold RMSE.
func (r CVResult) MeanRMSE() float64 { return mean(r.FoldRMSE) }

// MeanR2 returns the average fold R².
func (r CVResult) MeanR2() float64 { return mean(r.FoldR2) }

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// CrossValidate runs k-fold cross-validation of a regressor factory over a
// dataset, fitting a fresh model per fold. The factory must return an
// untrained model each call.
func CrossValidate(factory func() Regressor, X [][]float64, y []float64, k int, seed int64) (CVResult, error) {
	var res CVResult
	if len(X) != len(y) || len(X) == 0 {
		return res, fmt.Errorf("ml: cross-validation needs matching non-empty X, y")
	}
	folds := KFold(len(X), k, seed)
	for _, fold := range folds {
		trainIdx, testIdx := fold[0], fold[1]
		Xtr := make([][]float64, len(trainIdx))
		ytr := make([]float64, len(trainIdx))
		for i, idx := range trainIdx {
			Xtr[i], ytr[i] = X[idx], y[idx]
		}
		m := factory()
		if err := m.Fit(Xtr, ytr); err != nil {
			return res, err
		}
		yTrue := make([]float64, len(testIdx))
		yPred := make([]float64, len(testIdx))
		for i, idx := range testIdx {
			yTrue[i] = y[idx]
			yPred[i] = m.Predict(X[idx])
		}
		res.FoldMAPE = append(res.FoldMAPE, MAPE(yTrue, yPred))
		res.FoldRMSE = append(res.FoldRMSE, RMSE(yTrue, yPred))
		res.FoldR2 = append(res.FoldR2, R2(yTrue, yPred))
	}
	return res, nil
}
