package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// ForestConfig controls random-forest training.
type ForestConfig struct {
	Trees       int
	MaxDepth    int
	MinLeaf     int
	MaxFeatures int // 0 = sqrt(dim) for classification, dim/3 for regression
	Seed        int64
}

// ForestRegressor is a bagged ensemble of regression trees with feature
// subsampling.
type ForestRegressor struct {
	Config ForestConfig
	trees  []*TreeRegressor
}

// NewForestRegressor returns a forest with sensible defaults.
func NewForestRegressor(trees, maxDepth int, seed int64) *ForestRegressor {
	return &ForestRegressor{Config: ForestConfig{Trees: trees, MaxDepth: maxDepth, MinLeaf: 2, Seed: seed}}
}

// Fit trains each tree on a bootstrap resample.
func (f *ForestRegressor) Fit(X [][]float64, y []float64) error {
	if len(X) == 0 || len(X) != len(y) {
		return fmt.Errorf("ml: forest fit needs matching non-empty X, y")
	}
	if f.Config.Trees < 1 {
		return fmt.Errorf("ml: forest needs >= 1 tree")
	}
	dim := len(X[0])
	mf := f.Config.MaxFeatures
	if mf == 0 {
		mf = (dim + 2) / 3
		if mf < 1 {
			mf = 1
		}
	}
	rng := rand.New(rand.NewSource(f.Config.Seed))
	f.trees = make([]*TreeRegressor, f.Config.Trees)
	for t := range f.trees {
		bi, by := bootstrapReg(X, y, rng)
		tree := NewTreeRegressor(f.Config.MaxDepth)
		tree.Config.MinLeaf = f.Config.MinLeaf
		tree.Config.MaxFeatures = mf
		tree.Config.Seed = rng.Int63()
		if err := tree.Fit(bi, by); err != nil {
			return err
		}
		f.trees[t] = tree
	}
	return nil
}

// Predict returns the ensemble mean.
func (f *ForestRegressor) Predict(x []float64) float64 {
	s := 0.0
	for _, t := range f.trees {
		s += t.Predict(x)
	}
	return s / float64(len(f.trees))
}

// ForestClassifier is a bagged ensemble of classification trees.
type ForestClassifier struct {
	Config   ForestConfig
	NClasses int
	trees    []*TreeClassifier
}

// NewForestClassifier returns a forest classifier with defaults.
func NewForestClassifier(trees, maxDepth int, seed int64) *ForestClassifier {
	return &ForestClassifier{Config: ForestConfig{Trees: trees, MaxDepth: maxDepth, MinLeaf: 1, Seed: seed}}
}

// Fit trains the ensemble.
func (f *ForestClassifier) Fit(X [][]float64, labels []int) error {
	if len(X) == 0 || len(X) != len(labels) {
		return fmt.Errorf("ml: forest fit needs matching non-empty X, labels")
	}
	if f.Config.Trees < 1 {
		return fmt.Errorf("ml: forest needs >= 1 tree")
	}
	dim := len(X[0])
	mf := f.Config.MaxFeatures
	if mf == 0 {
		mf = int(math.Sqrt(float64(dim)))
		if mf < 1 {
			mf = 1
		}
	}
	for _, l := range labels {
		if l+1 > f.NClasses {
			f.NClasses = l + 1
		}
	}
	rng := rand.New(rand.NewSource(f.Config.Seed))
	f.trees = make([]*TreeClassifier, f.Config.Trees)
	for t := range f.trees {
		bi, bl := bootstrapCls(X, labels, rng)
		tree := NewTreeClassifier(f.Config.MaxDepth)
		tree.Config.MinLeaf = f.Config.MinLeaf
		tree.Config.MaxFeatures = mf
		tree.Config.Seed = rng.Int63()
		if err := tree.Fit(bi, bl); err != nil {
			return err
		}
		f.trees[t] = tree
	}
	return nil
}

// Predict returns the majority vote across trees.
func (f *ForestClassifier) Predict(x []float64) int {
	votes := make([]int, f.NClasses)
	for _, t := range f.trees {
		l := t.Predict(x)
		if l >= 0 && l < len(votes) {
			votes[l]++
		}
	}
	best, bestV := 0, -1
	for l, v := range votes {
		if v > bestV {
			best, bestV = l, v
		}
	}
	return best
}

func bootstrapReg(X [][]float64, y []float64, rng *rand.Rand) ([][]float64, []float64) {
	n := len(X)
	bx := make([][]float64, n)
	by := make([]float64, n)
	for i := 0; i < n; i++ {
		j := rng.Intn(n)
		bx[i], by[i] = X[j], y[j]
	}
	return bx, by
}

func bootstrapCls(X [][]float64, labels []int, rng *rand.Rand) ([][]float64, []int) {
	n := len(X)
	bx := make([][]float64, n)
	bl := make([]int, n)
	for i := 0; i < n; i++ {
		j := rng.Intn(n)
		bx[i], bl[i] = X[j], labels[j]
	}
	return bx, bl
}

// GBTRegressor is stage-wise gradient boosting with squared loss: each tree
// fits the residual of the current ensemble, added with a shrinkage factor.
type GBTRegressor struct {
	Trees        int
	MaxDepth     int
	LearningRate float64
	Seed         int64
	base         float64
	stages       []*TreeRegressor
}

// NewGBTRegressor returns a boosted ensemble with defaults.
func NewGBTRegressor(trees, maxDepth int, lr float64, seed int64) *GBTRegressor {
	return &GBTRegressor{Trees: trees, MaxDepth: maxDepth, LearningRate: lr, Seed: seed}
}

// Fit trains the boosted stages.
func (g *GBTRegressor) Fit(X [][]float64, y []float64) error {
	if len(X) == 0 || len(X) != len(y) {
		return fmt.Errorf("ml: gbt fit needs matching non-empty X, y")
	}
	if g.Trees < 1 || g.LearningRate <= 0 {
		return fmt.Errorf("ml: gbt needs >= 1 tree and positive learning rate")
	}
	g.base = 0
	for _, v := range y {
		g.base += v
	}
	g.base /= float64(len(y))
	resid := make([]float64, len(y))
	pred := make([]float64, len(y))
	for i := range pred {
		pred[i] = g.base
	}
	rng := rand.New(rand.NewSource(g.Seed))
	g.stages = g.stages[:0]
	for t := 0; t < g.Trees; t++ {
		for i := range resid {
			resid[i] = y[i] - pred[i]
		}
		tree := NewTreeRegressor(g.MaxDepth)
		tree.Config.MinLeaf = 2
		tree.Config.Seed = rng.Int63()
		if err := tree.Fit(X, resid); err != nil {
			return err
		}
		g.stages = append(g.stages, tree)
		for i := range pred {
			pred[i] += g.LearningRate * tree.Predict(X[i])
		}
	}
	return nil
}

// Predict evaluates the boosted ensemble.
func (g *GBTRegressor) Predict(x []float64) float64 {
	s := g.base
	for _, t := range g.stages {
		s += g.LearningRate * t.Predict(x)
	}
	return s
}
