package ml

import (
	"fmt"
	"math"
)

// MSE returns the mean squared error.
func MSE(yTrue, yPred []float64) float64 {
	checkLen(len(yTrue), len(yPred))
	if len(yTrue) == 0 {
		return math.NaN()
	}
	s := 0.0
	for i := range yTrue {
		d := yTrue[i] - yPred[i]
		s += d * d
	}
	return s / float64(len(yTrue))
}

// RMSE returns the root mean squared error.
func RMSE(yTrue, yPred []float64) float64 { return math.Sqrt(MSE(yTrue, yPred)) }

// MAE returns the mean absolute error.
func MAE(yTrue, yPred []float64) float64 {
	checkLen(len(yTrue), len(yPred))
	if len(yTrue) == 0 {
		return math.NaN()
	}
	s := 0.0
	for i := range yTrue {
		s += math.Abs(yTrue[i] - yPred[i])
	}
	return s / float64(len(yTrue))
}

// MAPE returns the mean absolute percentage error (fraction, not percent).
// Samples with |yTrue| below eps are skipped to avoid division blow-up.
func MAPE(yTrue, yPred []float64) float64 {
	checkLen(len(yTrue), len(yPred))
	const eps = 1e-30
	s, n := 0.0, 0
	for i := range yTrue {
		if math.Abs(yTrue[i]) < eps {
			continue
		}
		s += math.Abs((yTrue[i] - yPred[i]) / yTrue[i])
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return s / float64(n)
}

// R2 returns the coefficient of determination.
func R2(yTrue, yPred []float64) float64 {
	checkLen(len(yTrue), len(yPred))
	if len(yTrue) == 0 {
		return math.NaN()
	}
	mean := 0.0
	for _, y := range yTrue {
		mean += y
	}
	mean /= float64(len(yTrue))
	var ssRes, ssTot float64
	for i := range yTrue {
		d := yTrue[i] - yPred[i]
		ssRes += d * d
		t := yTrue[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return math.Inf(-1)
	}
	return 1 - ssRes/ssTot
}

// Accuracy returns the fraction of matching labels.
func Accuracy(yTrue, yPred []int) float64 {
	checkLen(len(yTrue), len(yPred))
	if len(yTrue) == 0 {
		return math.NaN()
	}
	c := 0
	for i := range yTrue {
		if yTrue[i] == yPred[i] {
			c++
		}
	}
	return float64(c) / float64(len(yTrue))
}

// ConfusionMatrix tallies predictions; rows index true labels, columns
// predicted labels, for labels 0..nClasses-1.
func ConfusionMatrix(yTrue, yPred []int, nClasses int) [][]int {
	checkLen(len(yTrue), len(yPred))
	m := make([][]int, nClasses)
	for i := range m {
		m[i] = make([]int, nClasses)
	}
	for i := range yTrue {
		if yTrue[i] < 0 || yTrue[i] >= nClasses || yPred[i] < 0 || yPred[i] >= nClasses {
			panic(fmt.Sprintf("ml: label out of range: true %d pred %d of %d", yTrue[i], yPred[i], nClasses))
		}
		m[yTrue[i]][yPred[i]]++
	}
	return m
}

// MacroF1 returns the unweighted mean of per-class F1 scores. Classes
// absent from both truth and prediction contribute F1 = 0 only if they
// appear in the confusion matrix dimension; classes with no true or
// predicted samples are skipped.
func MacroF1(yTrue, yPred []int, nClasses int) float64 {
	cm := ConfusionMatrix(yTrue, yPred, nClasses)
	sum, n := 0.0, 0
	for c := 0; c < nClasses; c++ {
		tp := cm[c][c]
		fp, fn := 0, 0
		for o := 0; o < nClasses; o++ {
			if o != c {
				fp += cm[o][c]
				fn += cm[c][o]
			}
		}
		if tp+fp+fn == 0 {
			continue // class absent entirely
		}
		n++
		if tp == 0 {
			continue // F1 = 0
		}
		prec := float64(tp) / float64(tp+fp)
		rec := float64(tp) / float64(tp+fn)
		sum += 2 * prec * rec / (prec + rec)
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

func checkLen(a, b int) {
	if a != b {
		panic(fmt.Sprintf("ml: length mismatch %d vs %d", a, b))
	}
}
