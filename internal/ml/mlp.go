package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// MLPConfig controls multilayer-perceptron training.
type MLPConfig struct {
	Hidden    []int // hidden layer sizes
	Epochs    int
	BatchSize int
	LR        float64 // Adam step size
	L2        float64 // weight decay
	Seed      int64
}

// DefaultMLPConfig returns a small, fast configuration.
func DefaultMLPConfig() MLPConfig {
	return MLPConfig{Hidden: []int{32, 32}, Epochs: 200, BatchSize: 32, LR: 1e-3, Seed: 1}
}

// mlpCore implements the shared network with ReLU hidden layers and Adam.
type mlpCore struct {
	cfg     MLPConfig
	sizes   []int // input, hidden..., output
	w       [][]float64
	b       [][]float64
	mw, vw  [][]float64
	mb, vb  [][]float64
	step    int
	scaler  *Scaler
	classes int // >0 for classification
	// History records the training loss per epoch (experiment F5).
	History []float64
}

func newCore(cfg MLPConfig, in, out, classes int) *mlpCore {
	if cfg.BatchSize < 1 {
		cfg.BatchSize = 32
	}
	if cfg.LR <= 0 {
		cfg.LR = 1e-3
	}
	if cfg.Epochs < 1 {
		cfg.Epochs = 100
	}
	sizes := append([]int{in}, cfg.Hidden...)
	sizes = append(sizes, out)
	c := &mlpCore{cfg: cfg, sizes: sizes, classes: classes}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for l := 0; l+1 < len(sizes); l++ {
		fanIn, fanOut := sizes[l], sizes[l+1]
		scale := math.Sqrt(2 / float64(fanIn)) // He init for ReLU
		wl := make([]float64, fanIn*fanOut)
		for i := range wl {
			wl[i] = rng.NormFloat64() * scale
		}
		c.w = append(c.w, wl)
		c.b = append(c.b, make([]float64, fanOut))
		c.mw = append(c.mw, make([]float64, len(wl)))
		c.vw = append(c.vw, make([]float64, len(wl)))
		c.mb = append(c.mb, make([]float64, fanOut))
		c.vb = append(c.vb, make([]float64, fanOut))
	}
	return c
}

// forward computes activations for one sample; acts[l] is the layer-l
// activation (acts[0] = input).
func (c *mlpCore) forward(x []float64, acts [][]float64) {
	copy(acts[0], x)
	for l := 0; l+1 < len(c.sizes); l++ {
		in, out := c.sizes[l], c.sizes[l+1]
		for j := 0; j < out; j++ {
			s := c.b[l][j]
			wrow := c.w[l][j*in : (j+1)*in]
			av := acts[l]
			for i := 0; i < in; i++ {
				s += wrow[i] * av[i]
			}
			if l+2 < len(c.sizes) && s < 0 {
				s = 0 // ReLU on hidden layers
			}
			acts[l+1][j] = s
		}
	}
}

// train runs minibatch Adam. target fills the output-layer error gradient
// (dL/dz for the final pre-activation) for sample index i into grad.
func (c *mlpCore) train(X [][]float64, fillGrad func(i int, out []float64, grad []float64), loss func(i int, out []float64) float64) {
	n := len(X)
	rng := rand.New(rand.NewSource(c.cfg.Seed + 7))
	acts := c.newActs()
	deltas := c.newActs()
	gw := make([][]float64, len(c.w))
	gb := make([][]float64, len(c.b))
	for l := range c.w {
		gw[l] = make([]float64, len(c.w[l]))
		gb[l] = make([]float64, len(c.b[l]))
	}
	order := rng.Perm(n)
	for epoch := 0; epoch < c.cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		epochLoss := 0.0
		for start := 0; start < n; start += c.cfg.BatchSize {
			end := start + c.cfg.BatchSize
			if end > n {
				end = n
			}
			for l := range gw {
				for i := range gw[l] {
					gw[l][i] = 0
				}
				for i := range gb[l] {
					gb[l][i] = 0
				}
			}
			for _, i := range order[start:end] {
				c.forward(X[i], acts)
				out := acts[len(acts)-1]
				epochLoss += loss(i, out)
				fillGrad(i, out, deltas[len(deltas)-1])
				// Backprop.
				for l := len(c.sizes) - 2; l >= 0; l-- {
					in, outN := c.sizes[l], c.sizes[l+1]
					for j := 0; j < outN; j++ {
						d := deltas[l+1][j]
						if d == 0 {
							continue
						}
						wrow := c.w[l][j*in : (j+1)*in]
						grow := gw[l][j*in : (j+1)*in]
						av := acts[l]
						for k := 0; k < in; k++ {
							grow[k] += d * av[k]
						}
						gb[l][j] += d
						if l > 0 {
							dl := deltas[l]
							for k := 0; k < in; k++ {
								dl[k] += d * wrow[k]
							}
						}
					}
					if l > 0 {
						// ReLU derivative on the hidden activation.
						for k := 0; k < in; k++ {
							if acts[l][k] <= 0 {
								deltas[l][k] = 0
							}
						}
					}
				}
				// Clear used deltas for next sample.
				for l := 1; l < len(deltas); l++ {
					if l < len(deltas)-1 {
						for k := range deltas[l] {
							deltas[l][k] = 0
						}
					}
				}
			}
			c.adamStep(gw, gb, end-start)
		}
		c.History = append(c.History, epochLoss/float64(n))
	}
}

func (c *mlpCore) newActs() [][]float64 {
	acts := make([][]float64, len(c.sizes))
	for l, s := range c.sizes {
		acts[l] = make([]float64, s)
	}
	return acts
}

func (c *mlpCore) adamStep(gw, gb [][]float64, batch int) {
	const b1, b2, eps = 0.9, 0.999, 1e-8
	c.step++
	bc1 := 1 - math.Pow(b1, float64(c.step))
	bc2 := 1 - math.Pow(b2, float64(c.step))
	inv := 1 / float64(batch)
	for l := range c.w {
		for i := range c.w[l] {
			g := gw[l][i]*inv + c.cfg.L2*c.w[l][i]
			c.mw[l][i] = b1*c.mw[l][i] + (1-b1)*g
			c.vw[l][i] = b2*c.vw[l][i] + (1-b2)*g*g
			c.w[l][i] -= c.cfg.LR * (c.mw[l][i] / bc1) / (math.Sqrt(c.vw[l][i]/bc2) + eps)
		}
		for i := range c.b[l] {
			g := gb[l][i] * inv
			c.mb[l][i] = b1*c.mb[l][i] + (1-b1)*g
			c.vb[l][i] = b2*c.vb[l][i] + (1-b2)*g*g
			c.b[l][i] -= c.cfg.LR * (c.mb[l][i] / bc1) / (math.Sqrt(c.vb[l][i]/bc2) + eps)
		}
	}
}

// MLPRegressor is a feed-forward network trained with MSE loss. Inputs are
// standardized internally; targets are scaled to zero mean/unit variance
// during training and unscaled at prediction.
type MLPRegressor struct {
	Config MLPConfig
	core   *mlpCore
	yMean  float64
	yStd   float64
}

// NewMLPRegressor returns an MLP regressor with the given config.
func NewMLPRegressor(cfg MLPConfig) *MLPRegressor { return &MLPRegressor{Config: cfg} }

// Fit trains the network.
func (m *MLPRegressor) Fit(X [][]float64, y []float64) error {
	if len(X) == 0 || len(X) != len(y) {
		return fmt.Errorf("ml: mlp fit needs matching non-empty X, y")
	}
	m.core = newCore(m.Config, len(X[0]), 1, 0)
	m.core.scaler = FitScaler(X)
	Xs := m.core.scaler.TransformAll(X)
	// Target scaling.
	m.yMean, m.yStd = 0, 0
	for _, v := range y {
		m.yMean += v
	}
	m.yMean /= float64(len(y))
	for _, v := range y {
		d := v - m.yMean
		m.yStd += d * d
	}
	m.yStd = math.Sqrt(m.yStd / float64(len(y)))
	if m.yStd < 1e-12 {
		m.yStd = 1
	}
	ys := make([]float64, len(y))
	for i, v := range y {
		ys[i] = (v - m.yMean) / m.yStd
	}
	m.core.train(Xs,
		func(i int, out, grad []float64) { grad[0] = out[0] - ys[i] },
		func(i int, out []float64) float64 { d := out[0] - ys[i]; return d * d / 2 },
	)
	return nil
}

// Predict evaluates the network.
func (m *MLPRegressor) Predict(x []float64) float64 {
	acts := m.core.newActs()
	m.core.forward(m.core.scaler.Transform(x), acts)
	return acts[len(acts)-1][0]*m.yStd + m.yMean
}

// History returns the per-epoch training loss.
func (m *MLPRegressor) History() []float64 { return m.core.History }

// MLPClassifier is a feed-forward network with softmax cross-entropy loss.
type MLPClassifier struct {
	Config   MLPConfig
	NClasses int
	core     *mlpCore
}

// NewMLPClassifier returns an MLP classifier with the given config.
func NewMLPClassifier(cfg MLPConfig) *MLPClassifier { return &MLPClassifier{Config: cfg} }

// Fit trains the network.
func (m *MLPClassifier) Fit(X [][]float64, labels []int) error {
	if len(X) == 0 || len(X) != len(labels) {
		return fmt.Errorf("ml: mlp fit needs matching non-empty X, labels")
	}
	nc := 0
	for _, l := range labels {
		if l < 0 {
			return fmt.Errorf("ml: negative label %d", l)
		}
		if l+1 > nc {
			nc = l + 1
		}
	}
	m.NClasses = nc
	m.core = newCore(m.Config, len(X[0]), nc, nc)
	m.core.scaler = FitScaler(X)
	Xs := m.core.scaler.TransformAll(X)
	prob := make([]float64, nc)
	m.core.train(Xs,
		func(i int, out, grad []float64) {
			softmax(out, prob)
			for c := 0; c < nc; c++ {
				grad[c] = prob[c]
				if c == labels[i] {
					grad[c] -= 1
				}
			}
		},
		func(i int, out []float64) float64 {
			softmax(out, prob)
			p := prob[labels[i]]
			if p < 1e-12 {
				p = 1e-12
			}
			return -math.Log(p)
		},
	)
	return nil
}

// Predict returns the argmax class.
func (m *MLPClassifier) Predict(x []float64) int {
	acts := m.core.newActs()
	m.core.forward(m.core.scaler.Transform(x), acts)
	out := acts[len(acts)-1]
	best, bestV := 0, math.Inf(-1)
	for c, v := range out {
		if v > bestV {
			best, bestV = c, v
		}
	}
	return best
}

// History returns the per-epoch training loss.
func (m *MLPClassifier) History() []float64 { return m.core.History }

func softmax(z, out []float64) {
	mx := math.Inf(-1)
	for _, v := range z {
		if v > mx {
			mx = v
		}
	}
	sum := 0.0
	for i, v := range z {
		out[i] = math.Exp(v - mx)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
}
