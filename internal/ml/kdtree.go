package ml

import (
	"fmt"
	"math"
	"sort"
)

// KDTree is a k-d tree over points in R^d for exact nearest-neighbour
// queries — it replaces the brute-force scan in the kNN models, turning
// per-query cost from O(n·d) into O(log n · d) on well-spread data.
type KDTree struct {
	points  [][]float64
	payload []int // index of each point in the original dataset
	nodes   []kdNode
	root    int
}

type kdNode struct {
	point       int // index into points
	axis        int
	left, right int // node indices, -1 = leaf edge
}

// NewKDTree builds a balanced tree by recursive median splits.
func NewKDTree(points [][]float64) (*KDTree, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("ml: kd-tree needs at least one point")
	}
	d := len(points[0])
	for i, p := range points {
		if len(p) != d {
			return nil, fmt.Errorf("ml: kd-tree point %d has dim %d, want %d", i, len(p), d)
		}
	}
	t := &KDTree{points: points}
	t.payload = make([]int, len(points))
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
		t.payload[i] = i
	}
	t.root = t.build(idx, 0, d)
	return t, nil
}

func (t *KDTree) build(idx []int, depth, dim int) int {
	if len(idx) == 0 {
		return -1
	}
	axis := depth % dim
	sort.Slice(idx, func(a, b int) bool {
		return t.points[idx[a]][axis] < t.points[idx[b]][axis]
	})
	mid := len(idx) / 2
	node := kdNode{point: idx[mid], axis: axis}
	id := len(t.nodes)
	t.nodes = append(t.nodes, node)
	left := t.build(append([]int(nil), idx[:mid]...), depth+1, dim)
	right := t.build(append([]int(nil), idx[mid+1:]...), depth+1, dim)
	t.nodes[id].left = left
	t.nodes[id].right = right
	return id
}

// neighbour is one kNN query result.
type neighbour struct {
	index int     // original dataset index
	dist  float64 // Euclidean distance
}

// KNearest returns the k nearest dataset indices and distances to q,
// ordered by increasing distance (ties broken by index for determinism).
func (t *KDTree) KNearest(q []float64, k int) ([]int, []float64) {
	if k > len(t.points) {
		k = len(t.points)
	}
	// Bounded best-k list kept sorted by (dist, index); k is small in every
	// use here, so insertion is cheaper than heap bookkeeping and gives
	// deterministic tie-breaks matching the brute-force reference.
	best := make([]neighbour, 0, k)
	worst := func() float64 {
		if len(best) < k {
			return math.Inf(1)
		}
		return best[len(best)-1].dist
	}
	push := func(n neighbour) {
		pos := len(best)
		for pos > 0 && (best[pos-1].dist > n.dist ||
			(best[pos-1].dist == n.dist && best[pos-1].index > n.index)) {
			pos--
		}
		if len(best) < k {
			best = append(best, neighbour{})
		} else if pos == len(best) {
			return // not better than the current k-th
		}
		copy(best[pos+1:], best[pos:len(best)-1])
		best[pos] = n
	}
	var walk func(node int)
	walk = func(node int) {
		if node < 0 {
			return
		}
		nd := t.nodes[node]
		p := t.points[nd.point]
		push(neighbour{index: t.payload[nd.point], dist: math.Sqrt(sqDist(p, q))})
		diff := q[nd.axis] - p[nd.axis]
		near, far := nd.left, nd.right
		if diff > 0 {
			near, far = nd.right, nd.left
		}
		walk(near)
		if math.Abs(diff) < worst() {
			walk(far)
		}
	}
	walk(t.root)
	idx := make([]int, len(best))
	dist := make([]float64, len(best))
	for i, n := range best {
		idx[i] = n.index
		dist[i] = n.dist
	}
	return idx, dist
}
