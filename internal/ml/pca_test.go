package ml

import (
	"math"
	"math/rand"
	"testing"
)

// anisotropic 2D cloud: variance 9 along (1,1)/√2, variance 0.01 across.
func pcaCloud(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	for i := range X {
		a := rng.NormFloat64() * 3
		b := rng.NormFloat64() * 0.1
		X[i] = []float64{
			(a + b) / math.Sqrt2,
			(a - b) / math.Sqrt2,
		}
	}
	return X
}

func TestPCAFindsDominantDirection(t *testing.T) {
	X := pcaCloud(2000, 1)
	p, err := FitPCA(X, 2)
	if err != nil {
		t.Fatal(err)
	}
	// First component ≈ ±(1,1)/√2.
	c := p.Components[0]
	if math.Abs(math.Abs(c[0])-1/math.Sqrt2) > 0.02 || math.Abs(c[0]-c[1]) > 0.05 && math.Abs(c[0]+c[1]) > 2 {
		t.Errorf("first component = %v", c)
	}
	if p.Eigenvalues[0] < 8 || p.Eigenvalues[0] > 10 {
		t.Errorf("first eigenvalue = %f, want ~9", p.Eigenvalues[0])
	}
	if p.Eigenvalues[1] > 0.05 {
		t.Errorf("second eigenvalue = %f, want ~0.01", p.Eigenvalues[1])
	}
	// Components orthonormal.
	dot, n0, n1 := 0.0, 0.0, 0.0
	for j := range c {
		dot += p.Components[0][j] * p.Components[1][j]
		n0 += p.Components[0][j] * p.Components[0][j]
		n1 += p.Components[1][j] * p.Components[1][j]
	}
	if math.Abs(dot) > 1e-9 || math.Abs(n0-1) > 1e-9 || math.Abs(n1-1) > 1e-9 {
		t.Errorf("components not orthonormal: dot %g norms %g %g", dot, n0, n1)
	}
}

func TestPCAFullRankReconstructsExactly(t *testing.T) {
	X := pcaCloud(200, 2)
	p, err := FitPCA(X, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range X[:20] {
		if e := p.ReconstructionError(x); e > 1e-9 {
			t.Fatalf("full-rank reconstruction error %g", e)
		}
	}
}

func TestPCAResidualDetectsOffSubspacePoints(t *testing.T) {
	X := pcaCloud(500, 3)
	p, err := FitPCA(X, 1)
	if err != nil {
		t.Fatal(err)
	}
	onAxis := []float64{5 / math.Sqrt2, 5 / math.Sqrt2}   // large but in-model
	offAxis := []float64{1 / math.Sqrt2, -1 / math.Sqrt2} // small but off-model
	if p.ReconstructionError(onAxis) > 0.2 {
		t.Errorf("in-subspace point has residual %g", p.ReconstructionError(onAxis))
	}
	if p.ReconstructionError(offAxis) < 0.5 {
		t.Errorf("off-subspace point has residual %g", p.ReconstructionError(offAxis))
	}
}

func TestPCAValidation(t *testing.T) {
	if _, err := FitPCA([][]float64{{1, 2}}, 1); err == nil {
		t.Error("single sample must fail")
	}
	if _, err := FitPCA(pcaCloud(10, 4), 3); err == nil {
		t.Error("k > d must fail")
	}
	if _, err := FitPCA([][]float64{{1, 2}, {1}}, 1); err == nil {
		t.Error("ragged input must fail")
	}
}

func TestExplainedVariance(t *testing.T) {
	p, err := FitPCA(pcaCloud(1000, 5), 2)
	if err != nil {
		t.Fatal(err)
	}
	ev := p.ExplainedVariance()
	if len(ev) != 2 || ev[0] < 0.95 {
		t.Errorf("explained variance = %v", ev)
	}
	sum := ev[0] + ev[1]
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("explained variance sums to %f", sum)
	}
}
