package ml

import (
	"fmt"
	"math"
)

// Ridge is L2-regularized linear regression solved in closed form via the
// normal equations (XᵀX + λI)w = Xᵀy with Gaussian elimination. Lambda = 0
// recovers ordinary least squares (with the caveat of singular designs,
// which the solver reports as an error).
type Ridge struct {
	Lambda    float64
	Weights   []float64 // one per feature
	Intercept float64
}

// NewRidge returns a ridge regressor with the given regularization.
func NewRidge(lambda float64) *Ridge { return &Ridge{Lambda: lambda} }

// Fit solves the normal equations.
func (r *Ridge) Fit(X [][]float64, y []float64) error {
	if len(X) == 0 || len(X) != len(y) {
		return fmt.Errorf("ml: ridge fit needs matching non-empty X, y (%d, %d)", len(X), len(y))
	}
	d := len(X[0])
	// Augment with an intercept column (not regularized).
	n := d + 1
	A := make([][]float64, n)
	for i := range A {
		A[i] = make([]float64, n+1) // last column is the RHS
	}
	row := make([]float64, n)
	for k := range X {
		if len(X[k]) != d {
			return fmt.Errorf("ml: ragged design matrix at row %d", k)
		}
		copy(row, X[k])
		row[d] = 1
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				A[i][j] += row[i] * row[j]
			}
			A[i][n] += row[i] * y[k]
		}
	}
	for i := 0; i < d; i++ { // intercept not regularized
		A[i][i] += r.Lambda
	}
	w, err := solveLinear(A)
	if err != nil {
		return fmt.Errorf("ml: ridge: %w", err)
	}
	r.Weights = w[:d]
	r.Intercept = w[d]
	return nil
}

// Predict evaluates the linear model.
func (r *Ridge) Predict(x []float64) float64 {
	s := r.Intercept
	for j, w := range r.Weights {
		s += w * x[j]
	}
	return s
}

// solveLinear solves the augmented system A·w = b where A is n×(n+1) with b
// in the last column, by Gaussian elimination with partial pivoting. A is
// destroyed.
func solveLinear(A [][]float64) ([]float64, error) {
	n := len(A)
	for col := 0; col < n; col++ {
		// Pivot.
		p := col
		for rI := col + 1; rI < n; rI++ {
			if math.Abs(A[rI][col]) > math.Abs(A[p][col]) {
				p = rI
			}
		}
		if math.Abs(A[p][col]) < 1e-12 {
			return nil, fmt.Errorf("singular system at column %d", col)
		}
		A[col], A[p] = A[p], A[col]
		// Eliminate.
		for rI := col + 1; rI < n; rI++ {
			f := A[rI][col] / A[col][col]
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				A[rI][c] -= f * A[col][c]
			}
		}
	}
	w := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := A[i][n]
		for j := i + 1; j < n; j++ {
			s -= A[i][j] * w[j]
		}
		w[i] = s / A[i][i]
	}
	return w, nil
}

// PolyFeatures expands x with all pairwise products and squares (degree-2
// polynomial basis), a cheap non-linearity boost for linear surrogates.
func PolyFeatures(x []float64) []float64 {
	d := len(x)
	out := make([]float64, 0, d+d*(d+1)/2)
	out = append(out, x...)
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			out = append(out, x[i]*x[j])
		}
	}
	return out
}

// PolyExpand applies PolyFeatures row-wise.
func PolyExpand(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = PolyFeatures(row)
	}
	return out
}
