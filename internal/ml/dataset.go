// Package ml is a self-contained machine-learning library (stdlib only)
// providing the model families the survey applies to test and reliability
// problems: regularized linear regression, k-nearest neighbours, CART
// decision trees, random forests, gradient-boosted trees and multilayer
// perceptrons, together with dataset handling, metrics and cross-validation.
package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// Dataset couples a feature matrix with either regression targets (Y) or
// class labels (Labels); unused targets may be nil.
type Dataset struct {
	X      [][]float64
	Y      []float64
	Labels []int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// Dim returns the feature dimensionality (0 for an empty set).
func (d *Dataset) Dim() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Validate checks matrix shape consistency.
func (d *Dataset) Validate() error {
	dim := d.Dim()
	for i, row := range d.X {
		if len(row) != dim {
			return fmt.Errorf("ml: row %d has %d features, want %d", i, len(row), dim)
		}
	}
	if d.Y != nil && len(d.Y) != len(d.X) {
		return fmt.Errorf("ml: %d targets for %d rows", len(d.Y), len(d.X))
	}
	if d.Labels != nil && len(d.Labels) != len(d.X) {
		return fmt.Errorf("ml: %d labels for %d rows", len(d.Labels), len(d.X))
	}
	return nil
}

// Clone deep-copies the dataset.
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{X: make([][]float64, len(d.X))}
	for i, row := range d.X {
		out.X[i] = append([]float64(nil), row...)
	}
	if d.Y != nil {
		out.Y = append([]float64(nil), d.Y...)
	}
	if d.Labels != nil {
		out.Labels = append([]int(nil), d.Labels...)
	}
	return out
}

// Subset returns the dataset restricted to the given row indices (views
// into the same rows, not copies).
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{X: make([][]float64, len(idx))}
	if d.Y != nil {
		out.Y = make([]float64, len(idx))
	}
	if d.Labels != nil {
		out.Labels = make([]int, len(idx))
	}
	for k, i := range idx {
		out.X[k] = d.X[i]
		if d.Y != nil {
			out.Y[k] = d.Y[i]
		}
		if d.Labels != nil {
			out.Labels[k] = d.Labels[i]
		}
	}
	return out
}

// Shuffle permutes the dataset in place, deterministically from the seed.
func (d *Dataset) Shuffle(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(d.X), func(i, j int) {
		d.X[i], d.X[j] = d.X[j], d.X[i]
		if d.Y != nil {
			d.Y[i], d.Y[j] = d.Y[j], d.Y[i]
		}
		if d.Labels != nil {
			d.Labels[i], d.Labels[j] = d.Labels[j], d.Labels[i]
		}
	})
}

// Split partitions into train/test with the given test fraction. The split
// is positional; call Shuffle first for a random split.
func (d *Dataset) Split(testFrac float64) (train, test *Dataset) {
	n := d.Len()
	nTest := int(math.Round(float64(n) * testFrac))
	if nTest < 0 {
		nTest = 0
	}
	if nTest > n {
		nTest = n
	}
	trainIdx := make([]int, 0, n-nTest)
	testIdx := make([]int, 0, nTest)
	for i := 0; i < n-nTest; i++ {
		trainIdx = append(trainIdx, i)
	}
	for i := n - nTest; i < n; i++ {
		testIdx = append(testIdx, i)
	}
	return d.Subset(trainIdx), d.Subset(testIdx)
}

// KFold yields k (train, test) index partitions.
func KFold(n, k int, seed int64) [][2][]int {
	if k < 2 || n < k {
		panic(fmt.Sprintf("ml: invalid k-fold request n=%d k=%d", n, k))
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	folds := make([][]int, k)
	for i, p := range perm {
		folds[i%k] = append(folds[i%k], p)
	}
	out := make([][2][]int, k)
	for f := 0; f < k; f++ {
		var train []int
		for g := 0; g < k; g++ {
			if g != f {
				train = append(train, folds[g]...)
			}
		}
		out[f] = [2][]int{train, folds[f]}
	}
	return out
}

// Scaler standardizes features to zero mean, unit variance, remembering the
// training statistics for consistent application at inference time.
type Scaler struct {
	Mean []float64
	Std  []float64
}

// FitScaler learns standardization statistics from X.
func FitScaler(X [][]float64) *Scaler {
	if len(X) == 0 {
		return &Scaler{}
	}
	dim := len(X[0])
	s := &Scaler{Mean: make([]float64, dim), Std: make([]float64, dim)}
	for _, row := range X {
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	for j := range s.Mean {
		s.Mean[j] /= float64(len(X))
	}
	for _, row := range X {
		for j, v := range row {
			d := v - s.Mean[j]
			s.Std[j] += d * d
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / float64(len(X)))
		if s.Std[j] < 1e-12 {
			s.Std[j] = 1 // constant feature: leave centered only
		}
	}
	return s
}

// Transform standardizes one row (returns a new slice).
func (s *Scaler) Transform(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.Mean[j]) / s.Std[j]
	}
	return out
}

// TransformAll standardizes a matrix.
func (s *Scaler) TransformAll(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = s.Transform(row)
	}
	return out
}

// Regressor is a trainable real-valued predictor.
type Regressor interface {
	Fit(X [][]float64, y []float64) error
	Predict(x []float64) float64
}

// Classifier is a trainable label predictor.
type Classifier interface {
	Fit(X [][]float64, labels []int) error
	Predict(x []float64) int
}

// PredictAll applies a regressor row-wise.
func PredictAll(r Regressor, X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, row := range X {
		out[i] = r.Predict(row)
	}
	return out
}

// ClassifyAll applies a classifier row-wise.
func ClassifyAll(c Classifier, X [][]float64) []int {
	out := make([]int, len(X))
	for i, row := range X {
		out[i] = c.Predict(row)
	}
	return out
}
