package ml

import (
	"fmt"
	"math/rand"
	"sort"
)

// TreeConfig controls CART growth.
type TreeConfig struct {
	MaxDepth    int // 0 = unlimited
	MinLeaf     int // minimum samples per leaf (default 1)
	MaxFeatures int // features examined per split; 0 = all
	Seed        int64
}

type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	leaf      bool
	value     float64 // regression mean / classification majority label
}

// TreeRegressor is a CART regression tree using variance reduction.
type TreeRegressor struct {
	Config TreeConfig
	root   *treeNode
}

// NewTreeRegressor returns a regression tree with the given depth limit.
func NewTreeRegressor(maxDepth int) *TreeRegressor {
	return &TreeRegressor{Config: TreeConfig{MaxDepth: maxDepth, MinLeaf: 1}}
}

// Fit grows the tree.
func (t *TreeRegressor) Fit(X [][]float64, y []float64) error {
	if len(X) == 0 || len(X) != len(y) {
		return fmt.Errorf("ml: tree fit needs matching non-empty X, y")
	}
	if t.Config.MinLeaf < 1 {
		t.Config.MinLeaf = 1
	}
	idx := seqIdx(len(X))
	rng := rand.New(rand.NewSource(t.Config.Seed))
	t.root = growReg(X, y, idx, t.Config, 0, rng)
	return nil
}

// Predict descends the tree.
func (t *TreeRegressor) Predict(x []float64) float64 { return descend(t.root, x) }

// TreeClassifier is a CART classification tree using Gini impurity.
type TreeClassifier struct {
	Config   TreeConfig
	NClasses int
	root     *treeNode
}

// NewTreeClassifier returns a classification tree.
func NewTreeClassifier(maxDepth int) *TreeClassifier {
	return &TreeClassifier{Config: TreeConfig{MaxDepth: maxDepth, MinLeaf: 1}}
}

// Fit grows the tree. Labels must be in [0, max(labels)].
func (t *TreeClassifier) Fit(X [][]float64, labels []int) error {
	if len(X) == 0 || len(X) != len(labels) {
		return fmt.Errorf("ml: tree fit needs matching non-empty X, labels")
	}
	if t.Config.MinLeaf < 1 {
		t.Config.MinLeaf = 1
	}
	nc := 0
	for _, l := range labels {
		if l < 0 {
			return fmt.Errorf("ml: negative label %d", l)
		}
		if l+1 > nc {
			nc = l + 1
		}
	}
	t.NClasses = nc
	idx := seqIdx(len(X))
	rng := rand.New(rand.NewSource(t.Config.Seed))
	t.root = growCls(X, labels, idx, t.Config, nc, 0, rng)
	return nil
}

// Predict descends the tree and returns the leaf's majority label.
func (t *TreeClassifier) Predict(x []float64) int { return int(descend(t.root, x)) }

func descend(n *treeNode, x []float64) float64 {
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

func seqIdx(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// candidateFeatures returns the feature subset examined at one split.
func candidateFeatures(dim int, cfg TreeConfig, rng *rand.Rand) []int {
	if cfg.MaxFeatures <= 0 || cfg.MaxFeatures >= dim {
		return seqIdx(dim)
	}
	return rng.Perm(dim)[:cfg.MaxFeatures]
}

func growReg(X [][]float64, y []float64, idx []int, cfg TreeConfig, depth int, rng *rand.Rand) *treeNode {
	mean := 0.0
	for _, i := range idx {
		mean += y[i]
	}
	mean /= float64(len(idx))
	leaf := &treeNode{leaf: true, value: mean}
	if len(idx) < 2*cfg.MinLeaf || (cfg.MaxDepth > 0 && depth >= cfg.MaxDepth) {
		return leaf
	}
	bestFeat, bestThr, bestScore := -1, 0.0, 0.0
	// Current SSE.
	sse := 0.0
	for _, i := range idx {
		d := y[i] - mean
		sse += d * d
	}
	if sse == 0 {
		return leaf
	}
	order := make([]int, len(idx))
	for _, f := range candidateFeatures(len(X[0]), cfg, rng) {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return X[order[a]][f] < X[order[b]][f] })
		// Incremental left/right sums.
		var lsum, lsq float64
		rsum, rsq := 0.0, 0.0
		for _, i := range order {
			rsum += y[i]
			rsq += y[i] * y[i]
		}
		for k := 0; k < len(order)-1; k++ {
			i := order[k]
			lsum += y[i]
			lsq += y[i] * y[i]
			rsum -= y[i]
			rsq -= y[i] * y[i]
			if X[order[k]][f] == X[order[k+1]][f] {
				continue // no valid threshold between equal values
			}
			nl, nr := k+1, len(order)-k-1
			if nl < cfg.MinLeaf || nr < cfg.MinLeaf {
				continue
			}
			lsse := lsq - lsum*lsum/float64(nl)
			rsse := rsq - rsum*rsum/float64(nr)
			gain := sse - lsse - rsse
			if gain > bestScore {
				bestScore = gain
				bestFeat = f
				bestThr = (X[order[k]][f] + X[order[k+1]][f]) / 2
			}
		}
	}
	if bestFeat < 0 {
		return leaf
	}
	var li, ri []int
	for _, i := range idx {
		if X[i][bestFeat] <= bestThr {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	return &treeNode{
		feature: bestFeat, threshold: bestThr,
		left:  growReg(X, y, li, cfg, depth+1, rng),
		right: growReg(X, y, ri, cfg, depth+1, rng),
	}
}

func growCls(X [][]float64, labels []int, idx []int, cfg TreeConfig, nc, depth int, rng *rand.Rand) *treeNode {
	counts := make([]int, nc)
	for _, i := range idx {
		counts[labels[i]]++
	}
	maj, majN := 0, -1
	pure := false
	for l, c := range counts {
		if c > majN {
			maj, majN = l, c
		}
	}
	pure = majN == len(idx)
	leaf := &treeNode{leaf: true, value: float64(maj)}
	if pure || len(idx) < 2*cfg.MinLeaf || (cfg.MaxDepth > 0 && depth >= cfg.MaxDepth) {
		return leaf
	}
	gini := func(cnt []int, n int) float64 {
		if n == 0 {
			return 0
		}
		g := 1.0
		for _, c := range cnt {
			p := float64(c) / float64(n)
			g -= p * p
		}
		return g
	}
	parentG := gini(counts, len(idx))
	bestFeat, bestThr, bestGain := -1, 0.0, 1e-12
	order := make([]int, len(idx))
	lCnt := make([]int, nc)
	rCnt := make([]int, nc)
	for _, f := range candidateFeatures(len(X[0]), cfg, rng) {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return X[order[a]][f] < X[order[b]][f] })
		for c := range lCnt {
			lCnt[c] = 0
			rCnt[c] = counts[c]
		}
		for k := 0; k < len(order)-1; k++ {
			i := order[k]
			lCnt[labels[i]]++
			rCnt[labels[i]]--
			if X[order[k]][f] == X[order[k+1]][f] {
				continue
			}
			nl, nr := k+1, len(order)-k-1
			if nl < cfg.MinLeaf || nr < cfg.MinLeaf {
				continue
			}
			w := float64(nl)/float64(len(idx))*gini(lCnt, nl) +
				float64(nr)/float64(len(idx))*gini(rCnt, nr)
			gain := parentG - w
			if gain > bestGain {
				bestGain = gain
				bestFeat = f
				bestThr = (X[order[k]][f] + X[order[k+1]][f]) / 2
			}
		}
	}
	if bestFeat < 0 {
		return leaf
	}
	var li, ri []int
	for _, i := range idx {
		if X[i][bestFeat] <= bestThr {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	return &treeNode{
		feature: bestFeat, threshold: bestThr,
		left:  growCls(X, labels, li, cfg, nc, depth+1, rng),
		right: growCls(X, labels, ri, cfg, nc, depth+1, rng),
	}
}
