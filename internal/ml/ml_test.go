package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// synthetic regression problem: y = 3x0 - 2x1 + 1 + noise
func linearData(n int, noise float64, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{rng.Float64()*4 - 2, rng.Float64()*4 - 2}
		y[i] = 3*X[i][0] - 2*X[i][1] + 1 + rng.NormFloat64()*noise
	}
	return X, y
}

// nonlinear problem: y = sin(pi x0) + x1^2
func nonlinearData(n int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		y[i] = math.Sin(math.Pi*X[i][0]) + X[i][1]*X[i][1]
	}
	return X, y
}

// two-moons-ish classification: label by sign of a nonlinear boundary.
func classData(n int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	l := make([]int, n)
	for i := range X {
		X[i] = []float64{rng.Float64()*4 - 2, rng.Float64()*4 - 2}
		if X[i][1] > math.Sin(X[i][0]*2)*0.8 {
			l[i] = 1
		}
	}
	return X, l
}

func TestRidgeRecoversCoefficients(t *testing.T) {
	X, y := linearData(500, 0.01, 1)
	r := NewRidge(1e-6)
	if err := r.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Weights[0]-3) > 0.05 || math.Abs(r.Weights[1]+2) > 0.05 || math.Abs(r.Intercept-1) > 0.05 {
		t.Errorf("coefficients = %v intercept %f", r.Weights, r.Intercept)
	}
	pred := PredictAll(r, X)
	if r2 := R2(y, pred); r2 < 0.999 {
		t.Errorf("R2 = %f", r2)
	}
}

func TestRidgeRegularizationShrinks(t *testing.T) {
	X, y := linearData(50, 0.1, 2)
	loose := NewRidge(1e-9)
	tight := NewRidge(1e4)
	if err := loose.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := tight.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	nl := math.Abs(loose.Weights[0]) + math.Abs(loose.Weights[1])
	nt := math.Abs(tight.Weights[0]) + math.Abs(tight.Weights[1])
	if nt >= nl {
		t.Errorf("regularization did not shrink weights: %f vs %f", nt, nl)
	}
}

func TestRidgeErrors(t *testing.T) {
	r := NewRidge(0)
	if err := r.Fit(nil, nil); err == nil {
		t.Error("empty fit must fail")
	}
	if err := r.Fit([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged matrix must fail")
	}
	// Perfectly collinear features with zero lambda: singular.
	X := [][]float64{{1, 2}, {2, 4}, {3, 6}}
	y := []float64{1, 2, 3}
	if err := r.Fit(X, y); err == nil {
		t.Error("singular system must fail with lambda=0")
	}
	r2 := NewRidge(1e-3)
	if err := r2.Fit(X, y); err != nil {
		t.Errorf("ridge must handle collinearity: %v", err)
	}
}

func TestPolyFeatures(t *testing.T) {
	out := PolyFeatures([]float64{2, 3})
	want := []float64{2, 3, 4, 6, 9}
	if len(out) != len(want) {
		t.Fatalf("poly length = %d", len(out))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("poly[%d] = %f, want %f", i, out[i], want[i])
		}
	}
}

func TestKNNRegressor(t *testing.T) {
	X, y := nonlinearData(800, 3)
	m := NewKNNRegressor(5)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	Xt, yt := nonlinearData(100, 4)
	pred := make([]float64, len(Xt))
	for i := range Xt {
		pred[i] = m.Predict(Xt[i])
	}
	if r2 := R2(yt, pred); r2 < 0.9 {
		t.Errorf("kNN R2 = %f", r2)
	}
	// Weighted variant also works.
	mw := &KNNRegressor{K: 5, Weighted: true}
	if err := mw.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if v := mw.Predict(X[0]); math.Abs(v-y[0]) > 0.2 {
		t.Errorf("weighted kNN at a training point = %f, want ~%f", v, y[0])
	}
}

func TestKNNClassifier(t *testing.T) {
	X, l := classData(600, 5)
	m := NewKNNClassifier(7)
	if err := m.Fit(X, l); err != nil {
		t.Fatal(err)
	}
	Xt, lt := classData(200, 6)
	pred := ClassifyAll(m, Xt)
	if acc := Accuracy(lt, pred); acc < 0.85 {
		t.Errorf("kNN accuracy = %f", acc)
	}
}

func TestKNNValidation(t *testing.T) {
	if err := NewKNNRegressor(0).Fit([][]float64{{1}}, []float64{1}); err == nil {
		t.Error("k=0 must fail")
	}
	if err := NewKNNClassifier(3).Fit(nil, nil); err == nil {
		t.Error("empty fit must fail")
	}
}

func TestTreeRegressorFitsStep(t *testing.T) {
	// Perfect split on a step function.
	X := [][]float64{{0.1}, {0.2}, {0.3}, {0.7}, {0.8}, {0.9}}
	y := []float64{1, 1, 1, 5, 5, 5}
	tr := NewTreeRegressor(3)
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if v := tr.Predict([]float64{0.0}); v != 1 {
		t.Errorf("left = %f", v)
	}
	if v := tr.Predict([]float64{1.0}); v != 5 {
		t.Errorf("right = %f", v)
	}
}

func TestTreeRegressorNonlinear(t *testing.T) {
	X, y := nonlinearData(1000, 7)
	tr := NewTreeRegressor(8)
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	Xt, yt := nonlinearData(200, 8)
	pred := PredictAll(tr, Xt)
	if r2 := R2(yt, pred); r2 < 0.85 {
		t.Errorf("tree R2 = %f", r2)
	}
}

func TestTreeClassifier(t *testing.T) {
	X, l := classData(800, 9)
	tc := NewTreeClassifier(8)
	if err := tc.Fit(X, l); err != nil {
		t.Fatal(err)
	}
	Xt, lt := classData(200, 10)
	if acc := Accuracy(lt, ClassifyAll(tc, Xt)); acc < 0.85 {
		t.Errorf("tree accuracy = %f", acc)
	}
	if err := tc.Fit([][]float64{{1}}, []int{-1}); err == nil {
		t.Error("negative labels must fail")
	}
}

func TestTreeDepthLimitRespected(t *testing.T) {
	X, y := nonlinearData(300, 11)
	shallow := NewTreeRegressor(1)
	deep := NewTreeRegressor(10)
	if err := shallow.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := deep.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	ps := PredictAll(shallow, X)
	pd := PredictAll(deep, X)
	if MSE(y, ps) <= MSE(y, pd) {
		t.Error("depth-1 tree cannot beat depth-10 on training data")
	}
	// Depth-1 tree has at most 2 distinct outputs.
	vals := map[float64]bool{}
	for _, p := range ps {
		vals[p] = true
	}
	if len(vals) > 2 {
		t.Errorf("stump produced %d distinct outputs", len(vals))
	}
}

func TestForestRegressor(t *testing.T) {
	X, y := nonlinearData(600, 12)
	f := NewForestRegressor(30, 8, 1)
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	Xt, yt := nonlinearData(200, 13)
	if r2 := R2(yt, PredictAll(f, Xt)); r2 < 0.88 {
		t.Errorf("forest R2 = %f", r2)
	}
}

func TestForestClassifier(t *testing.T) {
	X, l := classData(800, 14)
	f := NewForestClassifier(25, 8, 1)
	if err := f.Fit(X, l); err != nil {
		t.Fatal(err)
	}
	Xt, lt := classData(200, 15)
	if acc := Accuracy(lt, ClassifyAll(f, Xt)); acc < 0.88 {
		t.Errorf("forest accuracy = %f", acc)
	}
}

func TestForestDeterministic(t *testing.T) {
	X, y := nonlinearData(200, 16)
	a := NewForestRegressor(10, 6, 99)
	b := NewForestRegressor(10, 6, 99)
	if err := a.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if a.Predict(X[i]) != b.Predict(X[i]) {
			t.Fatal("same-seed forests differ")
		}
	}
}

func TestGBTRegressor(t *testing.T) {
	X, y := nonlinearData(600, 17)
	g := NewGBTRegressor(150, 3, 0.1, 1)
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	Xt, yt := nonlinearData(200, 18)
	if r2 := R2(yt, PredictAll(g, Xt)); r2 < 0.93 {
		t.Errorf("GBT R2 = %f", r2)
	}
}

func TestGBTBeatsSingleTree(t *testing.T) {
	X, y := nonlinearData(500, 19)
	Xt, yt := nonlinearData(200, 20)
	tr := NewTreeRegressor(3)
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	g := NewGBTRegressor(100, 3, 0.1, 1)
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if MSE(yt, PredictAll(g, Xt)) >= MSE(yt, PredictAll(tr, Xt)) {
		t.Error("boosting failed to improve over its base learner")
	}
}

func TestMLPRegressor(t *testing.T) {
	X, y := nonlinearData(800, 21)
	cfg := DefaultMLPConfig()
	cfg.Epochs = 300
	m := NewMLPRegressor(cfg)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	Xt, yt := nonlinearData(200, 22)
	if r2 := R2(yt, PredictAll(m, Xt)); r2 < 0.9 {
		t.Errorf("MLP R2 = %f", r2)
	}
	h := m.History()
	if len(h) != cfg.Epochs {
		t.Fatalf("history length %d", len(h))
	}
	if h[len(h)-1] >= h[0] {
		t.Error("training loss did not decrease")
	}
}

func TestMLPClassifier(t *testing.T) {
	X, l := classData(800, 23)
	cfg := DefaultMLPConfig()
	cfg.Epochs = 150
	m := NewMLPClassifier(cfg)
	if err := m.Fit(X, l); err != nil {
		t.Fatal(err)
	}
	Xt, lt := classData(200, 24)
	if acc := Accuracy(lt, ClassifyAll(m, Xt)); acc < 0.88 {
		t.Errorf("MLP accuracy = %f", acc)
	}
}

func TestMetricsBasics(t *testing.T) {
	yt := []float64{1, 2, 3}
	yp := []float64{1, 2, 3}
	if MSE(yt, yp) != 0 || MAE(yt, yp) != 0 || RMSE(yt, yp) != 0 {
		t.Error("perfect prediction metrics nonzero")
	}
	if R2(yt, yp) != 1 {
		t.Error("perfect R2 != 1")
	}
	if m := MAPE([]float64{2, 4}, []float64{1, 2}); math.Abs(m-0.5) > 1e-12 {
		t.Errorf("MAPE = %f", m)
	}
	if m := MAPE([]float64{0}, []float64{1}); !math.IsNaN(m) {
		t.Error("MAPE of all-zero truth must be NaN")
	}
}

func TestConfusionAndF1(t *testing.T) {
	yt := []int{0, 0, 1, 1, 2, 2}
	yp := []int{0, 1, 1, 1, 2, 0}
	cm := ConfusionMatrix(yt, yp, 3)
	if cm[0][0] != 1 || cm[0][1] != 1 || cm[1][1] != 2 || cm[2][0] != 1 || cm[2][2] != 1 {
		t.Errorf("confusion = %v", cm)
	}
	f1 := MacroF1(yt, yp, 3)
	if f1 <= 0 || f1 >= 1 {
		t.Errorf("macro F1 = %f", f1)
	}
	if acc := Accuracy(yt, yp); math.Abs(acc-4.0/6) > 1e-12 {
		t.Errorf("accuracy = %f", acc)
	}
}

func TestScaler(t *testing.T) {
	X := [][]float64{{1, 10}, {3, 10}, {5, 10}}
	s := FitScaler(X)
	Xs := s.TransformAll(X)
	if math.Abs(Xs[0][0]+Xs[2][0]) > 1e-12 {
		t.Error("not centered")
	}
	// Constant feature: centered, not scaled to NaN.
	for _, row := range Xs {
		if math.IsNaN(row[1]) || math.IsInf(row[1], 0) {
			t.Error("constant feature mishandled")
		}
	}
}

func TestDatasetSplitShuffle(t *testing.T) {
	d := &Dataset{}
	for i := 0; i < 100; i++ {
		d.X = append(d.X, []float64{float64(i)})
		d.Y = append(d.Y, float64(i))
		d.Labels = append(d.Labels, i%3)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	c := d.Clone()
	c.Shuffle(5)
	tr, te := c.Split(0.25)
	if tr.Len() != 75 || te.Len() != 25 {
		t.Errorf("split sizes %d/%d", tr.Len(), te.Len())
	}
	// Original untouched.
	if d.X[0][0] != 0 {
		t.Error("clone shares storage")
	}
	// Shuffle preserves (X, Y, Label) alignment.
	for i := range c.X {
		if c.X[i][0] != c.Y[i] {
			t.Fatal("shuffle broke row alignment")
		}
	}
}

func TestKFold(t *testing.T) {
	folds := KFold(10, 5, 1)
	if len(folds) != 5 {
		t.Fatalf("folds = %d", len(folds))
	}
	seen := map[int]int{}
	for _, f := range folds {
		if len(f[0])+len(f[1]) != 10 {
			t.Error("fold does not cover dataset")
		}
		for _, i := range f[1] {
			seen[i]++
		}
	}
	for i := 0; i < 10; i++ {
		if seen[i] != 1 {
			t.Errorf("index %d in %d test folds", i, seen[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("bad kfold must panic")
		}
	}()
	KFold(3, 5, 1)
}

// Property: standardization is invertible within float tolerance.
func TestScalerRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, d := 5+rng.Intn(20), 1+rng.Intn(5)
		X := make([][]float64, n)
		for i := range X {
			X[i] = make([]float64, d)
			for j := range X[i] {
				X[i][j] = rng.NormFloat64() * 10
			}
		}
		s := FitScaler(X)
		for i := range X {
			z := s.Transform(X[i])
			for j := range z {
				back := z[j]*s.Std[j] + s.Mean[j]
				if math.Abs(back-X[i][j]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkForestFit(b *testing.B) {
	X, y := nonlinearData(500, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := NewForestRegressor(20, 8, 1)
		if err := f.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMLPPredict(b *testing.B) {
	X, y := nonlinearData(300, 1)
	cfg := DefaultMLPConfig()
	cfg.Epochs = 50
	m := NewMLPRegressor(cfg)
	if err := m.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(X[i%len(X)])
	}
}

func TestCrossValidate(t *testing.T) {
	X, y := linearData(200, 0.05, 31)
	res, err := CrossValidate(func() Regressor { return NewRidge(1e-6) }, X, y, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FoldR2) != 5 {
		t.Fatalf("folds = %d", len(res.FoldR2))
	}
	if res.MeanR2() < 0.99 {
		t.Errorf("linear problem CV R2 = %f", res.MeanR2())
	}
	if res.MeanRMSE() <= 0 || res.MeanMAPE() <= 0 {
		t.Error("zero CV errors on noisy data are implausible")
	}
	if _, err := CrossValidate(func() Regressor { return NewRidge(0) }, nil, nil, 3, 1); err == nil {
		t.Error("empty CV must fail")
	}
}

func TestCrossValidateRanksModels(t *testing.T) {
	// On a nonlinear problem, CV must rank the forest above plain linear.
	X, y := nonlinearData(300, 32)
	lin, err := CrossValidate(func() Regressor { return NewRidge(1e-6) }, X, y, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	forest, err := CrossValidate(func() Regressor { return NewForestRegressor(25, 8, 1) }, X, y, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if forest.MeanR2() <= lin.MeanR2() {
		t.Errorf("CV ranking wrong: forest %f <= linear %f", forest.MeanR2(), lin.MeanR2())
	}
}
