package ml

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestKDTreeMatchesBruteForce is the correctness anchor: exact agreement
// with the linear scan on random data, including distances.
func TestKDTreeMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, d := 5+rng.Intn(200), 1+rng.Intn(6)
		X := make([][]float64, n)
		for i := range X {
			X[i] = make([]float64, d)
			for j := range X[i] {
				X[i][j] = rng.NormFloat64()
			}
		}
		tree, err := NewKDTree(X)
		if err != nil {
			return false
		}
		for trial := 0; trial < 10; trial++ {
			q := make([]float64, d)
			for j := range q {
				q[j] = rng.NormFloat64()
			}
			k := 1 + rng.Intn(8)
			gotIdx, gotDist := tree.KNearest(q, k)
			wantIdx, wantDist := nearest(X, q, k)
			if len(gotIdx) != len(wantIdx) {
				return false
			}
			for i := range gotIdx {
				// Distances must agree exactly; index ties may resolve
				// differently only when distances are equal.
				if gotDist[i] != wantDist[i] {
					return false
				}
				if gotIdx[i] != wantIdx[i] && gotDist[i] != wantDist[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestKDTreeValidation(t *testing.T) {
	if _, err := NewKDTree(nil); err == nil {
		t.Error("empty tree must fail")
	}
	if _, err := NewKDTree([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("ragged points must fail")
	}
}

func TestKDTreeKClamped(t *testing.T) {
	tree, err := NewKDTree([][]float64{{0}, {1}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := tree.KNearest([]float64{0.4}, 10)
	if len(idx) != 3 {
		t.Errorf("k clamp returned %d", len(idx))
	}
	if idx[0] != 0 || idx[1] != 1 {
		t.Errorf("order = %v", idx)
	}
}

func BenchmarkKDTreeVsBrute(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n, d = 5000, 8
	X := make([][]float64, n)
	for i := range X {
		X[i] = make([]float64, d)
		for j := range X[i] {
			X[i][j] = rng.NormFloat64()
		}
	}
	tree, err := NewKDTree(X)
	if err != nil {
		b.Fatal(err)
	}
	q := make([]float64, d)
	b.Run("kdtree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tree.KNearest(q, 5)
		}
	})
	b.Run("brute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nearest(X, q, 5)
		}
	})
}
