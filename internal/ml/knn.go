package ml

import (
	"fmt"
	"math"
	"sort"
)

// KNNRegressor predicts the (optionally distance-weighted) mean target of
// the k nearest training samples under Euclidean distance. Queries are
// served from a k-d tree built at fit time.
type KNNRegressor struct {
	K        int
	Weighted bool
	X        [][]float64
	Y        []float64
	tree     *KDTree
}

// NewKNNRegressor returns a k-NN regressor.
func NewKNNRegressor(k int) *KNNRegressor { return &KNNRegressor{K: k} }

// Fit memorizes the training set and indexes it.
func (m *KNNRegressor) Fit(X [][]float64, y []float64) error {
	if len(X) == 0 || len(X) != len(y) {
		return fmt.Errorf("ml: knn fit needs matching non-empty X, y")
	}
	if m.K < 1 {
		return fmt.Errorf("ml: knn k must be >= 1, got %d", m.K)
	}
	tree, err := NewKDTree(X)
	if err != nil {
		return err
	}
	m.X, m.Y, m.tree = X, y, tree
	return nil
}

// Predict returns the neighbourhood mean.
func (m *KNNRegressor) Predict(x []float64) float64 {
	idx, dist := m.tree.KNearest(x, m.K)
	if !m.Weighted {
		s := 0.0
		for _, i := range idx {
			s += m.Y[i]
		}
		return s / float64(len(idx))
	}
	var num, den float64
	for j, i := range idx {
		w := 1 / (dist[j] + 1e-12)
		num += w * m.Y[i]
		den += w
	}
	return num / den
}

// KNNClassifier predicts the majority label of the k nearest training
// samples (ties broken toward the smaller label for determinism).
type KNNClassifier struct {
	K      int
	X      [][]float64
	Labels []int
	tree   *KDTree
}

// NewKNNClassifier returns a k-NN classifier.
func NewKNNClassifier(k int) *KNNClassifier { return &KNNClassifier{K: k} }

// Fit memorizes the training set and indexes it.
func (m *KNNClassifier) Fit(X [][]float64, labels []int) error {
	if len(X) == 0 || len(X) != len(labels) {
		return fmt.Errorf("ml: knn fit needs matching non-empty X, labels")
	}
	if m.K < 1 {
		return fmt.Errorf("ml: knn k must be >= 1, got %d", m.K)
	}
	tree, err := NewKDTree(X)
	if err != nil {
		return err
	}
	m.X, m.Labels, m.tree = X, labels, tree
	return nil
}

// Predict returns the majority vote.
func (m *KNNClassifier) Predict(x []float64) int {
	idx, _ := m.tree.KNearest(x, m.K)
	votes := map[int]int{}
	for _, i := range idx {
		votes[m.Labels[i]]++
	}
	best, bestV := -1, -1
	for l, v := range votes {
		if v > bestV || (v == bestV && l < best) {
			best, bestV = l, v
		}
	}
	return best
}

// nearest returns the indices and distances of the k nearest rows to x.
func nearest(X [][]float64, x []float64, k int) ([]int, []float64) {
	if k > len(X) {
		k = len(X)
	}
	type nd struct {
		i int
		d float64
	}
	ds := make([]nd, len(X))
	for i, row := range X {
		ds[i] = nd{i, sqDist(row, x)}
	}
	sort.Slice(ds, func(a, b int) bool {
		if ds[a].d != ds[b].d {
			return ds[a].d < ds[b].d
		}
		return ds[a].i < ds[b].i
	})
	idx := make([]int, k)
	dist := make([]float64, k)
	for j := 0; j < k; j++ {
		idx[j] = ds[j].i
		dist[j] = math.Sqrt(ds[j].d)
	}
	return idx, dist
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
