package ml

import (
	"fmt"
	"math"
	"sort"
)

// PCA is a principal component analysis fitted by eigendecomposition of the
// sample covariance (cyclic Jacobi, suitable for the modest feature
// dimensionalities in this toolkit).
type PCA struct {
	Mean        []float64
	Components  [][]float64 // k rows of length d, orthonormal, by decreasing eigenvalue
	Eigenvalues []float64   // variances along the components
}

// FitPCA fits k principal components to X (k <= feature dimension).
func FitPCA(X [][]float64, k int) (*PCA, error) {
	if len(X) < 2 {
		return nil, fmt.Errorf("ml: PCA needs >= 2 samples, got %d", len(X))
	}
	d := len(X[0])
	if k < 1 || k > d {
		return nil, fmt.Errorf("ml: PCA components %d outside [1,%d]", k, d)
	}
	mean := make([]float64, d)
	for _, row := range X {
		if len(row) != d {
			return nil, fmt.Errorf("ml: ragged PCA input")
		}
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(len(X))
	}
	cov := make([][]float64, d)
	for i := range cov {
		cov[i] = make([]float64, d)
	}
	for _, row := range X {
		for i := 0; i < d; i++ {
			di := row[i] - mean[i]
			for j := i; j < d; j++ {
				cov[i][j] += di * (row[j] - mean[j])
			}
		}
	}
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			cov[i][j] /= float64(len(X) - 1)
			cov[j][i] = cov[i][j]
		}
	}
	vals, vecs := jacobiEigen(cov)
	order := make([]int, d)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return vals[order[a]] > vals[order[b]] })
	p := &PCA{Mean: mean}
	for rank := 0; rank < k; rank++ {
		i := order[rank]
		comp := make([]float64, d)
		for r := 0; r < d; r++ {
			comp[r] = vecs[r][i] // eigenvectors are columns of vecs
		}
		p.Components = append(p.Components, comp)
		p.Eigenvalues = append(p.Eigenvalues, math.Max(vals[i], 0))
	}
	return p, nil
}

// jacobiEigen diagonalizes a symmetric matrix with cyclic Jacobi rotations.
// Returns eigenvalues and the matrix of eigenvectors (columns). The input
// is destroyed.
func jacobiEigen(a [][]float64) ([]float64, [][]float64) {
	n := len(a)
	v := make([][]float64, n)
	for i := range v {
		v[i] = make([]float64, n)
		v[i][i] = 1
	}
	for sweep := 0; sweep < 100; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += a[i][j] * a[i][j]
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(a[p][q]) < 1e-30 {
					continue
				}
				theta := (a[q][q] - a[p][p]) / (2 * a[p][q])
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for i := 0; i < n; i++ {
					aip, aiq := a[i][p], a[i][q]
					a[i][p] = c*aip - s*aiq
					a[i][q] = s*aip + c*aiq
				}
				for i := 0; i < n; i++ {
					api, aqi := a[p][i], a[q][i]
					a[p][i] = c*api - s*aqi
					a[q][i] = s*api + c*aqi
				}
				for i := 0; i < n; i++ {
					vip, viq := v[i][p], v[i][q]
					v[i][p] = c*vip - s*viq
					v[i][q] = s*vip + c*viq
				}
			}
		}
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = a[i][i]
	}
	return vals, v
}

// Transform projects x onto the principal subspace (k scores).
func (p *PCA) Transform(x []float64) []float64 {
	z := make([]float64, len(p.Components))
	for k, comp := range p.Components {
		s := 0.0
		for j := range comp {
			s += comp[j] * (x[j] - p.Mean[j])
		}
		z[k] = s
	}
	return z
}

// Reconstruct maps scores back to the feature space.
func (p *PCA) Reconstruct(z []float64) []float64 {
	d := len(p.Mean)
	out := append([]float64(nil), p.Mean...)
	for k, comp := range p.Components {
		for j := 0; j < d; j++ {
			out[j] += z[k] * comp[j]
		}
	}
	return out
}

// ReconstructionError returns the Euclidean distance between x and its
// projection onto the principal subspace — the residual energy outside the
// modeled correlation structure.
func (p *PCA) ReconstructionError(x []float64) float64 {
	rec := p.Reconstruct(p.Transform(x))
	s := 0.0
	for j := range x {
		d := x[j] - rec[j]
		s += d * d
	}
	return math.Sqrt(s)
}

// ExplainedVariance returns the fraction of total variance captured by the
// fitted components (requires the fit to have kept totals; computed from
// eigenvalues relative to their sum plus residual — callers fitting k < d
// components get the captured share of the retained spectrum only if all d
// were requested; for the common screening use the absolute eigenvalues
// matter, exposed directly).
func (p *PCA) ExplainedVariance() []float64 {
	total := 0.0
	for _, v := range p.Eigenvalues {
		total += v
	}
	out := make([]float64, len(p.Eigenvalues))
	if total == 0 {
		return out
	}
	for i, v := range p.Eigenvalues {
		out[i] = v / total
	}
	return out
}
