package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ml"
	"repro/internal/wafer"
)

// F5Result holds the learning-convergence series (figure F5).
type F5Result struct {
	HDCErrors []int     // misclassified training maps per retraining epoch
	MLPLoss   []float64 // training loss per epoch
}

// RunF5 reproduces figure F5: online-learning convergence of the HDC
// classifier (perceptron retraining errors per epoch) next to the MLP
// training-loss curve on the same wafer task. Shape: both fall steeply in
// the first epochs then flatten.
func RunF5(cfg Config) (*F5Result, error) {
	wcfg := wafer.DefaultConfig()
	trainN, dim, epochs := 40, 4096, 30
	mlpEpochs := 120
	if cfg.Quick {
		wcfg.Size = 32
		trainN, dim, epochs = 12, 1024, 10
		mlpEpochs = 40
	}
	train := wafer.GenerateDataset(trainN, wcfg, cfg.Seed)

	h := core.NewHDCWaferClassifier(dim, wcfg.Size, epochs, cfg.Seed)
	if err := h.Fit(train); err != nil {
		return nil, err
	}

	mcfg := ml.DefaultMLPConfig()
	mcfg.Epochs = mlpEpochs
	mcfg.Seed = cfg.Seed
	mlp := ml.NewMLPClassifier(mcfg)
	if err := mlp.Fit(train.FeatureMatrix(), train.Labels); err != nil {
		return nil, err
	}

	res := &F5Result{HDCErrors: h.ErrHistory, MLPLoss: mlp.History()}
	tw := cfg.table()
	fmt.Fprintf(tw, "epoch\tHDC train errors\tMLP train loss\n")
	n := len(res.HDCErrors)
	if len(res.MLPLoss) > n {
		n = len(res.MLPLoss)
	}
	for e := 0; e < n; e++ {
		he, ml := "-", "-"
		if e < len(res.HDCErrors) {
			he = fmt.Sprintf("%d", res.HDCErrors[e])
		}
		if e < len(res.MLPLoss) {
			ml = fmt.Sprintf("%.4f", res.MLPLoss[e])
		}
		if e < 10 || e%5 == 0 || e == n-1 {
			fmt.Fprintf(tw, "%d\t%s\t%s\n", e, he, ml)
		}
	}
	return res, tw.Flush()
}
