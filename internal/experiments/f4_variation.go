package experiments

import (
	"sync/atomic"
	"time"

	"repro/internal/aging"
	"repro/internal/circuit"
	"repro/internal/ml"
	"repro/internal/parallel"
	"repro/internal/sta"
	"repro/internal/variation"
)

// F4Result holds the Monte Carlo delay distribution and the ML-surrogate
// comparison (figure F4).
type F4Result struct {
	Circuit   string
	Nominal   float64
	Stats     variation.Stats
	MLMAPE    float64
	MLSpeedup float64
}

// RunF4 reproduces figure F4: the critical-path delay distribution under
// per-gate threshold-voltage variation, from full per-sample STA, together
// with an ML surrogate that predicts per-sample delay from cheap sample
// statistics. Shape: an approximately normal distribution centered near
// the nominal delay, with the surrogate reproducing it at a large speedup.
//
// The sweep fans out over cfg.Workers goroutines. Every sample draws from
// its own RNG stream (variation.NewSamplerAt), so the distribution is
// bit-identical for any worker count.
func RunF4(cfg Config) (*F4Result, error) {
	lib, err := library(cfg, 300, 0)
	if err != nil {
		return nil, err
	}
	c := circuit.RippleAdder(16)
	samples := 10000
	if cfg.Quick {
		c = circuit.RippleAdder(8)
		samples = 100
	}
	an, err := sta.New(c, lib)
	if err != nil {
		return nil, err
	}
	nominal, err := an.Run()
	if err != nil {
		return nil, err
	}
	// Baseline critical gates (for the surrogate's path-aware features).
	onPath := map[int]bool{}
	for _, s := range nominal.Path {
		onPath[s.Gate] = true
	}

	model := aging.Default() // reuse the alpha-power ΔVth→delay mapping
	vp := variation.Default()
	workers := parallel.Workers(cfg.Workers)
	// One STA analyzer and one derate scratch vector per worker: Run is
	// stateful, so concurrent samples must not share an analyzer.
	analyzers := make([]*sta.Analyzer, workers)
	scratch := make([][]float64, workers)
	analyzers[0] = an
	for w := 1; w < workers; w++ {
		if analyzers[w], err = sta.New(c, lib); err != nil {
			return nil, err
		}
	}
	for w := range scratch {
		scratch[w] = make([]float64, len(c.Gates))
	}

	delays := make([]float64, samples)
	feats := make([][]float64, samples)
	var staNanos atomic.Int64 // summed per-sample STA time across workers
	err = parallel.ForWorker(workers, samples, func(w, s int) error {
		sampler := variation.NewSamplerAt(vp, cfg.Seed, s)
		derates := scratch[w]
		global := sampler.Global()
		var sum, sq, mn, mx, pathSum float64
		mn, mx = 1e9, -1e9
		pathN := 0
		for g := range derates {
			dv := global + sampler.Instance(1)
			derates[g] = model.DelayFactor(dv)
			sum += dv
			sq += dv * dv
			if dv < mn {
				mn = dv
			}
			if dv > mx {
				mx = dv
			}
			if onPath[g] {
				pathSum += dv
				pathN++
			}
		}
		wan := analyzers[w]
		wan.Derates = derates
		t0 := time.Now()
		t, err := wan.Run()
		staNanos.Add(int64(time.Since(t0)))
		if err != nil {
			return err
		}
		delays[s] = t.WCDelay
		n := float64(len(derates))
		mean := sum / n
		std := sq/n - mean*mean
		if std < 0 {
			std = 0
		}
		pathMean := 0.0
		if pathN > 0 {
			pathMean = pathSum / float64(pathN)
		}
		feats[s] = []float64{global * 1e3, mean * 1e3, std * 1e6, mn * 1e3, mx * 1e3, pathMean * 1e3}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &F4Result{Circuit: c.Name, Nominal: nominal.WCDelay, Stats: variation.Summarize(delays)}

	// Surrogate: GBT on the first 40% of samples, evaluated on the rest.
	split := samples * 2 / 5
	sur := ml.NewGBTRegressor(200, 3, 0.1, cfg.Seed)
	yTrain := make([]float64, split)
	for i := range yTrain {
		yTrain[i] = delays[i] * 1e12
	}
	if err := sur.Fit(feats[:split], yTrain); err != nil {
		return nil, err
	}
	t1 := time.Now()
	pred := ml.PredictAll(sur, feats[split:])
	surTime := time.Since(t1)
	truth := make([]float64, samples-split)
	for i := range truth {
		truth[i] = delays[split+i] * 1e12
	}
	res.MLMAPE = ml.MAPE(truth, pred)
	// perSTA is per-sample simulator time summed across workers, so the
	// surrogate speedup is independent of the worker count.
	perSTA := time.Duration(staNanos.Load()) / time.Duration(samples)
	perSur := surTime / time.Duration(len(pred))
	if perSur > 0 {
		res.MLSpeedup = float64(perSTA) / float64(perSur)
	}

	cfg.printf("circuit %s, %d MC samples over %d workers (%v full STA each)\n",
		c.Name, samples, workers, perSTA.Round(time.Microsecond))
	st := res.Stats
	cfg.printf("nominal %.1f ps | MC mean %.1f ps, σ %.2f ps, p95 %.1f ps, p99 %.1f ps, max %.1f ps\n",
		res.Nominal*1e12, st.Mean*1e12, st.Std*1e12, st.P95*1e12, st.P99*1e12, st.Max*1e12)
	edges, counts := variation.Histogram(delays, 10)
	for b := 0; b < len(counts); b++ {
		bar := ""
		for k := 0; k < counts[b]*50/len(delays)+1; k++ {
			bar += "#"
		}
		cfg.printf("  %7.1f–%7.1f ps %4d %s\n", edges[b]*1e12, edges[b+1]*1e12, counts[b], bar)
	}
	cfg.printf("GBT surrogate: MAPE %.2f%% on held-out samples, %.0fx faster than per-sample STA\n",
		res.MLMAPE*100, res.MLSpeedup)
	return res, nil
}
