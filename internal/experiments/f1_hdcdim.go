package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/wafer"
)

// F1Point is one sample of the accuracy-vs-dimension curve.
type F1Point struct {
	Dim      int
	Accuracy float64
}

// F1Result holds figure F1's series.
type F1Result struct {
	Points []F1Point
}

// RunF1 reproduces figure F1: HDC wafer-classification accuracy as a
// function of the hypervector dimension. The shape to reproduce: accuracy
// climbs steeply at small dimensions and saturates.
func RunF1(cfg Config) (*F1Result, error) {
	wcfg := wafer.DefaultConfig()
	trainN, testN := 40, 20
	dims := []int{128, 256, 512, 1024, 2048, 4096, 8192}
	if cfg.Quick {
		wcfg.Size = 32
		trainN, testN = 12, 6
		dims = []int{128, 512, 2048}
	}
	train := wafer.GenerateDataset(trainN, wcfg, cfg.Seed)
	test := wafer.GenerateDataset(testN, wcfg, cfg.Seed+1)
	res := &F1Result{}
	tw := cfg.table()
	fmt.Fprintf(tw, "dimension\taccuracy\n")
	for _, dim := range dims {
		h := core.NewHDCWaferClassifier(dim, wcfg.Size, 20, cfg.Seed)
		if err := h.Fit(train); err != nil {
			return nil, err
		}
		correct := 0
		for i, m := range test.Maps {
			if h.Predict(m) == test.Labels[i] {
				correct++
			}
		}
		acc := float64(correct) / float64(len(test.Maps))
		res.Points = append(res.Points, F1Point{Dim: dim, Accuracy: acc})
		fmt.Fprintf(tw, "%d\t%.1f%%\n", dim, acc*100)
	}
	return res, tw.Flush()
}
