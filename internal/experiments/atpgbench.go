package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"repro/internal/atpg"
	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/parallel"
)

// ATPGBenchRow is one circuit of the ATPG benchmark trajectory, serialized
// into BENCH_atpg.json. Each row times the deterministic phase of the
// batched speculative flow against the Serial reference flow on the same
// circuit, and records that the two produced bit-identical pattern sets.
type ATPGBenchRow struct {
	Circuit             string  `json:"circuit"`
	Source              string  `json:"source"` // "bench" (named netlist file) or "generated"
	Gates               int     `json:"gates"`
	Faults              int     `json:"faults"`
	Patterns            int     `json:"patterns"`   // final compacted pattern count
	Coverage            float64 `json:"coverage"`   // identical across flows by construction
	Efficiency          float64 `json:"efficiency"` // (detected + redundant) / total
	GenNs               float64 `json:"gen_ns"`     // batched flow: speculative PODEM generation
	DropNs              float64 `json:"drop_ns"`    // batched flow: block dropping + commit replay
	DetMs               float64 `json:"det_ms"`     // batched deterministic phase, gen + drop
	SerialDetMs         float64 `json:"serial_det_ms"`
	Speedup             float64 `json:"speedup"` // serial_det_ms / det_ms
	DeterminismVerified bool    `json:"determinism_verified"`
}

// ATPGBench is the top-level document of BENCH_atpg.json.
type ATPGBench struct {
	Schema    string         `json:"schema"` // "itr-atpg-bench/v1"
	Generated string         `json:"generated"`
	GoVersion string         `json:"go_version"`
	Workers   int            `json:"workers"`
	Words     int            `json:"words"`
	Quick     bool           `json:"quick"`
	Rows      []ATPGBenchRow `json:"rows"`
}

// atpgBenchCase is one circuit of the sweep with its flow configuration.
type atpgBenchCase struct {
	net    *circuit.Netlist
	source string
}

// loadBenchAnchors parses every .bench netlist in dir (sorted by name) —
// the named ISCAS-style anchor tier checked in under testdata/bench/. A
// missing directory yields no anchors rather than an error, so the sweep
// still runs from build contexts without the repository root.
func loadBenchAnchors(dir string) ([]atpgBenchCase, error) {
	if dir == "" {
		return nil, nil
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*.bench"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var cases []atpgBenchCase
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		name := filepath.Base(p)
		n, perr := circuit.ParseBench(f, name[:len(name)-len(".bench")])
		f.Close()
		if perr != nil {
			return nil, fmt.Errorf("atpgbench: %s: %w", p, perr)
		}
		cases = append(cases, atpgBenchCase{net: n, source: "bench"})
	}
	return cases, nil
}

// atpgBenchCases assembles the sweep: the named anchors first, then the
// generated tiers. The 2000-gate tier is the acceptance row for the batched
// deterministic phase; quick mode keeps only small circuits for tests.
func atpgBenchCases(cfg Config, benchDir string) ([]atpgBenchCase, error) {
	cases, err := loadBenchAnchors(benchDir)
	if err != nil {
		return nil, err
	}
	if cfg.Quick {
		cases = append(cases,
			atpgBenchCase{net: circuit.ArrayMultiplier(4), source: "generated"},
			atpgBenchCase{net: circuit.GatedParity(8, 12, 8), source: "generated"},
		)
		return cases, nil
	}
	cases = append(cases,
		atpgBenchCase{net: circuit.ArrayMultiplier(16), source: "generated"},
		atpgBenchCase{net: circuit.Random(32, 500, 1), source: "generated"},
		// The 2000-gate acceptance tier: random-pattern-resistant gated
		// parity banks keep almost every fault live across almost every
		// pattern, which is the workload the block-dropping rebuild targets.
		// The arithmetic and random tiers above stay generation-bound and
		// honestly report speedups near 1x.
		atpgBenchCase{net: circuit.GatedParity(32, 60, 12), source: "generated"},
	)
	return cases, nil
}

// RunATPGBench measures the deterministic ATPG phase — batched speculative
// flow vs the Serial reference — on the anchor netlists under benchDir and
// the generated tiers, and returns the machine-readable document. The
// serial run doubles as the correctness oracle: pattern sets and statistics
// must be bit-identical or the sweep aborts.
func RunATPGBench(cfg Config, benchDir string) (*ATPGBench, error) {
	cases, err := atpgBenchCases(cfg, benchDir)
	if err != nil {
		return nil, err
	}
	doc := &ATPGBench{
		Schema:    "itr-atpg-bench/v1",
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Workers:   parallel.Workers(cfg.Workers),
		Words:     fault.NormalizeWords(cfg.Words),
		Quick:     cfg.Quick,
	}
	tw := cfg.table()
	fmt.Fprintf(tw, "circuit\tsource\tgates\tfaults\tpatterns\tcoverage\tgen\tdrop\tdet\tdet(serial)\tspeedup\n")
	for _, bc := range cases {
		acfg := atpg.DefaultConfig()
		acfg.Seed = cfg.Seed
		acfg.BacktrackLim = 2000
		acfg.Workers = cfg.Workers
		acfg.Words = cfg.Words
		// Deterministic-only: this benchmark times the deterministic phase
		// (the part the batching/speculation rebuild targets), so every
		// fault is routed through PODEM instead of letting the random phase
		// absorb 90% of the universe on easy circuits.
		acfg.SkipRandom = true
		batched, err := atpg.Run(bc.net, acfg)
		if err != nil {
			return nil, err
		}
		scfg := acfg
		scfg.Serial = true
		serial, err := atpg.Run(bc.net, scfg)
		if err != nil {
			return nil, err
		}
		if err := verifyIdenticalATPG(bc.net.Name, batched, serial); err != nil {
			return nil, err
		}
		det := batched.GenTime + batched.DropTime
		serialDet := serial.GenTime + serial.DropTime
		row := ATPGBenchRow{
			Circuit:             bc.net.Name,
			Source:              bc.source,
			Gates:               bc.net.NumLogicGates(),
			Faults:              batched.TotalFaults,
			Patterns:            batched.Patterns.N,
			Coverage:            batched.Coverage,
			Efficiency:          batched.Efficiency,
			GenNs:               float64(batched.GenTime.Nanoseconds()),
			DropNs:              float64(batched.DropTime.Nanoseconds()),
			DetMs:               float64(det) / float64(time.Millisecond),
			SerialDetMs:         float64(serialDet) / float64(time.Millisecond),
			DeterminismVerified: true,
		}
		if det > 0 {
			row.Speedup = float64(serialDet) / float64(det)
		}
		doc.Rows = append(doc.Rows, row)
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%.2f%%\t%.2fms\t%.2fms\t%.2fms\t%.2fms\t%.1fx\n",
			row.Circuit, row.Source, row.Gates, row.Faults, row.Patterns, row.Coverage*100,
			row.GenNs/1e6, row.DropNs/1e6, row.DetMs, row.SerialDetMs, row.Speedup)
	}
	return doc, tw.Flush()
}

// verifyIdenticalATPG enforces the determinism contract between the batched
// and serial flows: identical pattern bits and identical statistics. A
// mismatch is a bug in the commit replay, never benchmark noise, so it
// aborts the sweep.
func verifyIdenticalATPG(name string, a, b *atpg.Result) error {
	if a.Patterns.N != b.Patterns.N {
		return fmt.Errorf("atpgbench: %s: batched %d patterns != serial %d", name, a.Patterns.N, b.Patterns.N)
	}
	for i := range a.Patterns.Bits {
		for w := range a.Patterns.Bits[i] {
			if a.Patterns.Bits[i][w]&a.Patterns.TailMask(w) != b.Patterns.Bits[i][w]&b.Patterns.TailMask(w) {
				return fmt.Errorf("atpgbench: %s: pattern bits differ at input %d word %d", name, i, w)
			}
		}
	}
	if a.Detected != b.Detected || a.Redundant != b.Redundant || a.Aborted != b.Aborted ||
		a.Backtracks != b.Backtracks || a.DetPhase != b.DetPhase || a.RandomPhase != b.RandomPhase {
		return fmt.Errorf("atpgbench: %s: statistics differ: batched det=%d red=%d ab=%d bt=%d vs serial det=%d red=%d ab=%d bt=%d",
			name, a.Detected, a.Redundant, a.Aborted, a.Backtracks,
			b.Detected, b.Redundant, b.Aborted, b.Backtracks)
	}
	return nil
}

// WriteJSON writes the benchmark document to path, indented for diffable
// version-controlled trajectory files.
func (b *ATPGBench) WriteJSON(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
