package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/wafer"
)

// T3Result holds the wafer-classification comparison (table T3).
type T3Result struct {
	Results []core.WaferResult
}

// RunT3 reproduces table T3: HDC against classical ML classifiers on the
// nine-class wafer-map task — accuracy, macro-F1 and train/inference cost.
func RunT3(cfg Config) (*T3Result, error) {
	wcfg := wafer.DefaultConfig()
	trainN, testN, dim := 60, 25, 4096
	if cfg.Quick {
		wcfg.Size = 32
		trainN, testN, dim = 16, 8, 2048
	}
	train := wafer.GenerateDataset(trainN, wcfg, cfg.Seed)
	test := wafer.GenerateDataset(testN, wcfg, cfg.Seed+1)
	cfg.printf("dataset: %d train / %d test maps, %d classes, %dx%d grid\n",
		len(train.Maps), len(test.Maps), wafer.NumClasses, wcfg.Size, wcfg.Size)
	results, err := core.EvaluateWaferClassifiers(train, test, dim, cfg.Seed)
	if err != nil {
		return nil, err
	}
	tw := cfg.table()
	fmt.Fprintf(tw, "model\taccuracy\tmacro-F1\ttrain\tinfer/map\n")
	for _, r := range results {
		fmt.Fprintf(tw, "%s\t%.1f%%\t%.3f\t%v\t%v\n",
			r.Name, r.Accuracy*100, r.MacroF1, r.TrainTime.Round(1e6), r.InferPer.Round(1e3))
	}
	if err := tw.Flush(); err != nil {
		return nil, err
	}
	// Worst-confused class pair for the HDC model, for the discussion text.
	hdcCM := results[0].Confusion
	worstA, worstB, worstN := 0, 0, 0
	for a := range hdcCM {
		for b := range hdcCM[a] {
			if a != b && hdcCM[a][b] > worstN {
				worstA, worstB, worstN = a, b, hdcCM[a][b]
			}
		}
	}
	cfg.printf("HDC most-confused pair: %v → %v (%d maps)\n",
		wafer.Class(worstA), wafer.Class(worstB), worstN)
	return &T3Result{Results: results}, nil
}
