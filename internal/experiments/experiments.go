// Package experiments implements the reproduction harness: one function per
// table (T1–T10) and figure (F1–F6) of the experiment index in DESIGN.md.
// Each experiment prints its rows/series to the configured writer and
// returns structured results so tests can assert the qualitative shape the
// survey reports. cmd/itrbench and the root-level benchmarks both drive
// this package.
package experiments

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"sync"
	"text/tabwriter"

	"repro/internal/liberty"
	"repro/internal/parallel"
	"repro/internal/spice"
)

// Config controls experiment scale and output.
type Config struct {
	// Quick shrinks workloads for unit tests and smoke runs.
	Quick bool
	Seed  int64
	W     io.Writer
	// Workers bounds the fan-out of parallel sections (library
	// characterization, Monte Carlo sweeps, RunAll). <= 0 selects
	// GOMAXPROCS. Results are bit-identical for any value: every
	// randomized work item draws from a seed-split RNG stream.
	Workers int
	// Words selects the fault-simulation lane width (pattern words packed
	// per cone walk, normalized to {1,2,4,8}); threaded through the ATPG,
	// diagnosis, fault-simulation and transition experiments. Results are
	// bit-identical for any width.
	Words int
}

// Default returns the full-scale configuration printing to stdout.
func Default() Config { return Config{Seed: 1, W: os.Stdout} }

func (c Config) out() io.Writer {
	if c.W == nil {
		return os.Stdout
	}
	return c.W
}

func (c Config) printf(format string, args ...any) {
	fmt.Fprintf(c.out(), format, args...)
}

func (c Config) table() *tabwriter.Writer {
	return tabwriter.NewWriter(c.out(), 2, 4, 2, ' ', 0)
}

// Shared characterized libraries are expensive; build them once per corner.
// The cache is singleflight-style: concurrent experiments asking for the
// same corner block only on that corner's sync.Once — they never serialize
// on a global lock while a characterization is in flight, and distinct
// corners characterize concurrently.
var libCache sync.Map // corner key → *libEntry

type libEntry struct {
	once sync.Once
	lib  *liberty.Library
	err  error
}

// library returns a characterized library at the given temperature and
// aging shift, cached across experiments. Quick mode uses the coarse grid.
// The first caller for a corner characterizes it (with its Workers setting;
// the result is worker-count independent) and all others share the result.
func library(cfg Config, tempK, dVth float64) (*liberty.Library, error) {
	key := fmt.Sprintf("%v-%g-%g", cfg.Quick, tempK, dVth)
	e, _ := libCache.LoadOrStore(key, &libEntry{})
	entry := e.(*libEntry)
	entry.once.Do(func() {
		p := spice.Default(tempK)
		p.DVthN += dVth
		p.DVthP += dVth
		grid := liberty.DefaultGrid()
		if cfg.Quick {
			grid = liberty.CoarseGrid()
		}
		entry.lib, entry.err = liberty.CharacterizeWorkers(key, liberty.AllCells(), p, grid, cfg.Workers)
	})
	return entry.lib, entry.err
}

type step struct {
	name string
	run  func(Config) error
}

// RunAll executes every experiment, fanning them out across cfg.Workers
// goroutines. Each experiment writes to a private buffer; buffers are
// emitted to cfg.W in experiment-index order as soon as the contiguous
// prefix completes, so the combined report reads exactly like the serial
// run. On error the first failing experiment (by index, among those that
// ran) is reported and unstarted experiments are skipped.
func RunAll(cfg Config) error {
	return runOrdered(cfg, allSteps())
}

// runOrdered is the RunAll engine: parallel execution, serial-order output.
func runOrdered(cfg Config, steps []step) error {
	out := cfg.out()
	bufs := make([]bytes.Buffer, len(steps))
	var (
		mu   sync.Mutex
		next int
		done = make([]bool, len(steps))
	)
	flush := func() { // called with mu held
		for next < len(steps) && done[next] {
			io.Copy(out, &bufs[next]) //nolint:errcheck — best-effort report streaming
			next++
		}
	}
	err := parallel.For(cfg.Workers, len(steps), func(i int) error {
		sub := cfg
		sub.W = &bufs[i]
		fmt.Fprintf(&bufs[i], "\n================ %s ================\n", steps[i].name)
		err := steps[i].run(sub)
		mu.Lock()
		done[i] = true
		flush()
		mu.Unlock()
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", steps[i].name, err)
		}
		return nil
	})
	return err
}

func allSteps() []step {
	return []step{
		{"T1 ML cell characterization", func(c Config) error { _, err := RunT1(c); return err }},
		{"T2 aging degradation model", func(c Config) error { _, err := RunT2(c); return err }},
		{"T3 wafer-map classification", func(c Config) error { _, err := RunT3(c); return err }},
		{"F1 HDC dimension sweep", func(c Config) error { _, err := RunF1(c); return err }},
		{"F2 coverage vs patterns", func(c Config) error { _, err := RunF2(c); return err }},
		{"T4 ATPG summary", func(c Config) error { _, err := RunT4(c); return err }},
		{"T5 diagnosis ranking", func(c Config) error { _, err := RunT5(c); return err }},
		{"F3 adaptive-test tradeoff", func(c Config) error { _, err := RunF3(c); return err }},
		{"T6 aging-aware STA", func(c Config) error { _, err := RunT6(c); return err }},
		{"F4 variation Monte Carlo", func(c Config) error { _, err := RunF4(c); return err }},
		{"F5 learning convergence", func(c Config) error { _, err := RunF5(c); return err }},
		{"T7 fault-simulation speedup", func(c Config) error { _, err := RunT7(c); return err }},
		{"T8 test-point insertion (extension)", func(c Config) error { _, err := RunT8(c); return err }},
		{"T9 transition-fault ATPG (extension)", func(c Config) error { _, err := RunT9(c); return err }},
		{"T10 temperature corners (extension)", func(c Config) error { _, err := RunT10(c); return err }},
		{"F6 logic BIST (extension)", func(c Config) error { _, err := RunF6(c); return err }},
	}
}

// Names lists the experiment identifiers accepted by Run.
func Names() []string {
	return []string{"T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9", "T10", "F1", "F2", "F3", "F4", "F5", "F6"}
}

// Run executes one experiment by identifier.
func Run(id string, cfg Config) error {
	switch id {
	case "T1":
		_, err := RunT1(cfg)
		return err
	case "T2":
		_, err := RunT2(cfg)
		return err
	case "T3":
		_, err := RunT3(cfg)
		return err
	case "T4":
		_, err := RunT4(cfg)
		return err
	case "T5":
		_, err := RunT5(cfg)
		return err
	case "T6":
		_, err := RunT6(cfg)
		return err
	case "T7":
		_, err := RunT7(cfg)
		return err
	case "T8":
		_, err := RunT8(cfg)
		return err
	case "T9":
		_, err := RunT9(cfg)
		return err
	case "T10":
		_, err := RunT10(cfg)
		return err
	case "F1":
		_, err := RunF1(cfg)
		return err
	case "F2":
		_, err := RunF2(cfg)
		return err
	case "F3":
		_, err := RunF3(cfg)
		return err
	case "F4":
		_, err := RunF4(cfg)
		return err
	case "F5":
		_, err := RunF5(cfg)
		return err
	case "F6":
		_, err := RunF6(cfg)
		return err
	}
	return fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, Names())
}
