package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/dft"
	"repro/internal/fault"
	"repro/internal/logic"
)

// T8Row compares random-pattern coverage before/after test-point insertion
// on one circuit.
type T8Row struct {
	Circuit    string
	Faults     int
	Before     float64
	AfterObs   float64 // observation points only
	AfterFull  float64 // observation + control points
	ExtraPins  int
	ExtraGates int
}

// T8Result holds table T8 (extension: SCOAP-guided test-point insertion).
type T8Result struct {
	Patterns int
	Rows     []T8Row
}

// RunT8 reproduces table T8: stuck-at coverage of a fixed random-pattern
// budget before and after inserting SCOAP-selected test points. Shape:
// random-pattern-resistant circuits gain substantially; already-testable
// circuits gain little.
func RunT8(cfg Config) (*T8Result, error) {
	suite := []*circuit.Netlist{
		circuit.Comparator(16),
		circuit.Comparator(32),
		circuit.ArrayMultiplier(8),
		circuit.Random(20, 300, 1),
	}
	nObs, nCtl, patterns := 8, 8, 128
	if cfg.Quick {
		suite = suite[:2]
		nObs, nCtl, patterns = 4, 4, 64
	}
	res := &T8Result{Patterns: patterns}
	cov := func(c *circuit.Netlist) (float64, int, error) {
		rng := rand.New(rand.NewSource(cfg.Seed))
		p := logic.NewPatternSet(len(c.PIs), patterns)
		p.RandFill(rng.Uint64)
		faults := fault.Universe(c)
		// Fault grading rides the concurrent engine: shards are
		// bit-identical to the serial run for any worker count.
		r, err := fault.RunConcurrentWords(c, p, faults, cfg.Workers, cfg.Words)
		if err != nil {
			return 0, 0, err
		}
		return r.Coverage, len(faults), nil
	}
	tw := cfg.table()
	fmt.Fprintf(tw, "circuit\tfaults\tbase cov\t+%d obs\t+%d obs +%d ctl\textra pins\textra gates\n", nObs, nObs, nCtl)
	for _, c := range suite {
		base, nf, err := cov(c)
		if err != nil {
			return nil, err
		}
		obsOnly, _, err := dft.Insert(c, nObs, 0)
		if err != nil {
			return nil, err
		}
		co, _, err := cov(obsOnly)
		if err != nil {
			return nil, err
		}
		full, plan, err := dft.Insert(c, nObs, nCtl)
		if err != nil {
			return nil, err
		}
		cf, _, err := cov(full)
		if err != nil {
			return nil, err
		}
		row := T8Row{
			Circuit: c.Name, Faults: nf, Before: base, AfterObs: co, AfterFull: cf,
			ExtraPins:  len(plan.Control) + len(plan.Observe), // control PIs + observe POs
			ExtraGates: len(plan.Control),
		}
		res.Rows = append(res.Rows, row)
		fmt.Fprintf(tw, "%s\t%d\t%.2f%%\t%.2f%%\t%.2f%%\t%d\t%d\n",
			c.Name, nf, base*100, co*100, cf*100, row.ExtraPins, row.ExtraGates)
	}
	return res, tw.Flush()
}
