package experiments

import (
	"fmt"
	"time"

	"repro/internal/atpg"
	"repro/internal/circuit"
)

// T4Row is one circuit line of the ATPG summary table.
type T4Row struct {
	Result      *atpg.Result
	NaivePats   int
	NaiveAborts int
	NaiveBack   int64
	// SerialDet is the deterministic-phase wall time of the Serial
	// reference flow; Result carries the batched flow's GenTime/DropTime.
	// The serial run doubles as the bit-identity oracle for the batched
	// commit replay.
	SerialDet time.Duration
}

// T4Result holds table T4.
type T4Result struct {
	Rows []T4Row
}

// RunT4 reproduces table T4: full ATPG results per benchmark circuit, with
// the SCOAP-guided backtrace ablated against the naive first-X heuristic
// (DESIGN.md design-choice ablation). A 2000-backtrack abort limit bounds
// the redundancy proofs, as in production ATPG; aborts are reported.
// Random(20,300) is included deliberately: random reconvergent logic is
// rich in redundant faults and stresses the redundancy-proof path.
func RunT4(cfg Config) (*T4Result, error) {
	suite := []*circuit.Netlist{
		circuit.MustC17(),
		circuit.RippleAdder(16),
		circuit.ArrayMultiplier(4),
		circuit.ArrayMultiplier(8),
		circuit.ALUSlice(16),
		circuit.Comparator(16),
		circuit.ParityTree(16),
		circuit.Random(20, 300, 1),
		// The 2000-gate random-pattern-resistant tier: parity chains behind
		// wide enables defeat the random phase, so nearly the whole fault
		// universe reaches the deterministic phase — the batching rebuild's
		// acceptance case.
		circuit.GatedParity(32, 60, 12),
	}
	if cfg.Quick {
		suite = []*circuit.Netlist{
			circuit.MustC17(),
			circuit.RippleAdder(8),
			circuit.ArrayMultiplier(4),
		}
	}
	res := &T4Result{}
	tw := cfg.table()
	fmt.Fprintf(tw, "circuit\tgates\tfaults\tcoverage\teff.\tpatterns\taborts\tbacktracks\truntime\tdet\tdet(serial)\tpat(naive)\tabort(naive)\n")
	for _, c := range suite {
		guided := atpg.DefaultConfig()
		guided.Seed = cfg.Seed
		guided.BacktrackLim = 2000
		guided.Workers = cfg.Workers
		guided.Words = cfg.Words
		rg, err := atpg.Run(c, guided)
		if err != nil {
			return nil, err
		}
		serial := guided
		serial.Serial = true
		rs, err := atpg.Run(c, serial)
		if err != nil {
			return nil, err
		}
		if rs.Patterns.N != rg.Patterns.N || rs.Detected != rg.Detected ||
			rs.Redundant != rg.Redundant || rs.Aborted != rg.Aborted || rs.Backtracks != rg.Backtracks {
			return nil, fmt.Errorf("t4: %s: batched flow diverged from serial reference (patterns %d/%d, detected %d/%d)",
				c.Name, rg.Patterns.N, rs.Patterns.N, rg.Detected, rs.Detected)
		}
		naive := guided
		naive.Guide = atpg.GuideNaive
		rn, err := atpg.Run(c, naive)
		if err != nil {
			return nil, err
		}
		row := T4Row{
			Result: rg, NaivePats: rn.Patterns.N, NaiveAborts: rn.Aborted, NaiveBack: rn.Backtracks,
			SerialDet: rs.GenTime + rs.DropTime,
		}
		res.Rows = append(res.Rows, row)
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.2f%%\t%.2f%%\t%d\t%d\t%d\t%v\t%v\t%v\t%d\t%d\n",
			c.Name, c.NumLogicGates(), rg.TotalFaults, rg.Coverage*100, rg.Efficiency*100,
			rg.Patterns.N, rg.Aborted, rg.Backtracks, rg.Runtime.Round(1e6),
			(rg.GenTime + rg.DropTime).Round(1e6), row.SerialDet.Round(1e6),
			rn.Patterns.N, rn.Aborted)
	}
	return res, tw.Flush()
}
